GO ?= go

.PHONY: build test race vet bench benchsmoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: static analysis plus the full suite under the race
# detector (the parallel query pipeline is enabled by default, so every test
# exercises the concurrent paths).
check: vet race

# bench regenerates benchall_output.txt (untracked; see .gitignore) from
# the full default-scale evaluation.
bench:
	$(GO) run ./cmd/benchall | tee benchall_output.txt

# benchsmoke runs every Go benchmark exactly once — the CI smoke check
# that the benchmark harness itself still works.
benchsmoke:
	$(GO) test -bench . -benchtime 1x -run xxx ./...
