GO ?= go

.PHONY: build test race vet fmt bench benchsmoke obs-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean, printing the offenders.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

# check is the CI gate: formatting, static analysis, then the full suite
# under the race detector (the parallel query pipeline is enabled by
# default, so every test exercises the concurrent paths).
check: fmt vet race

# bench regenerates benchall_output.txt (untracked; see .gitignore) from
# the full default-scale evaluation.
bench:
	$(GO) run ./cmd/benchall | tee benchall_output.txt

# benchsmoke runs every Go benchmark exactly once — the CI smoke check
# that the benchmark harness itself still works.
benchsmoke:
	$(GO) test -bench . -benchtime 1x -run xxx ./...

# obs-smoke boots a small warehouse, runs one query, scrapes the Prometheus
# exporter once over HTTP and verifies the payload parses.
obs-smoke:
	$(GO) run ./cmd/xwh -corpus paintings -query '//painting[/name{val}]' -obs-smoke
