GO ?= go
FUZZTIME ?= 20s
# COVER_MIN gates `make coverage`: total statement coverage must not drop
# below this floor (measured baseline is 81.8%; the floor sits a little
# under it so unrelated churn doesn't flake the gate).
COVER_MIN ?= 80.0

.PHONY: build test race vet fmt bench benchartifact benchcmp benchsmoke obs-smoke servesmoke mutatesmoke check fuzzsmoke coverage

# BENCH_ARTIFACT is the checked-in benchmark snapshot this PR sequence
# tracks; benchcmp diffs a fresh run against it.
BENCH_ARTIFACT ?= BENCH_10.json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean, printing the offenders.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

# check is the CI gate: formatting, static analysis, then the full suite
# under the race detector (the parallel query pipeline is enabled by
# default, so every test exercises the concurrent paths).
check: fmt vet race

# bench regenerates benchall_output.txt (untracked; see .gitignore) from
# the full default-scale evaluation, then refreshes the machine-readable
# benchmark artifact.
bench:
	$(GO) run ./cmd/benchall | tee benchall_output.txt
	$(GO) run ./cmd/benchall -artifact $(BENCH_ARTIFACT) -scale tiny

# benchartifact refreshes only the machine-readable snapshot (the fast
# path CI and benchcmp use).
benchartifact:
	$(GO) run ./cmd/benchall -artifact $(BENCH_ARTIFACT) -scale tiny

# benchcmp measures a fresh artifact and diffs it against the checked-in
# baseline, flagging >10% ns/op regressions (informational: wall-clock
# comparisons across machines are noisy, so CI runs this non-blocking).
benchcmp:
	$(GO) run ./cmd/benchall -artifact /tmp/bench_head.json -scale tiny
	$(GO) run ./cmd/benchall -compare $(BENCH_ARTIFACT) /tmp/bench_head.json

# benchsmoke runs every Go benchmark exactly once — the CI smoke check
# that the benchmark harness itself still works.
benchsmoke:
	$(GO) test -bench . -benchtime 1x -run xxx ./...

# obs-smoke boots a small warehouse, runs one query, scrapes the Prometheus
# exporter once over HTTP and verifies the payload parses.
obs-smoke:
	$(GO) run ./cmd/xwh -corpus paintings -query '//painting[/name{val}]' -obs-smoke

# servesmoke stands the query daemon up on a loopback port, drives a short
# seeded closed-loop loadgen burst against it, asserts zero errors plus a
# live serve.admitted counter on /metrics, then drains it with SIGTERM.
servesmoke:
	$(GO) build -o /tmp/xwh_smoke ./cmd/xwh
	$(GO) build -o /tmp/loadgen_smoke ./cmd/loadgen
	/tmp/xwh_smoke serve -corpus paintings -addr 127.0.0.1:18980 -serve-workers 4 & \
		pid=$$!; \
		/tmp/loadgen_smoke -addr http://127.0.0.1:18980 -wait-ready 30s \
			-requests 40 -concurrency 4 -seed 7 -dist zipf -queries paintings \
			-check-metrics; rc=$$?; \
		kill -TERM $$pid 2>/dev/null; wait $$pid; exit $$rc

# mutatesmoke stands a mutable-corpus daemon up on a loopback port, drives
# a seeded mixed read/write loadgen burst (every 3rd request a document
# write, every 4th write a DELETE), asserts zero errors plus live serve
# metrics, then drains it with SIGTERM.
mutatesmoke:
	$(GO) build -o /tmp/xwh_smoke ./cmd/xwh
	$(GO) build -o /tmp/loadgen_smoke ./cmd/loadgen
	/tmp/xwh_smoke serve -mutable -docs 24 -addr 127.0.0.1:18981 -serve-workers 4 & \
		pid=$$!; \
		/tmp/loadgen_smoke -addr http://127.0.0.1:18981 -wait-ready 30s \
			-requests 48 -concurrency 4 -seed 7 -queries xmark \
			-write-every 3 -write-docs 24 -remove-every 4 \
			-check-metrics; rc=$$?; \
		kill -TERM $$pid 2>/dev/null; wait $$pid; exit $$rc

# fuzzsmoke runs every native fuzz target for FUZZTIME of live mutation on
# top of the checked-in seed corpora. `go test -fuzz` accepts only one
# matching target per invocation, so discover and loop.
fuzzsmoke:
	@for pkg in ./internal/idblock ./internal/index ./internal/pattern; do \
		for target in $$($(GO) test -list '^Fuzz' $$pkg | grep '^Fuzz'); do \
			echo "fuzz $$pkg $$target"; \
			$(GO) test $$pkg -run="^$$target$$" -fuzz="^$$target$$" -fuzztime=$(FUZZTIME) || exit 1; \
		done; \
	done

# coverage measures total statement coverage across all packages and fails
# if it drops below COVER_MIN.
coverage:
	$(GO) test -coverprofile=coverage.out -coverpkg=./... ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN { exit (t+0 >= m+0) ? 0 : 1 }' || \
		{ echo "coverage $$total% fell below the $(COVER_MIN)% floor"; exit 1; }
