GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: static analysis plus the full suite under the race
# detector (the parallel query pipeline is enabled by default, so every test
# exercises the concurrent paths).
check: vet race

bench:
	$(GO) test -bench . -benchtime 1x -run xxx ./...
