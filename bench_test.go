package repro_test

// One Go benchmark per table and figure of the paper's evaluation
// (Section 8), plus micro-benchmarks of the core machinery and the
// ablations listed in DESIGN.md. Every benchmark reports the modeled
// (simulated-cloud) time of its experiment as "modeled-s" in addition to
// the real wall-clock ns/op; cmd/benchall prints the same experiments as
// paper-style tables.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/ec2"
	"repro/internal/cloud/kv"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/meter"
	"repro/internal/pattern"
	"repro/internal/twigjoin"
	"repro/internal/workload"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

var (
	benchOnce   sync.Once
	benchCorpus *bench.Corpus
	benchEnv    *bench.QueryEnv
	benchCells  []bench.Fig9Cell
	benchErr    error
)

func benchSetup(b *testing.B) (*bench.Corpus, *bench.QueryEnv, []bench.Fig9Cell) {
	b.Helper()
	benchOnce.Do(func() {
		benchCorpus, benchErr = bench.NewCorpus(bench.Tiny())
		if benchErr != nil {
			return
		}
		benchEnv, benchErr = bench.NewQueryEnv(benchCorpus)
		if benchErr != nil {
			return
		}
		benchCells, benchErr = bench.RunFig9(benchEnv)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCorpus, benchEnv, benchCells
}

// BenchmarkTable4Indexing: indexing the corpus under each strategy on 8
// large instances (Table 4; the cost side is Table 6).
func BenchmarkTable4Indexing(b *testing.B) {
	c, _, _ := benchSetup(b)
	for _, s := range index.All() {
		b.Run(s.Name(), func(b *testing.B) {
			var modeled float64
			for i := 0; i < b.N; i++ {
				_, rep, _, err := bench.BuildWarehouse(c, s, "", 8, ec2.Large)
				if err != nil {
					b.Fatal(err)
				}
				modeled += rep.Total.Seconds()
			}
			b.ReportMetric(modeled/float64(b.N), "modeled-s")
		})
	}
}

// BenchmarkTable6IndexingCost: the full per-strategy indexing cost run.
func BenchmarkTable6IndexingCost(b *testing.B) {
	c, _, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunIndexing(c, "", 8, ec2.Large)
		if err != nil {
			b.Fatal(err)
		}
		var total float64
		for _, r := range rows {
			total += float64(r.Cost.Total())
		}
		b.ReportMetric(total, "usd")
	}
}

// BenchmarkFig7IndexingScale: indexing time versus corpus size (Figure 7).
func BenchmarkFig7IndexingScale(b *testing.B) {
	c, _, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig7(c, 8, ec2.Large); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8IndexSize: index sizes with and without keywords (Figure 8).
func BenchmarkFig8IndexSize(b *testing.B) {
	c, _, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.RunFig8(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Selectivity: per-query look-up selectivity (Table 5).
func BenchmarkTable5Selectivity(b *testing.B) {
	_, env, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable5(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Response: the workload under every access path on l and xl
// instances (Figure 9a-9c; its cost view is Figures 11-12).
func BenchmarkFig9Response(b *testing.B) {
	_, env, _ := benchSetup(b)
	var modeled float64
	for i := 0; i < b.N; i++ {
		cells, err := bench.RunFig9(env)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			modeled += c.Response.Seconds()
		}
	}
	b.ReportMetric(modeled/float64(b.N), "modeled-s")
}

// BenchmarkFig10Parallelism: workload on 1 vs 8 instances (Figure 10).
func BenchmarkFig10Parallelism(b *testing.B) {
	_, env, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig10(env, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11QueryCost: per-query billing across access paths.
func BenchmarkFig11QueryCost(b *testing.B) {
	_, env, cells := benchSetup(b)
	for i := 0; i < b.N; i++ {
		_ = bench.Fig11(cells)
		_ = bench.Fig12(cells)
	}
	_ = env
}

// BenchmarkFig13Amortization: amortization curves from measured costs.
func BenchmarkFig13Amortization(b *testing.B) {
	_, env, cells := benchSetup(b)
	for i := 0; i < b.N; i++ {
		rows := bench.RunFig13(env.Rows, cells, 20)
		if len(rows) != 4 {
			b.Fatal("missing strategies")
		}
	}
}

// BenchmarkTable7Simpledb: indexing on DynamoDB vs SimpleDB backends
// (Tables 7 and 8 share one comparison run).
func BenchmarkTable7Simpledb(b *testing.B) {
	c, _, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.RunCompare(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable8SimpledbQuery is an alias run kept so that every paper
// table has a named benchmark target; the comparison run covers both.
func BenchmarkTable8SimpledbQuery(b *testing.B) {
	BenchmarkTable7Simpledb(b)
}

// --- ablations -----------------------------------------------------------

func BenchmarkAblationIDEncoding(b *testing.B) {
	c, _, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationIDEncoding(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBatching(b *testing.B) {
	c, _, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationBatching(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPathCompression(b *testing.B) {
	c, _, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationPathCompression(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSemijoin(b *testing.B) {
	_, env, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationSemijoin(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTwigVsBinary: holistic twig join versus a cascade of
// binary structural semijoins over the same identifier streams.
func BenchmarkAblationTwigVsBinary(b *testing.B) {
	cfg := xmark.DefaultConfig(40)
	cfg.TargetDocBytes = 8 << 10
	tr := pattern.MustParse(`//item[/location, /description[/parlist[/listitem[/text]]], //name]`).Patterns[0]
	var streams []twigjoin.Streams
	for i := 0; i < cfg.Docs; i++ {
		gd := xmark.GenerateDoc(cfg, i)
		d, err := xmltree.Parse(gd.URI, gd.Data)
		if err != nil {
			b.Fatal(err)
		}
		streams = append(streams, twigjoin.StreamsFromDocument(tr, d))
	}
	b.Run("holistic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range streams {
				twigjoin.Match(tr, s)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range streams {
				twigjoin.MatchBinary(tr, s)
			}
		}
	})
}

// --- micro-benchmarks of the core machinery ------------------------------

func BenchmarkParseDocument(b *testing.B) {
	cfg := xmark.DefaultConfig(20)
	cfg.TargetDocBytes = 32 << 10
	gd := xmark.GenerateDoc(cfg, 0)
	b.SetBytes(int64(len(gd.Data)))
	for i := 0; i < b.N; i++ {
		if _, err := xmltree.Parse(gd.URI, gd.Data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtract(b *testing.B) {
	cfg := xmark.DefaultConfig(20)
	cfg.TargetDocBytes = 32 << 10
	gd := xmark.GenerateDoc(cfg, 0)
	doc, err := xmltree.Parse(gd.URI, gd.Data)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range index.All() {
		b.Run(s.Name(), func(b *testing.B) {
			b.SetBytes(int64(len(gd.Data)))
			for i := 0; i < b.N; i++ {
				index.Extract(s, doc, index.DefaultOptions())
			}
		})
	}
}

func BenchmarkLookup(b *testing.B) {
	c, env, _ := benchSetup(b)
	q := workload.XMark()[3].Parse() // the two-branch split-feature query
	for _, s := range index.All() {
		b.Run(s.Name(), func(b *testing.B) {
			w := env.Warehouse(bench.AccessPath(s.Name()))
			for i := 0; i < b.N; i++ {
				if _, _, err := index.LookupQuery(w.Store(), s, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	_ = c
}

// BenchmarkLookupPattern compares the sequential, parallel, cached and
// hash-partitioned index look-up paths on the same corpus. Results are
// identical across sub-benchmarks by construction (see
// internal/index/parallel_test.go and internal/core/shard_property_test.go);
// only real wall-clock time differs.
func BenchmarkLookupPattern(b *testing.B) {
	c, env, _ := benchSetup(b)
	q := workload.XMark()[3].Parse().Patterns[0]
	for _, s := range index.All() {
		w := env.Warehouse(bench.AccessPath(s.Name()))
		// A 4-way partitioned copy of the same index, for the shard4
		// variant: the look-up is unchanged, the store routes.
		sharded := kv.NewSharded(dynamodb.New(meter.NewLedger()), 4)
		if err := index.CreateTables(sharded, s); err != nil {
			b.Fatal(err)
		}
		for _, doc := range c.Parsed {
			if _, _, err := index.LoadDocument(sharded, s, doc, index.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
		variants := []struct {
			name  string
			store kv.Store
			opts  index.LookupOptions
		}{
			{"seq", w.Store(), index.LookupOptions{Concurrency: 1}},
			{"par8", w.Store(), index.LookupOptions{Concurrency: 8}},
			{"cached", w.Store(), index.LookupOptions{Concurrency: 8, Cache: index.NewPostingCache(index.DefaultCacheBytes)}},
			{"shard4", sharded, index.LookupOptions{Concurrency: 8}},
		}
		for _, v := range variants {
			b.Run(s.Name()+"/"+v.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := index.LookupPattern(v.store, s, q, v.opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkProcessQuery runs the full query pipeline (steps 8-18) under the
// sequential document pipeline, the parallel worker pool, and the pool plus
// posting cache. The modeled response time is identical in all three; the
// metric of interest is the real ns/op.
func BenchmarkProcessQuery(b *testing.B) {
	c, _, _ := benchSetup(b)
	query := workload.XMark()[3].Text
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"seq", core.Config{Strategy: index.TwoLUPI, QueryWorkers: 1, QueryLookupConcurrency: 1}},
		{"par8", core.Config{Strategy: index.TwoLUPI, QueryWorkers: 8, QueryLookupConcurrency: 8}},
		{"par8-cached", core.Config{Strategy: index.TwoLUPI, QueryWorkers: 8, QueryLookupConcurrency: 8,
			PostingCacheBytes: index.DefaultCacheBytes}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			w, err := core.New(v.cfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, d := range c.Docs {
				if err := w.SubmitDocument(d.URI, d.Data); err != nil {
					b.Fatal(err)
				}
			}
			fleet := ec2.LaunchFleet(w.Ledger(), ec2.Large, 1)
			if _, err := w.IndexCorpusOn(fleet, nil); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var modeled float64
			for i := 0; i < b.N; i++ {
				_, stats, err := w.RunQueryOn(fleet[0], query, true)
				if err != nil {
					b.Fatal(err)
				}
				modeled += stats.ResponseTime.Seconds()
			}
			b.ReportMetric(modeled/float64(b.N), "modeled-s")
		})
	}
}

func BenchmarkEvalPattern(b *testing.B) {
	cfg := xmark.DefaultConfig(20)
	cfg.TargetDocBytes = 32 << 10
	gd := xmark.GenerateDoc(cfg, 0)
	doc, err := xmltree.Parse(gd.URI, gd.Data)
	if err != nil {
		b.Fatal(err)
	}
	tr := pattern.MustParse(`//item[/location{val}, //name{val}]`).Patterns[0]
	b.SetBytes(int64(len(gd.Data)))
	for i := 0; i < b.N; i++ {
		engine.EvalPatternOnDoc(tr, doc)
	}
}

func BenchmarkIDCodec(b *testing.B) {
	var ids []xmltree.NodeID
	for i := int32(1); i <= 4096; i++ {
		ids = append(ids, xmltree.NodeID{Pre: i * 3, Post: i, Depth: 5})
	}
	b.Run("encode-binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			index.EncodeIDsBinary(ids, 48<<10)
		}
	})
	blobs := index.EncodeIDsBinary(ids, 48<<10)
	b.Run("decode-binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, blob := range blobs {
				if _, err := index.DecodeIDsBinary(blob); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func BenchmarkDynamoDBPut(b *testing.B) {
	store := dynamodb.New(meter.NewLedger())
	if err := store.CreateTable("t"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it := kv.Item{
			HashKey:  "key",
			RangeKey: fmt.Sprintf("r-%09d", i),
			Attrs:    []kv.Attr{{Name: "doc.xml", Values: []kv.Value{{byte(i), byte(i >> 8)}}}},
		}
		if _, err := store.Put("t", it); err != nil {
			b.Fatal(err)
		}
	}
}
