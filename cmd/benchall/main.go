// Command benchall runs the paper's entire evaluation (Section 8) on the
// simulated cloud and prints each table and figure in a paper-style layout.
//
// Usage:
//
//	benchall [-scale tiny|small|default] [-docs N -docbytes N]
//	         [-exp table4,fig7,...|all] [-repeats N]
//	benchall -artifact BENCH.json [-scale ...]
//	benchall -compare old.json new.json
//
// Experiments: table4, fig7, fig8, table5, fig9, fig9detail, fig10,
// table6, fig11, fig12, fig13, table7, table8, ablations, advisor, obs,
// shard, tail, serve, mutate.
//
// -artifact runs the key hot-path benchmarks plus the traced per-stage
// table and writes a machine-readable JSON snapshot instead of the paper
// tables. -compare diffs two such snapshots benchcmp-style and exits
// nonzero if any benchmark's ns/op regressed by more than 10%.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cloud/ec2"
	"repro/internal/core"
	"repro/internal/index"
)

func main() {
	scaleName := flag.String("scale", "default", "corpus scale: tiny, small or default")
	docs := flag.Int("docs", 0, "override: number of documents")
	docBytes := flag.Int("docbytes", 0, "override: approximate bytes per document")
	exps := flag.String("exp", "all", "comma-separated experiments, or 'all'")
	repeats := flag.Int("repeats", 16, "workload repetitions for figure 10")
	artifact := flag.String("artifact", "", "write a machine-readable benchmark artifact to this path and exit")
	compare := flag.Bool("compare", false, "compare two artifacts (old.json new.json); exit 1 on >10% ns/op regressions")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchall -compare old.json new.json")
			os.Exit(2)
		}
		oldA, err := bench.ReadArtifact(flag.Arg(0))
		check(err)
		newA, err := bench.ReadArtifact(flag.Arg(1))
		check(err)
		report, regressed := bench.CompareArtifacts(oldA, newA, 0.10)
		fmt.Print(report)
		if len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "benchall: %d benchmark(s) regressed >10%%: %s\n",
				len(regressed), strings.Join(regressed, ", "))
			os.Exit(1)
		}
		return
	}

	scale := bench.Default()
	switch *scaleName {
	case "tiny":
		scale = bench.Tiny()
	case "small":
		scale = bench.Small()
	case "default":
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *docs > 0 {
		scale.Docs = *docs
		scale.Name = "custom"
	}
	if *docBytes > 0 {
		scale.DocBytes = *docBytes
		scale.Name = "custom"
	}

	if *artifact != "" {
		a, err := bench.RunArtifact(scale)
		check(err)
		check(bench.WriteArtifact(a, *artifact))
		fmt.Printf("wrote %s (%d benchmarks, %d stages, %d serve points, %d mutate arms, scale %s)\n",
			*artifact, len(a.Benchmarks), len(a.Stages), len(a.Serve), len(a.Mutate), a.Scale)
		return
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	start := time.Now()
	fmt.Printf("corpus: %d documents x ~%d KB (%.4f%% of the paper's 40 GB), seed 42\n\n",
		scale.Docs, scale.DocBytes/1024, scale.PaperFraction()*100)

	corpus, err := bench.NewCorpus(scale)
	check(err)
	frac := scale.PaperFraction()

	needEnv := sel("table4") || sel("table5") || sel("table6") || sel("fig9") ||
		sel("fig9detail") || sel("fig10") || sel("fig11") || sel("fig12") ||
		sel("fig13") || sel("ablations") || sel("advisor")
	var env *bench.QueryEnv
	if needEnv {
		env, err = bench.NewQueryEnv(corpus)
		check(err)
	}

	if sel("table4") {
		fmt.Println(bench.Table4(env.Rows, frac))
		// The same corpus again with the cross-document bulk loader, for
		// the uploading/total deltas and the billed-request reduction.
		bulkRows, err := bench.RunIndexingCfg(corpus, core.Config{BulkLoad: true}, 8, ec2.Large)
		check(err)
		fmt.Println(bench.Table4Bulk(env.Rows, bulkRows, frac))
	}
	if sel("fig7") {
		points, err := bench.RunFig7(corpus, 8, ec2.Large)
		check(err)
		fmt.Println(bench.Fig7(points))
		bulkPoints, err := bench.RunFig7Cfg(corpus, core.Config{BulkLoad: true}, 8, ec2.Large)
		check(err)
		fmt.Println(bench.Fig7Titled(bulkPoints,
			"Figure 7 (bulk loading): indexing time (modeled seconds) vs corpus size, 8 large instances"))
	}
	if sel("fig8") {
		rows, xmlBytes, err := bench.RunFig8(corpus)
		check(err)
		fmt.Println(bench.Fig8(rows, xmlBytes))
	}
	if sel("table5") {
		rows, err := bench.RunTable5(env)
		check(err)
		fmt.Println(bench.Table5(rows, len(corpus.Docs)))
	}

	var cells []bench.Fig9Cell
	if sel("fig9") || sel("fig9detail") || sel("fig11") || sel("fig12") || sel("fig13") {
		cells, err = bench.RunFig9(env)
		check(err)
	}
	if sel("fig9") {
		fmt.Println(bench.Fig9a(cells))
		fmt.Println(bench.Fig9aChart(cells, "xl"))
	}
	if sel("fig9detail") {
		fmt.Println(bench.Fig9Detail(cells, "l"))
		fmt.Println(bench.Fig9Detail(cells, "xl"))
	}
	if sel("fig10") {
		f10, err := bench.RunFig10(env, *repeats)
		check(err)
		fmt.Println(bench.Fig10(f10, *repeats))
	}
	if sel("table6") {
		fmt.Println(bench.Table6(env.Rows, frac, scale.DocsFraction()))
	}
	if sel("fig11") {
		fmt.Println(bench.Fig11(cells))
	}
	if sel("fig12") {
		fmt.Println(bench.Fig12(cells))
	}
	if sel("fig13") {
		rows13 := bench.RunFig13(env.Rows, cells, 20)
		fmt.Println(bench.Fig13(rows13))
		fmt.Println(bench.Fig13Chart(rows13))
	}
	if sel("table7") || sel("table8") {
		rows, storage, err := bench.RunCompare(corpus)
		check(err)
		if sel("table7") {
			fmt.Println(bench.Table7(rows, storage))
		}
		if sel("table8") {
			fmt.Println(bench.Table8(rows))
		}
	}
	if sel("obs") {
		rows, _, err := bench.RunObs(corpus)
		check(err)
		fmt.Println(bench.ObsTable(rows))
	}
	if sel("shard") {
		rows, err := bench.RunShard(corpus)
		check(err)
		fmt.Println(bench.ShardTable(rows))
	}
	if sel("tail") {
		points, err := bench.RunTail(42, 8, 5, 160)
		check(err)
		fmt.Println(bench.TailTable(points))
	}
	if sel("serve") {
		// The serving ladder needs one indexed 2LUPI warehouse; reuse the
		// env's when another experiment already built it.
		var sw *core.Warehouse
		if env != nil {
			sw = env.Warehouse(bench.AccessPath(index.TwoLUPI.Name()))
		} else {
			sw, _, _, err = bench.BuildWarehouse(corpus, index.TwoLUPI, "", 8, ec2.Large)
			check(err)
		}
		points, err := bench.RunServe(sw, 42, 4)
		check(err)
		fmt.Println(bench.ServeTable(points))
	}
	if sel("mutate") {
		// The mixed read/write ladder builds its own mutable warehouses
		// (one per arm) so compaction counters and billing stay isolated.
		points, err := bench.RunMutate(corpus, 42, 4)
		check(err)
		fmt.Println(bench.MutateTable(points))
	}
	if sel("advisor") {
		out, err := bench.RunAdvisorAccuracy(env, 2)
		check(err)
		fmt.Println(out)
	}
	if sel("ablations") {
		enc, err := bench.RunAblationIDEncoding(corpus)
		check(err)
		bat, err := bench.RunAblationBatching(corpus)
		check(err)
		pc, err := bench.RunAblationPathCompression(corpus)
		check(err)
		fmt.Println("Ablations (DESIGN.md design choices)")
		for _, r := range append(append(enc, bat...), pc...) {
			fmt.Println("  " + r.String())
		}
		semi, err := bench.RunAblationSemijoin(env)
		check(err)
		fmt.Println()
		fmt.Println(semi)
	}

	fmt.Printf("done in %s\n", time.Since(start).Round(time.Millisecond))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchall:", err)
		os.Exit(1)
	}
}
