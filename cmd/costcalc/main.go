// Command costcalc evaluates the paper's monetary cost model (Section 7)
// for user-supplied metrics: what would it cost to upload, index, store
// and query a warehouse of a given size on the 2012 AWS Singapore prices?
//
//	costcalc -docs 20000 -gb 40 -index-gb 50 -index-ovh-gb 5 \
//	         -put-ops 60000000 -index-hours 2.18 -vms 8 -vm l \
//	         -get-ops 12 -docs-fetched 349 -proc-hours 0.01 -result-gb 0.09
package main

import (
	"flag"
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/pricing"
)

func main() {
	docs := flag.Int64("docs", 20000, "|D|: number of documents")
	gb := flag.Float64("gb", 40, "s(D): dataset size in GB")
	idxGB := flag.Float64("index-gb", 50, "sr(D,I): raw index size in GB")
	idxOvhGB := flag.Float64("index-ovh-gb", 5, "ovh(D,I): index store overhead in GB")
	putOps := flag.Int64("put-ops", 60_000_000, "|op(D,I)|: index put operations")
	idxHours := flag.Float64("index-hours", 2.18, "tidx: indexing time in hours")
	vms := flag.Int("vms", 8, "indexing virtual machines")
	vm := flag.String("vm", "l", "instance type: l or xl")
	getOps := flag.Int64("get-ops", 12, "|op(q,D,I)|: index get operations per query")
	fetched := flag.Int64("docs-fetched", 349, "|D^q_I|: documents retrieved per query")
	procHours := flag.Float64("proc-hours", 0.01, "ptq: query processing hours")
	resultGB := flag.Float64("result-gb", 0.09, "|r(q)|: result size in GB")
	runs := flag.Int("runs", 20, "amortization horizon in workload runs")
	flag.Parse()

	p := pricing.Singapore2012()
	m := costmodel.DatasetMetrics{
		Docs:          *docs,
		DataGB:        *gb,
		IndexPutOps:   *putOps,
		IndexRawGB:    *idxGB,
		IndexOvhGB:    *idxOvhGB,
		IndexingHours: *idxHours,
		VMType:        *vm,
		VMCount:       *vms,
	}
	fmt.Printf("upload         ud$(D)      = %s\n", costmodel.UploadCost(p, m.Docs))
	build := costmodel.IndexBuildCost(p, m)
	fmt.Printf("index build    ci$(D,I)    = %s\n", build)
	fmt.Printf("storage/month  st$m(D,I)   = %s\n", costmodel.MonthlyStorageCost(p, m, "dynamodb"))

	qIdx := costmodel.QueryMetrics{
		ResultGB:        *resultGB,
		IndexGetOps:     *getOps,
		DocsRetrieved:   *fetched,
		ProcessingHours: *procHours,
		VMType:          *vm,
	}
	qNo := costmodel.QueryMetrics{
		ResultGB:        *resultGB,
		DocsRetrieved:   *docs,
		ProcessingHours: *procHours * float64(*docs) / float64(max64(1, *fetched)),
		VMType:          *vm,
	}
	idxCost := costmodel.QueryCostIndexed(p, qIdx)
	noCost := costmodel.QueryCostNoIndex(p, qNo)
	fmt.Printf("query indexed  cq$(q,D,I)  = %s\n", idxCost)
	fmt.Printf("query no index cq$(q,D)    = %s (saving %.1f%%)\n",
		noCost, 100*(1-float64(idxCost/noCost)))

	benefit := costmodel.Benefit(noCost, idxCost)
	be := costmodel.BreakEvenRuns(build, benefit)
	fmt.Printf("benefit/query  = %s; index amortizes after %d queries\n", benefit, be)
	fmt.Printf("\ncumulated benefit - build cost:\n")
	for i, v := range costmodel.AmortizationCurve(build, benefit, *runs) {
		if i%max(1, *runs/10) == 0 || i == *runs {
			fmt.Printf("  %4d runs: %s\n", i, v)
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
