// Command loadgen drives a running `xwh serve` daemon with a seeded,
// deterministic query mix and reports the serving numbers: latency
// percentiles, throughput, shed and quota-rejection rates, and
// $/1M-queries from the daemon's metered billing delta.
//
// Closed loop by default (-concurrency workers issue the next request as
// soon as the previous answer lands); -rate switches to an open loop with
// Poisson-free fixed-interval arrivals at that QPS.
//
//	# start the daemon
//	xwh serve -corpus paintings -addr 127.0.0.1:8080 &
//
//	# drive it: 200 requests, 8 workers, Zipfian skew, seed 7
//	loadgen -addr http://127.0.0.1:8080 -requests 200 -concurrency 8 \
//	        -dist zipf -seed 7 -queries paintings
//
// Against a mutable daemon (`xwh serve -mutable`), -write-every N turns
// every Nth request into a document write (PUT /document with
// revision-stamped content, or DELETE when -remove-every fires), making
// the run a mixed read/write workload; -write-docs regenerates the
// daemon's XMark corpus locally so the write URIs match.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/serve"
	"repro/internal/workload"
	"repro/internal/xmark"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the serve daemon")
	requests := flag.Int("requests", 100, "total requests to offer")
	concurrency := flag.Int("concurrency", 4, "closed-loop worker count")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in QPS (0 = closed loop)")
	dist := flag.String("dist", workload.DistUniform, "query mix: uniform or zipf")
	zipfS := flag.Float64("zipf-s", 0, "zipf exponent (>1; 0 = default)")
	seed := flag.Int64("seed", 1, "workload seed (same seed = same request sequence)")
	tenants := flag.String("tenants", "", "comma-separated tenant IDs assigned round-robin")
	querySet := flag.String("queries", "xmark", "query set: xmark or paintings")
	useIndex := flag.Bool("use-index", true, "answer queries via the index")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	waitReady := flag.Duration("wait-ready", 0, "poll /readyz up to this long before driving load")
	checkMetrics := flag.Bool("check-metrics", false, "after the run, assert /metrics parses and serve.admitted > 0")
	writeEvery := flag.Int("write-every", 0, "make every Nth request a document write (0 = read-only; needs a -mutable daemon)")
	writeDocs := flag.Int("write-docs", 0, "size of the generated XMark write pool (URIs match the daemon's -docs corpus)")
	writeDocBytes := flag.Int("write-docbytes", 16<<10, "approximate bytes per write-pool document (match the daemon's -docbytes)")
	removeEvery := flag.Int("remove-every", 0, "make every Nth write a DELETE (the next round-robin update re-inserts)")
	flag.Parse()

	var queries []workload.Query
	switch *querySet {
	case "xmark":
		queries = workload.XMark()
	case "paintings":
		queries = workload.Paintings()
	default:
		log.Fatalf("unknown query set %q (want xmark or paintings)", *querySet)
	}
	var tenantList []string
	if *tenants != "" {
		tenantList = strings.Split(*tenants, ",")
	}
	var pool []serve.WriteDoc
	if *writeEvery > 0 {
		if *writeDocs <= 0 {
			log.Fatal("-write-every needs -write-docs > 0")
		}
		cfg := xmark.DefaultConfig(*writeDocs)
		cfg.TargetDocBytes = *writeDocBytes
		for i := 0; i < cfg.Docs; i++ {
			d := xmark.GenerateDoc(cfg, i)
			pool = append(pool, serve.WriteDoc{URI: d.URI, Data: d.Data})
		}
	}

	if *waitReady > 0 {
		if err := serve.WaitReady(*addr, *waitReady); err != nil {
			log.Fatal(err)
		}
	}
	rep, err := serve.RunLoad(serve.LoadOptions{
		BaseURL:     *addr,
		Queries:     queries,
		Dist:        *dist,
		ZipfS:       *zipfS,
		Seed:        *seed,
		Requests:    *requests,
		Concurrency: *concurrency,
		RateQPS:     *rate,
		Tenants:     tenantList,
		UseIndex:    *useIndex,
		Timeout:     *timeout,
		WriteEvery:  *writeEvery,
		WriteDocs:   pool,
		RemoveEvery: *removeEvery,
	})
	if err != nil {
		log.Fatal(err)
	}
	mode := "closed-loop"
	if *rate > 0 {
		mode = fmt.Sprintf("open-loop @ %.1f qps", *rate)
	}
	fmt.Printf("loadgen: %s, %s mix, seed %d, concurrency %d\n%s\n",
		mode, *dist, *seed, *concurrency, rep)
	if *checkMetrics {
		if err := serve.CheckServeMetrics(*addr); err != nil {
			log.Fatal(err)
		}
		fmt.Println("metrics check: serve.admitted > 0 and exposition parses")
	}
	if rep.Errors > 0 {
		log.Fatalf("%d requests failed", rep.Errors)
	}
}
