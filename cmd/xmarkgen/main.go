// Command xmarkgen generates the experimental corpus of Section 8.1 — an
// XMark-like document collection with the paper's two heterogeneity
// modifications — and writes it to a directory.
//
//	xmarkgen -out corpus/ -docs 400 -docbytes 16384 [-seed 42] [-stats]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/xmark"
)

func main() {
	out := flag.String("out", "corpus", "output directory")
	docs := flag.Int("docs", 400, "number of documents")
	docBytes := flag.Int("docbytes", 16<<10, "approximate bytes per document")
	seed := flag.Int64("seed", 42, "generator seed")
	stats := flag.Bool("stats", false, "print per-class/kind statistics instead of writing files")
	flag.Parse()

	cfg := xmark.DefaultConfig(*docs)
	cfg.TargetDocBytes = *docBytes
	cfg.Seed = *seed

	if *stats {
		kind := map[xmark.Kind]int{}
		class := map[xmark.Class]int{}
		var bytes int64
		for i := 0; i < cfg.Docs; i++ {
			d := xmark.GenerateDoc(cfg, i)
			kind[d.Kind]++
			class[d.Class]++
			bytes += int64(len(d.Data))
		}
		fmt.Printf("%d documents, %.2f MB total\n", cfg.Docs, float64(bytes)/(1<<20))
		for _, k := range []xmark.Kind{xmark.ItemDoc, xmark.PersonDoc, xmark.OpenAuctionDoc, xmark.ClosedAuctionDoc, xmark.CategoryDoc} {
			fmt.Printf("  kind %-14s %d\n", k, kind[k])
		}
		for _, c := range []xmark.Class{xmark.Standard, xmark.Altered, xmark.Heterogeneous} {
			fmt.Printf("  class %-13s %d\n", c, class[c])
		}
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	var bytes int64
	for i := 0; i < cfg.Docs; i++ {
		d := xmark.GenerateDoc(cfg, i)
		if err := os.WriteFile(filepath.Join(*out, d.URI), d.Data, 0o644); err != nil {
			log.Fatal(err)
		}
		bytes += int64(len(d.Data))
	}
	fmt.Printf("wrote %d documents (%.2f MB) to %s\n", cfg.Docs, float64(bytes)/(1<<20), *out)
}
