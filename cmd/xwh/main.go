// Command xwh is the warehouse in one process: it provisions the simulated
// cloud, loads documents (generated, from a directory, or the paintings
// example corpus), indexes them under a chosen strategy, answers queries
// from the command line, and prints statistics and the accumulated bill.
//
// Examples:
//
//	# index the paintings corpus under LUP and run a query
//	xwh -corpus paintings -strategy LUP -query '//painting[/name{val}]'
//
//	# generate 200 XMark documents, index under 2LUPI, run the workload
//	xwh -docs 200 -strategy 2LUPI -workload
//
//	# load XML files from a directory
//	xwh -dir ./corpus -strategy LUI -query '//item[//name{val}]' -stats
//
// Subcommands (before the flags):
//
//	# print the observability registry (counters, gauges, histograms)
//	xwh stats -corpus paintings -query '//painting[/name{val}]'
//
//	# print the span tree of one query ("last" or empty selects the
//	# final query of the run)
//	xwh trace last -corpus paintings -workload
//
//	# load, index, and serve queries over HTTP until SIGINT/SIGTERM
//	xwh serve -corpus paintings -addr 127.0.0.1:8080 -serve-workers 4
//
// The serve daemon exposes POST /query (JSON body {"query","useIndex"},
// tenant via the X-Tenant header), /billing.json, and the observability
// endpoints (/metrics, /metrics.json, /trace.json, /healthz, /readyz);
// admission control is tuned with -serve-queue, -tenant-qps, -tenant-burst
// and -tenant-inflight, and the per-query resilience budgets with
// -deadline, -retry-budget and -coalesce. Drive it with cmd/loadgen.
//
// With -mutable the warehouse runs a mutable corpus: -update and -remove
// mutate documents atomically before querying, -compact-every sets the
// delta-compaction interval, and the serve daemon additionally accepts
// writes on PUT/DELETE /document?uri=... (PUT body = the new XML).
//
// -metrics-addr serves Prometheus text format on /metrics (plus
// /metrics.json and /trace.json) while the process runs; -obs-smoke
// scrapes the exporter once over HTTP and verifies it parses.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/pricing"
	"repro/internal/serve"
	"repro/internal/workload"
	"repro/internal/xmark"
)

func main() {
	// Subcommands ride in front of the flags: "xwh stats ..." and
	// "xwh trace <queryID> ...".
	mode, traceID := "", ""
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") {
		mode = os.Args[1]
		rest := os.Args[2:]
		switch mode {
		case "stats":
		case "serve":
		case "trace":
			if len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
				traceID = rest[0]
				rest = rest[1:]
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown subcommand %q (want stats, trace or serve)\n", mode)
			os.Exit(2)
		}
		os.Args = append(os.Args[:1:1], rest...)
	}
	corpus := flag.String("corpus", "", `built-in corpus: "paintings"`)
	dir := flag.String("dir", "", "load .xml files from this directory")
	docs := flag.Int("docs", 0, "generate this many XMark documents")
	docBytes := flag.Int("docbytes", 16<<10, "approximate bytes per generated document")
	strategy := flag.String("strategy", "LUP", "indexing strategy: LU, LUP, LUI, 2LUPI")
	backend := flag.String("backend", "dynamodb", "index store backend: dynamodb or simpledb")
	instances := flag.Int("instances", 2, "EC2 instances for indexing")
	instanceType := flag.String("type", "l", "instance type: l or xl")
	query := flag.String("query", "", "query to run (pattern or XQuery syntax, auto-detected)")
	explain := flag.Bool("explain", false, "print the look-up plan before running each query")
	noIndex := flag.Bool("no-index", false, "answer the query without using the index")
	runWorkload := flag.Bool("workload", false, "run the 10-query XMark workload")
	remove := flag.String("remove", "", "remove this document (file + index entries) before querying")
	mutable := flag.Bool("mutable", false, "run a mutable corpus: atomic updates, snapshot reads, delta compaction")
	compactEvery := flag.Int("compact-every", 16, "mutable: fold the write buffer after this many mutations (0 = only on demand)")
	update := flag.String("update", "", "mutable: update one document before querying, as uri=path/to.xml")
	repl := flag.Bool("repl", false, "read queries interactively from stdin after loading")
	stats := flag.Bool("stats", false, "print warehouse statistics and the bill")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json and /trace.json on this address while running")
	obsSmoke := flag.Bool("obs-smoke", false, "scrape the metrics exporter once over HTTP, verify it parses, and report")
	serveAddr := flag.String("addr", "127.0.0.1:8080", "serve: listen address for the query daemon")
	serveWorkers := flag.Int("serve-workers", 0, "serve: scheduler pool size (0 = NumCPU); also the query-processor count")
	serveQueue := flag.Int("serve-queue", 0, "serve: admission queue depth (0 = 4x workers)")
	tenantQPS := flag.Float64("tenant-qps", 0, "serve: per-tenant sustained QPS quota (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "serve: per-tenant token-bucket burst (0 = 2x qps)")
	tenantInflight := flag.Int("tenant-inflight", 0, "serve: per-tenant in-flight cap (0 = unlimited)")
	queryDeadline := flag.Duration("deadline", 0, "serve: modeled per-query index-read deadline (0 = off)")
	retryBudget := flag.Int("retry-budget", 0, "serve: per-query store-retry budget (0 = unlimited)")
	coalesce := flag.Bool("coalesce", false, "serve: single-flight concurrent identical index fetches")
	flag.Parse()

	s, err := index.ByName(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	typ, err := ec2.TypeByName(*instanceType)
	if err != nil {
		log.Fatal(err)
	}

	wh, err := core.New(core.Config{
		Strategy: s, Backend: *backend, Trace: mode == "trace",
		QueryDeadline: *queryDeadline, QueryRetryBudget: *retryBudget, CoalesceLookups: *coalesce,
		MutableCorpus: *mutable, CompactEveryDocs: *compactEvery,
	})
	if err != nil {
		log.Fatal(err)
	}
	var metricsAt string
	if *metricsAddr != "" {
		if metricsAt, err = serveMetrics(*metricsAddr, wh); err != nil {
			log.Fatal(err)
		}
	}

	var loaded int
	submit := func(uri string, data []byte) {
		if err := wh.SubmitDocument(uri, data); err != nil {
			log.Fatalf("submitting %s: %v", uri, err)
		}
		loaded++
	}
	switch {
	case *corpus == "paintings":
		for _, d := range xmark.Paintings() {
			submit(d.URI, d.Data)
		}
	case *dir != "":
		entries, err := os.ReadDir(*dir)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".xml") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(*dir, e.Name()))
			if err != nil {
				log.Fatal(err)
			}
			submit(e.Name(), data)
		}
	case *docs > 0:
		cfg := xmark.DefaultConfig(*docs)
		cfg.TargetDocBytes = *docBytes
		for i := 0; i < cfg.Docs; i++ {
			d := xmark.GenerateDoc(cfg, i)
			submit(d.URI, d.Data)
		}
	default:
		fmt.Fprintln(os.Stderr, "nothing to load: pass -corpus paintings, -dir, or -docs")
		flag.Usage()
		os.Exit(2)
	}

	fleet := ec2.LaunchFleet(wh.Ledger(), typ, *instances)
	rep, err := wh.IndexCorpusOn(fleet, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d documents under %s on %d %s instance(s): %d entries, %d items, %v modeled\n",
		rep.Docs, s.Name(), *instances, typ.Name, rep.Entries, rep.Items, rep.Total)

	if mode == "serve" {
		runServe(wh, typ, serveConfig{
			addr:           *serveAddr,
			workers:        *serveWorkers,
			queue:          *serveQueue,
			tenantQPS:      *tenantQPS,
			tenantBurst:    *tenantBurst,
			tenantInflight: *tenantInflight,
		})
		return
	}

	processor := ec2.Launch(wh.Ledger(), typ)
	if *update != "" {
		uri, path, ok := strings.Cut(*update, "=")
		if !ok || uri == "" || path == "" {
			log.Fatal("-update wants uri=path/to.xml")
		}
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := wh.UpdateDocument(processor, uri, data); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("updated %s (%d bytes, corpus version bumped)\n", uri, len(data))
	}
	if *remove != "" {
		if err := wh.RemoveDocument(processor, *remove); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("removed %s (file and index entries)\n", *remove)
	}
	book := pricing.Singapore2012()
	var lastID string
	run := func(name, text string) {
		if *explain && !*noIndex {
			if q, err := core.ParseQueryText(text); err == nil {
				fmt.Println()
				fmt.Print(index.ExplainLookup(s, q))
			}
		}
		before := wh.Ledger().Snapshot()
		res, st, err := wh.RunQueryOn(processor, text, !*noIndex)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		lastID = st.ID
		fmt.Printf("\n%s: %s\n", name, text)
		fmt.Printf("  index gets=%d  docs fetched=%d  rows=%d  modeled response=%v\n",
			st.GetOps, st.DocsFetched, len(res.Rows), st.ResponseTime)
		fmt.Printf("  lookup: get time=%v  bytes=%d  twig candidates=%d  cache hits=%d misses=%d  store retries=%d\n",
			st.Lookup.GetTime, st.Lookup.BytesFetched, st.Lookup.TwigCandidates,
			st.Lookup.CacheHits, st.Lookup.CacheMisses, st.Lookup.StoreRetries)
		inv := book.Bill(wh.Ledger().Snapshot().Sub(before))
		var parts []string
		for _, svc := range []string{"s3", "dynamodb", "simpledb", "sqs", "egress"} {
			if amt := inv.Line(svc); amt != 0 {
				parts = append(parts, fmt.Sprintf("%s %v", svc, amt))
			}
		}
		fmt.Printf("  billed: %v (%s)\n", inv.Total(), strings.Join(parts, ", "))
		for i, row := range res.Rows {
			if i == 20 {
				fmt.Printf("  ... %d more rows\n", len(res.Rows)-20)
				break
			}
			cols := make([]string, len(row.Cols))
			for j, c := range row.Cols {
				if len(c) > 48 {
					c = c[:45] + "..."
				}
				cols[j] = c
			}
			fmt.Printf("  %s  (%s)\n", strings.Join(cols, " | "), row.URI)
		}
	}
	if *query != "" {
		run("query", *query)
	}
	if *runWorkload {
		for _, q := range workload.XMark() {
			run(q.Name, q.Text)
		}
	}
	if *repl {
		fmt.Println("\nenter queries (pattern or XQuery syntax), one per line; empty line quits")
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for n := 1; ; n++ {
			fmt.Print("xwh> ")
			if !sc.Scan() {
				break
			}
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				break
			}
			if _, err := core.ParseQueryText(line); err != nil {
				fmt.Println("  parse error:", err)
				continue
			}
			run(fmt.Sprintf("#%d", n), line)
		}
	}

	if *stats {
		raw, ovh := wh.IndexBytes()
		fmt.Printf("\nwarehouse statistics:\n")
		fmt.Printf("  documents: %d (%.2f MB in the file store)\n", loaded, float64(wh.DataBytes())/(1<<20))
		fmt.Printf("  index: %.2f MB content + %.2f MB store overhead, %d items\n",
			float64(raw)/(1<<20), float64(ovh)/(1<<20), wh.IndexItems())
		fmt.Printf("\naccumulated bill (activity):\n%s", book.Bill(wh.Ledger().Snapshot()))
		fmt.Printf("\nmonthly storage:\n%s", book.StorageMonthly(wh.DataBytes(), raw+ovh, *backend))
	}

	switch mode {
	case "stats":
		fmt.Printf("\nobservability registry:\n")
		obs.WriteText(os.Stdout, wh.Registry())
	case "trace":
		id := traceID
		if id == "" || id == "last" {
			id = lastID
		}
		spans := wh.Tracer().QuerySpans(id)
		if len(spans) == 0 {
			fmt.Printf("\nno spans recorded for query %q (run a -query or -workload)\n", id)
			os.Exit(1)
		}
		fmt.Printf("\ntrace of %s:\n%s", id, obs.FormatTree(spans))
	}
	if *obsSmoke {
		if err := smokeScrape(metricsAt, wh); err != nil {
			log.Fatalf("obs-smoke: %v", err)
		}
	}
}

// serveConfig carries the daemon flags.
type serveConfig struct {
	addr           string
	workers        int
	queue          int
	tenantQPS      float64
	tenantBurst    int
	tenantInflight int
}

// runServe turns the loaded warehouse into the query daemon: a live
// processor fleet behind admission control, served over HTTP until
// SIGINT/SIGTERM, then drained gracefully.
func runServe(wh *core.Warehouse, typ ec2.InstanceType, cfg serveConfig) {
	backend := serve.NewWarehouseBackend(wh, cfg.workers, typ, core.WorkerOptions{})
	book := pricing.Singapore2012()
	s, err := serve.New(serve.Config{
		Backend:  backend,
		Registry: wh.Registry(),
		Tracer:   wh.Tracer(),
		Bill:     func() pricing.Invoice { return book.Bill(wh.Ledger().Snapshot()) },
		Limits: serve.Limits{
			Workers:        cfg.workers,
			QueueDepth:     cfg.queue,
			TenantQPS:      cfg.tenantQPS,
			TenantBurst:    cfg.tenantBurst,
			TenantInflight: cfg.tenantInflight,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := s.Start(cfg.addr)
	if err != nil {
		log.Fatal(err)
	}
	lim := s.Limits()
	fmt.Printf("serving queries on http://%s/query (%d workers, queue %d, tenant qps %.1f inflight %d)\n",
		addr, backend.Workers(), lim.QueueDepth, lim.TenantQPS, lim.TenantInflight)
	if backend.Writable() {
		fmt.Printf("accepting writes on PUT/DELETE http://%s/document?uri=...\n", addr)
	}
	fmt.Printf("observability on http://%s/metrics, billing on http://%s/billing.json\n", addr, addr)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	<-sigs
	fmt.Println("draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	fmt.Println("drained; bye")
}

// serveMetrics starts the HTTP exporter on addr and returns the bound
// address (useful with port 0).
func serveMetrics(addr string, wh *core.Warehouse) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, obs.Handler(wh.Registry(), wh.Tracer()))
	fmt.Printf("serving metrics on http://%s/metrics\n", ln.Addr())
	return ln.Addr().String(), nil
}

// smokeScrape fetches /metrics over HTTP once (starting an ephemeral
// listener when none is serving) and verifies the payload parses as
// Prometheus text format.
func smokeScrape(serving string, wh *core.Warehouse) error {
	if serving == "" {
		var err error
		serving, err = serveMetrics("127.0.0.1:0", wh)
		if err != nil {
			return err
		}
	}
	resp, err := http.Get("http://" + serving + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("unexpected status %s", resp.Status)
	}
	samples, err := obs.ParseProm(resp.Body)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("exporter returned no samples")
	}
	for _, probe := range []string{"/healthz", "/readyz"} {
		pr, err := http.Get("http://" + serving + probe)
		if err != nil {
			return err
		}
		pr.Body.Close()
		if pr.StatusCode != http.StatusOK {
			return fmt.Errorf("%s answered %s", probe, pr.Status)
		}
	}
	fmt.Printf("obs-smoke: scraped and parsed %d samples from http://%s/metrics; /healthz and /readyz ok\n",
		len(samples), serving)
	return nil
}
