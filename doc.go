// Package repro reproduces "Web Data Indexing in the Cloud: Efficiency and
// Cost Reductions" (Camacho-Rodríguez, Colazzo, Manolescu, EDBT 2013) as a
// Go library: an XML warehouse over simulated commercial-cloud services
// (file store, key-value store, virtual instances, queues), the four
// indexing strategies LU / LUP / LUI / 2LUPI with their look-up algorithms,
// the paper's monetary cost model, and a benchmark harness that regenerates
// every table and figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record. The top-level
// bench_test.go exposes one Go benchmark per paper table/figure; the same
// experiments print paper-style tables via cmd/benchall.
package repro
