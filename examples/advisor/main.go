// Advisor: the statistics-driven index advisor of the paper's future work
// (Sections 8.5 and 9), as a library demo.
//
// It samples a generated corpus, builds a data summary (per-key and
// per-path document frequencies), estimates — without building any index —
// each strategy's per-query look-up size, response time and monetary cost,
// and ranks the access paths for the whole workload.
//
//	go run ./examples/advisor [-docs 200] [-sample 2]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/advisor"
	"repro/internal/cloud/ec2"
	"repro/internal/pattern"
	"repro/internal/workload"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

func main() {
	n := flag.Int("docs", 200, "corpus size")
	sample := flag.Int("sample", 2, "sample one document in N")
	flag.Parse()

	cfg := xmark.DefaultConfig(*n)
	cfg.TargetDocBytes = 8 << 10
	var docs []*xmltree.Document
	for i := 0; i < cfg.Docs; i++ {
		gd := xmark.GenerateDoc(cfg, i)
		d, err := xmltree.Parse(gd.URI, gd.Data)
		if err != nil {
			log.Fatal(err)
		}
		docs = append(docs, d)
	}

	a, err := advisor.New(docs, advisor.Config{SampleEvery: *sample, VM: ec2.XL})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data summary: %d of %d documents sampled, %d distinct keys, %d distinct paths\n\n",
		a.Summary.SampleDocs, a.Summary.TotalDocs, len(a.Summary.KeyDocs), len(a.Summary.PathDocs))

	var queries []*pattern.Query
	fmt.Printf("%-5s | %-40s\n", "query", "estimated look-up documents")
	fmt.Printf("%-5s | %-8s %-8s %-8s %-8s %-8s\n", "", "none", "LU", "LUP", "LUI", "2LUPI")
	for _, wq := range workload.XMark() {
		q := wq.Parse()
		queries = append(queries, q)
		ests, err := a.EstimateQuery(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s |", wq.Name)
		for _, e := range ests {
			fmt.Printf(" %-8.1f", e.Docs)
		}
		fmt.Println()
	}

	ranked, err := a.Recommend(queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkload ranking (estimated, cheapest first):\n")
	for i, r := range ranked {
		marker := "  "
		if i == 0 {
			marker = "->"
		}
		fmt.Printf("%s %-6s  %s per run, %v per run\n", marker, r.Access, r.PerRunCost, r.PerRunTime)
	}
}
