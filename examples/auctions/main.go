// Auctions: the paper's experimental scenario in miniature.
//
// Generates a heterogenized XMark-like corpus (Section 8.1), indexes it
// under every strategy on a fleet of large instances, runs the 10-query
// workload with and without the index, and prints per-query response
// times, look-up precision and monetary costs — a condensed live replay of
// Tables 4-5 and Figures 9/11.
//
//	go run ./examples/auctions [-docs 120]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cloud/ec2"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/pricing"
	"repro/internal/workload"
	"repro/internal/xmark"
)

func main() {
	docs := flag.Int("docs", 120, "number of generated documents")
	flag.Parse()

	cfg := xmark.DefaultConfig(*docs)
	cfg.TargetDocBytes = 8 << 10
	corpus := xmark.Generate(cfg)
	var corpusBytes int64
	for _, d := range corpus {
		corpusBytes += int64(len(d.Data))
	}
	fmt.Printf("corpus: %d documents, %.1f MB (modified XMark: altered paths + optional children)\n\n",
		len(corpus), float64(corpusBytes)/(1<<20))

	book := pricing.Singapore2012()
	warehouses := map[string]*core.Warehouse{}
	for _, s := range index.All() {
		wh, err := core.New(core.Config{Strategy: s})
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range corpus {
			if err := wh.SubmitDocument(d.URI, d.Data); err != nil {
				log.Fatal(err)
			}
		}
		fleet := ec2.LaunchFleet(wh.Ledger(), ec2.Large, 8)
		rep, err := wh.IndexCorpusOn(fleet, nil)
		if err != nil {
			log.Fatal(err)
		}
		cost := book.Bill(wh.Ledger().Snapshot()).Total()
		fmt.Printf("indexed under %-5s: %6d items, %8v modeled, %s\n",
			s.Name(), rep.Items, rep.Total.Round(1e6), cost)
		warehouses[s.Name()] = wh
	}

	fmt.Printf("\n%-5s | %-9s | %-36s | %-9s\n", "query", "no index", "indexed response (s)", "saving")
	fmt.Printf("%-5s | %-9s | %-8s %-8s %-8s %-8s | %-9s\n", "", "(s)", "LU", "LUP", "LUI", "2LUPI", "(LUP, $)")
	for _, q := range workload.XMark() {
		// Baseline: no index, on the LU warehouse (index unused).
		whNo := warehouses["LU"]
		inNo := ec2.Launch(whNo.Ledger(), ec2.XL)
		beforeNo := whNo.Ledger().Snapshot()
		_, statsNo, err := whNo.RunQueryOn(inNo, q.Text, false)
		if err != nil {
			log.Fatal(err)
		}
		costNo := book.Bill(whNo.Ledger().Snapshot().Sub(beforeNo)).Total()

		fmt.Printf("%-5s | %-9.3f |", q.Name, statsNo.ResponseTime.Seconds())
		var costLUP pricing.USD
		for _, s := range index.All() {
			wh := warehouses[s.Name()]
			in := ec2.Launch(wh.Ledger(), ec2.XL)
			before := wh.Ledger().Snapshot()
			_, stats, err := wh.RunQueryOn(in, q.Text, true)
			if err != nil {
				log.Fatal(err)
			}
			if s == index.LUP {
				costLUP = book.Bill(wh.Ledger().Snapshot().Sub(before)).Total()
			}
			fmt.Printf(" %-8.3f", stats.ResponseTime.Seconds())
		}
		saving := 100 * (1 - float64(costLUP/costNo))
		fmt.Printf(" | %5.1f%%\n", saving)
	}
}
