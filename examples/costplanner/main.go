// Costplanner: the index advisor the paper lists as future work
// (Section 9): "based on the expected dataset and workload, estimate an
// application's performance and cost and pick the best indexing strategy".
//
// It measures each strategy on a small sample of the expected corpus, then
// extrapolates with the Section 7 cost model to the full dataset size and
// monthly query volume given on the command line, and recommends the
// cheapest strategy — including "no index" when the workload is too small
// to amortize one.
//
//	go run ./examples/costplanner [-gb 40] [-queries-per-month 3000] [-months 6]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/bench"
	"repro/internal/costmodel"
	"repro/internal/pricing"
)

func main() {
	gb := flag.Float64("gb", 40, "expected dataset size in GB")
	qpm := flag.Float64("queries-per-month", 3000, "expected workload queries per month")
	months := flag.Float64("months", 6, "planning horizon in months")
	flag.Parse()

	book := pricing.Singapore2012()

	// Sample run: index and query a miniature of the expected corpus.
	corpus, err := bench.NewCorpus(bench.Tiny())
	if err != nil {
		log.Fatal(err)
	}
	env, err := bench.NewQueryEnv(corpus)
	if err != nil {
		log.Fatal(err)
	}
	cells, err := bench.RunFig9(env)
	if err != nil {
		log.Fatal(err)
	}
	sampleGB := float64(corpus.Bytes) / pricing.GB
	blowup := *gb / sampleGB
	queriesPerRun := float64(len(env.Queries))

	type plan struct {
		name    string
		monthly costmodel.USD
		detail  string
	}
	var plans []plan

	// Baseline: no index at all.
	noIdxPerQuery := bench.WorkloadCost(cells, bench.NoIndex, "xl") / costmodel.USD(queriesPerRun)
	storage := book.StorageMonthly(int64(*gb*pricing.GB), 0, "dynamodb").Total()
	noMonthly := storage + noIdxPerQuery*costmodel.USD(blowup**qpm)
	plans = append(plans, plan{
		name:    "no index",
		monthly: noMonthly,
		detail:  fmt.Sprintf("storage %s + queries %s", storage, noMonthly-storage),
	})

	for _, row := range env.Rows {
		s := row.Strategy
		perQuery := bench.WorkloadCost(cells, bench.AccessPath(s.Name()), "xl") / costmodel.USD(queriesPerRun)
		raw, ovh := row.Warehouse.IndexBytes()
		idxBytes := int64(float64(raw+ovh) * blowup)
		storage := book.StorageMonthly(int64(*gb*pricing.GB), idxBytes, "dynamodb").Total()
		build := row.Cost.Total() * costmodel.USD(blowup) / costmodel.USD(*months)
		queries := perQuery * costmodel.USD(blowup**qpm)
		plans = append(plans, plan{
			name:    s.Name(),
			monthly: storage + build + queries,
			detail: fmt.Sprintf("storage %s + amortized build %s + queries %s",
				storage, build, queries),
		})
	}

	sort.Slice(plans, func(i, j int) bool { return plans[i].monthly < plans[j].monthly })
	fmt.Printf("plan for %.0f GB, %.0f queries/month, %.0f-month horizon:\n\n", *gb, *qpm, *months)
	for i, p := range plans {
		marker := "  "
		if i == 0 {
			marker = "->"
		}
		fmt.Printf("%s %-8s %10s/month   (%s)\n", marker, p.name, p.monthly, p.detail)
	}
	fmt.Printf("\nrecommended: %s\n", plans[0].name)
}
