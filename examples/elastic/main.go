// Elastic: the cloud elasticity of Section 3, live.
//
// "An important feature of such platforms is their elasticity, i.e., the
// ability to allocate more (or less) computing power [...] as the
// application demands grow or shrink."
//
// This example floods the loader queue with a generated corpus and lets an
// AutoScaler manage the indexing module: the fleet grows toward its
// maximum while the backlog lasts, drains the queue, then shrinks back to
// the minimum so idle instances stop billing. A dead-letter queue catches
// a deliberately malformed document along the way.
//
//	go run ./examples/elastic [-docs 60]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/pricing"
	"repro/internal/xmark"
)

func main() {
	n := flag.Int("docs", 60, "corpus size")
	flag.Parse()

	wh, err := core.New(core.Config{Strategy: index.LUP})
	if err != nil {
		log.Fatal(err)
	}
	scaler := wh.StartAutoScaler(core.AutoScalerConfig{
		Module:           core.IndexerModule,
		Min:              1,
		Max:              6,
		BacklogPerWorker: 4,
		Interval:         25 * time.Millisecond,
		Worker: core.WorkerOptions{
			Poll:      10 * time.Millisecond,
			WorkDelay: 10 * time.Millisecond,
		},
	})
	defer scaler.Stop()

	cfg := xmark.DefaultConfig(*n)
	cfg.TargetDocBytes = 4 << 10
	for i := 0; i < cfg.Docs; i++ {
		d := xmark.GenerateDoc(cfg, i)
		if err := wh.SubmitDocument(d.URI, d.Data); err != nil {
			log.Fatal(err)
		}
	}
	// One poison document that can never be parsed.
	if err := wh.SubmitDocument("poison.xml", []byte("<broken><oops></broken>")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %d documents (+1 poison); watching the fleet:\n", cfg.Docs)

	deadline := time.Now().Add(60 * time.Second)
	lastWorkers := -1
	for time.Now().Before(deadline) {
		backlog := wh.Queues().Len(core.LoaderQueue)
		if w := scaler.Workers(); w != lastWorkers {
			fmt.Printf("  backlog %3d -> %d worker(s)\n", backlog, w)
			lastWorkers = w
		}
		if backlog == 0 && scaler.Workers() == 1 && wh.Queues().Len(core.LoaderDeadLetters) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Printf("\npeak fleet: %d instances; documents indexed: %d\n", scaler.Peak(), scaler.Processed())
	fmt.Printf("dead-letter queue: %d message(s) (the poison document)\n",
		wh.Queues().Len(core.LoaderDeadLetters))
	bill := pricing.Singapore2012().Bill(wh.Ledger().Snapshot())
	fmt.Printf("\ncharged:\n%s", bill)
}
