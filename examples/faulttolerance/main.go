// Faulttolerance: the resilience mechanism of Section 3, live.
//
// The warehouse's modules communicate through SQS-style queues with
// visibility leases: "if an instance fails to renew its lease on the
// message which had caused a task to start, the message becomes available
// again and another virtual instance will take over the job."
//
// This example starts two live indexer workers, crashes one mid-document,
// and shows the surviving worker draining the queue — including the
// abandoned message once its lease expires — after which a query verifies
// the index is complete.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/xmark"
)

func main() {
	wh, err := core.New(core.Config{Strategy: index.LUP})
	if err != nil {
		log.Fatal(err)
	}
	docs := xmark.Paintings()
	for _, d := range docs {
		if err := wh.SubmitDocument(d.URI, d.Data); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("submitted %d documents; loader queue holds %d messages\n",
		len(docs), wh.Queues().Len(core.LoaderQueue))

	// A deliberately slow worker with a short lease: it will be holding a
	// message when we crash it.
	victim := wh.StartIndexer(ec2.Launch(wh.Ledger(), ec2.Large), core.WorkerOptions{
		Visibility: 80 * time.Millisecond,
		WorkDelay:  300 * time.Millisecond,
	})
	time.Sleep(100 * time.Millisecond)
	victim.Crash()
	fmt.Printf("crashed the first indexer mid-document (processed %d); its lease will expire\n",
		victim.Processed())

	rescuer := wh.StartIndexer(ec2.Launch(wh.Ledger(), ec2.Large), core.WorkerOptions{})
	deadline := time.Now().Add(15 * time.Second)
	for wh.Queues().Len(core.LoaderQueue) > 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	rescuer.Stop()
	fmt.Printf("second indexer drained the queue (processed %d, queue now %d)\n",
		rescuer.Processed(), wh.Queues().Len(core.LoaderQueue))

	// Verify nothing was lost: the query must see every matching document.
	qp := wh.StartQueryProcessor(ec2.Launch(wh.Ledger(), ec2.XL), core.WorkerOptions{})
	defer qp.Stop()
	id, err := wh.SubmitQuery(`//painting[/name{val}]`, true)
	if err != nil {
		log.Fatal(err)
	}
	out, err := wh.AwaitResult(id, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	if out.Err != nil {
		log.Fatal(out.Err)
	}
	fmt.Printf("query over the recovered index returned %d paintings — no document lost\n",
		len(out.Result.Rows))
}
