// Feeds: a different Web-data domain on the same warehouse.
//
// The paper's introduction motivates warehousing "data-rich Web sites such
// as product catalogs, social media sites, RSS and tweets, blogs or online
// publications". This example loads a small corpus of RSS-like feeds and
// micro-blog posts — schemas the warehouse has never seen — and runs
// domain queries over them, including a cross-feed value join, to show the
// architecture is schema-agnostic: indexes depend only on the data
// (Section 2: "indexes only depend on data", no workload knowledge
// needed).
//
//	go run ./examples/feeds
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/cloud/ec2"
	"repro/internal/core"
	"repro/internal/index"
)

var feeds = map[string]string{
	"tech-news.rss": `<rss><channel><title>Tech News</title>
		<item><title>Cloud costs fall again</title><author>ada</author>
			<category>cloud</category><pubDate>2013-03-18</pubDate>
			<description>Key value stores keep getting cheaper</description></item>
		<item><title>XML still everywhere</title><author>grace</author>
			<category>data</category><pubDate>2013-03-19</pubDate>
			<description>Tree shaped data refuses to die</description></item>
	</channel></rss>`,
	"db-weekly.rss": `<rss><channel><title>DB Weekly</title>
		<item><title>Indexing strategies compared</title><author>edgar</author>
			<category>cloud</category><pubDate>2013-03-20</pubDate>
			<description>LU LUP LUI and friends benchmarked on a warehouse</description></item>
	</channel></rss>`,
	"posts-1.xml": `<posts>
		<post id="p1"><user>ada</user><text>Reading about cloud warehouses</text><tag>cloud</tag></post>
		<post id="p2"><user>linus</user><text>Paths beat labels for precision</text><tag>indexing</tag></post>
	</posts>`,
	"posts-2.xml": `<posts>
		<post id="p3"><user>grace</user><text>Holistic twig joins are elegant</text><tag>indexing</tag></post>
	</posts>`,
	"blog-ada.xml": `<blog><owner>ada</owner>
		<entry><title>On monetary cost models</title><body>Clouds bill for what you touch</body></entry>
	</blog>`,
}

var queries = []struct{ about, text string }{
	{
		"RSS items in the cloud category",
		`//item[/title{val}, /category="cloud"]`,
	},
	{
		"posts mentioning twig joins (full text)",
		`//post[/text{val}~"twig"]`,
	},
	{
		"cross-domain value join: blog owners who also author RSS items",
		`//blog[/owner{val} $o], //item[/author $a, /title{val}] where $o = $a`,
	},
	{
		"the same join in XQuery",
		`for $b in //blog, $i in //item where $b/owner = $i/author return (string($b/owner), string($i/title))`,
	},
}

func main() {
	wh, err := core.New(core.Config{Strategy: index.LUP})
	if err != nil {
		log.Fatal(err)
	}
	for uri, xml := range feeds {
		if err := wh.SubmitDocument(uri, []byte(xml)); err != nil {
			log.Fatal(err)
		}
	}
	fleet := ec2.LaunchFleet(wh.Ledger(), ec2.Large, 1)
	rep, err := wh.IndexCorpusOn(fleet, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d feed documents (%d entries) — no schema registered anywhere\n\n",
		rep.Docs, rep.Entries)

	in := ec2.Launch(wh.Ledger(), ec2.Large)
	for _, q := range queries {
		res, stats, err := wh.RunQueryOn(in, q.text, true)
		if err != nil {
			log.Fatalf("%s: %v", q.about, err)
		}
		fmt.Printf("%s\n  %s\n", q.about, q.text)
		fmt.Printf("  fetched %d/%d docs via the index\n", stats.DocsFetched, rep.Docs)
		for _, row := range res.Rows {
			fmt.Printf("    %s  (%s)\n", strings.Join(row.Cols, " | "), row.URI)
		}
		fmt.Println()
	}
}
