// Museum: the paper's running example in full.
//
// Loads the Figure 3 documents (and the rest of the paintings corpus),
// indexes them under every strategy, and runs the five sample queries of
// Figure 2 — including q4's range predicate and q5's value join — showing
// per-strategy index look-up precision next to the answers.
//
//	go run ./examples/museum
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/cloud/ec2"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/workload"
	"repro/internal/xmark"
)

func main() {
	// One warehouse per strategy, same corpus.
	warehouses := map[index.Strategy]*core.Warehouse{}
	for _, s := range index.All() {
		wh, err := core.New(core.Config{Strategy: s})
		if err != nil {
			log.Fatal(err)
		}
		for _, doc := range xmark.Paintings() {
			if err := wh.SubmitDocument(doc.URI, doc.Data); err != nil {
				log.Fatal(err)
			}
		}
		fleet := ec2.LaunchFleet(wh.Ledger(), ec2.Large, 1)
		if _, err := wh.IndexCorpusOn(fleet, nil); err != nil {
			log.Fatal(err)
		}
		warehouses[s] = wh
	}

	for _, q := range workload.Paintings() {
		fmt.Printf("%s — %s\n  %s\n", q.Name, q.About, q.Text)

		// Index look-up precision per strategy.
		parsed := q.Parse()
		fmt.Printf("  documents from index look-up:")
		for _, s := range index.All() {
			per, _, err := index.LookupQuery(warehouses[s].Store(), s, parsed)
			if err != nil {
				log.Fatal(err)
			}
			n := 0
			for _, uris := range per {
				n += len(uris)
			}
			fmt.Printf("  %s=%d", s.Name(), n)
		}
		fmt.Println()

		// Answers (via the 2LUPI warehouse; all strategies agree).
		in := ec2.Launch(warehouses[index.TwoLUPI].Ledger(), ec2.Large)
		result, _, err := warehouses[index.TwoLUPI].RunQueryOn(in, q.Text, true)
		if err != nil {
			log.Fatal(err)
		}
		for _, row := range result.Rows {
			cols := make([]string, len(row.Cols))
			for i, c := range row.Cols {
				if len(c) > 60 {
					c = c[:57] + "..."
				}
				cols[i] = c
			}
			fmt.Printf("    %s  (%s)\n", strings.Join(cols, " | "), row.URI)
		}
		fmt.Println()
	}
}
