// Quickstart: the smallest end-to-end tour of the warehouse.
//
// It provisions the simulated cloud (S3 + DynamoDB + SQS), submits the
// paper's example documents through the front end, indexes them under the
// LUP strategy on two large EC2 instances, runs one query, and prints the
// results together with what the session would have cost on AWS
// (Singapore, October 2012 prices — Table 3 of the paper).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cloud/ec2"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/pricing"
	"repro/internal/xmark"
)

func main() {
	// A warehouse = file store + index store + queues, wired per Figure 1.
	wh, err := core.New(core.Config{Strategy: index.LUP})
	if err != nil {
		log.Fatal(err)
	}

	// Front end, steps 1-3: store each document, enqueue a loading request.
	for _, doc := range xmark.Paintings() {
		if err := wh.SubmitDocument(doc.URI, doc.Data); err != nil {
			log.Fatal(err)
		}
	}

	// Indexing module, steps 4-6, on two large instances.
	fleet := ec2.LaunchFleet(wh.Ledger(), ec2.Large, 2)
	report, err := wh.IndexCorpusOn(fleet, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d documents (%d index entries, %d store items) in %v modeled time\n",
		report.Docs, report.Entries, report.Items, report.Total)

	// Query processor, steps 7-18: the paper's q3 — last names of painters
	// of paintings whose name contains the word Lion.
	processor := ec2.Launch(wh.Ledger(), ec2.XL)
	const q = `//painting[/name~"Lion", /painter[/name[/last{val}]]]`
	result, stats, err := wh.RunQueryOn(processor, q, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", q)
	fmt.Printf("  looked up %d index keys, fetched %d of %d documents, answered in %v modeled time\n",
		stats.GetOps, stats.DocsFetched, report.Docs, stats.ResponseTime)
	for _, row := range result.Rows {
		fmt.Printf("  %-20s <- %s\n", row.Cols[0], row.URI)
	}

	// What would AWS have charged for all of the above?
	bill := pricing.Singapore2012().Bill(wh.Ledger().Snapshot())
	fmt.Printf("\ncharged so far:\n%s", bill)
}
