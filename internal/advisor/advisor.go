// Package advisor implements the index advisor the paper leaves as future
// work: Section 8.5 suggests that the cases where fine-granularity
// strategies (LUI, 2LUPI) pay off "can be statically detected by using
// data summaries and some statistical information", and Section 9
// announces "a platform and index advisor tool, which based on the
// expected dataset and workload, estimates an application's performance
// and cost and picks the best indexing strategy to use".
//
// The advisor builds two artifacts from a corpus sample:
//
//   - a Summary: per-key and per-path document frequencies, a compact data
//     summary in the spirit of dataguides;
//   - a strategy-selectivity estimator: the per-document look-up
//     predicates of package index evaluated over the sample, extrapolated
//     to the full corpus.
//
// From those, Evaluate estimates — without building any index — each
// strategy's per-query look-up size, response time and monetary cost
// under the Section 7 cost model, and Recommend picks the cheapest (or
// fastest) strategy for a whole workload, including "no index" when the
// workload would not amortize an index.
package advisor

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/ec2"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/index"
	"repro/internal/pattern"
	"repro/internal/pricing"
	"repro/internal/xmltree"
)

// Summary is the data summary: document frequencies of index keys and of
// label paths over the sampled corpus.
type Summary struct {
	SampleDocs  int
	TotalDocs   int
	AvgDocBytes int64
	// KeyDocs counts, per index key (e‖label, a‖name, a‖name value,
	// w‖word), the sampled documents containing it.
	KeyDocs map[string]int
	// PathDocs counts, per stored label path, the sampled documents
	// containing it.
	PathDocs map[string]int
}

// scaleFactor extrapolates sample counts to the full corpus.
func (s *Summary) scaleFactor() float64 {
	if s.SampleDocs == 0 {
		return 0
	}
	return float64(s.TotalDocs) / float64(s.SampleDocs)
}

// Advisor estimates per-strategy behaviour from a corpus sample.
type Advisor struct {
	Summary *Summary
	sample  []*xmltree.Document
	book    pricing.PriceBook
	perf    core.PerfModel
	vm      ec2.InstanceType
}

// Config tunes the advisor.
type Config struct {
	// SampleEvery keeps one document in SampleEvery (default 1: the whole
	// corpus is the sample).
	SampleEvery int
	// TotalDocs is the expected corpus size the sample represents; zero
	// means "the sample is the corpus".
	TotalDocs int
	// VM is the instance type queries will run on (default xl).
	VM ec2.InstanceType
	// Perf overrides the performance model.
	Perf core.PerfModel
}

// New builds an advisor from (a sample of) the corpus.
func New(docs []*xmltree.Document, cfg Config) (*Advisor, error) {
	if cfg.SampleEvery < 1 {
		cfg.SampleEvery = 1
	}
	if cfg.VM.Name == "" {
		cfg.VM = ec2.XL
	}
	a := &Advisor{
		Summary: &Summary{
			KeyDocs:  make(map[string]int),
			PathDocs: make(map[string]int),
		},
		book: pricing.Singapore2012(),
		perf: cfg.Perf,
		vm:   cfg.VM,
	}
	a.perf = perfWithDefaults(a.perf)
	var totalBytes int64
	for i, d := range docs {
		if i%cfg.SampleEvery != 0 {
			continue
		}
		a.sample = append(a.sample, d)
		totalBytes += d.SourceBytes
		keys := make(map[string]bool)
		paths := make(map[string]bool)
		for _, n := range d.Nodes() {
			for _, k := range index.NodeKeys(n) {
				keys[k] = true
				paths[index.PathOf(n, k)] = true
			}
		}
		for k := range keys {
			a.Summary.KeyDocs[k]++
		}
		for p := range paths {
			a.Summary.PathDocs[p]++
		}
	}
	if len(a.sample) == 0 {
		return nil, fmt.Errorf("advisor: empty sample")
	}
	a.Summary.SampleDocs = len(a.sample)
	a.Summary.TotalDocs = cfg.TotalDocs
	if a.Summary.TotalDocs < len(docs) {
		a.Summary.TotalDocs = len(docs)
	}
	a.Summary.AvgDocBytes = totalBytes / int64(len(a.sample))
	return a, nil
}

func perfWithDefaults(p core.PerfModel) core.PerfModel {
	d := core.DefaultPerfModel()
	if p.ParseBytesPerECUSec <= 0 {
		p.ParseBytesPerECUSec = d.ParseBytesPerECUSec
	}
	if p.EvalBytesPerECUSec <= 0 {
		p.EvalBytesPerECUSec = d.EvalBytesPerECUSec
	}
	if p.PlanBytesPerECUSec <= 0 {
		p.PlanBytesPerECUSec = d.PlanBytesPerECUSec
	}
	if p.ExtractBytesPerECUSec <= 0 {
		p.ExtractBytesPerECUSec = d.ExtractBytesPerECUSec
	}
	return p
}

// Estimate is one strategy's predicted behaviour for one query.
type Estimate struct {
	// Access is a strategy name, or "none" for the no-index baseline.
	Access string
	// Docs is the estimated number of documents the look-up returns
	// (|D^q_I|; the whole corpus for "none").
	Docs float64
	// GetOps is the exact number of index get operations the look-up
	// issues (|op(q,D,I)|), derived from the query structure.
	GetOps int64
	// Time is the estimated modeled response time.
	Time time.Duration
	// Cost is the estimated per-query cost under the Section 7 model.
	Cost pricing.USD
}

// EstimateQuery predicts every access path's behaviour for one query.
func (a *Advisor) EstimateQuery(q *pattern.Query) ([]Estimate, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	scale := a.Summary.scaleFactor()
	out := []Estimate{{
		Access: "none",
		Docs:   float64(a.Summary.TotalDocs),
	}}
	for _, s := range index.All() {
		var docs float64
		var getOps int64
		for _, t := range q.Patterns {
			pred := index.DocPredicate(s, t)
			n := 0
			for _, d := range a.sample {
				if pred(d) {
					n++
				}
			}
			docs += float64(n) * scale
			getOps += lookupOps(s, t)
		}
		out = append(out, Estimate{Access: s.Name(), Docs: docs, GetOps: getOps})
	}
	for i := range out {
		a.fill(&out[i])
	}
	return out, nil
}

// lookupOps counts the index keys a look-up touches, mirroring the
// look-up algorithms' key derivation.
func lookupOps(s index.Strategy, t *pattern.Tree) int64 {
	q := &pattern.Query{Patterns: []*pattern.Tree{t}}
	// Labels plus predicate-derived word/value keys; 2LUPI touches both
	// sub-indexes.
	n := int64(len(q.Labels()))
	t.Walk(func(nd *pattern.Node) {
		switch nd.Pred.Kind {
		case pattern.Eq, pattern.Contains:
			if !nd.IsAttr {
				n += int64(len(xmltree.Words(nd.Pred.Const)))
			}
		}
	})
	if s == index.TwoLUPI {
		n *= 2
	}
	return n
}

// fill derives time and cost from the document estimate.
func (a *Advisor) fill(e *Estimate) {
	perCore := func(rate float64) float64 { return rate * a.vm.ECUPerCore }
	docBytes := float64(a.Summary.AvgDocBytes)
	// Per-document task: S3 round trip + transfer + parse + evaluate;
	// tasks spread over the machine's cores.
	s3 := 20*time.Millisecond.Seconds() + docBytes/(40<<20)
	cpu := docBytes/perCore(a.perf.ParseBytesPerECUSec) + docBytes/perCore(a.perf.EvalBytesPerECUSec)
	perDoc := s3 + cpu
	seconds := e.Docs * perDoc / float64(a.vm.Cores)
	// Look-up round trips are serial on the coordinator core.
	seconds += float64(e.GetOps) * (4 * time.Millisecond).Seconds()
	e.Time = time.Duration(seconds * float64(time.Second))

	e.Cost = costmodel.QueryCostIndexed(a.book, costmodel.QueryMetrics{
		IndexGetOps:     e.GetOps,
		DocsRetrieved:   int64(e.Docs + 0.5),
		ProcessingHours: e.Time.Hours(),
		VMType:          a.vm.Name,
	})
}

// BuildEstimate predicts what indexing the corpus under a strategy would
// produce and cost, extrapolated from sample extraction.
type BuildEstimate struct {
	Strategy index.Strategy
	// Entries and Items are the predicted index entry and store item
	// counts (|op(D,I)| under per-row billing).
	Entries int64
	Items   int64
	// RawBytes is the predicted sr(D,I).
	RawBytes int64
	// Cost is the predicted build cost under the Section 7 model, with
	// indexing time derived from the store's write capacity.
	Cost pricing.USD
}

// EstimateBuild extracts the sample under the strategy and scales the
// counts to the full corpus; the monetary estimate follows ci$(D,I) with
// the indexing time approximated by the index volume over the store's
// aggregate write capacity (the paper's observed bottleneck).
func (a *Advisor) EstimateBuild(s index.Strategy) BuildEstimate {
	opts := index.DefaultOptions()
	var entries, bytes int64
	for _, d := range a.sample {
		ex := index.Extract(s, d, opts)
		entries += int64(ex.Entries)
		bytes += ex.Bytes
	}
	scale := a.Summary.scaleFactor()
	est := BuildEstimate{
		Strategy: s,
		Entries:  int64(float64(entries) * scale),
		RawBytes: int64(float64(bytes) * scale),
	}
	// One item per entry at these entry sizes; oversized entries split,
	// which the scaled byte volume captures well enough for an estimate.
	est.Items = est.Entries
	// Upload-bound indexing time: write units over aggregate capacity.
	perf := dynamodb.DefaultPerf()
	units := float64(est.RawBytes)/float64(perf.WriteUnitBytes) + float64(est.Items)
	hours := units / perf.WriteCapacityUnits / 3600
	est.Cost = costmodel.IndexBuildCost(a.book, costmodel.DatasetMetrics{
		Docs:          int64(a.Summary.TotalDocs),
		IndexPutOps:   est.Items,
		IndexingHours: hours,
		VMType:        a.vm.Name,
		VMCount:       1,
	})
	return est
}

// Recommendation is the advisor's verdict for a workload.
type Recommendation struct {
	Access string
	// PerRunCost and PerRunTime sum the workload's queries.
	PerRunCost pricing.USD
	PerRunTime time.Duration
	// Estimates holds the per-query detail.
	Estimates map[string][]Estimate // query name -> estimates
}

// Recommend evaluates a workload and returns every access path ranked by
// estimated per-run cost (ties broken by time), cheapest first.
func (a *Advisor) Recommend(queries []*pattern.Query) ([]Recommendation, error) {
	perAccess := map[string]*Recommendation{}
	order := []string{}
	for _, q := range queries {
		ests, err := a.EstimateQuery(q)
		if err != nil {
			return nil, fmt.Errorf("advisor: %s: %w", q.Name, err)
		}
		for _, e := range ests {
			r, ok := perAccess[e.Access]
			if !ok {
				r = &Recommendation{Access: e.Access, Estimates: map[string][]Estimate{}}
				perAccess[e.Access] = r
				order = append(order, e.Access)
			}
			r.PerRunCost += e.Cost
			r.PerRunTime += e.Time
			r.Estimates[q.Name] = append(r.Estimates[q.Name], e)
		}
	}
	out := make([]Recommendation, 0, len(order))
	for _, name := range order {
		out = append(out, *perAccess[name])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].PerRunCost != out[j].PerRunCost {
			return out[i].PerRunCost < out[j].PerRunCost
		}
		return out[i].PerRunTime < out[j].PerRunTime
	})
	return out, nil
}
