package advisor

import (
	"math"
	"testing"

	"repro/internal/pricing"

	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/ec2"
	"repro/internal/index"
	"repro/internal/meter"
	"repro/internal/pattern"
	"repro/internal/workload"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

func corpus(t *testing.T, n int) []*xmltree.Document {
	t.Helper()
	cfg := xmark.DefaultConfig(n)
	cfg.TargetDocBytes = 4 << 10
	var docs []*xmltree.Document
	for i := 0; i < cfg.Docs; i++ {
		gd := xmark.GenerateDoc(cfg, i)
		d, err := xmltree.Parse(gd.URI, gd.Data)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	return docs
}

func TestSummaryCounts(t *testing.T) {
	docs := corpus(t, 60)
	a, err := New(docs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := a.Summary
	if s.SampleDocs != 60 || s.TotalDocs != 60 {
		t.Errorf("sample=%d total=%d", s.SampleDocs, s.TotalDocs)
	}
	// Every document holds a site element.
	if got := s.KeyDocs[index.ElementKey("site")]; got != 60 {
		t.Errorf("esite docs = %d, want 60", got)
	}
	// Item documents are 40%% of the corpus.
	if got := s.KeyDocs[index.ElementKey("item")]; got != 24 {
		t.Errorf("eitem docs = %d, want 24", got)
	}
	if s.AvgDocBytes <= 0 {
		t.Error("no average document size")
	}
}

func TestSamplingExtrapolates(t *testing.T) {
	docs := corpus(t, 120)
	full, err := New(docs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := New(docs, Config{SampleEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Summary.SampleDocs != 30 {
		t.Fatalf("sample size = %d", sampled.Summary.SampleDocs)
	}
	q := pattern.MustParse(`//open_auction[/bidder[/increase]]`)
	ef, _ := full.EstimateQuery(q)
	es, _ := sampled.EstimateQuery(q)
	// The sampled estimate of a common query must land near the full one.
	var fullDocs, sampleDocs float64
	for i := range ef {
		if ef[i].Access == "LUP" {
			fullDocs = ef[i].Docs
			sampleDocs = es[i].Docs
		}
	}
	if fullDocs == 0 {
		t.Fatal("no LUP estimate")
	}
	if ratio := sampleDocs / fullDocs; ratio < 0.5 || ratio > 2 {
		t.Errorf("sampled/full = %.2f (%.1f vs %.1f)", ratio, sampleDocs, fullDocs)
	}
}

// The advisor's selectivity estimates must equal the true look-up sizes
// when the sample is the whole corpus (the predicates are exact).
func TestEstimatesMatchTrueLookupSizes(t *testing.T) {
	docs := corpus(t, 120)
	a, err := New(docs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	store := dynamodb.New(meter.NewLedger())
	for _, s := range index.All() {
		if err := index.CreateTables(store, s); err != nil {
			t.Fatal(err)
		}
	}
	opts := index.OptionsFor(store)
	for _, d := range docs {
		for _, s := range index.All() {
			if _, _, err := index.LoadDocument(store, s, d, opts); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, wq := range workload.XMark()[:6] {
		q := wq.Parse()
		ests, err := a.EstimateQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ests {
			if e.Access == "none" {
				continue
			}
			s, err := index.ByName(e.Access)
			if err != nil {
				t.Fatal(err)
			}
			per, _, err := index.LookupQuery(store, s, q)
			if err != nil {
				t.Fatal(err)
			}
			truth := 0
			for _, uris := range per {
				truth += len(uris)
			}
			if math.Abs(e.Docs-float64(truth)) > 0.5 {
				t.Errorf("%s under %s: estimated %.1f docs, true %d", wq.Name, e.Access, e.Docs, truth)
			}
		}
	}
}

func TestEstimatesOrdering(t *testing.T) {
	docs := corpus(t, 120)
	a, err := New(docs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The split-feature query: LUI strictly sharper than LUP.
	q := pattern.MustParse(`//item[/location="Zanzibar", /payment~"Creditcard"]`)
	ests, err := a.EstimateQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Estimate{}
	for _, e := range ests {
		byName[e.Access] = e
	}
	if !(byName["LU"].Docs >= byName["LUP"].Docs && byName["LUP"].Docs >= byName["LUI"].Docs) {
		t.Errorf("estimates not monotone: %+v", byName)
	}
	if byName["none"].Docs != 120 {
		t.Errorf("no-index docs = %v", byName["none"].Docs)
	}
	// All indexed paths must be estimated cheaper and faster than none.
	for _, s := range index.All() {
		e := byName[s.Name()]
		if e.Cost >= byName["none"].Cost || e.Time >= byName["none"].Time {
			t.Errorf("%s not estimated better than no index: %+v vs %+v", s.Name(), e, byName["none"])
		}
	}
	// 2LUPI pays double look-ups.
	if byName["2LUPI"].GetOps != 2*byName["LUI"].GetOps {
		t.Errorf("2LUPI ops = %d, LUI ops = %d", byName["2LUPI"].GetOps, byName["LUI"].GetOps)
	}
}

func TestRecommendWorkload(t *testing.T) {
	docs := corpus(t, 120)
	a, err := New(docs, Config{VM: ec2.XL})
	if err != nil {
		t.Fatal(err)
	}
	var queries []*pattern.Query
	for _, wq := range workload.XMark() {
		queries = append(queries, wq.Parse())
	}
	ranked, err := a.Recommend(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 5 {
		t.Fatalf("ranked = %d access paths", len(ranked))
	}
	if ranked[0].Access == "none" {
		t.Errorf("no-index recommended over all strategies: %+v", ranked[0])
	}
	if ranked[len(ranked)-1].Access != "none" {
		t.Errorf("no-index should rank last on this workload, got %s", ranked[len(ranked)-1].Access)
	}
	for _, r := range ranked {
		if len(r.Estimates) != len(queries) {
			t.Errorf("%s: estimates for %d queries, want %d", r.Access, len(r.Estimates), len(queries))
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("empty corpus accepted")
	}
	docs := corpus(t, 4)
	if _, err := New(docs, Config{SampleEvery: 100}); err != nil {
		// One document is still sampled (index 0).
		t.Errorf("sparse sampling failed: %v", err)
	}
}

func TestEstimateQueryValidates(t *testing.T) {
	docs := corpus(t, 20)
	a, _ := New(docs, Config{})
	if _, err := a.EstimateQuery(&pattern.Query{}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestEstimateBuildTracksMeasured(t *testing.T) {
	docs := corpus(t, 80)
	a, err := New(docs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Measure the real thing on a bare store.
	store := dynamodb.New(meter.NewLedger())
	for _, s := range index.All() {
		if err := index.CreateTables(store, s); err != nil {
			t.Fatal(err)
		}
	}
	opts := index.OptionsFor(store)
	measured := map[index.Strategy]int64{}
	for _, d := range docs {
		for _, s := range index.All() {
			if _, st, err := index.LoadDocument(store, s, d, opts); err != nil {
				t.Fatal(err)
			} else {
				measured[s] += int64(st.Items)
			}
		}
	}
	var prev pricing.USD
	for _, s := range index.All() {
		est := a.EstimateBuild(s)
		ratio := float64(est.Items) / float64(measured[s])
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("%s: estimated %d items, measured %d (ratio %.2f)", s.Name(), est.Items, measured[s], ratio)
		}
		if est.Cost <= 0 {
			t.Errorf("%s: non-positive cost estimate", s.Name())
		}
		if s == index.TwoLUPI && est.Cost <= prev {
			t.Errorf("2LUPI build (%v) not costlier than LUI (%v)", est.Cost, prev)
		}
		prev = est.Cost
	}
}
