package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/kv"
	"repro/internal/index"
	"repro/internal/meter"
	"repro/internal/workload"
)

// This file holds ablation studies for the design choices DESIGN.md calls
// out: compressed binary identifier encoding, write batching, and 2LUPI's
// semijoin reduction. (Holistic vs binary twig joins are exercised as Go
// benchmarks in bench_test.go.)

func xmarkWorkload() []workload.Query { return workload.XMark() }

// AblationResult is a generic two-variant measurement.
type AblationResult struct {
	Name     string
	VariantA string
	VariantB string
	A, B     float64
	Unit     string
}

func (r AblationResult) String() string {
	return fmt.Sprintf("%-28s: %s=%.2f %s, %s=%.2f %s (ratio %.2fx)",
		r.Name, r.VariantA, r.A, r.Unit, r.VariantB, r.B, r.Unit, safeRatio(r.A, r.B))
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// RunAblationIDEncoding loads the LUI index with the compressed binary
// codec versus the plain text codec (both on DynamoDB) and compares stored
// bytes and modeled upload time — the "compressed binary values" win of
// Section 8.2.
func RunAblationIDEncoding(c *Corpus) ([]AblationResult, error) {
	measure := func(binary bool) (int64, time.Duration, error) {
		store := dynamodb.New(meter.NewLedger())
		if err := index.CreateTables(store, index.LUI); err != nil {
			return 0, 0, err
		}
		opts := index.OptionsFor(store)
		opts.BinaryIDs = binary
		var upload time.Duration
		for _, d := range c.Parsed {
			dur, _, err := index.LoadDocument(store, index.LUI, d, opts)
			if err != nil {
				return 0, 0, err
			}
			upload += dur
		}
		var bytes int64
		for _, t := range index.LUI.Tables() {
			bytes += store.TableBytes(t)
		}
		return bytes, upload, nil
	}
	tb, tt, err := measure(false)
	if err != nil {
		return nil, err
	}
	bb, bt, err := measure(true)
	if err != nil {
		return nil, err
	}
	return []AblationResult{
		{Name: "LUI index bytes", VariantA: "text IDs", VariantB: "binary IDs",
			A: float64(tb) / (1 << 20), B: float64(bb) / (1 << 20), Unit: "MB"},
		{Name: "LUI upload time", VariantA: "text IDs", VariantB: "binary IDs",
			A: tt.Seconds(), B: bt.Seconds(), Unit: "s"},
	}, nil
}

// RunAblationBatching loads the LUP index with batchPut(25) versus
// singleton puts and compares API requests and modeled upload time — why
// the loader batches documents (Section 8.2).
func RunAblationBatching(c *Corpus) ([]AblationResult, error) {
	measure := func(batch int) (int64, time.Duration, error) {
		ledger := meter.NewLedger()
		perf := dynamodb.DefaultPerf()
		store := kv.NewMemStore(kv.Config{
			Backend: dynamodb.Backend,
			Limits: kv.Limits{
				MaxItemBytes:   dynamodb.MaxItemBytes,
				MaxValueBytes:  dynamodb.MaxItemBytes,
				BatchPutItems:  batch,
				BatchGetKeys:   100,
				SupportsBinary: true,
			},
			Perf:            perf,
			PerItemOverhead: 100,
			Ledger:          ledger,
		})
		if err := index.CreateTables(store, index.LUP); err != nil {
			return 0, 0, err
		}
		opts := index.OptionsFor(store)
		var upload time.Duration
		for _, d := range c.Parsed {
			dur, _, err := index.LoadDocument(store, index.LUP, d, opts)
			if err != nil {
				return 0, 0, err
			}
			upload += dur
		}
		return ledger.Snapshot().Get(dynamodb.Backend, "put").Calls, upload, nil
	}
	singleReqs, singleTime, err := measure(1)
	if err != nil {
		return nil, err
	}
	batchReqs, batchTime, err := measure(25)
	if err != nil {
		return nil, err
	}
	return []AblationResult{
		{Name: "LUP upload API requests", VariantA: "put(1)", VariantB: "batchPut(25)",
			A: float64(singleReqs), B: float64(batchReqs), Unit: "requests"},
		{Name: "LUP upload time", VariantA: "put(1)", VariantB: "batchPut(25)",
			A: singleTime.Seconds(), B: batchTime.Seconds(), Unit: "s"},
	}, nil
}

// RunAblationPathCompression loads the LUP index with and without the
// front-coded path lists (the improvement suggested by the paper's
// conclusion) and compares stored bytes and modeled upload time.
func RunAblationPathCompression(c *Corpus) ([]AblationResult, error) {
	measure := func(compress bool) (int64, time.Duration, error) {
		store := dynamodb.New(meter.NewLedger())
		if err := index.CreateTables(store, index.LUP); err != nil {
			return 0, 0, err
		}
		opts := index.OptionsFor(store)
		opts.CompressPaths = compress
		var upload time.Duration
		for _, d := range c.Parsed {
			dur, _, err := index.LoadDocument(store, index.LUP, d, opts)
			if err != nil {
				return 0, 0, err
			}
			upload += dur
		}
		var bytes int64
		for _, t := range index.LUP.Tables() {
			bytes += store.TableBytes(t)
		}
		return bytes, upload, nil
	}
	pb, pt, err := measure(false)
	if err != nil {
		return nil, err
	}
	cb, ct, err := measure(true)
	if err != nil {
		return nil, err
	}
	return []AblationResult{
		{Name: "LUP index bytes", VariantA: "plain paths", VariantB: "front-coded",
			A: float64(pb) / (1 << 20), B: float64(cb) / (1 << 20), Unit: "MB"},
		{Name: "LUP upload time", VariantA: "plain paths", VariantB: "front-coded",
			A: pt.Seconds(), B: ct.Seconds(), Unit: "s"},
	}, nil
}

// RunAblationSemijoin compares, per query, the documents whose identifier
// streams enter the holistic twig join under plain LUI versus 2LUPI with
// its LUP-reduction (the semijoin of Figure 5).
func RunAblationSemijoin(e *QueryEnv) (string, error) {
	var b strings.Builder
	b.WriteString("Ablation: twig-join candidate documents, LUI vs 2LUPI (semijoin reduction of Figure 5)\n")
	fmt.Fprintf(&b, "%-6s | %-10s | %-16s\n", "query", "LUI", "2LUPI(reduced)")
	for _, q := range e.Queries {
		p := q.Parse()
		wLUI := e.Warehouse(AccessPath(index.LUI.Name()))
		_, sLUI, err := index.LookupQuery(wLUI.Store(), index.LUI, p)
		if err != nil {
			return "", err
		}
		w2 := e.Warehouse(AccessPath(index.TwoLUPI.Name()))
		_, s2, err := index.LookupQuery(w2.Store(), index.TwoLUPI, p)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-6s | %-10d | %-16d\n", q.Name, sLUI.TwigCandidates, s2.TwigCandidates)
	}
	return b.String(), nil
}
