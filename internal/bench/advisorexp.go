package bench

import (
	"fmt"
	"strings"

	"repro/internal/advisor"
	"repro/internal/cloud/ec2"
	"repro/internal/index"
	"repro/internal/pattern"
)

// RunAdvisorAccuracy is an extension experiment: it runs the future-work
// index advisor (Sections 8.5/9) against the measured ground truth — the
// advisor estimates each strategy's look-up size from a corpus sample and
// its recommendation is compared with the measured per-query winner.
func RunAdvisorAccuracy(e *QueryEnv, sampleEvery int) (string, error) {
	adv, err := advisor.New(e.Corpus.Parsed, advisor.Config{SampleEvery: sampleEvery, VM: ec2.XL})
	if err != nil {
		return "", err
	}
	measured, err := RunTable5(e)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Advisor accuracy (extension): estimated vs measured look-up documents, 1-in-%d sample\n", sampleEvery)
	fmt.Fprintf(&b, "%-6s | %-20s | %-20s | %-20s\n", "query", "LU est/meas", "LUP est/meas", "LUI est/meas")
	var queries []*pattern.Query
	for i, wq := range e.Queries {
		q := wq.Parse()
		queries = append(queries, q)
		ests, err := adv.EstimateQuery(q)
		if err != nil {
			return "", err
		}
		byName := map[string]advisor.Estimate{}
		for _, est := range ests {
			byName[est.Access] = est
		}
		row := measured[i]
		cell := func(s index.Strategy) string {
			return fmt.Sprintf("%.0f / %d", byName[s.Name()].Docs, row.DocIDs[s])
		}
		fmt.Fprintf(&b, "%-6s | %-20s | %-20s | %-20s\n", wq.Name, cell(index.LU), cell(index.LUP), cell(index.LUI))
	}
	ranked, err := adv.Recommend(queries)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "advisor recommendation for the workload: %s (estimated %s / run)\n",
		ranked[0].Access, ranked[0].PerRunCost)
	return b.String(), nil
}
