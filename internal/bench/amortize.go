package bench

import (
	"fmt"
	"strings"

	"repro/internal/costmodel"
	"repro/internal/index"
	"repro/internal/pricing"
)

// This file regenerates Figure 13: for each strategy, the cumulated
// per-run benefit (workload cost without index minus with index, on a
// large instance) against the index building cost. The index has paid for
// itself where the curve crosses zero.

// Fig13Row is one strategy's amortization data.
type Fig13Row struct {
	Strategy  index.Strategy
	BuildCost pricing.USD
	Benefit   pricing.USD // per workload run
	BreakEven int         // runs to recover the build cost
	Curve     []pricing.USD
}

// RunFig13 combines the indexing costs (Table 6 measurements) with the
// workload costs (Figure 11 measurements on large instances).
func RunFig13(indexing []IndexingRow, cells []Fig9Cell, runs int) []Fig13Row {
	noIndex := WorkloadCost(cells, NoIndex, "l")
	var rows []Fig13Row
	for _, ir := range indexing {
		indexed := WorkloadCost(cells, AccessPath(ir.Strategy.Name()), "l")
		benefit := costmodel.Benefit(noIndex, indexed)
		rows = append(rows, Fig13Row{
			Strategy:  ir.Strategy,
			BuildCost: ir.Cost.Total(),
			Benefit:   benefit,
			BreakEven: costmodel.BreakEvenRuns(ir.Cost.Total(), benefit),
			Curve:     costmodel.AmortizationCurve(ir.Cost.Total(), benefit, runs),
		})
	}
	return rows
}

// Fig13 renders the amortization table.
func Fig13(rows []Fig13Row) string {
	var b strings.Builder
	b.WriteString("Figure 13: index cost amortization (large instance)\n")
	fmt.Fprintf(&b, "%-8s | %-12s | %-12s | %-10s\n", "Strategy", "build cost", "benefit/run", "break-even")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s | %-12s | %-12s | %-10d\n",
			r.Strategy.Name(), usd(r.BuildCost), usd(r.Benefit), r.BreakEven)
	}
	b.WriteString("\ncumulated benefit - build cost by run count:\n")
	fmt.Fprintf(&b, "%-6s", "runs")
	for _, r := range rows {
		fmt.Fprintf(&b, " | %-12s", r.Strategy.Name())
	}
	b.WriteString("\n")
	if len(rows) > 0 {
		for i := range rows[0].Curve {
			fmt.Fprintf(&b, "%-6d", i)
			for _, r := range rows {
				fmt.Fprintf(&b, " | %-12s", usd(r.Curve[i]))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
