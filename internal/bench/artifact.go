package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/cloud/ec2"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// This file produces the machine-readable benchmark artifact (BENCH_<n>.json
// in the repo root tracks the trajectory across PRs) and the benchcmp-style
// comparison between two artifacts. The artifact holds the wall-clock
// results of the key hot-path benchmarks plus the per-stage observability
// table of a traced run, so a regression in either joins CPU or modeled
// cost shows up in one diff.

// ArtifactVersion is bumped when the schema changes incompatibly.
const ArtifactVersion = 1

// BenchEntry is one benchmark's measured result.
type BenchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

// StageEntry is one pipeline stage of the traced observability run.
type StageEntry struct {
	Stage   string  `json:"stage"`
	Spans   int     `json:"spans"`
	TotalNs int64   `json:"total_ns"`
	MeanNs  int64   `json:"mean_ns"`
	Calls   int64   `json:"calls"`
	Units   int64   `json:"units"`
	Bytes   int64   `json:"bytes"`
	CostUSD float64 `json:"cost_usd"`
}

// TailEntry is one arm (hedging off/on) of the tail-latency experiment:
// modeled latency percentiles of cold scatter look-ups under seeded
// stragglers, plus the billed requests the arm cost.
type TailEntry struct {
	Hedged      bool  `json:"hedged"`
	Calls       int   `json:"calls"`
	P50Ns       int64 `json:"p50_ns"`
	P95Ns       int64 `json:"p95_ns"`
	P99Ns       int64 `json:"p99_ns"`
	BilledGets  int64 `json:"billed_gets"`
	HedgeFired  int64 `json:"hedge_fired"`
	HedgeWon    int64 `json:"hedge_won"`
	HedgeWasted int64 `json:"hedge_wasted"`
}

// ServeEntry is one (mix, concurrency) arm of the serving ladder: the
// query daemon under seeded closed-loop load. Latency and throughput are
// wall clock, so like Benchmarks they are informational across machines;
// the offered sequence itself is deterministic per seed.
type ServeEntry struct {
	Dist          string  `json:"dist"`
	Concurrency   int     `json:"concurrency"`
	Requests      int     `json:"requests"`
	Completed     int     `json:"completed"`
	Shed          int     `json:"shed"`
	Errors        int     `json:"errors"`
	P50Ns         int64   `json:"p50_ns"`
	P95Ns         int64   `json:"p95_ns"`
	P99Ns         int64   `json:"p99_ns"`
	ThroughputQPS float64 `json:"throughput_qps"`
	CostPer1M     float64 `json:"cost_per_1m"`
}

// MutateEntry is one (write fraction, compaction interval) arm of the
// mixed read/write ladder over a mutable-corpus warehouse: throughput and
// latency are wall clock; the billed re-writes and modeled $/1M-mutations
// are deterministic per seed.
type MutateEntry struct {
	WriteEvery     int     `json:"write_every"`
	CompactEvery   int     `json:"compact_every"`
	Requests       int     `json:"requests"`
	Updates        int     `json:"updates"`
	Removes        int     `json:"removes"`
	P50Ns          int64   `json:"p50_ns"`
	P95Ns          int64   `json:"p95_ns"`
	WriteP95Ns     int64   `json:"write_p95_ns"`
	ThroughputQPS  float64 `json:"throughput_qps"`
	CompactPuts    int64   `json:"compact_puts"`
	CompactDeletes int64   `json:"compact_deletes"`
	WriteAmp       float64 `json:"write_amp"`
	CostPer1M      float64 `json:"cost_per_1m_mutations"`
}

// Artifact is the whole benchmark snapshot.
type Artifact struct {
	Version    int          `json:"version"`
	Scale      string       `json:"scale"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Benchmarks []BenchEntry `json:"benchmarks"`
	Stages     []StageEntry `json:"stages"`
	// Tail is modeled (not wall-clock) and deterministic per seed, so it
	// diffs exactly across machines; absent in pre-tail artifacts.
	Tail []TailEntry `json:"tail,omitempty"`
	// Serve is the serving ladder; absent in pre-serve artifacts.
	Serve []ServeEntry `json:"serve,omitempty"`
	// Mutate is the mixed read/write ladder over a mutable corpus; absent
	// in pre-mutability artifacts.
	Mutate []MutateEntry `json:"mutate,omitempty"`
}

// RunArtifact measures the key hot-path benchmarks on the given scale and
// folds in the per-stage observability table. The benchmark set is small on
// purpose — look-up (LUI sequential and cached, 2LUPI), the full query
// pipeline, and the identifier codec in both binary formats — the paths the
// posting-list representation directly feeds.
func RunArtifact(scale Scale) (*Artifact, error) {
	c, err := NewCorpus(scale)
	if err != nil {
		return nil, err
	}
	env, err := NewQueryEnv(c)
	if err != nil {
		return nil, err
	}
	q := workload.XMark()[3].Parse().Patterns[0]

	a := &Artifact{
		Version:    ArtifactVersion,
		Scale:      scale.Name,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	var benchErr error
	add := func(name string, fn func(b *testing.B)) {
		if benchErr != nil {
			return
		}
		r := testing.Benchmark(fn)
		if r.N == 0 {
			benchErr = fmt.Errorf("bench: %s did not run", name)
			return
		}
		a.Benchmarks = append(a.Benchmarks, BenchEntry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: int64(r.AllocsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		})
	}

	lookup := func(s index.Strategy, opts index.LookupOptions) func(b *testing.B) {
		w := env.Warehouse(AccessPath(s.Name()))
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := index.LookupPattern(w.Store(), s, q, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	add("LookupPattern/LUI/seq", lookup(index.LUI, index.LookupOptions{Concurrency: 1}))
	add("LookupPattern/LUI/cached", lookup(index.LUI, index.LookupOptions{
		Concurrency: 8, Cache: index.NewPostingCache(index.DefaultCacheBytes)}))
	add("LookupPattern/2LUPI/seq", lookup(index.TwoLUPI, index.LookupOptions{Concurrency: 1}))
	add("LookupPattern/LU/seq", lookup(index.LU, index.LookupOptions{Concurrency: 1}))
	add("LookupPattern/LUP/seq", lookup(index.LUP, index.LookupOptions{Concurrency: 1}))

	queryWarehouse := env.Warehouse(AccessPath(index.TwoLUPI.Name()))
	queryProc := ec2.Launch(queryWarehouse.Ledger(), ec2.Large)
	queryText := workload.XMark()[3].Text
	add("ProcessQuery/2LUPI", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := queryWarehouse.RunQueryOn(queryProc, queryText, true); err != nil {
				b.Fatal(err)
			}
		}
	})

	var ids []xmltree.NodeID
	for i := int32(1); i <= 4096; i++ {
		ids = append(ids, xmltree.NodeID{Pre: i * 3, Post: i, Depth: 5})
	}
	legacy := index.EncodeIDsBinary(ids, 48<<10)
	blocked := index.EncodeIDsBlocked(ids, 48<<10)
	add("IDCodec/encode-blocked", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			index.EncodeIDsBlocked(ids, 48<<10)
		}
	})
	decode := func(blobs [][]byte) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, blob := range blobs {
					if _, err := index.DecodeIDsBinary(blob); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	add("IDCodec/decode-legacy", decode(legacy))
	add("IDCodec/decode-blocked", decode(blocked))

	// The two blocked payload families head to head over the same set:
	// decode-blocked above tracks whatever the default writer emits (packed
	// since the bit-packed format landed), while this pair keeps both wire
	// formats measured explicitly so their ratio is visible in one artifact.
	blockedVarint := index.EncodeIDsBlockedVarint(ids, 48<<10)
	add("DecodeBlock/varint", decode(blockedVarint))
	add("DecodeBlock/packed", decode(blocked))

	// LUP over front-coded path blocks: the prefix-skip matcher's hot path.
	// The stock LUP warehouse stores plain path strings, so this entry needs
	// its own compressed-path build.
	lupW, _, _, err := BuildWarehouseCfg(c, core.Config{Strategy: index.LUP, CompressPaths: true}, 8, ec2.Large)
	if err != nil {
		return nil, err
	}
	add("LookupPattern/LUP/compressed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := index.LookupPattern(lupW.Store(), index.LUP, q, index.LookupOptions{Concurrency: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	if benchErr != nil {
		return nil, benchErr
	}

	rows, _, err := RunObs(c)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		a.Stages = append(a.Stages, StageEntry{
			Stage:   r.Stage,
			Spans:   r.Spans,
			TotalNs: r.Total.Nanoseconds(),
			MeanNs:  r.Mean.Nanoseconds(),
			Calls:   r.Calls,
			Units:   r.Units,
			Bytes:   r.Bytes,
			CostUSD: float64(r.Cost),
		})
	}

	points, err := RunTail(42, 8, 5, 160)
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		a.Tail = append(a.Tail, TailEntry{
			Hedged:      p.Hedged,
			Calls:       p.Calls,
			P50Ns:       p.P50.Nanoseconds(),
			P95Ns:       p.P95.Nanoseconds(),
			P99Ns:       p.P99.Nanoseconds(),
			BilledGets:  p.BilledGets,
			HedgeFired:  p.Fired,
			HedgeWon:    p.Won,
			HedgeWasted: p.WastedBill,
		})
	}

	// The serving ladder reuses the 2LUPI warehouse the query benchmarks
	// ran against; the daemon's processor fleet and frontend are torn down
	// inside RunServe, leaving the warehouse untouched.
	servePoints, err := RunServe(queryWarehouse, 42, 4)
	if err != nil {
		return nil, err
	}
	for _, p := range servePoints {
		a.Serve = append(a.Serve, ServeEntry{
			Dist:          p.Dist,
			Concurrency:   p.Concurrency,
			Requests:      p.Requests,
			Completed:     p.Completed,
			Shed:          p.Shed,
			Errors:        p.Errors,
			P50Ns:         p.P50.Nanoseconds(),
			P95Ns:         p.P95.Nanoseconds(),
			P99Ns:         p.P99.Nanoseconds(),
			ThroughputQPS: p.ThroughputQPS,
			CostPer1M:     p.CostPer1M,
		})
	}

	// The mixed read/write ladder builds its own mutable warehouses from
	// the same corpus — compaction counters and billing stay per-arm.
	mutatePoints, err := RunMutate(c, 42, 4)
	if err != nil {
		return nil, err
	}
	for _, p := range mutatePoints {
		a.Mutate = append(a.Mutate, MutateEntry{
			WriteEvery:     p.WriteEvery,
			CompactEvery:   p.CompactEvery,
			Requests:       p.Requests,
			Updates:        p.Updates,
			Removes:        p.Removes,
			P50Ns:          p.P50.Nanoseconds(),
			P95Ns:          p.P95.Nanoseconds(),
			WriteP95Ns:     p.WriteP95.Nanoseconds(),
			ThroughputQPS:  p.ThroughputQPS,
			CompactPuts:    p.CompactPuts,
			CompactDeletes: p.CompactDeletes,
			WriteAmp:       p.WriteAmp,
			CostPer1M:      p.CostPer1M,
		})
	}
	return a, nil
}

// WriteArtifact marshals the artifact to path with stable field order.
func WriteArtifact(a *Artifact, path string) error {
	sort.Slice(a.Benchmarks, func(i, j int) bool { return a.Benchmarks[i].Name < a.Benchmarks[j].Name })
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadArtifact loads an artifact from path.
func ReadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if a.Version != ArtifactVersion {
		return nil, fmt.Errorf("bench: %s: artifact version %d, want %d", path, a.Version, ArtifactVersion)
	}
	return &a, nil
}

// CompareArtifacts renders a benchcmp-style diff of two artifacts and
// returns the names of the benchmarks whose wall-clock ns/op regressed by
// more than threshold (0.10 = 10%). Benchmarks present on only one side are
// listed but never counted as regressions — hardware and corpus scale
// differences make cross-machine comparisons informational, so callers
// decide what a regression means for them.
func CompareArtifacts(old, new *Artifact, threshold float64) (string, []string) {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark comparison: old scale=%s new scale=%s (flagging >%.0f%% ns/op regressions)\n",
		old.Scale, new.Scale, threshold*100)
	fmt.Fprintf(&b, "%-28s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	oldBy := map[string]BenchEntry{}
	for _, e := range old.Benchmarks {
		oldBy[e.Name] = e
	}
	names := make([]string, 0, len(new.Benchmarks))
	newBy := map[string]BenchEntry{}
	for _, e := range new.Benchmarks {
		names = append(names, e.Name)
		newBy[e.Name] = e
	}
	sort.Strings(names)
	var regressed []string
	for _, n := range names {
		ne := newBy[n]
		oe, ok := oldBy[n]
		if !ok {
			fmt.Fprintf(&b, "%-28s %14s %14.0f %8s\n", n, "-", ne.NsPerOp, "new")
			continue
		}
		delta := (ne.NsPerOp - oe.NsPerOp) / oe.NsPerOp
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressed = append(regressed, n)
		}
		fmt.Fprintf(&b, "%-28s %14.0f %14.0f %+7.1f%%%s\n", n, oe.NsPerOp, ne.NsPerOp, delta*100, mark)
	}
	for _, e := range old.Benchmarks {
		if _, ok := newBy[e.Name]; !ok {
			fmt.Fprintf(&b, "%-28s %14.0f %14s %8s\n", e.Name, e.NsPerOp, "-", "gone")
		}
	}
	return b.String(), regressed
}
