package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func testArtifact(ns map[string]float64) *Artifact {
	a := &Artifact{Version: ArtifactVersion, Scale: "tiny"}
	for n, v := range ns {
		a.Benchmarks = append(a.Benchmarks, BenchEntry{Name: n, NsPerOp: v, N: 100})
	}
	return a
}

func TestArtifactRoundTrip(t *testing.T) {
	a := testArtifact(map[string]float64{"Lookup/seq": 1000, "Codec/decode": 50})
	a.Stages = []StageEntry{{Stage: "query", Spans: 10, TotalNs: 12345, CostUSD: 0.001}}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteArtifact(a, path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 2 || len(got.Stages) != 1 || got.Scale != "tiny" {
		t.Fatalf("round trip = %+v", got)
	}
	// Version mismatches must be rejected, not silently compared.
	a.Version = ArtifactVersion + 1
	if err := WriteArtifact(a, path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadArtifact(path); err == nil {
		t.Fatal("version mismatch accepted")
	}
}

func TestCompareArtifactsFlagsRegressions(t *testing.T) {
	old := testArtifact(map[string]float64{
		"steady": 1000, "faster": 1000, "slower": 1000, "gone": 1000})
	cur := testArtifact(map[string]float64{
		"steady": 1050, "faster": 500, "slower": 1500, "added": 10})
	report, regressed := CompareArtifacts(old, cur, 0.10)
	if len(regressed) != 1 || regressed[0] != "slower" {
		t.Fatalf("regressed = %v, want [slower]", regressed)
	}
	for _, want := range []string{"REGRESSION", "steady", "gone", "added", "+50.0%", "-50.0%"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// A 5% drift stays under the default threshold.
	if strings.Count(report, "REGRESSION") != 1 {
		t.Errorf("report flags the wrong rows:\n%s", report)
	}
}
