// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section 8) on the simulated cloud.
//
// The paper's corpus is 20,000 XMark documents totalling 40 GB. A Scale
// shrinks that corpus while preserving its composition; all modeled times
// and metered costs scale accordingly, so the *shapes* the paper reports —
// which strategy wins, by what factor, where curves cross — are reproduced
// at any scale. cmd/benchall runs every experiment and prints paper-style
// tables; bench_test.go exposes each one as a Go benchmark.
//
// Experiments:
//
//	Table 4  indexing times per strategy on 8 large instances
//	Figure 7 indexing time vs corpus size
//	Figure 8 index sizes and monthly storage cost, with/without keywords
//	Table 5  per-query look-up selectivity per strategy
//	Figure 9 per-query response times and their decomposition (l and xl)
//	Figure 10 workload x16 on 1 vs 8 instances
//	Table 6  indexing monetary cost decomposition
//	Figure 11 per-query monetary cost (l and xl)
//	Figure 12 workload cost decomposition per strategy
//	Figure 13 index cost amortization
//	Table 7  indexing: DynamoDB (this work) vs SimpleDB ([8])
//	Table 8  querying: DynamoDB vs SimpleDB
//	plus ablations of the design choices listed in DESIGN.md.
package bench

import (
	"fmt"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/pricing"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

// Scale describes a corpus size as a fraction of the paper's 40 GB.
type Scale struct {
	Name     string
	Docs     int
	DocBytes int
}

// Tiny is for unit tests and quick smoke runs.
func Tiny() Scale { return Scale{Name: "tiny", Docs: 80, DocBytes: 4 << 10} }

// Small is the default for Go benchmarks.
func Small() Scale { return Scale{Name: "small", Docs: 200, DocBytes: 8 << 10} }

// Default is what cmd/benchall runs: 400 documents of 16 KB.
func Default() Scale { return Scale{Name: "default", Docs: 400, DocBytes: 16 << 10} }

// PaperFraction is the fraction of the paper's 40 GB corpus this scale
// represents, by bytes. Byte-proportional quantities (index rows, compute
// time, transfer) extrapolate with it.
func (s Scale) PaperFraction() float64 {
	return float64(int64(s.Docs)*int64(s.DocBytes)) / float64(40<<30)
}

// DocsFraction is the fraction of the paper's 20,000 documents, by count.
// Per-document quantities (S3 puts/gets, queue requests) extrapolate with
// it rather than with the byte fraction, since the scaled corpus uses
// smaller documents.
func (s Scale) DocsFraction() float64 {
	return float64(s.Docs) / 20000
}

// Config returns the generator configuration of the scale.
func (s Scale) Config() xmark.Config {
	cfg := xmark.DefaultConfig(s.Docs)
	cfg.TargetDocBytes = s.DocBytes
	return cfg
}

// Corpus generates and parses the corpus once.
type Corpus struct {
	Scale  Scale
	Docs   []xmark.Doc
	Parsed []*xmltree.Document
	Bytes  int64
}

// NewCorpus materializes a corpus.
func NewCorpus(s Scale) (*Corpus, error) {
	cfg := s.Config()
	c := &Corpus{Scale: s}
	for i := 0; i < cfg.Docs; i++ {
		gd := xmark.GenerateDoc(cfg, i)
		d, err := xmltree.Parse(gd.URI, gd.Data)
		if err != nil {
			return nil, fmt.Errorf("bench: corpus doc %d: %w", i, err)
		}
		c.Docs = append(c.Docs, gd)
		c.Parsed = append(c.Parsed, d)
		c.Bytes += int64(len(gd.Data))
	}
	return c, nil
}

// MB returns the corpus size in megabytes.
func (c *Corpus) MB() float64 { return float64(c.Bytes) / (1 << 20) }

// Strategies under study, in the paper's order.
func Strategies() []index.Strategy { return index.All() }

// BuildWarehouse provisions a warehouse on the given backend, uploads the
// corpus (front-end steps 1-3) and indexes it on a fleet. It returns the
// warehouse, the indexing report and the fleet used.
func BuildWarehouse(c *Corpus, s index.Strategy, backend string, fleetSize int, typ ec2.InstanceType) (*core.Warehouse, core.IndexReport, []*ec2.Instance, error) {
	return BuildWarehouseCfg(c, core.Config{Strategy: s, Backend: backend}, fleetSize, typ)
}

// BuildWarehouseCfg is BuildWarehouse with full control over the warehouse
// configuration, so experiments can toggle bulk loading, pipeline depth or
// caching on the indexing path.
func BuildWarehouseCfg(c *Corpus, cfg core.Config, fleetSize int, typ ec2.InstanceType) (*core.Warehouse, core.IndexReport, []*ec2.Instance, error) {
	w, err := core.New(cfg)
	if err != nil {
		return nil, core.IndexReport{}, nil, err
	}
	for _, d := range c.Docs {
		if err := w.SubmitDocument(d.URI, d.Data); err != nil {
			return nil, core.IndexReport{}, nil, err
		}
	}
	// SubmitDocument queued loader messages; IndexCorpusOn drains them.
	fleet := ec2.LaunchFleet(w.Ledger(), typ, fleetSize)
	rep, err := w.IndexCorpusOn(fleet, nil)
	if err != nil {
		return nil, rep, nil, err
	}
	return w, rep, fleet, nil
}

// scaledHHMM renders a duration extrapolated to the paper's full corpus,
// in the hh:mm style of Table 4, next to the measured value.
func scaledHHMM(d time.Duration, fraction float64) string {
	if fraction <= 0 {
		return "-"
	}
	full := time.Duration(float64(d) / fraction)
	return fmt.Sprintf("%s (measured %.1fs)", formatHHMM(full), d.Seconds())
}

func formatHHMM(d time.Duration) string {
	total := int(d.Round(time.Minute) / time.Minute)
	return fmt.Sprintf("%d:%02d", total/60, total%60)
}

// usd formats a dollar amount.
func usd(v pricing.USD) string { return fmt.Sprintf("$%.5f", float64(v)) }
