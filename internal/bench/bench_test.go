package bench

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/cloud/ec2"
	"repro/internal/index"
	"repro/internal/pattern"
)

// The shape tests below are the machine-checked counterpart of
// EXPERIMENTS.md: each asserts the qualitative findings of one paper table
// or figure (who wins, by roughly what factor, where crossings fall) on
// the scaled corpus.

var (
	envOnce    sync.Once
	envCorpus  *Corpus
	envShared  *QueryEnv
	envCells   []Fig9Cell
	envErr     error
	shapeScale = Scale{Name: "shape", Docs: 240, DocBytes: 4 << 10}
)

func sharedEnv(t *testing.T) (*QueryEnv, []Fig9Cell) {
	t.Helper()
	envOnce.Do(func() {
		envCorpus, envErr = NewCorpus(shapeScale)
		if envErr != nil {
			return
		}
		envShared, envErr = NewQueryEnv(envCorpus)
		if envErr != nil {
			return
		}
		envCells, envErr = RunFig9(envShared)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envShared, envCells
}

func durOf(rows []IndexingRow, s index.Strategy) float64 {
	for _, r := range rows {
		if r.Strategy == s {
			return r.Total.Seconds()
		}
	}
	return -1
}

// Table 4 / Figure 7 shape: indexing time ordering LU < LUI < LUP < 2LUPI,
// and near-linear scaling in corpus size.
func TestIndexingTimeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	e, _ := sharedEnv(t)
	rows := e.Rows
	lu, lui, lup, two := durOf(rows, index.LU), durOf(rows, index.LUI), durOf(rows, index.LUP), durOf(rows, index.TwoLUPI)
	if !(lu < lui && lui < lup && lup < two) {
		t.Errorf("indexing time ordering: LU=%.2f LUI=%.2f LUP=%.2f 2LUPI=%.2f", lu, lui, lup, two)
	}
	// Figure 7: linear in data size. Compare quarter vs full corpus.
	points, err := RunFig7(e.Corpus, 8, ec2.Large)
	if err != nil {
		t.Fatal(err)
	}
	byFrac := map[float64]float64{}
	for _, p := range points {
		if p.Strategy == index.LUP {
			byFrac[p.Fraction] = p.Total.Seconds()
		}
	}
	ratio := byFrac[1.0] / byFrac[0.25]
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("Fig7 linearity: full/quarter = %.2f, want ~4", ratio)
	}
}

// Figure 8 shape: index size ordering, keyword-free indexes smaller, and a
// noticeable (but sublinear) store overhead.
func TestIndexSizeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	e, _ := sharedEnv(t)
	rows, xmlBytes, err := RunFig8(e.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	size := map[index.Strategy]int64{}
	for _, r := range rows {
		size[r.Strategy] = r.FullText.RawBytes
		if r.NoKeywords.RawBytes >= r.FullText.RawBytes {
			t.Errorf("%s: keyword-free index not smaller", r.Strategy.Name())
		}
		if r.FullText.OvhBytes <= 0 {
			t.Errorf("%s: no store overhead measured", r.Strategy.Name())
		}
		if r.FullText.MonthlyCost <= r.NoKeywords.MonthlyCost {
			t.Errorf("%s: full-text storage not costlier", r.Strategy.Name())
		}
	}
	if !(size[index.LU] < size[index.LUI] && size[index.LUI] < size[index.LUP] && size[index.LUP] < size[index.TwoLUPI]) {
		t.Errorf("index size ordering violated: %v", size)
	}
	// LUP and 2LUPI full-text indexes are in the order of the data itself.
	if size[index.TwoLUPI] < xmlBytes/2 {
		t.Errorf("2LUPI index (%d) implausibly small next to data (%d)", size[index.TwoLUPI], xmlBytes)
	}
}

// Table 5 shape: LU ⊇ LUP ⊇ LUI = 2LUPI, LUI exact except for the range
// query q5, and at least one strict gap at each refinement step.
func TestSelectivityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	e, _ := sharedEnv(t)
	rows, err := RunTable5(e)
	if err != nil {
		t.Fatal(err)
	}
	var luGap, lupGap bool
	for _, r := range rows {
		lu, lup, lui, two := r.DocIDs[index.LU], r.DocIDs[index.LUP], r.DocIDs[index.LUI], r.DocIDs[index.TwoLUPI]
		if !(lu >= lup && lup >= lui) {
			t.Errorf("%s: LU=%d LUP=%d LUI=%d not monotone", r.Query, lu, lup, lui)
		}
		if lui != two {
			t.Errorf("%s: LUI=%d != 2LUPI=%d", r.Query, lui, two)
		}
		if lui < r.DocsResults {
			t.Errorf("%s: LUI=%d below true %d (false negatives)", r.Query, lui, r.DocsResults)
		}
		if lu > lup {
			luGap = true
		}
		if lup > lui {
			lupGap = true
		}
	}
	if !luGap {
		t.Error("no query shows LU > LUP")
	}
	if !lupGap {
		t.Error("no query shows LUP > LUI")
	}
	// q1 is the point query.
	if rows[0].DocsResults != 1 {
		t.Errorf("q1 matches %d documents, want 1", rows[0].DocsResults)
	}
	// q5 carries a range predicate. Section 5.5: ranges are ignored at
	// look-up — the look-up of q5 must equal the look-up of q5 with the
	// range stripped, under every strategy.
	q5 := e.Queries[4].Parse()
	stripped := e.Queries[4].Parse()
	for _, tr := range stripped.Patterns {
		tr.Walk(func(n *pattern.Node) {
			if n.Pred.Kind == pattern.Range {
				n.Pred = pattern.Pred{}
			}
		})
	}
	for _, s := range Strategies() {
		w := e.Warehouse(AccessPath(s.Name()))
		a, _, err := index.LookupQuery(w.Store(), s, q5)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := index.LookupQuery(w.Store(), s, stripped)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: range predicate influenced the look-up: %v vs %v", s.Name(), a, b)
		}
	}
}

// Figure 9 shape: every index beats no-index on every query; xl beats l;
// the best index wins by a large factor overall.
func TestResponseTimeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	_, cells := sharedEnv(t)
	byKey := map[string]Fig9Cell{}
	for _, c := range cells {
		byKey[c.Query+"/"+string(c.Access)+"/"+c.Instance] = c
	}
	var sumNo, sumBest float64
	for _, q := range envShared.Queries {
		for _, inst := range []string{"l", "xl"} {
			no := byKey[q.Name+"/none/"+inst]
			for _, s := range Strategies() {
				c := byKey[q.Name+"/"+s.Name()+"/"+inst]
				if c.Response >= no.Response {
					t.Errorf("%s %s via %s (%v) not faster than no index (%v)",
						q.Name, inst, s.Name(), c.Response, no.Response)
				}
			}
		}
		// xl is never slower than l; equality is possible when a query
		// fetches so few documents that core count does not matter.
		l := byKey[q.Name+"/LUP/l"]
		xl := byKey[q.Name+"/LUP/xl"]
		if xl.Response > l.Response {
			t.Errorf("%s: xl (%v) slower than l (%v)", q.Name, xl.Response, l.Response)
		}
		sumNo += byKey[q.Name+"/none/xl"].Response.Seconds()
		sumBest += byKey[q.Name+"/LUP/xl"].Response.Seconds()
	}
	// Over the whole workload the stronger instance type must win strictly
	// (Figure 9a: "for every query, the xl running times are shorter").
	var wlL, wlXL float64
	for _, c := range cells {
		if c.Access != NoIndex {
			continue
		}
		if c.Instance == "l" {
			wlL += c.Response.Seconds()
		} else {
			wlXL += c.Response.Seconds()
		}
	}
	if wlXL >= wlL {
		t.Errorf("no-index workload: xl (%.2fs) not faster than l (%.2fs)", wlXL, wlL)
	}
	if sumNo/sumBest < 3 {
		t.Errorf("workload speedup = %.1fx, want >= 3x", sumNo/sumBest)
	}
	// Decomposition present and overlap property: response <= components sum.
	for _, c := range cells {
		if c.Access == NoIndex {
			continue
		}
		sum := c.LookupGet + c.Plan + c.FetchEval
		if c.Response > sum+sum/10 {
			t.Errorf("%s/%s response %v above components %v", c.Query, c.Access, c.Response, sum)
		}
	}
}

// Figure 11/12 shape: indexing cuts workload cost by a large margin and
// the cost is nearly machine-type independent.
func TestQueryCostShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	_, cells := sharedEnv(t)
	noL := WorkloadCost(cells, NoIndex, "l")
	for _, s := range Strategies() {
		a := AccessPath(s.Name())
		idxL := WorkloadCost(cells, a, "l")
		idxXL := WorkloadCost(cells, a, "xl")
		saving := 1 - float64(idxL/noL)
		if saving < 0.6 {
			t.Errorf("%s: cost saving %.2f, want >= 0.6", s.Name(), saving)
		}
		ratio := float64(idxXL / idxL)
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("%s: xl/l cost ratio %.2f, want ~1 (machine-type independent)", s.Name(), ratio)
		}
	}
}

// Figure 13 shape: every strategy amortizes; LU first, 2LUPI last.
func TestAmortizationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	e, cells := sharedEnv(t)
	rows := RunFig13(e.Rows, cells, 20)
	be := map[index.Strategy]int{}
	for _, r := range rows {
		if r.Benefit <= 0 {
			t.Errorf("%s: non-positive benefit %v", r.Strategy.Name(), r.Benefit)
		}
		if r.BreakEven < 0 {
			t.Errorf("%s: never amortizes", r.Strategy.Name())
		}
		be[r.Strategy] = r.BreakEven
	}
	if !(be[index.LU] <= be[index.LUP] && be[index.LU] <= be[index.LUI] &&
		be[index.LUP] <= be[index.TwoLUPI] && be[index.LUI] <= be[index.TwoLUPI] &&
		be[index.LU] < be[index.TwoLUPI]) {
		t.Errorf("amortization ordering: %v", be)
	}
}

// Figure 10 shape: 8 instances are several times faster than 1.
func TestParallelismShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	e, _ := sharedEnv(t)
	cells, err := RunFig10(e, 2) // 2 repeats keep the test fast; benchall uses 16
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]map[int]float64{}
	for _, c := range cells {
		k := string(c.Access) + "/" + c.Instance
		if byKey[k] == nil {
			byKey[k] = map[int]float64{}
		}
		byKey[k][c.Instances] = c.Total.Seconds()
	}
	for k, v := range byKey {
		speedup := v[1] / v[8]
		if speedup < 3 || speedup > 8.5 {
			t.Errorf("%s: speedup %.2f, want in [3, 8.5]", k, speedup)
		}
	}
}

// Tables 7/8 shape: the DynamoDB backend indexes and queries faster and
// cheaper than the SimpleDB backend.
func TestBackendComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	c, err := NewCorpus(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	rows, storage, err := RunCompare(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.IndexMsPerMB["dynamodb"]*2 > r.IndexMsPerMB["simpledb"] {
			t.Errorf("%s: indexing on dynamodb (%.1f ms/MB) not clearly faster than simpledb (%.1f)",
				r.Strategy.Name(), r.IndexMsPerMB["dynamodb"], r.IndexMsPerMB["simpledb"])
		}
		if r.IndexUSDPerMB["dynamodb"] >= r.IndexUSDPerMB["simpledb"] {
			t.Errorf("%s: indexing on dynamodb not cheaper", r.Strategy.Name())
		}
		if r.QueryMsPerMB["dynamodb"] >= r.QueryMsPerMB["simpledb"] {
			t.Errorf("%s: querying on dynamodb not faster", r.Strategy.Name())
		}
	}
	if storage.IndexPerGB["dynamodb"] <= storage.IndexPerGB["simpledb"] {
		// The paper reports DynamoDB's higher per-GB storage price
		// (1.14 vs 0.275): storage is the one axis SimpleDB wins.
		t.Errorf("storage: dynamodb %v should be pricier per GB than simpledb %v",
			storage.IndexPerGB["dynamodb"], storage.IndexPerGB["simpledb"])
	}
}

// Ablation smoke checks.
func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	c, err := NewCorpus(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	enc, err := RunAblationIDEncoding(c)
	if err != nil {
		t.Fatal(err)
	}
	if enc[0].B >= enc[0].A {
		t.Errorf("binary IDs not smaller: %s", enc[0])
	}
	bat, err := RunAblationBatching(c)
	if err != nil {
		t.Fatal(err)
	}
	if bat[0].B >= bat[0].A {
		t.Errorf("batching does not reduce requests: %s", bat[0])
	}
	if bat[1].B >= bat[1].A {
		t.Errorf("batching does not reduce time: %s", bat[1])
	}
	pc, err := RunAblationPathCompression(c)
	if err != nil {
		t.Fatal(err)
	}
	if pc[0].B >= pc[0].A {
		t.Errorf("path compression does not shrink the index: %s", pc[0])
	}

	e, _ := sharedEnv(t)
	semi, err := RunAblationSemijoin(e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(semi, "q1") {
		t.Errorf("semijoin report incomplete:\n%s", semi)
	}
}

// Advisor accuracy (extension experiment): with the full corpus as the
// sample, the estimated look-up sizes equal the measured ones exactly.
func TestAdvisorAccuracyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	e, _ := sharedEnv(t)
	out, err := RunAdvisorAccuracy(e, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With SampleEvery=1 every "est / meas" pair must be equal.
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "q") || strings.HasPrefix(line, "query") {
			continue
		}
		cells := strings.Split(line, "|")[1:]
		for _, c := range cells {
			parts := strings.Split(c, "/")
			if len(parts) != 2 {
				continue
			}
			if strings.TrimSpace(parts[0]) != strings.TrimSpace(parts[1]) {
				t.Errorf("estimate differs from measurement: %q", line)
			}
		}
	}
	if !strings.Contains(out, "recommendation") {
		t.Error("missing recommendation line")
	}
}

// Rendering smoke tests: every table/figure prints with its headline.
func TestRenderers(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	e, cells := sharedEnv(t)
	t5, err := RunTable5(e)
	if err != nil {
		t.Fatal(err)
	}
	frac := shapeScale.PaperFraction()
	outputs := map[string]string{
		"Table 4":   Table4(e.Rows, frac),
		"Table 5":   Table5(t5, len(e.Corpus.Docs)),
		"Table 6":   Table6(e.Rows, frac, shapeScale.DocsFraction()),
		"Figure 9a": Fig9a(cells),
		"Figure 9b": Fig9Detail(cells, "l"),
		"Figure 9c": Fig9Detail(cells, "xl"),
		"Figure 11": Fig11(cells),
		"Figure 12": Fig12(cells),
		"Figure 13": Fig13(RunFig13(e.Rows, cells, 20)),
	}
	for name, out := range outputs {
		if !strings.Contains(out, name) {
			t.Errorf("%s renderer missing its headline:\n%s", name, out)
		}
		if !strings.Contains(out, "LUP") {
			t.Errorf("%s renderer missing strategies:\n%s", name, out)
		}
	}
}

func TestCharts(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	e, cells := sharedEnv(t)
	chart := Fig9aChart(cells, "xl")
	if !strings.Contains(chart, "#") || !strings.Contains(chart, "q10") {
		t.Errorf("Fig9aChart incomplete:\n%s", chart)
	}
	// The no-index bar must be the longest for q1 (log scale keeps order).
	var noIdxLen, lupLen int
	for _, line := range strings.Split(chart, "\n") {
		if strings.HasPrefix(line, "q1 ") {
			n := strings.Count(line, "#")
			if strings.Contains(line, "none") {
				noIdxLen = n
			}
			if strings.Contains(line, "LUP") {
				lupLen = n
			}
		}
	}
	if noIdxLen <= lupLen {
		t.Errorf("q1 bars: none=%d not longer than LUP=%d", noIdxLen, lupLen)
	}
	f13 := Fig13Chart(RunFig13(e.Rows, cells, 20))
	if !strings.Contains(f13, "-") || !strings.Contains(f13, "+") {
		t.Errorf("Fig13Chart missing both phases:\n%s", f13)
	}
}
