package bench

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/ec2"
	"repro/internal/cloud/kv"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/meter"
)

// This file holds the acceptance test and the micro-benchmarks of the
// cross-document bulk loader (Table 4 / Figure 7 with BulkLoad enabled).

var (
	bulkOnce   sync.Once
	bulkCorpus *Corpus
	bulkErr    error
)

// bulkAcceptanceCorpus is the default 400-document corpus the acceptance
// criterion is stated against, built once and shared by the subtests.
func bulkAcceptanceCorpus(t *testing.T) *Corpus {
	t.Helper()
	bulkOnce.Do(func() { bulkCorpus, bulkErr = NewCorpus(Default()) })
	if bulkErr != nil {
		t.Fatal(bulkErr)
	}
	return bulkCorpus
}

// newUnbatchedStore returns a DynamoDB-shaped store whose batch limit is a
// single item, so every index item is billed as its own put request — the
// unbatched baseline of RunAblationBatching.
func newUnbatchedStore(ledger *meter.Ledger) *kv.MemStore {
	return kv.NewMemStore(kv.Config{
		Backend: dynamodb.Backend,
		Limits: kv.Limits{
			MaxItemBytes:   dynamodb.MaxItemBytes,
			MaxValueBytes:  dynamodb.MaxItemBytes,
			BatchPutItems:  1,
			BatchGetKeys:   100,
			SupportsBinary: true,
		},
		Perf:            dynamodb.DefaultPerf(),
		PerItemOverhead: 100,
		Ledger:          ledger,
	})
}

func dumpTables(t *testing.T, store kv.Store, s index.Strategy) map[string][]kv.Item {
	t.Helper()
	dumper, ok := store.(interface{ DumpTable(string) []kv.Item })
	if !ok {
		t.Fatalf("store %T cannot dump tables", store)
	}
	out := map[string][]kv.Item{}
	for _, tbl := range s.Tables() {
		out[tbl] = dumper.DumpTable(tbl)
	}
	return out
}

func itemString(it kv.Item) string {
	s := it.HashKey + "|" + it.RangeKey
	for _, a := range it.Attrs {
		s += "|" + a.Name
		for _, v := range a.Values {
			s += fmt.Sprintf("|%x", v)
		}
	}
	return s
}

func compareDumps(t *testing.T, label string, want, got map[string][]kv.Item, s index.Strategy) {
	t.Helper()
	for _, tbl := range s.Tables() {
		if len(want[tbl]) != len(got[tbl]) {
			t.Errorf("%s: table %s has %d items, want %d", label, tbl, len(got[tbl]), len(want[tbl]))
			continue
		}
		for i := range want[tbl] {
			if itemString(want[tbl][i]) != itemString(got[tbl][i]) {
				t.Errorf("%s: table %s item %d differs", label, tbl, i)
				break
			}
		}
	}
}

// TestBulkLoadRequestReduction is the acceptance criterion of the bulk
// loader: on the default 400-document corpus, for every strategy, bulk
// loading bills at least 2x fewer index-store write requests than the
// unbatched (one put per item) path and strictly fewer than the
// per-document batch loader — in fact exactly the packing floor
// sum_tables ceil(items/BatchPutItems) — while leaving the store contents
// byte-identical to both and the corpus totals unchanged.
func TestBulkLoadRequestReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale acceptance test")
	}
	c := bulkAcceptanceCorpus(t)
	for _, s := range Strategies() {
		t.Run(s.Name(), func(t *testing.T) {
			perDocW, perDocRep, _, err := BuildWarehouse(c, s, "", 8, ec2.Large)
			if err != nil {
				t.Fatal(err)
			}
			bulkW, bulkRep, _, err := BuildWarehouseCfg(c, core.Config{Strategy: s, BulkLoad: true}, 8, ec2.Large)
			if err != nil {
				t.Fatal(err)
			}

			// Unbatched baseline: same corpus, one put per item.
			ledger := meter.NewLedger()
			unbatched := newUnbatchedStore(ledger)
			if err := index.CreateTables(unbatched, s); err != nil {
				t.Fatal(err)
			}
			opts := index.OptionsFor(unbatched)
			for _, d := range c.Parsed {
				if _, _, err := index.LoadDocument(unbatched, s, d, opts); err != nil {
					t.Fatal(err)
				}
			}
			unbatchedReqs := int(ledger.Snapshot().Get(dynamodb.Backend, "put").Calls)

			if bulkRep.Docs != perDocRep.Docs || bulkRep.DataBytes != perDocRep.DataBytes ||
				bulkRep.Entries != perDocRep.Entries || bulkRep.Items != perDocRep.Items {
				t.Errorf("bulk corpus totals %+v differ from per-doc %+v", bulkRep, perDocRep)
			}
			if 2*bulkRep.Requests > unbatchedReqs {
				t.Errorf("bulk billed %d put requests, not >=2x below unbatched %d",
					bulkRep.Requests, unbatchedReqs)
			}
			if bulkRep.Requests >= perDocRep.Requests {
				t.Errorf("bulk billed %d put requests, per-document %d", bulkRep.Requests, perDocRep.Requests)
			}

			bulkDump := dumpTables(t, bulkW.BaseStore(), s)
			batchLimit := bulkW.BaseStore().Limits().BatchPutItems
			floor := 0
			for _, tbl := range s.Tables() {
				floor += (len(bulkDump[tbl]) + batchLimit - 1) / batchLimit
			}
			if bulkRep.Requests != floor {
				t.Errorf("bulk billed %d put requests, packing floor is %d", bulkRep.Requests, floor)
			}

			compareDumps(t, "bulk vs per-doc", dumpTables(t, perDocW.BaseStore(), s), bulkDump, s)
			compareDumps(t, "bulk vs unbatched", dumpTables(t, unbatched, s), bulkDump, s)
		})
	}
}

// benchExtractions precomputes every document's extraction so the
// benchmarks measure only the write path.
func benchExtractions(b *testing.B, c *Corpus, s index.Strategy, store kv.Store) []*index.Extraction {
	b.Helper()
	opts := index.OptionsFor(store)
	exs := make([]*index.Extraction, len(c.Parsed))
	for i, d := range c.Parsed {
		exs[i] = index.Extract(s, d, opts)
	}
	return exs
}

// BenchmarkWriteExtraction is the per-document write path: one batch
// sequence per document. Reports modeled upload seconds and billed store
// requests per document.
func BenchmarkWriteExtraction(b *testing.B) {
	c, err := NewCorpus(Tiny())
	if err != nil {
		b.Fatal(err)
	}
	s := index.LUP
	var upload float64
	var requests int
	for i := 0; i < b.N; i++ {
		ledger := meter.NewLedger()
		store := dynamodb.New(ledger)
		if err := index.CreateTables(store, s); err != nil {
			b.Fatal(err)
		}
		exs := benchExtractions(b, c, s, store)
		b.ResetTimer()
		upload, requests = 0, 0
		for _, ex := range exs {
			d, stats, err := index.WriteExtraction(store, ex)
			if err != nil {
				b.Fatal(err)
			}
			upload += d.Seconds()
			requests += stats.Requests
		}
		b.StopTimer()
	}
	b.ReportMetric(upload, "modeled-s")
	b.ReportMetric(float64(requests)/float64(len(c.Docs)), "requests/doc")
}

// BenchmarkBulkLoad is the same corpus through the cross-document bulk
// loader: batches coalesce across documents, so requests/doc drops to the
// packing floor.
func BenchmarkBulkLoad(b *testing.B) {
	c, err := NewCorpus(Tiny())
	if err != nil {
		b.Fatal(err)
	}
	s := index.LUP
	var upload float64
	var requests int
	for i := 0; i < b.N; i++ {
		ledger := meter.NewLedger()
		store := dynamodb.New(ledger)
		if err := index.CreateTables(store, s); err != nil {
			b.Fatal(err)
		}
		exs := benchExtractions(b, c, s, store)
		b.ResetTimer()
		loader := index.NewBulkLoader(store, index.BulkOptions{})
		var done []index.DocLoad
		for _, ex := range exs {
			dl, err := loader.Add(ex)
			if err != nil {
				b.Fatal(err)
			}
			done = append(done, dl...)
		}
		dl, err := loader.Close()
		if err != nil {
			b.Fatal(err)
		}
		done = append(done, dl...)
		b.StopTimer()
		upload, requests = 0, 0
		for _, d := range done {
			upload += d.Upload.Seconds()
			requests += d.Stats.Requests
		}
	}
	b.ReportMetric(upload, "modeled-s")
	b.ReportMetric(float64(requests)/float64(len(c.Docs)), "requests/doc")
}
