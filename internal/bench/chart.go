package bench

import (
	"fmt"
	"math"
	"strings"
)

// ASCII rendering of Figure 9a: per-query response-time bars on a
// logarithmic axis, the way the paper's chart presents them (its y axis is
// log-scale). One row per (query, access path); bar lengths are
// log-proportional between the fastest and slowest cell of the instance
// type.

// Fig9aChart renders the response times of one instance type as bars.
func Fig9aChart(cells []Fig9Cell, instance string) string {
	type row struct {
		query  string
		access AccessPath
		secs   float64
	}
	// Regroup query-major (cells arrive access-major), with access paths
	// in figure order within each query.
	byQuery := map[string]map[AccessPath]float64{}
	var queryOrder []string
	min, max := math.Inf(1), 0.0
	for _, c := range cells {
		if c.Instance != instance {
			continue
		}
		s := c.Response.Seconds()
		if s <= 0 {
			continue
		}
		if byQuery[c.Query] == nil {
			byQuery[c.Query] = map[AccessPath]float64{}
			queryOrder = append(queryOrder, c.Query)
		}
		byQuery[c.Query][c.Access] = s
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	var rows []row
	for _, q := range queryOrder {
		for _, a := range AccessPaths() {
			if s, ok := byQuery[q][a]; ok {
				rows = append(rows, row{q, a, s})
			}
		}
	}
	if len(rows) == 0 || min <= 0 || max <= min {
		return ""
	}
	const width = 46
	scale := func(s float64) int {
		frac := math.Log(s/min) / math.Log(max/min)
		n := int(frac*float64(width-1)) + 1
		if n < 1 {
			n = 1
		}
		if n > width {
			n = width
		}
		return n
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9a (chart): response time, %s instances — log scale, %.3fs .. %.3fs\n",
		instance, min, max)
	lastQuery := ""
	for _, r := range rows {
		if r.query != lastQuery && lastQuery != "" {
			b.WriteString("\n")
		}
		lastQuery = r.query
		fmt.Fprintf(&b, "%-5s %-6s |%s %.3fs\n",
			r.query, r.access, strings.Repeat("#", scale(r.secs)), r.secs)
	}
	return b.String()
}

// Fig13Chart renders the amortization curves as one lane per strategy:
// '-' while the cumulated benefit is below the build cost, '+' after the
// break-even run.
func Fig13Chart(rows []Fig13Row) string {
	if len(rows) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("Figure 13 (chart): runs until the index pays for itself ('+' = amortized)\n")
	runs := len(rows[0].Curve) - 1
	fmt.Fprintf(&b, "%-8s ", "runs:")
	for i := 0; i <= runs; i++ {
		fmt.Fprintf(&b, "%d", i%10)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s ", r.Strategy.Name())
		for _, v := range r.Curve {
			if v >= 0 {
				b.WriteString("+")
			} else {
				b.WriteString("-")
			}
		}
		fmt.Fprintf(&b, "  break-even at %d\n", r.BreakEven)
	}
	return b.String()
}
