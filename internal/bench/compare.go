package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/index"
	"repro/internal/pricing"
)

// This file regenerates Tables 7 and 8 (Section 8.4): the comparison
// between this work's DynamoDB-backed index and the SimpleDB-backed index
// of the predecessor system [8]. Everything is reported per MB (or GB) of
// XML data, as the paper does to compare runs at different corpus sizes.

// CompareRow is one strategy's two-backend measurement.
type CompareRow struct {
	Strategy index.Strategy
	// Indexing speed in ms per MB of XML, and cost in $ per MB.
	IndexMsPerMB  map[string]float64
	IndexUSDPerMB map[string]pricing.USD
	// Query speed in ms per MB and cost in $ per MB, whole workload on
	// one large instance.
	QueryMsPerMB  map[string]float64
	QueryUSDPerMB map[string]pricing.USD
}

// CompareStorage is the bottom block of Table 7: monthly storage $ per GB
// of XML data.
type CompareStorage struct {
	IndexPerGB map[string]pricing.USD // per backend
	DataPerGB  pricing.USD
}

// RunCompare indexes and queries the corpus on both backends.
func RunCompare(c *Corpus) ([]CompareRow, CompareStorage, error) {
	book := pricing.Singapore2012()
	mb := c.MB()
	rows := make([]CompareRow, len(Strategies()))
	for i, s := range Strategies() {
		rows[i] = CompareRow{
			Strategy:      s,
			IndexMsPerMB:  map[string]float64{},
			IndexUSDPerMB: map[string]pricing.USD{},
			QueryMsPerMB:  map[string]float64{},
			QueryUSDPerMB: map[string]pricing.USD{},
		}
	}
	storage := CompareStorage{IndexPerGB: map[string]pricing.USD{}, DataPerGB: book.STMonthGB}

	for _, backend := range []string{"dynamodb", "simpledb"} {
		indexing, err := RunIndexing(c, backend, 8, ec2.Large)
		if err != nil {
			return nil, storage, fmt.Errorf("bench: compare on %s: %w", backend, err)
		}
		var idxStorage pricing.USD
		for i, ir := range indexing {
			rows[i].IndexMsPerMB[backend] = float64(ir.Total.Milliseconds()) / mb
			rows[i].IndexUSDPerMB[backend] = ir.Cost.Total() / pricing.USD(mb)

			w := ir.Warehouse
			in := ec2.Launch(w.Ledger(), ec2.Large)
			before := w.Ledger().Snapshot()
			var total time.Duration
			for _, q := range xmarkWorkload() {
				_, stats, err := w.RunQueryOn(in, q.Text, true)
				if err != nil {
					return nil, storage, fmt.Errorf("bench: compare query %s on %s: %w", q.Name, backend, err)
				}
				total += stats.ResponseTime
			}
			cost := book.Bill(w.Ledger().Snapshot().Sub(before)).Total()
			rows[i].QueryMsPerMB[backend] = float64(total.Milliseconds()) / mb
			rows[i].QueryUSDPerMB[backend] = cost / pricing.USD(mb)

			raw, ovh := w.IndexBytes()
			idxStorage += book.StorageMonthly(0, raw+ovh, backend).Total()
		}
		// Average index storage price across strategies, per GB of XML.
		xmlGB := float64(c.Bytes) / pricing.GB
		storage.IndexPerGB[backend] = idxStorage / pricing.USD(float64(len(indexing))*xmlGB)
	}
	return rows, storage, nil
}

// Table7 renders the indexing comparison.
func Table7(rows []CompareRow, storage CompareStorage) string {
	var b strings.Builder
	b.WriteString("Table 7: indexing comparison — SimpleDB backend ([8]) vs DynamoDB backend (this work)\n")
	fmt.Fprintf(&b, "%-8s | %-24s | %-28s\n", "", "speed (ms/MB of XML)", "cost ($/MB of XML)")
	fmt.Fprintf(&b, "%-8s | %-11s %-11s | %-13s %-13s\n", "Strategy", "SimpleDB", "DynamoDB", "SimpleDB", "DynamoDB")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s | %-11.1f %-11.1f | %-13.7f %-13.7f\n",
			r.Strategy.Name(),
			r.IndexMsPerMB["simpledb"], r.IndexMsPerMB["dynamodb"],
			float64(r.IndexUSDPerMB["simpledb"]), float64(r.IndexUSDPerMB["dynamodb"]))
	}
	fmt.Fprintf(&b, "monthly storage ($/GB of XML): index SimpleDB %s, index DynamoDB %s, data %s\n",
		usd(storage.IndexPerGB["simpledb"]), usd(storage.IndexPerGB["dynamodb"]), usd(storage.DataPerGB))
	return b.String()
}

// Table8 renders the query comparison.
func Table8(rows []CompareRow) string {
	var b strings.Builder
	b.WriteString("Table 8: query processing comparison — SimpleDB backend ([8]) vs DynamoDB backend (this work)\n")
	fmt.Fprintf(&b, "%-8s | %-24s | %-30s\n", "", "speed (ms/MB of XML)", "cost ($/MB of XML)")
	fmt.Fprintf(&b, "%-8s | %-11s %-11s | %-14s %-14s\n", "Strategy", "SimpleDB", "DynamoDB", "SimpleDB", "DynamoDB")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s | %-11.2f %-11.2f | %-14.9f %-14.9f\n",
			r.Strategy.Name(),
			r.QueryMsPerMB["simpledb"], r.QueryMsPerMB["dynamodb"],
			float64(r.QueryUSDPerMB["simpledb"]), float64(r.QueryUSDPerMB["dynamodb"]))
	}
	return b.String()
}
