package bench

import (
	"math"
	"testing"

	"repro/internal/cloud/ec2"
	"repro/internal/costmodel"
	"repro/internal/index"
	"repro/internal/pricing"
)

// Cost-model validation: the closed-form formulas of Section 7 must agree
// with what the metering layer actually bills when fed the measured
// metrics of a run — the "actual charged costs" cross-check the paper
// performs in Section 8. Small slack covers bookkeeping the formulas
// idealize away (the final empty queue poll, fractional batching).
func TestCostModelAgreesWithMeteredBilling(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	book := pricing.Singapore2012()
	c, err := NewCorpus(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	w, rep, _, err := BuildWarehouse(c, index.LUP, "", 8, ec2.Large)
	if err != nil {
		t.Fatal(err)
	}

	// --- indexing: ci$(D,I) vs the billed ledger ---
	metered := book.Bill(w.Ledger().Snapshot()).Total()
	formula := costmodel.IndexBuildCost(book, costmodel.DatasetMetrics{
		Docs:          int64(rep.Docs),
		IndexPutOps:   int64(rep.Items),
		IndexingHours: rep.Total.Hours(),
		VMType:        "l",
		VMCount:       8,
	})
	if rel := relDiff(float64(metered), float64(formula)); rel > 0.15 {
		t.Errorf("indexing: metered %v vs formula %v (%.1f%% apart)", metered, formula, rel*100)
	}

	// --- querying: cq$(q,D,I,DqI) vs the billed delta of one query ---
	in := ec2.Launch(w.Ledger(), ec2.XL)
	before := w.Ledger().Snapshot()
	_, stats, err := w.RunQueryOn(in, `//item[/location="Zanzibar", /payment{val}~"Creditcard"]`, true)
	if err != nil {
		t.Fatal(err)
	}
	delta := w.Ledger().Snapshot().Sub(before)
	meteredQ := book.Bill(delta).Total()
	formulaQ := costmodel.QueryCostIndexed(book, costmodel.QueryMetrics{
		ResultGB:        float64(stats.ResultBytes) / pricing.GB,
		IndexGetOps:     stats.GetOps,
		DocsRetrieved:   int64(stats.DocsFetched),
		ProcessingHours: stats.ResponseTime.Hours(),
		VMType:          "xl",
	})
	if rel := relDiff(float64(meteredQ), float64(formulaQ)); rel > 0.15 {
		t.Errorf("query: metered %v vs formula %v (%.1f%% apart)", meteredQ, formulaQ, rel*100)
	}

	// --- storage: st$m vs billed gauges ---
	raw, ovh := w.IndexBytes()
	meteredS := book.StorageMonthly(w.DataBytes(), raw+ovh, "dynamodb").Total()
	formulaS := costmodel.MonthlyStorageCost(book, costmodel.DatasetMetrics{
		DataGB:     float64(w.DataBytes()) / pricing.GB,
		IndexRawGB: float64(raw) / pricing.GB,
		IndexOvhGB: float64(ovh) / pricing.GB,
	}, "dynamodb")
	if rel := relDiff(float64(meteredS), float64(formulaS)); rel > 1e-9 {
		t.Errorf("storage: metered %v vs formula %v", meteredS, formulaS)
	}
}

func relDiff(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}
