package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/ec2"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/meter"
	"repro/internal/pricing"
)

// This file regenerates Table 4, Figure 7, Figure 8 and Table 6.

// IndexingRow is one strategy's indexing run: Table 4's times plus Table
// 6's cost decomposition (measured from the metering ledger during the
// run) and the warehouse left behind for the query experiments.
type IndexingRow struct {
	Strategy   index.Strategy
	Report     core.IndexReport
	Extract    time.Duration
	Upload     time.Duration
	Total      time.Duration
	Cost       pricing.Invoice // decomposed: dynamodb/simpledb, ec2, s3, sqs
	Warehouse  *core.Warehouse
	Fleet      []*ec2.Instance
	IndexRawB  int64
	IndexOvhB  int64
	IndexItems int64
}

// RunIndexing reproduces Table 4's setting: every strategy indexes the
// corpus on fleetSize instances of the given type, the paper's 8 large.
// Costs are billed from the metered usage of the run (Table 6).
func RunIndexing(c *Corpus, backend string, fleetSize int, typ ec2.InstanceType) ([]IndexingRow, error) {
	return RunIndexingCfg(c, core.Config{Backend: backend}, fleetSize, typ)
}

// RunIndexingCfg is RunIndexing with a configuration template: every
// strategy's run copies base (bulk loading, pipeline depth, caches) and
// sets only the strategy, so the same corpus can be indexed with and
// without the cross-document bulk loader for side-by-side tables.
func RunIndexingCfg(c *Corpus, base core.Config, fleetSize int, typ ec2.InstanceType) ([]IndexingRow, error) {
	book := pricing.Singapore2012()
	var rows []IndexingRow
	for _, s := range Strategies() {
		cfg := base
		cfg.Strategy = s
		w, rep, fleet, err := BuildWarehouseCfg(c, cfg, fleetSize, typ)
		if err != nil {
			return nil, fmt.Errorf("bench: indexing under %s: %w", s.Name(), err)
		}
		raw, ovh := w.IndexBytes()
		rows = append(rows, IndexingRow{
			Strategy:   s,
			Report:     rep,
			Extract:    rep.AvgExtract,
			Upload:     rep.AvgUpload,
			Total:      rep.Total,
			Cost:       book.Bill(w.Ledger().Snapshot()),
			Warehouse:  w,
			Fleet:      fleet,
			IndexRawB:  raw,
			IndexOvhB:  ovh,
			IndexItems: w.IndexItems(),
		})
	}
	return rows, nil
}

// Table4 renders the indexing-time table. Measured modeled times are
// extrapolated to the paper's 40 GB for the hh:mm columns.
func Table4(rows []IndexingRow, frac float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: indexing times (8 large instances); extrapolated to 40 GB, measured at scale in parentheses\n")
	fmt.Fprintf(&b, "%-8s | %-28s | %-28s | %-28s\n", "Strategy", "Avg extraction", "Avg uploading", "Total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s | %-28s | %-28s | %-28s\n",
			r.Strategy.Name(), scaledHHMM(r.Extract, frac), scaledHHMM(r.Upload, frac), scaledHHMM(r.Total, frac))
	}
	return b.String()
}

// Table6 renders the indexing cost decomposition, extrapolated to the
// paper's corpus: byte-proportional components (index store writes, EC2
// time) scale with the byte fraction, per-document components (S3 and SQS
// requests) with the document-count fraction.
func Table6(rows []IndexingRow, byteFrac, docsFrac float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6: indexing costs (store / EC2 / S3+SQS), extrapolated to 40 GB / 20,000 docs\n")
	fmt.Fprintf(&b, "%-8s | %-12s | %-12s | %-12s | %-12s\n", "Strategy", "IndexStore", "EC2", "S3+SQS", "Total")
	byBytes := pricing.USD(1 / byteFrac)
	byDocs := pricing.USD(1 / docsFrac)
	for _, r := range rows {
		store := (r.Cost.Line("dynamodb") + r.Cost.Line("simpledb")) * byBytes
		ec2c := r.Cost.Line("ec2") * byBytes
		s3sqs := (r.Cost.Line("s3") + r.Cost.Line("sqs")) * byDocs
		fmt.Fprintf(&b, "%-8s | %-12s | %-12s | %-12s | %-12s\n",
			r.Strategy.Name(),
			fmt.Sprintf("$%.2f", float64(store)),
			fmt.Sprintf("$%.2f", float64(ec2c)),
			fmt.Sprintf("$%.2f", float64(s3sqs)),
			fmt.Sprintf("$%.2f", float64(store+ec2c+s3sqs)))
	}
	return b.String()
}

// Table4Bulk renders Table 4's uploading and total columns with the
// cross-document bulk loader next to the per-document loader, plus the
// billed index-store batch-write requests of each run. rows and bulkRows
// come from RunIndexing and RunIndexingCfg(BulkLoad: true) on the same
// corpus; per-strategy order must match (both iterate Strategies()).
func Table4Bulk(rows, bulkRows []IndexingRow, frac float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4 (cont.): per-document vs cross-document bulk loading; extrapolated to 40 GB\n")
	fmt.Fprintf(&b, "%-8s | %-28s | %-28s | %-28s | %-28s | %-22s\n",
		"Strategy", "Avg upload (per-doc)", "Avg upload (bulk)", "Total (per-doc)", "Total (bulk)", "BatchPut requests")
	for i, r := range rows {
		if i >= len(bulkRows) {
			break
		}
		br := bulkRows[i]
		ratio := 0.0
		if br.Report.Requests > 0 {
			ratio = float64(r.Report.Requests) / float64(br.Report.Requests)
		}
		fmt.Fprintf(&b, "%-8s | %-28s | %-28s | %-28s | %-28s | %-22s\n",
			r.Strategy.Name(),
			scaledHHMM(r.Upload, frac), scaledHHMM(br.Upload, frac),
			scaledHHMM(r.Total, frac), scaledHHMM(br.Total, frac),
			fmt.Sprintf("%d -> %d (%.1fx)", r.Report.Requests, br.Report.Requests, ratio))
	}
	return b.String()
}

// Fig7Point is one (size, strategy) measurement of Figure 7.
type Fig7Point struct {
	Fraction float64 // of the scale's corpus: 0.25, 0.5, 0.75, 1.0
	Docs     int
	Strategy index.Strategy
	Total    time.Duration
}

// RunFig7 indexes growing prefixes of the corpus (the paper's 10/20/30/40
// GB points) under every strategy.
func RunFig7(c *Corpus, fleetSize int, typ ec2.InstanceType) ([]Fig7Point, error) {
	return RunFig7Cfg(c, core.Config{}, fleetSize, typ)
}

// RunFig7Cfg is RunFig7 with a configuration template (see RunIndexingCfg),
// used to regenerate the figure with bulk loading enabled.
func RunFig7Cfg(c *Corpus, base core.Config, fleetSize int, typ ec2.InstanceType) ([]Fig7Point, error) {
	var points []Fig7Point
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		n := int(float64(len(c.Docs)) * frac)
		sub := &Corpus{Scale: c.Scale, Docs: c.Docs[:n], Parsed: c.Parsed[:n]}
		for _, d := range sub.Docs {
			sub.Bytes += int64(len(d.Data))
		}
		for _, s := range Strategies() {
			cfg := base
			cfg.Strategy = s
			_, rep, _, err := BuildWarehouseCfg(sub, cfg, fleetSize, typ)
			if err != nil {
				return nil, err
			}
			points = append(points, Fig7Point{Fraction: frac, Docs: n, Strategy: s, Total: rep.Total})
		}
	}
	return points, nil
}

// Fig7 renders the indexing-time-vs-size series.
func Fig7(points []Fig7Point) string {
	return Fig7Titled(points, "Figure 7: indexing time (modeled seconds) vs corpus size, 8 large instances")
}

// Fig7Titled renders the Figure 7 series under a custom heading, so the
// bulk-loading rerun prints under its own title.
func Fig7Titled(points []Fig7Point, title string) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-10s", "size")
	for _, s := range Strategies() {
		fmt.Fprintf(&b, " | %-10s", s.Name())
	}
	b.WriteString("\n")
	byFrac := map[float64]map[index.Strategy]time.Duration{}
	var fracs []float64
	for _, p := range points {
		if byFrac[p.Fraction] == nil {
			byFrac[p.Fraction] = map[index.Strategy]time.Duration{}
			fracs = append(fracs, p.Fraction)
		}
		byFrac[p.Fraction][p.Strategy] = p.Total
	}
	for _, f := range fracs {
		fmt.Fprintf(&b, "%-10s", fmt.Sprintf("%.0f%%", f*100))
		for _, s := range Strategies() {
			fmt.Fprintf(&b, " | %-10.2f", byFrac[f][s].Seconds())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig8Row is one strategy's index footprint, with and without full-text
// keyword keys.
type Fig8Row struct {
	Strategy index.Strategy
	FullText struct {
		RawBytes, OvhBytes int64
		MonthlyCost        pricing.USD
	}
	NoKeywords struct {
		RawBytes, OvhBytes int64
		MonthlyCost        pricing.USD
	}
}

// RunFig8 loads the corpus into bare DynamoDB stores (no pipeline needed)
// to measure index sizes and monthly storage costs, in the full-text and
// keyword-free variants.
func RunFig8(c *Corpus) ([]Fig8Row, int64, error) {
	book := pricing.Singapore2012()
	var rows []Fig8Row
	for _, s := range Strategies() {
		row := Fig8Row{Strategy: s}
		for _, skipWords := range []bool{false, true} {
			store := dynamodb.New(meter.NewLedger())
			if err := index.CreateTables(store, s); err != nil {
				return nil, 0, err
			}
			opts := index.OptionsFor(store)
			opts.SkipWords = skipWords
			for _, d := range c.Parsed {
				if _, _, err := index.LoadDocument(store, s, d, opts); err != nil {
					return nil, 0, err
				}
			}
			var raw, ovh int64
			for _, t := range s.Tables() {
				raw += store.TableBytes(t)
				ovh += store.OverheadBytes(t)
			}
			cost := book.StorageMonthly(0, raw+ovh, dynamodb.Backend).Total()
			if skipWords {
				row.NoKeywords.RawBytes, row.NoKeywords.OvhBytes, row.NoKeywords.MonthlyCost = raw, ovh, cost
			} else {
				row.FullText.RawBytes, row.FullText.OvhBytes, row.FullText.MonthlyCost = raw, ovh, cost
			}
		}
		rows = append(rows, row)
	}
	return rows, c.Bytes, nil
}

// Fig8 renders the index-size figure.
func Fig8(rows []Fig8Row, xmlBytes int64) string {
	var b strings.Builder
	mb := func(n int64) string { return fmt.Sprintf("%.2f", float64(n)/(1<<20)) }
	fmt.Fprintf(&b, "Figure 8: index size (MB) and monthly storage cost; XML data size = %s MB\n", mb(xmlBytes))
	fmt.Fprintf(&b, "%-8s | %-34s | %-34s\n", "", "full-text", "without keywords")
	fmt.Fprintf(&b, "%-8s | %-10s %-10s %-12s | %-10s %-10s %-12s\n",
		"Strategy", "content", "overhead", "$/month", "content", "overhead", "$/month")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s | %-10s %-10s %-12s | %-10s %-10s %-12s\n",
			r.Strategy.Name(),
			mb(r.FullText.RawBytes), mb(r.FullText.OvhBytes), usd(r.FullText.MonthlyCost),
			mb(r.NoKeywords.RawBytes), mb(r.NoKeywords.OvhBytes), usd(r.NoKeywords.MonthlyCost))
	}
	return b.String()
}
