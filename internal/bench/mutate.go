package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/index"
	"repro/internal/pricing"
	"repro/internal/serve"
	"repro/internal/workload"
)

// This file is the mutable-corpus experiment: the query daemon over a
// MutableCorpus warehouse under a seeded mixed read/write load. Each arm
// varies the write fraction and the compaction interval and reports the
// mixed throughput, read and write latency, the billed re-writes the LSM
// delta buffer deferred into compaction passes (the write amplification
// the paper's cost model never had to price), and the modeled
// $/1M-mutations from the Section 7 update formula.

// MutatePoint is one (write fraction, compaction interval) arm.
type MutatePoint struct {
	WriteEvery   int // every Nth request is a write
	CompactEvery int // compaction pass every N mutations
	Requests     int
	Completed    int
	Updates      int
	Removes      int
	Errors       int

	P50           time.Duration // all-request latency
	P95           time.Duration
	WriteP95      time.Duration // write-only latency
	ThroughputQPS float64

	CompactPuts    int64   // items compaction re-wrote into the main store
	CompactDeletes int64   // buffered tombstones it retired (billed as writes)
	WriteAmp       float64 // billed re-writes per accepted mutation
	CostPer1M      float64 // modeled $/1M mutations (puts + re-writes + VM share)
}

// MutateArms is the ladder: a write-heavy mix under eager and lazy
// compaction (the knob trades billed re-writes for buffered-read overlay
// work), plus a read-mostly mix at the eager setting.
func MutateArms() []MutatePoint {
	return []MutatePoint{
		{WriteEvery: 2, CompactEvery: 8},
		{WriteEvery: 2, CompactEvery: 32},
		{WriteEvery: 4, CompactEvery: 8},
	}
}

// RunMutate builds one mutable 2LUPI warehouse per arm (each arm owns its
// compaction counters and billing ledger), stands the daemon up with procs
// query processors, and drives a seeded closed-loop mixed load: every
// WriteEvery-th request is a document write (every 4th write a DELETE, the
// rest revision-stamped updates over the corpus's own documents). After
// the run the residual delta buffer is drained so the billed re-writes
// account for every accepted mutation.
func RunMutate(c *Corpus, seed int64, procs int) ([]MutatePoint, error) {
	if procs < 1 {
		procs = 4
	}
	book := pricing.Singapore2012()
	pool := make([]serve.WriteDoc, 0, len(c.Docs))
	for _, d := range c.Docs {
		pool = append(pool, serve.WriteDoc{URI: d.URI, Data: d.Data})
	}

	var out []MutatePoint
	for _, arm := range MutateArms() {
		p, err := runMutateArm(c, arm, pool, book, seed, procs)
		if err != nil {
			return nil, fmt.Errorf("bench: mutate 1/%d compact %d: %w", arm.WriteEvery, arm.CompactEvery, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func runMutateArm(c *Corpus, arm MutatePoint, pool []serve.WriteDoc, book pricing.PriceBook, seed int64, procs int) (MutatePoint, error) {
	w, _, _, err := BuildWarehouseCfg(c, core.Config{
		Strategy:         index.TwoLUPI,
		MutableCorpus:    true,
		CompactEveryDocs: arm.CompactEvery,
	}, procs, ec2.Large)
	if err != nil {
		return arm, err
	}
	backend := serve.NewWarehouseBackend(w, procs, ec2.XL, core.WorkerOptions{})
	s, err := serve.New(serve.Config{
		Backend:  backend,
		Registry: w.Registry(),
		Bill:     func() pricing.Invoice { return book.Bill(w.Ledger().Snapshot()) },
		Limits:   serve.Limits{Workers: procs, QueueDepth: 8 * procs},
	})
	if err != nil {
		return arm, err
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		return arm, err
	}
	rep, err := serve.RunLoad(serve.LoadOptions{
		BaseURL:     "http://" + addr,
		Queries:     workload.XMark(),
		Dist:        workload.DistUniform,
		Seed:        seed,
		Requests:    16 * procs,
		Concurrency: procs,
		UseIndex:    true,
		WriteEvery:  arm.WriteEvery,
		WriteDocs:   pool,
		RemoveEvery: 4,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if shutErr := s.Shutdown(ctx); err == nil {
		err = shutErr
	}
	if err != nil {
		return arm, err
	}
	if rep.Errors > 0 {
		return arm, fmt.Errorf("%d transport errors", rep.Errors)
	}

	// Drain the residual delta buffer so every accepted mutation's re-write
	// is billed inside this arm.
	drain := ec2.Launch(w.Ledger(), ec2.XL)
	for pass := 0; w.Corpus().BufferedEntries() > 0; pass++ {
		if pass > 1000 {
			return arm, fmt.Errorf("delta buffer did not drain (%d entries left)", w.Corpus().BufferedEntries())
		}
		if _, err := w.CompactNow(drain); err != nil {
			return arm, err
		}
	}

	arm.Requests = rep.Offered
	arm.Completed = rep.Completed
	arm.Updates = rep.Updates
	arm.Removes = rep.Removes
	arm.Errors = rep.Errors
	arm.P50 = rep.P50
	arm.P95 = rep.P95
	arm.WriteP95 = rep.WriteP95
	arm.ThroughputQPS = rep.ThroughputQPS
	arm.CompactPuts = w.Registry().Counter("index.compact.items").Value()
	arm.CompactDeletes = w.Registry().Counter("index.compact.deletes").Value()
	mutations := int64(arm.Updates + arm.Removes)
	if mutations > 0 {
		arm.WriteAmp = float64(arm.CompactPuts+arm.CompactDeletes) / float64(mutations)
	}
	cost := costmodel.UpdateCost(book, costmodel.UpdateMetrics{
		Updates:        int64(arm.Updates),
		Removes:        int64(arm.Removes),
		CompactPuts:    arm.CompactPuts,
		CompactDeletes: arm.CompactDeletes,
		Hours:          backend.WriteHours() + drain.Elapsed().Hours(),
		VMType:         ec2.XL.Name,
	})
	arm.CostPer1M = float64(costmodel.PerMillionUpdates(cost, mutations))
	return arm, nil
}

// MutateTable renders the mixed read/write ladder.
func MutateTable(points []MutatePoint) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Mutable corpus: mixed read/write ladder over the live daemon (wall clock)")
	fmt.Fprintf(&b, "  %6s %8s %5s %5s %4s %10s %10s %8s %10s %6s %12s\n",
		"writes", "compact", "reqs", "upd", "rm", "p50", "p95", "q/s", "re-writes", "amp", "$/1M-mut")
	for _, p := range points {
		fmt.Fprintf(&b, "  %6s %8d %5d %5d %4d %10s %10s %8.1f %10d %6.1f %12.2f\n",
			fmt.Sprintf("1/%d", p.WriteEvery), p.CompactEvery,
			p.Requests, p.Updates, p.Removes,
			p.P50.Round(time.Microsecond), p.P95.Round(time.Microsecond),
			p.ThroughputQPS, p.CompactPuts+p.CompactDeletes, p.WriteAmp, p.CostPer1M)
	}
	fmt.Fprintln(&b, "  re-writes: store items compaction folded (billed as index puts);")
	fmt.Fprintln(&b, "  amp: billed re-writes per accepted mutation; $/1M-mut prices puts,")
	fmt.Fprintln(&b, "  re-writes and the write VM's modeled hours (Section 7 update formula).")
	return b.String()
}
