package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/pricing"
	"repro/internal/workload"
)

// This file is the observability experiment: index the corpus and run the
// XMark workload with tracing on, then fold the span journal into a
// per-stage latency and billed-cost table. Every number comes from the
// spans' modeled durations and ledger diffs — the same instrumentation
// `xwh trace` prints per query — so the table doubles as a check that the
// tracer covers the whole Figure 1 pipeline.

// ObsStageRow aggregates all spans of one pipeline stage.
type ObsStageRow struct {
	Stage string
	Spans int
	Total time.Duration // summed modeled duration
	Mean  time.Duration
	Calls int64 // billed service calls attributed to the stage
	Units int64
	Bytes int64
	Cost  pricing.USD
}

// RunObs builds a traced warehouse under 2LUPI (the strategy exercising
// every read-side stage, semijoin and twig join included), indexes the
// corpus on a fleet, runs the 10-query workload, and aggregates the span
// journal per stage.
func RunObs(c *Corpus) ([]ObsStageRow, *core.Warehouse, error) {
	cfg := core.Config{Strategy: index.TwoLUPI, Trace: true, TraceCapacity: 1 << 16}
	w, _, _, err := BuildWarehouseCfg(c, cfg, 8, ec2.Large)
	if err != nil {
		return nil, nil, err
	}
	proc := ec2.Launch(w.Ledger(), ec2.Large)
	for _, q := range workload.XMark() {
		if _, _, err := w.RunQueryOn(proc, q.Text, true); err != nil {
			return nil, nil, err
		}
	}
	book := pricing.Singapore2012()
	agg := map[string]*ObsStageRow{}
	for _, sp := range w.Tracer().Spans() {
		r := agg[sp.Name]
		if r == nil {
			r = &ObsStageRow{Stage: sp.Name}
			agg[sp.Name] = r
		}
		r.Spans++
		r.Total += sp.Modeled
		for _, op := range sp.Ops {
			r.Calls += op.Calls
			r.Units += op.Units
			r.Bytes += op.Bytes
		}
		r.Cost += book.Bill(sp.LedgerDiff()).Total()
	}
	names := make([]string, 0, len(agg))
	for n := range agg {
		names = append(names, n)
	}
	obs.StageOrder(names)
	rows := make([]ObsStageRow, 0, len(names))
	for _, n := range names {
		r := *agg[n]
		r.Mean = r.Total / time.Duration(r.Spans)
		rows = append(rows, r)
	}
	if dropped := w.Tracer().Dropped(); dropped > 0 {
		return rows, w, fmt.Errorf("bench: span journal dropped %d spans; raise TraceCapacity", dropped)
	}
	return rows, w, nil
}

// ObsTable renders the per-stage table. Parent stages (index.doc, query,
// process) subsume their children's time and cost, so columns do not sum
// down the table; compare siblings, not the whole column.
func ObsTable(rows []ObsStageRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Observability: per-stage modeled latency and billed cost (2LUPI, traced run)\n")
	fmt.Fprintf(&b, "%-16s %7s %12s %12s %8s %8s %10s %10s\n",
		"stage", "spans", "total", "mean", "calls", "units", "bytes", "cost")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %7d %12s %12s %8d %8d %10d %10s\n",
			r.Stage, r.Spans, r.Total.Round(time.Microsecond), r.Mean.Round(time.Microsecond),
			r.Calls, r.Units, r.Bytes, usd(r.Cost))
	}
	return b.String()
}
