package bench

import (
	"strings"
	"testing"

	"repro/internal/cloud/ec2"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/workload"
)

// benchQuery measures one query's end-to-end processing (RunQueryOn) on a
// prebuilt warehouse; trace toggles the span journal, so the pair of
// benchmarks below bounds the observability overhead.
func benchQuery(b *testing.B, trace bool) {
	c, err := NewCorpus(Tiny())
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Strategy: index.LUP, Trace: trace}
	w, _, fleet, err := BuildWarehouseCfg(c, cfg, 2, ec2.Large)
	if err != nil {
		b.Fatal(err)
	}
	in := fleet[0]
	q := workload.XMark()[0].Text
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := w.RunQueryOn(in, q, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcessQuery is the untraced baseline (registry metrics still
// on, as in production use).
func BenchmarkProcessQuery(b *testing.B) { benchQuery(b, false) }

// BenchmarkProcessQueryObs runs the same query with the span journal
// enabled; compare against BenchmarkProcessQuery for the tracing overhead.
func BenchmarkProcessQueryObs(b *testing.B) { benchQuery(b, true) }

// The observability experiment: the table renders, covers both pipeline
// sides, and the journal did not overflow.
func TestObsExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	c, err := NewCorpus(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	rows, w, err := RunObs(c)
	if err != nil {
		t.Fatal(err)
	}
	stages := map[string]bool{}
	for _, r := range rows {
		stages[r.Stage] = true
		if r.Spans <= 0 {
			t.Errorf("stage %s has no spans", r.Stage)
		}
	}
	for _, want := range []string{obs.SpanIndexDoc, obs.SpanExtract, obs.SpanUpload,
		obs.SpanQuery, obs.SpanProcess, obs.SpanLookup, obs.SpanIndexGet, obs.SpanEval, obs.SpanResults} {
		if !stages[want] {
			t.Errorf("stage %s missing from the table (got %v)", want, rows)
		}
	}
	out := ObsTable(rows)
	if !strings.Contains(out, "Observability") || !strings.Contains(out, obs.SpanLookup) {
		t.Errorf("table incomplete:\n%s", out)
	}
	if w.Tracer() == nil {
		t.Fatal("traced warehouse has no tracer")
	}
}
