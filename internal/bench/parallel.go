package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cloud/ec2"
)

// This file regenerates Figure 10: the whole workload submitted 16 times
// (q1..q10, q1..q10, ...) processed by 1 versus 8 EC2 query-processing
// instances, for both instance types. More instances cut the elapsed time
// near-linearly; many strong instances approach the index store's
// provisioned capacity, which damps the gain (Section 8.2).

// Fig10Cell is one (strategy, instance type, fleet size) measurement.
type Fig10Cell struct {
	Access    AccessPath
	Instance  string
	Instances int
	Total     time.Duration
}

// RunFig10 measures the workload x repeats on fleets of 1 and 8 instances.
func RunFig10(e *QueryEnv, repeats int) ([]Fig10Cell, error) {
	var cells []Fig10Cell
	for _, typ := range []ec2.InstanceType{ec2.Large, ec2.XL} {
		for _, n := range []int{1, 8} {
			for _, s := range Strategies() {
				a := AccessPath(s.Name())
				w := e.Warehouse(a)
				fleet := ec2.LaunchFleet(w.Ledger(), typ, n)
				// Every fleet worker thread drives the index store
				// concurrently during the phase.
				workers := 0
				for _, in := range fleet {
					workers += in.Type.Cores
				}
				for i := 0; i < workers; i++ {
					w.Store().RegisterClient()
				}
				ec2.FleetLevel(fleet)
				start := ec2.FleetElapsed(fleet)
				task := 0
				for rep := 0; rep < repeats; rep++ {
					for _, q := range e.Queries {
						in := fleet[task%len(fleet)]
						task++
						if _, _, err := w.RunQueryOn(in, q.Text, true); err != nil {
							for i := 0; i < workers; i++ {
								w.Store().UnregisterClient()
							}
							return nil, fmt.Errorf("bench: fig10 %s %s x%d: %w", a, typ.Name, n, err)
						}
					}
				}
				ec2.FleetLevel(fleet)
				for i := 0; i < workers; i++ {
					w.Store().UnregisterClient()
				}
				cells = append(cells, Fig10Cell{
					Access:    a,
					Instance:  typ.Name,
					Instances: n,
					Total:     ec2.FleetElapsed(fleet) - start,
				})
			}
		}
	}
	return cells, nil
}

// Fig10 renders the parallelism figure.
func Fig10(cells []Fig10Cell, repeats int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: workload x%d response time (modeled seconds), 1 vs 8 instances\n", repeats)
	fmt.Fprintf(&b, "%-8s %-4s | %-12s | %-12s | %-8s\n", "access", "type", "1 instance", "8 instances", "speedup")
	byKey := map[string][2]time.Duration{}
	var order []string
	for _, c := range cells {
		k := string(c.Access) + " " + c.Instance
		v, ok := byKey[k]
		if !ok {
			order = append(order, k)
		}
		if c.Instances == 1 {
			v[0] = c.Total
		} else {
			v[1] = c.Total
		}
		byKey[k] = v
	}
	for _, k := range order {
		v := byKey[k]
		parts := strings.SplitN(k, " ", 2)
		speedup := 0.0
		if v[1] > 0 {
			speedup = float64(v[0]) / float64(v[1])
		}
		fmt.Fprintf(&b, "%-8s %-4s | %-12.2f | %-12.2f | %-8.2f\n",
			parts[0], parts[1], v[0].Seconds(), v[1].Seconds(), speedup)
	}
	return b.String()
}
