package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/pricing"
	"repro/internal/workload"
)

// This file regenerates Table 5 and Figures 9, 11 and 12.

// AccessPath is a strategy name or "none" for the no-index baseline.
type AccessPath string

// NoIndex is the baseline access path.
const NoIndex AccessPath = "none"

// AccessPaths lists the baseline plus every strategy, in figure order.
func AccessPaths() []AccessPath {
	out := []AccessPath{NoIndex}
	for _, s := range Strategies() {
		out = append(out, AccessPath(s.Name()))
	}
	return out
}

// QueryEnv holds the per-strategy warehouses (already indexed) plus the
// workload and the parsed corpus for ground truth.
type QueryEnv struct {
	Corpus  *Corpus
	Rows    []IndexingRow
	Queries []workload.Query
}

// NewQueryEnv indexes the corpus under every strategy (8 large instances,
// the paper's indexing setup) and loads the workload.
func NewQueryEnv(c *Corpus) (*QueryEnv, error) {
	rows, err := RunIndexing(c, "", 8, ec2.Large)
	if err != nil {
		return nil, err
	}
	return &QueryEnv{Corpus: c, Rows: rows, Queries: workload.XMark()}, nil
}

// Warehouse returns the loaded warehouse of a strategy. The no-index
// baseline runs against the LU warehouse (its index is simply not used).
func (e *QueryEnv) Warehouse(a AccessPath) *core.Warehouse {
	if a == NoIndex {
		return e.Rows[0].Warehouse
	}
	for _, r := range e.Rows {
		if r.Strategy.Name() == string(a) {
			return r.Warehouse
		}
	}
	return nil
}

// Table5Row is one query's selectivity row.
type Table5Row struct {
	Query       string
	DocIDs      map[index.Strategy]int // "Doc. IDs from index" per strategy
	DocsResults int                    // documents actually holding results
	ResultKB    float64
}

// RunTable5 measures, for every workload query, the per-strategy number of
// document IDs returned by index look-up, the number of documents with
// results, and the result size.
func RunTable5(e *QueryEnv) ([]Table5Row, error) {
	var rows []Table5Row
	for _, q := range e.Queries {
		row := Table5Row{Query: q.Name, DocIDs: map[index.Strategy]int{}}
		p := q.Parse()
		for _, s := range Strategies() {
			w := e.Warehouse(AccessPath(s.Name()))
			per, _, err := index.LookupQuery(w.Store(), s, p)
			if err != nil {
				return nil, fmt.Errorf("bench: %s under %s: %w", q.Name, s.Name(), err)
			}
			n := 0
			for _, uris := range per {
				n += len(uris)
			}
			row.DocIDs[s] = n
		}
		res, err := engine.EvalQueryOnDocs(p, e.Corpus.Parsed)
		if err != nil {
			return nil, err
		}
		uris := map[string]bool{}
		for _, r := range res.Rows {
			for _, u := range strings.Split(r.URI, "+") {
				uris[u] = true
			}
		}
		row.DocsResults = len(uris)
		row.ResultKB = float64(res.Bytes()) / 1024
		rows = append(rows, row)
	}
	return rows, nil
}

// Table5 renders the selectivity table.
func Table5(rows []Table5Row, docs int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: query processing details (%d documents)\n", docs)
	fmt.Fprintf(&b, "%-6s | %-8s %-8s %-8s %-8s | %-10s | %-12s\n",
		"Query", "LU", "LUP", "LUI", "2LUPI", "w.results", "results(KB)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s | %-8d %-8d %-8d %-8d | %-10d | %-12.2f\n",
			r.Query, r.DocIDs[index.LU], r.DocIDs[index.LUP], r.DocIDs[index.LUI],
			r.DocIDs[index.TwoLUPI], r.DocsResults, r.ResultKB)
	}
	return b.String()
}

// Fig9Cell is one (query, access path, instance type) run.
type Fig9Cell struct {
	Query    string
	Access   AccessPath
	Instance string // "l" or "xl"

	Response  time.Duration
	LookupGet time.Duration
	Plan      time.Duration
	FetchEval time.Duration

	Stats core.QueryStats
	Cost  pricing.Invoice
}

// RunFig9 runs the whole workload under every access path on large and
// extra-large instances, recording response times, their decomposition
// (Figures 9a-9c) and metered per-query costs (Figures 11-12).
func RunFig9(e *QueryEnv) ([]Fig9Cell, error) {
	book := pricing.Singapore2012()
	var cells []Fig9Cell
	for _, typ := range []ec2.InstanceType{ec2.Large, ec2.XL} {
		for _, a := range AccessPaths() {
			w := e.Warehouse(a)
			for _, q := range e.Queries {
				in := ec2.Launch(w.Ledger(), typ)
				before := w.Ledger().Snapshot()
				_, stats, err := w.RunQueryOn(in, q.Text, a != NoIndex)
				if err != nil {
					return nil, fmt.Errorf("bench: %s via %s on %s: %w", q.Name, a, typ.Name, err)
				}
				cells = append(cells, Fig9Cell{
					Query:     q.Name,
					Access:    a,
					Instance:  typ.Name,
					Response:  stats.ResponseTime,
					LookupGet: stats.LookupGetTime,
					Plan:      stats.PlanTime,
					FetchEval: stats.FetchEvalTime,
					Stats:     stats,
					Cost:      book.Bill(w.Ledger().Snapshot().Sub(before)),
				})
			}
		}
	}
	return cells, nil
}

// Fig9a renders response times per query and access path.
func Fig9a(cells []Fig9Cell) string {
	var b strings.Builder
	b.WriteString("Figure 9a: response time (modeled seconds) per query, access path and instance type\n")
	fmt.Fprintf(&b, "%-6s %-4s", "query", "type")
	for _, a := range AccessPaths() {
		fmt.Fprintf(&b, " | %-10s", a)
	}
	b.WriteString("\n")
	byKey := map[string]map[AccessPath]time.Duration{}
	var order []string
	for _, c := range cells {
		k := c.Query + " " + c.Instance
		if byKey[k] == nil {
			byKey[k] = map[AccessPath]time.Duration{}
			order = append(order, k)
		}
		byKey[k][c.Access] = c.Response
	}
	for _, k := range order {
		parts := strings.SplitN(k, " ", 2)
		fmt.Fprintf(&b, "%-6s %-4s", parts[0], parts[1])
		for _, a := range AccessPaths() {
			fmt.Fprintf(&b, " | %-10.3f", byKey[k][a].Seconds())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig9Detail renders the decomposition for one instance type (9b for "l",
// 9c for "xl").
func Fig9Detail(cells []Fig9Cell, instance string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9%s: time decomposition (modeled seconds), %s instance\n",
		map[string]string{"l": "b", "xl": "c"}[instance], instance)
	fmt.Fprintf(&b, "%-6s %-8s | %-12s | %-12s | %-12s\n",
		"query", "strategy", "index get", "plan exec", "S3+eval")
	for _, c := range cells {
		if c.Instance != instance || c.Access == NoIndex {
			continue
		}
		fmt.Fprintf(&b, "%-6s %-8s | %-12.4f | %-12.4f | %-12.4f\n",
			c.Query, c.Access, c.LookupGet.Seconds(), c.Plan.Seconds(), c.FetchEval.Seconds())
	}
	return b.String()
}

// Fig11 renders per-query monetary costs.
func Fig11(cells []Fig9Cell) string {
	var b strings.Builder
	b.WriteString("Figure 11: query processing cost per query, access path and instance type\n")
	fmt.Fprintf(&b, "%-6s %-4s", "query", "type")
	for _, a := range AccessPaths() {
		fmt.Fprintf(&b, " | %-11s", a)
	}
	b.WriteString("\n")
	byKey := map[string]map[AccessPath]pricing.USD{}
	var order []string
	for _, c := range cells {
		k := c.Query + " " + c.Instance
		if byKey[k] == nil {
			byKey[k] = map[AccessPath]pricing.USD{}
			order = append(order, k)
		}
		byKey[k][c.Access] = c.Cost.Total()
	}
	for _, k := range order {
		parts := strings.SplitN(k, " ", 2)
		fmt.Fprintf(&b, "%-6s %-4s", parts[0], parts[1])
		for _, a := range AccessPaths() {
			fmt.Fprintf(&b, " | %-11s", usd(byKey[k][a]))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig12 renders the whole-workload cost decomposition by service on the
// extra-large instance, the paper's pie charts.
func Fig12(cells []Fig9Cell) string {
	var b strings.Builder
	b.WriteString("Figure 12: workload evaluation cost decomposition, extra-large instance\n")
	services := []string{"dynamodb", "s3", "ec2", "sqs", "egress"}
	labels := map[string]string{"egress": "AWSDown", "dynamodb": "DynamoDB", "s3": "S3", "ec2": "EC2", "sqs": "SQS"}
	fmt.Fprintf(&b, "%-8s", "access")
	for _, s := range services {
		fmt.Fprintf(&b, " | %-11s", labels[s])
	}
	fmt.Fprintf(&b, " | %-11s\n", "total")
	for _, a := range AccessPaths() {
		sums := map[string]pricing.USD{}
		var total pricing.USD
		for _, c := range cells {
			if c.Instance != "xl" || c.Access != a {
				continue
			}
			for svc, v := range c.Cost.Lines {
				sums[svc] += v
			}
			total += c.Cost.Total()
		}
		fmt.Fprintf(&b, "%-8s", a)
		for _, s := range services {
			fmt.Fprintf(&b, " | %-11s", usd(sums[s]))
		}
		fmt.Fprintf(&b, " | %-11s\n", usd(total))
	}
	return b.String()
}

// WorkloadCost sums the metered cost of one full workload run for an
// access path and instance type.
func WorkloadCost(cells []Fig9Cell, a AccessPath, instance string) pricing.USD {
	var total pricing.USD
	for _, c := range cells {
		if c.Access == a && c.Instance == instance {
			total += c.Cost.Total()
		}
	}
	return total
}
