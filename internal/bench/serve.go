package bench

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/core"
	"repro/internal/pricing"
	"repro/internal/serve"
	"repro/internal/workload"
)

// This file is the serving experiment: the query daemon under a seeded
// closed-loop load across a core-count-derived concurrency ladder, uniform
// and Zipfian mixes. It reports the latency percentiles, the saturation
// throughput of each mix, shed rates, and $/1M-queries from the metered
// billing delta — the serving-side counterpart of the paper's per-query
// cost figures.

// ServePoint is one (distribution, concurrency) arm of the ladder.
type ServePoint struct {
	Dist        string
	Concurrency int
	Requests    int
	Completed   int
	Shed        int
	Errors      int

	P50           time.Duration
	P95           time.Duration
	P99           time.Duration
	ThroughputQPS float64
	CostPer1M     float64
}

// ServeLadder derives the concurrency ladder from the core count: powers
// of two from 1 up to 2x NumCPU, capped at 16 — the s3-benchmark style
// thread ladder, bounded so the experiment stays quick.
func ServeLadder() []int {
	max := 2 * runtime.NumCPU()
	if max > 16 {
		max = 16
	}
	if max < 4 {
		max = 4
	}
	var out []int
	for c := 1; c <= max; c *= 2 {
		out = append(out, c)
	}
	return out
}

// RunServe stands the serving daemon up over an already-indexed warehouse
// (procs query processors, admission sized to the widest ladder rung) and
// drives the ladder: for each mix and concurrency, a seeded closed-loop
// run of 8 requests per worker. The same seed replays the same offered
// sequence on every machine.
func RunServe(w *core.Warehouse, seed int64, procs int) ([]ServePoint, error) {
	if procs < 1 {
		procs = 4
	}
	ladder := ServeLadder()
	widest := ladder[len(ladder)-1]
	backend := serve.NewWarehouseBackend(w, procs, ec2.XL, core.WorkerOptions{})
	book := pricing.Singapore2012()
	s, err := serve.New(serve.Config{
		Backend:  backend,
		Registry: w.Registry(),
		Bill:     func() pricing.Invoice { return book.Bill(w.Ledger().Snapshot()) },
		Limits:   serve.Limits{Workers: procs, QueueDepth: 4 * widest},
	})
	if err != nil {
		return nil, err
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	baseURL := "http://" + addr

	var out []ServePoint
	for _, dist := range []string{workload.DistUniform, workload.DistZipf} {
		for _, conc := range ladder {
			rep, err := serve.RunLoad(serve.LoadOptions{
				BaseURL:     baseURL,
				Queries:     workload.XMark(),
				Dist:        dist,
				Seed:        seed,
				Requests:    8 * conc,
				Concurrency: conc,
				UseIndex:    true,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: serve %s x%d: %w", dist, conc, err)
			}
			if rep.Errors > 0 {
				return nil, fmt.Errorf("bench: serve %s x%d: %d transport errors", dist, conc, rep.Errors)
			}
			out = append(out, ServePoint{
				Dist:          dist,
				Concurrency:   conc,
				Requests:      rep.Offered,
				Completed:     rep.Completed,
				Shed:          rep.ShedQueueFull + rep.ShedQuota,
				Errors:        rep.Errors,
				P50:           rep.P50,
				P95:           rep.P95,
				P99:           rep.P99,
				ThroughputQPS: rep.ThroughputQPS,
				CostPer1M:     rep.CostPer1M,
			})
		}
	}
	return out, nil
}

// ServeTable renders the serving ladder, one block per mix, with each
// mix's saturation throughput (the best rung) underneath.
func ServeTable(points []ServePoint) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Serving: closed-loop latency ladder over the live daemon (wall clock)")
	for _, dist := range []string{workload.DistUniform, workload.DistZipf} {
		fmt.Fprintf(&b, "  %s mix:\n", dist)
		fmt.Fprintf(&b, "    %5s %5s %5s %10s %10s %10s %10s %12s\n",
			"conc", "reqs", "shed", "p50", "p95", "p99", "q/s", "$/1M")
		var saturation float64
		for _, p := range points {
			if p.Dist != dist {
				continue
			}
			if p.ThroughputQPS > saturation {
				saturation = p.ThroughputQPS
			}
			fmt.Fprintf(&b, "    %5d %5d %5d %10s %10s %10s %10.1f %12.2f\n",
				p.Concurrency, p.Requests, p.Shed,
				p.P50.Round(time.Microsecond), p.P95.Round(time.Microsecond),
				p.P99.Round(time.Microsecond), p.ThroughputQPS, p.CostPer1M)
		}
		fmt.Fprintf(&b, "    saturation throughput: %.1f q/s\n", saturation)
	}
	return b.String()
}
