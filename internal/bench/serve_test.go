package bench

import (
	"strings"
	"testing"

	"repro/internal/cloud/ec2"
	"repro/internal/index"
)

func TestServeLadderShape(t *testing.T) {
	ladder := ServeLadder()
	if len(ladder) == 0 {
		t.Fatal("empty ladder")
	}
	prev := 0
	for _, c := range ladder {
		if c <= prev {
			t.Fatalf("ladder not strictly increasing: %v", ladder)
		}
		prev = c
	}
	if ladder[0] != 1 {
		t.Fatalf("ladder must start at concurrency 1, got %v", ladder)
	}
	if last := ladder[len(ladder)-1]; last < 4 || last > 16 {
		t.Fatalf("ladder top rung %d outside [4,16]", last)
	}
}

// The serving experiment end-to-end: a daemon over a tiny warehouse,
// both query mixes across the concurrency ladder, zero transport
// errors, and a renderable table.
func TestServeExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	c, err := NewCorpus(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	w, _, _, err := BuildWarehouse(c, index.TwoLUPI, "", 4, ec2.Large)
	if err != nil {
		t.Fatal(err)
	}
	points, err := RunServe(w, 42, 2)
	if err != nil {
		t.Fatal(err)
	}
	dists := map[string]bool{}
	for _, p := range points {
		dists[p.Dist] = true
		if p.Errors != 0 {
			t.Fatalf("%s c%d: %d transport errors", p.Dist, p.Concurrency, p.Errors)
		}
		if p.Completed+p.Shed != p.Requests {
			t.Fatalf("%s c%d: completed %d + shed %d != offered %d",
				p.Dist, p.Concurrency, p.Completed, p.Shed, p.Requests)
		}
		if p.Completed > 0 && (p.P50 <= 0 || p.P99 < p.P50) {
			t.Fatalf("%s c%d: bad percentiles p50=%v p99=%v",
				p.Dist, p.Concurrency, p.P50, p.P99)
		}
	}
	if !dists["uniform"] || !dists["zipf"] {
		t.Fatalf("expected both mixes, got %v", dists)
	}
	table := ServeTable(points)
	for _, want := range []string{"uniform", "zipf", "saturation"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}
