package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/ec2"
	"repro/internal/cloud/kv"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/index"
	"repro/internal/meter"
	"repro/internal/pricing"
	"repro/internal/workload"
)

// The sharding experiment measures both claims of the partitioned index:
//
//   - Partition mode is free: hash-partitioning the index tables of one
//     provisioned store must leave indexing time, workload time, request
//     counts and the request bill exactly where the unsharded run put them
//     (sharded batches ship as single multi-table requests). The table
//     rows at shards 1/2/4/8 should be identical in those columns.
//
//   - Scatter mode buys throughput with money: spreading shards over
//     independent stores divides batch-read latency by the fan-out, while
//     the provisioned-capacity bill multiplies by it. The last two columns
//     show that trade.

// ShardRow is one shard count's measurements.
type ShardRow struct {
	Shards int

	// Warehouse run on a single provisioned store (partition mode).
	IndexTotal   time.Duration // modeled end-to-end indexing time
	WorkloadTime time.Duration // summed modeled response time, XMark workload
	Calls        int64         // DynamoDB requests (puts + gets)
	RequestCost  pricing.USD   // billed DynamoDB request cost

	// Scatter-mode microbenchmark over independent stores.
	ScatterGet    time.Duration // modeled latency, batch-reading scatterKeys keys
	ProvisionedHr pricing.USD   // provisioned throughput cost per hour
}

const scatterKeys = 400

// RunShard builds a 2LUPI warehouse at each shard count, replays the XMark
// workload, and measures a scatter-mode batch read over as many independent
// stores.
func RunShard(c *Corpus) ([]ShardRow, error) {
	book := pricing.Singapore2012()
	perf := dynamodb.DefaultPerf()
	var rows []ShardRow
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := core.Config{Strategy: index.TwoLUPI, IndexShards: shards}
		w, rep, _, err := BuildWarehouseCfg(c, cfg, 8, ec2.Large)
		if err != nil {
			return nil, err
		}
		proc := ec2.Launch(w.Ledger(), ec2.XL)
		var workloadTime time.Duration
		for _, q := range workload.XMark() {
			_, qs, err := w.RunQueryOn(proc, q.Text, true)
			if err != nil {
				return nil, err
			}
			workloadTime += qs.ResponseTime
		}
		u := w.Ledger().Snapshot()
		scatter, err := scatterGetTime(shards)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ShardRow{
			Shards:       shards,
			IndexTotal:   rep.Total,
			WorkloadTime: workloadTime,
			Calls:        u.Get(dynamodb.Backend, "put").Calls + u.Get(dynamodb.Backend, "get").Calls,
			RequestCost:  book.Bill(u).Line(dynamodb.Backend),
			ScatterGet:   scatter,
			ProvisionedHr: costmodel.ProvisionedThroughputCost(book, shards,
				float64(perf.WriteCapacityUnits), float64(perf.ReadCapacityUnits), 1),
		})
	}
	return rows, nil
}

// scatterGetTime loads scatterKeys items over n independent stores and
// returns the modeled time to batch-read them all back through the
// scatter-gather layer (per-shard reads run concurrently; the layer
// reports the slowest shard).
func scatterGetTime(n int) (time.Duration, error) {
	stores := make([]kv.Store, n)
	for i := range stores {
		stores[i] = dynamodb.New(meter.NewLedger())
	}
	sh := kv.NewShardedStores(stores)
	const table = "scatter"
	if err := sh.CreateTable(table); err != nil {
		return 0, err
	}
	keys := make([]string, scatterKeys)
	var items []kv.Item
	for i := range keys {
		keys[i] = fmt.Sprintf("k-%04d", i)
		items = append(items, kv.Item{
			HashKey:  keys[i],
			RangeKey: "r",
			// 4 KB values make transfer time dominate the request RTT, so
			// the column shows capacity scaling rather than round trips.
			Attrs: []kv.Attr{{Name: "v", Values: []kv.Value{kv.Value(strings.Repeat("x", 4<<10))}}},
		})
	}
	lim := sh.Limits()
	for i := 0; i < len(items); i += lim.BatchPutItems {
		end := min(i+lim.BatchPutItems, len(items))
		if _, err := sh.BatchPut(table, items[i:end]); err != nil {
			return 0, err
		}
	}
	var total time.Duration
	for i := 0; i < len(keys); i += lim.BatchGetKeys {
		end := min(i+lim.BatchGetKeys, len(keys))
		_, d, err := sh.BatchGet(table, keys[i:end])
		if err != nil {
			return 0, err
		}
		total += d
	}
	return total, nil
}

// ShardTable renders the shards-vs-throughput/cost table.
func ShardTable(rows []ShardRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharding: partition-mode invariance and scatter-mode scaling (2LUPI)\n")
	fmt.Fprintf(&b, "%-7s %12s %12s %8s %12s | %12s %14s\n",
		"shards", "index", "workload", "calls", "req cost", "scatter get", "provisioned/h")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7d %12s %12s %8d %12s | %12s %14s\n",
			r.Shards, r.IndexTotal.Round(time.Millisecond), r.WorkloadTime.Round(time.Millisecond),
			r.Calls, usd(r.RequestCost), r.ScatterGet.Round(time.Millisecond), usd(r.ProvisionedHr))
	}
	b.WriteString("partition mode leaves the left columns unchanged at any shard count;\n")
	b.WriteString("scatter mode divides read latency by the fan-out and multiplies the\n")
	b.WriteString("provisioned-capacity bill by it.\n")
	return b.String()
}
