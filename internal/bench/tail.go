package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cloud/chaos"
	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/kv"
	"repro/internal/meter"
	"repro/internal/resilience"
)

// This file measures the tail-latency experiment: cold scatter look-ups over
// a straggler-heavy seeded chaos plan, with and without hedged second
// requests. It quantifies the trade the resilience layer makes — modeled
// p99 latency bought with a bounded number of extra billed requests — the
// same differential TestHedgedScatterDifferential proves correct.

// TailPoint is one arm (hedging on or off) of the tail experiment.
type TailPoint struct {
	Hedged     bool
	Calls      int
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
	BilledGets int64
	Fired      int64 // hedges issued (0 when not hedged)
	Won        int64 // hedges that beat the primary
	WastedBill int64 // hedges the primary beat anyway
}

// tailShardKeys returns perShard hash keys routing to each of shards shards.
func tailShardKeys(shards, perShard int) [][]string {
	out := make([][]string, shards)
	for i := 0; ; i++ {
		key := fmt.Sprintf("key%05d", i)
		k := kv.ShardIndex(key, shards)
		if len(out[k]) < perShard {
			out[k] = append(out[k], key)
		}
		done := true
		for _, g := range out {
			if len(g) < perShard {
				done = false
				break
			}
		}
		if done {
			return out
		}
	}
}

// tailStore builds a scatter-sharded store whose shards straggle under
// independent seeded injectors, loaded with perShard 1 KB items per shard.
func tailStore(seed int64, shards, perShard int, hedged bool) (*kv.Sharded, []*meter.Ledger, []string, error) {
	stores := make([]kv.Store, shards)
	ledgers := make([]*meter.Ledger, shards)
	for k := 0; k < shards; k++ {
		ledgers[k] = meter.NewLedger()
		base := dynamodb.New(ledgers[k])
		// Independent per-shard injectors keep each shard's fault schedule a
		// function of its own op order, so the fan-out is deterministic.
		inj := chaos.NewInjector(chaos.Plan{
			Seed:  seed*1000 + int64(k),
			Rates: chaos.Rates{Straggle: 0.03, StraggleFactor: 8},
		})
		stores[k] = chaos.WrapStore(base, inj)
	}
	sh := kv.NewShardedStores(stores)
	if hedged {
		h := resilience.NewHedger(shards)
		h.Quantile = 0.9
		sh.Hedger = h
	}
	if err := sh.CreateTable("t"); err != nil {
		return nil, nil, nil, err
	}
	groups := tailShardKeys(shards, perShard)
	var keys []string
	val := make([]byte, 1024)
	for _, g := range groups {
		for _, key := range g {
			keys = append(keys, key)
			it := kv.Item{HashKey: key, RangeKey: "r", Attrs: []kv.Attr{{Name: "a", Values: []kv.Value{val}}}}
			if _, err := sh.Put("t", it); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	sort.Strings(keys)
	return sh, ledgers, keys, nil
}

// tailPercentile returns the nearest-rank q-th percentile of ds.
func tailPercentile(ds []time.Duration, q float64) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(q*float64(len(sorted)-1)+0.5)]
}

// RunTail runs calls cold scatter look-ups across shards shards, hedging off
// then on, under the same seeded straggler plan, and reports the modeled
// latency distribution and the billed-request count of each arm.
func RunTail(seed int64, shards, perShard, calls int) ([]TailPoint, error) {
	var out []TailPoint
	for _, hedged := range []bool{false, true} {
		sh, ledgers, keys, err := tailStore(seed, shards, perShard, hedged)
		if err != nil {
			return nil, err
		}
		var ds []time.Duration
		for c := 0; c < calls; c++ {
			_, d, err := sh.BatchGet("t", keys)
			if err != nil {
				return nil, fmt.Errorf("bench: tail call %d (hedged=%v): %w", c, hedged, err)
			}
			ds = append(ds, d)
		}
		var billed int64
		for _, l := range ledgers {
			billed += l.Snapshot().Get(sh.Backend(), "get").Calls
		}
		p := TailPoint{
			Hedged:     hedged,
			Calls:      calls,
			P50:        tailPercentile(ds, 0.50),
			P95:        tailPercentile(ds, 0.95),
			P99:        tailPercentile(ds, 0.99),
			BilledGets: billed,
		}
		if hedged {
			hs := sh.Hedger.Stats()
			p.Fired, p.Won, p.WastedBill = hs.Fired, hs.Won, hs.WastedBill
		}
		out = append(out, p)
	}
	return out, nil
}

// TailTable renders the tail experiment in the paper's table style.
func TailTable(points []TailPoint) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Tail latency: cold scatter look-up under 3% stragglers (8x slowdown), modeled time")
	fmt.Fprintf(&b, "  %-8s %6s %10s %10s %10s %12s %7s %5s %7s\n",
		"hedging", "calls", "p50", "p95", "p99", "billed gets", "fired", "won", "wasted")
	var plain, hedged *TailPoint
	for i := range points {
		p := &points[i]
		name := "off"
		if p.Hedged {
			name = "on"
			hedged = p
		} else {
			plain = p
		}
		fmt.Fprintf(&b, "  %-8s %6d %10s %10s %10s %12d %7d %5d %7d\n",
			name, p.Calls, p.P50, p.P95, p.P99, p.BilledGets, p.Fired, p.Won, p.WastedBill)
	}
	if plain != nil && hedged != nil && hedged.P99 > 0 && plain.BilledGets > 0 {
		fmt.Fprintf(&b, "  p99 improvement %.1fx, bill overhead %.1f%%\n",
			float64(plain.P99)/float64(hedged.P99),
			100*float64(hedged.BilledGets-plain.BilledGets)/float64(plain.BilledGets))
	}
	return b.String()
}
