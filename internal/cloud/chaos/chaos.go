// Package chaos is a seeded, deterministic fault-injection layer for the
// simulated cloud substrate. It wraps the three services the warehouse
// depends on — the key-value index store (kv.Store), the message queues
// (sqs.Service) and the file store (s3.Service) — and injects the failure
// modes the real services exhibit but a naive simulation omits:
//
//   - kv: throttling (ErrThrottled), transient internal errors
//     (ErrInternal), and DynamoDB-style partial batch outcomes — a
//     BatchPut lands a strict subset of its items and reports the rest as
//     unprocessed (BatchWriteItem's UnprocessedItems); a BatchGet serves a
//     strict subset of its keys (UnprocessedKeys);
//   - sqs: at-least-once delivery — a received message is made visible
//     again immediately (duplicate delivery) or its lease is silently cut
//     short so it expires mid-task (forced visibility expiry);
//   - s3: transient Get/Put/Delete failures (ErrTransient).
//
// All decisions are drawn from one PRNG seeded by Plan.Seed, behind a
// single Injector shared by the wrappers, so a run is reproducible: the
// same seed and the same service-call order yield the same fault
// placement. (Under live concurrent workers the call order — and hence the
// placement — depends on scheduling; the invariants the chaos suite checks
// are scheduling-independent.) With all rates zero every wrapper is an
// exact pass-through: no extra requests, no metering difference, no PRNG
// draws.
package chaos

import (
	"math/rand"
	"sync"
)

// Rates sets per-operation fault probabilities, each in [0, 1].
type Rates struct {
	// Throttle fails a kv data operation with kv.ErrThrottled.
	Throttle float64
	// Internal fails a kv data operation with kv.ErrInternal.
	Internal float64
	// PartialBatch makes a kv batch operation of n ≥ 2 elements land a
	// strict non-empty subset and report the remainder unprocessed.
	PartialBatch float64
	// DupDeliver releases a just-delivered queue message back to visible,
	// so another receiver gets a duplicate delivery.
	DupDeliver float64
	// ExpireLease cuts a just-granted message lease to a fraction of the
	// requested visibility, forcing expiry mid-task.
	ExpireLease float64
	// S3Transient fails a file-store Get/Put/Delete with s3.ErrTransient.
	S3Transient float64
	// Straggle makes a kv read operation (Get/BatchGet) a straggler: the
	// operation succeeds but its modeled latency is multiplied by
	// StraggleFactor. This is the tail the hedging layer is built against
	// — real cloud stores exhibit exactly this occasionally-slow regime.
	Straggle float64
	// StraggleFactor is the latency multiplier of a straggling operation
	// (default 10 when Straggle > 0). It is a factor, not a probability,
	// so it is not clamped to [0, 1]; values below 1 are raised to 1.
	StraggleFactor float64
}

// zero reports whether every rate is zero (pass-through mode).
func (r Rates) zero() bool {
	return r.Throttle == 0 && r.Internal == 0 && r.PartialBatch == 0 &&
		r.DupDeliver == 0 && r.ExpireLease == 0 && r.S3Transient == 0 &&
		r.Straggle == 0
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func (r Rates) clamped() Rates {
	r.Throttle = clamp01(r.Throttle)
	r.Internal = clamp01(r.Internal)
	r.PartialBatch = clamp01(r.PartialBatch)
	r.DupDeliver = clamp01(r.DupDeliver)
	r.ExpireLease = clamp01(r.ExpireLease)
	r.S3Transient = clamp01(r.S3Transient)
	r.Straggle = clamp01(r.Straggle)
	if r.StraggleFactor != 0 && r.StraggleFactor < 1 {
		r.StraggleFactor = 1
	}
	return r
}

// Plan describes one reproducible chaos configuration.
type Plan struct {
	// Seed drives every injection decision.
	Seed int64
	// Rates are the per-operation fault probabilities.
	Rates Rates
}

// Counts tallies the faults injected so far, by class.
type Counts struct {
	Throttles      int64
	Internals      int64
	PartialBatches int64
	DupDeliveries  int64
	ExpiredLeases  int64
	S3Faults       int64
	Stragglers     int64
}

// CounterSink receives a copy of every fault tally as a named counter
// increment. The obs Registry satisfies it; defining the interface here
// keeps this package free of an obs dependency.
type CounterSink interface {
	Add(name string, delta int64)
}

// Counter names streamed to a CounterSink, one per Counts field.
const (
	MetricThrottles      = "chaos.throttles"
	MetricInternals      = "chaos.internals"
	MetricPartialBatches = "chaos.partial_batches"
	MetricDupDeliveries  = "chaos.dup_deliveries"
	MetricExpiredLeases  = "chaos.expired_leases"
	MetricS3Faults       = "chaos.s3_faults"
	MetricStragglers     = "chaos.stragglers"
)

// Total sums the injected faults across classes.
func (c Counts) Total() int64 {
	return c.Throttles + c.Internals + c.PartialBatches +
		c.DupDeliveries + c.ExpiredLeases + c.S3Faults + c.Stragglers
}

// Injector is the seeded decision source shared by the wrappers of one
// plan. It is safe for concurrent use.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	rates  Rates
	counts Counts
	sink   CounterSink
}

// NewInjector builds the shared decision source of a plan. Rates outside
// [0, 1] are clamped.
func NewInjector(p Plan) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(p.Seed)), rates: p.Rates.clamped()}
}

// SetRates replaces the fault rates — e.g. zero everything to quiesce the
// chaos layer after a load phase, without unwrapping the services.
func (inj *Injector) SetRates(r Rates) {
	inj.mu.Lock()
	inj.rates = r.clamped()
	inj.mu.Unlock()
}

// Rates returns the current fault rates.
func (inj *Injector) Rates() Rates {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.rates
}

// SetSink streams every future fault tally to sink as well (pass nil to
// stop). The warehouse points this at its obs Registry, so the injected
// fault counters appear in the unified metrics surface.
func (inj *Injector) SetSink(s CounterSink) {
	inj.mu.Lock()
	inj.sink = s
	inj.mu.Unlock()
}

// note increments a sink counter for one injected fault. Must be called
// with inj.mu held (the sink's own synchronization is independent).
func (inj *Injector) note(metric string) {
	if inj.sink != nil {
		inj.sink.Add(metric, 1)
	}
}

// Counts returns a snapshot of the faults injected so far.
//
// Deprecated: when the injector feeds a warehouse, prefer the registry view
// (core.Warehouse.ChaosCounts), which reads the same tallies from the obs
// Registry. This accessor remains for standalone injectors and old callers.
func (inj *Injector) Counts() Counts {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.counts
}

// hit draws one decision at probability rate. Zero rates draw nothing, so
// a zero-rate wrapper consumes no PRNG state and stays bit-compatible with
// an unwrapped run. Must be called with inj.mu held.
func (inj *Injector) hit(rate float64) bool {
	if rate <= 0 {
		return false
	}
	return inj.rng.Float64() < rate
}
