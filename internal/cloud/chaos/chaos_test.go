package chaos_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cloud/chaos"
	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/kv"
	"repro/internal/cloud/s3"
	"repro/internal/cloud/sqs"
	"repro/internal/meter"
)

func item(hash, rng, val string) kv.Item {
	return kv.Item{HashKey: hash, RangeKey: rng, Attrs: []kv.Attr{{Name: "a", Values: []kv.Value{kv.Value(val)}}}}
}

// driveStore issues a fixed operation sequence against s and returns the
// observed errors as a compact trace.
func driveStore(t *testing.T, s kv.Store) []string {
	t.Helper()
	var trace []string
	note := func(op string, err error) { trace = append(trace, fmt.Sprintf("%s:%v", op, err)) }
	for i := 0; i < 10; i++ {
		_, err := s.Put("t", item("h", fmt.Sprintf("r%02d", i), "v"))
		note("put", err)
	}
	batch := make([]kv.Item, 8)
	for i := range batch {
		batch[i] = item("b", fmt.Sprintf("r%02d", i), "v")
	}
	_, err := s.BatchPut("t", batch)
	note("batchPut", err)
	_, _, err = s.Get("t", "h")
	note("get", err)
	_, _, err = s.BatchGet("t", []string{"h", "b", "missing"})
	note("batchGet", err)
	_, err = s.DeleteItem("t", "h", "r00")
	note("deleteItem", err)
	return trace
}

func TestZeroRatesAreExactPassThrough(t *testing.T) {
	ledgerPlain := meter.NewLedger()
	plain := dynamodb.New(ledgerPlain)
	if err := plain.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	ledgerWrapped := meter.NewLedger()
	base := dynamodb.New(ledgerWrapped)
	if err := base.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	inj := chaos.NewInjector(chaos.Plan{Seed: 42}) // all rates zero
	wrapped := chaos.WrapStore(base, inj)

	driveStore(t, plain)
	driveStore(t, wrapped)

	// Billing parity: the wrapped run must meter exactly the same requests,
	// units and bytes as the unwrapped one.
	up, uw := ledgerPlain.Snapshot(), ledgerWrapped.Snapshot()
	if up.String() != uw.String() {
		t.Errorf("zero-rate chaos changed metered usage:\nplain:\n%s\nwrapped:\n%s", up, uw)
	}
	for _, op := range []string{"put", "batchPut", "get", "batchGet", "deleteItem"} {
		if g, w := uw.Get(plain.Backend(), op), up.Get(plain.Backend(), op); g != w {
			t.Errorf("%s: wrapped counts %+v, unwrapped %+v", op, g, w)
		}
	}
	if n := inj.Counts().Total(); n != 0 {
		t.Errorf("zero-rate injector recorded %d faults", n)
	}
}

func TestSeedDeterminism(t *testing.T) {
	run := func(seed int64) ([]string, chaos.Counts) {
		base := dynamodb.New(meter.NewLedger())
		if err := base.CreateTable("t"); err != nil {
			t.Fatal(err)
		}
		inj := chaos.NewInjector(chaos.Plan{Seed: seed, Rates: chaos.Rates{
			Throttle: 0.2, Internal: 0.1, PartialBatch: 0.5,
		}})
		return driveStore(t, chaos.WrapStore(base, inj)), inj.Counts()
	}
	t1, c1 := run(7)
	t2, c2 := run(7)
	if fmt.Sprint(t1) != fmt.Sprint(t2) {
		t.Errorf("same seed, different traces:\n%v\n%v", t1, t2)
	}
	if c1 != c2 {
		t.Errorf("same seed, different counts: %+v vs %+v", c1, c2)
	}
	if c1.Total() == 0 {
		t.Error("aggressive rates injected nothing")
	}
	t3, _ := run(8)
	if fmt.Sprint(t1) == fmt.Sprint(t3) {
		t.Error("different seeds produced identical traces")
	}
}

func TestPartialBatchPutContract(t *testing.T) {
	base := dynamodb.New(meter.NewLedger())
	if err := base.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	inj := chaos.NewInjector(chaos.Plan{Seed: 1, Rates: chaos.Rates{PartialBatch: 1}})
	wrapped := chaos.WrapStore(base, inj)

	batch := make([]kv.Item, 10)
	for i := range batch {
		batch[i] = item("h", fmt.Sprintf("r%02d", i), "v")
	}
	_, err := wrapped.BatchPut("t", batch)
	var pe *kv.PartialPutError
	if !errors.As(err, &pe) {
		t.Fatalf("BatchPut error = %v, want PartialPutError", err)
	}
	if len(pe.Unprocessed) == 0 || len(pe.Unprocessed) >= len(batch) {
		t.Fatalf("unprocessed = %d items, want a strict non-empty subset of %d", len(pe.Unprocessed), len(batch))
	}
	// The processed prefix must actually be in the store; the remainder not.
	if got, want := base.ItemCount("t"), int64(len(batch)-len(pe.Unprocessed)); got != want {
		t.Errorf("store holds %d items after partial put, want %d", got, want)
	}

	// A single-item batch can never be partial: the contract guarantees at
	// least one element lands, so retry loops always make progress.
	if _, err := wrapped.BatchPut("t", batch[:1]); err != nil {
		t.Errorf("single-item batch: %v, want success", err)
	}

	// kv.Retry completes the batch by resubmitting only the remainder.
	inj.SetRates(chaos.Rates{PartialBatch: 0.7})
	base2 := dynamodb.New(meter.NewLedger())
	if err := base2.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	retry := kv.NewRetry(chaos.WrapStore(base2, inj))
	retry.BaseBackoff = time.Microsecond
	if _, err := retry.BatchPut("t", batch); err != nil {
		t.Fatalf("retried BatchPut: %v", err)
	}
	if got := base2.ItemCount("t"); got != int64(len(batch)) {
		t.Errorf("store holds %d items after retried batch, want %d", got, len(batch))
	}
	st := retry.RetryStats()
	if st.PartialBatches == 0 {
		t.Error("retry absorbed no partial batches at rate 0.7")
	}
	if st.ItemsResubmitted == 0 || st.ItemsResubmitted >= int64(len(batch))*int64(st.PartialBatches) {
		t.Errorf("resubmitted %d items over %d partial outcomes: remainder-only accounting violated",
			st.ItemsResubmitted, st.PartialBatches)
	}
}

func TestPartialBatchGetContract(t *testing.T) {
	base := dynamodb.New(meter.NewLedger())
	if err := base.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("h%02d", i)
		if _, err := base.Put("t", item(keys[i], "r", "v")); err != nil {
			t.Fatal(err)
		}
	}
	inj := chaos.NewInjector(chaos.Plan{Seed: 3, Rates: chaos.Rates{PartialBatch: 1}})
	wrapped := chaos.WrapStore(base, inj)

	out, _, err := wrapped.BatchGet("t", keys)
	var pe *kv.PartialGetError
	if !errors.As(err, &pe) {
		t.Fatalf("BatchGet error = %v, want PartialGetError", err)
	}
	if len(pe.UnprocessedKeys) == 0 || len(pe.UnprocessedKeys) >= len(keys) {
		t.Fatalf("unprocessed = %d keys, want a strict non-empty subset of %d", len(pe.UnprocessedKeys), len(keys))
	}
	if len(out)+len(pe.UnprocessedKeys) != len(keys) {
		t.Errorf("served %d + unprocessed %d != requested %d", len(out), len(pe.UnprocessedKeys), len(keys))
	}
	for _, k := range pe.UnprocessedKeys {
		if _, ok := out[k]; ok {
			t.Errorf("key %s both served and reported unprocessed", k)
		}
	}

	// kv.Retry merges the partial results across re-fetches.
	inj.SetRates(chaos.Rates{PartialBatch: 0.7})
	retry := kv.NewRetry(wrapped)
	retry.BaseBackoff = time.Microsecond
	merged, _, err := retry.BatchGet("t", keys)
	if err != nil {
		t.Fatalf("retried BatchGet: %v", err)
	}
	if len(merged) != len(keys) {
		t.Errorf("merged result has %d keys, want %d", len(merged), len(keys))
	}
}

func TestQueueDuplicateDelivery(t *testing.T) {
	q := sqs.New(meter.NewLedger())
	if err := q.CreateQueue("work"); err != nil {
		t.Fatal(err)
	}
	inj := chaos.NewInjector(chaos.Plan{Seed: 1, Rates: chaos.Rates{DupDeliver: 1}})
	wrapped := chaos.WrapQueues(q, inj)

	if _, _, err := wrapped.Send("work", "job"); err != nil {
		t.Fatal(err)
	}
	m1, _, err := wrapped.Receive("work", time.Minute)
	if err != nil || m1 == nil {
		t.Fatalf("first receive: %v, %v", m1, err)
	}
	// The injector released the lease: the same message is immediately
	// deliverable again, while the first receiver still processes it.
	m2, _, err := wrapped.Receive("work", time.Minute)
	if err != nil || m2 == nil {
		t.Fatalf("second receive: %v, %v", m2, err)
	}
	if m1.ID != m2.ID {
		t.Errorf("second receive returned %s, want duplicate of %s", m2.ID, m1.ID)
	}
	// The first receiver's receipt is now stale — deleting with it must
	// fail, exactly as after a real visibility expiry.
	if _, err := wrapped.Delete("work", m1.Receipt); !errors.Is(err, sqs.ErrStaleReceipt) {
		t.Errorf("delete with superseded receipt: %v, want ErrStaleReceipt", err)
	}
	if _, err := wrapped.Delete("work", m2.Receipt); err != nil {
		t.Errorf("delete with current receipt: %v", err)
	}
	if c := inj.Counts().DupDeliveries; c != 2 {
		t.Errorf("DupDeliveries = %d, want 2", c)
	}
}

func TestQueueForcedLeaseExpiry(t *testing.T) {
	q := sqs.New(meter.NewLedger())
	if err := q.CreateQueue("work"); err != nil {
		t.Fatal(err)
	}
	inj := chaos.NewInjector(chaos.Plan{Seed: 1, Rates: chaos.Rates{ExpireLease: 1}})
	wrapped := chaos.WrapQueues(q, inj)

	if _, _, err := wrapped.Send("work", "job"); err != nil {
		t.Fatal(err)
	}
	// Ask for a long lease; chaos silently cuts it to an eighth.
	m1, _, err := wrapped.Receive("work", 400*time.Millisecond)
	if err != nil || m1 == nil {
		t.Fatalf("receive: %v, %v", m1, err)
	}
	time.Sleep(80 * time.Millisecond) // past the shortened lease, well within the requested one
	inj.SetRates(chaos.Rates{})
	m2, _, err := wrapped.Receive("work", time.Minute)
	if err != nil || m2 == nil {
		t.Fatalf("post-expiry receive: %v, %v", m2, err)
	}
	if m2.ID != m1.ID {
		t.Errorf("post-expiry receive returned %s, want %s", m2.ID, m1.ID)
	}
	if c := inj.Counts().ExpiredLeases; c != 1 {
		t.Errorf("ExpiredLeases = %d, want 1", c)
	}
}

func TestFilesTransientFaults(t *testing.T) {
	f := s3.New(meter.NewLedger())
	if err := f.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	inj := chaos.NewInjector(chaos.Plan{Seed: 1, Rates: chaos.Rates{S3Transient: 1}})
	wrapped := chaos.WrapFiles(f, inj)

	if _, err := wrapped.Put("b", "k", []byte("x"), nil); !errors.Is(err, s3.ErrTransient) {
		t.Errorf("put under full chaos: %v, want ErrTransient", err)
	}
	inj.SetRates(chaos.Rates{})
	if _, err := wrapped.Put("b", "k", []byte("x"), nil); err != nil {
		t.Fatalf("put after quiesce: %v", err)
	}
	inj.SetRates(chaos.Rates{S3Transient: 1})
	if _, _, err := wrapped.Get("b", "k"); !errors.Is(err, s3.ErrTransient) {
		t.Errorf("get under full chaos: %v, want ErrTransient", err)
	}
	if _, err := wrapped.Delete("b", "k"); !errors.Is(err, s3.ErrTransient) {
		t.Errorf("delete under full chaos: %v, want ErrTransient", err)
	}
	inj.SetRates(chaos.Rates{})
	if obj, _, err := wrapped.Get("b", "k"); err != nil || string(obj.Data) != "x" {
		t.Errorf("get after quiesce: %q, %v", obj.Data, err)
	}
	if c := inj.Counts().S3Faults; c != 3 {
		t.Errorf("S3Faults = %d, want 3", c)
	}
}

func TestEveryNthCustomError(t *testing.T) {
	base := dynamodb.New(meter.NewLedger())
	if err := base.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	faulty := &chaos.EveryNth{Store: base, FailEvery: 2, Err: kv.ErrInternal}
	var failures int
	for i := 0; i < 6; i++ {
		_, err := faulty.Put("t", item("h", fmt.Sprintf("r%d", i), "v"))
		if err != nil {
			if !errors.Is(err, kv.ErrInternal) {
				t.Fatalf("op %d: %v, want ErrInternal", i, err)
			}
			failures++
		}
	}
	if failures != 3 || faulty.Injected() != 3 {
		t.Errorf("failures = %d, Injected = %d, want 3 and 3", failures, faulty.Injected())
	}

	// Default error class is throttling, like the deprecated kv.FaultInjector.
	def := &chaos.EveryNth{Store: base, FailEvery: 1}
	if _, err := def.Put("t", item("h", "r", "v")); !errors.Is(err, kv.ErrThrottled) {
		t.Errorf("default injected error = %v, want ErrThrottled", err)
	}
}
