package chaos

import (
	"fmt"
	"time"

	"repro/internal/cloud/s3"
)

// s3Fault draws the transient-failure decision for one file operation.
func (inj *Injector) s3Fault() error {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.hit(inj.rates.S3Transient) {
		inj.counts.S3Faults++
		inj.note(MetricS3Faults)
		return fmt.Errorf("%w (chaos)", s3.ErrTransient)
	}
	return nil
}

// Files wraps an s3.Service and injects transient failures (the "503 Slow
// Down" class, s3.ErrTransient) in front of Get, Put and Delete. Metadata
// operations pass through untouched, as do all operations when every rate
// is zero.
type Files struct {
	*s3.Service
	inj *Injector
}

// WrapFiles wraps f with fault injection driven by inj.
func WrapFiles(f *s3.Service, inj *Injector) *Files {
	return &Files{Service: f, inj: inj}
}

// Unwrap returns the wrapped file service.
func (c *Files) Unwrap() *s3.Service { return c.Service }

// Get implements the s3 get with injection.
func (c *Files) Get(bkt, key string) (s3.Object, time.Duration, error) {
	if err := c.inj.s3Fault(); err != nil {
		return s3.Object{}, 0, err
	}
	return c.Service.Get(bkt, key)
}

// Put implements the s3 put with injection.
func (c *Files) Put(bkt, key string, data []byte, userMeta map[string]string) (time.Duration, error) {
	if err := c.inj.s3Fault(); err != nil {
		return 0, err
	}
	return c.Service.Put(bkt, key, data, userMeta)
}

// Delete implements the s3 delete with injection.
func (c *Files) Delete(bkt, key string) (time.Duration, error) {
	if err := c.inj.s3Fault(); err != nil {
		return 0, err
	}
	return c.Service.Delete(bkt, key)
}
