package chaos

import (
	"time"

	"repro/internal/cloud/sqs"
)

// dupDeliver draws the duplicate-delivery decision for one receive.
func (inj *Injector) dupDeliver() bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.hit(inj.rates.DupDeliver) {
		inj.counts.DupDeliveries++
		inj.note(MetricDupDeliveries)
		return true
	}
	return false
}

// expireLease draws the forced-expiry decision for one receive.
func (inj *Injector) expireLease() bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.hit(inj.rates.ExpireLease) {
		inj.counts.ExpiredLeases++
		inj.note(MetricExpiredLeases)
		return true
	}
	return false
}

// Queues wraps an sqs.Service and injects at-least-once delivery anomalies
// on Receive/ReceiveWait:
//
//   - duplicate delivery: the lease of a just-delivered message is released
//     immediately (visibility zero), so the message is delivered again to
//     the next receiver while the first still processes it — the SQS
//     at-least-once contract in its most hostile form;
//   - forced expiry: the lease is silently cut to a fraction of the
//     requested visibility, so it expires mid-task unless renewed
//     unusually fast, exercising the stale-receipt paths.
//
// The receipt handed to the chaotic receiver stays the message's current
// lease until someone else receives the message, so its Delete either
// acknowledges normally or fails with sqs.ErrStaleReceipt — exactly the
// outcomes real SQS can produce. With all rates zero the wrapper is an
// exact pass-through.
type Queues struct {
	*sqs.Service
	inj *Injector
}

// WrapQueues wraps q with delivery-anomaly injection driven by inj.
func WrapQueues(q *sqs.Service, inj *Injector) *Queues {
	return &Queues{Service: q, inj: inj}
}

// Unwrap returns the wrapped queue service.
func (c *Queues) Unwrap() *sqs.Service { return c.Service }

// sabotage applies the drawn anomalies to a freshly leased message. The
// ChangeVisibility calls are real API calls: they are metered and can race
// with other receivers, like a flaky network duplicating requests would.
func (c *Queues) sabotage(queueName string, msg *sqs.Message, visibility time.Duration, d time.Duration) time.Duration {
	if msg == nil {
		return d
	}
	if c.inj.dupDeliver() {
		if dd, err := c.Service.ChangeVisibility(queueName, msg.Receipt, 0); err == nil {
			d += dd
		}
		return d
	}
	if c.inj.expireLease() {
		short := visibility / 8
		if short <= 0 {
			short = time.Millisecond
		}
		if dd, err := c.Service.ChangeVisibility(queueName, msg.Receipt, short); err == nil {
			d += dd
		}
	}
	return d
}

// Receive implements the sqs receive with injection.
func (c *Queues) Receive(queueName string, visibility time.Duration) (*sqs.Message, time.Duration, error) {
	msg, d, err := c.Service.Receive(queueName, visibility)
	if err != nil {
		return msg, d, err
	}
	return msg, c.sabotage(queueName, msg, visibility, d), nil
}

// ReceiveWait implements the sqs long poll with injection.
func (c *Queues) ReceiveWait(queueName string, visibility, maxWait time.Duration) (*sqs.Message, time.Duration, error) {
	msg, d, err := c.Service.ReceiveWait(queueName, visibility, maxWait)
	if err != nil {
		return msg, d, err
	}
	return msg, c.sabotage(queueName, msg, visibility, d), nil
}
