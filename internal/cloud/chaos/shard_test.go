package chaos_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cloud/chaos"
	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/kv"
	"repro/internal/meter"
)

// TestPerShardFaultPlan drives a hash-partitioned store whose chaos layer
// targets a single partition: only operations routed to that shard draw
// from the aggressive injector, the other shards see the zero-rate global
// plan, and the retry layer still converges the store to the same contents
// as a healthy unsharded run.
func TestPerShardFaultPlan(t *testing.T) {
	const shards = 4
	const target = 2

	var items []kv.Item
	var keys []string
	onTarget := 0
	for i := 0; i < 48; i++ {
		key := fmt.Sprintf("key-%03d", i)
		items = append(items, kv.Item{
			HashKey:  key,
			RangeKey: "r",
			Attrs:    []kv.Attr{{Name: "v", Values: []kv.Value{kv.Value(fmt.Sprintf("val-%03d", i))}}},
		})
		keys = append(keys, key)
		if kv.ShardIndex(key, shards) == target {
			onTarget++
		}
	}
	if onTarget == 0 {
		t.Fatalf("no test key routes to shard %d", target)
	}

	// putAll writes the items in provider-limit chunks.
	putAll := func(st kv.Store) error {
		lim := st.Limits().BatchPutItems
		for i := 0; i < len(items); i += lim {
			end := i + lim
			if end > len(items) {
				end = len(items)
			}
			if _, err := st.BatchPut("idx", items[i:end]); err != nil {
				return err
			}
		}
		return nil
	}

	// Healthy reference.
	ref := dynamodb.New(meter.NewLedger())
	if err := ref.CreateTable("idx"); err != nil {
		t.Fatal(err)
	}
	if err := putAll(ref); err != nil {
		t.Fatal(err)
	}

	// Chaotic sharded run: global injector has zero rates; the target
	// shard's plan throttles and splits batches aggressively.
	global := chaos.NewInjector(chaos.Plan{Seed: 3})
	cs := chaos.WrapStore(dynamodb.New(meter.NewLedger()), global)
	hot := chaos.NewInjector(chaos.Plan{Seed: 5, Rates: chaos.Rates{Throttle: 0.3, Internal: 0.1, PartialBatch: 0.5}})
	cs.SetShardInjector(target, hot)
	retry := kv.NewRetry(cs)
	retry.MaxAttempts = 100
	sh := kv.NewSharded(retry, shards)
	if err := sh.CreateTable("idx"); err != nil {
		t.Fatal(err)
	}
	if err := putAll(sh); err != nil {
		t.Fatalf("sharded put under per-shard chaos: %v", err)
	}
	got, _, err := sh.BatchGet("idx", keys)
	if err != nil {
		t.Fatalf("sharded get under per-shard chaos: %v", err)
	}
	want, _, err := ref.BatchGet("idx", keys)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("per-shard chaos changed read results")
	}
	if !reflect.DeepEqual(sh.DumpTable("idx"), ref.DumpTable("idx")) {
		t.Error("per-shard chaos changed final store contents")
	}

	hc := hot.Counts()
	if hc.Throttles+hc.Internals+hc.PartialBatches == 0 {
		t.Error("targeted shard drew no faults — the per-shard plan never fired")
	}
	if gc := global.Counts(); gc != (chaos.Counts{}) {
		t.Errorf("zero-rate global injector tallied faults: %+v", gc)
	}
}

// TestShardInjectorRemoval: a nil injector removes the per-shard plan,
// restoring the store-wide injector for that shard.
func TestShardInjectorRemoval(t *testing.T) {
	global := chaos.NewInjector(chaos.Plan{Seed: 1, Rates: chaos.Rates{Throttle: 1}})
	cs := chaos.WrapStore(dynamodb.New(meter.NewLedger()), global)
	quiet := chaos.NewInjector(chaos.Plan{Seed: 2})
	cs.SetShardInjector(0, quiet)

	if err := cs.CreateTable("idx@0"); err != nil {
		t.Fatal(err)
	}
	it := kv.Item{HashKey: "k", RangeKey: "r"}
	if _, err := cs.Put("idx@0", it); err != nil {
		t.Fatalf("shard plan with zero rates should pass through, got %v", err)
	}
	cs.SetShardInjector(0, nil)
	if _, err := cs.Put("idx@0", it); err == nil {
		t.Error("after removing the shard plan, the always-throttle global injector should fire")
	}
}
