package chaos

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cloud/kv"
)

// kvFault draws the transient-failure decision for one kv data operation:
// nil, kv.ErrThrottled or kv.ErrInternal.
func (inj *Injector) kvFault() error {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.hit(inj.rates.Throttle) {
		inj.counts.Throttles++
		inj.note(MetricThrottles)
		return fmt.Errorf("%w (chaos)", kv.ErrThrottled)
	}
	if inj.hit(inj.rates.Internal) {
		inj.counts.Internals++
		inj.note(MetricInternals)
		return fmt.Errorf("%w (chaos)", kv.ErrInternal)
	}
	return nil
}

// straggleFactor draws the straggler decision for one kv read operation,
// returning the modeled-latency multiplier to apply (1 when the operation
// is not a straggler). Zero rates draw nothing.
func (inj *Injector) straggleFactor() float64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if !inj.hit(inj.rates.Straggle) {
		return 1
	}
	inj.counts.Stragglers++
	inj.note(MetricStragglers)
	f := inj.rates.StraggleFactor
	if f < 1 {
		f = 10
	}
	return f
}

// partialCount draws the partial-batch decision for a batch of n elements.
// It returns n when the batch should complete, otherwise the number of
// elements to process — at least 1 and strictly less than n, so a retry
// loop that resubmits the remainder always makes progress and terminates.
// Batches of fewer than two elements cannot be partial.
func (inj *Injector) partialCount(n int) int {
	if n < 2 {
		return n
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if !inj.hit(inj.rates.PartialBatch) {
		return n
	}
	inj.counts.PartialBatches++
	inj.note(MetricPartialBatches)
	return 1 + inj.rng.Intn(n-1)
}

// Store wraps a kv.Store and injects transient failures and partial batch
// outcomes according to the injector's rates. With all rates zero it is an
// exact pass-through. Table-management and metadata methods are delegated
// untouched via embedding.
type Store struct {
	kv.Store
	inj *Injector

	mu       sync.RWMutex
	shardInj map[int]*Injector
}

// WrapStore wraps s with fault injection driven by inj.
func WrapStore(s kv.Store, inj *Injector) *Store {
	return &Store{Store: s, inj: inj}
}

// Unwrap returns the wrapped store.
func (c *Store) Unwrap() kv.Store { return c.Store }

// SetShardInjector installs a per-shard fault plan: operations against
// shard-suffixed physical tables ("T@shard", the naming of kv.Sharded in
// partition mode) draw their faults from inj instead of the store-wide
// injector. This lets a chaos schedule target one hot partition — the
// per-shard failure mode real DynamoDB exhibits — while other shards stay
// healthy. Passing a nil injector removes the plan. Safe for concurrent
// use, but plans are normally installed before traffic starts so fault
// schedules stay reproducible.
func (c *Store) SetShardInjector(shard int, inj *Injector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if inj == nil {
		delete(c.shardInj, shard)
		return
	}
	if c.shardInj == nil {
		c.shardInj = make(map[int]*Injector)
	}
	c.shardInj[shard] = inj
}

// injFor resolves the injector governing an operation on the given
// (possibly shard-suffixed) table name.
func (c *Store) injFor(table string) *Injector {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.shardInj) > 0 {
		if _, shard, ok := kv.SplitShardTable(table); ok {
			if inj, ok := c.shardInj[shard]; ok {
				return inj
			}
		}
	}
	return c.inj
}

// Put implements kv.Store with injection.
func (c *Store) Put(table string, item kv.Item) (time.Duration, error) {
	if err := c.injFor(table).kvFault(); err != nil {
		return 0, err
	}
	return c.Store.Put(table, item)
}

// BatchPut implements kv.Store with injection. An injected partial outcome
// applies a strict non-empty prefix of the batch to the underlying store
// and reports the remainder as unprocessed, exactly like BatchWriteItem's
// UnprocessedItems: the caller must resubmit only the remainder.
func (c *Store) BatchPut(table string, items []kv.Item) (time.Duration, error) {
	inj := c.injFor(table)
	if err := inj.kvFault(); err != nil {
		return 0, err
	}
	n := inj.partialCount(len(items))
	if n >= len(items) {
		return c.Store.BatchPut(table, items)
	}
	d, err := c.Store.BatchPut(table, items[:n])
	if err != nil {
		return d, err
	}
	rest := make([]kv.Item, len(items)-n)
	copy(rest, items[n:])
	return d, &kv.PartialPutError{Unprocessed: rest}
}

// Get implements kv.Store with injection. A straggle draw multiplies the
// modeled latency of a successful read (the tail the hedging layer cuts).
func (c *Store) Get(table, hashKey string) ([]kv.Item, time.Duration, error) {
	inj := c.injFor(table)
	if err := inj.kvFault(); err != nil {
		return nil, 0, err
	}
	f := inj.straggleFactor()
	items, d, err := c.Store.Get(table, hashKey)
	if f > 1 && err == nil {
		d = time.Duration(float64(d) * f)
	}
	return items, d, err
}

// BatchGet implements kv.Store with injection. An injected partial outcome
// serves a strict non-empty prefix of the requested keys and reports the
// remainder as unprocessed (UnprocessedKeys): the caller must re-fetch
// only the remainder and merge.
func (c *Store) BatchGet(table string, hashKeys []string) (map[string][]kv.Item, time.Duration, error) {
	inj := c.injFor(table)
	if err := inj.kvFault(); err != nil {
		return nil, 0, err
	}
	f := inj.straggleFactor()
	n := inj.partialCount(len(hashKeys))
	if n >= len(hashKeys) {
		out, d, err := c.Store.BatchGet(table, hashKeys)
		if f > 1 && err == nil {
			d = time.Duration(float64(d) * f)
		}
		return out, d, err
	}
	out, d, err := c.Store.BatchGet(table, hashKeys[:n])
	if err != nil {
		return out, d, err
	}
	if f > 1 {
		d = time.Duration(float64(d) * f)
	}
	rest := make([]string, len(hashKeys)-n)
	copy(rest, hashKeys[n:])
	return out, d, &kv.PartialGetError{UnprocessedKeys: rest}
}

// DeleteItem implements kv.Store with injection.
func (c *Store) DeleteItem(table, hashKey, rangeKey string) (time.Duration, error) {
	if err := c.injFor(table).kvFault(); err != nil {
		return 0, err
	}
	return c.Store.DeleteItem(table, hashKey, rangeKey)
}

// EveryNth wraps a kv.Store and makes every n-th data operation fail with
// a fixed error before reaching the underlying store. Unlike the
// probabilistic Store wrapper it is exactly periodic, which makes retry
// budgets and counters easy to assert in tests. It supersedes the
// deprecated kv.FaultInjector and additionally supports failure classes
// beyond throttling via Err.
type EveryNth struct {
	kv.Store
	// FailEvery makes operation number k fail whenever k % FailEvery == 0
	// (1-based). Zero disables injection.
	FailEvery int
	// Err is the injected failure (default kv.ErrThrottled).
	Err error

	mu    sync.Mutex
	count int
}

func (f *EveryNth) trip() error {
	if f.FailEvery <= 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.count++
	if f.count%f.FailEvery != 0 {
		return nil
	}
	err := f.Err
	if err == nil {
		err = kv.ErrThrottled
	}
	return fmt.Errorf("%w (injected, op %d)", err, f.count)
}

// Injected reports how many operations have failed so far.
func (f *EveryNth) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.FailEvery <= 0 {
		return 0
	}
	return f.count / f.FailEvery
}

// Put implements kv.Store with injection.
func (f *EveryNth) Put(table string, item kv.Item) (time.Duration, error) {
	if err := f.trip(); err != nil {
		return 0, err
	}
	return f.Store.Put(table, item)
}

// BatchPut implements kv.Store with injection.
func (f *EveryNth) BatchPut(table string, items []kv.Item) (time.Duration, error) {
	if err := f.trip(); err != nil {
		return 0, err
	}
	return f.Store.BatchPut(table, items)
}

// DeleteItem implements kv.Store with injection.
func (f *EveryNth) DeleteItem(table, hashKey, rangeKey string) (time.Duration, error) {
	if err := f.trip(); err != nil {
		return 0, err
	}
	return f.Store.DeleteItem(table, hashKey, rangeKey)
}

// Get implements kv.Store with injection.
func (f *EveryNth) Get(table, hashKey string) ([]kv.Item, time.Duration, error) {
	if err := f.trip(); err != nil {
		return nil, 0, err
	}
	return f.Store.Get(table, hashKey)
}

// BatchGet implements kv.Store with injection.
func (f *EveryNth) BatchGet(table string, hashKeys []string) (map[string][]kv.Item, time.Duration, error) {
	if err := f.trip(); err != nil {
		return nil, 0, err
	}
	return f.Store.BatchGet(table, hashKeys)
}
