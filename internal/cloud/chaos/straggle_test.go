package chaos_test

import (
	"testing"
	"time"

	"repro/internal/cloud/chaos"
	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/kv"
	"repro/internal/meter"
)

// straggleStore builds a chaos-wrapped store preloaded with one row.
func straggleStore(t *testing.T, plan chaos.Plan) (*chaos.Store, *chaos.Injector) {
	t.Helper()
	base := dynamodb.New(meter.NewLedger())
	if err := base.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := base.Put("t", item("h", "r", "v")); err != nil {
		t.Fatal(err)
	}
	inj := chaos.NewInjector(plan)
	return chaos.WrapStore(base, inj), inj
}

func TestStragglerInjection(t *testing.T) {
	// A guaranteed straggle multiplies the modeled read latency by the
	// configured factor while the result stays correct.
	clean, _ := straggleStore(t, chaos.Plan{Seed: 1})
	cItems, cd, err := clean.Get("t", "h")
	if err != nil {
		t.Fatal(err)
	}

	slow, inj := straggleStore(t, chaos.Plan{Seed: 1, Rates: chaos.Rates{
		Straggle: 1, StraggleFactor: 8,
	}})
	sItems, sd, err := slow.Get("t", "h")
	if err != nil {
		t.Fatal(err)
	}
	if len(sItems) != len(cItems) {
		t.Fatalf("straggler changed the result: %d vs %d items", len(sItems), len(cItems))
	}
	if want := time.Duration(float64(cd) * 8); sd != want {
		t.Fatalf("straggled latency = %v, want %v (8x %v)", sd, want, cd)
	}
	if got := inj.Counts().Stragglers; got != 1 {
		t.Fatalf("Stragglers = %d, want 1", got)
	}

	// BatchGet straggles the same way.
	_, bd, err := slow.BatchGet("t", []string{"h"})
	if err != nil {
		t.Fatal(err)
	}
	_, cbd, err := clean.BatchGet("t", []string{"h"})
	if err != nil {
		t.Fatal(err)
	}
	if want := time.Duration(float64(cbd) * 8); bd != want {
		t.Fatalf("straggled batch latency = %v, want %v", bd, want)
	}
	if got := inj.Counts().Stragglers; got != 2 {
		t.Fatalf("Stragglers = %d, want 2", got)
	}
}

func TestStragglerDefaultFactorAndDeterminism(t *testing.T) {
	run := func() (time.Duration, chaos.Counts) {
		s, inj := straggleStore(t, chaos.Plan{Seed: 7, Rates: chaos.Rates{Straggle: 0.5}})
		var total time.Duration
		for i := 0; i < 20; i++ {
			_, d, err := s.Get("t", "h")
			if err != nil {
				t.Fatal(err)
			}
			total += d
		}
		return total, inj.Counts()
	}
	d1, c1 := run()
	d2, c2 := run()
	if d1 != d2 || c1 != c2 {
		t.Fatalf("straggler schedule not deterministic: %v/%+v vs %v/%+v", d1, c1, d2, c2)
	}
	if c1.Stragglers == 0 {
		t.Fatal("rate 0.5 over 20 reads injected no stragglers")
	}
	// Default factor is 10x: total must exceed the clean baseline by
	// exactly 9 extra units per straggler.
	clean, _ := straggleStore(t, chaos.Plan{Seed: 7})
	_, unit, err := clean.Get("t", "h")
	if err != nil {
		t.Fatal(err)
	}
	want := 20*unit + time.Duration(c1.Stragglers)*9*unit
	if d1 != want {
		t.Fatalf("total latency = %v, want %v (%d stragglers at 10x)", d1, want, c1.Stragglers)
	}
}

// TestStragglerWritesUntouched pins the contract that Straggle only affects
// reads: the write path's modeled latency is identical with and without a
// certain-straggle plan.
func TestStragglerWritesUntouched(t *testing.T) {
	clean, _ := straggleStore(t, chaos.Plan{Seed: 3})
	slow, _ := straggleStore(t, chaos.Plan{Seed: 3, Rates: chaos.Rates{Straggle: 1, StraggleFactor: 16}})
	cd, err := clean.Put("t", item("h2", "r", "v"))
	if err != nil {
		t.Fatal(err)
	}
	sd, err := slow.Put("t", item("h2", "r", "v"))
	if err != nil {
		t.Fatal(err)
	}
	if cd != sd {
		t.Fatalf("straggle plan changed write latency: %v vs %v", sd, cd)
	}
	items := []kv.Item{item("b", "r0", "v"), item("b", "r1", "v")}
	cbd, err := clean.BatchPut("t", items)
	if err != nil {
		t.Fatal(err)
	}
	sbd, err := slow.BatchPut("t", items)
	if err != nil {
		t.Fatal(err)
	}
	if cbd != sbd {
		t.Fatalf("straggle plan changed batch write latency: %v vs %v", sbd, cbd)
	}
}
