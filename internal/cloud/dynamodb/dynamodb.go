// Package dynamodb simulates Amazon DynamoDB, the key-value store hosting
// the warehouse index in the paper (Section 6).
//
// Simulated behaviour matching the real service as described in the paper:
//
//   - tables of items addressed by a composite hash + range primary key;
//     get(T,k) returns every item with hash key k;
//   - items of at most 64 KB; arbitrary binary attribute values (the
//     feature exploited to store compressed structural-ID sets);
//   - batchGet of up to 100 keys and batchPut (BatchWriteItem) of up to 25
//     items per API request;
//   - provisioned throughput: the store serves a bounded number of
//     capacity units per second, shared among concurrent client threads,
//     which makes DynamoDB the bottleneck during parallel indexing
//     (Section 8.2) and damps the speed-up of many strong instances
//     (Figure 10);
//   - multiple tables cannot be queried by a single request; combining
//     results happens in the application layer.
package dynamodb

import (
	"time"

	"repro/internal/cloud/kv"
	"repro/internal/meter"
)

// Backend is the service name used for metering and billing.
const Backend = "dynamodb"

// MaxItemBytes is the DynamoDB item size cap the paper works around by
// splitting large index entries across several UUID-ranged items.
const MaxItemBytes = 64 << 10

// DefaultPerf models the service performance used throughout the
// experiments. Values are calibrated in internal/bench so that the modeled
// times reproduce the shapes of Tables 4 and 7 and Figures 7, 9 and 10.
func DefaultPerf() kv.Perf {
	return kv.Perf{
		RTT:            4 * time.Millisecond,
		WriteUnitBytes: 1 << 10,
		ReadUnitBytes:  4 << 10,
		// Aggregate provisioned capacity, units per second.
		WriteCapacityUnits: 5500,
		ReadCapacityUnits:  20000,
		// What a single sustained client thread can drive.
		ClientWriteUnits: 700,
		ClientReadUnits:  2500,
	}
}

// New returns a simulated DynamoDB endpoint recording into ledger.
func New(ledger *meter.Ledger) *kv.MemStore {
	return NewWithPerf(ledger, DefaultPerf())
}

// NewWithPerf returns a simulated DynamoDB endpoint with a custom
// performance model (used by calibration and ablation benches).
func NewWithPerf(ledger *meter.Ledger, perf kv.Perf) *kv.MemStore {
	return kv.NewMemStore(kv.Config{
		Backend: Backend,
		Limits: kv.Limits{
			MaxItemBytes:   MaxItemBytes,
			MaxValueBytes:  MaxItemBytes,
			BatchPutItems:  25,
			BatchGetKeys:   100,
			SupportsBinary: true,
		},
		Perf: perf,
		// DynamoDB bills roughly 100 bytes of indexing overhead per item.
		PerItemOverhead: 100,
		Ledger:          ledger,
	})
}
