package dynamodb

import (
	"testing"

	"repro/internal/meter"
)

func TestConfiguration(t *testing.T) {
	s := New(meter.NewLedger())
	if s.Backend() != Backend {
		t.Errorf("backend = %q", s.Backend())
	}
	lim := s.Limits()
	if lim.MaxItemBytes != 64<<10 {
		t.Errorf("item cap = %d, want 64KB (Section 6)", lim.MaxItemBytes)
	}
	if lim.BatchPutItems != 25 || lim.BatchGetKeys != 100 {
		t.Errorf("batch limits = %d/%d, want 25/100 (Section 6)", lim.BatchPutItems, lim.BatchGetKeys)
	}
	if !lim.SupportsBinary {
		t.Error("DynamoDB must accept binary values (Section 8.2)")
	}
}

func TestDefaultPerfSane(t *testing.T) {
	p := DefaultPerf()
	if p.RTT <= 0 || p.WriteCapacityUnits <= 0 || p.ClientWriteUnits <= 0 {
		t.Errorf("perf = %+v", p)
	}
	if p.ClientWriteUnits*16 <= p.WriteCapacityUnits {
		t.Error("16 sustained clients (8 large instances) must be able to saturate the write capacity, per Section 8.2")
	}
	if p.ClientWriteUnits*2 >= p.WriteCapacityUnits {
		t.Error("a single instance must not saturate the store")
	}
}
