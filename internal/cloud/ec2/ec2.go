// Package ec2 simulates Amazon Elastic Compute Cloud instances, the virtual
// machines that run the warehouse's indexing module and query processor.
//
// The paper uses two standard instance types (Section 8.1):
//
//   - large (l): 7.5 GB RAM, 2 virtual cores with 2 EC2 Compute Units each;
//   - extra large (xl): 15 GB RAM, 4 virtual cores with 2 ECU each;
//
// where one ECU is the CPU capacity of a 1.0-1.2 GHz 2007 Xeon.
//
// A simulated instance carries a vtime.Timeline with one lane per core.
// Work is expressed as modeled durations (computed from bytes processed and
// a throughput per ECU) and scheduled on the least-loaded lane, which models
// the multi-threading the paper relies on for intra-machine parallelism.
// Instance busy time is billed per fractional hour at the type's rate
// (VM$h of Table 3).
package ec2

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/meter"
	"repro/internal/vtime"
)

// InstanceType describes a purchasable machine configuration.
type InstanceType struct {
	Name       string
	Cores      int
	ECUPerCore float64
	RAMBytes   int64
}

// The two standard instance types used in the paper's experiments.
var (
	Large = InstanceType{Name: "l", Cores: 2, ECUPerCore: 2, RAMBytes: 7.5 * (1 << 30)}
	XL    = InstanceType{Name: "xl", Cores: 4, ECUPerCore: 2, RAMBytes: 15 * (1 << 30)}
)

// TypeByName resolves "l" or "xl".
func TypeByName(name string) (InstanceType, error) {
	switch name {
	case Large.Name:
		return Large, nil
	case XL.Name:
		return XL, nil
	}
	return InstanceType{}, fmt.Errorf("ec2: unknown instance type %q", name)
}

// ECU returns the total compute units of the type.
func (t InstanceType) ECU() float64 { return float64(t.Cores) * t.ECUPerCore }

// Instance is a launched virtual machine.
type Instance struct {
	ID   string
	Type InstanceType
	// TL is the instance's modeled timeline, one lane per core.
	TL *vtime.Timeline

	ledger *meter.Ledger

	mu     sync.Mutex
	billed time.Duration // portion of TL already billed
	done   bool
}

var launchSeq struct {
	mu sync.Mutex
	n  int
}

// Launch starts an instance of the given type, billing into ledger.
func Launch(ledger *meter.Ledger, typ InstanceType) *Instance {
	if ledger == nil {
		panic("ec2: ledger is required")
	}
	launchSeq.mu.Lock()
	launchSeq.n++
	id := fmt.Sprintf("i-%s-%04d", typ.Name, launchSeq.n)
	launchSeq.mu.Unlock()
	return &Instance{ID: id, Type: typ, TL: vtime.New(typ.Cores), ledger: ledger}
}

// LaunchFleet starts n identical instances.
func LaunchFleet(ledger *meter.Ledger, typ InstanceType, n int) []*Instance {
	fleet := make([]*Instance, n)
	for i := range fleet {
		fleet[i] = Launch(ledger, typ)
	}
	return fleet
}

// ComputeDuration converts a volume of bytes to process into a modeled
// duration on one core of this instance, given a throughput expressed in
// bytes per second per ECU. One task occupies one core.
func (in *Instance) ComputeDuration(bytes int64, bytesPerECUSec float64) time.Duration {
	if bytesPerECUSec <= 0 {
		panic("ec2: non-positive throughput")
	}
	perCore := bytesPerECUSec * in.Type.ECUPerCore
	return time.Duration(float64(bytes) / perCore * float64(time.Second))
}

// Run schedules a work item of duration d on the least-loaded core and
// bills the time immediately.
func (in *Instance) Run(d time.Duration) {
	in.TL.Schedule(d)
	in.bill()
}

// RunScheduled schedules a work item like Run but additionally returns the
// core chosen, so that follow-on work tied to the same task — e.g. the
// upload stage of the indexing pipeline, which must not start before the
// task's extraction finished on its core — can be placed with RunOn.
func (in *Instance) RunScheduled(d time.Duration) int {
	core := in.TL.Schedule(d)
	in.bill()
	return core
}

// RunOn adds work to a specific core (used when a task must stay on the
// lane that issued a service request).
func (in *Instance) RunOn(core int, d time.Duration) {
	in.TL.Advance(core, d)
	in.bill()
}

// bill charges any unbilled elapsed time to the ledger. Billing follows the
// paper's model: the instance costs VM$h for each (fractional) hour it is
// busy, measured by its elapsed modeled time.
func (in *Instance) bill() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.done {
		return
	}
	e := in.TL.Elapsed()
	if e > in.billed {
		in.ledger.AddInstanceSeconds(in.Type.Name, (e - in.billed).Seconds())
		in.billed = e
	}
}

// Elapsed reports the instance's modeled busy (wall) time.
func (in *Instance) Elapsed() time.Duration { return in.TL.Elapsed() }

// Terminate stops billing the instance. Further Run calls panic.
func (in *Instance) Terminate() {
	in.bill()
	in.mu.Lock()
	defer in.mu.Unlock()
	in.done = true
}

// Terminated reports whether the instance was terminated.
func (in *Instance) Terminated() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.done
}

// FleetElapsed reports the modeled wall-clock time of a phase executed by a
// fleet in parallel: the maximum elapsed time across instances.
func FleetElapsed(fleet []*Instance) time.Duration {
	tls := make([]*vtime.Timeline, len(fleet))
	for i, in := range fleet {
		tls[i] = in.TL
	}
	return vtime.MaxElapsed(tls...)
}

// FleetLevel raises every instance to the fleet's elapsed time, modeling a
// synchronization barrier between phases, and bills the idle tail so that
// machines waiting on a barrier are still paid for.
func FleetLevel(fleet []*Instance) {
	max := FleetElapsed(fleet)
	for _, in := range fleet {
		lag := max - in.TL.Elapsed()
		if lag > 0 {
			in.TL.Level()
			in.TL.Advance(0, lag)
			in.TL.Level()
		} else {
			in.TL.Level()
		}
		in.bill()
	}
}
