package ec2

import (
	"math"
	"testing"
	"time"

	"repro/internal/meter"
)

func TestInstanceTypes(t *testing.T) {
	if Large.ECU() != 4 {
		t.Errorf("large ECU = %v, want 4", Large.ECU())
	}
	if XL.ECU() != 8 {
		t.Errorf("xl ECU = %v, want 8", XL.ECU())
	}
	if typ, err := TypeByName("xl"); err != nil || typ.Name != "xl" {
		t.Errorf("TypeByName(xl) = %v, %v", typ, err)
	}
	if _, err := TypeByName("huge"); err == nil {
		t.Error("TypeByName(huge) succeeded")
	}
}

func TestComputeDuration(t *testing.T) {
	in := Launch(meter.NewLedger(), Large)
	// 4 MB at 1 MB/s/ECU on a 2-ECU core -> 2 seconds.
	got := in.ComputeDuration(4<<20, 1<<20)
	if got != 2*time.Second {
		t.Errorf("ComputeDuration = %v, want 2s", got)
	}
}

func TestRunSchedulesAcrossCores(t *testing.T) {
	in := Launch(meter.NewLedger(), Large) // 2 cores
	for i := 0; i < 4; i++ {
		in.Run(time.Second)
	}
	if got := in.Elapsed(); got != 2*time.Second {
		t.Errorf("Elapsed = %v, want 2s", got)
	}
}

func TestXLTwiceTheCoresOfL(t *testing.T) {
	lg := Launch(meter.NewLedger(), Large)
	xl := Launch(meter.NewLedger(), XL)
	for i := 0; i < 8; i++ {
		lg.Run(time.Second)
		xl.Run(time.Second)
	}
	if lg.Elapsed() != 2*xl.Elapsed() {
		t.Errorf("l=%v, xl=%v: want exactly 2x", lg.Elapsed(), xl.Elapsed())
	}
}

func TestBillingTracksElapsed(t *testing.T) {
	led := meter.NewLedger()
	in := Launch(led, Large)
	in.Run(10 * time.Second)
	in.Run(10 * time.Second) // second core: elapsed still 10s
	got := led.Snapshot().InstanceSeconds("l")
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("billed %v s, want 10", got)
	}
	in.Run(5 * time.Second) // core 0 now 15s
	got = led.Snapshot().InstanceSeconds("l")
	if math.Abs(got-15) > 1e-9 {
		t.Errorf("billed %v s, want 15", got)
	}
}

func TestTerminateStopsBilling(t *testing.T) {
	led := meter.NewLedger()
	in := Launch(led, XL)
	in.Run(time.Second)
	in.Terminate()
	if !in.Terminated() {
		t.Error("not terminated")
	}
	in.TL.Advance(0, time.Hour) // direct timeline manipulation after term
	in.bill()
	got := led.Snapshot().InstanceSeconds("xl")
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("billed %v s after terminate, want 1", got)
	}
}

func TestLaunchFleetDistinctIDs(t *testing.T) {
	fleet := LaunchFleet(meter.NewLedger(), Large, 8)
	if len(fleet) != 8 {
		t.Fatalf("fleet size %d", len(fleet))
	}
	ids := make(map[string]bool)
	for _, in := range fleet {
		if ids[in.ID] {
			t.Errorf("duplicate instance ID %s", in.ID)
		}
		ids[in.ID] = true
	}
}

func TestFleetElapsedIsMax(t *testing.T) {
	fleet := LaunchFleet(meter.NewLedger(), Large, 2)
	fleet[0].Run(3 * time.Second)
	fleet[1].Run(9 * time.Second)
	if got := FleetElapsed(fleet); got != 9*time.Second {
		t.Errorf("FleetElapsed = %v, want 9s", got)
	}
}

func TestFleetLevelBarrier(t *testing.T) {
	led := meter.NewLedger()
	fleet := LaunchFleet(led, Large, 2)
	fleet[0].Run(2 * time.Second)
	fleet[1].Run(10 * time.Second)
	FleetLevel(fleet)
	for i, in := range fleet {
		if got := in.Elapsed(); got != 10*time.Second {
			t.Errorf("instance %d elapsed = %v, want 10s", i, got)
		}
	}
	// The barrier bills idle time too: both instances billed 10s each.
	got := led.Snapshot().InstanceSeconds("l")
	if math.Abs(got-20) > 1e-9 {
		t.Errorf("fleet billed %v s, want 20", got)
	}
}

func TestEightInstancesEightfoldThroughput(t *testing.T) {
	// The elasticity claim: the same task count over 8 instances yields
	// one eighth of the modeled elapsed time.
	led := meter.NewLedger()
	one := LaunchFleet(led, Large, 1)
	eight := LaunchFleet(led, Large, 8)
	for i := 0; i < 64; i++ {
		one[0].Run(time.Second)
		eight[i%8].Run(time.Second)
	}
	if FleetElapsed(one) != 8*FleetElapsed(eight) {
		t.Errorf("one=%v eight=%v", FleetElapsed(one), FleetElapsed(eight))
	}
}
