package kv

import (
	"sort"
	"sync"
)

// Delta is the in-memory versioned write overlay of the mutable warehouse —
// the LSM memtable sitting in front of a Store. Each entry records, for one
// (table, hash key, owner) triple, either the owner's full replacement
// contribution to that key or a tombstone retaining the contribution it
// removed. Entries are version-stamped; readers capture the latest entry at
// or below their pinned version, and the compactor folds entries at or
// below the fold horizon into the main store before removing them.
//
// The overlay carries no billing: it models the warehouse process's own
// memory. Every billed operation happens when the compactor writes the
// folded items through the metered store.
//
// Race discipline (what makes snapshot reads safe against a concurrent
// fold): readers call Capture BEFORE fetching from the main store, and the
// compactor calls Commit only AFTER all of a fold's main-store writes and
// deletes have landed. A reader that still sees an entry uses it and drops
// the owner's main-store items entirely, so a half-written fold is
// invisible; a reader that no longer sees the entry is guaranteed the fold
// completed and the main store carries the folded state.
type Delta struct {
	mu   sync.Mutex
	keys map[tableKey]*deltaCell
}

type tableKey struct {
	Table   string
	HashKey string
}

// deltaCell holds one (table, hash key)'s overlay state.
type deltaCell struct {
	owners map[string][]DeltaEntry // ascending by Version
	// folded is what the compactor has written to the main store per
	// owner — the base the next fold diffs against to delete stale items.
	folded map[string][]Item
	// foldedStamp is the highest folded version; it keeps reader cache
	// stamps monotonic across folds, so a cache entry filled before a
	// fold can never alias a post-fold state.
	foldedStamp uint64
}

// DeltaEntry is one versioned overlay record.
type DeltaEntry struct {
	Version   uint64
	Tombstone bool
	// Items is the owner's full contribution to the key (replace
	// semantics). For a tombstone it retains the contribution being
	// removed, so readers can subtract it at posting-decode time.
	Items []Item
}

// Overlay is what a reader captures for one hash key at one version.
type Overlay struct {
	// Stamp discriminates cache and coalescing identities: it advances
	// when a replace entry becomes visible or when any entry folds, and
	// deliberately does NOT advance for a live tombstone — deletions are
	// applied to the shared cached posting at decode time instead of
	// evicting it.
	Stamp uint64
	// Replaces maps owner -> full replacement items; the owner's
	// main-store items must be dropped and these used instead.
	Replaces map[string][]Item
	// Tombstones maps owner -> the retained contribution to subtract.
	Tombstones map[string][]Item
}

// NewDelta returns an empty overlay.
func NewDelta() *Delta {
	return &Delta{keys: map[tableKey]*deltaCell{}}
}

func (d *Delta) cell(table, hashKey string) *deltaCell {
	tk := tableKey{table, hashKey}
	c := d.keys[tk]
	if c == nil {
		c = &deltaCell{owners: map[string][]DeltaEntry{}, folded: map[string][]Item{}}
		d.keys[tk] = c
	}
	return c
}

// Put appends a replace entry: owner's contribution to (table, hashKey)
// becomes items as of version ver.
func (d *Delta) Put(table, hashKey, owner string, ver uint64, items []Item) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := d.cell(table, hashKey)
	c.owners[owner] = append(c.owners[owner], DeltaEntry{Version: ver, Items: items})
}

// Tombstone appends a removal entry retaining the contribution prev that it
// removes.
func (d *Delta) Tombstone(table, hashKey, owner string, ver uint64, prev []Item) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := d.cell(table, hashKey)
	c.owners[owner] = append(c.owners[owner], DeltaEntry{Version: ver, Tombstone: true, Items: prev})
}

// latestAt returns the latest entry at or below ver, or nil.
func latestAt(es []DeltaEntry, ver uint64) *DeltaEntry {
	var latest *DeltaEntry
	for i := range es {
		if es[i].Version <= ver {
			latest = &es[i]
		}
	}
	return latest
}

// Capture returns, for each requested hash key, the overlay visible at
// version ver. Keys with no visible overlay and no folded stamp are omitted
// — an absent key means "read the main store as-is".
func (d *Delta) Capture(table string, keys []string, ver uint64) map[string]Overlay {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out map[string]Overlay
	for _, key := range keys {
		c := d.keys[tableKey{table, key}]
		if c == nil {
			continue
		}
		ov := Overlay{Stamp: c.foldedStamp}
		for owner, es := range c.owners {
			latest := latestAt(es, ver)
			if latest == nil {
				continue
			}
			if latest.Tombstone {
				if ov.Tombstones == nil {
					ov.Tombstones = map[string][]Item{}
				}
				ov.Tombstones[owner] = latest.Items
			} else {
				if ov.Replaces == nil {
					ov.Replaces = map[string][]Item{}
				}
				ov.Replaces[owner] = latest.Items
				if latest.Version > ov.Stamp {
					ov.Stamp = latest.Version
				}
			}
		}
		if ov.Stamp == 0 && ov.Replaces == nil && ov.Tombstones == nil {
			continue
		}
		if out == nil {
			out = map[string]Overlay{}
		}
		out[key] = ov
	}
	return out
}

// FoldUnit is one triple's pending fold work: the latest visible entry at
// the horizon, the main-store base to diff against, and the versions to
// retire on Commit.
type FoldUnit struct {
	Table   string
	HashKey string
	Owner   string
	Entry   DeltaEntry
	Base    []Item // what the compactor previously folded for this triple
	retire  uint64 // highest entry version covered by this fold
}

// Pending snapshots the fold work at horizon: for every triple with entries
// at or below horizon, the latest such entry plus its folded base. Units
// are ordered deterministically (table, hash key, owner).
func (d *Delta) Pending(horizon uint64) []FoldUnit {
	d.mu.Lock()
	defer d.mu.Unlock()
	var units []FoldUnit
	for tk, c := range d.keys {
		for owner, es := range c.owners {
			latest := latestAt(es, horizon)
			if latest == nil {
				continue
			}
			units = append(units, FoldUnit{
				Table:   tk.Table,
				HashKey: tk.HashKey,
				Owner:   owner,
				Entry:   *latest,
				Base:    c.folded[owner],
				retire:  latest.Version,
			})
		}
	}
	sort.Slice(units, func(i, j int) bool {
		a, b := units[i], units[j]
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.HashKey != b.HashKey {
			return a.HashKey < b.HashKey
		}
		return a.Owner < b.Owner
	})
	return units
}

// Commit retires the folded units after their main-store writes landed:
// entries at or below each unit's covered version are dropped, the folded
// base advances, and the key's stamp becomes at least the folded version.
func (d *Delta) Commit(units []FoldUnit) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, u := range units {
		tk := tableKey{u.Table, u.HashKey}
		c := d.keys[tk]
		if c == nil {
			continue
		}
		es := c.owners[u.Owner]
		var kept []DeltaEntry
		for _, e := range es {
			if e.Version > u.retire {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			delete(c.owners, u.Owner)
		} else {
			c.owners[u.Owner] = kept
		}
		if u.Entry.Tombstone {
			delete(c.folded, u.Owner)
		} else {
			c.folded[u.Owner] = u.Entry.Items
		}
		if u.retire > c.foldedStamp {
			c.foldedStamp = u.retire
		}
	}
}

// Len returns the number of live overlay entries (all versions), for tests
// and stats.
func (d *Delta) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, c := range d.keys {
		for _, es := range c.owners {
			n += len(es)
		}
	}
	return n
}

// Items returns the total item count buffered across live entries.
func (d *Delta) Items() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, c := range d.keys {
		for _, es := range c.owners {
			for _, e := range es {
				n += len(e.Items)
			}
		}
	}
	return n
}
