package kv

import (
	"reflect"
	"testing"
)

func it(hash, rng, owner, val string) Item {
	return Item{HashKey: hash, RangeKey: rng, Attrs: []Attr{{Name: owner, Values: []Value{Value(val)}}}}
}

func TestDeltaCaptureVersions(t *testing.T) {
	d := NewDelta()
	a1 := []Item{it("k", "r1", "a.xml", "v1")}
	a2 := []Item{it("k", "r2", "a.xml", "v2")}
	d.Put("ids", "k", "a.xml", 1, a1)
	d.Put("ids", "k", "a.xml", 3, a2)
	d.Tombstone("ids", "k", "b.xml", 2, []Item{it("k", "r9", "b.xml", "old")})

	// Version 0: nothing visible.
	if ov := d.Capture("ids", []string{"k"}, 0); ov != nil {
		t.Fatalf("capture at 0 = %+v, want nil", ov)
	}
	// Version 1: first replace only.
	ov := d.Capture("ids", []string{"k"}, 1)["k"]
	if !reflect.DeepEqual(ov.Replaces["a.xml"], a1) || ov.Tombstones != nil || ov.Stamp != 1 {
		t.Fatalf("capture at 1 = %+v", ov)
	}
	// Version 2: replace plus tombstone; tombstone must not move the stamp.
	ov = d.Capture("ids", []string{"k"}, 2)["k"]
	if len(ov.Tombstones["b.xml"]) != 1 || ov.Stamp != 1 {
		t.Fatalf("capture at 2 = %+v", ov)
	}
	// Version 3: latest replace wins.
	ov = d.Capture("ids", []string{"k"}, 3)["k"]
	if !reflect.DeepEqual(ov.Replaces["a.xml"], a2) || ov.Stamp != 3 {
		t.Fatalf("capture at 3 = %+v", ov)
	}
	// Unknown key and table are absent.
	if got := d.Capture("ids", []string{"other"}, 3); got != nil {
		t.Fatalf("unknown key captured %+v", got)
	}
	if got := d.Capture("paths", []string{"k"}, 3); got != nil {
		t.Fatalf("unknown table captured %+v", got)
	}
	if d.Len() != 3 || d.Items() != 3 {
		t.Fatalf("Len=%d Items=%d", d.Len(), d.Items())
	}
}

func TestDeltaFoldRetiresAndStamps(t *testing.T) {
	d := NewDelta()
	d.Put("ids", "k", "a.xml", 1, []Item{it("k", "r1", "a.xml", "v1")})
	d.Put("ids", "k", "a.xml", 4, []Item{it("k", "r2", "a.xml", "v2")})
	d.Tombstone("ids", "k2", "b.xml", 2, []Item{it("k2", "r3", "b.xml", "old")})

	units := d.Pending(2)
	if len(units) != 2 {
		t.Fatalf("pending at 2: %d units, want 2", len(units))
	}
	// Deterministic order: (ids,k,a.xml) then (ids,k2,b.xml).
	if units[0].HashKey != "k" || units[1].HashKey != "k2" {
		t.Fatalf("unit order: %+v", units)
	}
	if units[0].Entry.Version != 1 || units[1].Entry.Tombstone != true {
		t.Fatalf("units: %+v", units)
	}
	d.Commit(units)

	// The v4 replace survives; the folded base and stamp advanced.
	ov := d.Capture("ids", []string{"k"}, 4)["k"]
	if ov.Stamp != 4 || len(ov.Replaces["a.xml"]) != 1 || ov.Replaces["a.xml"][0].RangeKey != "r2" {
		t.Fatalf("post-fold capture = %+v", ov)
	}
	// A pinned reader below the surviving entry sees only the fold stamp.
	ov = d.Capture("ids", []string{"k"}, 2)["k"]
	if ov.Stamp != 1 || ov.Replaces != nil {
		t.Fatalf("pinned capture after fold = %+v", ov)
	}
	// The tombstoned key keeps a stamp so stale caches cannot resurrect it.
	ov = d.Capture("ids", []string{"k2"}, 4)["k2"]
	if ov.Stamp != 2 || ov.Replaces != nil || ov.Tombstones != nil {
		t.Fatalf("tombstoned key capture = %+v", ov)
	}

	// Fold the rest: a later fold's base is the previous fold's items.
	units = d.Pending(4)
	if len(units) != 1 || units[0].Entry.Version != 4 {
		t.Fatalf("pending at 4: %+v", units)
	}
	if len(units[0].Base) != 1 || units[0].Base[0].RangeKey != "r1" {
		t.Fatalf("fold base must be the previously folded items: %+v", units[0].Base)
	}
	d.Commit(units)
	if d.Len() != 0 {
		t.Fatalf("entries remain after full fold: %d", d.Len())
	}
	if ov := d.Capture("ids", []string{"k"}, 9)["k"]; ov.Stamp != 4 {
		t.Fatalf("stamp after full fold = %+v", ov)
	}
}
