// Package kv defines the common interface of the simulated cloud key-value
// stores (DynamoDB and SimpleDB) that host the warehouse index.
//
// The data model follows Figure 6 of the paper: a database holds tables;
// a table holds items; an item holds one or more attributes; an attribute
// has a name and one or several values. Items are addressed by a composite
// primary key (hash key + range key). A Get on a hash key returns every
// item sharing that hash key, regardless of range key.
//
// Index code is written against this interface so that the same strategies
// run on DynamoDB (this paper) and SimpleDB (the predecessor system [8]
// used in the Section 8.4 comparison).
package kv

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/resilience"
)

// Value is a single attribute value. DynamoDB accepts arbitrary binary
// values (the feature the paper exploits to store compressed ID sets);
// SimpleDB only accepts UTF-8 text up to 1 KB.
type Value []byte

// Attr is a named attribute carrying one or more values.
type Attr struct {
	Name   string
	Values []Value
}

// Size returns the billing-relevant size of the attribute: name plus all
// value bytes.
func (a Attr) Size() int64 {
	n := int64(len(a.Name))
	for _, v := range a.Values {
		n += int64(len(v))
	}
	return n
}

// Item is one table row.
type Item struct {
	HashKey  string
	RangeKey string
	Attrs    []Attr
}

// Size returns the billing-relevant size of the item: key bytes plus
// attribute bytes.
func (it Item) Size() int64 {
	n := int64(len(it.HashKey) + len(it.RangeKey))
	for _, a := range it.Attrs {
		n += a.Size()
	}
	return n
}

// Attr returns the values of the named attribute, or nil if absent.
func (it Item) Attr(name string) []Value {
	for _, a := range it.Attrs {
		if a.Name == name {
			return a.Values
		}
	}
	return nil
}

// Errors shared by store implementations.
var (
	ErrNoSuchTable   = errors.New("kv: no such table")
	ErrTableExists   = errors.New("kv: table already exists")
	ErrItemTooLarge  = errors.New("kv: item exceeds the maximum item size")
	ErrValueTooLarge = errors.New("kv: attribute value exceeds the maximum value size")
	ErrBatchTooLarge = errors.New("kv: batch exceeds the maximum batch size")
	ErrNotText       = errors.New("kv: store does not accept binary attribute values")
	ErrEmptyKey      = errors.New("kv: empty hash key")
)

// Transient errors. Real DynamoDB surfaces two retriable failure classes:
// provisioned-throughput throttling and 5xx internal errors. Clients are
// expected to back off and retry both (the Retry wrapper does).
var (
	// ErrThrottled is the "provisioned throughput exceeded" failure the
	// store returns under load.
	ErrThrottled = errors.New("kv: provisioned throughput exceeded")
	// ErrInternal is a transient internal service error (HTTP 5xx).
	ErrInternal = errors.New("kv: internal service error (transient)")
)

// IsTransient reports whether the error is a retriable failure class
// (throttling or an internal service error). Partial batch outcomes are not
// transient errors: they carry results and are handled structurally.
func IsTransient(err error) bool {
	return errors.Is(err, ErrThrottled) || errors.Is(err, ErrInternal)
}

// PartialPutError reports a DynamoDB-style partially applied BatchPut
// (BatchWriteItem's UnprocessedItems): every item not listed landed; the
// listed remainder did not. Callers must resubmit only Unprocessed.
type PartialPutError struct {
	Unprocessed []Item
}

func (e *PartialPutError) Error() string {
	return fmt.Sprintf("kv: batch put partially applied (%d unprocessed items)", len(e.Unprocessed))
}

// PartialGetError reports a DynamoDB-style partially served BatchGet
// (UnprocessedKeys): the returned map holds every key not listed; the
// listed remainder was not read. Callers must re-fetch only
// UnprocessedKeys and merge.
type PartialGetError struct {
	UnprocessedKeys []string
}

func (e *PartialGetError) Error() string {
	return fmt.Sprintf("kv: batch get partially served (%d unprocessed keys)", len(e.UnprocessedKeys))
}

// DegradedError reports a partial scatter-mode read: the listed shards were
// shed by their circuit breakers, so the listed hash keys are missing from
// the returned result. Every other shard's data IS present — callers that
// can serve partial answers should do so and mark them Incomplete rather
// than fail the whole query on one bad shard.
type DegradedError struct {
	// Shards lists the shed shard indexes, ascending.
	Shards []int
	// Keys lists the hash keys that were not read, sorted.
	Keys []string
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("kv: degraded read (%d shards shed, %d keys missing)", len(e.Shards), len(e.Keys))
}

// AsDegraded returns the DegradedError in err's chain, or nil.
func AsDegraded(err error) *DegradedError {
	var de *DegradedError
	if errors.As(err, &de) {
		return de
	}
	return nil
}

// sortDegraded normalizes a DegradedError's slices for deterministic
// reporting.
func sortDegraded(e *DegradedError) *DegradedError {
	sort.Ints(e.Shards)
	sort.Strings(e.Keys)
	return e
}

// ContextReader is the optional context-aware read interface of store
// wrappers (database/sql's QueryerContext pattern: the Store interface
// stays context-free so every existing implementation keeps compiling,
// and wrappers that can honor deadlines opt in). The context carries the
// query's resilience.Budget; implementations stop retrying — and stop
// charging modeled backoff — once the context is cancelled or the
// modeled-time budget runs out.
type ContextReader interface {
	GetContext(ctx context.Context, table, hashKey string) ([]Item, time.Duration, error)
	BatchGetContext(ctx context.Context, table string, hashKeys []string) (map[string][]Item, time.Duration, error)
}

// CheckContext reports the first reason the read path must stop: context
// cancellation, or an exhausted modeled-time budget (resilience.ErrDeadline).
// Nil when work may proceed. A nil context always proceeds.
func CheckContext(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if resilience.FromContext(ctx).Exhausted(0) {
		return resilience.ErrDeadline
	}
	return nil
}

// GetContext performs a context-aware Get: stores implementing
// ContextReader get the context threaded through; plain stores get a
// cancellation/deadline check before the (uninterruptible) call.
// A nil context means background: no deadline, no budget.
func GetContext(ctx context.Context, s Store, table, hashKey string) ([]Item, time.Duration, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cr, ok := s.(ContextReader); ok {
		return cr.GetContext(ctx, table, hashKey)
	}
	if err := CheckContext(ctx); err != nil {
		return nil, 0, err
	}
	return s.Get(table, hashKey)
}

// BatchGetContext is the batch counterpart of GetContext.
func BatchGetContext(ctx context.Context, s Store, table string, hashKeys []string) (map[string][]Item, time.Duration, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cr, ok := s.(ContextReader); ok {
		return cr.BatchGetContext(ctx, table, hashKeys)
	}
	if err := CheckContext(ctx); err != nil {
		return nil, 0, err
	}
	return s.BatchGet(table, hashKeys)
}

// Limits describes a store's hard limits and capabilities.
type Limits struct {
	MaxItemBytes   int64 // maximum size of one item (64 KB for DynamoDB)
	MaxValueBytes  int64 // maximum size of one attribute value
	BatchPutItems  int   // maximum items per batch put (25 for DynamoDB)
	BatchGetKeys   int   // maximum keys per batch get (100 for DynamoDB)
	SupportsBinary bool  // whether values may be arbitrary bytes
}

// Store is the key-value service interface used by the index layer.
// Every data operation returns the modeled latency the caller must charge
// to its virtual machine timeline.
type Store interface {
	// Backend names the implementation ("dynamodb" or "simpledb"); it is
	// also the service name under which requests are metered and billed.
	Backend() string

	Limits() Limits

	CreateTable(name string) error
	DeleteTable(name string) error
	Tables() []string

	// Put inserts or fully replaces one item.
	Put(table string, item Item) (time.Duration, error)
	// BatchPut inserts up to Limits().BatchPutItems items in one request.
	BatchPut(table string, items []Item) (time.Duration, error)
	// Get returns all items with the given hash key, in ascending range
	// key order.
	Get(table, hashKey string) ([]Item, time.Duration, error)
	// BatchGet performs up to Limits().BatchGetKeys Get operations in one
	// request.
	BatchGet(table string, hashKeys []string) (map[string][]Item, time.Duration, error)
	// DeleteItem removes one item by its full primary key. Deleting a
	// missing item is not an error (DynamoDB semantics).
	DeleteItem(table, hashKey, rangeKey string) (time.Duration, error)

	// TableBytes returns the user-data bytes stored in a table, and
	// OverheadBytes the store's own auxiliary structure size for it
	// (the ovh(D,I) term of Section 7.1).
	TableBytes(table string) int64
	OverheadBytes(table string) int64
	// TotalBytes returns user bytes plus overhead across all tables.
	TotalBytes() int64
	// ItemCount returns the number of items in a table.
	ItemCount(table string) int64

	// RegisterClient and UnregisterClient bracket a period during which a
	// worker thread issues sustained requests; the store divides its
	// provisioned capacity among registered clients (the saturation
	// effect of Figures 7 and 10).
	RegisterClient()
	UnregisterClient()
}
