package kv

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
	"unicode/utf8"

	"repro/internal/meter"
)

// Perf parameterizes the latency model of a store.
//
// A request of payload p consumes ceil(p / unit bytes) capacity units (at
// least one). A single client thread can drive at most ClientWriteUnits
// (resp. ClientReadUnits) units per second; the store as a whole serves at
// most WriteCapacityUnits (resp. ReadCapacityUnits) units per second, shared
// evenly among registered clients. The modeled latency of a request is
//
//	RTT + units / min(clientRate, capacity/activeClients)
//
// which yields client-bound behaviour at low parallelism and provisioned-
// capacity-bound behaviour (saturation) at high parallelism, the effect the
// paper observes while indexing (Section 8.2) and in Figure 10.
type Perf struct {
	RTT                time.Duration
	WriteUnitBytes     int64
	ReadUnitBytes      int64
	WriteCapacityUnits float64
	ReadCapacityUnits  float64
	ClientWriteUnits   float64
	ClientReadUnits    float64
}

// Config assembles everything needed to build an in-memory store.
type Config struct {
	// Backend is the service name ("dynamodb", "simpledb").
	Backend string
	Limits  Limits
	Perf    Perf
	// PerItemOverhead and PerAttrValueOverhead model the auxiliary bytes
	// the service adds on top of user data (the ovh(D,I) of Section 7.1).
	PerItemOverhead      int64
	PerAttrValueOverhead int64
	// Ledger receives the metering records; required.
	Ledger *meter.Ledger
}

type table struct {
	groups     map[string]map[string]Item // hash key -> range key -> item
	userBytes  int64
	items      int64
	attrValues int64 // attribute name/value pairs, for overhead accounting
}

// MemStore is the in-memory Store implementation shared by the DynamoDB and
// SimpleDB simulators. It is safe for concurrent use.
type MemStore struct {
	cfg Config

	mu      sync.RWMutex
	tables  map[string]*table
	clients int
}

var _ Store = (*MemStore)(nil)

// NewMemStore builds a store from cfg. It panics if cfg.Ledger is nil,
// since an unmetered store would silently break the cost study.
func NewMemStore(cfg Config) *MemStore {
	if cfg.Ledger == nil {
		panic("kv: Config.Ledger is required")
	}
	if cfg.Backend == "" {
		panic("kv: Config.Backend is required")
	}
	return &MemStore{cfg: cfg, tables: make(map[string]*table)}
}

// Backend implements Store.
func (s *MemStore) Backend() string { return s.cfg.Backend }

// Limits implements Store.
func (s *MemStore) Limits() Limits { return s.cfg.Limits }

// CreateTable implements Store.
func (s *MemStore) CreateTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; ok {
		return fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	s.tables[name] = &table{groups: make(map[string]map[string]Item)}
	return nil
}

// DeleteTable implements Store.
func (s *MemStore) DeleteTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	delete(s.tables, name)
	return nil
}

// Tables implements Store.
func (s *MemStore) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterClient implements Store.
func (s *MemStore) RegisterClient() {
	s.mu.Lock()
	s.clients++
	s.mu.Unlock()
}

// UnregisterClient implements Store.
func (s *MemStore) UnregisterClient() {
	s.mu.Lock()
	if s.clients > 0 {
		s.clients--
	}
	s.mu.Unlock()
}

func (s *MemStore) validate(item Item) error {
	if item.HashKey == "" {
		return ErrEmptyKey
	}
	lim := s.cfg.Limits
	if lim.MaxItemBytes > 0 && item.Size() > lim.MaxItemBytes {
		return fmt.Errorf("%w: %d bytes > %d", ErrItemTooLarge, item.Size(), lim.MaxItemBytes)
	}
	for _, a := range item.Attrs {
		for _, v := range a.Values {
			if lim.MaxValueBytes > 0 && int64(len(v)) > lim.MaxValueBytes {
				return fmt.Errorf("%w: attribute %q value of %d bytes > %d",
					ErrValueTooLarge, a.Name, len(v), lim.MaxValueBytes)
			}
			if !lim.SupportsBinary && !utf8.Valid(v) {
				return fmt.Errorf("%w: attribute %q", ErrNotText, a.Name)
			}
		}
	}
	return nil
}

func copyItem(item Item) Item {
	c := Item{HashKey: item.HashKey, RangeKey: item.RangeKey, Attrs: make([]Attr, len(item.Attrs))}
	for i, a := range item.Attrs {
		ca := Attr{Name: a.Name, Values: make([]Value, len(a.Values))}
		for j, v := range a.Values {
			ca.Values[j] = append(Value(nil), v...)
		}
		c.Attrs[i] = ca
	}
	return c
}

func attrValuePairs(item Item) int64 {
	var n int64
	for _, a := range item.Attrs {
		n += int64(len(a.Values))
	}
	return n
}

// putLocked stores one validated item, maintaining size accounting.
func (t *table) putLocked(item Item) {
	g, ok := t.groups[item.HashKey]
	if !ok {
		g = make(map[string]Item)
		t.groups[item.HashKey] = g
	}
	if old, ok := g[item.RangeKey]; ok {
		t.userBytes -= old.Size()
		t.items--
		t.attrValues -= attrValuePairs(old)
	}
	c := copyItem(item)
	g[item.RangeKey] = c
	t.userBytes += c.Size()
	t.items++
	t.attrValues += attrValuePairs(c)
}

// writeLatency computes the modeled duration of a write of the given payload.
// Must be called with s.mu held (read or write).
func (s *MemStore) writeLatency(bytes int64) time.Duration {
	return s.latency(bytes, s.cfg.Perf.WriteUnitBytes, s.cfg.Perf.ClientWriteUnits, s.cfg.Perf.WriteCapacityUnits)
}

func (s *MemStore) readLatency(bytes int64) time.Duration {
	return s.latency(bytes, s.cfg.Perf.ReadUnitBytes, s.cfg.Perf.ClientReadUnits, s.cfg.Perf.ReadCapacityUnits)
}

func (s *MemStore) latency(bytes, unitBytes int64, clientRate, capacity float64) time.Duration {
	if unitBytes <= 0 {
		unitBytes = 1024
	}
	units := float64((bytes + unitBytes - 1) / unitBytes)
	if units < 1 {
		units = 1
	}
	rate := clientRate
	if rate <= 0 {
		rate = math.Inf(1)
	}
	if capacity > 0 && s.clients > 0 {
		if share := capacity / float64(s.clients); share < rate {
			rate = share
		}
	}
	d := s.cfg.Perf.RTT
	if !math.IsInf(rate, 1) {
		d += time.Duration(units / rate * float64(time.Second))
	}
	return d
}

// Put implements Store.
func (s *MemStore) Put(tbl string, item Item) (time.Duration, error) {
	return s.putBatch(tbl, []Item{item}, false)
}

// BatchPut implements Store.
func (s *MemStore) BatchPut(tbl string, items []Item) (time.Duration, error) {
	if lim := s.cfg.Limits.BatchPutItems; lim > 0 && len(items) > lim {
		return 0, fmt.Errorf("%w: %d items > %d", ErrBatchTooLarge, len(items), lim)
	}
	return s.putBatch(tbl, items, true)
}

func (s *MemStore) putBatch(tbl string, items []Item, batch bool) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[tbl]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchTable, tbl)
	}
	var bytes int64
	for _, it := range items {
		if err := s.validate(it); err != nil {
			return 0, err
		}
		bytes += it.Size()
	}
	for _, it := range items {
		t.putLocked(it)
	}
	d := s.writeLatency(bytes)
	s.cfg.Ledger.Record(s.cfg.Backend, "put", 1, int64(len(items)), bytes)
	_ = batch
	return d, nil
}

// Get implements Store.
func (s *MemStore) Get(tbl, hashKey string) ([]Item, time.Duration, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	items, bytes, err := s.getLocked(tbl, hashKey)
	if err != nil {
		return nil, 0, err
	}
	d := s.readLatency(bytes)
	s.cfg.Ledger.Record(s.cfg.Backend, "get", 1, 1, bytes)
	return items, d, nil
}

// BatchGet implements Store.
func (s *MemStore) BatchGet(tbl string, hashKeys []string) (map[string][]Item, time.Duration, error) {
	if lim := s.cfg.Limits.BatchGetKeys; lim > 0 && len(hashKeys) > lim {
		return nil, 0, fmt.Errorf("%w: %d keys > %d", ErrBatchTooLarge, len(hashKeys), lim)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string][]Item, len(hashKeys))
	var bytes int64
	for _, k := range hashKeys {
		items, b, err := s.getLocked(tbl, k)
		if err != nil {
			return nil, 0, err
		}
		out[k] = items
		bytes += b
	}
	d := s.readLatency(bytes)
	s.cfg.Ledger.Record(s.cfg.Backend, "get", 1, int64(len(hashKeys)), bytes)
	return out, d, nil
}

// BatchPutMulti implements MultiStore: every group lands in one request,
// the way DynamoDB's BatchWriteItem spans tables. The combined payload is
// metered and latency-modeled exactly like a single-table batch of the same
// items, so a sharding layer splitting one logical batch across partitions
// costs precisely what the unsharded batch would. The single-batch item
// limit applies to the total across groups.
func (s *MemStore) BatchPutMulti(groups []TableItems) (time.Duration, error) {
	var total int
	for _, g := range groups {
		total += len(g.Items)
	}
	if lim := s.cfg.Limits.BatchPutItems; lim > 0 && total > lim {
		return 0, fmt.Errorf("%w: %d items > %d", ErrBatchTooLarge, total, lim)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var bytes int64
	for _, g := range groups {
		if _, ok := s.tables[g.Table]; !ok {
			return 0, fmt.Errorf("%w: %q", ErrNoSuchTable, g.Table)
		}
		for _, it := range g.Items {
			if err := s.validate(it); err != nil {
				return 0, err
			}
			bytes += it.Size()
		}
	}
	for _, g := range groups {
		t := s.tables[g.Table]
		for _, it := range g.Items {
			t.putLocked(it)
		}
	}
	d := s.writeLatency(bytes)
	s.cfg.Ledger.Record(s.cfg.Backend, "put", 1, int64(total), bytes)
	return d, nil
}

// BatchGetMulti implements MultiStore, the read-side counterpart of
// BatchPutMulti (DynamoDB's BatchGetItem spans tables too). Result i holds
// groups[i]'s items; the whole request is metered once with the combined
// key count and payload. The single-batch key limit applies to the total.
func (s *MemStore) BatchGetMulti(groups []TableKeys) ([]map[string][]Item, time.Duration, error) {
	var total int
	for _, g := range groups {
		total += len(g.Keys)
	}
	if lim := s.cfg.Limits.BatchGetKeys; lim > 0 && total > lim {
		return nil, 0, fmt.Errorf("%w: %d keys > %d", ErrBatchTooLarge, total, lim)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	results := make([]map[string][]Item, len(groups))
	var bytes int64
	for i, g := range groups {
		out := make(map[string][]Item, len(g.Keys))
		for _, k := range g.Keys {
			items, b, err := s.getLocked(g.Table, k)
			if err != nil {
				return nil, 0, err
			}
			out[k] = items
			bytes += b
		}
		results[i] = out
	}
	d := s.readLatency(bytes)
	s.cfg.Ledger.Record(s.cfg.Backend, "get", 1, int64(total), bytes)
	return results, d, nil
}

// DeleteItem implements Store. The write is metered like a put of the
// item's key size (DynamoDB bills deletes as writes).
func (s *MemStore) DeleteItem(tbl, hashKey, rangeKey string) (time.Duration, error) {
	if hashKey == "" {
		return 0, ErrEmptyKey
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[tbl]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchTable, tbl)
	}
	keyBytes := int64(len(hashKey) + len(rangeKey))
	if g, ok := t.groups[hashKey]; ok {
		if old, ok := g[rangeKey]; ok {
			t.userBytes -= old.Size()
			t.items--
			t.attrValues -= attrValuePairs(old)
			delete(g, rangeKey)
			if len(g) == 0 {
				delete(t.groups, hashKey)
			}
		}
	}
	s.cfg.Ledger.Record(s.cfg.Backend, "put", 1, 1, keyBytes)
	return s.writeLatency(keyBytes), nil
}

func (s *MemStore) getLocked(tbl, hashKey string) ([]Item, int64, error) {
	if hashKey == "" {
		return nil, 0, ErrEmptyKey
	}
	t, ok := s.tables[tbl]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrNoSuchTable, tbl)
	}
	g := t.groups[hashKey]
	if len(g) == 0 {
		return nil, 0, nil
	}
	items := make([]Item, 0, len(g))
	var bytes int64
	for _, it := range g {
		items = append(items, copyItem(it))
		bytes += it.Size()
	}
	sort.Slice(items, func(i, j int) bool { return items[i].RangeKey < items[j].RangeKey })
	return items, bytes, nil
}

// TableBytes implements Store.
func (s *MemStore) TableBytes(tbl string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t, ok := s.tables[tbl]; ok {
		return t.userBytes
	}
	return 0
}

// OverheadBytes implements Store.
func (s *MemStore) OverheadBytes(tbl string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t, ok := s.tables[tbl]; ok {
		return t.items*s.cfg.PerItemOverhead + t.attrValues*s.cfg.PerAttrValueOverhead
	}
	return 0
}

// TotalBytes implements Store.
func (s *MemStore) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, t := range s.tables {
		n += t.userBytes + t.items*s.cfg.PerItemOverhead + t.attrValues*s.cfg.PerAttrValueOverhead
	}
	return n
}

// DumpTable returns every item of a table in deterministic order (hash
// key, then range key). It is a verification/debugging helper outside the
// billed Store API; differential tests use it to compare whole-store
// contents across runs.
func (s *MemStore) DumpTable(tbl string) []Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[tbl]
	if !ok {
		return nil
	}
	hashKeys := make([]string, 0, len(t.groups))
	for hk := range t.groups {
		hashKeys = append(hashKeys, hk)
	}
	sort.Strings(hashKeys)
	var out []Item
	for _, hk := range hashKeys {
		g := t.groups[hk]
		rangeKeys := make([]string, 0, len(g))
		for rk := range g {
			rangeKeys = append(rangeKeys, rk)
		}
		sort.Strings(rangeKeys)
		for _, rk := range rangeKeys {
			out = append(out, copyItem(g[rk]))
		}
	}
	return out
}

// ItemCount implements Store.
func (s *MemStore) ItemCount(tbl string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t, ok := s.tables[tbl]; ok {
		return t.items
	}
	return 0
}
