package kv_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/kv"
	"repro/internal/cloud/simpledb"
	"repro/internal/meter"
)

func newDynamo(t *testing.T) kv.Store {
	t.Helper()
	s := dynamodb.New(meter.NewLedger())
	if err := s.CreateTable("idx"); err != nil {
		t.Fatal(err)
	}
	return s
}

func item(hash, rng string, attrs ...kv.Attr) kv.Item {
	return kv.Item{HashKey: hash, RangeKey: rng, Attrs: attrs}
}

func attr(name string, values ...string) kv.Attr {
	a := kv.Attr{Name: name}
	for _, v := range values {
		a.Values = append(a.Values, kv.Value(v))
	}
	return a
}

func TestCreateDeleteTable(t *testing.T) {
	s := dynamodb.New(meter.NewLedger())
	if err := s.CreateTable("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("a"); !errors.Is(err, kv.ErrTableExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if err := s.CreateTable("b"); err != nil {
		t.Fatal(err)
	}
	got := s.Tables()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Tables() = %v", got)
	}
	if err := s.DeleteTable("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteTable("a"); !errors.Is(err, kv.ErrNoSuchTable) {
		t.Errorf("double delete: %v", err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newDynamo(t)
	if _, err := s.Put("idx", item("ename", "u1", attr("doc1.xml", "/a/b"))); err != nil {
		t.Fatal(err)
	}
	items, _, err := s.Get("idx", "ename")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 {
		t.Fatalf("got %d items", len(items))
	}
	vs := items[0].Attr("doc1.xml")
	if len(vs) != 1 || string(vs[0]) != "/a/b" {
		t.Errorf("attr values = %v", vs)
	}
	if items[0].Attr("missing") != nil {
		t.Error("missing attribute must return nil")
	}
}

func TestGetReturnsAllRangeKeysSorted(t *testing.T) {
	s := newDynamo(t)
	for _, r := range []string{"u3", "u1", "u2"} {
		if _, err := s.Put("idx", item("k", r, attr("a", r))); err != nil {
			t.Fatal(err)
		}
	}
	items, _, err := s.Get("idx", "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("got %d items, want 3", len(items))
	}
	for i, want := range []string{"u1", "u2", "u3"} {
		if items[i].RangeKey != want {
			t.Errorf("items[%d].RangeKey = %q, want %q", i, items[i].RangeKey, want)
		}
	}
}

func TestPutReplacesSamePrimaryKey(t *testing.T) {
	s := newDynamo(t)
	s.Put("idx", item("k", "u1", attr("a", "old"), attr("b", "x")))
	s.Put("idx", item("k", "u1", attr("a", "new")))
	items, _, _ := s.Get("idx", "k")
	if len(items) != 1 {
		t.Fatalf("got %d items, want 1", len(items))
	}
	if items[0].Attr("b") != nil {
		t.Error("replacement must drop attributes absent from the new item")
	}
	if string(items[0].Attr("a")[0]) != "new" {
		t.Error("replacement did not overwrite attribute")
	}
	if got := s.ItemCount("idx"); got != 1 {
		t.Errorf("ItemCount = %d, want 1", got)
	}
}

func TestGetMissingKeyAndTable(t *testing.T) {
	s := newDynamo(t)
	items, _, err := s.Get("idx", "nothing")
	if err != nil || len(items) != 0 {
		t.Errorf("missing key: items=%v err=%v", items, err)
	}
	if _, _, err := s.Get("other", "k"); !errors.Is(err, kv.ErrNoSuchTable) {
		t.Errorf("missing table: %v", err)
	}
	if _, _, err := s.Get("idx", ""); !errors.Is(err, kv.ErrEmptyKey) {
		t.Errorf("empty key: %v", err)
	}
	if _, err := s.Put("idx", item("", "u")); !errors.Is(err, kv.ErrEmptyKey) {
		t.Errorf("empty put key: %v", err)
	}
}

func TestBatchPutAndLimit(t *testing.T) {
	s := newDynamo(t)
	var items []kv.Item
	for i := 0; i < 25; i++ {
		items = append(items, item("k", fmt.Sprintf("u%02d", i), attr("a", "v")))
	}
	if _, err := s.BatchPut("idx", items); err != nil {
		t.Fatal(err)
	}
	if got := s.ItemCount("idx"); got != 25 {
		t.Errorf("ItemCount = %d, want 25", got)
	}
	items = append(items, item("k", "u25", attr("a", "v")))
	if _, err := s.BatchPut("idx", items); !errors.Is(err, kv.ErrBatchTooLarge) {
		t.Errorf("oversized batch: %v", err)
	}
}

func TestBatchGetAndLimit(t *testing.T) {
	s := newDynamo(t)
	s.Put("idx", item("k1", "u", attr("a", "1")))
	s.Put("idx", item("k2", "u", attr("a", "2")))
	out, _, err := s.BatchGet("idx", []string{"k1", "k2", "k3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out["k1"]) != 1 || len(out["k2"]) != 1 || len(out["k3"]) != 0 {
		t.Errorf("BatchGet = %v", out)
	}
	keys := make([]string, 101)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	if _, _, err := s.BatchGet("idx", keys); !errors.Is(err, kv.ErrBatchTooLarge) {
		t.Errorf("oversized batch get: %v", err)
	}
}

func TestDynamoItemSizeLimit(t *testing.T) {
	s := newDynamo(t)
	big := make([]byte, dynamodb.MaxItemBytes+1)
	_, err := s.Put("idx", kv.Item{HashKey: "k", RangeKey: "u",
		Attrs: []kv.Attr{{Name: "a", Values: []kv.Value{big}}}})
	if !errors.Is(err, kv.ErrItemTooLarge) {
		t.Errorf("oversized item: %v", err)
	}
}

func TestDynamoAcceptsBinaryValues(t *testing.T) {
	s := newDynamo(t)
	bin := kv.Value{0xff, 0x00, 0x80, 0x01}
	if _, err := s.Put("idx", kv.Item{HashKey: "k", RangeKey: "u",
		Attrs: []kv.Attr{{Name: "a", Values: []kv.Value{bin}}}}); err != nil {
		t.Fatalf("binary value rejected: %v", err)
	}
	items, _, _ := s.Get("idx", "k")
	if string(items[0].Attr("a")[0]) != string(bin) {
		t.Error("binary value corrupted")
	}
}

func TestSimpleDBRejectsBinaryAndLargeValues(t *testing.T) {
	s := simpledb.New(meter.NewLedger())
	s.CreateTable("idx")
	bin := kv.Value{0xff, 0xfe}
	_, err := s.Put("idx", kv.Item{HashKey: "k", RangeKey: "u",
		Attrs: []kv.Attr{{Name: "a", Values: []kv.Value{bin}}}})
	if !errors.Is(err, kv.ErrNotText) {
		t.Errorf("binary value: %v", err)
	}
	big := kv.Value(make([]byte, simpledb.MaxValueBytes+1))
	for i := range big {
		big[i] = 'a'
	}
	_, err = s.Put("idx", kv.Item{HashKey: "k", RangeKey: "u",
		Attrs: []kv.Attr{{Name: "a", Values: []kv.Value{big}}}})
	if !errors.Is(err, kv.ErrValueTooLarge) {
		t.Errorf("oversized value: %v", err)
	}
}

func TestGetResultIsACopy(t *testing.T) {
	s := newDynamo(t)
	s.Put("idx", item("k", "u", attr("a", "orig")))
	items, _, _ := s.Get("idx", "k")
	items[0].Attrs[0].Values[0][0] = 'X'
	again, _, _ := s.Get("idx", "k")
	if string(again[0].Attr("a")[0]) != "orig" {
		t.Error("store data aliased with Get result")
	}
}

func TestSizeAccounting(t *testing.T) {
	s := newDynamo(t)
	it := item("key1", "uuid-1", attr("doc.xml", "/a/b", "/a/c"))
	s.Put("idx", it)
	want := it.Size()
	if got := s.TableBytes("idx"); got != want {
		t.Errorf("TableBytes = %d, want %d", got, want)
	}
	if got := s.OverheadBytes("idx"); got != 100 {
		t.Errorf("OverheadBytes = %d, want 100", got)
	}
	if got := s.TotalBytes(); got != want+100 {
		t.Errorf("TotalBytes = %d, want %d", got, want+100)
	}
	// Replacement must not leak accounted bytes.
	s.Put("idx", item("key1", "uuid-1", attr("doc.xml", "/a")))
	if got := s.TableBytes("idx"); got >= want {
		t.Errorf("TableBytes after shrink = %d, want < %d", got, want)
	}
}

func TestSimpleDBOverheadCountsAttrPairs(t *testing.T) {
	s := simpledb.New(meter.NewLedger())
	s.CreateTable("idx")
	s.Put("idx", item("k", "u", attr("a", "1", "2"), attr("b", "3")))
	// 45 per item + 45 per attribute-value pair (3 pairs).
	if got := s.OverheadBytes("idx"); got != 45+3*45 {
		t.Errorf("OverheadBytes = %d, want %d", got, 45+3*45)
	}
}

func TestMetering(t *testing.T) {
	led := meter.NewLedger()
	s := dynamodb.New(led)
	s.CreateTable("idx")
	var items []kv.Item
	for i := 0; i < 10; i++ {
		items = append(items, item("k", fmt.Sprintf("u%d", i), attr("a", "v")))
	}
	s.BatchPut("idx", items)
	s.Get("idx", "k")
	s.BatchGet("idx", []string{"k", "k2"})
	u := led.Snapshot()
	if got := u.Get("dynamodb", "put"); got.Calls != 1 || got.Units != 10 {
		t.Errorf("put counts = %+v", got)
	}
	if got := u.Get("dynamodb", "get"); got.Calls != 2 || got.Units != 3 {
		t.Errorf("get counts = %+v", got)
	}
}

func TestLatencySaturation(t *testing.T) {
	led := meter.NewLedger()
	s := dynamodb.New(led)
	s.CreateTable("idx")
	payload := item("k", "u", attr("a", string(make([]byte, 10<<10))))

	d1, err := s.Put("idx", payload)
	if err != nil {
		t.Fatal(err)
	}
	// Register enough clients that the per-client capacity share drops
	// below the client's own rate: latency must increase.
	for i := 0; i < 64; i++ {
		s.RegisterClient()
	}
	d2, _ := s.Put("idx", payload)
	if d2 <= d1 {
		t.Errorf("saturated latency %v not above unsaturated %v", d2, d1)
	}
	for i := 0; i < 64; i++ {
		s.UnregisterClient()
	}
	d3, _ := s.Put("idx", payload)
	if d3 != d1 {
		t.Errorf("latency after unregister = %v, want %v", d3, d1)
	}
}

func TestLatencyMonotoneInSize(t *testing.T) {
	s := newDynamo(t)
	small, _ := s.Put("idx", item("k", "u", attr("a", "x")))
	large, _ := s.Put("idx", item("k", "u2", attr("a", string(make([]byte, 32<<10)))))
	if large <= small {
		t.Errorf("latency not monotone: small=%v large=%v", small, large)
	}
	if small < 4*time.Millisecond {
		t.Errorf("latency below RTT: %v", small)
	}
}

func TestSimpleDBSlowerThanDynamo(t *testing.T) {
	led := meter.NewLedger()
	d := dynamodb.New(led)
	sdb := simpledb.New(led)
	d.CreateTable("t")
	sdb.CreateTable("t")
	it := item("k", "u", attr("a", string(make([]byte, 900))))
	dd, _ := d.Put("t", it)
	ds, _ := sdb.Put("t", it)
	if ds <= dd {
		t.Errorf("simpledb put %v not slower than dynamodb %v", ds, dd)
	}
}

func TestConcurrentPuts(t *testing.T) {
	s := newDynamo(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Put("idx", item("k", fmt.Sprintf("w%d-%d", w, i), attr("a", "v")))
			}
		}(w)
	}
	wg.Wait()
	if got := s.ItemCount("idx"); got != 800 {
		t.Errorf("ItemCount = %d, want 800", got)
	}
	items, _, _ := s.Get("idx", "k")
	if len(items) != 800 {
		t.Errorf("Get returned %d items, want 800", len(items))
	}
}

// Property: after any sequence of puts with distinct range keys, the item
// count and byte accounting equal the sums over the puts.
func TestAccountingProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		s := newDynamo(&testing.T{})
		var wantBytes int64
		for i, sz := range sizes {
			it := item("k", fmt.Sprintf("u%04d", i), attr("a", string(make([]byte, int(sz)))))
			if _, err := s.Put("idx", it); err != nil {
				return false
			}
			wantBytes += it.Size()
		}
		return s.ItemCount("idx") == int64(len(sizes)) && s.TableBytes("idx") == wantBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
