package kv

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrThrottled is the transient "provisioned throughput exceeded" failure
// real DynamoDB returns under load; clients are expected to back off and
// retry.
var ErrThrottled = errors.New("kv: provisioned throughput exceeded")

// Retry wraps a store so that throttled data operations are retried with
// exponential backoff. The backoff is charged as modeled latency on the
// returned duration, so retries cost virtual-machine time exactly like
// they would on EC2. Non-transient errors pass through unchanged.
type Retry struct {
	Store
	// MaxAttempts bounds the tries per operation (default 5).
	MaxAttempts int
	// BaseBackoff is the first retry's wait, doubled per attempt
	// (default 50ms).
	BaseBackoff time.Duration
}

// NewRetry wraps a store with default policy.
func NewRetry(s Store) *Retry {
	return &Retry{Store: s, MaxAttempts: 5, BaseBackoff: 50 * time.Millisecond}
}

func (r *Retry) attempts() int {
	if r.MaxAttempts > 0 {
		return r.MaxAttempts
	}
	return 5
}

func (r *Retry) backoff(attempt int) time.Duration {
	base := r.BaseBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	return base << attempt
}

// retry runs op until it succeeds, fails hard, or exhausts attempts,
// accumulating modeled latency across attempts.
func (r *Retry) retry(op func() (time.Duration, error)) (time.Duration, error) {
	var total time.Duration
	for attempt := 0; ; attempt++ {
		d, err := op()
		total += d
		if err == nil {
			return total, nil
		}
		if !errors.Is(err, ErrThrottled) || attempt+1 >= r.attempts() {
			return total, err
		}
		total += r.backoff(attempt)
	}
}

// Put implements Store with retries.
func (r *Retry) Put(table string, item Item) (time.Duration, error) {
	return r.retry(func() (time.Duration, error) { return r.Store.Put(table, item) })
}

// BatchPut implements Store with retries.
func (r *Retry) BatchPut(table string, items []Item) (time.Duration, error) {
	return r.retry(func() (time.Duration, error) { return r.Store.BatchPut(table, items) })
}

// DeleteItem implements Store with retries.
func (r *Retry) DeleteItem(table, hashKey, rangeKey string) (time.Duration, error) {
	return r.retry(func() (time.Duration, error) { return r.Store.DeleteItem(table, hashKey, rangeKey) })
}

// Get implements Store with retries.
func (r *Retry) Get(table, hashKey string) ([]Item, time.Duration, error) {
	var items []Item
	d, err := r.retry(func() (time.Duration, error) {
		var d time.Duration
		var err error
		items, d, err = r.Store.Get(table, hashKey)
		return d, err
	})
	return items, d, err
}

// BatchGet implements Store with retries.
func (r *Retry) BatchGet(table string, hashKeys []string) (map[string][]Item, time.Duration, error) {
	var out map[string][]Item
	d, err := r.retry(func() (time.Duration, error) {
		var d time.Duration
		var err error
		out, d, err = r.Store.BatchGet(table, hashKeys)
		return d, err
	})
	return out, d, err
}

// FaultInjector wraps a store and makes every n-th data operation fail
// with ErrThrottled before reaching the underlying store. It exists to
// test retry behaviour and loader resilience.
type FaultInjector struct {
	Store
	// FailEvery makes operation number k fail whenever k % FailEvery == 0
	// (1-based). Zero disables injection.
	FailEvery int

	mu    sync.Mutex
	count int
}

func (f *FaultInjector) trip() error {
	if f.FailEvery <= 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.count++
	if f.count%f.FailEvery == 0 {
		return fmt.Errorf("%w (injected, op %d)", ErrThrottled, f.count)
	}
	return nil
}

// Injected reports how many operations were observed.
func (f *FaultInjector) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.FailEvery <= 0 {
		return 0
	}
	return f.count / f.FailEvery
}

// Put implements Store with injection.
func (f *FaultInjector) Put(table string, item Item) (time.Duration, error) {
	if err := f.trip(); err != nil {
		return 0, err
	}
	return f.Store.Put(table, item)
}

// BatchPut implements Store with injection.
func (f *FaultInjector) BatchPut(table string, items []Item) (time.Duration, error) {
	if err := f.trip(); err != nil {
		return 0, err
	}
	return f.Store.BatchPut(table, items)
}

// DeleteItem implements Store with injection.
func (f *FaultInjector) DeleteItem(table, hashKey, rangeKey string) (time.Duration, error) {
	if err := f.trip(); err != nil {
		return 0, err
	}
	return f.Store.DeleteItem(table, hashKey, rangeKey)
}

// Get implements Store with injection.
func (f *FaultInjector) Get(table, hashKey string) ([]Item, time.Duration, error) {
	if err := f.trip(); err != nil {
		return nil, 0, err
	}
	return f.Store.Get(table, hashKey)
}

// BatchGet implements Store with injection.
func (f *FaultInjector) BatchGet(table string, hashKeys []string) (map[string][]Item, time.Duration, error) {
	if err := f.trip(); err != nil {
		return nil, 0, err
	}
	return f.Store.BatchGet(table, hashKeys)
}
