package kv

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
)

// Retry wraps a store so that transient data-operation failures (throttling
// and internal errors) are retried with capped, jittered exponential
// backoff, and DynamoDB-style partial batch outcomes (PartialPutError /
// PartialGetError) are completed by resubmitting only the unprocessed
// remainder. The backoff is charged as modeled latency on the returned
// duration, so retries cost virtual-machine time exactly like they would on
// EC2. Non-transient errors pass through unchanged.
//
// Backoff uses seeded full jitter: the wait before attempt k is uniform in
// (0, min(BaseBackoff<<k, MaxBackoff)], drawn from a PRNG seeded with Seed,
// so concurrent clients sharing a saturated store do not retry in lockstep
// while modeled times stay deterministic for a given seed and call order.
type Retry struct {
	Store
	// MaxAttempts bounds the tries per operation (default 5). A partial
	// batch outcome that made progress (some items landed / some keys were
	// served) refreshes the budget: only consecutive zero-progress attempts
	// count against it, and batches shrink monotonically, so termination is
	// still guaranteed.
	MaxAttempts int
	// BaseBackoff is the cap of the first retry's wait, doubled per attempt
	// (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps one wait (default 5s). The doubling stops at the cap,
	// so large MaxAttempts cannot overflow the shift.
	MaxBackoff time.Duration
	// Seed drives the jitter PRNG; retries of distinct Retry values with
	// the same seed draw identical jitter sequences.
	Seed int64
	// Sink, when non-nil, receives every counter increment as a named
	// metric (the kv.Metric* constants). The warehouse points it at its obs
	// Registry. Set before the wrapper is shared; reads are unsynchronized.
	Sink CounterSink

	rngOnce sync.Once
	rngMu   sync.Mutex
	rng     *rand.Rand

	stats retryCounters
}

// CounterSink receives named counter increments (the obs Registry satisfies
// it; defining it here keeps kv free of an obs dependency).
type CounterSink interface {
	Add(name string, delta int64)
}

// Counter names streamed to a Retry's Sink, one per RetryStats field.
const (
	MetricRetries          = "kv.retry.retries"
	MetricRetryThrottles   = "kv.retry.throttles"
	MetricRetryInternal    = "kv.retry.internal"
	MetricPartialBatches   = "kv.retry.partial_batches"
	MetricItemsResubmitted = "kv.retry.items_resubmitted"
	MetricKeysRefetched    = "kv.retry.keys_refetched"
	MetricGaveUp           = "kv.retry.gave_up"
)

// bump increments one counter and mirrors it into the sink.
func (r *Retry) bump(c *atomic.Int64, metric string, delta int64) {
	c.Add(delta)
	if r.Sink != nil {
		r.Sink.Add(metric, delta)
	}
}

// RetryStats is a snapshot of a Retry wrapper's degradation counters.
type RetryStats struct {
	// Retries counts attempts beyond the first across all operations.
	Retries int64
	// Throttles and Internal split the transient failures observed.
	Throttles int64
	Internal  int64
	// PartialBatches counts partial batch outcomes absorbed;
	// ItemsResubmitted and KeysRefetched the remainder sizes resubmitted.
	PartialBatches   int64
	ItemsResubmitted int64
	KeysRefetched    int64
	// GaveUp counts operations that exhausted the retry budget.
	GaveUp int64
}

type retryCounters struct {
	retries, throttles, internal           atomic.Int64
	partialBatches, itemsResub, keysRefetc atomic.Int64
	gaveUp                                 atomic.Int64
}

// RetryStats returns a snapshot of the wrapper's cumulative counters.
func (r *Retry) RetryStats() RetryStats {
	return RetryStats{
		Retries:          r.stats.retries.Load(),
		Throttles:        r.stats.throttles.Load(),
		Internal:         r.stats.internal.Load(),
		PartialBatches:   r.stats.partialBatches.Load(),
		ItemsResubmitted: r.stats.itemsResub.Load(),
		KeysRefetched:    r.stats.keysRefetc.Load(),
		GaveUp:           r.stats.gaveUp.Load(),
	}
}

// Unwrap exposes the wrapped store so capability probes (AsDumper,
// AsShardRouter) can walk the stack. Retry deliberately does NOT forward
// the MultiStore interface: multi-table requests through a retrying,
// fault-injected stack would need cross-table partial-batch bookkeeping,
// so a sharding layer above a Retry falls back to per-shard batches
// instead.
func (r *Retry) Unwrap() Store { return r.Store }

// RetryStatsSource is implemented by stores that can report retry
// degradation counters (the Retry wrapper); look-up code uses it to
// attribute store retries to LookupStats.
type RetryStatsSource interface {
	RetryStats() RetryStats
}

// NewRetry wraps a store with the default policy.
func NewRetry(s Store) *Retry {
	return &Retry{Store: s, MaxAttempts: 5, BaseBackoff: 50 * time.Millisecond, MaxBackoff: 5 * time.Second, Seed: 1}
}

func (r *Retry) attempts() int {
	if r.MaxAttempts > 0 {
		return r.MaxAttempts
	}
	return 5
}

// backoff returns the jittered wait before retry number attempt (0-based).
func (r *Retry) backoff(attempt int) time.Duration {
	base := r.BaseBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := r.MaxBackoff
	if max <= 0 {
		max = 5 * time.Second
	}
	if base > max {
		base = max
	}
	// Double up to the cap; stopping at the cap keeps the shift from
	// overflowing for large attempt counts.
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d <<= 1
	}
	if d > max {
		d = max
	}
	r.rngOnce.Do(func() { r.rng = rand.New(rand.NewSource(r.Seed)) })
	r.rngMu.Lock()
	j := r.rng.Int63n(int64(d))
	r.rngMu.Unlock()
	return time.Duration(j) + 1 // full jitter in (0, d]
}

// classify tallies a transient failure.
func (r *Retry) classify(err error) {
	switch {
	case errors.Is(err, ErrThrottled):
		r.bump(&r.stats.throttles, MetricRetryThrottles, 1)
	case errors.Is(err, ErrInternal):
		r.bump(&r.stats.internal, MetricRetryInternal, 1)
	}
}

// retry runs op until it succeeds, fails hard, or exhausts attempts,
// accumulating modeled latency across attempts.
func (r *Retry) retry(op func() (time.Duration, error)) (time.Duration, error) {
	return r.retryCtx(context.Background(), op)
}

// retryCtx is the context-aware retry loop. Beyond the plain loop it
// honors, per the query's resilience.Budget (carried in ctx):
//
//   - cancellation: a cancelled context returns immediately — in
//     particular, a failure observed after cancellation does NOT charge or
//     complete the pending backoff wait;
//   - the modeled deadline: when the next jittered backoff would cross the
//     budget's deadline, only the remaining headroom is charged and the
//     loop stops with resilience.ErrDeadline instead of sleeping through
//     the full wait and re-attempting;
//   - the shared retry-token pool: each retry consumes one token from the
//     per-query pool (replacing unbounded per-call attempt budgets); an
//     empty pool stops with resilience.ErrRetryBudget.
//
// With a background context and no budget the loop is step-for-step
// identical to the historical behaviour, including its jitter draws.
func (r *Retry) retryCtx(ctx context.Context, op func() (time.Duration, error)) (time.Duration, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	budget := resilience.FromContext(ctx)
	var total time.Duration
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		if budget.Exhausted(total) {
			return total, resilience.ErrDeadline
		}
		d, err := op()
		total += d
		if err == nil {
			return total, nil
		}
		if !IsTransient(err) {
			return total, err
		}
		r.classify(err)
		if attempt+1 >= r.attempts() {
			r.bump(&r.stats.gaveUp, MetricGaveUp, 1)
			return total, err
		}
		// Mid-backoff cancellation: return now, charging none of the wait.
		if err := ctx.Err(); err != nil {
			return total, err
		}
		if !budget.TakeRetry() {
			r.bump(&r.stats.gaveUp, MetricGaveUp, 1)
			return total, fmt.Errorf("%w (last transient error: %v)", resilience.ErrRetryBudget, err)
		}
		b := r.backoff(attempt)
		if rem, ok := budget.Headroom(total); ok && b > rem {
			// The modeled deadline lands inside this backoff: charge only
			// the slice up to the deadline and stop.
			total += rem
			return total, resilience.ErrDeadline
		}
		r.bump(&r.stats.retries, MetricRetries, 1)
		total += b
	}
}

// Put implements Store with retries.
func (r *Retry) Put(table string, item Item) (time.Duration, error) {
	return r.retry(func() (time.Duration, error) { return r.Store.Put(table, item) })
}

// BatchPut implements Store with retries. A partial outcome resubmits only
// the unprocessed remainder; progress refreshes the attempt budget.
func (r *Retry) BatchPut(table string, items []Item) (time.Duration, error) {
	var total time.Duration
	pending := items
	for attempt := 0; ; {
		d, err := r.Store.BatchPut(table, pending)
		total += d
		if err == nil {
			return total, nil
		}
		var pe *PartialPutError
		switch {
		case errors.As(err, &pe):
			r.bump(&r.stats.partialBatches, MetricPartialBatches, 1)
			r.bump(&r.stats.itemsResub, MetricItemsResubmitted, int64(len(pe.Unprocessed)))
			if len(pe.Unprocessed) < len(pending) {
				attempt = 0 // progress refreshes the budget
			} else {
				attempt++
			}
			pending = pe.Unprocessed
		case IsTransient(err):
			r.classify(err)
			attempt++
		default:
			return total, err
		}
		if attempt >= r.attempts() {
			r.bump(&r.stats.gaveUp, MetricGaveUp, 1)
			return total, err
		}
		r.bump(&r.stats.retries, MetricRetries, 1)
		total += r.backoff(attempt)
	}
}

// DeleteItem implements Store with retries.
func (r *Retry) DeleteItem(table, hashKey, rangeKey string) (time.Duration, error) {
	return r.retry(func() (time.Duration, error) { return r.Store.DeleteItem(table, hashKey, rangeKey) })
}

// Get implements Store with retries.
func (r *Retry) Get(table, hashKey string) ([]Item, time.Duration, error) {
	return r.GetContext(context.Background(), table, hashKey)
}

// GetContext implements ContextReader: a Get whose retry loop honors the
// context's cancellation and modeled-time budget (see retryCtx).
func (r *Retry) GetContext(ctx context.Context, table, hashKey string) ([]Item, time.Duration, error) {
	var items []Item
	d, err := r.retryCtx(ctx, func() (time.Duration, error) {
		var d time.Duration
		var err error
		items, d, err = r.Store.Get(table, hashKey)
		return d, err
	})
	return items, d, err
}

// BatchGet implements Store with retries. A partial outcome re-fetches only
// the unprocessed keys and merges; progress refreshes the attempt budget.
func (r *Retry) BatchGet(table string, hashKeys []string) (map[string][]Item, time.Duration, error) {
	return r.BatchGetContext(context.Background(), table, hashKeys)
}

// BatchGetContext implements ContextReader; cancellation, deadline and
// retry-token semantics match retryCtx.
func (r *Retry) BatchGetContext(ctx context.Context, table string, hashKeys []string) (map[string][]Item, time.Duration, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	budget := resilience.FromContext(ctx)
	var total time.Duration
	merged := make(map[string][]Item, len(hashKeys))
	pending := hashKeys
	for attempt := 0; ; {
		if err := ctx.Err(); err != nil {
			return nil, total, err
		}
		if budget.Exhausted(total) {
			return nil, total, resilience.ErrDeadline
		}
		out, d, err := r.Store.BatchGet(table, pending)
		total += d
		for k, v := range out {
			merged[k] = v
		}
		if err == nil {
			return merged, total, nil
		}
		var pe *PartialGetError
		progress := false
		switch {
		case errors.As(err, &pe):
			r.bump(&r.stats.partialBatches, MetricPartialBatches, 1)
			r.bump(&r.stats.keysRefetc, MetricKeysRefetched, int64(len(pe.UnprocessedKeys)))
			if len(pe.UnprocessedKeys) < len(pending) {
				attempt = 0 // progress refreshes the budget
				progress = true
			} else {
				attempt++
			}
			pending = pe.UnprocessedKeys
		case IsTransient(err):
			r.classify(err)
			attempt++
		default:
			return nil, total, err
		}
		if attempt >= r.attempts() {
			r.bump(&r.stats.gaveUp, MetricGaveUp, 1)
			return nil, total, err
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, total, cerr
		}
		// A partial batch that made progress resubmits a strictly smaller
		// remainder, so it terminates without drawing on the shared pool;
		// only zero-progress and transient retries consume tokens.
		if !progress && !budget.TakeRetry() {
			r.bump(&r.stats.gaveUp, MetricGaveUp, 1)
			return nil, total, fmt.Errorf("%w (last transient error: %v)", resilience.ErrRetryBudget, err)
		}
		b := r.backoff(attempt)
		if rem, ok := budget.Headroom(total); ok && b > rem {
			total += rem
			return nil, total, resilience.ErrDeadline
		}
		r.bump(&r.stats.retries, MetricRetries, 1)
		total += b
	}
}

// FaultInjector wraps a store and makes every n-th data operation fail
// with ErrThrottled before reaching the underlying store.
//
// Deprecated: use chaos.EveryNth (internal/cloud/chaos), which also
// supports failure classes beyond ErrThrottled, or a seeded chaos.Plan for
// probabilistic injection. This type remains so existing tests compile.
type FaultInjector struct {
	Store
	// FailEvery makes operation number k fail whenever k % FailEvery == 0
	// (1-based). Zero disables injection.
	FailEvery int

	mu    sync.Mutex
	count int
}

func (f *FaultInjector) trip() error {
	if f.FailEvery <= 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.count++
	if f.count%f.FailEvery == 0 {
		return fmt.Errorf("%w (injected, op %d)", ErrThrottled, f.count)
	}
	return nil
}

// Injected reports how many operations were observed.
func (f *FaultInjector) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.FailEvery <= 0 {
		return 0
	}
	return f.count / f.FailEvery
}

// Put implements Store with injection.
func (f *FaultInjector) Put(table string, item Item) (time.Duration, error) {
	if err := f.trip(); err != nil {
		return 0, err
	}
	return f.Store.Put(table, item)
}

// BatchPut implements Store with injection.
func (f *FaultInjector) BatchPut(table string, items []Item) (time.Duration, error) {
	if err := f.trip(); err != nil {
		return 0, err
	}
	return f.Store.BatchPut(table, items)
}

// DeleteItem implements Store with injection.
func (f *FaultInjector) DeleteItem(table, hashKey, rangeKey string) (time.Duration, error) {
	if err := f.trip(); err != nil {
		return 0, err
	}
	return f.Store.DeleteItem(table, hashKey, rangeKey)
}

// Get implements Store with injection.
func (f *FaultInjector) Get(table, hashKey string) ([]Item, time.Duration, error) {
	if err := f.trip(); err != nil {
		return nil, 0, err
	}
	return f.Store.Get(table, hashKey)
}

// BatchGet implements Store with injection.
func (f *FaultInjector) BatchGet(table string, hashKeys []string) (map[string][]Item, time.Duration, error) {
	if err := f.trip(); err != nil {
		return nil, 0, err
	}
	return f.Store.BatchGet(table, hashKeys)
}
