package kv_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/kv"
	"repro/internal/index"
	"repro/internal/meter"
	"repro/internal/pattern"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

func TestRetryHidesTransientThrottling(t *testing.T) {
	base := dynamodb.New(meter.NewLedger())
	if err := base.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	faulty := &kv.FaultInjector{Store: base, FailEvery: 2}
	retry := kv.NewRetry(faulty)
	retry.BaseBackoff = time.Millisecond

	for i := 0; i < 20; i++ {
		if _, err := retry.Put("t", item("k", string(rune('a'+i)), attr("a", "v"))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if got := base.ItemCount("t"); got != 20 {
		t.Errorf("items = %d, want 20", got)
	}
	if faulty.Injected() == 0 {
		t.Error("no faults were injected")
	}
	items, _, err := retry.Get("t", "k")
	if err != nil || len(items) != 20 {
		t.Errorf("get = %d items, %v", len(items), err)
	}
}

func TestRetryChargesBackoffTime(t *testing.T) {
	base := dynamodb.New(meter.NewLedger())
	base.CreateTable("t")
	faulty := &kv.FaultInjector{Store: base, FailEvery: 2}
	retry := kv.NewRetry(faulty)
	retry.BaseBackoff = 100 * time.Millisecond

	// First op fails twice? FailEvery=2: op1 ok, op2 throttled then op3 ok.
	d1, err := retry.Put("t", item("k", "a", attr("a", "v")))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := retry.Put("t", item("k", "b", attr("a", "v")))
	if err != nil {
		t.Fatal(err)
	}
	if d2 < d1+100*time.Millisecond {
		t.Errorf("retried op latency %v does not include backoff (first %v)", d2, d1)
	}
}

func TestRetryGivesUpEventually(t *testing.T) {
	base := dynamodb.New(meter.NewLedger())
	base.CreateTable("t")
	alwaysFail := &kv.FaultInjector{Store: base, FailEvery: 1}
	retry := kv.NewRetry(alwaysFail)
	retry.BaseBackoff = time.Microsecond
	retry.MaxAttempts = 3
	_, err := retry.Put("t", item("k", "a", attr("a", "v")))
	if !errors.Is(err, kv.ErrThrottled) {
		t.Errorf("err = %v, want throttled", err)
	}
	if got := alwaysFail.Injected(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
}

func TestRetryPassesHardErrorsThrough(t *testing.T) {
	base := dynamodb.New(meter.NewLedger())
	retry := kv.NewRetry(base) // no table created
	if _, err := retry.Put("missing", item("k", "a")); !errors.Is(err, kv.ErrNoSuchTable) {
		t.Errorf("err = %v, want no-such-table", err)
	}
}

// End to end: a full index load over a flaky store succeeds behind the
// retry wrapper and answers look-ups identically to a healthy store.
func TestIndexLoadSurvivesThrottling(t *testing.T) {
	docs := xmark.Paintings()
	healthy := dynamodb.New(meter.NewLedger())
	flakyBase := dynamodb.New(meter.NewLedger())
	flaky := kv.NewRetry(&kv.FaultInjector{Store: flakyBase, FailEvery: 3})
	flaky.BaseBackoff = time.Microsecond

	for _, store := range []kv.Store{healthy, flaky} {
		if err := index.CreateTables(store, index.LUP); err != nil {
			t.Fatal(err)
		}
		uuids := index.NewUUIDGen(4)
		opts := index.OptionsFor(store)
		for _, gd := range docs {
			d, err := xmltree.Parse(gd.URI, gd.Data)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := index.LoadDocument(store, index.LUP, d, uuids, opts); err != nil {
				t.Fatalf("load %s: %v", gd.URI, err)
			}
		}
	}
	q := pattern.MustParse(`//painting[/name~"Lion"]`).Patterns[0]
	a, _, err := index.LookupPattern(healthy, index.LUP, q)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := index.LookupPattern(flaky, index.LUP, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) == 0 {
		t.Errorf("healthy %v vs flaky %v", a, b)
	}
}
