package kv_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cloud/chaos"
	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/kv"
	"repro/internal/index"
	"repro/internal/meter"
	"repro/internal/pattern"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

func TestRetryHidesTransientThrottling(t *testing.T) {
	base := dynamodb.New(meter.NewLedger())
	if err := base.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	faulty := &chaos.EveryNth{Store: base, FailEvery: 2}
	retry := kv.NewRetry(faulty)
	retry.BaseBackoff = time.Millisecond

	for i := 0; i < 20; i++ {
		if _, err := retry.Put("t", item("k", string(rune('a'+i)), attr("a", "v"))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if got := base.ItemCount("t"); got != 20 {
		t.Errorf("items = %d, want 20", got)
	}
	if faulty.Injected() == 0 {
		t.Error("no faults were injected")
	}
	items, _, err := retry.Get("t", "k")
	if err != nil || len(items) != 20 {
		t.Errorf("get = %d items, %v", len(items), err)
	}
	st := retry.RetryStats()
	if st.Retries == 0 || st.Throttles == 0 {
		t.Errorf("stats = %+v, want retries and throttles recorded", st)
	}
}

// The deprecated alias must keep compiling and injecting until its users
// migrate to chaos.EveryNth.
func TestDeprecatedFaultInjectorStillWorks(t *testing.T) {
	base := dynamodb.New(meter.NewLedger())
	if err := base.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	faulty := &kv.FaultInjector{Store: base, FailEvery: 1}
	if _, err := faulty.Put("t", item("k", "a", attr("a", "v"))); !errors.Is(err, kv.ErrThrottled) {
		t.Errorf("err = %v, want throttled", err)
	}
	if faulty.Injected() != 1 {
		t.Errorf("Injected = %d, want 1", faulty.Injected())
	}
}

func TestRetryChargesBackoffTime(t *testing.T) {
	base := dynamodb.New(meter.NewLedger())
	base.CreateTable("t")
	faulty := &chaos.EveryNth{Store: base, FailEvery: 2}
	retry := kv.NewRetry(faulty)
	retry.BaseBackoff = 100 * time.Millisecond

	// FailEvery=2: op1 ok, op2 throttled then op3 ok. The retried put's
	// modeled latency must include a positive jittered backoff on top of the
	// store latency; the items are the same size, so the store latencies
	// match and any excess is backoff.
	d1, err := retry.Put("t", item("k", "a", attr("a", "v")))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := retry.Put("t", item("k", "b", attr("a", "v")))
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d1 {
		t.Errorf("retried op latency %v does not include backoff (first %v)", d2, d1)
	}
	if d2 > d1+100*time.Millisecond {
		t.Errorf("backoff %v exceeds the 100ms first-retry cap", d2-d1)
	}
}

// Same seed, same failure pattern: the jittered backoff is reproducible.
func TestRetryBackoffIsSeeded(t *testing.T) {
	run := func(seed int64) time.Duration {
		base := dynamodb.New(meter.NewLedger())
		base.CreateTable("t")
		retry := kv.NewRetry(&chaos.EveryNth{Store: base, FailEvery: 2})
		retry.Seed = seed
		var total time.Duration
		for i := 0; i < 10; i++ {
			d, err := retry.Put("t", item("k", string(rune('a'+i)), attr("a", "v")))
			if err != nil {
				t.Fatal(err)
			}
			total += d
		}
		return total
	}
	if a, b := run(5), run(5); a != b {
		t.Errorf("same seed, different modeled time: %v vs %v", a, b)
	}
	if a, b := run(5), run(6); a == b {
		t.Errorf("different seeds, identical modeled time %v — jitter not seeded", a)
	}
}

// A large attempt budget must not overflow the exponential backoff: every
// wait stays within (0, MaxBackoff] and the charged total stays positive.
func TestRetryBackoffCappedWithoutOverflow(t *testing.T) {
	base := dynamodb.New(meter.NewLedger())
	base.CreateTable("t")
	alwaysFail := &chaos.EveryNth{Store: base, FailEvery: 1}
	retry := kv.NewRetry(alwaysFail)
	retry.MaxAttempts = 200 // base<<200 would wrap; the doubling must stop at the cap
	retry.BaseBackoff = time.Millisecond
	retry.MaxBackoff = 50 * time.Millisecond

	d, err := retry.Put("t", item("k", "a", attr("a", "v")))
	if !errors.Is(err, kv.ErrThrottled) {
		t.Fatalf("err = %v, want throttled", err)
	}
	if d <= 0 {
		t.Errorf("charged backoff %v is not positive — overflow", d)
	}
	if max := time.Duration(199) * 50 * time.Millisecond; d > max {
		t.Errorf("charged backoff %v exceeds %v (199 waits at the 50ms cap)", d, max)
	}
	if got := alwaysFail.Injected(); got != 200 {
		t.Errorf("attempts = %d, want 200", got)
	}
}

func TestRetryGivesUpEventually(t *testing.T) {
	base := dynamodb.New(meter.NewLedger())
	base.CreateTable("t")
	alwaysFail := &chaos.EveryNth{Store: base, FailEvery: 1}
	retry := kv.NewRetry(alwaysFail)
	retry.BaseBackoff = time.Microsecond
	retry.MaxAttempts = 3
	_, err := retry.Put("t", item("k", "a", attr("a", "v")))
	if !errors.Is(err, kv.ErrThrottled) {
		t.Errorf("err = %v, want throttled", err)
	}
	if got := alwaysFail.Injected(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if st := retry.RetryStats(); st.GaveUp != 1 {
		t.Errorf("GaveUp = %d, want 1", st.GaveUp)
	}
}

func TestRetryHandlesInternalErrors(t *testing.T) {
	base := dynamodb.New(meter.NewLedger())
	base.CreateTable("t")
	faulty := &chaos.EveryNth{Store: base, FailEvery: 2, Err: kv.ErrInternal}
	retry := kv.NewRetry(faulty)
	retry.BaseBackoff = time.Microsecond
	for i := 0; i < 10; i++ {
		if _, err := retry.Put("t", item("k", string(rune('a'+i)), attr("a", "v"))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if st := retry.RetryStats(); st.Internal == 0 || st.Throttles != 0 {
		t.Errorf("stats = %+v, want internal errors only", st)
	}
}

func TestRetryPassesHardErrorsThrough(t *testing.T) {
	base := dynamodb.New(meter.NewLedger())
	retry := kv.NewRetry(base) // no table created
	if _, err := retry.Put("missing", item("k", "a")); !errors.Is(err, kv.ErrNoSuchTable) {
		t.Errorf("err = %v, want no-such-table", err)
	}
}

// End to end: a full index load over a flaky store succeeds behind the
// retry wrapper and answers look-ups identically to a healthy store.
func TestIndexLoadSurvivesThrottling(t *testing.T) {
	docs := xmark.Paintings()
	healthy := dynamodb.New(meter.NewLedger())
	flakyBase := dynamodb.New(meter.NewLedger())
	flaky := kv.NewRetry(&chaos.EveryNth{Store: flakyBase, FailEvery: 3})
	flaky.BaseBackoff = time.Microsecond

	for _, store := range []kv.Store{healthy, flaky} {
		if err := index.CreateTables(store, index.LUP); err != nil {
			t.Fatal(err)
		}
		opts := index.OptionsFor(store)
		for _, gd := range docs {
			d, err := xmltree.Parse(gd.URI, gd.Data)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := index.LoadDocument(store, index.LUP, d, opts); err != nil {
				t.Fatalf("load %s: %v", gd.URI, err)
			}
		}
	}
	q := pattern.MustParse(`//painting[/name~"Lion"]`).Patterns[0]
	a, _, err := index.LookupPattern(healthy, index.LUP, q)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := index.LookupPattern(flaky, index.LUP, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) == 0 {
		t.Errorf("healthy %v vs flaky %v", a, b)
	}
}
