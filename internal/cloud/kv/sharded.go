package kv

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/resilience"
)

// This file implements the hash-partitioned sharding layer. DynamoDB
// provisions throughput per table, so a single logical table caps the write
// rate no matter how many EC2 instances index against it (the saturation of
// Section 8.2). Sharded splits every logical table into N partitions behind
// the plain Store interface: each item routes to the partition selected by a
// deterministic hash of its hash key, so extraction, bulk loading, look-ups,
// deletes and cache invalidation all work unchanged.
//
// Two constructions cover the two questions the experiments ask:
//
//   - NewSharded (partition mode) splits tables on ONE backing store, the
//     way a single DynamoDB account shards a hot table. Batches are grouped
//     per shard and shipped as one multi-table request (MultiStore), which is
//     exactly what the real BatchWriteItem/BatchGetItem allow — so results,
//     modeled times and billed cost are byte-identical to the unsharded
//     store at any shard count. The differential tests assert this.
//
//   - NewShardedStores (scatter mode) spreads tables over N independent
//     stores, each with its own provisioned capacity, and fans requests out
//     concurrently (scatter-gather: per-shard durations combine as their
//     maximum). This is the construction whose modeled throughput actually
//     scales with N — bench's shard experiment prices it against the
//     per-shard provisioned-throughput cost.

// ShardIndex routes a hash key to one of n shards: FNV-1a over the key,
// reduced mod n. It is the single routing function of the system — the
// posting cache and the chaos layer's per-shard fault plans use it too, so
// every component agrees on where a key lives.
func ShardIndex(hashKey string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(hashKey); i++ {
		h ^= uint32(hashKey[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// ShardTableName returns the physical name of a logical table's k-th
// partition.
func ShardTableName(table string, shard int) string {
	return table + "@" + strconv.Itoa(shard)
}

// SplitShardTable parses a physical partition name back into its logical
// table and shard index; ok is false for unsharded names.
func SplitShardTable(physical string) (table string, shard int, ok bool) {
	i := strings.LastIndexByte(physical, '@')
	if i < 0 {
		return physical, 0, false
	}
	n, err := strconv.Atoi(physical[i+1:])
	if err != nil || n < 0 {
		return physical, 0, false
	}
	return physical[:i], n, true
}

// TableItems is one table's slice of a multi-table batch write.
type TableItems struct {
	Table string
	Items []Item
}

// TableKeys is one table's slice of a multi-table batch read.
type TableKeys struct {
	Table string
	Keys  []string
}

// MultiStore is the optional multi-table batch interface. Real DynamoDB's
// BatchWriteItem and BatchGetItem span tables within one request; a store
// implementing MultiStore meters and latency-models the whole group as a
// single request, which is what lets the partition-mode Sharded keep billed
// cost and modeled time identical to the unsharded store. The total element
// count across groups is bounded by the store's single-batch limits.
type MultiStore interface {
	// BatchPutMulti applies every group in one request.
	BatchPutMulti(groups []TableItems) (time.Duration, error)
	// BatchGetMulti serves every group in one request; result i corresponds
	// to groups[i].
	BatchGetMulti(groups []TableKeys) ([]map[string][]Item, time.Duration, error)
}

// Dumper is the verification-side interface of stores that can enumerate a
// table deterministically (MemStore.DumpTable); differential tests reach it
// through AsDumper.
type Dumper interface {
	DumpTable(table string) []Item
}

// Unwrapper is implemented by store wrappers (Retry, the chaos store) so
// capability probes can walk the stack.
type Unwrapper interface {
	Unwrap() Store
}

// AsDumper unwraps the store stack until it finds a Dumper, or returns nil.
func AsDumper(s Store) Dumper {
	for s != nil {
		if d, ok := s.(Dumper); ok {
			return d
		}
		u, ok := s.(Unwrapper)
		if !ok {
			return nil
		}
		s = u.Unwrap()
	}
	return nil
}

// ShardRouter is implemented by sharding stores; look-up code uses it to
// surface the scatter fan-out (the lookup.scatter span) without depending on
// the concrete type.
type ShardRouter interface {
	// ShardCount returns the number of shards (1 for unsharded stores).
	ShardCount() int
	// ShardOf returns the shard a hash key routes to.
	ShardOf(hashKey string) int
}

// AsShardRouter unwraps the store stack until it finds a ShardRouter, or
// returns nil.
func AsShardRouter(s Store) ShardRouter {
	for s != nil {
		if r, ok := s.(ShardRouter); ok {
			return r
		}
		u, ok := s.(Unwrapper)
		if !ok {
			return nil
		}
		s = u.Unwrap()
	}
	return nil
}

// HedgeStatsSource is implemented by stores that hedge straggling reads;
// look-up code uses it to annotate spans with the hedges fired while
// serving a read, without depending on the concrete type.
type HedgeStatsSource interface {
	HedgeStats() resilience.HedgeStats
}

// AsHedgeStatsSource unwraps the store stack until it finds a
// HedgeStatsSource, or returns nil.
func AsHedgeStatsSource(s Store) HedgeStatsSource {
	for s != nil {
		if h, ok := s.(HedgeStatsSource); ok {
			return h
		}
		u, ok := s.(Unwrapper)
		if !ok {
			return nil
		}
		s = u.Unwrap()
	}
	return nil
}

// ShardPutMetric and ShardGetMetric name the per-shard counters a Sharded
// streams to its Sink: items written to and keys read from shard k.
func ShardPutMetric(shard int) string {
	return "kv.shard." + strconv.Itoa(shard) + ".put_items"
}

// ShardGetMetric is the read-side counterpart of ShardPutMetric.
func ShardGetMetric(shard int) string {
	return "kv.shard." + strconv.Itoa(shard) + ".get_keys"
}

// ShardErrorMetric names the per-shard failure counter: scatter-mode calls
// count EVERY failing shard here, even though only the lowest-indexed
// shard's error surfaces to the caller (the deterministic combining rule),
// so the other shards' failures stay visible in obs.
func ShardErrorMetric(shard int) string {
	return "kv.shard." + strconv.Itoa(shard) + ".errors"
}

// Sharded partitions every logical table across N shards behind the Store
// interface. See the file comment for the two construction modes. It is
// safe for concurrent use if its backing store(s) are.
type Sharded struct {
	base   Store   // partition mode: single backing store, tables renamed
	stores []Store // scatter mode: one independent store per shard
	n      int

	// Sink, when non-nil, receives the per-shard traffic counters
	// (ShardPutMetric / ShardGetMetric / ShardErrorMetric). Set before the
	// store is shared.
	Sink CounterSink

	// Hedger, when non-nil, hedges scatter-mode reads: a shard whose
	// primary modeled latency exceeds the hedger's quantile delay re-issues
	// the read and the modeled first response wins. Only meaningful in
	// scatter mode (partition-mode "shards" share one store, so a hedge
	// could never be faster). Set before the store is shared.
	Hedger *resilience.Hedger

	// Breakers, when non-nil, guards scatter-mode reads per shard: an open
	// breaker sheds its shard's slice of the fan-out and the call returns a
	// partial result with a DegradedError instead of failing. Set before
	// the store is shared.
	Breakers *resilience.BreakerSet

	// Metric names resolved once at construction, so the data path does no
	// formatting.
	putMetrics []string
	getMetrics []string
	errMetrics []string
}

var (
	_ Store         = (*Sharded)(nil)
	_ ShardRouter   = (*Sharded)(nil)
	_ Dumper        = (*Sharded)(nil)
	_ ContextReader = (*Sharded)(nil)
)

// NewSharded returns a partition-mode sharding layer over base: logical
// table T becomes physical partitions T@0..T@n-1 on the same store, and
// batches ship as single multi-table requests when base implements
// MultiStore (falling back to one request per shard otherwise). n < 2
// still returns a working single-shard wrapper.
func NewSharded(base Store, n int) *Sharded {
	if n < 1 {
		n = 1
	}
	return newSharded(base, nil, n)
}

// NewShardedStores returns a scatter-mode sharding layer: shard k of every
// table lives on stores[k], requests fan out concurrently, and per-shard
// durations combine as their maximum (the scatter-gather model). All stores
// must share one backend and one set of limits.
func NewShardedStores(stores []Store) *Sharded {
	if len(stores) == 0 {
		panic("kv: NewShardedStores needs at least one store")
	}
	return newSharded(nil, stores, len(stores))
}

func newSharded(base Store, stores []Store, n int) *Sharded {
	s := &Sharded{base: base, stores: stores, n: n,
		putMetrics: make([]string, n), getMetrics: make([]string, n),
		errMetrics: make([]string, n)}
	for k := 0; k < n; k++ {
		s.putMetrics[k] = ShardPutMetric(k)
		s.getMetrics[k] = ShardGetMetric(k)
		s.errMetrics[k] = ShardErrorMetric(k)
	}
	return s
}

// ShardCount implements ShardRouter.
func (s *Sharded) ShardCount() int { return s.n }

// HedgeStats implements HedgeStatsSource: a snapshot of the hedging
// counters, zero when no Hedger is configured.
func (s *Sharded) HedgeStats() resilience.HedgeStats { return s.Hedger.Stats() }

// ShardOf implements ShardRouter.
func (s *Sharded) ShardOf(hashKey string) int { return ShardIndex(hashKey, s.n) }

// scatter reports whether the layer runs in scatter mode.
func (s *Sharded) scatter() bool { return s.base == nil }

// shardStore returns the store serving shard k.
func (s *Sharded) shardStore(k int) Store {
	if s.scatter() {
		return s.stores[k]
	}
	return s.base
}

// shardTable returns the physical table name of shard k.
func (s *Sharded) shardTable(table string, k int) string {
	if s.scatter() {
		return table
	}
	return ShardTableName(table, k)
}

func (s *Sharded) notePut(k int, items int) {
	if s.Sink != nil {
		s.Sink.Add(s.putMetrics[k], int64(items))
	}
}

func (s *Sharded) noteGet(k int, keys int) {
	if s.Sink != nil {
		s.Sink.Add(s.getMetrics[k], int64(keys))
	}
}

func (s *Sharded) noteErr(k int) {
	if s.Sink != nil {
		s.Sink.Add(s.errMetrics[k], 1)
	}
}

// Backend implements Store.
func (s *Sharded) Backend() string { return s.shardStore(0).Backend() }

// Limits implements Store.
func (s *Sharded) Limits() Limits { return s.shardStore(0).Limits() }

// CreateTable implements Store: every shard's partition is created.
func (s *Sharded) CreateTable(name string) error {
	for k := 0; k < s.n; k++ {
		if err := s.shardStore(k).CreateTable(s.shardTable(name, k)); err != nil {
			return err
		}
	}
	return nil
}

// DeleteTable implements Store.
func (s *Sharded) DeleteTable(name string) error {
	for k := 0; k < s.n; k++ {
		if err := s.shardStore(k).DeleteTable(s.shardTable(name, k)); err != nil {
			return err
		}
	}
	return nil
}

// Tables implements Store, returning logical table names.
func (s *Sharded) Tables() []string {
	seen := make(map[string]bool)
	var out []string
	note := func(name string) {
		logical, _, _ := SplitShardTable(name)
		if !seen[logical] {
			seen[logical] = true
			out = append(out, logical)
		}
	}
	if s.scatter() {
		for _, name := range s.stores[0].Tables() {
			note(name)
		}
	} else {
		for _, name := range s.base.Tables() {
			note(name)
		}
	}
	sort.Strings(out)
	return out
}

// Put implements Store: the item routes to its shard.
func (s *Sharded) Put(table string, item Item) (time.Duration, error) {
	k := s.ShardOf(item.HashKey)
	s.notePut(k, 1)
	return s.shardStore(k).Put(s.shardTable(table, k), item)
}

// Get implements Store.
func (s *Sharded) Get(table, hashKey string) ([]Item, time.Duration, error) {
	return s.GetContext(context.Background(), table, hashKey)
}

// GetContext implements ContextReader, threading the context to the shard
// store. In scatter mode the resilience hooks engage: an open breaker sheds
// the read (DegradedError) and a straggling primary is hedged, keeping the
// modeled first response.
func (s *Sharded) GetContext(ctx context.Context, table, hashKey string) ([]Item, time.Duration, error) {
	k := s.ShardOf(hashKey)
	s.noteGet(k, 1)
	st, tbl := s.shardStore(k), s.shardTable(table, k)
	if !s.scatter() {
		return GetContext(ctx, st, tbl, hashKey)
	}
	if s.Breakers != nil && !s.Breakers.Allow(k) {
		return nil, 0, sortDegraded(&DegradedError{Shards: []int{k}, Keys: []string{hashKey}})
	}
	var delay time.Duration
	hedge := false
	if s.Hedger != nil {
		delay, hedge = s.Hedger.Delay()
	}
	items, d, err := GetContext(ctx, st, tbl, hashKey)
	if err != nil {
		s.Breakers.Failure(k)
		s.noteErr(k)
		return nil, d, err
	}
	s.Breakers.Success(k)
	s.Hedger.Observe(k, d)
	if hedge && d > delay {
		s.Hedger.NoteFired()
		items2, d2, err2 := GetContext(ctx, st, tbl, hashKey)
		if err2 == nil && delay+d2 < d {
			s.Hedger.NoteWon()
			items, d = items2, delay+d2
		} else {
			s.Hedger.NoteWasted()
		}
	}
	return items, d, nil
}

// DeleteItem implements Store.
func (s *Sharded) DeleteItem(table, hashKey, rangeKey string) (time.Duration, error) {
	k := s.ShardOf(hashKey)
	s.notePut(k, 1)
	return s.shardStore(k).DeleteItem(s.shardTable(table, k), hashKey, rangeKey)
}

// groupItems splits a batch by shard, preserving input order within each
// group. Group order follows ascending shard index, so request issue order
// is deterministic.
func (s *Sharded) groupItems(items []Item) [][]Item {
	groups := make([][]Item, s.n)
	for _, it := range items {
		k := s.ShardOf(it.HashKey)
		groups[k] = append(groups[k], it)
	}
	return groups
}

// BatchPut implements Store: the batch is grouped per shard. Partition mode
// ships all groups as one multi-table request when the backing store allows
// it — the same packing, latency and metered units as the unsharded batch —
// and issues per-shard requests sequentially otherwise. Scatter mode fans
// the groups out concurrently and charges the slowest shard's latency.
func (s *Sharded) BatchPut(table string, items []Item) (time.Duration, error) {
	groups := s.groupItems(items)
	for k, g := range groups {
		if len(g) > 0 {
			s.notePut(k, len(g))
		}
	}
	if !s.scatter() {
		if ms, ok := s.base.(MultiStore); ok {
			var multi []TableItems
			for k, g := range groups {
				if len(g) > 0 {
					multi = append(multi, TableItems{Table: s.shardTable(table, k), Items: g})
				}
			}
			return ms.BatchPutMulti(multi)
		}
		var total time.Duration
		for k, g := range groups {
			if len(g) == 0 {
				continue
			}
			d, err := s.base.BatchPut(s.shardTable(table, k), g)
			total += d
			if err != nil {
				return total, err
			}
		}
		return total, nil
	}
	ops := make([]func() (time.Duration, error), s.n)
	for k := 0; k < s.n; k++ {
		if len(groups[k]) == 0 {
			continue
		}
		k := k
		ops[k] = func() (time.Duration, error) {
			return s.stores[k].BatchPut(table, groups[k])
		}
	}
	d, _, err := s.scatterRun(false, ops)
	return d, err
}

// BatchGet implements Store: keys are grouped per shard and the per-shard
// streams are merged back into one result map (each hash key lives on
// exactly one shard, so the merge is disjoint). The request structure
// mirrors BatchPut's three cases.
func (s *Sharded) BatchGet(table string, hashKeys []string) (map[string][]Item, time.Duration, error) {
	return s.BatchGetContext(context.Background(), table, hashKeys)
}

// BatchGetContext implements ContextReader. In scatter mode the fan-out
// runs under the resilience hooks (hedging, breakers); shed shards degrade
// the call to a partial result map returned WITH a *DegradedError listing
// the missing keys, so callers can serve what arrived and mark the answer
// incomplete.
func (s *Sharded) BatchGetContext(ctx context.Context, table string, hashKeys []string) (map[string][]Item, time.Duration, error) {
	groups := make([][]string, s.n)
	for _, key := range hashKeys {
		k := s.ShardOf(key)
		groups[k] = append(groups[k], key)
	}
	for k, g := range groups {
		if len(g) > 0 {
			s.noteGet(k, len(g))
		}
	}
	out := make(map[string][]Item, len(hashKeys))
	if !s.scatter() {
		if ms, ok := s.base.(MultiStore); ok {
			if err := CheckContext(ctx); err != nil {
				return nil, 0, err
			}
			var multi []TableKeys
			for k, g := range groups {
				if len(g) > 0 {
					multi = append(multi, TableKeys{Table: s.shardTable(table, k), Keys: g})
				}
			}
			results, d, err := ms.BatchGetMulti(multi)
			if err != nil {
				return nil, d, err
			}
			for _, m := range results {
				for key, its := range m {
					out[key] = its
				}
			}
			return out, d, nil
		}
		var total time.Duration
		for k, g := range groups {
			if len(g) == 0 {
				continue
			}
			m, d, err := BatchGetContext(ctx, s.base, s.shardTable(table, k), g)
			total += d
			if err != nil {
				return nil, total, err
			}
			for key, its := range m {
				out[key] = its
			}
		}
		return out, total, nil
	}
	var mu sync.Mutex
	ops := make([]func() (time.Duration, error), s.n)
	for k := 0; k < s.n; k++ {
		if len(groups[k]) == 0 {
			continue
		}
		k := k
		ops[k] = func() (time.Duration, error) {
			m, d, err := BatchGetContext(ctx, s.stores[k], table, groups[k])
			if err != nil {
				return d, err
			}
			mu.Lock()
			for key, its := range m {
				out[key] = its
			}
			mu.Unlock()
			return d, nil
		}
	}
	d, shed, err := s.scatterRun(true, ops)
	if err != nil {
		return nil, d, err
	}
	if len(shed) > 0 {
		de := &DegradedError{Shards: shed}
		for _, k := range shed {
			de.Keys = append(de.Keys, groups[k]...)
		}
		return out, d, sortDegraded(de)
	}
	return out, d, nil
}

// scatterRun fans the per-shard ops out concurrently (nil entries are
// shards with no work) and combines: duration is the maximum over shards
// (the scatter-gather wall clock), the returned error is the lowest-indexed
// shard's failure so reruns report deterministically — but EVERY failing
// shard counts on its kv.shard.K.errors counter, keeping the other shards'
// failures visible in obs.
//
// For read fan-outs (read=true) the resilience hooks engage:
//
//   - Breakers: a shard whose breaker is open is shed — its op never runs,
//     it contributes zero duration, and its index lands in the shed list so
//     the caller can degrade to a partial result.
//   - Hedger: the hedge delay is computed ONCE before the fan-out (so every
//     shard of a call sees the same threshold, a deterministic sequential
//     point). A shard whose primary modeled latency d1 exceeds the delay
//     re-issues its op — reads are idempotent, and re-merging the same keys
//     is a no-op — and the call keeps the modeled first response:
//     min(d1, delay+d2), the loser being "cancelled". Both requests really
//     hit the store and are billed; the fired/won/wasted counters account
//     the overhead, and hedge durations are never fed back into the
//     hedger's latency window.
func (s *Sharded) scatterRun(read bool, ops []func() (time.Duration, error)) (time.Duration, []int, error) {
	durations := make([]time.Duration, s.n)
	errs := make([]error, s.n)
	shedv := make([]bool, s.n)
	var delay time.Duration
	hedge := false
	if read && s.Hedger != nil {
		delay, hedge = s.Hedger.Delay()
	}
	var wg sync.WaitGroup
	for k := 0; k < s.n; k++ {
		if ops[k] == nil {
			continue
		}
		if read && s.Breakers != nil && !s.Breakers.Allow(k) {
			shedv[k] = true
			continue
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			d, err := ops[k]()
			if read {
				if err != nil {
					s.Breakers.Failure(k)
				} else {
					s.Breakers.Success(k)
					s.Hedger.Observe(k, d)
					if hedge && d > delay {
						s.Hedger.NoteFired()
						d2, err2 := ops[k]() // hedge: re-issue the idempotent read
						if err2 == nil && delay+d2 < d {
							s.Hedger.NoteWon()
							d = delay + d2 // first response wins
						} else {
							s.Hedger.NoteWasted() // extra bill, no latency won
						}
					}
				}
			}
			durations[k], errs[k] = d, err
		}(k)
	}
	wg.Wait()
	var max time.Duration
	for _, d := range durations {
		if d > max {
			max = d
		}
	}
	var shed []int
	for k, v := range shedv {
		if v {
			shed = append(shed, k)
		}
	}
	var first error
	for k, err := range errs {
		if err != nil {
			s.noteErr(k)
			if first == nil {
				first = err
			}
		}
	}
	return max, shed, first
}

// TableBytes implements Store, summing over shards.
func (s *Sharded) TableBytes(table string) int64 {
	var n int64
	for k := 0; k < s.n; k++ {
		n += s.shardStore(k).TableBytes(s.shardTable(table, k))
	}
	return n
}

// OverheadBytes implements Store, summing over shards.
func (s *Sharded) OverheadBytes(table string) int64 {
	var n int64
	for k := 0; k < s.n; k++ {
		n += s.shardStore(k).OverheadBytes(s.shardTable(table, k))
	}
	return n
}

// TotalBytes implements Store.
func (s *Sharded) TotalBytes() int64 {
	if s.scatter() {
		var n int64
		for _, st := range s.stores {
			n += st.TotalBytes()
		}
		return n
	}
	return s.base.TotalBytes()
}

// ItemCount implements Store, summing over shards.
func (s *Sharded) ItemCount(table string) int64 {
	var n int64
	for k := 0; k < s.n; k++ {
		n += s.shardStore(k).ItemCount(s.shardTable(table, k))
	}
	return n
}

// RegisterClient implements Store. Scatter mode registers on every shard
// store: a worker thread drives all shards, so each one's provisioned
// capacity is shared among the same client population.
func (s *Sharded) RegisterClient() {
	if s.scatter() {
		for _, st := range s.stores {
			st.RegisterClient()
		}
		return
	}
	s.base.RegisterClient()
}

// UnregisterClient implements Store.
func (s *Sharded) UnregisterClient() {
	if s.scatter() {
		for _, st := range s.stores {
			st.UnregisterClient()
		}
		return
	}
	s.base.UnregisterClient()
}

// DumpTable merges the logical table's shard partitions into one
// deterministic dump sorted by (hash key, range key) — the exact order
// MemStore.DumpTable uses, so a sharded store's dump is comparable
// byte-for-byte against an unsharded one.
func (s *Sharded) DumpTable(table string) []Item {
	var out []Item
	for k := 0; k < s.n; k++ {
		d := AsDumper(s.shardStore(k))
		if d == nil {
			return nil
		}
		out = append(out, d.DumpTable(s.shardTable(table, k))...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].HashKey != out[j].HashKey {
			return out[i].HashKey < out[j].HashKey
		}
		return out[i].RangeKey < out[j].RangeKey
	})
	return out
}

// RetryStats implements RetryStatsSource by summing the counters of every
// backing store that exposes them, so look-up statistics keep attributing
// store retries when a Retry sits below the sharding layer.
func (s *Sharded) RetryStats() RetryStats {
	var sum RetryStats
	add := func(st Store) {
		if src, ok := st.(RetryStatsSource); ok {
			rs := src.RetryStats()
			sum.Retries += rs.Retries
			sum.Throttles += rs.Throttles
			sum.Internal += rs.Internal
			sum.PartialBatches += rs.PartialBatches
			sum.ItemsResubmitted += rs.ItemsResubmitted
			sum.KeysRefetched += rs.KeysRefetched
			sum.GaveUp += rs.GaveUp
		}
	}
	if s.scatter() {
		for _, st := range s.stores {
			add(st)
		}
	} else {
		add(s.base)
	}
	return sum
}

// String aids debugging.
func (s *Sharded) String() string {
	mode := "partition"
	if s.scatter() {
		mode = "scatter"
	}
	return fmt.Sprintf("kv.Sharded{%s, %d shards, %s}", mode, s.n, s.Backend())
}
