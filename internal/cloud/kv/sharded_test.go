package kv_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/kv"
	"repro/internal/meter"
)

func TestShardIndexDeterministicAndInRange(t *testing.T) {
	for n := 1; n <= 9; n++ {
		hit := make(map[int]bool)
		for i := 0; i < 200; i++ {
			key := fmt.Sprintf("key-%03d", i)
			k := kv.ShardIndex(key, n)
			if k != kv.ShardIndex(key, n) {
				t.Fatalf("ShardIndex(%q, %d) not deterministic", key, n)
			}
			if k < 0 || k >= n {
				t.Fatalf("ShardIndex(%q, %d) = %d out of range", key, n, k)
			}
			hit[k] = true
		}
		if n > 1 && len(hit) < 2 {
			t.Errorf("ShardIndex with n=%d routed 200 keys to a single shard", n)
		}
	}
	if kv.ShardIndex("anything", 0) != 0 || kv.ShardIndex("anything", 1) != 0 {
		t.Error("ShardIndex must return 0 for n <= 1")
	}
}

func TestSplitShardTable(t *testing.T) {
	cases := []struct {
		physical string
		table    string
		shard    int
		ok       bool
	}{
		{kv.ShardTableName("term", 3), "term", 3, true},
		{"term@0", "term", 0, true},
		{"a@b@7", "a@b", 7, true},
		{"term", "term", 0, false},
		{"term@", "term@", 0, false},
		{"term@x", "term@x", 0, false},
		{"term@-1", "term@-1", 0, false},
	}
	for _, c := range cases {
		tbl, shard, ok := kv.SplitShardTable(c.physical)
		if tbl != c.table || shard != c.shard || ok != c.ok {
			t.Errorf("SplitShardTable(%q) = (%q, %d, %v), want (%q, %d, %v)",
				c.physical, tbl, shard, ok, c.table, c.shard, c.ok)
		}
	}
}

// loadBatch is a deterministic mixed-key batch that spreads over shards.
func loadBatch(n int) []kv.Item {
	items := make([]kv.Item, 0, n)
	for i := 0; i < n; i++ {
		items = append(items, item(
			fmt.Sprintf("key-%03d", i%7),
			fmt.Sprintf("r-%03d", i),
			attr("v", fmt.Sprintf("value-%04d", i)),
		))
	}
	return items
}

// TestShardedPartitionIdentity is the heart of the tentpole: a partition-
// mode sharded store over a MultiStore base must produce the same modeled
// latencies, the same metered calls/units/bytes, the same read results and
// the same merged dumps as the unsharded store, for every shard count.
func TestShardedPartitionIdentity(t *testing.T) {
	items := loadBatch(20)
	keys := []string{"key-000", "key-001", "key-002", "key-003", "key-004", "key-005", "key-006", "missing"}

	plainLedger := meter.NewLedger()
	plain := dynamodb.New(plainLedger)
	if err := plain.CreateTable("idx"); err != nil {
		t.Fatal(err)
	}
	putPlain, err := plain.BatchPut("idx", items)
	if err != nil {
		t.Fatal(err)
	}
	wantGet, getPlain, err := plain.BatchGet("idx", keys)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ledger := meter.NewLedger()
			sh := kv.NewSharded(dynamodb.New(ledger), shards)
			if err := sh.CreateTable("idx"); err != nil {
				t.Fatal(err)
			}
			putD, err := sh.BatchPut("idx", items)
			if err != nil {
				t.Fatal(err)
			}
			if putD != putPlain {
				t.Errorf("BatchPut latency = %v, unsharded %v", putD, putPlain)
			}
			got, getD, err := sh.BatchGet("idx", keys)
			if err != nil {
				t.Fatal(err)
			}
			if getD != getPlain {
				t.Errorf("BatchGet latency = %v, unsharded %v", getD, getPlain)
			}
			if !reflect.DeepEqual(got, wantGet) {
				t.Errorf("BatchGet results differ from unsharded store")
			}
			for _, op := range []string{"put", "get"} {
				a, b := plainLedger.Snapshot().Get("dynamodb", op), ledger.Snapshot().Get("dynamodb", op)
				if a != b {
					t.Errorf("metered %s: sharded %+v, unsharded %+v", op, b, a)
				}
			}
			if !reflect.DeepEqual(sh.DumpTable("idx"), plain.DumpTable("idx")) {
				t.Errorf("merged dump differs from unsharded dump")
			}
			if sh.ItemCount("idx") != plain.ItemCount("idx") {
				t.Errorf("ItemCount = %d, want %d", sh.ItemCount("idx"), plain.ItemCount("idx"))
			}
			if sh.TableBytes("idx") != plain.TableBytes("idx") {
				t.Errorf("TableBytes = %d, want %d", sh.TableBytes("idx"), plain.TableBytes("idx"))
			}
			if got := sh.Tables(); len(got) != 1 || got[0] != "idx" {
				t.Errorf("Tables() = %v, want [idx]", got)
			}
		})
	}
}

// TestShardedSingleOpsRoute checks Put/Get/DeleteItem route consistently:
// what one path writes the others see, and the physical partition holding a
// key is the one ShardOf names.
func TestShardedSingleOpsRoute(t *testing.T) {
	base := dynamodb.New(meter.NewLedger())
	sh := kv.NewSharded(base, 4)
	if err := sh.CreateTable("idx"); err != nil {
		t.Fatal(err)
	}
	it := item("hot-key", "r1", attr("v", "x"))
	if _, err := sh.Put("idx", it); err != nil {
		t.Fatal(err)
	}
	got, _, err := sh.Get("idx", "hot-key")
	if err != nil || len(got) != 1 || got[0].RangeKey != "r1" {
		t.Fatalf("Get after Put = %v, %v", got, err)
	}
	k := sh.ShardOf("hot-key")
	phys := kv.ShardTableName("idx", k)
	if base.ItemCount(phys) != 1 {
		t.Errorf("item not on partition %s named by ShardOf", phys)
	}
	for other := 0; other < 4; other++ {
		if other != k && base.ItemCount(kv.ShardTableName("idx", other)) != 0 {
			t.Errorf("item leaked to partition %d", other)
		}
	}
	if _, err := sh.DeleteItem("idx", "hot-key", "r1"); err != nil {
		t.Fatal(err)
	}
	if sh.ItemCount("idx") != 0 {
		t.Errorf("delete through the sharded store left %d items", sh.ItemCount("idx"))
	}
}

// TestShardedFallbackWithoutMultiStore covers the stacking used under
// chaos: when the direct base does not implement MultiStore (a Retry
// wrapper here), the sharded store must fall back to per-shard batches and
// still converge to the same contents.
func TestShardedFallbackWithoutMultiStore(t *testing.T) {
	items := loadBatch(20)

	plain := dynamodb.New(meter.NewLedger())
	if err := plain.CreateTable("idx"); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.BatchPut("idx", items); err != nil {
		t.Fatal(err)
	}

	retry := kv.NewRetry(dynamodb.New(meter.NewLedger()))
	sh := kv.NewSharded(retry, 4)
	if err := sh.CreateTable("idx"); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.BatchPut("idx", items); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sh.DumpTable("idx"), plain.DumpTable("idx")) {
		t.Errorf("fallback dump differs from unsharded dump")
	}
	keys := []string{"key-000", "key-003", "key-006"}
	want, _, err := plain.BatchGet("idx", keys)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sh.BatchGet("idx", keys)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fallback BatchGet differs from unsharded store")
	}
	if kv.AsDumper(sh) == nil {
		t.Error("AsDumper should unwrap through Sharded over Retry")
	}
}

// TestShardedScatterMode checks the independent-stores construction: reads
// and writes fan out concurrently, the combined duration is the slowest
// shard's, and repeated runs are deterministic.
func TestShardedScatterMode(t *testing.T) {
	items := loadBatch(20)
	keys := []string{"key-000", "key-001", "key-002", "key-003", "key-004", "key-005", "key-006"}

	run := func() (time.Duration, time.Duration, []kv.Item, map[string][]kv.Item) {
		stores := make([]kv.Store, 4)
		ledger := meter.NewLedger()
		for i := range stores {
			stores[i] = dynamodb.New(ledger)
		}
		sh := kv.NewShardedStores(stores)
		if err := sh.CreateTable("idx"); err != nil {
			t.Fatal(err)
		}
		putD, err := sh.BatchPut("idx", items)
		if err != nil {
			t.Fatal(err)
		}
		got, getD, err := sh.BatchGet("idx", keys)
		if err != nil {
			t.Fatal(err)
		}
		return putD, getD, sh.DumpTable("idx"), got
	}

	putA, getA, dumpA, resA := run()
	putB, getB, dumpB, resB := run()
	if putA != putB || getA != getB {
		t.Errorf("scatter latencies not deterministic: put %v/%v get %v/%v", putA, putB, getA, getB)
	}
	if !reflect.DeepEqual(dumpA, dumpB) || !reflect.DeepEqual(resA, resB) {
		t.Errorf("scatter results not deterministic across runs")
	}

	// Scatter durations are max-combined, so they must not exceed what the
	// same batch costs on one store (equal when one shard dominates).
	single := dynamodb.New(meter.NewLedger())
	if err := single.CreateTable("idx"); err != nil {
		t.Fatal(err)
	}
	seqD, err := single.BatchPut("idx", items)
	if err != nil {
		t.Fatal(err)
	}
	if putA > seqD {
		t.Errorf("scatter put %v slower than single-store batch %v", putA, seqD)
	}

	// Contents must match the partition-mode layout item-for-item.
	partLedger := meter.NewLedger()
	part := kv.NewSharded(dynamodb.New(partLedger), 4)
	if err := part.CreateTable("idx"); err != nil {
		t.Fatal(err)
	}
	if _, err := part.BatchPut("idx", items); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dumpA, part.DumpTable("idx")) {
		t.Errorf("scatter dump differs from partition-mode dump")
	}
}

// TestShardedBatchLimits: the partition-mode multi request applies the
// provider's batch ceiling to the whole logical batch, exactly like the
// unsharded store, so sharding cannot smuggle oversized batches through.
func TestShardedBatchLimits(t *testing.T) {
	sh := kv.NewSharded(dynamodb.New(meter.NewLedger()), 4)
	if err := sh.CreateTable("idx"); err != nil {
		t.Fatal(err)
	}
	lim := sh.Limits()
	over := loadBatch(lim.BatchPutItems + 1)
	if _, err := sh.BatchPut("idx", over); err == nil {
		t.Errorf("BatchPut of %d items should exceed the %d-item limit", len(over), lim.BatchPutItems)
	}
	keys := make([]string, lim.BatchGetKeys+1)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	if _, _, err := sh.BatchGet("idx", keys); err == nil {
		t.Errorf("BatchGet of %d keys should exceed the %d-key limit", len(keys), lim.BatchGetKeys)
	}
}

// TestShardedSinkCounters: per-shard traffic counters stream to the sink
// and account for every item and key exactly once.
func TestShardedSinkCounters(t *testing.T) {
	sink := make(countingSink)
	sh := kv.NewSharded(dynamodb.New(meter.NewLedger()), 4)
	sh.Sink = sink
	if err := sh.CreateTable("idx"); err != nil {
		t.Fatal(err)
	}
	items := loadBatch(20)
	if _, err := sh.BatchPut("idx", items); err != nil {
		t.Fatal(err)
	}
	keys := []string{"key-000", "key-001", "key-002"}
	if _, _, err := sh.BatchGet("idx", keys); err != nil {
		t.Fatal(err)
	}
	var puts, gets int64
	for k := 0; k < 4; k++ {
		puts += sink[kv.ShardPutMetric(k)]
		gets += sink[kv.ShardGetMetric(k)]
	}
	if puts != int64(len(items)) {
		t.Errorf("sink put items = %d, want %d", puts, len(items))
	}
	if gets != int64(len(keys)) {
		t.Errorf("sink get keys = %d, want %d", gets, len(keys))
	}
}

type countingSink map[string]int64

func (s countingSink) Add(name string, delta int64) { s[name] += delta }
