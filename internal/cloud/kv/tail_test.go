package kv_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/cloud/chaos"
	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/kv"
	"repro/internal/meter"
	"repro/internal/resilience"
)

// tailSeed returns the seed of the straggler chaos schedule; CI sweeps it
// through the CHAOS_SEED environment variable, like the core chaos suite.
func tailSeed(t *testing.T) int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		return n
	}
	return 1
}

// testSink collects counter increments for assertions.
type testSink struct {
	mu sync.Mutex
	m  map[string]int64
}

func newTestSink() *testSink { return &testSink{m: make(map[string]int64)} }

func (s *testSink) Add(name string, delta int64) {
	s.mu.Lock()
	s.m[name] += delta
	s.mu.Unlock()
}

func (s *testSink) get(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[name]
}

// Satellite regression: when the modeled deadline lands inside a jittered
// backoff wait, Retry must charge only the slice up to the deadline and
// stop — not complete the wait and re-attempt.
func TestRetryStopsAtModeledDeadlineMidBackoff(t *testing.T) {
	base := dynamodb.New(meter.NewLedger())
	if err := base.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	faulty := &chaos.EveryNth{Store: base, FailEvery: 1} // every op throttled
	retry := kv.NewRetry(faulty)
	// The first backoff draw is uniform in (0, 10s] — far beyond the 30ms
	// deadline, so the deadline cuts mid-backoff.
	retry.BaseBackoff = 10 * time.Second
	retry.MaxBackoff = 10 * time.Second

	deadline := 30 * time.Millisecond
	ctx := resilience.NewContext(context.Background(), resilience.NewBudget(deadline, -1))
	_, d, err := retry.GetContext(ctx, "t", "k")
	if !errors.Is(err, resilience.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("modeled deadline error must match context.DeadlineExceeded, got %v", err)
	}
	if d != deadline {
		t.Fatalf("charged %v, want exactly the %v headroom — not the full jittered backoff", d, deadline)
	}
	if got := faulty.Injected(); got != 1 {
		t.Fatalf("store saw %d attempts, want 1 (no retry after the deadline)", got)
	}
	if st := retry.RetryStats(); st.Retries != 0 {
		t.Fatalf("Retries = %d, want 0 — the cut backoff is not a completed retry", st.Retries)
	}
}

// cancelingStore cancels the caller's context from inside a failing Get,
// modeling a cancellation that lands while Retry would sit out its backoff.
type cancelingStore struct {
	kv.Store
	cancel context.CancelFunc
	ops    int
}

func (c *cancelingStore) Get(table, hashKey string) ([]kv.Item, time.Duration, error) {
	c.ops++
	c.cancel()
	return nil, 5 * time.Millisecond, kv.ErrThrottled
}

// Satellite regression: a context cancelled mid-operation makes Retry
// return immediately — no backoff charged, no further attempts.
func TestRetryReturnsImmediatelyOnCancel(t *testing.T) {
	base := dynamodb.New(meter.NewLedger())
	if err := base.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cs := &cancelingStore{Store: base, cancel: cancel}
	retry := kv.NewRetry(cs)
	retry.BaseBackoff = 10 * time.Second // a completed backoff would be visible
	retry.MaxBackoff = 10 * time.Second

	_, d, err := retry.GetContext(ctx, "t", "k")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d != 5*time.Millisecond {
		t.Fatalf("charged %v, want only the 5ms op time — no backoff after cancel", d)
	}
	if cs.ops != 1 {
		t.Fatalf("store saw %d attempts, want 1", cs.ops)
	}
	if st := retry.RetryStats(); st.Retries != 0 {
		t.Fatalf("Retries = %d, want 0", st.Retries)
	}

	// A context cancelled before the call never reaches the store.
	_, d, err = retry.GetContext(ctx, "t", "k")
	if !errors.Is(err, context.Canceled) || d != 0 || cs.ops != 1 {
		t.Fatalf("pre-cancelled call: d=%v ops=%d err=%v, want 0/1/Canceled", d, cs.ops, err)
	}
}

// The shared per-query retry-token pool bounds retries ACROSS calls, not
// per call: tokens consumed by one operation are gone for the next.
func TestRetrySharedBudgetTokens(t *testing.T) {
	base := dynamodb.New(meter.NewLedger())
	if err := base.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	faulty := &chaos.EveryNth{Store: base, FailEvery: 1}
	retry := kv.NewRetry(faulty)
	retry.BaseBackoff = time.Millisecond

	budget := resilience.NewBudget(0, 1) // one retry token for the whole query
	ctx := resilience.NewContext(context.Background(), budget)
	_, _, err := retry.GetContext(ctx, "t", "k")
	if !errors.Is(err, resilience.ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", err)
	}
	if got := faulty.Injected(); got != 2 {
		t.Fatalf("store saw %d attempts, want 2 (initial + the single budgeted retry)", got)
	}
	// The pool is empty now: the next call fails without any retry.
	_, _, err = retry.GetContext(ctx, "t", "k")
	if !errors.Is(err, resilience.ErrRetryBudget) {
		t.Fatalf("second call err = %v, want ErrRetryBudget", err)
	}
	if got := faulty.Injected(); got != 3 {
		t.Fatalf("store saw %d attempts, want 3 (one attempt, no tokens left)", got)
	}
}

// shardKeys returns n hash keys routing to each of the given shards.
func shardKeys(shards, perShard int) [][]string {
	out := make([][]string, shards)
	for i := 0; ; i++ {
		key := fmt.Sprintf("key%05d", i)
		k := kv.ShardIndex(key, shards)
		if len(out[k]) < perShard {
			out[k] = append(out[k], key)
		}
		done := true
		for _, g := range out {
			if len(g) < perShard {
				done = false
				break
			}
		}
		if done {
			return out
		}
	}
}

// Satellite fix: scatter-mode error combining surfaces only the
// lowest-indexed shard's failure, but EVERY failing shard must count on
// its kv.shard.K.errors counter so the others stay visible in obs.
func TestScatterPerShardErrorCounters(t *testing.T) {
	mk := func(fail bool) kv.Store {
		base := dynamodb.New(meter.NewLedger())
		if err := base.CreateTable("t"); err != nil {
			t.Fatal(err)
		}
		if !fail {
			return base
		}
		return &chaos.EveryNth{Store: base, FailEvery: 1, Err: kv.ErrInternal}
	}
	sh := kv.NewShardedStores([]kv.Store{mk(false), mk(true), mk(true)})
	sink := newTestSink()
	sh.Sink = sink

	groups := shardKeys(3, 2)
	var keys []string
	for _, g := range groups {
		keys = append(keys, g...)
	}
	_, _, err := sh.BatchGet("t", keys)
	if !errors.Is(err, kv.ErrInternal) {
		t.Fatalf("err = %v, want the deterministic lowest-shard internal error", err)
	}
	if got := sink.get(kv.ShardErrorMetric(1)); got != 1 {
		t.Errorf("shard 1 errors = %d, want 1", got)
	}
	if got := sink.get(kv.ShardErrorMetric(2)); got != 1 {
		t.Errorf("shard 2 errors = %d, want 1 (previously invisible)", got)
	}
	if got := sink.get(kv.ShardErrorMetric(0)); got != 0 {
		t.Errorf("shard 0 errors = %d, want 0", got)
	}
}

// Breaker path: a persistently failing shard opens its breaker, the
// scatter degrades to a partial result carrying a DegradedError, the
// half-open probe is admitted, and recovery recloses the breaker —
// open → half-open → closed, all on deterministic operation counts.
func TestScatterBreakerDegradesToPartialResult(t *testing.T) {
	base0 := dynamodb.New(meter.NewLedger())
	base1 := dynamodb.New(meter.NewLedger())
	for _, b := range []kv.Store{base0, base1} {
		if err := b.CreateTable("t"); err != nil {
			t.Fatal(err)
		}
	}
	groups := shardKeys(2, 2)
	for k, base := range []kv.Store{base0, base1} {
		for _, key := range groups[k] {
			if _, err := base.Put("t", item(key, "r", attr("a", "v"))); err != nil {
				t.Fatal(err)
			}
		}
	}
	failing := &chaos.EveryNth{Store: base1, FailEvery: 1, Err: kv.ErrInternal}
	sh := kv.NewShardedStores([]kv.Store{base0, failing})
	br := resilience.NewBreakerSet(2)
	br.FailThreshold = 2
	br.OpenOps = 1
	sh.Breakers = br

	var keys []string
	for _, g := range groups {
		keys = append(keys, g...)
	}
	get := func() (map[string][]kv.Item, error) {
		out, _, err := sh.BatchGet("t", keys)
		return out, err
	}

	// Two failures open shard 1's breaker.
	for i := 0; i < 2; i++ {
		if _, err := get(); !errors.Is(err, kv.ErrInternal) {
			t.Fatalf("call %d err = %v, want internal", i, err)
		}
	}
	if st := br.State(1); st != resilience.BreakerOpen {
		t.Fatalf("state after failures = %v, want open", st)
	}

	// Open: the shard is shed and the call degrades to a partial result.
	out, err := get()
	de := kv.AsDegraded(err)
	if de == nil {
		t.Fatalf("err = %v, want DegradedError", err)
	}
	if len(de.Shards) != 1 || de.Shards[0] != 1 {
		t.Fatalf("degraded shards = %v, want [1]", de.Shards)
	}
	wantMissing := append([]string(nil), groups[1]...)
	sort.Strings(wantMissing)
	if fmt.Sprint(de.Keys) != fmt.Sprint(wantMissing) {
		t.Fatalf("degraded keys = %v, want %v", de.Keys, wantMissing)
	}
	for _, key := range groups[0] {
		if len(out[key]) != 1 {
			t.Fatalf("partial result lost healthy shard key %q", key)
		}
	}
	for _, key := range groups[1] {
		if len(out[key]) != 0 {
			t.Fatalf("partial result contains shed shard key %q", key)
		}
	}
	if st := br.State(1); st != resilience.BreakerHalfOpen {
		t.Fatalf("state after shed = %v, want half-open", st)
	}

	// The half-open probe fails and reopens the breaker.
	if _, err := get(); !errors.Is(err, kv.ErrInternal) {
		t.Fatalf("probe err = %v, want internal", err)
	}
	if st := br.State(1); st != resilience.BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}

	// One more shed brings it half-open; then the shard heals and the
	// successful probe recloses the breaker.
	if _, err := get(); kv.AsDegraded(err) == nil {
		t.Fatalf("err = %v, want degraded", err)
	}
	failing.FailEvery = 0 // heal
	if _, err := get(); err != nil {
		t.Fatalf("healed probe err = %v", err)
	}
	if st := br.State(1); st != resilience.BreakerClosed {
		t.Fatalf("state after healed probe = %v, want closed", st)
	}
	out, err = get()
	if err != nil {
		t.Fatalf("reclosed err = %v", err)
	}
	if len(out) != len(keys) {
		t.Fatalf("reclosed result has %d keys, want %d", len(out), len(keys))
	}
	st := br.Stats()
	if st.Opens != 2 || st.HalfOpens != 2 || st.Sheds != 2 {
		t.Fatalf("breaker stats = %+v, want {Opens:2 HalfOpens:2 Sheds:2}", st)
	}
}

// tailFixture is one scatter store under a straggler-heavy chaos plan.
type tailFixture struct {
	sh      *kv.Sharded
	ledgers []*meter.Ledger
	keys    []string
}

func newTailFixture(t *testing.T, seed int64, shards, perShard int, hedged bool) *tailFixture {
	t.Helper()
	stores := make([]kv.Store, shards)
	ledgers := make([]*meter.Ledger, shards)
	for k := 0; k < shards; k++ {
		ledgers[k] = meter.NewLedger()
		base := dynamodb.New(ledgers[k])
		// Independent per-shard injectors: each shard's fault schedule
		// depends only on its own op order, so the concurrent fan-out
		// stays deterministic.
		inj := chaos.NewInjector(chaos.Plan{
			Seed:  seed*1000 + int64(k),
			Rates: chaos.Rates{Straggle: 0.03, StraggleFactor: 8},
		})
		stores[k] = chaos.WrapStore(base, inj)
	}
	sh := kv.NewShardedStores(stores)
	if hedged {
		h := resilience.NewHedger(shards)
		h.Quantile = 0.9
		sh.Hedger = h
	}
	if err := sh.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	groups := shardKeys(shards, perShard)
	var keys []string
	val := make([]byte, 1024)
	for _, g := range groups {
		for _, key := range g {
			keys = append(keys, key)
			it := kv.Item{HashKey: key, RangeKey: "r", Attrs: []kv.Attr{{Name: "a", Values: []kv.Value{val}}}}
			if _, err := sh.Put("t", it); err != nil {
				t.Fatal(err)
			}
		}
	}
	sort.Strings(keys)
	return &tailFixture{sh: sh, ledgers: ledgers, keys: keys}
}

// digest renders a BatchGet result deterministically.
func digest(out map[string][]kv.Item) string {
	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += k + ":"
		for _, it := range out[k] {
			s += it.RangeKey + "/" + strconv.Itoa(int(it.Size())) + ","
		}
		s += ";"
	}
	return s
}

// percentile returns the nearest-rank q-th percentile of ds.
func percentile(ds []time.Duration, q float64) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[idx]
}

func (f *tailFixture) billedGets() int64 {
	var n int64
	for _, l := range f.ledgers {
		n += l.Snapshot().Get(f.sh.Backend(), "get").Calls
	}
	return n
}

// runTail drives calls cold scatter BatchGets and returns per-call modeled
// durations plus a result digest.
func runTail(t *testing.T, f *tailFixture, calls int) ([]time.Duration, string) {
	t.Helper()
	loadGets := f.billedGets()
	if loadGets != 0 {
		t.Fatalf("unexpected billed gets before the run: %d", loadGets)
	}
	var ds []time.Duration
	var dig string
	for c := 0; c < calls; c++ {
		out, d, err := f.sh.BatchGet("t", f.keys)
		if err != nil {
			t.Fatalf("call %d: %v", c, err)
		}
		ds = append(ds, d)
		g := digest(out)
		if c == 0 {
			dig = g
		} else if g != dig {
			t.Fatalf("call %d returned a different result", c)
		}
	}
	return ds, dig
}

// The acceptance-criterion differential: under a seeded straggler-heavy
// chaos plan, hedged scatter reads return byte-identical answers, improve
// p99 modeled latency at least 2x, stay within 10% billed-request
// overhead, and reproduce their counters exactly across runs.
func TestHedgedScatterDifferential(t *testing.T) {
	seed := tailSeed(t)
	const shards, perShard, calls = 8, 5, 160

	plain := newTailFixture(t, seed, shards, perShard, false)
	plainDs, plainDig := runTail(t, plain, calls)

	hedged := newTailFixture(t, seed, shards, perShard, true)
	hedgedDs, hedgedDig := runTail(t, hedged, calls)

	// Byte-identical answers.
	if plainDig != hedgedDig {
		t.Fatal("hedged run returned different answers")
	}

	// Tail latency: p99 improves at least 2x; p50 does not regress.
	p99Plain, p99Hedged := percentile(plainDs, 0.99), percentile(hedgedDs, 0.99)
	if p99Hedged*2 > p99Plain {
		t.Errorf("p99 %v -> %v: improvement below 2x", p99Plain, p99Hedged)
	}
	if p50p, p50h := percentile(plainDs, 0.50), percentile(hedgedDs, 0.50); p50h > p50p {
		t.Errorf("p50 regressed: %v -> %v", p50p, p50h)
	}

	// The hedge counters are nonzero and internally consistent.
	hs := hedged.sh.Hedger.Stats()
	if hs.Fired == 0 || hs.Won == 0 {
		t.Fatalf("hedge stats = %+v, want nonzero fired and won", hs)
	}
	if hs.Fired != hs.Won+hs.WastedBill {
		t.Errorf("hedge stats inconsistent: %+v (fired = won + wasted)", hs)
	}

	// Bill overhead: the hedged run issues at most 10% more billed get
	// requests than the clean run.
	gPlain, gHedged := plain.billedGets(), hedged.billedGets()
	if gHedged-gPlain != hs.Fired {
		t.Errorf("extra billed gets = %d, want the %d fired hedges", gHedged-gPlain, hs.Fired)
	}
	if overhead := float64(gHedged-gPlain) / float64(gPlain); overhead > 0.10 {
		t.Errorf("bill overhead %.1f%% exceeds 10%%", overhead*100)
	}

	// Determinism: an identical second hedged run reproduces durations and
	// counters exactly.
	hedged2 := newTailFixture(t, seed, shards, perShard, true)
	hedged2Ds, _ := runTail(t, hedged2, calls)
	if fmt.Sprint(hedgedDs) != fmt.Sprint(hedged2Ds) {
		t.Fatal("hedged modeled durations differ across identical runs")
	}
	if hs2 := hedged2.sh.Hedger.Stats(); hs2 != hs {
		t.Fatalf("hedge counters differ across identical runs: %+v vs %+v", hs2, hs)
	}
	t.Logf("seed %d: p50 %v->%v p99 %v->%v fired=%d won=%d wasted=%d bill %d->%d (+%.1f%%)",
		seed, percentile(plainDs, 0.5), percentile(hedgedDs, 0.5), p99Plain, p99Hedged,
		hs.Fired, hs.Won, hs.WastedBill, gPlain, gHedged, 100*float64(gHedged-gPlain)/float64(gPlain))
}
