package s3

import (
	"errors"
	"testing"

	"repro/internal/meter"
)

func TestHeadMissing(t *testing.T) {
	s := newSvc(t)
	if _, _, err := s.Head("wh", "nope"); !errors.Is(err, ErrNoSuchKey) {
		t.Errorf("Head missing = %v", err)
	}
	if _, _, err := s.Head("nope", "k"); !errors.Is(err, ErrNoSuchBucket) {
		t.Errorf("Head missing bucket = %v", err)
	}
}

func TestListEmptyBucketAndMissingBucket(t *testing.T) {
	s := newSvc(t)
	keys, _, err := s.List("wh", "")
	if err != nil || len(keys) != 0 {
		t.Errorf("List empty = %v, %v", keys, err)
	}
	if _, _, err := s.List("nope", ""); !errors.Is(err, ErrNoSuchBucket) {
		t.Errorf("List missing bucket = %v", err)
	}
}

func TestOverwriteReplacesMetadata(t *testing.T) {
	s := newSvc(t)
	s.Put("wh", "k", []byte("v1"), map[string]string{"a": "1"})
	s.Put("wh", "k", []byte("v2"), nil)
	o, _, _ := s.Get("wh", "k")
	if o.Meta != nil {
		t.Errorf("metadata survived overwrite: %v", o.Meta)
	}
	if o.Version != 2 {
		t.Errorf("version = %d", o.Version)
	}
}

func TestZeroByteObject(t *testing.T) {
	s := newSvc(t)
	if _, err := s.Put("wh", "empty", nil, nil); err != nil {
		t.Fatal(err)
	}
	o, d, err := s.Get("wh", "empty")
	if err != nil || len(o.Data) != 0 {
		t.Errorf("Get empty = %v, %v", o, err)
	}
	if d < DefaultPerf().RTT {
		t.Errorf("latency below RTT: %v", d)
	}
	if s.BucketBytes("wh") != 0 {
		t.Errorf("bytes = %d", s.BucketBytes("wh"))
	}
}

func TestBucketsListing(t *testing.T) {
	s := New(meter.NewLedger())
	for _, b := range []string{"zeta", "alpha"} {
		if err := s.CreateBucket(b); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Buckets()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Errorf("Buckets = %v", got)
	}
	if s.BucketBytes("missing") != 0 || s.ObjectCount("missing") != 0 {
		t.Error("missing bucket gauges non-zero")
	}
}
