// Package s3 simulates Amazon Simple Storage Service, the file store
// holding the warehouse's XML documents and query results (Section 6).
//
// S3 stores raw objects in named buckets. Each object has a unique name
// within its bucket, system metadata (size, version) and optional
// user-defined metadata. Following the paper, the warehouse keeps the whole
// dataset in a single bucket, since bucket count does not affect S3
// performance.
//
// The latency model charges a fixed round trip plus payload transfer at a
// configurable bandwidth; every request is metered for billing (STput$,
// STget$ of Table 3).
package s3

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/meter"
)

// Backend is the service name used for metering and billing.
const Backend = "s3"

// Errors returned by the service.
var (
	ErrNoSuchBucket = errors.New("s3: no such bucket")
	ErrBucketExists = errors.New("s3: bucket already exists")
	ErrNoSuchKey    = errors.New("s3: no such key")
	ErrEmptyKey     = errors.New("s3: empty object key")
	// ErrTransient is the retriable "503 Slow Down" class of failure; the
	// chaos layer injects it in front of Get/Put/Delete. Callers that do
	// not retry rely on queue redelivery to absorb it.
	ErrTransient = errors.New("s3: service unavailable (transient, slow down)")
)

// Perf parameterizes the latency model.
type Perf struct {
	RTT       time.Duration // per-request round trip
	Bandwidth float64       // payload bytes per second
}

// DefaultPerf models intra-region S3 access from EC2.
func DefaultPerf() Perf {
	return Perf{RTT: 20 * time.Millisecond, Bandwidth: 40 << 20}
}

// Object is a stored blob with its metadata.
type Object struct {
	Key      string
	Data     []byte
	Meta     map[string]string // user-defined metadata
	Version  int64             // system-defined version, starts at 1
	Modified int64             // logical modification counter of the service
}

type bucket struct {
	objects map[string]Object
	bytes   int64
}

// Service is an in-memory S3 endpoint. It is safe for concurrent use.
type Service struct {
	perf   Perf
	ledger *meter.Ledger

	mu      sync.RWMutex
	buckets map[string]*bucket
	modSeq  int64
}

// New returns a simulated S3 endpoint recording into ledger.
func New(ledger *meter.Ledger) *Service {
	return NewWithPerf(ledger, DefaultPerf())
}

// NewWithPerf returns a simulated S3 endpoint with a custom latency model.
func NewWithPerf(ledger *meter.Ledger, perf Perf) *Service {
	if ledger == nil {
		panic("s3: ledger is required")
	}
	return &Service{perf: perf, ledger: ledger, buckets: make(map[string]*bucket)}
}

func (s *Service) transfer(bytes int64) time.Duration {
	d := s.perf.RTT
	if s.perf.Bandwidth > 0 {
		d += time.Duration(float64(bytes) / s.perf.Bandwidth * float64(time.Second))
	}
	return d
}

// CreateBucket creates an empty bucket.
func (s *Service) CreateBucket(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[name]; ok {
		return fmt.Errorf("%w: %q", ErrBucketExists, name)
	}
	s.buckets[name] = &bucket{objects: make(map[string]Object)}
	return nil
}

// Buckets lists bucket names, sorted.
func (s *Service) Buckets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.buckets))
	for n := range s.buckets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Put stores (or overwrites) an object and returns the modeled latency.
func (s *Service) Put(bkt, key string, data []byte, userMeta map[string]string) (time.Duration, error) {
	if key == "" {
		return 0, ErrEmptyKey
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bkt]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchBucket, bkt)
	}
	s.modSeq++
	version := int64(1)
	if old, ok := b.objects[key]; ok {
		b.bytes -= int64(len(old.Data))
		version = old.Version + 1
	}
	var meta map[string]string
	if len(userMeta) > 0 {
		meta = make(map[string]string, len(userMeta))
		for k, v := range userMeta {
			meta[k] = v
		}
	}
	b.objects[key] = Object{
		Key:      key,
		Data:     append([]byte(nil), data...),
		Meta:     meta,
		Version:  version,
		Modified: s.modSeq,
	}
	b.bytes += int64(len(data))
	s.ledger.Record(Backend, "put", 1, 1, int64(len(data)))
	return s.transfer(int64(len(data))), nil
}

// Get retrieves an object and returns the modeled latency.
func (s *Service) Get(bkt, key string) (Object, time.Duration, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bkt]
	if !ok {
		return Object{}, 0, fmt.Errorf("%w: %q", ErrNoSuchBucket, bkt)
	}
	o, ok := b.objects[key]
	if !ok {
		return Object{}, 0, fmt.Errorf("%w: %s/%s", ErrNoSuchKey, bkt, key)
	}
	cp := o
	cp.Data = append([]byte(nil), o.Data...)
	if o.Meta != nil {
		cp.Meta = make(map[string]string, len(o.Meta))
		for k, v := range o.Meta {
			cp.Meta[k] = v
		}
	}
	s.ledger.Record(Backend, "get", 1, 1, int64(len(o.Data)))
	return cp, s.transfer(int64(len(o.Data))), nil
}

// Head returns an object's metadata without its payload.
func (s *Service) Head(bkt, key string) (size int64, version int64, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bkt]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrNoSuchBucket, bkt)
	}
	o, ok := b.objects[key]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %s/%s", ErrNoSuchKey, bkt, key)
	}
	s.ledger.Record(Backend, "head", 1, 1, 0)
	return int64(len(o.Data)), o.Version, nil
}

// Delete removes an object. Deleting a missing key is not an error,
// matching S3 semantics.
func (s *Service) Delete(bkt, key string) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bkt]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchBucket, bkt)
	}
	if old, ok := b.objects[key]; ok {
		b.bytes -= int64(len(old.Data))
		delete(b.objects, key)
	}
	s.ledger.Record(Backend, "delete", 1, 1, 0)
	return s.perf.RTT, nil
}

// List returns the keys in a bucket with the given prefix, sorted.
func (s *Service) List(bkt, prefix string) ([]string, time.Duration, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bkt]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrNoSuchBucket, bkt)
	}
	var keys []string
	for k := range b.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	s.ledger.Record(Backend, "list", 1, 1, 0)
	return keys, s.perf.RTT, nil
}

// BucketBytes returns the payload bytes stored in a bucket.
func (s *Service) BucketBytes(bkt string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if b, ok := s.buckets[bkt]; ok {
		return b.bytes
	}
	return 0
}

// TotalBytes returns the payload bytes stored across all buckets; this is
// the s(D) input of the monthly storage cost (Section 7.1).
func (s *Service) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, b := range s.buckets {
		n += b.bytes
	}
	return n
}

// ObjectCount returns the number of objects in a bucket.
func (s *Service) ObjectCount(bkt string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if b, ok := s.buckets[bkt]; ok {
		return int64(len(b.objects))
	}
	return 0
}
