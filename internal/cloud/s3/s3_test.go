package s3

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/meter"
)

func newSvc(t *testing.T) *Service {
	t.Helper()
	s := New(meter.NewLedger())
	if err := s.CreateBucket("wh"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newSvc(t)
	data := []byte("<painting/>")
	if _, err := s.Put("wh", "delacroix.xml", data, map[string]string{"kind": "xml"}); err != nil {
		t.Fatal(err)
	}
	o, _, err := s.Get("wh", "delacroix.xml")
	if err != nil {
		t.Fatal(err)
	}
	if string(o.Data) != string(data) {
		t.Errorf("data = %q", o.Data)
	}
	if o.Meta["kind"] != "xml" {
		t.Errorf("meta = %v", o.Meta)
	}
	if o.Version != 1 {
		t.Errorf("version = %d, want 1", o.Version)
	}
}

func TestVersionIncrementsOnOverwrite(t *testing.T) {
	s := newSvc(t)
	s.Put("wh", "k", []byte("v1"), nil)
	s.Put("wh", "k", []byte("v2"), nil)
	o, _, _ := s.Get("wh", "k")
	if o.Version != 2 || string(o.Data) != "v2" {
		t.Errorf("got version=%d data=%q", o.Version, o.Data)
	}
}

func TestErrors(t *testing.T) {
	s := newSvc(t)
	if err := s.CreateBucket("wh"); !errors.Is(err, ErrBucketExists) {
		t.Errorf("duplicate bucket: %v", err)
	}
	if _, err := s.Put("nope", "k", nil, nil); !errors.Is(err, ErrNoSuchBucket) {
		t.Errorf("missing bucket put: %v", err)
	}
	if _, _, err := s.Get("wh", "missing"); !errors.Is(err, ErrNoSuchKey) {
		t.Errorf("missing key: %v", err)
	}
	if _, err := s.Put("wh", "", nil, nil); !errors.Is(err, ErrEmptyKey) {
		t.Errorf("empty key: %v", err)
	}
}

func TestDeleteIsIdempotent(t *testing.T) {
	s := newSvc(t)
	s.Put("wh", "k", []byte("x"), nil)
	if _, err := s.Delete("wh", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("wh", "k"); err != nil {
		t.Errorf("second delete: %v", err)
	}
	if _, _, err := s.Get("wh", "k"); !errors.Is(err, ErrNoSuchKey) {
		t.Errorf("get after delete: %v", err)
	}
	if got := s.BucketBytes("wh"); got != 0 {
		t.Errorf("BucketBytes = %d, want 0", got)
	}
}

func TestListPrefix(t *testing.T) {
	s := newSvc(t)
	for _, k := range []string{"docs/a.xml", "docs/b.xml", "results/r1"} {
		s.Put("wh", k, []byte("x"), nil)
	}
	keys, _, err := s.List("wh", "docs/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "docs/a.xml" || keys[1] != "docs/b.xml" {
		t.Errorf("List = %v", keys)
	}
	all, _, _ := s.List("wh", "")
	if len(all) != 3 {
		t.Errorf("List(all) = %v", all)
	}
}

func TestHead(t *testing.T) {
	s := newSvc(t)
	s.Put("wh", "k", []byte("12345"), nil)
	size, version, err := s.Head("wh", "k")
	if err != nil || size != 5 || version != 1 {
		t.Errorf("Head = (%d, %d, %v)", size, version, err)
	}
}

func TestByteAccounting(t *testing.T) {
	s := newSvc(t)
	s.CreateBucket("other")
	s.Put("wh", "a", make([]byte, 100), nil)
	s.Put("wh", "b", make([]byte, 50), nil)
	s.Put("other", "c", make([]byte, 25), nil)
	s.Put("wh", "a", make([]byte, 10), nil) // overwrite shrinks
	if got := s.BucketBytes("wh"); got != 60 {
		t.Errorf("BucketBytes = %d, want 60", got)
	}
	if got := s.TotalBytes(); got != 85 {
		t.Errorf("TotalBytes = %d, want 85", got)
	}
	if got := s.ObjectCount("wh"); got != 2 {
		t.Errorf("ObjectCount = %d, want 2", got)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := newSvc(t)
	s.Put("wh", "k", []byte("orig"), map[string]string{"m": "1"})
	o, _, _ := s.Get("wh", "k")
	o.Data[0] = 'X'
	o.Meta["m"] = "2"
	again, _, _ := s.Get("wh", "k")
	if string(again.Data) != "orig" || again.Meta["m"] != "1" {
		t.Error("Get result aliases stored object")
	}
}

func TestLatencyModel(t *testing.T) {
	led := meter.NewLedger()
	s := NewWithPerf(led, Perf{RTT: 10 * time.Millisecond, Bandwidth: 1 << 20})
	s.CreateBucket("b")
	d, _ := s.Put("b", "k", make([]byte, 1<<20), nil)
	want := 10*time.Millisecond + time.Second
	if d != want {
		t.Errorf("put latency = %v, want %v", d, want)
	}
	_, d, _ = s.Get("b", "k")
	if d != want {
		t.Errorf("get latency = %v, want %v", d, want)
	}
}

func TestMetering(t *testing.T) {
	led := meter.NewLedger()
	s := New(led)
	s.CreateBucket("b")
	s.Put("b", "k", make([]byte, 10), nil)
	s.Get("b", "k")
	s.Get("b", "k")
	s.List("b", "")
	u := led.Snapshot()
	if got := u.Get("s3", "put"); got.Calls != 1 || got.Bytes != 10 {
		t.Errorf("put = %+v", got)
	}
	if got := u.Get("s3", "get"); got.Calls != 2 || got.Bytes != 20 {
		t.Errorf("get = %+v", got)
	}
	if got := u.Get("s3", "list"); got.Calls != 1 {
		t.Errorf("list = %+v", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := newSvc(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []string{"a", "b", "c", "d"}[w]
			for i := 0; i < 200; i++ {
				s.Put("wh", key, []byte{byte(i)}, nil)
				s.Get("wh", key)
			}
		}(w)
	}
	wg.Wait()
	if got := s.ObjectCount("wh"); got != 4 {
		t.Errorf("ObjectCount = %d, want 4", got)
	}
}
