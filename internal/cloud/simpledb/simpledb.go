// Package simpledb simulates Amazon SimpleDB, the key-value store used by
// the paper's predecessor system [8] and compared against DynamoDB in
// Section 8.4 (Tables 7 and 8).
//
// The simulation captures the three properties that explain the measured
// gap with DynamoDB:
//
//   - attribute values are UTF-8 text of at most 1 KB — no binary values,
//     so structural-ID sets cannot be stored compressed and index entries
//     fragment into many more, smaller items;
//   - requests have a markedly higher round-trip time and the service
//     absorbs far fewer concurrent requests (lower capacity);
//   - there is no batch get; batch put is limited to 25 items.
package simpledb

import (
	"time"

	"repro/internal/cloud/kv"
	"repro/internal/meter"
)

// Backend is the service name used for metering and billing.
const Backend = "simpledb"

// MaxValueBytes is SimpleDB's 1 KB attribute value cap.
const MaxValueBytes = 1 << 10

// DefaultPerf models SimpleDB's 2012 performance relative to DynamoDB:
// higher latency, much lower sustained throughput.
func DefaultPerf() kv.Perf {
	return kv.Perf{
		RTT:                30 * time.Millisecond,
		WriteUnitBytes:     1 << 10,
		ReadUnitBytes:      4 << 10,
		WriteCapacityUnits: 300,
		ReadCapacityUnits:  1200,
		ClientWriteUnits:   40,
		ClientReadUnits:    160,
	}
}

// New returns a simulated SimpleDB endpoint recording into ledger.
func New(ledger *meter.Ledger) *kv.MemStore {
	return NewWithPerf(ledger, DefaultPerf())
}

// NewWithPerf returns a simulated SimpleDB endpoint with a custom
// performance model.
func NewWithPerf(ledger *meter.Ledger, perf kv.Perf) *kv.MemStore {
	return kv.NewMemStore(kv.Config{
		Backend: Backend,
		Limits: kv.Limits{
			// One item may hold at most 256 attribute-value pairs of
			// at most 1 KB each.
			MaxItemBytes:   256 << 10,
			MaxValueBytes:  MaxValueBytes,
			BatchPutItems:  25,
			BatchGetKeys:   1, // no batch get in SimpleDB
			SupportsBinary: false,
		},
		Perf: perf,
		// SimpleDB bills 45 bytes per item name plus 45 bytes per
		// attribute name-value pair.
		PerItemOverhead:      45,
		PerAttrValueOverhead: 45,
		Ledger:               ledger,
	})
}
