package simpledb

import (
	"testing"

	"repro/internal/cloud/dynamodb"
	"repro/internal/meter"
)

func TestConfiguration(t *testing.T) {
	s := New(meter.NewLedger())
	if s.Backend() != Backend {
		t.Errorf("backend = %q", s.Backend())
	}
	lim := s.Limits()
	if lim.MaxValueBytes != 1<<10 {
		t.Errorf("value cap = %d, want 1KB", lim.MaxValueBytes)
	}
	if lim.SupportsBinary {
		t.Error("SimpleDB must reject binary values")
	}
	if lim.BatchGetKeys != 1 {
		t.Errorf("batch get = %d, want 1 (no batch get in SimpleDB)", lim.BatchGetKeys)
	}
}

func TestSlowerThanDynamoDB(t *testing.T) {
	sdb, dyn := DefaultPerf(), dynamodb.DefaultPerf()
	if sdb.RTT <= dyn.RTT {
		t.Error("SimpleDB round trip must exceed DynamoDB's")
	}
	if sdb.WriteCapacityUnits >= dyn.WriteCapacityUnits {
		t.Error("SimpleDB capacity must be below DynamoDB's")
	}
	if sdb.ClientWriteUnits >= dyn.ClientWriteUnits {
		t.Error("SimpleDB per-client throughput must be below DynamoDB's")
	}
}
