package sqs

import (
	"testing"
	"time"

	"repro/internal/meter"
)

// Long polling bills one request per ReceiveWait call, regardless of how
// many internal wake-ups happen — the reason the live workers can idle
// cheaply.
func TestReceiveWaitBilledOnce(t *testing.T) {
	led := meter.NewLedger()
	s := New(led)
	s.CreateQueue("q")
	// A leased message forces several internal wake-ups while waiting.
	s.Send("q", "held")
	m, _, _ := s.Receive("q", 25*time.Millisecond)
	if m == nil {
		t.Fatal("no message")
	}
	before := led.Snapshot().Get(Backend, "receive").Calls
	got, _, err := s.ReceiveWait("q", time.Minute, 100*time.Millisecond)
	if err != nil || got == nil {
		t.Fatalf("ReceiveWait = %v, %v", got, err)
	}
	after := led.Snapshot().Get(Backend, "receive").Calls
	if after-before != 1 {
		t.Errorf("long poll billed %d receives, want 1", after-before)
	}
}

func TestChangeVisibilityBilled(t *testing.T) {
	led := meter.NewLedger()
	s := New(led)
	s.CreateQueue("q")
	s.Send("q", "x")
	m, _, _ := s.Receive("q", time.Minute)
	s.ChangeVisibility("q", m.Receipt, time.Minute)
	if got := led.Snapshot().Get(Backend, "changeVisibility").Calls; got != 1 {
		t.Errorf("changeVisibility calls = %d", got)
	}
}

func TestSendPayloadBytesMetered(t *testing.T) {
	led := meter.NewLedger()
	s := New(led)
	s.CreateQueue("q")
	s.Send("q", "0123456789")
	if got := led.Snapshot().Get(Backend, "send").Bytes; got != 10 {
		t.Errorf("send bytes = %d, want 10", got)
	}
}
