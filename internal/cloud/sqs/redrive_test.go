package sqs

import (
	"testing"
	"time"

	"repro/internal/meter"
)

func newDLQ(t *testing.T, maxReceive int) *Service {
	t.Helper()
	s := New(meter.NewLedger())
	for _, q := range []string{"work", "dead"} {
		if err := s.CreateQueue(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetRedrivePolicy("work", "dead", maxReceive); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPoisonMessageMovesToDeadLetterQueue(t *testing.T) {
	s := newDLQ(t, 2)
	s.Send("work", "poison")
	// Two failed deliveries (leases expire immediately via zero release).
	for i := 0; i < 2; i++ {
		m, _, _ := s.Receive("work", time.Minute)
		if m == nil {
			t.Fatalf("delivery %d missing", i)
		}
		s.ChangeVisibility("work", m.Receipt, 0) // simulate failure/crash
	}
	// Third receive must find nothing: the message was redriven.
	if m, _, _ := s.Receive("work", time.Minute); m != nil {
		t.Fatalf("poison message delivered a third time: %+v", m)
	}
	if got := s.Len("work"); got != 0 {
		t.Errorf("work queue still holds %d", got)
	}
	if got := s.Len("dead"); got != 1 {
		t.Fatalf("dead-letter queue holds %d, want 1", got)
	}
	dm, _, _ := s.Receive("dead", time.Minute)
	if dm == nil || dm.Body != "poison" {
		t.Errorf("dead letter = %+v", dm)
	}
}

func TestHealthyMessagesUnaffectedByRedrive(t *testing.T) {
	s := newDLQ(t, 2)
	s.Send("work", "fine")
	m, _, _ := s.Receive("work", time.Minute)
	if _, err := s.Delete("work", m.Receipt); err != nil {
		t.Fatal(err)
	}
	if s.Len("dead") != 0 {
		t.Error("successful message redriven")
	}
}

func TestReceiveWaitRedrives(t *testing.T) {
	s := newDLQ(t, 1)
	s.Send("work", "poison")
	m, _, _ := s.Receive("work", 10*time.Millisecond)
	if m == nil {
		t.Fatal("first delivery missing")
	}
	time.Sleep(20 * time.Millisecond)
	// The long poll must redrive rather than deliver, then time out.
	m2, _, err := s.ReceiveWait("work", time.Minute, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != nil {
		t.Fatalf("exhausted message delivered: %+v", m2)
	}
	if s.Len("dead") != 1 {
		t.Errorf("dead queue = %d", s.Len("dead"))
	}
}

func TestRedrivePolicyValidation(t *testing.T) {
	s := New(meter.NewLedger())
	s.CreateQueue("a")
	if err := s.SetRedrivePolicy("a", "missing", 3); err == nil {
		t.Error("missing dead-letter queue accepted")
	}
	if err := s.SetRedrivePolicy("missing", "a", 3); err == nil {
		t.Error("missing source queue accepted")
	}
	if err := s.SetRedrivePolicy("a", "a", 3); err == nil {
		t.Error("self redrive accepted")
	}
	s.CreateQueue("b")
	if err := s.SetRedrivePolicy("a", "b", 0); err == nil {
		t.Error("zero maxReceive accepted")
	}
}
