// Package sqs simulates Amazon Simple Queue Service, which the warehouse
// uses for reliable asynchronous communication between its modules
// (Section 6): the front end feeds the loader request queue and the query
// request queue; the query processors feed the query response queue.
//
// Semantics follow SQS:
//
//   - Send enqueues a message;
//   - Receive leases the oldest visible message for a visibility timeout;
//     until the lease expires the message is invisible to other receivers;
//   - Delete acknowledges a message using the receipt handle of its
//     current lease;
//   - ChangeVisibility renews a lease.
//
// If a virtual instance crashes without deleting its message, the lease
// expires and the message becomes visible again, so another instance takes
// over the job — the fault-tolerance mechanism of Section 3. A Delete with
// a stale receipt (the lease expired and someone else holds the message)
// fails with ErrStaleReceipt rather than acknowledging work the caller no
// longer owns.
//
// Visibility is driven by real time, because the warehouse pipeline runs on
// real goroutines; each API call additionally returns a modeled latency for
// the virtual-time accounting, and is metered for billing (QS$ per request,
// Table 3).
package sqs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/meter"
)

// Backend is the service name used for metering and billing.
const Backend = "sqs"

// Errors returned by the service.
var (
	ErrNoSuchQueue    = errors.New("sqs: no such queue")
	ErrQueueExists    = errors.New("sqs: queue already exists")
	ErrStaleReceipt   = errors.New("sqs: receipt handle is stale")
	ErrEmptyQueueName = errors.New("sqs: empty queue name")
)

// DefaultRTT is the modeled latency of one SQS API call.
const DefaultRTT = 8 * time.Millisecond

// Message is a received message. Body carries the application payload;
// Receipt must be presented to Delete or ChangeVisibility.
type Message struct {
	ID           string
	Body         string
	Receipt      string
	ReceiveCount int
}

type storedMessage struct {
	id           string
	body         string
	seq          int64
	visibleAt    time.Time
	receipt      string // receipt of the current lease, "" if never received
	receiveCount int
}

type queue struct {
	messages map[string]*storedMessage
	notify   chan struct{}
	// redrive, when set, moves a message to the dead-letter queue once it
	// has been received maxReceive times without being deleted.
	redrive    string
	maxReceive int
}

// Service is an in-memory SQS endpoint. It is safe for concurrent use.
type Service struct {
	rtt    time.Duration
	ledger *meter.Ledger
	now    func() time.Time

	mu     sync.Mutex
	queues map[string]*queue
	seq    int64
}

// New returns a simulated SQS endpoint recording into ledger.
func New(ledger *meter.Ledger) *Service {
	if ledger == nil {
		panic("sqs: ledger is required")
	}
	return &Service{rtt: DefaultRTT, ledger: ledger, now: time.Now, queues: make(map[string]*queue)}
}

// SetClock overrides the time source (tests only).
func (s *Service) SetClock(now func() time.Time) { s.now = now }

// CreateQueue creates an empty queue.
func (s *Service) CreateQueue(name string) error {
	if name == "" {
		return ErrEmptyQueueName
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.queues[name]; ok {
		return fmt.Errorf("%w: %q", ErrQueueExists, name)
	}
	s.queues[name] = &queue{
		messages: make(map[string]*storedMessage),
		notify:   make(chan struct{}, 1),
	}
	return nil
}

// SetRedrivePolicy configures a dead-letter queue: once a message of
// queueName has been received maxReceive times without being deleted, the
// next receive moves it to deadLetterQueue instead of delivering it — the
// SQS mechanism that stops poison messages (e.g. an unparsable document)
// from being retried forever. Both queues must exist.
func (s *Service) SetRedrivePolicy(queueName, deadLetterQueue string, maxReceive int) error {
	if maxReceive < 1 {
		return fmt.Errorf("sqs: maxReceive must be at least 1")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	q, err := s.getQueue(queueName)
	if err != nil {
		return err
	}
	if _, err := s.getQueue(deadLetterQueue); err != nil {
		return err
	}
	if deadLetterQueue == queueName {
		return fmt.Errorf("sqs: queue cannot be its own dead-letter queue")
	}
	q.redrive = deadLetterQueue
	q.maxReceive = maxReceive
	return nil
}

// redriveLocked moves m to q's dead-letter queue if its receive count has
// exhausted the redrive policy. It reports whether the message moved.
func (s *Service) redriveLocked(q *queue, m *storedMessage) bool {
	if q.redrive == "" || m.receiveCount < q.maxReceive {
		return false
	}
	dlq, err := s.getQueue(q.redrive)
	if err != nil {
		return false
	}
	delete(q.messages, m.id)
	s.seq++
	moved := &storedMessage{id: m.id, body: m.body, seq: s.seq, visibleAt: s.now()}
	dlq.messages[m.id] = moved
	select {
	case dlq.notify <- struct{}{}:
	default:
	}
	return true
}

// Queues lists queue names, sorted.
func (s *Service) Queues() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.queues))
	for n := range s.queues {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (s *Service) getQueue(name string) (*queue, error) {
	q, ok := s.queues[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchQueue, name)
	}
	return q, nil
}

// Send enqueues a message and returns its ID and the modeled latency.
func (s *Service) Send(queueName, body string) (string, time.Duration, error) {
	s.mu.Lock()
	q, err := s.getQueue(queueName)
	if err != nil {
		s.mu.Unlock()
		return "", 0, err
	}
	s.seq++
	id := fmt.Sprintf("m-%08d", s.seq)
	q.messages[id] = &storedMessage{id: id, body: body, seq: s.seq, visibleAt: s.now()}
	s.ledger.Record(Backend, "send", 1, 1, int64(len(body)))
	notify := q.notify
	s.mu.Unlock()

	select {
	case notify <- struct{}{}:
	default:
	}
	return id, s.rtt, nil
}

// Receive leases the oldest visible message for the given visibility
// timeout. It returns (nil, latency, nil) when no message is visible; the
// empty poll is still metered, as AWS bills it.
func (s *Service) Receive(queueName string, visibility time.Duration) (*Message, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, err := s.getQueue(queueName)
	if err != nil {
		return nil, 0, err
	}
	now := s.now()
	s.ledger.Record(Backend, "receive", 1, 1, 0)
	for {
		var oldest *storedMessage
		for _, m := range q.messages {
			if m.visibleAt.After(now) {
				continue
			}
			if oldest == nil || m.seq < oldest.seq {
				oldest = m
			}
		}
		if oldest == nil {
			return nil, s.rtt, nil
		}
		if s.redriveLocked(q, oldest) {
			continue // exhausted message moved to the dead-letter queue
		}
		oldest.visibleAt = now.Add(visibility)
		oldest.receiveCount++
		s.seq++
		oldest.receipt = fmt.Sprintf("r-%08d", s.seq)
		return &Message{
			ID:           oldest.id,
			Body:         oldest.body,
			Receipt:      oldest.receipt,
			ReceiveCount: oldest.receiveCount,
		}, s.rtt, nil
	}
}

// ReceiveWait is a long poll: it behaves like Receive but waits up to
// maxWait for a message to become visible. Like SQS long polling, the whole
// wait is one billed request.
func (s *Service) ReceiveWait(queueName string, visibility, maxWait time.Duration) (*Message, time.Duration, error) {
	deadline := time.Now().Add(maxWait)
	first := true
	for {
		s.mu.Lock()
		q, err := s.getQueue(queueName)
		if err != nil {
			s.mu.Unlock()
			return nil, 0, err
		}
		notify := q.notify
		now := s.now()
		var oldest *storedMessage
		var nextVisible time.Time
		for {
			oldest = nil
			for _, m := range q.messages {
				if m.visibleAt.After(now) {
					if nextVisible.IsZero() || m.visibleAt.Before(nextVisible) {
						nextVisible = m.visibleAt
					}
					continue
				}
				if oldest == nil || m.seq < oldest.seq {
					oldest = m
				}
			}
			if oldest == nil || !s.redriveLocked(q, oldest) {
				break
			}
		}
		if first {
			s.ledger.Record(Backend, "receive", 1, 1, 0)
			first = false
		}
		if oldest != nil {
			oldest.visibleAt = now.Add(visibility)
			oldest.receiveCount++
			s.seq++
			oldest.receipt = fmt.Sprintf("r-%08d", s.seq)
			msg := &Message{
				ID:           oldest.id,
				Body:         oldest.body,
				Receipt:      oldest.receipt,
				ReceiveCount: oldest.receiveCount,
			}
			s.mu.Unlock()
			return msg, s.rtt, nil
		}
		s.mu.Unlock()

		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, s.rtt, nil
		}
		// Wake up on a new send, when an existing lease may expire, or at
		// the poll deadline, whichever comes first.
		wait := remaining
		if !nextVisible.IsZero() {
			if until := time.Until(nextVisible); until < wait {
				wait = until
			}
		}
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		timer := time.NewTimer(wait)
		select {
		case <-notify:
		case <-timer.C:
		}
		timer.Stop()
	}
}

// Delete acknowledges a message using the receipt handle of its current
// lease. Deleting with a receipt that no longer identifies a live lease —
// because the lease expired and another receiver took the message over, or
// because the message was already deleted — fails with ErrStaleReceipt.
func (s *Service) Delete(queueName, receipt string) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, err := s.getQueue(queueName)
	if err != nil {
		return 0, err
	}
	s.ledger.Record(Backend, "delete", 1, 1, 0)
	for id, m := range q.messages {
		if m.receipt == receipt && receipt != "" {
			delete(q.messages, id)
			return s.rtt, nil
		}
	}
	return s.rtt, fmt.Errorf("%w (receipt %q)", ErrStaleReceipt, receipt)
}

// ChangeVisibility renews (or shortens) the current lease of a message.
func (s *Service) ChangeVisibility(queueName, receipt string, visibility time.Duration) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, err := s.getQueue(queueName)
	if err != nil {
		return 0, err
	}
	s.ledger.Record(Backend, "changeVisibility", 1, 1, 0)
	for _, m := range q.messages {
		if m.receipt == receipt && receipt != "" {
			m.visibleAt = s.now().Add(visibility)
			if visibility <= 0 {
				// Releasing the lease: wake a waiting receiver.
				select {
				case q.notify <- struct{}{}:
				default:
				}
			}
			return s.rtt, nil
		}
	}
	return s.rtt, fmt.Errorf("%w (receipt %q)", ErrStaleReceipt, receipt)
}

// Len returns the number of messages in the queue (visible or leased).
func (s *Service) Len(queueName string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.queues[queueName]; ok {
		return len(q.messages)
	}
	return 0
}
