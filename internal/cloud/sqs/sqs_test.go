package sqs

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/meter"
)

func newSvc(t *testing.T) *Service {
	t.Helper()
	s := New(meter.NewLedger())
	if err := s.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSendReceiveDelete(t *testing.T) {
	s := newSvc(t)
	id, _, err := s.Send("q", "load doc1.xml")
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := s.Receive("q", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.ID != id || m.Body != "load doc1.xml" || m.ReceiveCount != 1 {
		t.Fatalf("received %+v", m)
	}
	if _, err := s.Delete("q", m.Receipt); err != nil {
		t.Fatal(err)
	}
	if got := s.Len("q"); got != 0 {
		t.Errorf("Len = %d, want 0", got)
	}
}

func TestReceiveOrderIsFIFO(t *testing.T) {
	s := newSvc(t)
	s.Send("q", "first")
	s.Send("q", "second")
	m1, _, _ := s.Receive("q", time.Minute)
	m2, _, _ := s.Receive("q", time.Minute)
	if m1.Body != "first" || m2.Body != "second" {
		t.Errorf("order = %q, %q", m1.Body, m2.Body)
	}
}

func TestLeasedMessageInvisible(t *testing.T) {
	s := newSvc(t)
	s.Send("q", "job")
	m, _, _ := s.Receive("q", time.Minute)
	if m == nil {
		t.Fatal("no message")
	}
	m2, _, _ := s.Receive("q", time.Minute)
	if m2 != nil {
		t.Errorf("leased message redelivered: %+v", m2)
	}
}

func TestLeaseExpiryRedelivers(t *testing.T) {
	s := newSvc(t)
	s.Send("q", "job")
	m1, _, _ := s.Receive("q", 20*time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	m2, _, _ := s.Receive("q", time.Minute)
	if m2 == nil {
		t.Fatal("expired lease not redelivered")
	}
	if m2.ReceiveCount != 2 {
		t.Errorf("ReceiveCount = %d, want 2", m2.ReceiveCount)
	}
	// The crashed worker's late delete must not remove the retaken job.
	if _, err := s.Delete("q", m1.Receipt); !errors.Is(err, ErrStaleReceipt) {
		t.Errorf("stale delete: %v", err)
	}
	if got := s.Len("q"); got != 1 {
		t.Errorf("Len = %d, want 1", got)
	}
	if _, err := s.Delete("q", m2.Receipt); err != nil {
		t.Errorf("current delete: %v", err)
	}
}

func TestChangeVisibilityRenewsLease(t *testing.T) {
	s := newSvc(t)
	s.Send("q", "job")
	m, _, _ := s.Receive("q", 30*time.Millisecond)
	// Renew before expiry; after the original timeout the message must
	// still be invisible.
	if _, err := s.ChangeVisibility("q", m.Receipt, 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if m2, _, _ := s.Receive("q", time.Minute); m2 != nil {
		t.Errorf("renewed lease redelivered: %+v", m2)
	}
}

func TestChangeVisibilityZeroReleases(t *testing.T) {
	s := newSvc(t)
	s.Send("q", "job")
	m, _, _ := s.Receive("q", time.Minute)
	s.ChangeVisibility("q", m.Receipt, 0)
	m2, _, _ := s.Receive("q", time.Minute)
	if m2 == nil {
		t.Error("released message not redelivered")
	}
}

func TestReceiveEmptyQueue(t *testing.T) {
	s := newSvc(t)
	m, _, err := s.Receive("q", time.Minute)
	if err != nil || m != nil {
		t.Errorf("empty receive = (%+v, %v)", m, err)
	}
}

func TestReceiveWaitBlocksUntilSend(t *testing.T) {
	s := newSvc(t)
	go func() {
		time.Sleep(20 * time.Millisecond)
		s.Send("q", "late")
	}()
	start := time.Now()
	m, _, err := s.ReceiveWait("q", time.Minute, time.Second)
	if err != nil || m == nil {
		t.Fatalf("ReceiveWait = (%+v, %v)", m, err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Error("ReceiveWait did not wake promptly on send")
	}
}

func TestReceiveWaitTimesOut(t *testing.T) {
	s := newSvc(t)
	start := time.Now()
	m, _, err := s.ReceiveWait("q", time.Minute, 30*time.Millisecond)
	if err != nil || m != nil {
		t.Fatalf("ReceiveWait = (%+v, %v)", m, err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("returned too early: %v", elapsed)
	}
}

func TestReceiveWaitPicksUpExpiredLease(t *testing.T) {
	s := newSvc(t)
	s.Send("q", "job")
	s.Receive("q", 30*time.Millisecond) // lease and "crash"
	m, _, err := s.ReceiveWait("q", time.Minute, time.Second)
	if err != nil || m == nil {
		t.Fatalf("ReceiveWait after lease expiry = (%+v, %v)", m, err)
	}
}

func TestQueueErrors(t *testing.T) {
	s := newSvc(t)
	if err := s.CreateQueue("q"); !errors.Is(err, ErrQueueExists) {
		t.Errorf("duplicate queue: %v", err)
	}
	if err := s.CreateQueue(""); !errors.Is(err, ErrEmptyQueueName) {
		t.Errorf("empty name: %v", err)
	}
	if _, _, err := s.Send("nope", "x"); !errors.Is(err, ErrNoSuchQueue) {
		t.Errorf("missing queue send: %v", err)
	}
	if _, _, err := s.Receive("nope", time.Minute); !errors.Is(err, ErrNoSuchQueue) {
		t.Errorf("missing queue receive: %v", err)
	}
	if _, err := s.Delete("q", "bogus"); !errors.Is(err, ErrStaleReceipt) {
		t.Errorf("bogus receipt: %v", err)
	}
	if _, err := s.ChangeVisibility("q", "bogus", time.Second); !errors.Is(err, ErrStaleReceipt) {
		t.Errorf("bogus visibility receipt: %v", err)
	}
}

func TestMetering(t *testing.T) {
	led := meter.NewLedger()
	s := New(led)
	s.CreateQueue("q")
	s.Send("q", "body")
	m, _, _ := s.Receive("q", time.Minute)
	s.Delete("q", m.Receipt)
	s.Receive("q", time.Minute) // empty poll is billed too
	u := led.Snapshot()
	if got := u.Get("sqs", "send").Calls; got != 1 {
		t.Errorf("send calls = %d", got)
	}
	if got := u.Get("sqs", "receive").Calls; got != 2 {
		t.Errorf("receive calls = %d", got)
	}
	if got := u.Get("sqs", "delete").Calls; got != 1 {
		t.Errorf("delete calls = %d", got)
	}
}

func TestConcurrentConsumersEachJobOnce(t *testing.T) {
	s := newSvc(t)
	const jobs = 50
	for i := 0; i < jobs; i++ {
		s.Send("q", "job")
	}
	var mu sync.Mutex
	seen := make(map[string]int)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, _, _ := s.Receive("q", time.Minute)
				if m == nil {
					return
				}
				mu.Lock()
				seen[m.ID]++
				mu.Unlock()
				s.Delete("q", m.Receipt)
			}
		}()
	}
	wg.Wait()
	if len(seen) != jobs {
		t.Fatalf("processed %d distinct jobs, want %d", len(seen), jobs)
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("job %s processed %d times", id, n)
		}
	}
}
