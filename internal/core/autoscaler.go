package core

import (
	"sync"
	"time"

	"repro/internal/cloud/ec2"
)

// AutoScaler implements the elasticity the paper's architecture is built
// around (Section 3: "the architecture described above exploits the
// elastic scaling of the cloud, for instance increasing and decreasing the
// number of virtual machines running each module"): a control loop watches
// a module's request queue and keeps enough live workers running to hold
// the backlog near a target, within [Min, Max] instances.
//
// Scaling out launches a fresh EC2 instance and starts a worker on it;
// scaling in stops a worker gracefully (it finishes its current message)
// and terminates its instance, so billing stops too.

// ModuleKind selects which module the scaler manages.
type ModuleKind uint8

const (
	// IndexerModule scales the indexing module on the loader queue.
	IndexerModule ModuleKind = iota
	// QueryProcessorModule scales the query processor on the query queue.
	QueryProcessorModule
)

func (k ModuleKind) queue() string {
	if k == IndexerModule {
		return LoaderQueue
	}
	return QueryQueue
}

// AutoScalerConfig tunes the control loop.
type AutoScalerConfig struct {
	Module ModuleKind
	// Min and Max bound the fleet (defaults 1 and 8).
	Min, Max int
	// BacklogPerWorker is the queue depth one worker is expected to
	// absorb; the desired fleet is ceil(backlog / BacklogPerWorker)
	// clamped to [Min, Max] (default 4).
	BacklogPerWorker int
	// Interval is the control period (default 250ms; tests use less).
	Interval time.Duration
	// InstanceType for new workers (default large).
	InstanceType ec2.InstanceType
	// Worker options passed to started workers.
	Worker WorkerOptions
}

func (c AutoScalerConfig) withDefaults() AutoScalerConfig {
	if c.Min < 1 {
		c.Min = 1
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.BacklogPerWorker < 1 {
		c.BacklogPerWorker = 4
	}
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.InstanceType.Name == "" {
		c.InstanceType = ec2.Large
	}
	return c
}

// AutoScaler is a running control loop.
type AutoScaler struct {
	w   *Warehouse
	cfg AutoScalerConfig

	mu        sync.Mutex
	workers   []*Worker
	instances []*ec2.Instance
	peak      int
	retired   int // processed counts of workers already stopped

	stop chan struct{}
	done sync.WaitGroup
}

// StartAutoScaler launches the control loop with Min workers already
// running.
func (w *Warehouse) StartAutoScaler(cfg AutoScalerConfig) *AutoScaler {
	cfg = cfg.withDefaults()
	a := &AutoScaler{w: w, cfg: cfg, stop: make(chan struct{})}
	for i := 0; i < cfg.Min; i++ {
		a.scaleOutLocked()
	}
	a.peak = cfg.Min
	a.done.Add(1)
	go a.loop()
	return a
}

// Workers reports the current fleet size.
func (a *AutoScaler) Workers() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.workers)
}

// Peak reports the largest fleet the scaler reached.
func (a *AutoScaler) Peak() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Processed sums the messages completed by all workers ever started.
func (a *AutoScaler) Processed() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := a.retired
	for _, wk := range a.workers {
		total += wk.Processed()
	}
	return total
}

// Stop winds the whole fleet down and stops the loop.
func (a *AutoScaler) Stop() {
	close(a.stop)
	a.done.Wait()
	a.mu.Lock()
	workers := a.workers
	instances := a.instances
	a.workers, a.instances = nil, nil
	a.mu.Unlock()
	for _, wk := range workers {
		wk.Stop()
		a.mu.Lock()
		a.retired += wk.Processed()
		a.mu.Unlock()
	}
	for _, in := range instances {
		in.Terminate()
	}
}

func (a *AutoScaler) loop() {
	defer a.done.Done()
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.adjust()
		}
	}
}

func (a *AutoScaler) adjust() {
	backlog := a.w.queues.Len(a.cfg.Module.queue())
	desired := (backlog + a.cfg.BacklogPerWorker - 1) / a.cfg.BacklogPerWorker
	if desired < a.cfg.Min {
		desired = a.cfg.Min
	}
	if desired > a.cfg.Max {
		desired = a.cfg.Max
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for len(a.workers) < desired {
		a.scaleOutLocked()
		if len(a.workers) > a.peak {
			a.peak = len(a.workers)
		}
	}
	for len(a.workers) > desired {
		a.scaleInLocked()
	}
}

func (a *AutoScaler) scaleOutLocked() {
	in := ec2.Launch(a.w.ledger, a.cfg.InstanceType)
	var wk *Worker
	if a.cfg.Module == IndexerModule {
		wk = a.w.StartIndexer(in, a.cfg.Worker)
	} else {
		wk = a.w.StartQueryProcessor(in, a.cfg.Worker)
	}
	a.workers = append(a.workers, wk)
	a.instances = append(a.instances, in)
}

func (a *AutoScaler) scaleInLocked() {
	last := len(a.workers) - 1
	wk, in := a.workers[last], a.instances[last]
	a.workers, a.instances = a.workers[:last], a.instances[:last]
	// Graceful stop outside the lock would be nicer, but Stop only waits
	// for the current message; keep it simple and bounded.
	a.mu.Unlock()
	wk.Stop()
	in.Terminate()
	a.mu.Lock()
	a.retired += wk.Processed()
}
