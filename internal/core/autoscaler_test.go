package core

import (
	"testing"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/index"
	"repro/internal/xmark"
)

func TestAutoScalerGrowsAndShrinksWithBacklog(t *testing.T) {
	w := newWarehouse(t, index.LU)
	scaler := w.StartAutoScaler(AutoScalerConfig{
		Module:           IndexerModule,
		Min:              1,
		Max:              4,
		BacklogPerWorker: 3,
		Interval:         10 * time.Millisecond,
		Worker: WorkerOptions{
			Poll:      5 * time.Millisecond,
			WorkDelay: 15 * time.Millisecond, // keep a backlog visible
		},
	})
	defer scaler.Stop()
	if got := scaler.Workers(); got != 1 {
		t.Fatalf("initial workers = %d, want Min=1", got)
	}

	// Flood the loader queue: 13 paintings + generated docs.
	docs := xmark.Paintings()
	cfg := xmark.DefaultConfig(30)
	cfg.TargetDocBytes = 2 << 10
	for i := 0; i < cfg.Docs; i++ {
		docs = append(docs, xmark.GenerateDoc(cfg, i))
	}
	for _, d := range docs {
		if err := w.SubmitDocument(d.URI, d.Data); err != nil {
			t.Fatal(err)
		}
	}

	// The scaler must grow toward Max while the backlog lasts...
	deadline := time.Now().Add(10 * time.Second)
	for scaler.Peak() < 4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if scaler.Peak() < 2 {
		t.Fatalf("scaler never grew: peak = %d", scaler.Peak())
	}

	// ...drain the queue...
	for w.queues.Len(LoaderQueue) > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := w.queues.Len(LoaderQueue); got != 0 {
		t.Fatalf("queue not drained: %d left", got)
	}

	// ...and shrink back to Min once idle.
	for scaler.Workers() > 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := scaler.Workers(); got != 1 {
		t.Errorf("workers after drain = %d, want 1", got)
	}
	if got := scaler.Processed(); got != len(docs) {
		t.Errorf("processed = %d, want %d", got, len(docs))
	}
}

func TestAutoScalerQueryModule(t *testing.T) {
	w := newWarehouse(t, index.LUP)
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)
	loadPaintings(t, w, fleet)

	scaler := w.StartAutoScaler(AutoScalerConfig{
		Module:           QueryProcessorModule,
		Min:              1,
		Max:              3,
		BacklogPerWorker: 2,
		Interval:         10 * time.Millisecond,
		Worker:           WorkerOptions{Poll: 5 * time.Millisecond},
	})
	defer scaler.Stop()

	var ids []string
	for i := 0; i < 8; i++ {
		id, err := w.SubmitQuery(`//painting[/name{val}]`, true)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		out, err := w.AwaitResult(id, 15*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		if len(out.Result.Rows) != 9 {
			t.Errorf("rows = %d, want 9", len(out.Result.Rows))
		}
	}
}

func TestAutoScalerDefaults(t *testing.T) {
	cfg := AutoScalerConfig{}.withDefaults()
	if cfg.Min != 1 || cfg.Max != 1 || cfg.BacklogPerWorker != 4 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.InstanceType.Name != "l" {
		t.Errorf("default instance type = %q", cfg.InstanceType.Name)
	}
	cfg = AutoScalerConfig{Min: 2, Max: 1}.withDefaults()
	if cfg.Max != 2 {
		t.Errorf("Max not raised to Min: %+v", cfg)
	}
}

func TestAutoScalerStopTerminatesInstances(t *testing.T) {
	w := newWarehouse(t, index.LU)
	scaler := w.StartAutoScaler(AutoScalerConfig{
		Module:   IndexerModule,
		Min:      2,
		Max:      2,
		Interval: 10 * time.Millisecond,
	})
	if got := scaler.Workers(); got != 2 {
		t.Fatalf("workers = %d", got)
	}
	scaler.Stop()
	if got := scaler.Workers(); got != 0 {
		t.Errorf("workers after Stop = %d", got)
	}
}
