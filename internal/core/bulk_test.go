package core

import (
	"reflect"
	"testing"

	"repro/internal/cloud/ec2"
	"repro/internal/index"
	"repro/internal/xmark"
)

func bulkTestCorpus() []xmark.Doc {
	cfg := xmark.DefaultConfig(20)
	cfg.Seed = 11
	cfg.TargetDocBytes = 4 << 10
	return xmark.Generate(cfg)
}

func indexCorpus(t *testing.T, cfg Config, fleetSize int, docs []xmark.Doc) (*Warehouse, IndexReport) {
	t.Helper()
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, fleetSize)
	var uris []string
	for _, d := range docs {
		if _, err := w.files.Put(Bucket, DocKey(d.URI), d.Data, nil); err != nil {
			t.Fatal(err)
		}
		uris = append(uris, d.URI)
	}
	rep, err := w.IndexCorpusOn(fleet, uris)
	if err != nil {
		t.Fatal(err)
	}
	return w, rep
}

// TestBulkIndexingMatchesPerDocument: for every strategy, the bulk driver
// must leave the store byte-identical to the per-document driver, report
// the same corpus totals, bill strictly fewer BatchPut requests, and model
// no more upload/total time.
func TestBulkIndexingMatchesPerDocument(t *testing.T) {
	docs := bulkTestCorpus()
	for _, s := range index.All() {
		t.Run(s.Name(), func(t *testing.T) {
			perDoc, pr := indexCorpus(t, Config{Strategy: s}, 2, docs)
			bulk, br := indexCorpus(t, Config{Strategy: s, BulkLoad: true}, 2, docs)

			if br.Docs != pr.Docs || br.DataBytes != pr.DataBytes ||
				br.Entries != pr.Entries || br.Items != pr.Items {
				t.Errorf("corpus totals differ: bulk %+v, per-doc %+v", br, pr)
			}
			if br.Requests >= pr.Requests {
				t.Errorf("bulk requests %d not below per-doc %d", br.Requests, pr.Requests)
			}
			if br.AvgUpload > pr.AvgUpload {
				t.Errorf("bulk avg upload %v above per-doc %v", br.AvgUpload, pr.AvgUpload)
			}
			if br.Total > pr.Total {
				t.Errorf("bulk total %v above per-doc %v", br.Total, pr.Total)
			}
			pd, bd := dumpStore(t, perDoc), dumpStore(t, bulk)
			for _, tbl := range s.Tables() {
				if len(pd[tbl]) != len(bd[tbl]) {
					t.Errorf("%s: per-doc %d items, bulk %d", tbl, len(pd[tbl]), len(bd[tbl]))
					continue
				}
				for i := range pd[tbl] {
					if itemLine(pd[tbl][i]) != itemLine(bd[tbl][i]) {
						t.Errorf("%s item %d differs between per-doc and bulk", tbl, i)
						break
					}
				}
			}
		})
	}
}

// TestBulkIndexingDeterministicAcrossDepths: the pipeline read-ahead is a
// real-concurrency knob only — the report (including modeled times), every
// metered service counter and the store contents must be identical at any
// depth, over repeated runs.
func TestBulkIndexingDeterministicAcrossDepths(t *testing.T) {
	docs := bulkTestCorpus()
	type outcome struct {
		rep  IndexReport
		dump tableDump
	}
	var base *outcome
	var baseW *Warehouse
	for _, depth := range []int{1, 2, 4, 16} {
		w, rep := indexCorpus(t, Config{Strategy: index.TwoLUPI, BulkLoad: true, PipelineDepth: depth}, 3, docs)
		o := &outcome{rep: rep, dump: dumpStore(t, w)}
		if base == nil {
			base, baseW = o, w
			continue
		}
		if !reflect.DeepEqual(o.rep, base.rep) {
			t.Errorf("depth %d report %+v differs from depth 1 %+v", depth, o.rep, base.rep)
		}
		bu, wu := baseW.Ledger().Snapshot(), w.Ledger().Snapshot()
		for _, svc := range []string{"dynamodb", "s3", "sqs"} {
			for _, op := range []string{"put", "get", "send", "receive", "delete", "changeVisibility"} {
				if g, want := wu.Get(svc, op), bu.Get(svc, op); g != want {
					t.Errorf("depth %d %s.%s: %+v, want %+v", depth, svc, op, g, want)
				}
			}
		}
		for _, tbl := range index.TwoLUPI.Tables() {
			if len(o.dump[tbl]) != len(base.dump[tbl]) {
				t.Errorf("depth %d: %s item count differs", depth, tbl)
				continue
			}
			for i := range o.dump[tbl] {
				if itemLine(o.dump[tbl][i]) != itemLine(base.dump[tbl][i]) {
					t.Errorf("depth %d: %s item %d differs", depth, tbl, i)
					break
				}
			}
		}
	}
}

// TestBulkIndexingRerunAfterFailure mirrors TestIndexCorpusOnRerunAfterFailure
// for the bulk driver: a failed document must release every in-flight
// message — the failing one and the whole read-ahead/buffered group — so a
// rerun drains the queue immediately.
func TestBulkIndexingRerunAfterFailure(t *testing.T) {
	w, err := New(Config{Strategy: index.LUP, BulkLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)

	docs := xmark.Paintings()[:6]
	var uris []string
	for _, d := range docs[:3] {
		if _, err := w.files.Put(Bucket, DocKey(d.URI), d.Data, nil); err != nil {
			t.Fatal(err)
		}
		uris = append(uris, d.URI)
	}
	uris = append(uris, "broken.xml")
	if _, err := w.files.Put(Bucket, DocKey("broken.xml"), []byte("<open><mismatch></open>"), nil); err != nil {
		t.Fatal(err)
	}
	for _, d := range docs[3:] {
		if _, err := w.files.Put(Bucket, DocKey(d.URI), d.Data, nil); err != nil {
			t.Fatal(err)
		}
		uris = append(uris, d.URI)
	}

	rep1, err := w.IndexCorpusOn(fleet, uris)
	if err == nil {
		t.Fatal("indexing an unparsable document succeeded")
	}
	// Documents whose batches flushed before the failure completed durably
	// and were deleted; everything else — the failing message and the whole
	// buffered group — must have been released, not left leased. No message
	// may be lost or orphaned.
	released := w.Queues().Len(LoaderQueue)
	if rep1.Docs+released != len(uris) {
		t.Fatalf("completed %d + released %d != %d submitted (messages lost or leaked)", rep1.Docs, released, len(uris))
	}
	if released == 0 {
		t.Fatal("no messages released after failure")
	}

	if _, err := w.files.Put(Bucket, DocKey("broken.xml"), docs[0].Data, nil); err != nil {
		t.Fatal(err)
	}
	rep, err := w.IndexCorpusOn(fleet, nil)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if rep.Docs != released {
		t.Errorf("rerun indexed %d documents, want the %d released", rep.Docs, released)
	}
	if n := w.Queues().Len(LoaderQueue); n != 0 {
		t.Errorf("loader queue still holds %d messages", n)
	}

	// The converged store matches a clean per-document load of the same
	// corpus (broken.xml resolving to docs[0]'s data).
	clean, err := New(Config{Strategy: index.LUP})
	if err != nil {
		t.Fatal(err)
	}
	cleanFleet := ec2.LaunchFleet(clean.ledger, ec2.Large, 1)
	var cleanURIs []string
	for _, d := range docs[:3] {
		if _, err := clean.files.Put(Bucket, DocKey(d.URI), d.Data, nil); err != nil {
			t.Fatal(err)
		}
		cleanURIs = append(cleanURIs, d.URI)
	}
	if _, err := clean.files.Put(Bucket, DocKey("broken.xml"), docs[0].Data, nil); err != nil {
		t.Fatal(err)
	}
	cleanURIs = append(cleanURIs, "broken.xml")
	for _, d := range docs[3:] {
		if _, err := clean.files.Put(Bucket, DocKey(d.URI), d.Data, nil); err != nil {
			t.Fatal(err)
		}
		cleanURIs = append(cleanURIs, d.URI)
	}
	if _, err := clean.IndexCorpusOn(cleanFleet, cleanURIs); err != nil {
		t.Fatal(err)
	}
	cd, bd := dumpStore(t, clean), dumpStore(t, w)
	for _, tbl := range index.LUP.Tables() {
		if len(cd[tbl]) != len(bd[tbl]) {
			t.Errorf("%s: clean %d items, bulk-rerun %d", tbl, len(cd[tbl]), len(bd[tbl]))
			continue
		}
		for i := range cd[tbl] {
			if itemLine(cd[tbl][i]) != itemLine(bd[tbl][i]) {
				t.Errorf("%s item %d differs after bulk rerun", tbl, i)
				break
			}
		}
	}
}

// TestBulkLiveWorkersMatchDriver: live bulk workers (group accumulation,
// held leases, flush on group size or idle) converge to the same store as
// the synchronous bulk driver.
func TestBulkLiveWorkersMatchDriver(t *testing.T) {
	docs := bulkTestCorpus()
	driverW, _ := indexCorpus(t, Config{Strategy: index.LUI, BulkLoad: true}, 2, docs)

	liveW, err := New(Config{Strategy: index.LUI, BulkLoad: true, BulkFlushDocs: 5})
	if err != nil {
		t.Fatal(err)
	}
	indexLive(t, liveW, docs, false)

	dd, ld := dumpStore(t, driverW), dumpStore(t, liveW)
	for _, tbl := range index.LUI.Tables() {
		if len(dd[tbl]) != len(ld[tbl]) {
			t.Errorf("%s: driver %d items, live %d", tbl, len(dd[tbl]), len(ld[tbl]))
			continue
		}
		for i := range dd[tbl] {
			if itemLine(dd[tbl][i]) != itemLine(ld[tbl][i]) {
				t.Errorf("%s item %d differs between driver and live workers", tbl, i)
				break
			}
		}
	}
}
