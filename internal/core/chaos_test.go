package core

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/cloud/chaos"
	"repro/internal/cloud/ec2"
	"repro/internal/cloud/kv"
	"repro/internal/index"
	"repro/internal/workload"
	"repro/internal/xmark"
)

// chaosSeed returns the seed of the chaos schedule; CI sweeps it through
// the CHAOS_SEED environment variable.
func chaosSeed(t *testing.T) int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		return n
	}
	return 1
}

// aggressiveRates is the fault mix of the differential test: every injection
// class enabled, hard enough that a typical run absorbs dozens of faults.
func aggressiveRates() chaos.Rates {
	return chaos.Rates{
		Throttle:     0.15,
		Internal:     0.05,
		PartialBatch: 0.30,
		DupDeliver:   0.20,
		ExpireLease:  0.15,
		S3Transient:  0.10,
	}
}

func chaosCorpus(seed int64) []xmark.Doc {
	cfg := xmark.DefaultConfig(16)
	cfg.Seed = seed
	cfg.TargetDocBytes = 8 << 10
	return xmark.Generate(cfg)
}

// submitWithRetry survives injected transient faults on the S3 put of the
// submission path, as a real front end would.
func submitWithRetry(t *testing.T, w *Warehouse, uri string, data []byte) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		err := w.SubmitDocument(uri, data)
		if err == nil {
			return
		}
		if attempt > 100 {
			t.Fatalf("submit %s: %v", uri, err)
		}
	}
}

// indexLive drives a corpus through live indexer workers. With crash set,
// one worker is killed mid-message once it has demonstrably started
// working, and a replacement takes over its redelivered lease.
func indexLive(t *testing.T, w *Warehouse, docs []xmark.Doc, crash bool) {
	t.Helper()
	for _, d := range docs {
		submitWithRetry(t, w, d.URI, d.Data)
	}
	opts := WorkerOptions{Visibility: 150 * time.Millisecond, Poll: 5 * time.Millisecond, WorkDelay: 5 * time.Millisecond}
	var workers []*Worker
	if crash {
		victim := w.StartIndexer(ec2.Launch(w.ledger, ec2.Large), WorkerOptions{
			Visibility: 150 * time.Millisecond,
			Poll:       5 * time.Millisecond,
			WorkDelay:  40 * time.Millisecond,
		})
		deadline := time.Now().Add(20 * time.Second)
		for victim.Processed() < 1 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if victim.Processed() < 1 {
			t.Fatal("victim worker never processed a message")
		}
		time.Sleep(15 * time.Millisecond) // land inside the next message's work window
		victim.Crash()
	}
	for i := 0; i < 3; i++ {
		workers = append(workers, w.StartIndexer(ec2.Launch(w.ledger, ec2.Large), opts))
	}
	deadline := time.Now().Add(90 * time.Second)
	for time.Now().Before(deadline) {
		if w.Queues().Len(LoaderQueue) == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, wk := range workers {
		wk.Stop()
	}
	if n := w.Queues().Len(LoaderQueue); n != 0 {
		t.Fatalf("loader queue still holds %d messages after deadline", n)
	}
	if crash {
		var redeliveries int
		for _, wk := range workers {
			redeliveries += wk.Redeliveries()
		}
		if redeliveries == 0 {
			t.Error("crash plus chaos produced no observed redeliveries")
		}
	}
}

type tableDump map[string][]kv.Item

func dumpStore(t *testing.T, w *Warehouse) tableDump {
	t.Helper()
	// AsDumper walks the store stack (sharding, retry and chaos wrappers) to
	// the dumping store; a sharded warehouse dumps each logical table as the
	// deterministic merge of its partitions, directly comparable to an
	// unsharded dump.
	dumper := kv.AsDumper(w.Store())
	if dumper == nil {
		t.Fatalf("store %T cannot dump tables", w.Store())
	}
	out := tableDump{}
	for _, tbl := range w.Strategy.Tables() {
		out[tbl] = dumper.DumpTable(tbl)
	}
	return out
}

func itemLine(it kv.Item) string {
	s := it.HashKey + "|" + it.RangeKey
	for _, a := range it.Attrs {
		s += "|" + a.Name
		for _, v := range a.Values {
			s += fmt.Sprintf("|%x", v)
		}
	}
	return s
}

// runWorkload evaluates the paper's ten XMark queries and returns, per
// query, the sorted rendered rows (URI plus columns).
func runWorkload(t *testing.T, w *Warehouse) map[string][]string {
	t.Helper()
	in := ec2.Launch(w.ledger, ec2.XL)
	out := map[string][]string{}
	for _, q := range workload.XMark() {
		res, _, err := w.RunQueryOn(in, q.Text, true)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		rows := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			rows[i] = fmt.Sprintf("%s|%v", r.URI, r.Cols)
		}
		sort.Strings(rows)
		out[q.Name] = rows
	}
	return out
}

// TestChaosDifferentialIndexing is the proof obligation of the chaos layer:
// a randomized corpus indexed by live workers under aggressive injected
// faults — throttling, transient errors, partial batches, duplicate
// deliveries, forced lease expiries, S3 faults, plus one worker crashed
// mid-run — must leave the warehouse byte-identical to a fault-free run:
// same index store contents, same answers to all ten workload queries, and
// an empty dead-letter queue.
func TestChaosDifferentialIndexing(t *testing.T) {
	chaosDifferentialIndexing(t, false, 0)
}

// TestChaosDifferentialIndexingBulkLoad runs the same differential with the
// chaotic workers in bulk-loading mode: coalesced cross-document batches
// under aggressive chaos plus a crash must still converge to the clean
// per-document run — held leases expire into redelivery, content-derived
// range keys absorb the re-extractions, and a failed group flush abandons
// without deleting. The clean reference stays per-document, so this also
// differentially proves bulk and per-document store contents identical.
func TestChaosDifferentialIndexingBulkLoad(t *testing.T) {
	chaosDifferentialIndexing(t, true, 0)
}

// TestChaosDifferentialIndexingSharded runs the bulk differential with the
// chaotic warehouse hash-partitioned four ways: aggressive chaos, a worker
// crash and bulk loading over a sharded store must still converge to the
// clean unsharded per-document run — the merged shard dumps are compared
// byte-for-byte against the single-table reference.
func TestChaosDifferentialIndexingSharded(t *testing.T) {
	chaosDifferentialIndexing(t, true, 4)
}

func chaosDifferentialIndexing(t *testing.T, bulk bool, shards int) {
	seed := chaosSeed(t)
	docs := chaosCorpus(seed)

	clean, err := New(Config{Strategy: index.TwoLUPI})
	if err != nil {
		t.Fatal(err)
	}
	indexLive(t, clean, docs, false)

	chaotic, err := New(Config{
		Strategy:    index.TwoLUPI,
		BulkLoad:    bulk,
		IndexShards: shards,
		// Tracing on the chaotic side proves the span journal perturbs
		// nothing even under concurrent workers and injected faults.
		Trace: true,
		Chaos: &chaos.Plan{Seed: seed, Rates: aggressiveRates()},
		// Injected redeliveries must not push healthy documents into the
		// dead-letter queue: raise the redrive threshold far above what the
		// fault rates can produce.
		MaxLoadAttempts: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	indexLive(t, chaotic, docs, true)

	if n := chaotic.ChaosCounts().Total(); n == 0 {
		t.Error("chaotic run injected no faults")
	} else {
		t.Logf("chaos: %+v", chaotic.ChaosCounts())
		t.Logf("retry: %+v", chaotic.RetryStats())
	}
	if rs := chaotic.RetryStats(); rs.Retries == 0 {
		t.Error("retry layer absorbed nothing under aggressive chaos")
	}

	// Both dead-letter queues must be empty: every document was eventually
	// indexed.
	if n := clean.Queues().Len(LoaderDeadLetters); n != 0 {
		t.Errorf("clean run dead-letter queue holds %d", n)
	}
	if n := chaotic.Queues().Len(LoaderDeadLetters); n != 0 {
		t.Errorf("chaotic run dead-letter queue holds %d", n)
	}

	// Store contents must be byte-identical, table by table, item by item.
	cleanDump, chaoticDump := dumpStore(t, clean), dumpStore(t, chaotic)
	for _, tbl := range clean.Strategy.Tables() {
		a, b := cleanDump[tbl], chaoticDump[tbl]
		if len(a) != len(b) {
			t.Errorf("%s: clean %d items, chaotic %d — redelivery duplicated or lost writes", tbl, len(a), len(b))
			continue
		}
		for i := range a {
			la, lb := itemLine(a[i]), itemLine(b[i])
			if la != lb {
				t.Errorf("%s item %d differs:\n  clean:   %s\n  chaotic: %s", tbl, i, la, lb)
				break
			}
		}
		// No duplicate postings: an item carries exactly one attribute (one
		// document's contribution), and (hash key, range key) pairs are
		// unique by store construction — a redelivered write must have
		// overwritten, not appended.
		for _, it := range b {
			if len(it.Attrs) != 1 {
				t.Errorf("%s item %s/%s carries %d attributes, want 1", tbl, it.HashKey, it.RangeKey, len(it.Attrs))
			}
		}
	}

	// Quiesce injection, then the ten workload queries must answer
	// identically over both warehouses.
	chaotic.ChaosInjector().SetRates(chaos.Rates{})
	cleanRows, chaoticRows := runWorkload(t, clean), runWorkload(t, chaotic)
	for name, want := range cleanRows {
		got := chaoticRows[name]
		if len(got) != len(want) {
			t.Errorf("%s: clean %d rows, chaotic %d", name, len(want), len(got))
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s row %d: clean %q, chaotic %q", name, i, want[i], got[i])
				break
			}
		}
	}
}

// A zero-rate chaos layer must be billing-transparent: wrapping the
// services without injecting anything may not change a single metered
// call, unit or byte.
func TestZeroRateChaosBillingParity(t *testing.T) {
	seed := chaosSeed(t)
	docs := chaosCorpus(seed)[:6]

	run := func(plan *chaos.Plan) *Warehouse {
		w, err := New(Config{Strategy: index.LUP, Chaos: plan})
		if err != nil {
			t.Fatal(err)
		}
		fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 2)
		var uris []string
		for _, d := range docs {
			if _, err := w.files.Put(Bucket, DocKey(d.URI), d.Data, nil); err != nil {
				t.Fatal(err)
			}
			uris = append(uris, d.URI)
		}
		if _, err := w.IndexCorpusOn(fleet, uris); err != nil {
			t.Fatal(err)
		}
		in := ec2.Launch(w.ledger, ec2.Large)
		if _, _, err := w.RunQueryOn(in, workload.XMark()[0].Text, true); err != nil {
			t.Fatal(err)
		}
		return w
	}

	plain := run(nil)
	wrapped := run(&chaos.Plan{Seed: seed}) // all rates zero

	if n := wrapped.ChaosCounts().Total(); n != 0 {
		t.Fatalf("zero-rate plan injected %d faults", n)
	}
	pu, wu := plain.Ledger().Snapshot(), wrapped.Ledger().Snapshot()
	for _, svc := range []string{"dynamodb", "s3", "sqs"} {
		for _, op := range []string{"put", "batchPut", "get", "batchGet", "deleteItem", "send", "receive", "delete", "changeVisibility", "list", "head"} {
			if g, w := wu.Get(svc, op), pu.Get(svc, op); g != w {
				t.Errorf("%s.%s: wrapped %+v, plain %+v", svc, op, g, w)
			}
		}
	}
	// The stores themselves must also match byte for byte.
	pd, wd := dumpStore(t, plain), dumpStore(t, wrapped)
	for _, tbl := range plain.Strategy.Tables() {
		if len(pd[tbl]) != len(wd[tbl]) {
			t.Errorf("%s: plain %d items, wrapped %d", tbl, len(pd[tbl]), len(wd[tbl]))
			continue
		}
		for i := range pd[tbl] {
			if itemLine(pd[tbl][i]) != itemLine(wd[tbl][i]) {
				t.Errorf("%s item %d differs under zero-rate wrapping", tbl, i)
				break
			}
		}
	}
}

// IndexCorpusOn must release its in-flight message when a document fails,
// so a rerun after fixing the problem drains the queue immediately instead
// of waiting out a multi-minute orphaned lease.
func TestIndexCorpusOnRerunAfterFailure(t *testing.T) {
	w := newWarehouse(t, index.LUP)
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)

	docs := xmark.Paintings()[:4]
	uris := []string{"broken.xml"}
	if _, err := w.files.Put(Bucket, DocKey("broken.xml"), []byte("<open><mismatch></open>"), nil); err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if _, err := w.files.Put(Bucket, DocKey(d.URI), d.Data, nil); err != nil {
			t.Fatal(err)
		}
		uris = append(uris, d.URI)
	}

	if _, err := w.IndexCorpusOn(fleet, uris); err == nil {
		t.Fatal("indexing an unparsable document succeeded")
	}
	// The failed message was released, not left leased: the whole remainder
	// of the queue is immediately receivable.
	if got, want := w.Queues().Len(LoaderQueue), len(uris); got != want {
		t.Fatalf("loader queue holds %d messages after failure, want %d", got, want)
	}

	// Fix the document and rerun without re-sending: the driver drains the
	// released messages right away.
	if _, err := w.files.Put(Bucket, DocKey("broken.xml"), docs[0].Data, nil); err != nil {
		t.Fatal(err)
	}
	rep, err := w.IndexCorpusOn(fleet, nil)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if rep.Docs != len(uris) {
		t.Errorf("rerun indexed %d documents, want %d", rep.Docs, len(uris))
	}
	if n := w.Queues().Len(LoaderQueue); n != 0 {
		t.Errorf("loader queue still holds %d messages", n)
	}
}
