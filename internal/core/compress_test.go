package core

import (
	"testing"

	"repro/internal/cloud/ec2"
	"repro/internal/index"
)

// A compressed-paths warehouse answers identically to a plain one and
// stores a smaller LUP index.
func TestCompressPathsWarehouse(t *testing.T) {
	build := func(compress bool) *Warehouse {
		w, err := New(Config{Strategy: index.LUP, CompressPaths: compress})
		if err != nil {
			t.Fatal(err)
		}
		fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)
		loadPaintings(t, w, fleet)
		return w
	}
	plain := build(false)
	comp := build(true)

	pr, _ := plain.IndexBytes()
	cr, _ := comp.IndexBytes()
	if cr >= pr {
		t.Errorf("compressed index %d bytes >= plain %d", cr, pr)
	}

	const q = `//painting[/name~"Lion", /painter[/name[/last{val}]]]`
	for _, w := range []*Warehouse{plain, comp} {
		in := ec2.Launch(w.ledger, ec2.Large)
		res, _, err := w.RunQueryOn(in, q, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 2 {
			t.Errorf("rows = %d, want 2", len(res.Rows))
		}
	}

	// Removal works on compressed indexes too.
	in := ec2.Launch(comp.ledger, ec2.Large)
	if err := comp.RemoveDocument(in, "delacroix.xml"); err != nil {
		t.Fatal(err)
	}
	res, _, err := comp.RunQueryOn(in, q, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows after removal = %d, want 1", len(res.Rows))
	}
}
