// Package core implements the paper's contribution: the cloud Web-data
// warehouse architecture of Section 3 (Figure 1).
//
// Documents are stored as files in the S3 file store; the index lives in a
// key-value store (DynamoDB, or SimpleDB for the comparison with [8]); EC2
// virtual instances run the two application modules — the indexing module
// and the query processor — and SQS queues provide reliable asynchronous
// communication between the front end and the modules:
//
//	document in (1) -> S3 (2) -> loader request queue (3)
//	   -> indexing module (4): fetch (5), extract, index store (6)
//	query in (7) -> query request queue (8)
//	   -> query processor (9): index look-up (10-12), fetch documents
//	      (13), evaluate, results to S3 (14), query response queue (15)
//	front end: response (16) -> fetch results (17) -> return (18)
//
// The package offers both the live pipeline (StartIndexer /
// StartQueryProcessor spawn workers that poll the queues, renew message
// leases, and survive instance crashes through SQS redelivery) and
// deterministic synchronous drivers (IndexCorpusOn, RunQueryOn) that the
// experiment harness uses: they issue exactly the same service requests —
// so metering and billing match the cost model — but schedule work
// round-robin over the fleet for reproducible modeled times.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/kv"
	"repro/internal/cloud/s3"
	"repro/internal/cloud/simpledb"
	"repro/internal/cloud/sqs"
	"repro/internal/index"
	"repro/internal/meter"
)

// Names of the warehouse's cloud resources.
const (
	Bucket        = "warehouse"
	LoaderQueue   = "loader-requests"
	QueryQueue    = "query-requests"
	ResponseQueue = "query-responses"
	// LoaderDeadLetters parks loading requests that repeatedly failed —
	// e.g. unparsable documents — so they stop being retried (SQS redrive
	// policy; see MaxLoadAttempts).
	LoaderDeadLetters = "loader-dead-letters"
	resultsPrefix     = "results/"
	docsPrefix        = "docs/"
)

// MaxLoadAttempts is how many times a loading request is delivered before
// it is moved to the dead-letter queue.
const MaxLoadAttempts = 5

// PerfModel calibrates the modeled CPU throughput of the application code,
// in bytes per second per ECU (an EC2 Compute Unit is the capacity of a
// 1.0-1.2 GHz 2007 Xeon, Section 8.1). Values are fitted so that the
// modeled times at the paper's 40 GB scale land in the ranges of Tables 4
// and Figure 9.
type PerfModel struct {
	// ParseBytesPerECUSec is the XML parsing rate (indexing and querying
	// both parse fetched documents).
	ParseBytesPerECUSec float64
	// ExtractBytesPerECUSec is the rate of producing serialized index
	// entries, charged on the entry bytes emitted.
	ExtractBytesPerECUSec float64
	// EvalBytesPerECUSec is the tree-pattern evaluation rate over parsed
	// documents.
	EvalBytesPerECUSec float64
	// PlanBytesPerECUSec is the rate of the look-up physical plan
	// (intersections, path filtering, holistic twig joins) over the bytes
	// fetched from the index.
	PlanBytesPerECUSec float64
}

// DefaultPerfModel returns the calibrated model.
func DefaultPerfModel() PerfModel {
	const mb = 1 << 20
	return PerfModel{
		ParseBytesPerECUSec:   2.4 * mb,
		ExtractBytesPerECUSec: 1.1 * mb,
		EvalBytesPerECUSec:    3.2 * mb,
		PlanBytesPerECUSec:    16 * mb,
	}
}

func (m PerfModel) withDefaults() PerfModel {
	d := DefaultPerfModel()
	if m.ParseBytesPerECUSec <= 0 {
		m.ParseBytesPerECUSec = d.ParseBytesPerECUSec
	}
	if m.ExtractBytesPerECUSec <= 0 {
		m.ExtractBytesPerECUSec = d.ExtractBytesPerECUSec
	}
	if m.EvalBytesPerECUSec <= 0 {
		m.EvalBytesPerECUSec = d.EvalBytesPerECUSec
	}
	if m.PlanBytesPerECUSec <= 0 {
		m.PlanBytesPerECUSec = d.PlanBytesPerECUSec
	}
	return m
}

// Config assembles a warehouse.
type Config struct {
	// Strategy is the indexing strategy maintained by the warehouse.
	Strategy index.Strategy
	// Backend selects the index store: "dynamodb" (default) or
	// "simpledb".
	Backend string
	// Perf overrides the performance model (zero fields take defaults).
	Perf PerfModel
	// CompressPaths front-codes LUP/2LUPI path lists in the index store
	// (the improvement the paper's conclusion suggests).
	CompressPaths bool
	// Seed drives the UUID generator.
	Seed int64
	// Ledger receives all metering; a fresh one is created when nil.
	Ledger *meter.Ledger

	// QueryWorkers bounds the worker pool that fetches, parses and
	// evaluates candidate documents during one query (step 13 of
	// Figure 1). 0 selects runtime.NumCPU(); 1 runs the sequential path.
	// Results and modeled times are identical at every setting — only real
	// wall-clock time changes.
	QueryWorkers int
	// LookupConcurrency bounds the index look-up fan-out (parallel
	// batch-gets and twig joins). 0 selects GOMAXPROCS; 1 is sequential.
	QueryLookupConcurrency int
	// PostingCacheBytes enables a hot-key posting cache of roughly that
	// many bytes in front of the index store. 0 disables it — the cache
	// changes the billed quantities of repeated look-ups (hits cost no
	// GetOps), so the paper-reproduction experiments run without it.
	PostingCacheBytes int64
}

// Warehouse wires the cloud services of Figure 1 together.
type Warehouse struct {
	Strategy index.Strategy
	Perf     PerfModel

	compressPaths bool
	queryWorkers  int
	lookupOpts    index.LookupOptions
	cache         *index.PostingCache

	ledger *meter.Ledger
	files  *s3.Service
	store  kv.Store
	queues *sqs.Service
	uuids  *index.UUIDGen

	mu        sync.Mutex
	querySeq  int
	workerSeq int
}

// New provisions the warehouse's bucket, queues and index tables.
func New(cfg Config) (*Warehouse, error) {
	ledger := cfg.Ledger
	if ledger == nil {
		ledger = meter.NewLedger()
	}
	var store kv.Store
	switch cfg.Backend {
	case "", dynamodb.Backend:
		store = dynamodb.New(ledger)
	case simpledb.Backend:
		store = simpledb.New(ledger)
	default:
		return nil, fmt.Errorf("core: unknown backend %q", cfg.Backend)
	}
	w := &Warehouse{
		Strategy:      cfg.Strategy,
		Perf:          cfg.Perf.withDefaults(),
		compressPaths: cfg.CompressPaths,
		queryWorkers:  cfg.QueryWorkers,
		lookupOpts:    index.LookupOptions{Concurrency: cfg.QueryLookupConcurrency},
		ledger:        ledger,
		files:         s3.New(ledger),
		store:         store,
		queues:        sqs.New(ledger),
		uuids:         index.NewUUIDGen(cfg.Seed + 1),
	}
	if cfg.PostingCacheBytes > 0 {
		w.cache = index.NewPostingCache(cfg.PostingCacheBytes)
		w.lookupOpts.Cache = w.cache
	}
	if err := w.files.CreateBucket(Bucket); err != nil {
		return nil, err
	}
	for _, q := range []string{LoaderQueue, QueryQueue, ResponseQueue, LoaderDeadLetters} {
		if err := w.queues.CreateQueue(q); err != nil {
			return nil, err
		}
	}
	if err := w.queues.SetRedrivePolicy(LoaderQueue, LoaderDeadLetters, MaxLoadAttempts); err != nil {
		return nil, err
	}
	if err := index.CreateTables(store, cfg.Strategy); err != nil {
		return nil, err
	}
	return w, nil
}

// Ledger exposes the metering ledger (billing, experiment measurements).
func (w *Warehouse) Ledger() *meter.Ledger { return w.ledger }

// Files exposes the file store.
func (w *Warehouse) Files() *s3.Service { return w.files }

// Store exposes the index store.
func (w *Warehouse) Store() kv.Store { return w.store }

// Queues exposes the queue service.
func (w *Warehouse) Queues() *sqs.Service { return w.queues }

// DataBytes returns the stored document bytes (s(D)).
func (w *Warehouse) DataBytes() int64 { return w.files.BucketBytes(Bucket) }

// IndexBytes returns the index store footprint: raw user bytes and the
// store's own overhead (sr(D,I) and ovh(D,I) of Section 7.1).
func (w *Warehouse) IndexBytes() (raw, overhead int64) {
	for _, t := range w.Strategy.Tables() {
		raw += w.store.TableBytes(t)
		overhead += w.store.OverheadBytes(t)
	}
	return raw, overhead
}

// IndexItems returns the number of items in the index tables (|op(D,I)|
// under the per-row billing model).
func (w *Warehouse) IndexItems() int64 {
	var n int64
	for _, t := range w.Strategy.Tables() {
		n += w.store.ItemCount(t)
	}
	return n
}

// indexOptions returns the extraction options for the warehouse's store,
// honouring the path-compression setting.
func (w *Warehouse) indexOptions() index.Options {
	opts := index.OptionsFor(w.store)
	opts.CompressPaths = w.compressPaths
	return opts
}

// DocKey maps a document URI to its S3 object key.
func DocKey(uri string) string { return docsPrefix + uri }

// DocumentURIs lists the URIs of all stored documents.
func (w *Warehouse) DocumentURIs() ([]string, error) {
	keys, _, err := w.files.List(Bucket, docsPrefix)
	if err != nil {
		return nil, err
	}
	uris := make([]string, len(keys))
	for i, k := range keys {
		uris[i] = k[len(docsPrefix):]
	}
	return uris, nil
}

// ErrQueryFailed wraps a processing-side failure reported through the
// response queue.
var ErrQueryFailed = errors.New("core: query processing failed")

func (w *Warehouse) nextQueryID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.querySeq++
	return fmt.Sprintf("q-%06d", w.querySeq)
}

// PostingCache exposes the hot-key posting cache, or nil when disabled.
func (w *Warehouse) PostingCache() *index.PostingCache { return w.cache }

// docWorkers is the effective step-13 worker-pool size.
func (w *Warehouse) docWorkers() int {
	if w.queryWorkers > 0 {
		return w.queryWorkers
	}
	return runtime.NumCPU()
}

// forkWorkerUUIDs hands the next live worker its own identifier generator,
// so concurrent loaders never contend on one PRNG lock (and, for a fixed
// worker count, stay reproducible).
func (w *Warehouse) forkWorkerUUIDs() *index.UUIDGen {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.workerSeq++
	return w.uuids.Fork(w.workerSeq)
}
