// Package core implements the paper's contribution: the cloud Web-data
// warehouse architecture of Section 3 (Figure 1).
//
// Documents are stored as files in the S3 file store; the index lives in a
// key-value store (DynamoDB, or SimpleDB for the comparison with [8]); EC2
// virtual instances run the two application modules — the indexing module
// and the query processor — and SQS queues provide reliable asynchronous
// communication between the front end and the modules:
//
//	document in (1) -> S3 (2) -> loader request queue (3)
//	   -> indexing module (4): fetch (5), extract, index store (6)
//	query in (7) -> query request queue (8)
//	   -> query processor (9): index look-up (10-12), fetch documents
//	      (13), evaluate, results to S3 (14), query response queue (15)
//	front end: response (16) -> fetch results (17) -> return (18)
//
// The package offers both the live pipeline (StartIndexer /
// StartQueryProcessor spawn workers that poll the queues, renew message
// leases, and survive instance crashes through SQS redelivery) and
// deterministic synchronous drivers (IndexCorpusOn, RunQueryOn) that the
// experiment harness uses: they issue exactly the same service requests —
// so metering and billing match the cost model — but schedule work
// round-robin over the fleet for reproducible modeled times.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/cloud/chaos"
	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/kv"
	"repro/internal/cloud/s3"
	"repro/internal/cloud/simpledb"
	"repro/internal/cloud/sqs"
	"repro/internal/index"
	"repro/internal/meter"
	"repro/internal/mutate"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// Names of the warehouse's cloud resources.
const (
	Bucket        = "warehouse"
	LoaderQueue   = "loader-requests"
	QueryQueue    = "query-requests"
	ResponseQueue = "query-responses"
	// LoaderDeadLetters parks loading requests that repeatedly failed —
	// e.g. unparsable documents — so they stop being retried (SQS redrive
	// policy; see MaxLoadAttempts).
	LoaderDeadLetters = "loader-dead-letters"
	resultsPrefix     = "results/"
	docsPrefix        = "docs/"
)

// MaxLoadAttempts is how many times a loading request is delivered before
// it is moved to the dead-letter queue (the default; Config.MaxLoadAttempts
// overrides it).
const MaxLoadAttempts = 5

// PerfModel calibrates the modeled CPU throughput of the application code,
// in bytes per second per ECU (an EC2 Compute Unit is the capacity of a
// 1.0-1.2 GHz 2007 Xeon, Section 8.1). Values are fitted so that the
// modeled times at the paper's 40 GB scale land in the ranges of Tables 4
// and Figure 9.
type PerfModel struct {
	// ParseBytesPerECUSec is the XML parsing rate (indexing and querying
	// both parse fetched documents).
	ParseBytesPerECUSec float64
	// ExtractBytesPerECUSec is the rate of producing serialized index
	// entries, charged on the entry bytes emitted.
	ExtractBytesPerECUSec float64
	// EvalBytesPerECUSec is the tree-pattern evaluation rate over parsed
	// documents.
	EvalBytesPerECUSec float64
	// PlanBytesPerECUSec is the rate of the look-up physical plan
	// (intersections, path filtering, holistic twig joins) over the bytes
	// fetched from the index.
	PlanBytesPerECUSec float64
}

// DefaultPerfModel returns the calibrated model.
func DefaultPerfModel() PerfModel {
	const mb = 1 << 20
	return PerfModel{
		ParseBytesPerECUSec:   2.4 * mb,
		ExtractBytesPerECUSec: 1.1 * mb,
		EvalBytesPerECUSec:    3.2 * mb,
		PlanBytesPerECUSec:    16 * mb,
	}
}

func (m PerfModel) withDefaults() PerfModel {
	d := DefaultPerfModel()
	if m.ParseBytesPerECUSec <= 0 {
		m.ParseBytesPerECUSec = d.ParseBytesPerECUSec
	}
	if m.ExtractBytesPerECUSec <= 0 {
		m.ExtractBytesPerECUSec = d.ExtractBytesPerECUSec
	}
	if m.EvalBytesPerECUSec <= 0 {
		m.EvalBytesPerECUSec = d.EvalBytesPerECUSec
	}
	if m.PlanBytesPerECUSec <= 0 {
		m.PlanBytesPerECUSec = d.PlanBytesPerECUSec
	}
	return m
}

// Config assembles a warehouse.
type Config struct {
	// Strategy is the indexing strategy maintained by the warehouse.
	Strategy index.Strategy
	// Backend selects the index store: "dynamodb" (default) or
	// "simpledb".
	Backend string
	// Perf overrides the performance model (zero fields take defaults).
	Perf PerfModel
	// CompressPaths front-codes LUP/2LUPI path lists in the index store
	// (the improvement the paper's conclusion suggests).
	CompressPaths bool
	// VarintIDPayload pins binary identifier sets to the version-1
	// delta+varint blocked blobs instead of the default bit-packed
	// frame-of-reference payloads — an operational escape hatch; readers
	// decode every format either way.
	VarintIDPayload bool
	// Seed drives the UUID generator.
	Seed int64
	// Ledger receives all metering; a fresh one is created when nil.
	Ledger *meter.Ledger

	// QueryWorkers bounds the worker pool that fetches, parses and
	// evaluates candidate documents during one query (step 13 of
	// Figure 1). 0 selects runtime.NumCPU(); 1 runs the sequential path.
	// Results and modeled times are identical at every setting — only real
	// wall-clock time changes.
	QueryWorkers int
	// LookupConcurrency bounds the index look-up fan-out (parallel
	// batch-gets and twig joins). 0 selects GOMAXPROCS; 1 is sequential.
	QueryLookupConcurrency int
	// PostingCacheBytes enables a hot-key posting cache of roughly that
	// many bytes in front of the index store. 0 disables it — the cache
	// changes the billed quantities of repeated look-ups (hits cost no
	// GetOps), so the paper-reproduction experiments run without it.
	PostingCacheBytes int64

	// BulkLoad enables the cross-document bulk loader on the indexing
	// path: index items from many documents are coalesced into full
	// provider-limit batches (index.BulkLoader), and the indexing drivers
	// overlap extraction with uploading in a bounded two-stage pipeline.
	// Store contents are byte-identical to the per-document path (range
	// keys are content-derived, so coalescing changes request packing
	// only); billed BatchPut requests drop to the per-table floor of
	// ceil(items/batch limit), and modeled upload time shrinks with them.
	// Off by default: the per-document write path of the earlier PRs runs
	// unchanged.
	BulkLoad bool
	// BulkFlushItems overrides the per-table batch size at which the bulk
	// loader flushes. 0 selects the store's Limits().BatchPutItems, which
	// is also the upper bound.
	BulkFlushItems int
	// BulkFlushDocs bounds how many loader messages a live indexing worker
	// accumulates (holding their leases) before force-flushing its bulk
	// loader. 0 selects 8. Only meaningful with BulkLoad.
	BulkFlushDocs int
	// PipelineDepth bounds the extraction read-ahead of the bulk indexing
	// driver's two-stage pipeline. 0 selects 4; 1 removes the overlap.
	// Results, modeled times and billing are identical at every depth —
	// only real wall-clock time changes.
	PipelineDepth int

	// Obs is the metrics registry the warehouse records into; a fresh one
	// is created when nil. Registry metrics are always on — they are plain
	// atomic counters and mutex-guarded histograms, never service calls, so
	// they change neither billing nor results.
	Obs *obs.Registry
	// Trace enables the pipeline span tracer. Spans diff the ledger and
	// enter a bounded journal; like the registry they are side-effect-free,
	// and their sequential IDs draw no randomness, so a traced run is
	// byte-identical to an untraced one (the obs differential tests assert
	// this). Off by default: span bookkeeping costs a ledger snapshot per
	// span, which the hot query path should not pay unless asked.
	Trace bool
	// TraceCapacity bounds the span journal (default
	// obs.DefaultJournalCapacity); the oldest spans are dropped beyond it.
	TraceCapacity int

	// IndexShards hash-partitions every index table across that many
	// physical partitions (kv.Sharded): each posting routes to the shard
	// selected by a deterministic hash of its key, and look-ups scatter-
	// gather across shards. 0 or 1 keeps the unsharded layout. Sharded
	// batches ship as single multi-table requests, so results, modeled
	// times and billed cost are identical at every shard count — the
	// sharding differential tests assert this byte-for-byte.
	IndexShards int

	// QueryDeadline bounds each query's modeled index-read time: once a
	// query has charged this much modeled store latency (successful reads
	// and retry backoffs alike), its remaining reads stop — a backoff that
	// would overshoot the deadline is cut at the boundary — and the query
	// fails with resilience.ErrDeadline. 0 (the default) disables the
	// deadline; queries then behave exactly as before.
	QueryDeadline time.Duration
	// QueryRetryBudget caps the store-level retries one query may consume
	// across ALL of its index reads: a shared token pool replaces the
	// per-call attempt count, so a query scattering over many shards cannot
	// multiply its worst-case retry work. 0 (the default) keeps per-call
	// attempts unlimited by the pool (kv.Retry's MaxAttempts still applies
	// per call).
	QueryRetryBudget int
	// CoalesceLookups single-flights concurrent identical index fetches
	// across query workers: a cache-fill stampede on a hot posting issues
	// one billed store read shared by every waiting query. Like the posting
	// cache this changes the billed quantities of overlapping look-ups
	// (coalesced keys cost no GetOps), so it is off by default and the
	// paper-reproduction experiments run without it.
	CoalesceLookups bool

	// MutableCorpus turns the warehouse into a live, mutable corpus:
	// indexing routes through a versioned write buffer (internal/mutate)
	// instead of writing the store directly, documents can be updated and
	// removed atomically (UpdateDocument, RemoveDocument), every query pins
	// a consistent snapshot version at admission, and a compactor folds the
	// buffer into the main store in group-committed batches (CompactNow,
	// or automatically via CompactEveryDocs). A fully compacted store is
	// byte-identical to a from-scratch build of the same corpus.
	MutableCorpus bool
	// CompactEveryDocs triggers a compaction pass after that many
	// mutations (inserts, updates, removes). 0 leaves compaction to
	// explicit CompactNow calls. Only meaningful with MutableCorpus.
	CompactEveryDocs int

	// Chaos, when set, interposes the seeded fault-injection layer between
	// the warehouse and all three cloud services — throttling, transient
	// errors and partial batches on the index store; duplicate delivery and
	// forced lease expiry on the queues; transient faults on the file store
	// — and fronts the index store with a kv.Retry so the injected store
	// faults are absorbed. The warehouse's exactly-once guarantees
	// (deterministic index range keys, lease-based redelivery) make the
	// final contents independent of the injected faults; tests assert that
	// differentially. Rates can be changed mid-run through ChaosInjector.
	Chaos *chaos.Plan
	// MaxLoadAttempts overrides the dead-letter redrive threshold of the
	// loader queue (default MaxLoadAttempts). Chaos runs raise it so that
	// injected redeliveries do not push healthy documents into the DLQ.
	MaxLoadAttempts int
}

// fileService is the slice of the s3 API the warehouse consumes; the chaos
// file wrapper implements it too.
type fileService interface {
	CreateBucket(name string) error
	Put(bkt, key string, data []byte, userMeta map[string]string) (time.Duration, error)
	Get(bkt, key string) (s3.Object, time.Duration, error)
	Delete(bkt, key string) (time.Duration, error)
	List(bkt, prefix string) ([]string, time.Duration, error)
	BucketBytes(bkt string) int64
}

// queueService is the slice of the sqs API the warehouse consumes; the
// chaos queue wrapper implements it too.
type queueService interface {
	CreateQueue(name string) error
	SetRedrivePolicy(queueName, deadLetterQueue string, maxReceive int) error
	Send(queueName, body string) (string, time.Duration, error)
	Receive(queueName string, visibility time.Duration) (*sqs.Message, time.Duration, error)
	ReceiveWait(queueName string, visibility, maxWait time.Duration) (*sqs.Message, time.Duration, error)
	Delete(queueName, receipt string) (time.Duration, error)
	ChangeVisibility(queueName, receipt string, visibility time.Duration) (time.Duration, error)
	Len(queueName string) int
}

// Warehouse wires the cloud services of Figure 1 together.
type Warehouse struct {
	Strategy index.Strategy
	Perf     PerfModel

	compressPaths bool
	varintIDs     bool
	queryWorkers  int
	lookupOpts    index.LookupOptions
	cache         *index.PostingCache

	queryDeadline time.Duration
	queryRetries  int
	flight        *resilience.Group

	bulkLoad       bool
	bulkFlushItems int
	bulkFlushDocs  int
	pipelineDepth  int

	ledger *meter.Ledger
	files  fileService
	store  kv.Store
	queues queueService

	// The unwrapped services, for inspection (dumps, queue lengths) and for
	// the accessors that existing callers rely on; identical to the fields
	// above when no chaos layer is configured.
	baseFiles  *s3.Service
	baseStore  kv.Store
	baseQueues *sqs.Service

	chaosInj *chaos.Injector
	retry    *kv.Retry

	// corpus is the mutable-corpus state machine (nil unless
	// Config.MutableCorpus); compactEvery its auto-compaction threshold.
	corpus       *mutate.Corpus
	compactEvery int

	reg    *obs.Registry
	tracer *obs.Tracer // nil unless Config.Trace
	met    coreMetrics

	mu       sync.Mutex
	querySeq int
}

// coreMetrics holds the warehouse's hot-path instruments, resolved once at
// construction so instrumented code never takes the registry lock.
type coreMetrics struct {
	submitDocs    *obs.Counter
	submitQueries *obs.Counter

	queryProcessed *obs.Counter
	queryFailed    *obs.Counter

	workerProcessed    *obs.Counter
	workerFailures     *obs.Counter
	workerRedeliveries *obs.Counter
	leaseRenewals      *obs.Counter

	lookupGetOps         *obs.Counter
	lookupBytes          *obs.Counter
	lookupTwigCandidates *obs.Counter
	lookupStoreRetries   *obs.Counter
	lookupGetTimeNS      *obs.Counter
	lookupCoalescedKeys  *obs.Counter
	lookupDegradedKeys   *obs.Counter
	lookupIncomplete     *obs.Counter
	cacheHits            *obs.Counter
	cacheMisses          *obs.Counter
	cacheEvictions       *obs.Counter
	joins                index.JoinCounters

	queryResponse  *obs.Histogram
	queryLookup    *obs.Histogram
	queryPlan      *obs.Histogram
	queryFetchEval *obs.Histogram
	indexExtract   *obs.Histogram
	indexUpload    *obs.Histogram
}

func resolveMetrics(r *obs.Registry) coreMetrics {
	return coreMetrics{
		submitDocs:    r.Counter("core.submit.documents"),
		submitQueries: r.Counter("core.submit.queries"),

		queryProcessed: r.Counter("core.query.processed"),
		queryFailed:    r.Counter("core.query.failed"),

		workerProcessed:    r.Counter("core.worker.processed"),
		workerFailures:     r.Counter("core.worker.failures"),
		workerRedeliveries: r.Counter("core.worker.redeliveries"),
		leaseRenewals:      r.Counter("core.worker.lease_renewals"),

		lookupGetOps:         r.Counter("index.lookup.get_ops"),
		lookupBytes:          r.Counter("index.lookup.bytes_fetched"),
		lookupTwigCandidates: r.Counter("index.lookup.twig_candidates"),
		lookupStoreRetries:   r.Counter("index.lookup.store_retries"),
		lookupGetTimeNS:      r.Counter("index.lookup.get_time_ns"),
		lookupCoalescedKeys:  r.Counter("index.lookup.coalesced_keys"),
		lookupDegradedKeys:   r.Counter("index.lookup.degraded_keys"),
		lookupIncomplete:     r.Counter("index.lookup.incomplete"),
		cacheHits:            r.Counter("index.cache.hits"),
		cacheMisses:          r.Counter("index.cache.misses"),
		cacheEvictions:       r.Counter("index.cache.evictions"),
		joins: index.JoinCounters{
			BlocksRead:            r.Counter("index.join.blocks_read"),
			BlocksSkipped:         r.Counter("index.join.blocks_skipped"),
			ContainersIntersected: r.Counter("index.join.containers_intersected"),
		},

		queryResponse:  r.Histogram("core.query.response"),
		queryLookup:    r.Histogram("core.query.lookup"),
		queryPlan:      r.Histogram("core.query.plan"),
		queryFetchEval: r.Histogram("core.query.fetch_eval"),
		indexExtract:   r.Histogram("core.index.extract"),
		indexUpload:    r.Histogram("core.index.upload"),
	}
}

// New provisions the warehouse's bucket, queues and index tables.
func New(cfg Config) (*Warehouse, error) {
	ledger := cfg.Ledger
	if ledger == nil {
		ledger = meter.NewLedger()
	}
	var baseStore kv.Store
	switch cfg.Backend {
	case "", dynamodb.Backend:
		baseStore = dynamodb.New(ledger)
	case simpledb.Backend:
		baseStore = simpledb.New(ledger)
	default:
		return nil, fmt.Errorf("core: unknown backend %q", cfg.Backend)
	}
	baseFiles := s3.New(ledger)
	baseQueues := sqs.New(ledger)
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	w := &Warehouse{
		Strategy:       cfg.Strategy,
		Perf:           cfg.Perf.withDefaults(),
		compressPaths:  cfg.CompressPaths,
		varintIDs:      cfg.VarintIDPayload,
		queryWorkers:   cfg.QueryWorkers,
		queryDeadline:  cfg.QueryDeadline,
		queryRetries:   cfg.QueryRetryBudget,
		lookupOpts:     index.LookupOptions{Concurrency: cfg.QueryLookupConcurrency},
		bulkLoad:       cfg.BulkLoad,
		bulkFlushItems: cfg.BulkFlushItems,
		bulkFlushDocs:  cfg.BulkFlushDocs,
		pipelineDepth:  cfg.PipelineDepth,
		ledger:         ledger,
		files:          baseFiles,
		store:          baseStore,
		queues:         baseQueues,
		baseFiles:      baseFiles,
		baseStore:      baseStore,
		baseQueues:     baseQueues,
		reg:            reg,
		met:            resolveMetrics(reg),
	}
	w.lookupOpts.Joins = &w.met.joins
	if cfg.CoalesceLookups {
		w.flight = resilience.NewGroup()
		w.flight.Sink = reg
		w.lookupOpts.Flight = w.flight
	}
	if cfg.Trace {
		w.tracer = obs.NewTracer(ledger, cfg.TraceCapacity)
	}
	if cfg.Chaos != nil {
		// One injector drives all three wrappers, so a single seed fixes
		// the whole fault schedule; the retry layer in front of the store
		// absorbs the injected kv faults (and any real throttling).
		w.chaosInj = chaos.NewInjector(*cfg.Chaos)
		w.chaosInj.SetSink(reg)
		w.files = chaos.WrapFiles(baseFiles, w.chaosInj)
		w.queues = chaos.WrapQueues(baseQueues, w.chaosInj)
		w.retry = kv.NewRetry(chaos.WrapStore(baseStore, w.chaosInj))
		w.retry.Seed = cfg.Chaos.Seed + 1
		w.retry.Sink = reg
		w.store = w.retry
	}
	if cfg.IndexShards > 1 {
		// The sharding layer sits on top of the whole store stack: over the
		// bare store it ships one multi-table request per logical batch
		// (billing/latency identical to unsharded), over the chaos stack it
		// falls back to per-shard batches so retry and fault semantics stay
		// per physical partition.
		sh := kv.NewSharded(w.store, cfg.IndexShards)
		sh.Sink = reg
		w.store = sh
	}
	if cfg.PostingCacheBytes > 0 {
		w.cache = index.NewPostingCache(cfg.PostingCacheBytes)
		if rt := kv.AsShardRouter(w.store); rt != nil {
			w.cache.SetStoreShards(rt.ShardCount())
		}
		w.lookupOpts.Cache = w.cache
	}
	if cfg.MutableCorpus {
		if cfg.BulkLoad {
			// The bulk loader writes the store directly; on a mutable
			// corpus all writes must route through the buffer, whose
			// compaction provides the same batch packing.
			return nil, fmt.Errorf("core: MutableCorpus is incompatible with BulkLoad")
		}
		// The corpus fronts the full store stack (retry/chaos/sharded), so
		// compaction folds enjoy the same fault absorption as direct writes.
		w.corpus = mutate.NewCorpus(w.store, mutate.Options{Obs: reg})
		w.compactEvery = cfg.CompactEveryDocs
	}
	if err := w.files.CreateBucket(Bucket); err != nil {
		return nil, err
	}
	for _, q := range []string{LoaderQueue, QueryQueue, ResponseQueue, LoaderDeadLetters} {
		if err := w.queues.CreateQueue(q); err != nil {
			return nil, err
		}
	}
	maxAttempts := cfg.MaxLoadAttempts
	if maxAttempts <= 0 {
		maxAttempts = MaxLoadAttempts
	}
	if err := w.queues.SetRedrivePolicy(LoaderQueue, LoaderDeadLetters, maxAttempts); err != nil {
		return nil, err
	}
	if err := index.CreateTables(w.store, cfg.Strategy); err != nil {
		return nil, err
	}
	return w, nil
}

// Ledger exposes the metering ledger (billing, experiment measurements).
func (w *Warehouse) Ledger() *meter.Ledger { return w.ledger }

// Files exposes the underlying file store (unwrapped: reads through it see
// the true stored objects even under chaos).
func (w *Warehouse) Files() *s3.Service { return w.baseFiles }

// Store exposes the index store the warehouse operates on — the retry-
// fronted chaos wrapper when Config.Chaos is set, the bare store otherwise.
func (w *Warehouse) Store() kv.Store { return w.store }

// BaseStore exposes the unwrapped index store, e.g. for dumping table
// contents in differential tests.
func (w *Warehouse) BaseStore() kv.Store { return w.baseStore }

// Queues exposes the underlying queue service (unwrapped; queue lengths
// and DLQ inspection are unaffected by chaos wrapping).
func (w *Warehouse) Queues() *sqs.Service { return w.baseQueues }

// ChaosInjector exposes the chaos decision source, or nil when no chaos
// layer is configured; tests use it to change rates mid-run (e.g. quiesce
// injection before a verification phase).
func (w *Warehouse) ChaosInjector() *chaos.Injector { return w.chaosInj }

// Registry exposes the warehouse's metrics registry.
func (w *Warehouse) Registry() *obs.Registry { return w.reg }

// Tracer exposes the pipeline span tracer, or nil when Config.Trace is off.
func (w *Warehouse) Tracer() *obs.Tracer { return w.tracer }

// ChaosCounts reports the faults injected so far (zero value when no chaos
// layer is configured). It is a thin view over the obs Registry: the
// injector streams every tally into the registry's chaos.* counters, and
// this accessor reads them back.
func (w *Warehouse) ChaosCounts() chaos.Counts {
	if w.chaosInj == nil {
		return chaos.Counts{}
	}
	return chaos.Counts{
		Throttles:      w.reg.Counter(chaos.MetricThrottles).Value(),
		Internals:      w.reg.Counter(chaos.MetricInternals).Value(),
		PartialBatches: w.reg.Counter(chaos.MetricPartialBatches).Value(),
		DupDeliveries:  w.reg.Counter(chaos.MetricDupDeliveries).Value(),
		ExpiredLeases:  w.reg.Counter(chaos.MetricExpiredLeases).Value(),
		S3Faults:       w.reg.Counter(chaos.MetricS3Faults).Value(),
	}
}

// RetryStats reports the degradation absorbed by the store retry layer
// (zero value when no chaos layer is configured). Like ChaosCounts it is a
// registry view: the retry wrapper mirrors every counter into the
// registry's kv.retry.* metrics.
func (w *Warehouse) RetryStats() kv.RetryStats {
	if w.retry == nil {
		return kv.RetryStats{}
	}
	return kv.RetryStats{
		Retries:          w.reg.Counter(kv.MetricRetries).Value(),
		Throttles:        w.reg.Counter(kv.MetricRetryThrottles).Value(),
		Internal:         w.reg.Counter(kv.MetricRetryInternal).Value(),
		PartialBatches:   w.reg.Counter(kv.MetricPartialBatches).Value(),
		ItemsResubmitted: w.reg.Counter(kv.MetricItemsResubmitted).Value(),
		KeysRefetched:    w.reg.Counter(kv.MetricKeysRefetched).Value(),
		GaveUp:           w.reg.Counter(kv.MetricGaveUp).Value(),
	}
}

// LookupTotals reports the cumulative look-up statistics of every query the
// warehouse processed, read from the obs Registry (the per-query numbers
// are in each QueryStats.Lookup).
func (w *Warehouse) LookupTotals() index.LookupStats {
	return index.LookupStats{
		GetOps:         w.met.lookupGetOps.Value(),
		GetTime:        time.Duration(w.met.lookupGetTimeNS.Value()),
		BytesFetched:   w.met.lookupBytes.Value(),
		TwigCandidates: int(w.met.lookupTwigCandidates.Value()),
		CacheHits:      w.met.cacheHits.Value(),
		CacheMisses:    w.met.cacheMisses.Value(),
		CacheEvictions: w.met.cacheEvictions.Value(),
		StoreRetries:   w.met.lookupStoreRetries.Value(),
		CoalescedKeys:  w.met.lookupCoalescedKeys.Value(),
		DegradedKeys:   w.met.lookupDegradedKeys.Value(),
		Incomplete:     w.met.lookupIncomplete.Value() > 0,
	}
}

// CoalesceStats reports the single-flight coalescing counters (zero value
// when Config.CoalesceLookups is off). Like ChaosCounts it is a registry
// view: the flight group streams its counters into the registry.
func (w *Warehouse) CoalesceStats() resilience.GroupStats {
	if w.flight == nil {
		return resilience.GroupStats{}
	}
	return resilience.GroupStats{
		Hits:    w.reg.Counter(resilience.MetricCoalesceHits).Value(),
		Leaders: w.reg.Counter(resilience.MetricCoalesceLeaders).Value(),
	}
}

// DataBytes returns the stored document bytes (s(D)).
func (w *Warehouse) DataBytes() int64 { return w.baseFiles.BucketBytes(Bucket) }

// IndexBytes returns the index store footprint: raw user bytes and the
// store's own overhead (sr(D,I) and ovh(D,I) of Section 7.1).
func (w *Warehouse) IndexBytes() (raw, overhead int64) {
	for _, t := range w.Strategy.Tables() {
		raw += w.store.TableBytes(t)
		overhead += w.store.OverheadBytes(t)
	}
	return raw, overhead
}

// IndexItems returns the number of items in the index tables (|op(D,I)|
// under the per-row billing model).
func (w *Warehouse) IndexItems() int64 {
	var n int64
	for _, t := range w.Strategy.Tables() {
		n += w.store.ItemCount(t)
	}
	return n
}

// indexOptions returns the extraction options for the warehouse's store,
// honouring the path-compression and identifier-payload settings.
func (w *Warehouse) indexOptions() index.Options {
	opts := index.OptionsFor(w.store)
	opts.CompressPaths = w.compressPaths
	if w.varintIDs {
		opts.IDPayload = index.PayloadVarint
	}
	return opts
}

// DocKey maps a document URI to its S3 object key.
func DocKey(uri string) string { return docsPrefix + uri }

// DocumentURIs lists the URIs of all stored documents.
func (w *Warehouse) DocumentURIs() ([]string, error) {
	keys, _, err := w.files.List(Bucket, docsPrefix)
	if err != nil {
		return nil, err
	}
	uris := make([]string, len(keys))
	for i, k := range keys {
		uris[i] = k[len(docsPrefix):]
	}
	return uris, nil
}

// ErrQueryFailed wraps a processing-side failure reported through the
// response queue.
var ErrQueryFailed = errors.New("core: query processing failed")

func (w *Warehouse) nextQueryID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.querySeq++
	return fmt.Sprintf("q-%06d", w.querySeq)
}

// PostingCache exposes the hot-key posting cache, or nil when disabled.
func (w *Warehouse) PostingCache() *index.PostingCache { return w.cache }

// noteLookup folds one look-up's statistics into the registry counters;
// LookupTotals reads them back.
func (w *Warehouse) noteLookup(lst index.LookupStats) {
	w.met.lookupGetOps.Add(lst.GetOps)
	w.met.lookupBytes.Add(lst.BytesFetched)
	w.met.lookupTwigCandidates.Add(int64(lst.TwigCandidates))
	w.met.lookupStoreRetries.Add(lst.StoreRetries)
	w.met.lookupGetTimeNS.Add(int64(lst.GetTime))
	w.met.lookupCoalescedKeys.Add(lst.CoalescedKeys)
	w.met.lookupDegradedKeys.Add(lst.DegradedKeys)
	if lst.Incomplete {
		w.met.lookupIncomplete.Inc()
	}
	w.met.cacheHits.Add(lst.CacheHits)
	w.met.cacheMisses.Add(lst.CacheMisses)
	w.met.cacheEvictions.Add(lst.CacheEvictions)
}

// queryContext builds one query's context, carrying its fresh modeled-time
// and retry budget, or returns nil when neither tail-latency bound is
// configured — the look-up then runs the exact historical path with no
// budget bookkeeping at all.
func (w *Warehouse) queryContext() context.Context {
	if w.queryDeadline <= 0 && w.queryRetries <= 0 {
		return nil
	}
	tokens := -1 // unlimited unless a pool is configured
	if w.queryRetries > 0 {
		tokens = w.queryRetries
	}
	return resilience.NewContext(context.Background(), resilience.NewBudget(w.queryDeadline, tokens))
}

// docWorkers is the effective step-13 worker-pool size.
func (w *Warehouse) docWorkers() int {
	if w.queryWorkers > 0 {
		return w.queryWorkers
	}
	return runtime.NumCPU()
}
