package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/index"
	"repro/internal/xmark"
)

func newWarehouse(t *testing.T, s index.Strategy) *Warehouse {
	t.Helper()
	w, err := New(Config{Strategy: s})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func loadPaintings(t *testing.T, w *Warehouse, fleet []*ec2.Instance) IndexReport {
	t.Helper()
	var uris []string
	for _, d := range xmark.Paintings() {
		if _, err := w.files.Put(Bucket, DocKey(d.URI), d.Data, nil); err != nil {
			t.Fatal(err)
		}
		uris = append(uris, d.URI)
	}
	rep, err := w.IndexCorpusOn(fleet, uris)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestIndexCorpusOnReport(t *testing.T) {
	w := newWarehouse(t, index.LUP)
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 2)
	rep := loadPaintings(t, w, fleet)
	if rep.Docs != 13 {
		t.Errorf("docs = %d, want 13", rep.Docs)
	}
	if rep.Items == 0 || rep.Entries == 0 || rep.Total <= 0 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Items != int(w.IndexItems()) {
		t.Errorf("report items %d != store items %d", rep.Items, w.IndexItems())
	}
	raw, ovh := w.IndexBytes()
	if raw <= 0 || ovh <= 0 {
		t.Errorf("index bytes = %d, %d", raw, ovh)
	}
	if w.DataBytes() <= 0 {
		t.Error("no data bytes")
	}
	// Queue fully drained.
	if w.queues.Len(LoaderQueue) != 0 {
		t.Error("loader queue not drained")
	}
}

func TestRunQueryOnWithAndWithoutIndex(t *testing.T) {
	for _, s := range index.All() {
		w := newWarehouse(t, s)
		fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)
		loadPaintings(t, w, fleet)
		in := ec2.Launch(w.ledger, ec2.XL)

		const q = `//painting[/name~"Lion", /painter[/name[/last{val}]]]`
		withIdx, si, err := w.RunQueryOn(in, q, true)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		noIdx, sn, err := w.RunQueryOn(in, q, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(withIdx.Rows) != 2 || len(noIdx.Rows) != 2 {
			t.Errorf("%s: rows with=%d without=%d, want 2", s.Name(), len(withIdx.Rows), len(noIdx.Rows))
		}
		if si.DocsFetched >= sn.DocsFetched {
			t.Errorf("%s: indexed fetched %d docs, no-index %d", s.Name(), si.DocsFetched, sn.DocsFetched)
		}
		if si.ResponseTime >= sn.ResponseTime {
			t.Errorf("%s: indexed response %v not faster than %v", s.Name(), si.ResponseTime, sn.ResponseTime)
		}
		if si.GetOps == 0 || sn.GetOps != 0 {
			t.Errorf("%s: get ops with=%d without=%d", s.Name(), si.GetOps, sn.GetOps)
		}
		if sn.DocsFetched != 13 {
			t.Errorf("no-index fetched %d docs, want all 13", sn.DocsFetched)
		}
	}
}

func TestValueJoinQueryThroughWarehouse(t *testing.T) {
	w := newWarehouse(t, index.TwoLUPI)
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)
	loadPaintings(t, w, fleet)
	in := ec2.Launch(w.ledger, ec2.Large)
	res, stats, err := w.RunQueryOn(in,
		`//museum[/name{val}, //painting[/@id $a]], //painting[/@id $b, /painter[/name[/last="Delacroix"]]] where $a = $b`, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("join query returned nothing")
	}
	for _, r := range res.Rows {
		if r.Cols[0] == "Musee dOrsay" {
			t.Errorf("false join result: %v", r)
		}
	}
	if stats.DocIDsFromIndex <= stats.DocsFetched-1 {
		// Per-pattern counts sum across patterns; with two patterns this
		// is at least the fetched unions.
		t.Logf("doc ids=%d fetched=%d", stats.DocIDsFromIndex, stats.DocsFetched)
	}
}

func TestQueryStatsDecomposition(t *testing.T) {
	w := newWarehouse(t, index.TwoLUPI)
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)
	loadPaintings(t, w, fleet)
	in := ec2.Launch(w.ledger, ec2.XL)
	_, st, err := w.RunQueryOn(in, `//painting[/name{val}]`, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.LookupGetTime <= 0 || st.PlanTime <= 0 || st.FetchEvalTime <= 0 {
		t.Errorf("decomposition has zero components: %+v", st)
	}
	// The multicore overlap property the paper highlights: response time
	// below the sum of the detailed components is allowed; it must at
	// least cover the serial look-up part.
	if st.ResponseTime < st.LookupGetTime+st.PlanTime {
		t.Errorf("response %v below serial lookup %v", st.ResponseTime, st.LookupGetTime+st.PlanTime)
	}
}

func TestXLFasterThanLSameWorkload(t *testing.T) {
	times := map[string]time.Duration{}
	for _, typ := range []ec2.InstanceType{ec2.Large, ec2.XL} {
		w := newWarehouse(t, index.LU)
		fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)
		loadPaintings(t, w, fleet)
		in := ec2.Launch(w.ledger, typ)
		_, st, err := w.RunQueryOn(in, `//painting[/name{val}]`, false)
		if err != nil {
			t.Fatal(err)
		}
		times[typ.Name] = st.ResponseTime
	}
	if times["xl"] >= times["l"] {
		t.Errorf("xl (%v) not faster than l (%v)", times["xl"], times["l"])
	}
}

func TestLivePipelineEndToEnd(t *testing.T) {
	w := newWarehouse(t, index.LUP)
	// Submit documents through the front end (steps 1-3).
	for _, d := range xmark.Paintings() {
		if err := w.SubmitDocument(d.URI, d.Data); err != nil {
			t.Fatal(err)
		}
	}
	// Two live indexers.
	idx1 := w.StartIndexer(ec2.Launch(w.ledger, ec2.Large), WorkerOptions{})
	idx2 := w.StartIndexer(ec2.Launch(w.ledger, ec2.Large), WorkerOptions{})
	deadline := time.Now().Add(10 * time.Second)
	for w.queues.Len(LoaderQueue) > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	idx1.Stop()
	idx2.Stop()
	if w.queues.Len(LoaderQueue) != 0 {
		t.Fatal("loader queue not drained by live indexers")
	}
	if idx1.Processed()+idx2.Processed() != 13 {
		t.Fatalf("processed %d + %d, want 13", idx1.Processed(), idx2.Processed())
	}

	// One live query processor; query through the front end (7-8, 16-18).
	qp := w.StartQueryProcessor(ec2.Launch(w.ledger, ec2.XL), WorkerOptions{})
	defer qp.Stop()
	id, err := w.SubmitQuery(`//painting[/name~"Lion", /painter[/name[/last{val}]]]`, true)
	if err != nil {
		t.Fatal(err)
	}
	out, err := w.AwaitResult(id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Result.Rows) != 2 {
		t.Errorf("rows = %d, want 2", len(out.Result.Rows))
	}
}

func TestFaultToleranceIndexerCrash(t *testing.T) {
	w := newWarehouse(t, index.LU)
	for _, d := range xmark.Paintings()[:4] {
		if err := w.SubmitDocument(d.URI, d.Data); err != nil {
			t.Fatal(err)
		}
	}
	// A slow worker with a short lease crashes mid-document.
	victim := w.StartIndexer(ec2.Launch(w.ledger, ec2.Large), WorkerOptions{
		Visibility: 50 * time.Millisecond,
		WorkDelay:  200 * time.Millisecond,
	})
	time.Sleep(80 * time.Millisecond) // it has received a message by now
	victim.Crash()

	// A healthy worker must pick up everything, including the abandoned
	// message once its lease expires.
	rescuer := w.StartIndexer(ec2.Launch(w.ledger, ec2.Large), WorkerOptions{})
	deadline := time.Now().Add(10 * time.Second)
	for w.queues.Len(LoaderQueue) > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	rescuer.Stop()
	if got := w.queues.Len(LoaderQueue); got != 0 {
		t.Fatalf("queue still holds %d messages after crash recovery", got)
	}
	if rescuer.Processed() == 0 {
		t.Error("rescuer processed nothing")
	}
}

func TestErrorQueryReportedThroughResponseQueue(t *testing.T) {
	w := newWarehouse(t, index.LU)
	qp := w.StartQueryProcessor(ec2.Launch(w.ledger, ec2.Large), WorkerOptions{})
	defer qp.Stop()
	id, err := w.SubmitQuery(`not a ( valid query`, true)
	if err != nil {
		t.Fatal(err)
	}
	out, err := w.AwaitResult(id, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if out.Err == nil || !errors.Is(out.Err, ErrQueryFailed) {
		t.Errorf("outcome error = %v", out.Err)
	}
}

func TestAwaitResultSkipsForeignResponses(t *testing.T) {
	w := newWarehouse(t, index.LU)
	qp := w.StartQueryProcessor(ec2.Launch(w.ledger, ec2.Large), WorkerOptions{})
	defer qp.Stop()
	// Two queries; await the second first.
	idA, _ := w.SubmitQuery(`//painting`, true)
	idB, _ := w.SubmitQuery(`//museum`, true)
	outB, err := w.AwaitResult(idB, 10*time.Second)
	if err != nil || outB.Err != nil {
		t.Fatalf("await B: %v / %v", err, outB)
	}
	outA, err := w.AwaitResult(idA, 10*time.Second)
	if err != nil || outA.Err != nil {
		t.Fatalf("await A: %v / %v", err, outA)
	}
}

func TestNewRejectsUnknownBackend(t *testing.T) {
	if _, err := New(Config{Backend: "etcd"}); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestSimpleDBBackedWarehouse(t *testing.T) {
	w, err := New(Config{Strategy: index.LUI, Backend: "simpledb"})
	if err != nil {
		t.Fatal(err)
	}
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)
	loadPaintings(t, w, fleet)
	in := ec2.Launch(w.ledger, ec2.Large)
	res, _, err := w.RunQueryOn(in, `//painting[/name~"Lion", /painter[/name[/last{val}]]]`, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d, want 2", len(res.Rows))
	}
}

func TestMeteringMatchesCostModelShape(t *testing.T) {
	// The per-query queue requests of the deterministic driver must match
	// the cost model: 3 front-end + 3 processor-side requests per query.
	w := newWarehouse(t, index.LU)
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)
	loadPaintings(t, w, fleet)
	in := ec2.Launch(w.ledger, ec2.Large)
	before := w.ledger.Snapshot()
	if _, _, err := w.RunQueryOn(in, `//painting[/name{val}]`, true); err != nil {
		t.Fatal(err)
	}
	delta := w.ledger.Snapshot().Sub(before)
	if got := delta.ServiceCalls("sqs"); got != 6 {
		t.Errorf("sqs calls per query = %d, want 6", got)
	}
	if got := delta.EgressBytes(); got <= 0 {
		t.Error("no egress recorded for returned results")
	}
	// One S3 put for the results, gets for the documents fetched.
	if got := delta.Get("s3", "put").Calls; got != 1 {
		t.Errorf("s3 puts per query = %d, want 1", got)
	}
}

func TestDocumentURIs(t *testing.T) {
	w := newWarehouse(t, index.LU)
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)
	loadPaintings(t, w, fleet)
	uris, err := w.DocumentURIs()
	if err != nil {
		t.Fatal(err)
	}
	if len(uris) != 13 {
		t.Fatalf("uris = %d", len(uris))
	}
	for _, u := range uris {
		if strings.HasPrefix(u, "docs/") {
			t.Errorf("prefix not stripped: %s", u)
		}
	}
}
