package core

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// This file implements the serving front end: a response dispatcher that
// lets many concurrent clients share the warehouse's query pipeline.
//
// RunQueryOn and AwaitResult assume one interactive caller: under
// concurrency each waiter polls the response queue, re-leasing every
// message that is not its own, so N waiters cost O(N) billed receives per
// response and bounce messages between leases. The Frontend replaces that
// with the shape a real server uses — SubmitQuery per request, ONE receive
// loop on the response queue that routes each response to its waiting
// caller by query ID, fetches the result object (step 17 of Figure 1),
// meters the egress, and deletes the response message exactly once.

// Frontend multiplexes concurrent clients over the warehouse's query and
// response queues. Create with NewFrontend, issue queries with Do (or
// Submit + the returned channel), and Close when done. A warehouse should
// have at most one running Frontend, and the interactive helpers
// (RunQueryOn, AwaitResult) must not race with it for the response queue.
type Frontend struct {
	w *Warehouse

	mu        sync.Mutex
	pending   map[string]chan *QueryOutcome
	abandoned map[string]bool

	stop chan struct{}
	done sync.WaitGroup
}

// NewFrontend starts the response dispatcher and returns the front end.
func NewFrontend(w *Warehouse) *Frontend {
	f := &Frontend{
		w:         w,
		pending:   make(map[string]chan *QueryOutcome),
		abandoned: make(map[string]bool),
		stop:      make(chan struct{}),
	}
	f.done.Add(1)
	go f.dispatch()
	return f
}

// Submit enqueues a query (steps 7-8) and returns its ID plus the channel
// its outcome will be delivered on (buffered; the dispatcher never blocks).
func (f *Frontend) Submit(queryText string, useIndex bool) (string, <-chan *QueryOutcome, error) {
	id, err := f.w.SubmitQuery(queryText, useIndex)
	if err != nil {
		return "", nil, err
	}
	ch := make(chan *QueryOutcome, 1)
	f.mu.Lock()
	f.pending[id] = ch
	f.mu.Unlock()
	return id, ch, nil
}

// Do runs one query to completion: submit, wait for the routed response,
// return the outcome. A timeout abandons the query — its response message,
// when it eventually arrives, is consumed and discarded so it cannot
// poison later queries.
func (f *Frontend) Do(queryText string, useIndex bool, timeout time.Duration) (*QueryOutcome, error) {
	id, ch, err := f.Submit(queryText, useIndex)
	if err != nil {
		return nil, err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case out := <-ch:
		return out, nil
	case <-t.C:
		f.abandon(id)
		return nil, fmt.Errorf("core: timed out waiting for result of %s", id)
	case <-f.stop:
		return nil, fmt.Errorf("core: frontend closed while waiting for %s", id)
	}
}

// abandon forgets a pending query; the dispatcher will delete its response
// message on arrival instead of routing it.
func (f *Frontend) abandon(id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.pending[id]; ok {
		delete(f.pending, id)
		f.abandoned[id] = true
	}
}

// Pending reports how many submitted queries are still awaiting responses.
func (f *Frontend) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pending)
}

// Close stops the dispatcher. In-flight waiters receive a frontend-closed
// error; the query processors keep draining the query queue independently.
func (f *Frontend) Close() {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	f.done.Wait()
}

// take resolves a response ID to its waiting channel (removing it), or
// reports the ID was abandoned (consuming the abandonment).
func (f *Frontend) take(id string) (chan *QueryOutcome, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.pending[id]; ok {
		delete(f.pending, id)
		return ch, false
	}
	if f.abandoned[id] {
		delete(f.abandoned, id)
		return nil, true
	}
	return nil, false
}

func (f *Frontend) dispatch() {
	defer f.done.Done()
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		m, _, err := f.w.queues.ReceiveWait(ResponseQueue, 30*time.Second, 100*time.Millisecond)
		if err != nil || m == nil {
			continue
		}
		var resp responseMessage
		if err := json.Unmarshal([]byte(m.Body), &resp); err != nil {
			// A malformed response is unroutable; drop it rather than bounce
			// it forever.
			f.w.queues.Delete(ResponseQueue, m.Receipt)
			continue
		}
		ch, wasAbandoned := f.take(resp.ID)
		if ch == nil {
			if wasAbandoned {
				f.w.queues.Delete(ResponseQueue, m.Receipt)
				continue
			}
			// Not registered yet: the processor can finish between
			// SubmitQuery returning and the caller's entry appearing, or the
			// response belongs to someone else entirely. Re-lease it briefly
			// and pick it up on a later pass, exactly as AwaitResult does.
			f.w.queues.ChangeVisibility(ResponseQueue, m.Receipt, 100*time.Millisecond)
			continue
		}
		out := &QueryOutcome{ID: resp.ID}
		if _, err := f.w.queues.Delete(ResponseQueue, m.Receipt); err != nil {
			out.Err = err
			ch <- out
			continue
		}
		if resp.Error != "" {
			out.Err = fmt.Errorf("%w: %s", ErrQueryFailed, resp.Error)
			ch <- out
			continue
		}
		obj, _, err := f.w.files.Get(Bucket, resp.ResultKey)
		if err != nil {
			out.Err = err
			ch <- out
			continue
		}
		f.w.ledger.AddEgress(int64(len(obj.Data)))
		result, err := decodeResult(obj.Data)
		if err != nil {
			out.Err = err
		} else {
			out.Result = result
		}
		ch <- out
	}
}
