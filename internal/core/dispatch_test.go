package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/index"
)

func startFrontendWarehouse(t *testing.T) (*Warehouse, *Frontend, *Worker) {
	t.Helper()
	w := newWarehouse(t, index.LU)
	fleet := []*ec2.Instance{ec2.Launch(w.ledger, ec2.Large)}
	loadPaintings(t, w, fleet)
	qp := w.StartQueryProcessor(ec2.Launch(w.ledger, ec2.XL), WorkerOptions{})
	return w, NewFrontend(w), qp
}

// Concurrent Do calls share one dispatcher: every caller gets its own
// query's outcome, and nothing is left pending afterwards.
func TestFrontendConcurrentDo(t *testing.T) {
	_, f, qp := startFrontendWarehouse(t)
	defer qp.Stop()
	defer f.Close()

	const clients = 6
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := f.Do(`//painting[/name{val}]`, true, 20*time.Second)
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = out.Err
			if out.Err == nil && len(out.Result.Rows) == 0 {
				t.Errorf("client %d: empty result", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if n := f.Pending(); n != 0 {
		t.Fatalf("Pending = %d after all outcomes delivered", n)
	}
}

// A timed-out query is abandoned: Do returns the timeout error, Pending
// drops to zero, and the late response is consumed by the dispatcher so
// the next query is unaffected.
func TestFrontendTimeoutAbandons(t *testing.T) {
	_, f, qp := startFrontendWarehouse(t)
	defer qp.Stop()
	defer f.Close()

	_, err := f.Do(`//painting[/name{val}]`, true, 0)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("Do with zero timeout = %v, want timeout error", err)
	}
	if n := f.Pending(); n != 0 {
		t.Fatalf("Pending = %d after abandon", n)
	}
	// The abandoned query's response must not poison this one.
	out, err := f.Do(`//museum[/name{val}]`, true, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if out.Err != nil {
		t.Fatal(out.Err)
	}
}

// Close wakes blocked waiters with a frontend-closed error.
func TestFrontendCloseUnblocksWaiters(t *testing.T) {
	w := newWarehouse(t, index.LU)
	fleet := []*ec2.Instance{ec2.Launch(w.ledger, ec2.Large)}
	loadPaintings(t, w, fleet)
	// No query processor: the submitted query never gets a response.
	f := NewFrontend(w)
	errCh := make(chan error, 1)
	go func() {
		_, err := f.Do(`//painting`, true, time.Minute)
		errCh <- err
	}()
	// Let the submit land before closing.
	for f.Pending() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	f.Close()
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "closed") {
			t.Fatalf("Do after Close = %v, want frontend-closed error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not released by Close")
	}
}
