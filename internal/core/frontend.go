package core

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/obs"
)

// This file implements the front end (steps 1-3, 7-8 and 16-18 of
// Figure 1) and the live worker loops of the two modules. Workers poll
// their queue, renew their message lease while working, and delete the
// message only on success — so a crashed instance's work is redelivered to
// another worker (the fault-tolerance mechanism of Section 3).

// SubmitDocument stores a document in the file store and enqueues a
// loading request (steps 1-3).
func (w *Warehouse) SubmitDocument(uri string, data []byte) error {
	sp := w.tracer.Start(obs.SpanSubmitDocument)
	sp.SetAttr("uri", uri)
	defer sp.End()
	put, err := w.files.Put(Bucket, DocKey(uri), data, nil)
	if err != nil {
		sp.SetError(err)
		return err
	}
	_, send, err := w.queues.Send(LoaderQueue, uri)
	sp.SetModeled(put + send)
	sp.SetError(err)
	if err == nil {
		w.met.submitDocs.Inc()
	}
	return err
}

// SubmitQuery enqueues a query (steps 7-8) and returns its identifier.
func (w *Warehouse) SubmitQuery(queryText string, useIndex bool) (string, error) {
	id := w.nextQueryID()
	sp := w.tracer.Start(obs.SpanSubmitQuery)
	sp.SetAttr("id", id)
	defer sp.End()
	msg := queryMessage{ID: id, Query: queryText, Strategy: w.Strategy.Name(), NoIndex: !useIndex}
	body, err := json.Marshal(msg)
	if err != nil {
		sp.SetError(err)
		return "", err
	}
	_, send, err := w.queues.Send(QueryQueue, string(body))
	sp.SetModeled(send)
	if err != nil {
		sp.SetError(err)
		return "", err
	}
	w.met.submitQueries.Inc()
	return id, nil
}

// AwaitResult blocks until the response for the given query arrives
// (steps 16-18) or the timeout elapses. Responses for other queries are
// released back to the queue.
func (w *Warehouse) AwaitResult(id string, timeout time.Duration) (*QueryOutcome, error) {
	deadline := time.Now().Add(timeout)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, fmt.Errorf("core: timed out waiting for result of %s", id)
		}
		m, _, err := w.queues.ReceiveWait(ResponseQueue, 30*time.Second, remaining)
		if err != nil {
			return nil, err
		}
		if m == nil {
			continue
		}
		var resp responseMessage
		if err := json.Unmarshal([]byte(m.Body), &resp); err != nil {
			return nil, err
		}
		if resp.ID != id {
			// Not ours: put it back with a short lease. Releasing it
			// outright would make the oldest-first receive hand us the
			// same message again before any newer response.
			if _, err := w.queues.ChangeVisibility(ResponseQueue, m.Receipt, 100*time.Millisecond); err != nil {
				return nil, err
			}
			continue
		}
		if _, err := w.queues.Delete(ResponseQueue, m.Receipt); err != nil {
			return nil, err
		}
		if resp.Error != "" {
			return &QueryOutcome{ID: id, Err: fmt.Errorf("%w: %s", ErrQueryFailed, resp.Error)}, nil
		}
		obj, _, err := w.files.Get(Bucket, resp.ResultKey)
		if err != nil {
			return nil, err
		}
		w.ledger.AddEgress(int64(len(obj.Data)))
		result, err := decodeResult(obj.Data)
		if err != nil {
			return nil, err
		}
		return &QueryOutcome{ID: id, Result: result}, nil
	}
}

// QueryOutcome is what the front end hands back to the user.
type QueryOutcome struct {
	ID     string
	Result *engine.Result
	Err    error
}

// Worker is a live module worker bound to one virtual instance.
type Worker struct {
	Instance *ec2.Instance

	stop    chan struct{}
	crashed chan struct{}
	done    sync.WaitGroup

	mu          sync.Mutex
	processed   int
	failures    int
	redelivered int
}

// Processed reports how many messages the worker completed.
func (wk *Worker) Processed() int {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	return wk.processed
}

// Failures reports how many messages the worker failed on.
func (wk *Worker) Failures() int {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	return wk.failures
}

// Redeliveries reports how many of the worker's received messages were
// redeliveries (receive count above one) — deliveries absorbed by the
// idempotent write path after crashes, lease expiries or duplicate
// delivery.
func (wk *Worker) Redeliveries() int {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	return wk.redelivered
}

// noteReceive records a delivery; redeliveries also bump the given
// registry counter (nil-safe).
func (wk *Worker) noteReceive(receiveCount int, redeliveries *obs.Counter) {
	if receiveCount > 1 {
		wk.mu.Lock()
		wk.redelivered++
		wk.mu.Unlock()
		redeliveries.Inc()
	}
}

// Stop drains the worker gracefully: it finishes (and acknowledges) its
// current message, then exits.
func (wk *Worker) Stop() {
	select {
	case <-wk.stop:
	default:
		close(wk.stop)
	}
	wk.done.Wait()
}

// Crash kills the worker abruptly: its current message is neither finished
// nor deleted, so the lease will expire and another worker takes over.
func (wk *Worker) Crash() {
	select {
	case <-wk.crashed:
	default:
		close(wk.crashed)
	}
	wk.done.Wait()
}

func newWorker(in *ec2.Instance) *Worker {
	return &Worker{Instance: in, stop: make(chan struct{}), crashed: make(chan struct{})}
}

func (wk *Worker) stopped() bool {
	select {
	case <-wk.stop:
		return true
	case <-wk.crashed:
		return true
	default:
		return false
	}
}

// WorkerOptions tunes the live loops.
type WorkerOptions struct {
	// Visibility is the message lease duration; it is renewed at
	// Visibility/2 while processing. Default 2s (tests use shorter).
	Visibility time.Duration
	// Poll is the long-poll duration of an idle worker. Default 100ms.
	Poll time.Duration
	// WorkDelay artificially stretches real processing time (tests use it
	// to exercise lease expiry and crashes mid-flight).
	WorkDelay time.Duration
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Visibility <= 0 {
		o.Visibility = 2 * time.Second
	}
	if o.Poll <= 0 {
		o.Poll = 100 * time.Millisecond
	}
	return o
}

// StartIndexer launches the indexing module on an instance (steps 4-6).
// With Config.BulkLoad set, the worker accumulates a group of loader
// messages (holding all their leases) and ships their items through a
// cross-document bulk loader; see bulkIndexerLoop.
func (w *Warehouse) StartIndexer(in *ec2.Instance, opts WorkerOptions) *Worker {
	opts = opts.withDefaults()
	wk := newWorker(in)
	wk.done.Add(1)
	go func() {
		defer wk.done.Done()
		w.store.RegisterClient()
		defer w.store.UnregisterClient()
		if w.bulkLoad {
			w.bulkIndexerLoop(wk, in, opts)
			return
		}
		for !wk.stopped() {
			msg, rtt, err := w.queues.ReceiveWait(LoaderQueue, opts.Visibility, opts.Poll)
			if err != nil || msg == nil {
				continue
			}
			wk.noteReceive(msg.ReceiveCount, w.met.workerRedeliveries)
			dsp := w.tracer.Start(obs.SpanIndexDoc)
			dsp.SetAttr("uri", msg.Body)
			stopRenew := w.renewLease(wk, LoaderQueue, msg.Receipt, opts.Visibility)
			if opts.WorkDelay > 0 {
				time.Sleep(opts.WorkDelay)
			}
			if wk.crashedNow() {
				stopRenew()
				dsp.End()
				return
			}
			res, err := w.indexDocument(in, msg.Body, dsp)
			stopRenew()
			if wk.crashedNow() {
				dsp.End()
				return
			}
			if err != nil {
				dsp.SetError(err)
				dsp.End()
				wk.mu.Lock()
				wk.failures++
				wk.mu.Unlock()
				w.met.workerFailures.Inc()
				continue // lease will expire; the message is retried
			}
			if _, err := w.queues.Delete(LoaderQueue, msg.Receipt); err != nil {
				// Lease lost: another worker owns the message now; our
				// index writes are idempotent at the entry level.
				dsp.End()
				continue
			}
			in.Run(rtt + res.ExtractTime + res.UploadTime)
			dsp.SetModeled(rtt + res.ExtractTime + res.UploadTime)
			dsp.End()
			wk.mu.Lock()
			wk.processed++
			wk.mu.Unlock()
			w.met.workerProcessed.Inc()
		}
	}()
	return wk
}

// heldMessage is one loader message a bulk indexing worker is sitting on:
// extracted, its items in the group's bulk loader, its lease being renewed
// until the group flushes.
type heldMessage struct {
	receipt   string
	rtt       time.Duration
	res       IndexTaskResult
	span      *obs.Span // index.doc root; ended at settle or abandon
	stopRenew func()
	settled   bool // deleted (or given up on) before the group flush
}

// bulkIndexerLoop is the live indexing worker in bulk mode. It accumulates
// up to Config.BulkFlushDocs messages per group — extracting each document
// as it arrives and feeding the extraction to a shared BulkLoader, while a
// lease renewer per message keeps the whole group invisible — then closes
// the loader and only deletes a message once its document's items are
// durably flushed. Fault semantics compose with the §5d failure model
// exactly like the per-document worker's:
//
//   - a document the loader completes early (its batches filled) is deleted
//     as soon as Add reports it, shrinking the at-risk window;
//   - an extraction failure skips the document (no delete): its lease
//     expires and the message is redelivered, eventually dead-lettered;
//   - a flush failure abandons the whole group without deleting: every
//     message is redelivered, and the content-derived range keys make the
//     re-extracted writes overwrite whatever part of the batch landed;
//   - a crash stops the renewers mid-group, with the same redelivery path.
//
// An idle receive (nil message) force-flushes a partial group, so held
// messages never outlive the queue's quiet period; a graceful Stop flushes
// the final group on the way out.
func (w *Warehouse) bulkIndexerLoop(wk *Worker, in *ec2.Instance, opts WorkerOptions) {
	var (
		loader *index.BulkLoader
		group  []*heldMessage
	)
	reset := func() {
		loader = index.NewBulkLoader(w.store, index.BulkOptions{FlushItems: w.bulkFlushItems, Obs: w.reg}, w.cache)
		group = nil
	}
	reset()
	// settle deletes the messages of completed documents, charging the
	// instance for their queue round trips and their share of the modeled
	// work. DocLoads arrive in Add order, which is the group's order.
	next := 0
	settle := func(done []index.DocLoad) {
		for _, dl := range done {
			if next >= len(group) {
				return // defensive; cannot happen with FIFO release
			}
			h := group[next]
			next++
			h.stopRenew()
			h.settled = true
			usp := h.span.Child(obs.SpanUpload)
			usp.SetModeled(dl.Upload)
			usp.End()
			w.met.indexUpload.ObserveModeled(dl.Upload)
			if _, err := w.queues.Delete(LoaderQueue, h.receipt); err != nil {
				// Lease lost: another worker owns the message; our writes
				// are idempotent, so its redelivery converges.
				h.span.End()
				continue
			}
			in.Run(h.rtt + h.res.ExtractTime + dl.Upload)
			h.span.SetModeled(h.rtt + h.res.ExtractTime + dl.Upload)
			h.span.End()
			wk.mu.Lock()
			wk.processed++
			wk.mu.Unlock()
			w.met.workerProcessed.Inc()
		}
	}
	abandon := func() {
		for _, h := range group {
			if !h.settled {
				h.stopRenew()
				h.span.End()
				wk.mu.Lock()
				wk.failures++
				wk.mu.Unlock()
				w.met.workerFailures.Inc()
			}
		}
		reset()
		next = 0
	}
	flushGroup := func() {
		if len(group) == 0 {
			return
		}
		done, err := loader.Close()
		settle(done)
		if err != nil {
			abandon() // unsettled messages redeliver; writes are idempotent
			return
		}
		reset()
		next = 0
	}
	defer func() {
		// On a crash the renewers have already quit (they watch wk.crashed)
		// and the leases lapse; on a graceful stop the group below was
		// flushed and this is a no-op.
		for _, h := range group {
			if !h.settled {
				h.stopRenew()
			}
		}
	}()
	for !wk.stopped() {
		msg, rtt, err := w.queues.ReceiveWait(LoaderQueue, opts.Visibility, opts.Poll)
		if err != nil {
			continue
		}
		if msg == nil {
			flushGroup() // idle: do not sit on held leases
			continue
		}
		wk.noteReceive(msg.ReceiveCount, w.met.workerRedeliveries)
		dsp := w.tracer.Start(obs.SpanIndexDoc)
		dsp.SetAttr("uri", msg.Body)
		stopRenew := w.renewLease(wk, LoaderQueue, msg.Receipt, opts.Visibility)
		if opts.WorkDelay > 0 {
			time.Sleep(opts.WorkDelay)
		}
		if wk.crashedNow() {
			stopRenew()
			dsp.End()
			return
		}
		res, ex, _, err := w.extractDocument(in, msg.Body, dsp)
		if wk.crashedNow() {
			stopRenew()
			dsp.End()
			return
		}
		if err != nil {
			stopRenew()
			dsp.SetError(err)
			dsp.End()
			wk.mu.Lock()
			wk.failures++
			wk.mu.Unlock()
			w.met.workerFailures.Inc()
			continue // lease will expire; the message is retried
		}
		group = append(group, &heldMessage{receipt: msg.Receipt, rtt: rtt, res: res, span: dsp, stopRenew: stopRenew})
		done, err := loader.Add(ex)
		settle(done)
		if wk.crashedNow() {
			return
		}
		if err != nil {
			abandon()
			continue
		}
		if len(group) >= w.bulkDocsLimit() {
			flushGroup()
		}
	}
	if !wk.crashedNow() {
		flushGroup() // graceful stop: ship what we hold
	}
}

// StartQueryProcessor launches the query-processor module on an instance
// (steps 9-15).
func (w *Warehouse) StartQueryProcessor(in *ec2.Instance, opts WorkerOptions) *Worker {
	opts = opts.withDefaults()
	wk := newWorker(in)
	wk.done.Add(1)
	go func() {
		defer wk.done.Done()
		for !wk.stopped() {
			msg, _, err := w.queues.ReceiveWait(QueryQueue, opts.Visibility, opts.Poll)
			if err != nil || msg == nil {
				continue
			}
			wk.noteReceive(msg.ReceiveCount, w.met.workerRedeliveries)
			stopRenew := w.renewLease(wk, QueryQueue, msg.Receipt, opts.Visibility)
			if opts.WorkDelay > 0 {
				time.Sleep(opts.WorkDelay)
			}
			if wk.crashedNow() {
				stopRenew()
				return
			}
			var qm queryMessage
			var resp responseMessage
			if err := json.Unmarshal([]byte(msg.Body), &qm); err != nil {
				resp = responseMessage{Error: err.Error()}
			} else {
				resp.ID = qm.ID
				root := w.tracer.Start(obs.SpanQuery)
				root.SetAttr("id", qm.ID)
				if _, stats, err := w.processQuery(in, qm, root); err != nil {
					resp.Error = err.Error()
					root.SetError(err)
				} else {
					resp.ResultKey = resultsPrefix + qm.ID
					root.SetModeled(stats.ResponseTime)
				}
				root.End()
			}
			stopRenew()
			if wk.crashedNow() {
				return
			}
			body, _ := json.Marshal(resp)
			if _, _, err := w.queues.Send(ResponseQueue, string(body)); err != nil {
				continue
			}
			if _, err := w.queues.Delete(QueryQueue, msg.Receipt); err != nil {
				continue
			}
			wk.mu.Lock()
			if resp.Error != "" {
				wk.failures++
			} else {
				wk.processed++
			}
			wk.mu.Unlock()
			if resp.Error != "" {
				w.met.workerFailures.Inc()
			} else {
				w.met.workerProcessed.Inc()
			}
		}
	}()
	return wk
}

func (wk *Worker) crashedNow() bool {
	select {
	case <-wk.crashed:
		return true
	default:
		return false
	}
}

// renewLease keeps a message invisible while the worker processes it,
// renewing at half the visibility period. The returned function stops the
// renewal loop.
func (w *Warehouse) renewLease(wk *Worker, queue, receipt string, visibility time.Duration) func() {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(visibility / 2)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-wk.crashed:
				return // a crashed instance stops renewing: the lease expires
			case <-t.C:
				if _, err := w.queues.ChangeVisibility(queue, receipt, visibility); err != nil {
					return
				}
				w.met.leaseRenewals.Inc()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stop)
			wg.Wait()
		})
	}
}
