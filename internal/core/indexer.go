package core

import (
	"fmt"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/cloud/sqs"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/xmltree"
)

// This file implements the indexing module (steps 4-6 of Figure 1): fetch a
// document referenced by a loader-queue message from the file store,
// extract its index entries under the warehouse strategy, and insert them
// into the index store.

// IndexTaskResult reports one document's indexing, with the modeled time
// split the way Table 4 reports it.
type IndexTaskResult struct {
	URI         string
	DocBytes    int64
	ExtractTime time.Duration // EC2-side: fetch, parse, build entries
	UploadTime  time.Duration // store-side: batch put latency
	Stats       index.LoadStats
}

// extractDocument performs the EC2-side half of one loader message: fetch
// the document, parse it, and build its index entries. The returned
// extraction has not been written; ExtractTime covers the fetch latency and
// the modeled parse/extract compute. The raw document bytes are returned
// alongside so the mutable-corpus path can retain them for pinned snapshot
// reads. The work is traced as an "extract" child of parent (nil parent or
// tracer: no span).
func (w *Warehouse) extractDocument(in *ec2.Instance, uri string, parent *obs.Span) (IndexTaskResult, *index.Extraction, []byte, error) {
	esp := parent.Child(obs.SpanExtract)
	res := IndexTaskResult{URI: uri}
	obj, fetch, err := w.files.Get(Bucket, DocKey(uri))
	if err != nil {
		err = fmt.Errorf("core: fetching %s: %w", uri, err)
		esp.SetError(err)
		esp.End()
		return res, nil, nil, err
	}
	res.DocBytes = int64(len(obj.Data))
	doc, err := xmltree.Parse(uri, obj.Data)
	if err != nil {
		esp.SetError(err)
		esp.End()
		return res, nil, nil, err
	}
	ex := index.Extract(w.Strategy, doc, w.indexOptions())
	res.ExtractTime = fetch +
		in.ComputeDuration(res.DocBytes, w.Perf.ParseBytesPerECUSec) +
		in.ComputeDuration(ex.Bytes, w.Perf.ExtractBytesPerECUSec)
	w.met.indexExtract.ObserveModeled(res.ExtractTime)
	esp.SetModeled(res.ExtractTime)
	esp.SetAttrInt("doc_bytes", res.DocBytes)
	esp.SetAttrInt("entry_bytes", ex.Bytes)
	esp.End()
	return res, ex, obj.Data, nil
}

// indexDocument performs the work of one loader message on one instance
// core. New items carry range keys derived deterministically from their
// content identity (index.ItemRangeKey), so running the same message twice
// — after a crash, a lease expiry or a duplicated delivery — overwrites
// rather than duplicates: indexing is idempotent, and at-least-once queue
// delivery yields exactly-once index contents. The returned durations are
// modeled; the caller schedules them.
func (w *Warehouse) indexDocument(in *ec2.Instance, uri string, parent *obs.Span) (IndexTaskResult, error) {
	res, ex, data, err := w.extractDocument(in, uri, parent)
	if err != nil {
		return res, err
	}
	if w.corpus != nil {
		// Mutable corpus: the extraction lands in the versioned write
		// buffer as one atomic version bump — an insert for a new URI, an
		// atomic delete+insert for an existing one. No store request is
		// issued here; compaction pays the billed writes later.
		usp := parent.Child(obs.SpanUpload)
		ar := w.corpus.Apply(ex, data)
		res.Stats = index.LoadStats{Entries: ex.Entries, Items: ar.Items, Bytes: ar.Bytes}
		usp.SetAttrInt("items", int64(ar.Items))
		usp.SetAttrInt("version", int64(ar.Version))
		usp.End()
		if err := w.maybeCompact(in); err != nil {
			return res, err
		}
		return res, nil
	}
	usp := parent.Child(obs.SpanUpload)
	upload, stats, err := index.WriteExtraction(w.store, ex, w.cache)
	if err != nil {
		usp.SetError(err)
		usp.End()
		return res, err
	}
	res.UploadTime = upload
	res.Stats = stats
	w.met.indexUpload.ObserveModeled(upload)
	usp.SetModeled(upload)
	usp.SetAttrInt("items", int64(stats.Items))
	usp.SetAttrInt("requests", int64(stats.Requests))
	usp.End()
	return res, nil
}

// IndexReport aggregates an indexing run, with everything Table 4, Table 6
// and Figure 7 need.
type IndexReport struct {
	Docs      int
	DataBytes int64
	Entries   int
	Items     int // |op(D,I)| under per-row billing
	Requests  int // batch API calls

	// AvgExtract and AvgUpload are the average per-machine elapsed times
	// attributable to extraction and uploading (Table 4's two columns);
	// Total is the modeled end-to-end indexing time tidx(D,I).
	AvgExtract time.Duration
	AvgUpload  time.Duration
	Total      time.Duration
}

// IndexCorpusOn drives the indexing of the given documents over a fleet,
// deterministically: documents are queued as loader messages, then
// processed in FIFO order with tasks assigned round-robin to instances and
// scheduled on each instance's least-loaded core. The store's capacity is
// shared by all fleet worker threads for the duration of the run (the
// DynamoDB saturation of Section 8.2).
//
// With Config.BulkLoad set, the driver runs the two-stage bulk pipeline
// instead: extractions are read ahead (bounded by Config.PipelineDepth) and
// fed to a cross-document index.BulkLoader, and each document's pro-rata
// upload share is modeled on an asynchronous upload stream per core — so
// extraction compute overlaps store I/O, Table 4's extract/upload split
// stays per-document, and the billed request count drops to the bulk
// loader's packing floor. Store contents are byte-identical either way.
func (w *Warehouse) IndexCorpusOn(fleet []*ec2.Instance, uris []string) (IndexReport, error) {
	var report IndexReport
	if len(fleet) == 0 {
		return report, fmt.Errorf("core: empty fleet")
	}
	workers := 0
	for _, in := range fleet {
		workers += in.Type.Cores
	}
	for i := 0; i < workers; i++ {
		w.store.RegisterClient()
	}
	defer func() {
		for i := 0; i < workers; i++ {
			w.store.UnregisterClient()
		}
	}()

	for _, uri := range uris {
		if _, _, err := w.queues.Send(LoaderQueue, uri); err != nil {
			return report, err
		}
	}
	ec2.FleetLevel(fleet)
	start := ec2.FleetElapsed(fleet)

	perExtract := make(map[*ec2.Instance]time.Duration)
	perUpload := make(map[*ec2.Instance]time.Duration)
	var err error
	if w.bulkLoad {
		err = w.bulkIndexLoop(fleet, &report, perExtract, perUpload)
	} else {
		err = w.perDocIndexLoop(fleet, &report, perExtract, perUpload)
	}
	if err != nil {
		return report, err
	}
	ec2.FleetLevel(fleet)
	report.Total = ec2.FleetElapsed(fleet) - start
	// Per-machine elapsed attribution: a machine's cores work in parallel,
	// so its extraction (upload) elapsed is the summed task time divided
	// by its core count; the report averages over machines.
	for _, in := range fleet {
		report.AvgExtract += perExtract[in] / time.Duration(in.Type.Cores)
		report.AvgUpload += perUpload[in] / time.Duration(in.Type.Cores)
	}
	report.AvgExtract /= time.Duration(len(fleet))
	report.AvgUpload /= time.Duration(len(fleet))
	return report, nil
}

// perDocIndexLoop is the classic driver loop: each document is extracted
// and written in its own per-document, per-table batches, serially on its
// assigned instance core.
func (w *Warehouse) perDocIndexLoop(fleet []*ec2.Instance, report *IndexReport, perExtract, perUpload map[*ec2.Instance]time.Duration) error {
	for i := 0; ; i++ {
		msg, rtt, err := w.queues.Receive(LoaderQueue, 5*time.Minute)
		if err != nil {
			return err
		}
		if msg == nil {
			return nil
		}
		in := fleet[i%len(fleet)]
		dsp := w.tracer.Start(obs.SpanIndexDoc)
		dsp.SetAttr("uri", msg.Body)
		res, err := w.indexDocument(in, msg.Body, dsp)
		if err != nil {
			// Release the lease before bailing out: the message becomes
			// visible again immediately, so a rerun of the driver (or a
			// live worker) can pick it up instead of waiting out the
			// 5-minute lease on a message nobody is processing.
			dsp.SetError(err)
			dsp.End()
			w.nackLoaderMessage(msg.Receipt)
			return fmt.Errorf("core: indexing %s: %w", msg.Body, err)
		}
		drtt, err := w.deleteLoaderMessage(msg.Receipt)
		if err != nil {
			dsp.SetError(err)
			dsp.End()
			w.nackLoaderMessage(msg.Receipt)
			return err
		}
		in.Run(rtt + res.ExtractTime + res.UploadTime + drtt)
		dsp.SetModeled(rtt + res.ExtractTime + res.UploadTime + drtt)
		dsp.End()
		report.Docs++
		report.DataBytes += res.DocBytes
		report.Entries += res.Stats.Entries
		report.Items += res.Stats.Items
		report.Requests += res.Stats.Requests
		perExtract[in] += res.ExtractTime
		perUpload[in] += res.UploadTime
	}
}

// bulkDocsLimit is the effective live-worker group size.
func (w *Warehouse) bulkDocsLimit() int {
	if w.bulkFlushDocs > 0 {
		return w.bulkFlushDocs
	}
	return 8
}

// pipeDepth is the effective extraction read-ahead of the bulk driver.
func (w *Warehouse) pipeDepth() int {
	if w.pipelineDepth > 0 {
		return w.pipelineDepth
	}
	return 4
}

// indexTask is one loader message moving through the bulk pipeline.
type indexTask struct {
	msg  *sqs.Message
	rtt  time.Duration
	in   *ec2.Instance
	span *obs.Span // index.doc root; ended when the document settles
	res  IndexTaskResult
	ex   *index.Extraction
	err  error
}

// inflightDoc is a task whose extraction has been scheduled and whose items
// sit (at least partly) in the bulk loader.
type inflightDoc struct {
	t    *indexTask
	core int
	// ready is the task's core occupancy right after its extraction was
	// scheduled: the earliest modeled instant its upload may start.
	ready time.Duration
}

// bulkIndexLoop is the two-stage bulk driver. Stage one (optionally read
// ahead on a goroutine, bounded by pipeDepth) receives loader messages and
// runs the EC2-side extraction; stage two — always the calling goroutine,
// in strict FIFO order — feeds extractions to a cross-document BulkLoader,
// deletes messages as their documents complete, and accounts the modeled
// time.
//
// Modeled overlap: each document's extraction is scheduled on its
// instance's least-loaded core, and its pro-rata upload share is appended
// to a per-core *upload stream* that starts no earlier than the document's
// extraction end — the asynchronous uploader of a two-stage worker. After
// the last document, each core is raised to its upload stream's end, so a
// core's elapsed time is max(extraction stream, upload stream): upload I/O
// hides behind extraction compute instead of serializing with it.
//
// Every modeled quantity is computed from payload sizes and FIFO positions,
// never from real goroutine timing, so results, modeled times and billing
// are identical at any pipeline depth. When a chaos layer is configured the
// read-ahead goroutine is skipped (depth one, inline) so that the injector's
// seeded fault schedule is also consumed in a deterministic order.
func (w *Warehouse) bulkIndexLoop(fleet []*ec2.Instance, report *IndexReport, perExtract, perUpload map[*ec2.Instance]time.Duration) error {
	produce := func(i int) *indexTask {
		msg, rtt, err := w.queues.Receive(LoaderQueue, 5*time.Minute)
		if err != nil {
			return &indexTask{err: err}
		}
		if msg == nil {
			return nil
		}
		t := &indexTask{msg: msg, rtt: rtt, in: fleet[i%len(fleet)]}
		t.span = w.tracer.Start(obs.SpanIndexDoc)
		t.span.SetAttr("uri", msg.Body)
		t.res, t.ex, _, t.err = w.extractDocument(t.in, msg.Body, t.span)
		return t
	}
	var next func() *indexTask
	if depth := w.pipeDepth(); depth > 1 && w.chaosInj == nil {
		ch := make(chan *indexTask, depth-1)
		go func() {
			defer close(ch)
			for i := 0; ; i++ {
				t := produce(i)
				if t == nil {
					return
				}
				ch <- t
				if t.err != nil {
					return
				}
			}
		}()
		next = func() *indexTask { return <-ch }
	} else {
		i := 0
		next = func() *indexTask { t := produce(i); i++; return t }
	}

	loader := index.NewBulkLoader(w.store, index.BulkOptions{FlushItems: w.bulkFlushItems, Obs: w.reg}, w.cache)
	var queue []*inflightDoc
	uploadEnd := make(map[*ec2.Instance][]time.Duration)
	nackAll := func() {
		for _, fl := range queue {
			w.nackLoaderMessage(fl.t.msg.Receipt)
			fl.t.span.End()
		}
	}
	// complete settles documents the loader released, in FIFO order:
	// delete the loader message, extend the core's upload stream by the
	// document's pro-rata share, and fold its stats into the report.
	complete := func(done []index.DocLoad) error {
		for _, dl := range done {
			if len(queue) == 0 || queue[0].t.msg.Body != dl.URI {
				return fmt.Errorf("core: bulk loader released %q out of FIFO order", dl.URI)
			}
			fl := queue[0]
			queue = queue[1:]
			usp := fl.t.span.Child(obs.SpanUpload)
			usp.SetModeled(dl.Upload)
			usp.End()
			w.met.indexUpload.ObserveModeled(dl.Upload)
			drtt, err := w.deleteLoaderMessage(fl.t.msg.Receipt)
			if err != nil {
				fl.t.span.SetError(err)
				fl.t.span.End()
				w.nackLoaderMessage(fl.t.msg.Receipt)
				return err
			}
			in := fl.t.in
			in.RunOn(fl.core, drtt)
			lanes := uploadEnd[in]
			if lanes == nil {
				lanes = make([]time.Duration, in.Type.Cores)
				uploadEnd[in] = lanes
			}
			end := lanes[fl.core]
			if fl.ready > end {
				end = fl.ready
			}
			lanes[fl.core] = end + dl.Upload
			fl.t.span.SetModeled(fl.t.rtt + fl.t.res.ExtractTime + dl.Upload + drtt)
			fl.t.span.End()
			perUpload[in] += dl.Upload
			report.Docs++
			report.DataBytes += fl.t.res.DocBytes
			report.Entries += dl.Stats.Entries
			report.Items += dl.Stats.Items
			report.Requests += dl.Stats.Requests
		}
		return nil
	}

	for {
		t := next()
		if t == nil {
			break
		}
		if t.err != nil {
			if t.msg != nil {
				w.nackLoaderMessage(t.msg.Receipt)
			}
			t.span.SetError(t.err)
			t.span.End()
			nackAll()
			if t.msg != nil {
				return fmt.Errorf("core: indexing %s: %w", t.msg.Body, t.err)
			}
			return t.err
		}
		core := t.in.RunScheduled(t.rtt + t.res.ExtractTime)
		perExtract[t.in] += t.res.ExtractTime
		queue = append(queue, &inflightDoc{t: t, core: core, ready: t.in.TL.Lane(core)})
		done, err := loader.Add(t.ex)
		if cerr := complete(done); err == nil {
			err = cerr
		}
		if err != nil {
			nackAll()
			return fmt.Errorf("core: bulk indexing %s: %w", t.msg.Body, err)
		}
	}
	done, err := loader.Close()
	if cerr := complete(done); err == nil {
		err = cerr
	}
	if err != nil {
		nackAll()
		return fmt.Errorf("core: bulk indexing: %w", err)
	}
	// Drain the upload streams: raise each core to its upload end, so its
	// elapsed time is the maximum of its extraction and upload streams.
	for _, in := range fleet {
		for c, end := range uploadEnd[in] {
			if occ := in.TL.Lane(c); end > occ {
				in.RunOn(c, end-occ)
			}
		}
	}
	return nil
}

func (w *Warehouse) deleteLoaderMessage(receipt string) (time.Duration, error) {
	return w.queues.Delete(LoaderQueue, receipt)
}

// nackLoaderMessage releases a leased loader message back to visible. A
// stale receipt (the lease already expired or another receiver holds the
// message) is fine: the message is already available again.
func (w *Warehouse) nackLoaderMessage(receipt string) {
	w.queues.ChangeVisibility(LoaderQueue, receipt, 0)
}

// RemoveDocument drops a document from the warehouse: its index entries
// first (while the file is still readable), then the file itself. This is
// an extension beyond the paper's append-only warehouse; the modeled work
// is scheduled on the given instance.
//
// On a mutable corpus the removal is manifest-driven: the document's
// retained contribution is tombstoned in the write buffer as one atomic
// version bump — no fetch, no re-extraction — and queries pinned before
// the bump keep seeing the document until they drain. Mutable removal is
// idempotent: re-running a crashed removal (index already tombstoned, or
// file already deleted) converges to the same fully removed state, like
// S3's own delete of a missing key.
func (w *Warehouse) RemoveDocument(in *ec2.Instance, uri string) error {
	if w.corpus != nil {
		w.corpus.Remove(uri)
		drop, err := w.files.Delete(Bucket, DocKey(uri))
		if err != nil {
			return fmt.Errorf("core: removing %s: %w", uri, err)
		}
		in.Run(drop)
		return w.maybeCompact(in)
	}
	obj, fetch, err := w.files.Get(Bucket, DocKey(uri))
	if err != nil {
		return fmt.Errorf("core: removing %s: %w", uri, err)
	}
	doc, err := xmltree.Parse(uri, obj.Data)
	if err != nil {
		return err
	}
	parse := in.ComputeDuration(int64(len(obj.Data)), w.Perf.ParseBytesPerECUSec)
	dels, _, err := index.DeleteDocument(w.store, w.Strategy, doc, w.indexOptions(), w.cache)
	if err != nil {
		return err
	}
	drop, err := w.files.Delete(Bucket, DocKey(uri))
	if err != nil {
		return err
	}
	in.Run(fetch + parse + dels + drop)
	return nil
}
