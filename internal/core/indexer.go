package core

import (
	"fmt"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/index"
	"repro/internal/xmltree"
)

// This file implements the indexing module (steps 4-6 of Figure 1): fetch a
// document referenced by a loader-queue message from the file store,
// extract its index entries under the warehouse strategy, and insert them
// into the index store.

// IndexTaskResult reports one document's indexing, with the modeled time
// split the way Table 4 reports it.
type IndexTaskResult struct {
	URI         string
	DocBytes    int64
	ExtractTime time.Duration // EC2-side: fetch, parse, build entries
	UploadTime  time.Duration // store-side: batch put latency
	Stats       index.LoadStats
}

// indexDocument performs the work of one loader message on one instance
// core. New items carry range keys derived deterministically from their
// content identity (index.ItemRangeKey), so running the same message twice
// — after a crash, a lease expiry or a duplicated delivery — overwrites
// rather than duplicates: indexing is idempotent, and at-least-once queue
// delivery yields exactly-once index contents. The returned durations are
// modeled; the caller schedules them.
func (w *Warehouse) indexDocument(in *ec2.Instance, uri string) (IndexTaskResult, error) {
	res := IndexTaskResult{URI: uri}
	obj, fetch, err := w.files.Get(Bucket, DocKey(uri))
	if err != nil {
		return res, fmt.Errorf("core: fetching %s: %w", uri, err)
	}
	res.DocBytes = int64(len(obj.Data))
	doc, err := xmltree.Parse(uri, obj.Data)
	if err != nil {
		return res, err
	}
	ex := index.Extract(w.Strategy, doc, w.indexOptions())
	res.ExtractTime = fetch +
		in.ComputeDuration(res.DocBytes, w.Perf.ParseBytesPerECUSec) +
		in.ComputeDuration(ex.Bytes, w.Perf.ExtractBytesPerECUSec)
	upload, stats, err := index.WriteExtraction(w.store, ex, w.cache)
	if err != nil {
		return res, err
	}
	res.UploadTime = upload
	res.Stats = stats
	return res, nil
}

// IndexReport aggregates an indexing run, with everything Table 4, Table 6
// and Figure 7 need.
type IndexReport struct {
	Docs      int
	DataBytes int64
	Entries   int
	Items     int // |op(D,I)| under per-row billing
	Requests  int // batch API calls

	// AvgExtract and AvgUpload are the average per-machine elapsed times
	// attributable to extraction and uploading (Table 4's two columns);
	// Total is the modeled end-to-end indexing time tidx(D,I).
	AvgExtract time.Duration
	AvgUpload  time.Duration
	Total      time.Duration
}

// IndexCorpusOn drives the indexing of the given documents over a fleet,
// deterministically: documents are queued as loader messages, then
// processed in FIFO order with tasks assigned round-robin to instances and
// scheduled on each instance's least-loaded core. The store's capacity is
// shared by all fleet worker threads for the duration of the run (the
// DynamoDB saturation of Section 8.2).
func (w *Warehouse) IndexCorpusOn(fleet []*ec2.Instance, uris []string) (IndexReport, error) {
	var report IndexReport
	if len(fleet) == 0 {
		return report, fmt.Errorf("core: empty fleet")
	}
	workers := 0
	for _, in := range fleet {
		workers += in.Type.Cores
	}
	for i := 0; i < workers; i++ {
		w.store.RegisterClient()
	}
	defer func() {
		for i := 0; i < workers; i++ {
			w.store.UnregisterClient()
		}
	}()

	for _, uri := range uris {
		if _, _, err := w.queues.Send(LoaderQueue, uri); err != nil {
			return report, err
		}
	}
	ec2.FleetLevel(fleet)
	start := ec2.FleetElapsed(fleet)

	perExtract := make(map[*ec2.Instance]time.Duration)
	perUpload := make(map[*ec2.Instance]time.Duration)
	for i := 0; ; i++ {
		msg, rtt, err := w.queues.Receive(LoaderQueue, 5*time.Minute)
		if err != nil {
			return report, err
		}
		if msg == nil {
			break
		}
		in := fleet[i%len(fleet)]
		res, err := w.indexDocument(in, msg.Body)
		if err != nil {
			// Release the lease before bailing out: the message becomes
			// visible again immediately, so a rerun of the driver (or a
			// live worker) can pick it up instead of waiting out the
			// 5-minute lease on a message nobody is processing.
			w.nackLoaderMessage(msg.Receipt)
			return report, fmt.Errorf("core: indexing %s: %w", msg.Body, err)
		}
		drtt, err := w.deleteLoaderMessage(msg.Receipt)
		if err != nil {
			w.nackLoaderMessage(msg.Receipt)
			return report, err
		}
		in.Run(rtt + res.ExtractTime + res.UploadTime + drtt)
		report.Docs++
		report.DataBytes += res.DocBytes
		report.Entries += res.Stats.Entries
		report.Items += res.Stats.Items
		report.Requests += res.Stats.Requests
		perExtract[in] += res.ExtractTime
		perUpload[in] += res.UploadTime
	}
	ec2.FleetLevel(fleet)
	report.Total = ec2.FleetElapsed(fleet) - start
	// Per-machine elapsed attribution: a machine's cores work in parallel,
	// so its extraction (upload) elapsed is the summed task time divided
	// by its core count; the report averages over machines.
	for _, in := range fleet {
		report.AvgExtract += perExtract[in] / time.Duration(in.Type.Cores)
		report.AvgUpload += perUpload[in] / time.Duration(in.Type.Cores)
	}
	report.AvgExtract /= time.Duration(len(fleet))
	report.AvgUpload /= time.Duration(len(fleet))
	return report, nil
}

func (w *Warehouse) deleteLoaderMessage(receipt string) (time.Duration, error) {
	return w.queues.Delete(LoaderQueue, receipt)
}

// nackLoaderMessage releases a leased loader message back to visible. A
// stale receipt (the lease already expired or another receiver holds the
// message) is fine: the message is already available again.
func (w *Warehouse) nackLoaderMessage(receipt string) {
	w.queues.ChangeVisibility(LoaderQueue, receipt, 0)
}

// RemoveDocument drops a document from the warehouse: its index entries
// first (while the file is still readable), then the file itself. This is
// an extension beyond the paper's append-only warehouse; the modeled work
// is scheduled on the given instance.
func (w *Warehouse) RemoveDocument(in *ec2.Instance, uri string) error {
	obj, fetch, err := w.files.Get(Bucket, DocKey(uri))
	if err != nil {
		return fmt.Errorf("core: removing %s: %w", uri, err)
	}
	doc, err := xmltree.Parse(uri, obj.Data)
	if err != nil {
		return err
	}
	parse := in.ComputeDuration(int64(len(obj.Data)), w.Perf.ParseBytesPerECUSec)
	dels, _, err := index.DeleteDocument(w.store, w.Strategy, doc, w.indexOptions(), w.cache)
	if err != nil {
		return err
	}
	drop, err := w.files.Delete(Bucket, DocKey(uri))
	if err != nil {
		return err
	}
	in.Run(fetch + parse + dels + drop)
	return nil
}
