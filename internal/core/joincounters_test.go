package core

import (
	"testing"

	"repro/internal/index"
)

// TestJoinCountersOnXMarkReplay: replaying the workload against a blocked
// LUI index must exercise the block-skipping kernels — nonzero blocks read,
// nonzero blocks skipped, nonzero bitmap containers intersected — and the
// counters must be a pure function of corpus + workload (two identical runs
// agree exactly).
func TestJoinCountersOnXMarkReplay(t *testing.T) {
	docs := obsTestCorpus()
	read := func() (r, s, c int64) {
		w, _ := indexCorpus(t, Config{Strategy: index.LUI}, 2, docs)
		runWorkload(t, w)
		reg := w.Registry()
		return reg.Counter("index.join.blocks_read").Value(),
			reg.Counter("index.join.blocks_skipped").Value(),
			reg.Counter("index.join.containers_intersected").Value()
	}
	r1, s1, c1 := read()
	if r1 == 0 || s1 == 0 || c1 == 0 {
		t.Fatalf("join counters = read %d, skipped %d, containers %d; want all nonzero", r1, s1, c1)
	}
	r2, s2, c2 := read()
	if r1 != r2 || s1 != s2 || c1 != c2 {
		t.Errorf("counters not deterministic: (%d,%d,%d) vs (%d,%d,%d)", r1, s1, c1, r2, s2, c2)
	}
}
