package core

import (
	"fmt"

	"repro/internal/cloud/ec2"
	"repro/internal/index"
	"repro/internal/mutate"
	"repro/internal/obs"
	"repro/internal/xmltree"
)

// This file is the warehouse-side surface of the mutable corpus
// (Config.MutableCorpus): atomic updates, manifest-driven removal (see
// RemoveDocument in indexer.go), snapshot pinning for queries, and the
// compaction entry points. The state machine itself lives in
// internal/mutate.

// Corpus exposes the mutable-corpus state machine, or nil when
// Config.MutableCorpus is off. Tests use it to pin explicit snapshot
// views (Corpus().Pin()) and to inspect buffer occupancy.
func (w *Warehouse) Corpus() *mutate.Corpus { return w.corpus }

// UpdateDocument atomically replaces a document's content and index
// contribution: the new bytes are stored in the file store, parsed and
// extracted on the instance, and applied to the corpus as one version
// bump — a delete+insert over the idempotent write path. Queries pinned
// before the bump keep answering from the old content; queries admitted
// after see only the new. Re-running a crashed update converges to the
// byte-identical state of a clean one: the file put overwrites, and an
// identical re-apply is a no-op.
//
// Updates require Config.MutableCorpus: without the corpus manifest there
// is no record of the old contribution to supersede, and a crash between
// the delete and the re-index would leak stale postings.
func (w *Warehouse) UpdateDocument(in *ec2.Instance, uri string, data []byte) error {
	if w.corpus == nil {
		return fmt.Errorf("core: updating %s: UpdateDocument requires Config.MutableCorpus", uri)
	}
	sp := w.tracer.Start(obs.SpanIndexDoc)
	sp.SetAttr("uri", uri)
	defer sp.End()
	put, err := w.files.Put(Bucket, DocKey(uri), data, nil)
	if err != nil {
		sp.SetError(err)
		return fmt.Errorf("core: updating %s: %w", uri, err)
	}
	doc, err := xmltree.Parse(uri, data)
	if err != nil {
		sp.SetError(err)
		return err
	}
	ex := index.Extract(w.Strategy, doc, w.indexOptions())
	compute := in.ComputeDuration(int64(len(data)), w.Perf.ParseBytesPerECUSec) +
		in.ComputeDuration(ex.Bytes, w.Perf.ExtractBytesPerECUSec)
	w.met.indexExtract.ObserveModeled(compute)
	ar := w.corpus.Apply(ex, data)
	in.Run(put + compute)
	sp.SetModeled(put + compute)
	sp.SetAttrInt("version", int64(ar.Version))
	return w.maybeCompact(in)
}

// CompactNow runs one compaction pass: the write buffer's entries at or
// below the fold horizon are folded into the main store in group-committed
// batches, and the modeled store time is scheduled on the instance. The
// pass is a no-op (and CompactNow is safe to call) when the corpus is
// immutable or the buffer has nothing foldable.
func (w *Warehouse) CompactNow(in *ec2.Instance) (mutate.CompactStats, error) {
	if w.corpus == nil {
		return mutate.CompactStats{}, nil
	}
	sp := w.tracer.Start(obs.SpanCompact)
	st, err := w.corpus.Compact()
	in.Run(st.Time)
	sp.SetModeled(st.Time)
	sp.SetAttrInt("folds", int64(st.Folds))
	sp.SetAttrInt("puts", int64(st.Puts))
	sp.SetAttrInt("deletes", int64(st.Deletes))
	sp.SetAttrInt("requests", int64(st.Requests))
	sp.SetError(err)
	sp.End()
	return st, err
}

// maybeCompact runs a compaction pass when the mutation count has reached
// Config.CompactEveryDocs.
func (w *Warehouse) maybeCompact(in *ec2.Instance) error {
	if w.corpus == nil || w.compactEvery <= 0 {
		return nil
	}
	if w.corpus.MutationsSinceCompact() < int64(w.compactEvery) {
		return nil
	}
	_, err := w.CompactNow(in)
	return err
}
