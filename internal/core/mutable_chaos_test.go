package core

import (
	"testing"

	"repro/internal/cloud/chaos"
	"repro/internal/cloud/ec2"
	"repro/internal/index"
	"repro/internal/xmark"
)

// This file is the chaos wall of the mutable corpus: a full mutation
// lifecycle — live-worker inserts, synchronous updates, removals, and
// auto- plus forced compaction — executed under aggressive injected faults
// and a worker crash must converge to the byte-identical warehouse of a
// fault-free run, and a fully compacted mutable warehouse must be
// byte-identical to a from-scratch immutable build of its surviving
// content.

// editDoc returns the round-stamped edited content of a document: a child
// element inserted right after the root opening tag, so the edit parses on
// every document class and changes both structure and word postings.
func editDoc(t *testing.T, data []byte, round int) []byte {
	t.Helper()
	i := 0
	for i < len(data) && data[i] != '>' {
		i++
	}
	if i == len(data) {
		t.Fatal("document has no root element")
	}
	note := []byte("<note>edited round" + string(rune('0'+round)) + " zanzibar</note>")
	out := make([]byte, 0, len(data)+len(note))
	out = append(out, data[:i+1]...)
	out = append(out, note...)
	return append(out, data[i+1:]...)
}

// updateWithRetry survives injected transient faults on the update path;
// the crashed attempts it retries over are exactly what the differential
// proves harmless.
func updateWithRetry(t *testing.T, w *Warehouse, in *ec2.Instance, uri string, data []byte) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		if err := w.UpdateDocument(in, uri, data); err == nil {
			return
		} else if attempt > 100 {
			t.Fatalf("update %s: %v", uri, err)
		}
	}
}

func removeWithRetry(t *testing.T, w *Warehouse, in *ec2.Instance, uri string) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		if err := w.RemoveDocument(in, uri); err == nil {
			return
		} else if attempt > 100 {
			t.Fatalf("remove %s: %v", uri, err)
		}
	}
}

// compactFully drains the write buffer completely, retrying passes that
// die to injected faults.
func compactFully(t *testing.T, w *Warehouse, in *ec2.Instance) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		if _, err := w.CompactNow(in); err != nil {
			if attempt > 100 {
				t.Fatalf("compact: %v", err)
			}
			continue
		}
		if w.Corpus().BufferedEntries() == 0 {
			return
		}
		if attempt > 100 {
			t.Fatalf("buffer still holds %d entries after %d passes", w.Corpus().BufferedEntries(), attempt)
		}
	}
}

// mutableLifecycle drives one warehouse through the full mutation story:
// insert the corpus through live workers (crashing one on the chaotic
// side), update every even document, remove every fifth, then compact the
// buffer down to nothing.
func mutableLifecycle(t *testing.T, w *Warehouse, docs []xmark.Doc, crash bool) {
	t.Helper()
	indexLive(t, w, docs, crash)
	in := ec2.Launch(w.ledger, ec2.Large)
	for i, d := range docs {
		if i%2 == 0 {
			updateWithRetry(t, w, in, d.URI, editDoc(t, d.Data, 1))
		}
	}
	for i, d := range docs {
		if i%5 == 1 {
			removeWithRetry(t, w, in, d.URI)
		}
	}
	compactFully(t, w, in)
}

// TestChaosMutableUpdateDifferential is the proof obligation of the
// mutable warehouse: the same mutation sequence executed once cleanly and
// once under aggressive injected faults (plus a crashed worker and the
// retried half-done updates and removals those faults cause) must leave
// both warehouses with byte-identical index stores, identical answers to
// the ten workload queries, an empty dead-letter queue, and an empty
// write buffer — the crashed update converges to the clean one.
func TestChaosMutableUpdateDifferential(t *testing.T) {
	seed := chaosSeed(t)
	docs := chaosCorpus(seed)

	clean, err := New(Config{Strategy: index.TwoLUPI, MutableCorpus: true, CompactEveryDocs: 7})
	if err != nil {
		t.Fatal(err)
	}
	mutableLifecycle(t, clean, docs, false)

	chaotic, err := New(Config{
		Strategy:         index.TwoLUPI,
		MutableCorpus:    true,
		CompactEveryDocs: 7,
		Trace:            true,
		Chaos:            &chaos.Plan{Seed: seed, Rates: aggressiveRates()},
		MaxLoadAttempts:  200,
	})
	if err != nil {
		t.Fatal(err)
	}
	mutableLifecycle(t, chaotic, docs, true)

	if n := chaotic.ChaosCounts().Total(); n == 0 {
		t.Error("chaotic run injected no faults")
	} else {
		t.Logf("chaos: %+v", chaotic.ChaosCounts())
		t.Logf("retry: %+v", chaotic.RetryStats())
	}
	for _, w := range []*Warehouse{clean, chaotic} {
		if n := w.Queues().Len(LoaderDeadLetters); n != 0 {
			t.Errorf("dead-letter queue holds %d", n)
		}
		if n := w.Corpus().BufferedEntries(); n != 0 {
			t.Errorf("write buffer still holds %d entries after full compaction", n)
		}
	}

	cleanDump, chaoticDump := dumpStore(t, clean), dumpStore(t, chaotic)
	for _, tbl := range clean.Strategy.Tables() {
		a, b := cleanDump[tbl], chaoticDump[tbl]
		if len(a) != len(b) {
			t.Errorf("%s: clean %d items, chaotic %d", tbl, len(a), len(b))
			continue
		}
		for i := range a {
			if la, lb := itemLine(a[i]), itemLine(b[i]); la != lb {
				t.Errorf("%s item %d differs:\n  clean:   %s\n  chaotic: %s", tbl, i, la, lb)
				break
			}
		}
	}

	chaotic.ChaosInjector().SetRates(chaos.Rates{})
	cleanRows, chaoticRows := runWorkload(t, clean), runWorkload(t, chaotic)
	for name, want := range cleanRows {
		got := chaoticRows[name]
		if len(got) != len(want) {
			t.Errorf("%s: clean %d rows, chaotic %d", name, len(want), len(got))
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s row %d: clean %q, chaotic %q", name, i, want[i], got[i])
				break
			}
		}
	}

	// Rebuild equivalence: a from-scratch immutable direct-write build of
	// the surviving content must match the compacted mutable store byte
	// for byte — the compactor's folds and deletes left exactly the items
	// a clean build writes.
	rebuild, err := New(Config{Strategy: index.TwoLUPI})
	if err != nil {
		t.Fatal(err)
	}
	var uris []string
	for i, d := range docs {
		if i%5 == 1 {
			continue
		}
		data := d.Data
		if i%2 == 0 {
			data = editDoc(t, d.Data, 1)
		}
		if _, err := rebuild.files.Put(Bucket, DocKey(d.URI), data, nil); err != nil {
			t.Fatal(err)
		}
		uris = append(uris, d.URI)
	}
	if _, err := rebuild.IndexCorpusOn(ec2.LaunchFleet(rebuild.ledger, ec2.Large, 2), uris); err != nil {
		t.Fatal(err)
	}
	rebuildDump := dumpStore(t, rebuild)
	for _, tbl := range clean.Strategy.Tables() {
		a, b := rebuildDump[tbl], cleanDump[tbl]
		if len(a) != len(b) {
			t.Errorf("%s: rebuild %d items, compacted mutable %d", tbl, len(a), len(b))
			continue
		}
		for i := range a {
			if la, lb := itemLine(a[i]), itemLine(b[i]); la != lb {
				t.Errorf("%s item %d: rebuild %s, mutable %s", tbl, i, la, lb)
				break
			}
		}
	}
}
