package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/cloud/ec2"
	"repro/internal/index"
	"repro/internal/mutate"
	"repro/internal/xmark"
)

// Property tests of the mutable corpus over seeded random interleavings of
// inserts, updates, removals, compactions and pinned-snapshot queries. The
// obligations:
//
//  1. Snapshot correctness: every answer served through a pinned view must
//     equal the answer of a from-scratch immutable warehouse built with
//     exactly the content that was live at the pinned version — no matter
//     how many mutations and partial compactions happened since the pin.
//
//  2. Compaction transparency: queries running against a pinned view while
//     a background writer updates documents and the compactor folds the
//     buffer must keep returning byte-identical rows, race-clean.
//
//  3. Cache freshness under sharded deletes: a warmed posting cache on a
//     hash-partitioned warehouse must never serve postings of a removed
//     document.

// stampDoc returns document content carrying a unique revision marker as a
// child of the root element, so every revision indexes differently and
// parses on every document class.
func stampDoc(t *testing.T, data []byte, rev int) []byte {
	t.Helper()
	i := strings.IndexByte(string(data), '>')
	if i < 0 {
		t.Fatal("document has no root element")
	}
	note := fmt.Sprintf("<note>rev%d zanzibar</note>", rev)
	out := make([]byte, 0, len(data)+len(note))
	out = append(out, data[:i+1]...)
	out = append(out, note...)
	return append(out, data[i+1:]...)
}

// answerRowsView runs one query pinned to an explicit snapshot view and
// returns its sorted rendered rows.
func answerRowsView(t *testing.T, w *Warehouse, in *ec2.Instance, text string, view *mutate.View) []string {
	t.Helper()
	res, _, err := w.RunQueryOnView(in, text, view)
	if err != nil {
		t.Fatalf("%s @v%d: %v", text, view.Version(), err)
	}
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = fmt.Sprintf("%s|%v", r.URI, r.Cols)
	}
	sort.Strings(rows)
	return rows
}

// docsFromContent renders a live-content map as a deterministic corpus for
// a from-scratch rebuild.
func docsFromContent(content map[string][]byte) []xmark.Doc {
	uris := make([]string, 0, len(content))
	for u := range content {
		uris = append(uris, u)
	}
	sort.Strings(uris)
	docs := make([]xmark.Doc, len(uris))
	for i, u := range uris {
		docs[i] = xmark.Doc{URI: u, Data: content[u]}
	}
	return docs
}

// TestMutableSnapshotPropertyInterleavings drives a mutable warehouse
// through a seeded random interleaving of updates, re-inserts, removals
// and compaction passes, pinning snapshot views along the way while
// mirroring the live content in plain maps. Every pinned view must then
// answer ten random queries identically to an immutable warehouse rebuilt
// from scratch with that version's content — and after releasing the pins
// and compacting the buffer dry, the current-version answers must match
// the final rebuild too.
func TestMutableSnapshotPropertyInterleavings(t *testing.T) {
	docs := propertyCorpus(101)
	w, err := New(Config{Strategy: index.TwoLUPI, MutableCorpus: true, PostingCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	in := ec2.Launch(w.ledger, ec2.XL)

	content := map[string][]byte{}
	apply := func(uri string, data []byte) {
		t.Helper()
		if err := w.UpdateDocument(in, uri, data); err != nil {
			t.Fatal(err)
		}
		content[uri] = data
	}
	for _, d := range docs {
		apply(d.URI, d.Data)
	}

	type snapshot struct {
		view    *mutate.View
		content map[string][]byte
	}
	var snaps []snapshot
	pin := func() {
		frozen := make(map[string][]byte, len(content))
		for u, b := range content {
			frozen[u] = b
		}
		snaps = append(snaps, snapshot{w.Corpus().Pin(), frozen})
	}
	pin()

	rng := rand.New(rand.NewSource(4242))
	rev := 2
	for op := 0; op < 36; op++ {
		switch rng.Intn(8) {
		case 4, 5: // remove a live document, if any remain
			live := docsFromContent(content)
			if len(live) == 0 {
				continue
			}
			uri := live[rng.Intn(len(live))].URI
			if err := w.RemoveDocument(in, uri); err != nil {
				t.Fatal(err)
			}
			delete(content, uri)
		case 6: // fold whatever the pins allow
			if _, err := w.CompactNow(in); err != nil {
				t.Fatal(err)
			}
		default: // update a live document or re-insert a removed one
			d := docs[rng.Intn(len(docs))]
			apply(d.URI, stampDoc(t, d.Data, rev))
			rev++
		}
		if op%6 == 5 {
			pin()
		}
	}
	pin()

	qrng := rand.New(rand.NewSource(99))
	texts := make([]string, 10)
	for i := range texts {
		texts[i] = randomQueryText(t, qrng)
	}

	nonEmpty := 0
	var finalWant [][]string
	for si, snap := range snaps {
		rw, _ := buildWarehouse(t, Config{Strategy: index.TwoLUPI}, docsFromContent(snap.content))
		rin := ec2.Launch(rw.ledger, ec2.XL)
		for qi, text := range texts {
			want, _ := answerRows(t, rw, rin, text)
			got := answerRowsView(t, w, in, text, snap.view)
			if len(want) > 0 {
				nonEmpty++
			}
			if len(got) != len(want) {
				t.Errorf("snapshot %d v%d %q: rebuild %d rows, view %d",
					si, snap.view.Version(), text, len(want), len(got))
				continue
			}
			for j := range want {
				if got[j] != want[j] {
					t.Errorf("snapshot %d v%d %q row %d: rebuild %q, view %q",
						si, snap.view.Version(), text, j, want[j], got[j])
					break
				}
			}
			if si == len(snaps)-1 {
				finalWant = append(finalWant, want)
				_ = qi
			}
		}
	}
	if nonEmpty < 8 {
		t.Fatalf("only %d snapshot queries matched anything; generator too hostile", nonEmpty)
	}

	// Release every pin, compact the buffer dry, and confirm the current
	// (auto-pinned) read path over the fully folded store still agrees
	// with the final rebuild.
	for _, snap := range snaps {
		snap.view.Release()
	}
	compactFully(t, w, in)
	for qi, text := range texts {
		got, _ := answerRows(t, w, in, text)
		want := finalWant[qi]
		if len(got) != len(want) {
			t.Errorf("post-compaction %q: rebuild %d rows, got %d", text, len(want), len(got))
			continue
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("post-compaction %q row %d: rebuild %q, got %q", text, j, want[j], got[j])
				break
			}
		}
	}
}

// TestCompactionQueryInterference pins a snapshot, records baseline
// answers, then lets a background writer rewrite every document over
// several revisions while the compactor folds the buffer — all while the
// pinned view keeps being queried. Every mid-churn answer must be
// byte-identical to the baseline, and once the churn ends and the pin is
// released, the current-version answers must match a from-scratch rebuild
// of the final revision. Run under -race this is also the data-race proof
// for concurrent mutation, compaction and snapshot reads.
func TestCompactionQueryInterference(t *testing.T) {
	docs := propertyCorpus(555)
	w, err := New(Config{
		Strategy:          index.TwoLUPI,
		MutableCorpus:     true,
		CompactEveryDocs:  5,
		PostingCacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := ec2.Launch(w.ledger, ec2.XL)
	for _, d := range docs {
		if err := w.UpdateDocument(in, d.URI, d.Data); err != nil {
			t.Fatal(err)
		}
	}

	view := w.Corpus().Pin()
	// Collect six query texts, at least three with non-empty answers (the
	// random generator produces many queries that match nothing; those are
	// kept too, but capped, so the baseline actually pins postings).
	rng := rand.New(rand.NewSource(31))
	var texts []string
	baseline := map[string][]string{}
	nonEmpty, empty := 0, 0
	for trial := 0; trial < 400 && nonEmpty < 3; trial++ {
		text := randomQueryText(t, rng)
		rows := answerRowsView(t, w, in, text, view)
		if len(rows) > 0 {
			nonEmpty++
		} else if empty >= 3 {
			continue
		} else {
			empty++
		}
		texts = append(texts, text)
		baseline[text] = rows
	}
	if nonEmpty < 3 {
		t.Fatalf("only %d baseline queries matched anything", nonEmpty)
	}

	const lastRev = 5
	done := make(chan struct{})
	go func() {
		defer close(done)
		win := ec2.Launch(w.ledger, ec2.Large)
		for rev := 2; rev <= lastRev; rev++ {
			for _, d := range docs {
				if err := w.UpdateDocument(win, d.URI, stampDoc(t, d.Data, rev)); err != nil {
					t.Errorf("churn rev %d %s: %v", rev, d.URI, err)
					return
				}
			}
			if _, err := w.CompactNow(win); err != nil {
				t.Errorf("churn compact rev %d: %v", rev, err)
				return
			}
		}
	}()

	check := func(when string) {
		t.Helper()
		for _, text := range texts {
			got := answerRowsView(t, w, in, text, view)
			want := baseline[text]
			if len(got) != len(want) {
				t.Fatalf("%s %q: baseline %d rows, pinned view now %d", when, text, len(want), len(got))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%s %q row %d: baseline %q, pinned view %q", when, text, j, want[j], got[j])
				}
			}
		}
	}
	churning := true
	for churning {
		select {
		case <-done:
			churning = false
		default:
			check("mid-churn")
		}
	}
	check("post-churn")
	view.Release()
	compactFully(t, w, in)

	final := map[string][]byte{}
	for _, d := range docs {
		final[d.URI] = stampDoc(t, d.Data, lastRev)
	}
	rw, _ := buildWarehouse(t, Config{Strategy: index.TwoLUPI}, docsFromContent(final))
	rin := ec2.Launch(rw.ledger, ec2.XL)
	for _, text := range texts {
		want, _ := answerRows(t, rw, rin, text)
		got, _ := answerRows(t, w, in, text)
		if len(got) != len(want) {
			t.Errorf("final %q: rebuild %d rows, mutable %d", text, len(want), len(got))
			continue
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("final %q row %d: rebuild %q, mutable %q", text, j, want[j], got[j])
				break
			}
		}
	}
}

// TestShardedDeletePostingCacheFreshness is the regression wall for the
// posting cache on a hash-partitioned mutable warehouse: after the cache
// is warmed, removing a document must make its rows vanish from the very
// next answer (version-keyed cache entries for the old version must not
// leak into the new one), compaction must not resurrect them, and
// re-inserting the original content must restore the original answer
// byte for byte.
func TestShardedDeletePostingCacheFreshness(t *testing.T) {
	docs := propertyCorpus(333)
	w, err := New(Config{
		Strategy:          index.TwoLUPI,
		IndexShards:       4,
		MutableCorpus:     true,
		PostingCacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := ec2.Launch(w.ledger, ec2.XL)
	byURI := map[string][]byte{}
	for _, d := range docs {
		if err := w.UpdateDocument(in, d.URI, d.Data); err != nil {
			t.Fatal(err)
		}
		byURI[d.URI] = d.Data
	}

	// Find a random query whose answer spans at least two documents, so
	// removing one leaves a non-empty remainder.
	rng := rand.New(rand.NewSource(17))
	var text string
	var base []string
	for trial := 0; trial < 200 && text == ""; trial++ {
		cand := randomQueryText(t, rng)
		rows, _ := answerRows(t, w, in, cand)
		uris := map[string]bool{}
		for _, r := range rows {
			uris[r[:strings.IndexByte(r, '|')]] = true
		}
		if len(uris) >= 2 {
			text, base = cand, rows
		}
	}
	if text == "" {
		t.Fatal("no random query spanned two documents")
	}

	// Warm pass: same version, so the second run must serve from cache.
	h0, _, _ := w.PostingCache().Counters()
	again, _ := answerRows(t, w, in, text)
	if h1, _, _ := w.PostingCache().Counters(); h1 <= h0 {
		t.Errorf("warm re-run served no posting-cache hits (%d -> %d)", h0, h1)
	}
	for j := range base {
		if again[j] != base[j] {
			t.Fatalf("warm re-run changed row %d: %q -> %q", j, base[j], again[j])
		}
	}

	victim := base[0][:strings.IndexByte(base[0], '|')]
	var want []string
	for _, r := range base {
		if !strings.HasPrefix(r, victim+"|") {
			want = append(want, r)
		}
	}
	if err := w.RemoveDocument(in, victim); err != nil {
		t.Fatal(err)
	}

	assertRows := func(when string) {
		t.Helper()
		got, _ := answerRows(t, w, in, text)
		if len(got) != len(want) {
			t.Fatalf("%s: want %d rows after removing %s, got %d: %v", when, len(want), victim, len(got), got)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s row %d: want %q, got %q", when, j, want[j], got[j])
			}
		}
	}
	assertRows("straight after removal")
	if _, err := w.CompactNow(in); err != nil {
		t.Fatal(err)
	}
	assertRows("after compaction")

	// Resurrection: re-inserting the identical content restores the
	// original answer exactly.
	if err := w.UpdateDocument(in, victim, byURI[victim]); err != nil {
		t.Fatal(err)
	}
	got, _ := answerRows(t, w, in, text)
	if len(got) != len(base) {
		t.Fatalf("after re-insert: want %d rows, got %d", len(base), len(got))
	}
	for j := range base {
		if got[j] != base[j] {
			t.Fatalf("after re-insert row %d: want %q, got %q", j, base[j], got[j])
		}
	}
}
