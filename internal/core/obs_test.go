package core

import (
	"strings"
	"testing"

	"repro/internal/cloud/ec2"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/workload"
	"repro/internal/xmark"
)

func obsTestCorpus() []xmark.Doc {
	cfg := xmark.DefaultConfig(10)
	cfg.Seed = 7
	cfg.TargetDocBytes = 4 << 10
	return xmark.Generate(cfg)
}

// TestObsDifferential is the determinism contract of the observability
// subsystem: a traced run issues no service calls of its own and draws no
// randomness, so indexing and querying the same corpus with tracing on must
// leave the warehouse byte-identical to an untraced run — same metered
// bill, same index store contents, same answers to all ten workload
// queries.
func TestObsDifferential(t *testing.T) {
	docs := obsTestCorpus()

	plain, pr := indexCorpus(t, Config{Strategy: index.TwoLUPI}, 2, docs)
	traced, tr := indexCorpus(t, Config{Strategy: index.TwoLUPI, Trace: true}, 2, docs)
	if pr != tr {
		t.Errorf("index reports differ: plain %+v, traced %+v", pr, tr)
	}

	plainRows, tracedRows := runWorkload(t, plain), runWorkload(t, traced)
	for name, want := range plainRows {
		got := tracedRows[name]
		if len(got) != len(want) {
			t.Errorf("%s: plain %d rows, traced %d", name, len(want), len(got))
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s row %d: plain %q, traced %q", name, i, want[i], got[i])
				break
			}
		}
	}

	// The bill must match to the byte: tracing reads the ledger but never
	// writes it.
	pu, tu := plain.Ledger().Snapshot().String(), traced.Ledger().Snapshot().String()
	if pu != tu {
		t.Errorf("metered usage differs:\nplain:\n%s\ntraced:\n%s", pu, tu)
	}

	pd, td := dumpStore(t, plain), dumpStore(t, traced)
	for _, tbl := range plain.Strategy.Tables() {
		if len(pd[tbl]) != len(td[tbl]) {
			t.Errorf("%s: plain %d items, traced %d", tbl, len(pd[tbl]), len(td[tbl]))
			continue
		}
		for i := range pd[tbl] {
			if itemLine(pd[tbl][i]) != itemLine(td[tbl][i]) {
				t.Errorf("%s item %d differs under tracing", tbl, i)
				break
			}
		}
	}

	if plain.Tracer() != nil {
		t.Error("untraced warehouse has a tracer")
	}
	if traced.Tracer() == nil || len(traced.Tracer().Spans()) == 0 {
		t.Error("traced warehouse recorded no spans")
	}
}

// TestTracedSpanTree checks the shape of one query's span tree: a query
// root spanning the whole round trip, submit/process/fetch children, the
// look-up pipeline nested under process, billed calls attributed to the
// index read, and modeled durations that are stable across identical runs.
func TestTracedSpanTree(t *testing.T) {
	docs := obsTestCorpus()

	trace := func() (spans []obs.SpanRecord, id string) {
		w, _ := indexCorpus(t, Config{Strategy: index.TwoLUPI, Trace: true}, 2, docs)
		in := ec2.Launch(w.ledger, ec2.XL)
		_, st, err := w.RunQueryOn(in, workload.XMark()[2].Text, true)
		if err != nil {
			t.Fatal(err)
		}
		return w.Tracer().QuerySpans(st.ID), st.ID
	}
	spans, id := trace()
	if len(spans) == 0 {
		t.Fatalf("no spans recorded for query %s", id)
	}

	byName := map[string]obs.SpanRecord{}
	byID := map[int64]obs.SpanRecord{}
	for _, r := range spans {
		byName[r.Name] = r
		byID[r.ID] = r
	}
	root, ok := byName[obs.SpanQuery]
	if !ok || root.Parent != 0 {
		t.Fatalf("no root %s span (got %v)", obs.SpanQuery, spans)
	}
	if root.Attr("id") != id {
		t.Errorf("root id attr = %q, want %q", root.Attr("id"), id)
	}
	wantUnder := map[string]string{
		obs.SpanSubmitQuery:  obs.SpanQuery,
		obs.SpanProcess:      obs.SpanQuery,
		obs.SpanFetchResults: obs.SpanQuery,
		obs.SpanLookup:       obs.SpanProcess,
		obs.SpanIndexGet:     obs.SpanLookup,
		obs.SpanEval:         obs.SpanProcess,
		obs.SpanResults:      obs.SpanProcess,
	}
	for name, parent := range wantUnder {
		r, ok := byName[name]
		if !ok {
			t.Errorf("span %s missing from the tree", name)
			continue
		}
		if got := byID[r.Parent].Name; got != parent {
			t.Errorf("span %s nested under %q, want %q", name, got, parent)
		}
	}
	if get := byName[obs.SpanIndexGet]; get.Calls() == 0 {
		t.Errorf("%s span attributes no billed calls: %+v", obs.SpanIndexGet, get)
	}
	if root.Modeled <= 0 {
		t.Errorf("root modeled duration = %v, want > 0", root.Modeled)
	}

	// Same corpus, same query, fresh warehouse: the modeled timings and
	// billed ops of every span must reproduce exactly.
	again, id2 := trace()
	if id2 != id {
		t.Fatalf("query IDs diverged: %s vs %s", id, id2)
	}
	if len(again) != len(spans) {
		t.Fatalf("span counts diverged: %d vs %d", len(spans), len(again))
	}
	for i := range spans {
		a, b := spans[i], again[i]
		if a.Name != b.Name || a.Modeled != b.Modeled || a.Calls() != b.Calls() {
			t.Errorf("span %d not reproducible: %s/%v/%d vs %s/%v/%d",
				i, a.Name, a.Modeled, a.Calls(), b.Name, b.Modeled, b.Calls())
		}
	}

	tree := obs.FormatTree(spans)
	for _, want := range []string{obs.SpanQuery, obs.SpanProcess, obs.SpanLookup, "billed:"} {
		if !strings.Contains(tree, want) {
			t.Errorf("FormatTree output missing %q:\n%s", want, tree)
		}
	}
}
