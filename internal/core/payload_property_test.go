package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cloud/ec2"
	"repro/internal/index"
	"repro/internal/xmark"
)

// TestIDPayloadTransparencyOnRandomQueries is the packed-payload acceptance
// differential: a warehouse writing bit-packed blocked identifier payloads
// must be logically indistinguishable from one pinned to the version-1
// varint payloads — identical answers, identical store-request counts and
// identical decoded index contents over a random corpus and random queries.
//
// The stored bytes themselves are exempt, deliberately: the two payload
// families are physically different encodings of the same sets, so dumps,
// byte-sized metering and the bills derived from them differ by design
// (packed is the smaller side — that is the point of the format). The
// dump comparison below therefore decodes identifier values and compares
// the sets, and asserts that at least one value's bytes actually differ,
// so the differential cannot silently degrade into comparing identical
// encodings.
func TestIDPayloadTransparencyOnRandomQueries(t *testing.T) {
	// Documents large enough that frequent labels exceed the blocked-format
	// cut-off (32 identifiers): the property corpus' 4 KiB documents never
	// produce a blocked value, which would make this differential vacuous.
	cfg := xmark.DefaultConfig(6)
	cfg.Seed = 20260808
	cfg.TargetDocBytes = 64 << 10
	docs := xmark.Generate(cfg)
	for _, strat := range []index.Strategy{index.LUI, index.TwoLUPI} {
		packed, prep := buildWarehouse(t, Config{Strategy: strat}, docs)
		varint, vrep := buildWarehouse(t, Config{Strategy: strat, VarintIDPayload: true}, docs)

		// Same logical indexing work: document, entry, item and request
		// counts match (modeled durations may not — uploads are billed by
		// bytes, and the payloads differ in size).
		if prep.Docs != vrep.Docs || prep.Entries != vrep.Entries ||
			prep.Items != vrep.Items || prep.Requests != vrep.Requests {
			t.Errorf("%s: index reports differ logically:\n  packed: %+v\n  varint: %+v",
				strat.Name(), prep, vrep)
		}

		// Decoded-equal dumps: every item present in both, identifier
		// values decode to the same sets, all other values byte-identical.
		pd, vd := dumpStore(t, packed), dumpStore(t, varint)
		divergent := 0
		for _, tbl := range packed.Strategy.Tables() {
			if len(pd[tbl]) != len(vd[tbl]) {
				t.Errorf("%s %s: packed holds %d items, varint %d", strat.Name(), tbl, len(pd[tbl]), len(vd[tbl]))
				continue
			}
			for i := range pd[tbl] {
				pi, vi := pd[tbl][i], vd[tbl][i]
				if pi.HashKey != vi.HashKey || pi.RangeKey != vi.RangeKey || len(pi.Attrs) != len(vi.Attrs) {
					t.Errorf("%s %s item %d: keys differ: %s|%s vs %s|%s",
						strat.Name(), tbl, i, pi.HashKey, pi.RangeKey, vi.HashKey, vi.RangeKey)
					continue
				}
				for a := range pi.Attrs {
					pa, va := pi.Attrs[a], vi.Attrs[a]
					if pa.Name != va.Name || len(pa.Values) != len(va.Values) {
						t.Errorf("%s %s item %d: attr %d shape differs", strat.Name(), tbl, i, a)
						continue
					}
					for v := range pa.Values {
						if bytes.Equal(pa.Values[v], va.Values[v]) {
							continue
						}
						divergent++
						pids, perr := index.DecodeIDsBinary(pa.Values[v])
						vids, verr := index.DecodeIDsBinary(va.Values[v])
						if perr != nil || verr != nil {
							t.Errorf("%s %s item %s|%s: divergent value does not decode: %v / %v",
								strat.Name(), tbl, pi.HashKey, pi.RangeKey, perr, verr)
							continue
						}
						if len(pids) != len(vids) {
							t.Errorf("%s %s item %s|%s: packed decodes %d ids, varint %d",
								strat.Name(), tbl, pi.HashKey, pi.RangeKey, len(pids), len(vids))
							continue
						}
						for j := range pids {
							if pids[j] != vids[j] {
								t.Errorf("%s %s item %s|%s id %d: packed %v, varint %v",
									strat.Name(), tbl, pi.HashKey, pi.RangeKey, j, pids[j], vids[j])
								break
							}
						}
					}
				}
			}
		}
		if divergent == 0 {
			t.Errorf("%s: no stored value differed between payloads; differential is vacuous", strat.Name())
		}

		// Identical answers and identical logical query statistics.
		pin := ec2.Launch(packed.ledger, ec2.XL)
		vin := ec2.Launch(varint.ledger, ec2.XL)
		rng := rand.New(rand.NewSource(19))
		for trial := 0; trial < 20; trial++ {
			text := randomQueryText(t, rng)
			want, pqs := answerRows(t, packed, pin, text)
			got, vqs := answerRows(t, varint, vin, text)
			if len(got) != len(want) {
				t.Errorf("%s trial %d %q: packed %d rows, varint %d", strat.Name(), trial, text, len(want), len(got))
				continue
			}
			for j := range want {
				if got[j] != want[j] {
					t.Errorf("%s trial %d %q row %d: packed %q, varint %q",
						strat.Name(), trial, text, j, want[j], got[j])
					break
				}
			}
			if pqs.GetOps != vqs.GetOps || pqs.DocIDsFromIndex != vqs.DocIDsFromIndex ||
				pqs.DocsFetched != vqs.DocsFetched || pqs.ResultRows != vqs.ResultRows {
				t.Errorf("%s trial %d %q: logical stats differ:\n  packed: %+v\n  varint: %+v",
					strat.Name(), trial, text, pqs, vqs)
			}
		}

		// The same number of store reads was billed on both sides.
		pu, vu := packed.Ledger().Snapshot(), varint.Ledger().Snapshot()
		if a, b := pu.Get("dynamodb", "get").Calls, vu.Get("dynamodb", "get").Calls; a != b {
			t.Errorf("%s: dynamodb gets: packed %d, varint %d", strat.Name(), a, b)
		}
	}
}
