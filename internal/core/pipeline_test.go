package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/index"
)

func TestXQueryThroughWarehouse(t *testing.T) {
	w := newWarehouse(t, index.LUP)
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)
	loadPaintings(t, w, fleet)
	in := ec2.Launch(w.ledger, ec2.XL)
	res, stats, err := w.RunQueryOn(in,
		`for $p in //painting where contains($p/name, "Lion") return string($p/painter/name/last)`, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if stats.GetOps == 0 || stats.DocsFetched >= 13 {
		t.Errorf("XQuery did not go through the index: %+v", stats)
	}
}

func TestParseQueryTextDetection(t *testing.T) {
	cases := []struct {
		text     string
		patterns int
	}{
		{`//painting[/name{val}]`, 1},
		{`for $p in //painting return string($p/name)`, 1},
		{`for $a in //x, $b in //y where $a/k = $b/k return $a/k`, 2},
		// An element literally named "for" still parses as a pattern when
		// not followed by a variable.
		{`//for[/x]`, 1},
		{`for`, 1},
	}
	for _, c := range cases {
		q, err := ParseQueryText(c.text)
		if err != nil {
			t.Errorf("ParseQueryText(%q): %v", c.text, err)
			continue
		}
		if len(q.Patterns) != c.patterns {
			t.Errorf("ParseQueryText(%q): %d patterns, want %d", c.text, len(q.Patterns), c.patterns)
		}
	}
	if _, err := ParseQueryText(`for $x in`); err == nil {
		t.Error("malformed XQuery accepted")
	}
}

func TestQueryProcessorCrashRecovery(t *testing.T) {
	w := newWarehouse(t, index.LU)
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)
	loadPaintings(t, w, fleet)

	// A slow processor with a short lease takes the query and crashes.
	victim := w.StartQueryProcessor(ec2.Launch(w.ledger, ec2.Large), WorkerOptions{
		Visibility: 50 * time.Millisecond,
		WorkDelay:  300 * time.Millisecond,
	})
	id, err := w.SubmitQuery(`//painting[/name{val}]`, true)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	victim.Crash()

	// A healthy processor picks the redelivered message up and answers.
	rescuer := w.StartQueryProcessor(ec2.Launch(w.ledger, ec2.XL), WorkerOptions{})
	defer rescuer.Stop()
	out, err := w.AwaitResult(id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Result.Rows) != 9 {
		t.Errorf("rows = %d, want 9", len(out.Result.Rows))
	}
}

func TestConcurrentQueriesOverLiveFleet(t *testing.T) {
	w := newWarehouse(t, index.LUP)
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)
	loadPaintings(t, w, fleet)

	// Three live processors, eight concurrent front-end clients.
	var workers []*Worker
	for i := 0; i < 3; i++ {
		workers = append(workers, w.StartQueryProcessor(ec2.Launch(w.ledger, ec2.XL), WorkerOptions{}))
	}
	defer func() {
		for _, wk := range workers {
			wk.Stop()
		}
	}()

	queries := []struct {
		text string
		rows int
	}{
		{`//painting[/name{val}]`, 9},
		{`//painting[/name~"Lion", /painter[/name[/last{val}]]]`, 2},
		{`//museum[/name{val}]`, 4},
		{`for $p in //painting where $p/year = "1854" return $p/description`, 1},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := queries[i%len(queries)]
			id, err := w.SubmitQuery(q.text, true)
			if err != nil {
				errs <- err
				return
			}
			out, err := w.AwaitResult(id, 15*time.Second)
			if err != nil {
				errs <- fmt.Errorf("query %d: %w", i, err)
				return
			}
			if out.Err != nil {
				errs <- out.Err
				return
			}
			if len(out.Result.Rows) != q.rows {
				errs <- fmt.Errorf("query %d (%s): %d rows, want %d", i, q.text, len(out.Result.Rows), q.rows)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	total := 0
	for _, wk := range workers {
		total += wk.Processed()
	}
	if total != 8 {
		t.Errorf("workers processed %d queries, want 8", total)
	}
}
