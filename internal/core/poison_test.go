package core

import (
	"testing"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/index"
	"repro/internal/xmark"
)

// A malformed document must not wedge the live pipeline: its loading
// request fails repeatedly, the redrive policy parks it in the dead-letter
// queue, and every well-formed document still gets indexed.
func TestPoisonDocumentGoesToDeadLetters(t *testing.T) {
	w := newWarehouse(t, index.LUP)
	if err := w.SubmitDocument("broken.xml", []byte("<open><mismatch></open>")); err != nil {
		t.Fatal(err)
	}
	for _, d := range xmark.Paintings()[:4] {
		if err := w.SubmitDocument(d.URI, d.Data); err != nil {
			t.Fatal(err)
		}
	}

	wk := w.StartIndexer(ec2.Launch(w.ledger, ec2.Large), WorkerOptions{
		Visibility: 20 * time.Millisecond,
		Poll:       5 * time.Millisecond,
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if w.queues.Len(LoaderQueue) == 0 && w.queues.Len(LoaderDeadLetters) == 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	wk.Stop()

	if got := w.queues.Len(LoaderQueue); got != 0 {
		t.Errorf("loader queue still holds %d messages", got)
	}
	if got := w.queues.Len(LoaderDeadLetters); got != 1 {
		t.Fatalf("dead-letter queue holds %d, want 1", got)
	}
	m, _, err := w.queues.Receive(LoaderDeadLetters, time.Minute)
	if err != nil || m == nil || m.Body != "broken.xml" {
		t.Errorf("dead letter = %+v, %v", m, err)
	}
	if wk.Processed() != 4 {
		t.Errorf("processed %d documents, want 4", wk.Processed())
	}
	if wk.Failures() < 1 {
		t.Error("no failures recorded for the poison document")
	}

	// The index answers over the healthy documents.
	in := ec2.Launch(w.ledger, ec2.Large)
	res, _, err := w.RunQueryOn(in, `//painting[/name{val}]`, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("no results over the healthy documents")
	}
}
