package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/mutate"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

// This file implements the query processor module (steps 9-15 of Figure 1):
// retrieve a query message, look up the index, fetch the candidate
// documents from the file store, evaluate the query with the local engine,
// write the results to the file store and post a response message.

// queryMessage is the payload of the query request queue.
type queryMessage struct {
	ID       string `json:"id"`
	Query    string `json:"query"`
	Strategy string `json:"strategy"`
	NoIndex  bool   `json:"noIndex,omitempty"`
}

// responseMessage is the payload of the query response queue.
type responseMessage struct {
	ID        string `json:"id"`
	ResultKey string `json:"resultKey,omitempty"`
	Error     string `json:"error,omitempty"`
}

// QueryStats decomposes one query's processing the way Figures 9b/9c do,
// plus the counts Table 5 and the cost model need.
type QueryStats struct {
	ID       string
	Strategy string // "none" for the no-index baseline

	// LookupGetTime is the index-store latency ("DynamoDB get");
	// PlanTime the local physical plan over the fetched index data
	// ("plan execution"); FetchEvalTime the summed S3 transfer + local
	// evaluation over candidate documents ("S3 documents transfer and
	// results extraction"). Per-document work runs on all cores, so
	// ResponseTime — the modeled elapsed time from message retrieval to
	// message deletion — is less than the sum of the components.
	LookupGetTime time.Duration
	PlanTime      time.Duration
	FetchEvalTime time.Duration
	ResponseTime  time.Duration

	// GetOps is |op(q,D,I)|; DocIDsFromIndex the per-pattern sum of URIs
	// returned by the look-up (Table 5's "Doc. IDs from index");
	// DocsFetched the distinct documents transferred from S3.
	GetOps          int64
	DocIDsFromIndex int
	DocsFetched     int

	// Incomplete marks a degraded answer: one or more index shards were
	// shed by their circuit breakers during the look-up, so the result is a
	// lower bound — documents whose postings lived on the shed shards may
	// be missing. Lookup.DegradedKeys counts the keys that were not read.
	Incomplete bool

	ResultRows  int
	ResultBytes int64

	// Lookup is the full look-up statistics of steps 10-12 (cache traffic,
	// twig candidates, store retries); GetOps and LookupGetTime above are
	// its headline numbers, kept for compatibility.
	Lookup index.LookupStats
}

// processQuery executes one query message on one instance and returns the
// result rows plus statistics. It performs the exact service calls of
// Figure 1's steps 10-14; the modeled time is scheduled on the instance.
// When tracing is on, the work is recorded as a "process" span under parent
// (nil parent roots it), with lookup/eval/results children; parent may
// always be nil, and every span operation degrades to a no-op when the
// tracer is off.
func (w *Warehouse) processQuery(in *ec2.Instance, msg queryMessage, parent *obs.Span) (res *engine.Result, stats QueryStats, err error) {
	return w.processQueryView(in, msg, parent, nil)
}

// processQueryView is processQuery pinned to an explicit snapshot view.
// On a mutable corpus a nil view pins the current version at admission and
// releases it when the query settles; every index look-up and document
// fetch of the query then sees that one consistent corpus version, no
// matter how much indexing churn or compaction runs concurrently.
func (w *Warehouse) processQueryView(in *ec2.Instance, msg queryMessage, parent *obs.Span, view *mutate.View) (res *engine.Result, stats QueryStats, err error) {
	stats = QueryStats{ID: msg.ID, Strategy: msg.Strategy}
	if msg.NoIndex {
		stats.Strategy = "none"
	}
	if view == nil && w.corpus != nil {
		view = w.corpus.Pin()
		defer view.Release()
	}
	sp := w.tracer.ChildOf(parent, obs.SpanProcess)
	sp.SetAttr("id", msg.ID)
	wallStart := time.Now()
	defer func() {
		if err != nil {
			sp.SetError(err)
			w.met.queryFailed.Inc()
		} else {
			w.met.queryProcessed.Inc()
			w.met.queryResponse.Observe(time.Since(wallStart), stats.ResponseTime)
		}
		sp.SetModeled(stats.ResponseTime)
		sp.End()
	}()
	q, err := ParseQueryText(msg.Query)
	if err != nil {
		return nil, stats, err
	}

	in.TL.Level()
	t0 := in.TL.Elapsed()

	// Steps 10-12: index look-up and local plan, on the coordinating core.
	var perPattern [][]string
	if msg.NoIndex {
		var uris []string
		if view != nil {
			// Snapshot-consistent corpus listing: the file store may
			// already hold documents newer than the pinned version.
			uris = w.corpus.URIs(view.Version())
		} else {
			var err error
			uris, err = w.DocumentURIs()
			if err != nil {
				return nil, stats, err
			}
		}
		perPattern = make([][]string, len(q.Patterns))
		for i := range perPattern {
			perPattern[i] = uris
		}
	} else {
		lsp := sp.Child(obs.SpanLookup)
		lopts := w.lookupOpts
		lopts.Span = lsp
		if view != nil {
			lopts.View = view
		}
		// Each query gets a fresh modeled-time/retry budget (nil when no
		// deadline or retry pool is configured); the look-up charges its
		// store latencies against it and stops once it is spent.
		lopts.Ctx = w.queryContext()
		sets, lst, err := index.LookupQuery(w.store, w.Strategy, q, lopts)
		if err != nil {
			lsp.SetError(err)
			lsp.End()
			return nil, stats, err
		}
		perPattern = sets
		stats.GetOps = lst.GetOps
		stats.LookupGetTime = lst.GetTime
		stats.Incomplete = lst.Incomplete
		stats.PlanTime = in.ComputeDuration(lst.BytesFetched, w.Perf.PlanBytesPerECUSec)
		stats.Lookup = lst
		in.RunOn(0, lst.GetTime+stats.PlanTime)
		w.noteLookup(lst)
		w.met.queryLookup.ObserveModeled(lst.GetTime)
		w.met.queryPlan.ObserveModeled(stats.PlanTime)
		lsp.SetModeled(lst.GetTime + stats.PlanTime)
		lsp.SetAttrInt("get_ops", lst.GetOps)
		lsp.SetAttrInt("bytes_fetched", lst.BytesFetched)
		lsp.End()
	}
	for _, uris := range perPattern {
		stats.DocIDsFromIndex += len(uris)
	}

	// Step 13: fetch the union of candidate documents and evaluate. Each
	// document is one task, scheduled on the least-loaded core — the
	// intra-machine parallelism the paper gets from multi-threading.
	union := make(map[string]bool)
	for _, uris := range perPattern {
		for _, u := range uris {
			union[u] = true
		}
	}
	uris := make([]string, 0, len(union))
	for u := range union {
		uris = append(uris, u)
	}
	sort.Strings(uris)
	stats.DocsFetched = len(uris)
	esp := sp.Child(obs.SpanEval)
	esp.SetAttrInt("docs", int64(len(uris)))

	// The real fetch + parse work fans out over a bounded worker pool with
	// first-error-wins cancellation; the modeled time is then scheduled on
	// the instance in URI order, so modeled times, billing and error
	// reporting are identical to the sequential pipeline at any pool size.
	fetched, ferr := w.fetchDocuments(uris, view)
	docs := make(map[string]*xmltree.Document, len(uris))
	for i, r := range fetched {
		if r.err != nil {
			esp.SetError(r.err)
			esp.End()
			return nil, stats, r.err
		}
		docs[uris[i]] = r.doc
		task := r.fetch +
			in.ComputeDuration(r.bytes, w.Perf.ParseBytesPerECUSec) +
			in.ComputeDuration(r.bytes, w.Perf.EvalBytesPerECUSec)
		stats.FetchEvalTime += task
		in.Run(task)
	}
	if ferr != nil {
		// Unreachable in practice (a recorded error surfaces above), but
		// never let a cancelled pool pass silently.
		esp.SetError(ferr)
		esp.End()
		return nil, stats, ferr
	}
	docSets := make([][]*xmltree.Document, len(perPattern))
	for i, us := range perPattern {
		for _, u := range us {
			docSets[i] = append(docSets[i], docs[u])
		}
	}
	result, err := engine.EvalQueryOnDocSets(q, docSets, w.docWorkers())
	if err != nil {
		esp.SetError(err)
		esp.End()
		return nil, stats, err
	}
	stats.ResultRows = len(result.Rows)
	stats.ResultBytes = result.Bytes()
	w.met.queryFetchEval.ObserveModeled(stats.FetchEvalTime)
	esp.SetModeled(stats.FetchEvalTime)
	esp.SetAttrInt("rows", int64(stats.ResultRows))
	esp.End()

	// Step 14: write the results to the file store.
	rsp := sp.Child(obs.SpanResults)
	key := resultsPrefix + msg.ID
	putDur, err := w.files.Put(Bucket, key, encodeResult(result), nil)
	if err != nil {
		rsp.SetError(err)
		rsp.End()
		return nil, stats, err
	}
	in.RunOn(0, putDur)
	rsp.SetModeled(putDur)
	rsp.SetAttrInt("bytes", stats.ResultBytes)
	rsp.End()

	in.TL.Level()
	stats.ResponseTime = in.TL.Elapsed() - t0
	return result, stats, nil
}

// fetchedDoc is the outcome of one step-13 task: the parsed document plus
// the modeled quantities the coordinator schedules afterwards.
type fetchedDoc struct {
	doc   *xmltree.Document
	fetch time.Duration
	bytes int64
	err   error
}

// fetchDocuments retrieves and parses the candidate documents, one task per
// URI, on a pool of at most docWorkers goroutines. The first failing task
// (in URI order — the order the sequential pipeline would hit it) closes a
// cancel channel, so no new tasks start after an error. The returned error
// only signals that cancellation fired; callers scan the slice in order for
// the authoritative per-URI error.
//
// With a pinned view, each document resolves at the view's corpus version:
// superseded versions read their retained snapshot bytes from the
// warehouse's memory (no billed fetch), the current version reads the file
// store as always. A concurrent update can overwrite the file between the
// resolution and the fetch, so the fetched bytes are re-checked against
// the view afterwards — the retained copy wins if the fetch raced.
func (w *Warehouse) fetchDocuments(uris []string, view *mutate.View) ([]fetchedDoc, error) {
	results := make([]fetchedDoc, len(uris))
	parseInto := func(i int, data []byte, fetch time.Duration) error {
		doc, err := xmltree.Parse(uris[i], data)
		if err != nil {
			results[i].err = err
			return err
		}
		results[i] = fetchedDoc{doc: doc, fetch: fetch, bytes: int64(len(data))}
		return nil
	}
	fetchOne := func(i int) error {
		if view != nil {
			data, present := view.DocState(uris[i])
			if !present {
				// Postings at the pinned version never name documents
				// removed at or before it; surface the inconsistency.
				err := fmt.Errorf("core: %s absent at corpus version %d", uris[i], view.Version())
				results[i].err = err
				return err
			}
			if data != nil {
				return parseInto(i, data, 0)
			}
		}
		obj, fetch, err := w.files.Get(Bucket, DocKey(uris[i]))
		if err != nil {
			results[i].err = err
			return err
		}
		data := obj.Data
		if view != nil {
			if retained, _ := view.DocState(uris[i]); retained != nil {
				data = retained // the billed fetch raced an update
			}
		}
		return parseInto(i, data, fetch)
	}

	workers := w.docWorkers()
	if workers > len(uris) {
		workers = len(uris)
	}
	if workers <= 1 {
		for i := range uris {
			if err := fetchOne(i); err != nil {
				return results, err
			}
		}
		return results, nil
	}

	var (
		wg     sync.WaitGroup
		once   sync.Once
		cancel = make(chan struct{})
		idx    = make(chan int)
	)
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := fetchOne(i); err != nil {
					once.Do(func() { close(cancel) })
				}
			}
		}()
	}
feed:
	for i := range uris {
		select {
		case idx <- i:
		case <-cancel:
			break feed
		}
	}
	close(idx)
	wg.Wait()
	select {
	case <-cancel:
		return results, fmt.Errorf("core: document fetch cancelled")
	default:
		return results, nil
	}
}

// ParseQueryText compiles a query in either supported surface syntax: the
// tree-pattern notation of package pattern, or the XQuery fragment of
// package xquery (Section 4's concrete syntax). Texts whose first token is
// the FLWR keyword `for` followed by a variable are treated as XQuery;
// everything else as a pattern. (A tree pattern rooted at an element
// literally named "for" and carrying a variable would be misdetected;
// parenthesize nothing — just rename such an element or call
// pattern.Parse directly.)
func ParseQueryText(text string) (*pattern.Query, error) {
	trimmed := strings.TrimSpace(text)
	if strings.HasPrefix(trimmed, "for ") || strings.HasPrefix(trimmed, "for$") {
		rest := strings.TrimSpace(trimmed[3:])
		if strings.HasPrefix(rest, "$") {
			return xquery.Parse(text)
		}
	}
	return pattern.Parse(text)
}

// encodeResult serializes a result for the file store (step 14); the front
// end decodes it at step 17.
func encodeResult(r *engine.Result) []byte {
	b, err := json.Marshal(r)
	if err != nil {
		// Result values are plain strings; marshaling cannot fail.
		panic(err)
	}
	return b
}

func decodeResult(data []byte) (*engine.Result, error) {
	var r engine.Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("core: decoding result: %w", err)
	}
	return &r, nil
}

// RunQueryOn executes one query synchronously on one instance, issuing the
// very same queue/store requests as the live pipeline: the front end sends
// the query message (step 8), the processor receives it (9), processes it
// (10-14), posts the response (15) and deletes the query message; the front
// end then receives the response (16), fetches the results (17), returns
// them (18) and deletes the response message. useIndex=false is the
// "no index" baseline of Section 8.
func (w *Warehouse) RunQueryOn(in *ec2.Instance, queryText string, useIndex bool) (*engine.Result, QueryStats, error) {
	return w.runQueryView(in, queryText, useIndex, nil)
}

// RunQueryOnView executes one query synchronously against the caller's
// pinned snapshot view instead of the version current at admission. Views
// cannot serialize through the query queue, so this exists only on the
// synchronous driver; the property tests use it to replay a query at a
// historical corpus version while mutations continue.
func (w *Warehouse) RunQueryOnView(in *ec2.Instance, queryText string, view *mutate.View) (*engine.Result, QueryStats, error) {
	return w.runQueryView(in, queryText, true, view)
}

func (w *Warehouse) runQueryView(in *ec2.Instance, queryText string, useIndex bool, view *mutate.View) (*engine.Result, QueryStats, error) {
	id := w.nextQueryID()
	root := w.tracer.Start(obs.SpanQuery)
	root.SetAttr("id", id)
	defer root.End()
	msg := queryMessage{ID: id, Query: queryText, Strategy: w.Strategy.Name(), NoIndex: !useIndex}
	body, _ := json.Marshal(msg)
	ssp := root.Child(obs.SpanSubmitQuery)
	_, sendDur, err := w.queues.Send(QueryQueue, string(body))
	ssp.SetModeled(sendDur)
	ssp.SetError(err)
	ssp.End()
	if err != nil {
		return nil, QueryStats{}, err
	}
	w.met.submitQueries.Inc()
	root.AddModeled(sendDur)
	got, rtt, err := w.queues.Receive(QueryQueue, 10*time.Minute)
	if err != nil {
		return nil, QueryStats{}, err
	}
	if got == nil {
		return nil, QueryStats{}, fmt.Errorf("core: query message vanished")
	}
	in.RunOn(0, rtt)
	root.AddModeled(rtt)
	var parsed queryMessage
	if err := json.Unmarshal([]byte(got.Body), &parsed); err != nil {
		return nil, QueryStats{}, err
	}

	_, stats, perr := w.processQueryView(in, parsed, root, view)
	root.AddModeled(stats.ResponseTime)
	resp := responseMessage{ID: parsed.ID}
	if perr != nil {
		resp.Error = perr.Error()
	} else {
		resp.ResultKey = resultsPrefix + parsed.ID
	}
	rbody, _ := json.Marshal(resp)
	if _, _, err := w.queues.Send(ResponseQueue, string(rbody)); err != nil {
		return nil, stats, err
	}
	if _, err := w.queues.Delete(QueryQueue, got.Receipt); err != nil {
		return nil, stats, err
	}
	if perr != nil {
		root.SetError(perr)
		// Consume the error response as the front end would; leaving it
		// queued would pair it with the NEXT query's fetch and poison every
		// later answer on this warehouse.
		if rm, _, err := w.queues.Receive(ResponseQueue, time.Minute); err == nil && rm != nil {
			w.queues.Delete(ResponseQueue, rm.Receipt)
		}
		return nil, stats, fmt.Errorf("%w: %v", ErrQueryFailed, perr)
	}

	// Front-end side (steps 16-18).
	fsp := root.Child(obs.SpanFetchResults)
	bail := func(err error) error { fsp.SetError(err); fsp.End(); return err }
	rm, frtt, err := w.queues.Receive(ResponseQueue, time.Minute)
	if err != nil {
		return nil, stats, bail(err)
	}
	if rm == nil {
		return nil, stats, bail(fmt.Errorf("core: response message missing"))
	}
	var response responseMessage
	if err := json.Unmarshal([]byte(rm.Body), &response); err != nil {
		return nil, stats, bail(err)
	}
	obj, getDur, err := w.files.Get(Bucket, response.ResultKey)
	if err != nil {
		return nil, stats, bail(err)
	}
	w.ledger.AddEgress(int64(len(obj.Data)))
	if _, err := w.queues.Delete(ResponseQueue, rm.Receipt); err != nil {
		return nil, stats, bail(err)
	}
	final, err := decodeResult(obj.Data)
	if err != nil {
		return nil, stats, bail(err)
	}
	fsp.SetModeled(frtt + getDur)
	fsp.SetAttrInt("bytes", int64(len(obj.Data)))
	fsp.End()
	root.AddModeled(frtt + getDur)
	return final, stats, nil
}
