package core

import (
	"errors"
	"testing"

	"repro/internal/cloud/chaos"
	"repro/internal/cloud/ec2"
	"repro/internal/cloud/s3"
	"repro/internal/index"
	"repro/internal/xmltree"
)

func TestRemoveDocument(t *testing.T) {
	w := newWarehouse(t, index.TwoLUPI)
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)
	loadPaintings(t, w, fleet)
	in := ec2.Launch(w.ledger, ec2.Large)

	before, _, err := w.RunQueryOn(in, `//painting[/name{val}~"Lion"]`, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Rows) != 2 {
		t.Fatalf("rows before = %d", len(before.Rows))
	}
	itemsBefore := w.IndexItems()

	if err := w.RemoveDocument(in, "delacroix.xml"); err != nil {
		t.Fatal(err)
	}
	if w.IndexItems() >= itemsBefore {
		t.Error("index did not shrink")
	}
	after, _, err := w.RunQueryOn(in, `//painting[/name{val}~"Lion"]`, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != 1 || after.Rows[0].URI != "painting-1861-1.xml" {
		t.Errorf("rows after = %v", after.Rows)
	}
	// The file itself is gone.
	if _, _, err := w.files.Get(Bucket, DocKey("delacroix.xml")); !errors.Is(err, s3.ErrNoSuchKey) {
		t.Errorf("file still present: %v", err)
	}
	// The no-index path must also work after removal (it lists the bucket).
	noIdx, _, err := w.RunQueryOn(in, `//painting[/name{val}~"Lion"]`, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(noIdx.Rows) != 1 {
		t.Errorf("no-index rows after = %v", noIdx.Rows)
	}
	// Removing a missing document fails cleanly.
	if err := w.RemoveDocument(in, "delacroix.xml"); err == nil {
		t.Error("double removal succeeded")
	}
}

// A removal interrupted between the two deletion steps — index entries
// gone, file still present (the state a crash leaves, since RemoveDocument
// deletes index entries first) — must stay removable: the file is still
// readable, re-extraction finds nothing to delete (idempotent), and the
// file deletion completes the removal.
func TestRemoveDocumentInterruptedStaysRemovable(t *testing.T) {
	w := newWarehouse(t, index.LUP)
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)
	loadPaintings(t, w, fleet)
	in := ec2.Launch(w.ledger, ec2.Large)

	// Reproduce the interrupted state by hand: drop the index entries
	// while keeping the file.
	obj, _, err := w.files.Get(Bucket, DocKey("delacroix.xml"))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.Parse("delacroix.xml", obj.Data)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := index.DeleteDocument(w.store, w.Strategy, doc, w.indexOptions(), w.cache); err != nil {
		t.Fatal(err)
	}

	// The retried removal completes: idempotent index deletion, then the
	// file goes away.
	if err := w.RemoveDocument(in, "delacroix.xml"); err != nil {
		t.Fatalf("retried removal: %v", err)
	}
	if _, _, err := w.files.Get(Bucket, DocKey("delacroix.xml")); !errors.Is(err, s3.ErrNoSuchKey) {
		t.Errorf("file still present: %v", err)
	}
	res, _, err := w.RunQueryOn(in, `//painting[/name{val}~"Lion"]`, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows after interrupted removal = %v", res.Rows)
	}
}

// A transient S3 fault at the start of a removal must leave the warehouse
// untouched — the index is only modified after the document was fetched —
// and the removal must succeed when retried after the fault clears.
func TestRemoveDocumentSurvivesTransientS3Fault(t *testing.T) {
	w, err := New(Config{Strategy: index.LUP, Chaos: &chaos.Plan{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)
	loadPaintings(t, w, fleet)
	in := ec2.Launch(w.ledger, ec2.Large)
	itemsBefore := w.IndexItems()

	w.ChaosInjector().SetRates(chaos.Rates{S3Transient: 1})
	if err := w.RemoveDocument(in, "delacroix.xml"); !errors.Is(err, s3.ErrTransient) {
		t.Fatalf("removal under S3 fault: %v, want ErrTransient", err)
	}
	if got := w.IndexItems(); got != itemsBefore {
		t.Errorf("failed removal changed the index: %d items, was %d", got, itemsBefore)
	}

	w.ChaosInjector().SetRates(chaos.Rates{})
	if err := w.RemoveDocument(in, "delacroix.xml"); err != nil {
		t.Fatalf("retried removal: %v", err)
	}
	if w.IndexItems() >= itemsBefore {
		t.Error("index did not shrink after retried removal")
	}
}

// Removal must invalidate the posting cache: a query answered from cache
// before the removal must not resurrect the removed document afterwards.
func TestRemoveDocumentInvalidatesPostingCache(t *testing.T) {
	w, err := New(Config{Strategy: index.LUP, PostingCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)
	loadPaintings(t, w, fleet)
	in := ec2.Launch(w.ledger, ec2.Large)

	const q = `//painting[/name{val}~"Lion"]`
	before, _, err := w.RunQueryOn(in, q, true) // primes the cache
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Rows) != 2 {
		t.Fatalf("rows before = %d, want 2", len(before.Rows))
	}
	again, _, err := w.RunQueryOn(in, q, true)
	if err != nil {
		t.Fatal(err)
	}
	hits, _, _ := w.cache.Counters()
	if hits == 0 || len(again.Rows) != 2 {
		t.Fatalf("cache not primed: hits=%d rows=%d", hits, len(again.Rows))
	}

	if err := w.RemoveDocument(in, "delacroix.xml"); err != nil {
		t.Fatal(err)
	}
	after, _, err := w.RunQueryOn(in, q, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != 1 || after.Rows[0].URI != "painting-1861-1.xml" {
		t.Errorf("stale cache after removal: rows = %v", after.Rows)
	}
}
