package core

import (
	"errors"
	"testing"

	"repro/internal/cloud/ec2"
	"repro/internal/cloud/s3"
	"repro/internal/index"
)

func TestRemoveDocument(t *testing.T) {
	w := newWarehouse(t, index.TwoLUPI)
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)
	loadPaintings(t, w, fleet)
	in := ec2.Launch(w.ledger, ec2.Large)

	before, _, err := w.RunQueryOn(in, `//painting[/name{val}~"Lion"]`, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Rows) != 2 {
		t.Fatalf("rows before = %d", len(before.Rows))
	}
	itemsBefore := w.IndexItems()

	if err := w.RemoveDocument(in, "delacroix.xml"); err != nil {
		t.Fatal(err)
	}
	if w.IndexItems() >= itemsBefore {
		t.Error("index did not shrink")
	}
	after, _, err := w.RunQueryOn(in, `//painting[/name{val}~"Lion"]`, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != 1 || after.Rows[0].URI != "painting-1861-1.xml" {
		t.Errorf("rows after = %v", after.Rows)
	}
	// The file itself is gone.
	if _, _, err := w.files.Get(Bucket, DocKey("delacroix.xml")); !errors.Is(err, s3.ErrNoSuchKey) {
		t.Errorf("file still present: %v", err)
	}
	// The no-index path must also work after removal (it lists the bucket).
	noIdx, _, err := w.RunQueryOn(in, `//painting[/name{val}~"Lion"]`, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(noIdx.Rows) != 1 {
		t.Errorf("no-index rows after = %v", noIdx.Rows)
	}
	// Removing a missing document fails cleanly.
	if err := w.RemoveDocument(in, "delacroix.xml"); err == nil {
		t.Error("double removal succeeded")
	}
}
