package core

import (
	"testing"

	"repro/internal/cloud/ec2"
	"repro/internal/index"
	"repro/internal/pricing"
)

// The indexing report's internal accounting must be consistent with the
// fleet timelines and the metering ledger.
func TestIndexReportAccounting(t *testing.T) {
	w := newWarehouse(t, index.LUP)
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 4)
	rep := loadPaintings(t, w, fleet)

	// Per-machine attribution can never exceed the end-to-end time.
	if rep.AvgExtract > rep.Total || rep.AvgUpload > rep.Total {
		t.Errorf("attribution exceeds total: extract=%v upload=%v total=%v",
			rep.AvgExtract, rep.AvgUpload, rep.Total)
	}
	if rep.AvgUpload <= 0 || rep.AvgExtract <= 0 {
		t.Errorf("zero attribution: %+v", rep)
	}
	// Batch requests can never exceed item count, and batching must help.
	if rep.Requests > rep.Items {
		t.Errorf("requests %d > items %d", rep.Requests, rep.Items)
	}
	// The fleet's billed seconds cover the elapsed time of each machine.
	secs := w.ledger.Snapshot().InstanceSeconds("l")
	if secs < rep.Total.Seconds() {
		t.Errorf("billed %.3fs < elapsed %.3fs", secs, rep.Total.Seconds())
	}
	// The data the report saw matches the file store gauge.
	if rep.DataBytes != w.DataBytes() {
		t.Errorf("report bytes %d != stored %d", rep.DataBytes, w.DataBytes())
	}
	// And the billed put units match the report's items.
	units := w.ledger.Snapshot().Get("dynamodb", "put").Units
	if units != int64(rep.Items) {
		t.Errorf("billed units %d != report items %d", units, rep.Items)
	}
}

// Sanity on the whole money path: bill(ledger) of an indexing run is
// strictly positive in every expected line and zero elsewhere.
func TestIndexingInvoiceLines(t *testing.T) {
	w := newWarehouse(t, index.LU)
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 2)
	loadPaintings(t, w, fleet)
	inv := pricing.Singapore2012().Bill(w.ledger.Snapshot())
	for _, svc := range []string{"dynamodb", "ec2", "s3", "sqs"} {
		if inv.Line(svc) <= 0 {
			t.Errorf("no %s cost billed: %v", svc, inv)
		}
	}
	if inv.Line("egress") != 0 {
		t.Errorf("indexing produced egress: %v", inv)
	}
	if inv.Line("simpledb") != 0 {
		t.Errorf("wrong backend billed: %v", inv)
	}
}

func TestEmptyFleetRejected(t *testing.T) {
	w := newWarehouse(t, index.LU)
	if _, err := w.IndexCorpusOn(nil, []string{"x"}); err == nil {
		t.Error("empty fleet accepted")
	}
}
