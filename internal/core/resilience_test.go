package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/cloud/chaos"
	"repro/internal/cloud/ec2"
	"repro/internal/engine"
	"repro/internal/index"
)

const tailQuery = `//painting[/name~"Lion", /painter[/name[/last{val}]]]`

// tailWarehouse builds a warehouse from cfg, indexes the paintings corpus
// through the live pipeline, and returns a query instance. Indexing is not
// subject to the query deadline, so even a nanosecond budget loads fine.
func tailWarehouse(t *testing.T, cfg Config) (*Warehouse, *ec2.Instance) {
	t.Helper()
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 1)
	loadPaintings(t, w, fleet)
	return w, ec2.Launch(w.ledger, ec2.XL)
}

func renderRows(res *engine.Result) []string {
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = fmt.Sprintf("%s|%v", r.URI, r.Cols)
	}
	sort.Strings(rows)
	return rows
}

// A nanosecond query deadline fails the query with the modeled-deadline
// error, while a generous deadline is behaviourally invisible: identical
// rows, identical billed gets, identical modeled look-up time as the
// no-deadline run.
func TestQueryDeadlineEnforcedAndHarmless(t *testing.T) {
	plain, pin := tailWarehouse(t, Config{Strategy: index.LUI})
	res, pst, err := plain.RunQueryOn(pin, tailQuery, true)
	if err != nil {
		t.Fatal(err)
	}
	want := renderRows(res)
	if len(want) == 0 {
		t.Fatal("reference query returned no rows")
	}

	tight, tin := tailWarehouse(t, Config{Strategy: index.LUI, QueryDeadline: time.Nanosecond})
	_, _, err = tight.RunQueryOn(tin, tailQuery, true)
	if !errors.Is(err, ErrQueryFailed) {
		t.Fatalf("tight-deadline err = %v, want ErrQueryFailed", err)
	}
	if !strings.Contains(err.Error(), "deadline exceeded") {
		t.Fatalf("tight-deadline err %q does not name the deadline", err)
	}

	generous, gin := tailWarehouse(t, Config{Strategy: index.LUI, QueryDeadline: time.Hour, QueryRetryBudget: 100})
	gres, gst, err := generous.RunQueryOn(gin, tailQuery, true)
	if err != nil {
		t.Fatal(err)
	}
	got := renderRows(gres)
	if len(got) != len(want) {
		t.Fatalf("generous deadline returned %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %q under deadline, %q without", i, got[i], want[i])
		}
	}
	if gst.GetOps != pst.GetOps || gst.LookupGetTime != pst.LookupGetTime {
		t.Fatalf("budgeted run billed %d gets in %v, unbudgeted %d in %v — the budget must not perturb the read path",
			gst.GetOps, gst.LookupGetTime, pst.GetOps, pst.LookupGetTime)
	}
	if gst.Incomplete {
		t.Fatal("healthy run marked Incomplete")
	}
}

// With every store read throttled and a single shared retry token, a query
// stops with the retry-budget error instead of backing off indefinitely;
// once the fault clears the next query (with its own fresh budget) succeeds.
func TestQueryRetryBudgetExhaustion(t *testing.T) {
	seed := chaosSeed(t)
	w, in := tailWarehouse(t, Config{
		Strategy:         index.LUI,
		Chaos:            &chaos.Plan{Seed: seed}, // all rates zero until flipped
		QueryRetryBudget: 1,
	})

	if _, _, err := w.RunQueryOn(in, tailQuery, true); err != nil {
		t.Fatalf("pre-fault query: %v", err)
	}

	w.ChaosInjector().SetRates(chaos.Rates{Throttle: 1})
	_, _, err := w.RunQueryOn(in, tailQuery, true)
	if !errors.Is(err, ErrQueryFailed) {
		t.Fatalf("throttled err = %v, want ErrQueryFailed", err)
	}
	if !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("throttled err %q does not name the retry budget", err)
	}

	w.ChaosInjector().SetRates(chaos.Rates{})
	if _, _, err := w.RunQueryOn(in, tailQuery, true); err != nil {
		t.Fatalf("post-heal query: %v", err)
	}
}

// CoalesceLookups routes every query read through the single-flight group
// without changing any answer; with a single front end the group only ever
// sees leaders, and the counters surface through CoalesceStats.
func TestCoalesceLookupsKeepsAnswers(t *testing.T) {
	plain, pin := tailWarehouse(t, Config{Strategy: index.LUP})
	res, _, err := plain.RunQueryOn(pin, tailQuery, true)
	if err != nil {
		t.Fatal(err)
	}
	want := renderRows(res)
	if cs := plain.CoalesceStats(); cs.Leaders != 0 || cs.Hits != 0 {
		t.Fatalf("coalescing disabled but stats = %+v", cs)
	}

	coal, cin := tailWarehouse(t, Config{Strategy: index.LUP, CoalesceLookups: true})
	cres, _, err := coal.RunQueryOn(cin, tailQuery, true)
	if err != nil {
		t.Fatal(err)
	}
	got := renderRows(cres)
	if len(got) != len(want) {
		t.Fatalf("coalesced run returned %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %q coalesced, %q plain", i, got[i], want[i])
		}
	}
	cs := coal.CoalesceStats()
	if cs.Leaders == 0 {
		t.Fatal("coalescing enabled but no reads went through the flight group")
	}
	if cs.Hits != 0 {
		t.Fatalf("sequential queries coalesced %d times — the group must not act as a cache", cs.Hits)
	}
}

// The Incomplete marker and the degraded/coalesced key counts aggregate into
// the warehouse look-up totals.
func TestLookupTotalsCarryResilienceCounters(t *testing.T) {
	w := newWarehouse(t, index.LUP)
	w.noteLookup(index.LookupStats{DegradedKeys: 3, CoalescedKeys: 2, Incomplete: true})
	w.noteLookup(index.LookupStats{CoalescedKeys: 1})
	tot := w.LookupTotals()
	if tot.DegradedKeys != 3 || tot.CoalescedKeys != 3 || !tot.Incomplete {
		t.Fatalf("totals = %+v, want 3 degraded, 3 coalesced, Incomplete", tot)
	}
}
