package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/cloud/ec2"
	"repro/internal/index"
	"repro/internal/pattern"
	"repro/internal/pricing"
	"repro/internal/xmark"
)

// Property-based differential tests over seeded random corpora and random
// tree-pattern queries. Two obligations ride on the same generators:
//
//  1. Strategy agreement: LU, LUP, LUI and 2LUPI index different things,
//     but every query must get the same answer from all four — the index
//     only prunes the documents fetched, never the result.
//
//  2. Sharding transparency: a hash-partitioned warehouse (IndexShards: 4)
//     must be indistinguishable from the unsharded one — byte-identical
//     store dumps, identical answers, identical modeled times and an
//     identical bill — because sharded batches ship as single multi-table
//     requests routed by a deterministic hash.

// propertyLabels is the XMark label alphabet the random queries draw from
// (including one label that never occurs, so empty answers are exercised).
var propertyLabels = []string{
	"site", "regions", "item", "name", "location", "payment", "quantity",
	"description", "parlist", "listitem", "text", "mailbox", "mail",
	"from", "to", "person", "profile", "education", "age", "address",
	"city", "open_auction", "bidder", "increase", "type", "seller",
	"closed_auction", "price", "annotation", "nonexistent",
}

var propertyAttrs = []string{"id", "person", "category", "income"}

// randomQueryText builds a small random tree-pattern query and renders it
// to the surface syntax RunQueryOn parses.
func randomQueryText(t *testing.T, rng *rand.Rand) string {
	t.Helper()
	var build func(depth int, axis pattern.Axis, attrAllowed bool) *pattern.Node
	build = func(depth int, axis pattern.Axis, attrAllowed bool) *pattern.Node {
		n := &pattern.Node{Axis: axis}
		if attrAllowed && rng.Intn(6) == 0 {
			n.IsAttr = true
			n.Label = propertyAttrs[rng.Intn(len(propertyAttrs))]
		} else {
			n.Label = propertyLabels[rng.Intn(len(propertyLabels))]
		}
		switch rng.Intn(8) {
		case 0:
			n.Val = true
		case 1:
			if !n.IsAttr {
				n.Cont = true
			} else {
				n.Val = true
			}
		case 2:
			n.Pred = pattern.Pred{Kind: pattern.Contains, Const: "Zanzibar"}
		case 3:
			n.Pred = pattern.Pred{Kind: pattern.Eq, Const: "1"}
		case 4:
			n.Pred = pattern.Pred{Kind: pattern.Range, Lo: "1", Hi: "3000"}
		}
		if !n.IsAttr && depth < 3 {
			kids := rng.Intn(3)
			for i := 0; i < kids; i++ {
				axis := pattern.Child
				if rng.Intn(2) == 0 {
					axis = pattern.Descendant
				}
				c := build(depth+1, axis, true)
				c.Parent = n
				n.Children = append(n.Children, c)
			}
		}
		return n
	}
	q := &pattern.Query{Patterns: []*pattern.Tree{{Root: build(0, pattern.Descendant, false)}}}
	if err := q.Validate(); err != nil {
		t.Fatalf("generated invalid pattern: %v", err)
	}
	text := q.String()
	if _, err := pattern.Parse(text); err != nil {
		t.Fatalf("rendered query %q does not reparse: %v", text, err)
	}
	return text
}

func propertyCorpus(seed int64) []xmark.Doc {
	cfg := xmark.DefaultConfig(12)
	cfg.Seed = seed
	cfg.TargetDocBytes = 4 << 10
	return xmark.Generate(cfg)
}

// buildWarehouse provisions a warehouse, stores the corpus and indexes it
// on a two-instance fleet with the synchronous deterministic driver.
func buildWarehouse(t *testing.T, cfg Config, docs []xmark.Doc) (*Warehouse, IndexReport) {
	t.Helper()
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var uris []string
	for _, d := range docs {
		if _, err := w.files.Put(Bucket, DocKey(d.URI), d.Data, nil); err != nil {
			t.Fatal(err)
		}
		uris = append(uris, d.URI)
	}
	fleet := ec2.LaunchFleet(w.ledger, ec2.Large, 2)
	rep, err := w.IndexCorpusOn(fleet, uris)
	if err != nil {
		t.Fatal(err)
	}
	return w, rep
}

// answerRows runs one query and returns its sorted rendered rows.
func answerRows(t *testing.T, w *Warehouse, in *ec2.Instance, text string) ([]string, QueryStats) {
	t.Helper()
	res, qs, err := w.RunQueryOn(in, text, true)
	if err != nil {
		t.Fatalf("%s: %v", text, err)
	}
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = fmt.Sprintf("%s|%v", r.URI, r.Cols)
	}
	sort.Strings(rows)
	return rows, qs
}

// TestStrategiesAgreeOnRandomQueries: all four indexing strategies answer
// every random query identically over the same random corpus.
func TestStrategiesAgreeOnRandomQueries(t *testing.T) {
	docs := propertyCorpus(20260806)
	strategies := index.All()
	ws := make([]*Warehouse, len(strategies))
	ins := make([]*ec2.Instance, len(strategies))
	for i, s := range strategies {
		ws[i], _ = buildWarehouse(t, Config{Strategy: s}, docs)
		ins[i] = ec2.Launch(ws[i].ledger, ec2.XL)
	}

	rng := rand.New(rand.NewSource(42))
	nonEmpty := 0
	for trial := 0; trial < 30; trial++ {
		text := randomQueryText(t, rng)
		want, _ := answerRows(t, ws[0], ins[0], text)
		if len(want) > 0 {
			nonEmpty++
		}
		for i := 1; i < len(ws); i++ {
			got, _ := answerRows(t, ws[i], ins[i], text)
			if len(got) != len(want) {
				t.Errorf("trial %d %q: %s returned %d rows, %s %d",
					trial, text, strategies[i].Name(), len(got), strategies[0].Name(), len(want))
				continue
			}
			for j := range want {
				if got[j] != want[j] {
					t.Errorf("trial %d %q row %d: %s %q, %s %q",
						trial, text, j, strategies[i].Name(), got[j], strategies[0].Name(), want[j])
					break
				}
			}
		}
	}
	if nonEmpty < 5 {
		t.Fatalf("only %d of 30 random queries matched anything; generator too hostile", nonEmpty)
	}
}

// TestShardingTransparencyOnRandomQueries is the acceptance differential:
// shards=1 vs shards=4 must be byte-identical in store dumps, query
// answers, modeled times and billed cost.
func TestShardingTransparencyOnRandomQueries(t *testing.T) {
	docs := propertyCorpus(77)

	flat, flatRep := buildWarehouse(t, Config{Strategy: index.TwoLUPI}, docs)
	shrd, shrdRep := buildWarehouse(t, Config{Strategy: index.TwoLUPI, IndexShards: 4}, docs)

	// Identical indexing report: entries, items, requests and every modeled
	// duration.
	if flatRep != shrdRep {
		t.Errorf("index reports differ:\n  shards=1: %+v\n  shards=4: %+v", flatRep, shrdRep)
	}

	// Byte-identical logical dumps (the sharded side merges partitions).
	fd, sd := dumpStore(t, flat), dumpStore(t, shrd)
	for _, tbl := range flat.Strategy.Tables() {
		if len(fd[tbl]) != len(sd[tbl]) {
			t.Errorf("%s: shards=1 holds %d items, shards=4 %d", tbl, len(fd[tbl]), len(sd[tbl]))
			continue
		}
		for i := range fd[tbl] {
			a, b := itemLine(fd[tbl][i]), itemLine(sd[tbl][i])
			if a != b {
				t.Errorf("%s item %d differs:\n  shards=1: %s\n  shards=4: %s", tbl, i, a, b)
				break
			}
		}
	}
	if fi, si := flat.IndexItems(), shrd.IndexItems(); fi != si {
		t.Errorf("IndexItems: shards=1 %d, shards=4 %d", fi, si)
	}

	// Identical answers and identical per-query modeled statistics.
	flatIn := ec2.Launch(flat.ledger, ec2.XL)
	shrdIn := ec2.Launch(shrd.ledger, ec2.XL)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		text := randomQueryText(t, rng)
		want, fqs := answerRows(t, flat, flatIn, text)
		got, sqs := answerRows(t, shrd, shrdIn, text)
		if len(got) != len(want) {
			t.Errorf("trial %d %q: shards=1 %d rows, shards=4 %d", trial, text, len(want), len(got))
			continue
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("trial %d %q row %d: shards=1 %q, shards=4 %q", trial, text, j, want[j], got[j])
				break
			}
		}
		fqs.ID, sqs.ID = "", "" // IDs count queries per warehouse, not content
		fqs.Lookup, sqs.Lookup = index.LookupStats{}, index.LookupStats{}
		if fqs != sqs {
			t.Errorf("trial %d %q stats differ:\n  shards=1: %+v\n  shards=4: %+v", trial, text, fqs, sqs)
		}
	}

	// Identical metering and an identical bill, to the cent and beyond.
	fu, su := flat.Ledger().Snapshot(), shrd.Ledger().Snapshot()
	for _, op := range []string{"put", "get"} {
		if a, b := fu.Get("dynamodb", op), su.Get("dynamodb", op); a != b {
			t.Errorf("dynamodb %s: shards=1 %+v, shards=4 %+v", op, a, b)
		}
	}
	// Compare the invoices line by line with exact equality. (Invoice.Total
	// sums a map, so its float result depends on iteration order — the
	// per-service lines are the deterministic quantities.)
	book := pricing.Singapore2012()
	fb, sb := book.Bill(fu), book.Bill(su)
	for svc, amount := range fb.Lines {
		if sb.Line(svc) != amount {
			t.Errorf("billed %s: shards=1 %s, shards=4 %s", svc, amount, sb.Line(svc))
		}
	}
	if len(fb.Lines) != len(sb.Lines) {
		t.Errorf("invoices bill different services:\n  shards=1:\n%s  shards=4:\n%s", fb, sb)
	}
}
