// Package costmodel implements the paper's monetary cost model (Section 7):
// closed-form estimates of what a cloud provider charges for uploading,
// indexing, hosting and querying a Web data warehouse, given the data-,
// index- and query-determined metrics of Section 7.1 and the provider price
// book of Section 7.2.
//
// The formulas are transcribed verbatim from Section 7.3. The experiment
// harness uses them two ways: predictively (plug in expected metrics) and
// as a cross-check against the "actual charged costs" that the metering
// layer accumulates while the simulated services run — the two must agree,
// which is tested.
package costmodel

import (
	"repro/internal/pricing"
)

// USD re-exports the money type for convenience.
type USD = pricing.USD

// DatasetMetrics carries the data- and index-determined quantities of
// Section 7.1 for a document set D and indexing strategy I.
type DatasetMetrics struct {
	// Docs is |D|.
	Docs int64
	// DataGB is s(D), in GB.
	DataGB float64
	// IndexPutOps is |op(D,I)|: put operations needed to store the index.
	IndexPutOps int64
	// IndexRawGB is sr(D,I) and IndexOvhGB is ovh(D,I); their sum is
	// s(D,I), the stored index size.
	IndexRawGB float64
	IndexOvhGB float64
	// IndexingHours is tidx(D,I): from the first loading message retrieved
	// to the last one deleted.
	IndexingHours float64
	// VMType is the instance type that ran the indexing ("l" or "xl") and
	// VMCount how many ran in parallel.
	VMType  string
	VMCount int
}

// IndexGB returns s(D,I) = sr(D,I) + ovh(D,I).
func (m DatasetMetrics) IndexGB() float64 { return m.IndexRawGB + m.IndexOvhGB }

// QueryMetrics carries the query-determined quantities of Section 7.1.
type QueryMetrics struct {
	// ResultGB is |r(q)|, in GB.
	ResultGB float64
	// IndexGetOps is |op(q,D,I)|: get operations used by the look-up.
	IndexGetOps int64
	// DocsRetrieved is |D^q_I| (or |D| when no index is used).
	DocsRetrieved int64
	// ProcessingHours is ptq(q,D,I,D^q_I) (or pt(q,D)): from the query
	// message retrieved to the message deleted.
	ProcessingHours float64
	// VMType is the instance type processing the query.
	VMType string
}

// UploadCost is ud$(D) = STput$ x |D| + QS$ x |D|: storing every document
// and sending its loading request message.
func UploadCost(p pricing.PriceBook, docs int64) USD {
	return p.STPut*USD(docs) + p.QSRequest*USD(docs)
}

// IndexBuildCost is ci$(D,I): the upload cost, plus one index put per
// entry-item, one S3 get per document (the indexer reads it back), the
// virtual machines' time, and two queue requests per document (retrieve
// the loading message, then delete it).
func IndexBuildCost(p pricing.PriceBook, m DatasetMetrics) USD {
	vm := p.VMHour[m.VMType] * USD(m.IndexingHours) * USD(max64(1, int64(m.VMCount)))
	return UploadCost(p, m.Docs) +
		p.IDXPut*USD(m.IndexPutOps) +
		p.STGet*USD(m.Docs) +
		vm +
		p.QSRequest*USD(2*m.Docs)
}

// MonthlyStorageCost is st$m(D,I) = ST$m,GB x s(D) + IDX$m,GB x s(D,I).
// backend selects the index store's storage price.
func MonthlyStorageCost(p pricing.PriceBook, m DatasetMetrics, backend string) USD {
	idx := p.IDXMonthGB
	if backend == "simpledb" {
		idx = p.SDBMonthGB
	}
	return p.STMonthGB*USD(m.DataGB) + idx*USD(m.IndexGB())
}

// ResultRetrievalCost is rq$(q) = STget$ + egress$GB x |r(q)| + QS$ x 3:
// the front end fetches the results from the file store, pays egress for
// returning them, and issues three queue requests (send the query, retrieve
// the response reference, delete the response message).
func ResultRetrievalCost(p pricing.PriceBook, resultGB float64) USD {
	return p.STGet + p.EgressGB*USD(resultGB) + p.QSRequest*3
}

// QueryCostNoIndex is cq$(q,D): the retrieval cost, one S3 get per document
// in the warehouse, one S3 put for the results, the processing time, and
// three queue requests on the processing side.
func QueryCostNoIndex(p pricing.PriceBook, q QueryMetrics) USD {
	return ResultRetrievalCost(p, q.ResultGB) +
		p.STGet*USD(q.DocsRetrieved) +
		p.STPut +
		p.VMHour[q.VMType]*USD(q.ProcessingHours) +
		p.QSRequest*3
}

// QueryCostIndexed is cq$(q,D,I,D^q_I): like QueryCostNoIndex but reading
// only the looked-up documents and paying one index get per look-up
// operation.
func QueryCostIndexed(p pricing.PriceBook, q QueryMetrics) USD {
	return ResultRetrievalCost(p, q.ResultGB) +
		p.IDXGet*USD(q.IndexGetOps) +
		p.STGet*USD(q.DocsRetrieved) +
		p.STPut +
		p.VMHour[q.VMType]*USD(q.ProcessingHours) +
		p.QSRequest*3
}

// ProvisionedThroughputCost is the hourly-provisioning charge of a
// hash-partitioned index: DynamoDB provisions capacity per table, so an
// index split into `shards` partitions each holding writeUnits write and
// readUnits read capacity bills
//
//	shards x (writeUnits x IDXwu$h + readUnits x IDXru$h) x hours
//
// This is the term the request-based model of Section 7 omits (2012
// DynamoDB billed provisioned capacity on top of per-request charges): the
// price of the throughput head-room that lets a sharded index absorb N
// times the write rate of a single table. The shard benchmark surfaces it
// next to the modeled indexing speed-up.
func ProvisionedThroughputCost(p pricing.PriceBook, shards int, writeUnits, readUnits float64, hours float64) USD {
	if shards < 1 {
		shards = 1
	}
	perShard := USD(writeUnits)*p.IDXWriteUnitHour + USD(readUnits)*p.IDXReadUnitHour
	return USD(shards) * perShard * USD(hours)
}

// UpdateMetrics carries the write-path quantities of a mutable warehouse
// over an operating window: the document mutations applied and the billed
// re-writes the delta compactor issued folding them into the main index.
type UpdateMetrics struct {
	// Updates counts UpdateDocument calls. Each stores the new content
	// (one S3 put) and re-extracts the document on the instance; the index
	// writes themselves are deferred to the compactor.
	Updates int64
	// Removes counts RemoveDocument calls. The S3 delete is free (as on
	// real S3) and the tombstones bill only when compacted, so removes
	// contribute instance time but no per-call request charge.
	Removes int64
	// CompactPuts and CompactDeletes count the index write operations the
	// compactor issued. DynamoDB bills deletes as writes, so both price at
	// IDXput$ — these are the "billed re-writes" of the LSM trade-off:
	// raising the compaction interval amortizes superseded versions before
	// they ever reach the store, shrinking this pair at the price of a
	// larger read-side merge buffer.
	CompactPuts    int64
	CompactDeletes int64
	// Hours is the instance time spent parsing, extracting and compacting.
	Hours float64
	// VMType is the instance type that ran the write path.
	VMType string
}

// UpdateCost extends the Section 7 model to the mutable warehouse: one S3
// put per update, one index write per compactor put or delete, and the
// write path's instance time.
func UpdateCost(p pricing.PriceBook, m UpdateMetrics) USD {
	return p.STPut*USD(m.Updates) +
		p.IDXPut*USD(m.CompactPuts+m.CompactDeletes) +
		p.VMHour[m.VMType]*USD(m.Hours)
}

// PerMillionUpdates normalizes a window cost to dollars per million
// mutations, the unit the mutate benchmark reports.
func PerMillionUpdates(cost USD, mutations int64) USD {
	if mutations <= 0 {
		return 0
	}
	return cost / USD(mutations) * 1_000_000
}

// Benefit is the per-run saving of strategy I on workload W: the cost of
// answering W with no index minus the cost with the index (Section 8.3).
func Benefit(noIndex, indexed USD) USD { return noIndex - indexed }

// AmortizationCurve returns, for run counts 0..runs, the cumulated benefit
// minus the index building cost — Figure 13's #runs x benefit(I,W) −
// buildingCost(I). The index has paid for itself where the curve crosses
// zero.
func AmortizationCurve(buildCost, benefitPerRun USD, runs int) []USD {
	out := make([]USD, runs+1)
	for i := 0; i <= runs; i++ {
		out[i] = USD(i)*benefitPerRun - buildCost
	}
	return out
}

// BreakEvenRuns returns the smallest run count at which the cumulated
// benefit covers the build cost, or -1 if benefitPerRun is not positive.
func BreakEvenRuns(buildCost, benefitPerRun USD) int {
	if benefitPerRun <= 0 {
		return -1
	}
	runs := 0
	for cum := USD(0); cum < buildCost; cum += benefitPerRun {
		runs++
	}
	return runs
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
