package costmodel

import (
	"math"
	"testing"

	"repro/internal/pricing"
)

func approx(a, b USD) bool { return math.Abs(float64(a-b)) < 1e-9 }

func TestUploadCost(t *testing.T) {
	p := pricing.Singapore2012()
	got := UploadCost(p, 20000)
	want := p.STPut*20000 + p.QSRequest*20000
	if !approx(got, want) {
		t.Errorf("UploadCost = %v, want %v", got, want)
	}
}

func TestIndexBuildCostFormula(t *testing.T) {
	p := pricing.Singapore2012()
	m := DatasetMetrics{
		Docs:          20000,
		IndexPutOps:   60_000_000,
		IndexingHours: 2.18, // Table 4's 2:11 for LU
		VMType:        "l",
		VMCount:       8,
	}
	got := IndexBuildCost(p, m)
	want := UploadCost(p, m.Docs) +
		p.IDXPut*USD(m.IndexPutOps) +
		p.STGet*20000 +
		p.VMHour["l"]*2.18*8 +
		p.QSRequest*40000
	if !approx(got, want) {
		t.Errorf("IndexBuildCost = %v, want %v", got, want)
	}
	// The EC2 component at Table 4's time is in the ballpark of Table 6's
	// $5.47 for LU.
	ec2 := p.VMHour["l"] * 2.18 * 8
	if ec2 < 5 || ec2 > 7 {
		t.Errorf("EC2 component = %v, expected ~$5.9", ec2)
	}
}

func TestMonthlyStorageCost(t *testing.T) {
	p := pricing.Singapore2012()
	m := DatasetMetrics{DataGB: 40, IndexRawGB: 25, IndexOvhGB: 5}
	got := MonthlyStorageCost(p, m, "dynamodb")
	want := p.STMonthGB*40 + p.IDXMonthGB*30
	if !approx(got, want) {
		t.Errorf("MonthlyStorageCost = %v, want %v", got, want)
	}
	sdb := MonthlyStorageCost(p, m, "simpledb")
	if !approx(sdb, p.STMonthGB*40+p.SDBMonthGB*30) {
		t.Errorf("simpledb storage = %v", sdb)
	}
}

func TestQueryCosts(t *testing.T) {
	p := pricing.Singapore2012()
	noIdx := QueryMetrics{ResultGB: 0.09, DocsRetrieved: 20000, ProcessingHours: 1.5, VMType: "xl"}
	idx := QueryMetrics{ResultGB: 0.09, IndexGetOps: 12, DocsRetrieved: 349, ProcessingHours: 0.01, VMType: "xl"}
	cNo := QueryCostNoIndex(p, noIdx)
	cIdx := QueryCostIndexed(p, idx)
	if cIdx >= cNo {
		t.Errorf("indexed %v not cheaper than no-index %v", cIdx, cNo)
	}
	// Savings in the paper vary between 92%% and 97%%; at these metrics we
	// must at least be above 90%%.
	if saving := 1 - float64(cIdx/cNo); saving < 0.9 {
		t.Errorf("saving = %.2f, want > 0.9", saving)
	}
	wantNo := ResultRetrievalCost(p, 0.09) + p.STGet*20000 + p.STPut + p.VMHour["xl"]*1.5 + p.QSRequest*3
	if !approx(cNo, wantNo) {
		t.Errorf("QueryCostNoIndex = %v, want %v", cNo, wantNo)
	}
	wantIdx := ResultRetrievalCost(p, 0.09) + p.IDXGet*12 + p.STGet*349 + p.STPut + p.VMHour["xl"]*0.01 + p.QSRequest*3
	if !approx(cIdx, wantIdx) {
		t.Errorf("QueryCostIndexed = %v, want %v", cIdx, wantIdx)
	}
}

func TestResultRetrievalCost(t *testing.T) {
	p := pricing.Singapore2012()
	got := ResultRetrievalCost(p, 0.5)
	want := p.STGet + p.EgressGB*0.5 + p.QSRequest*3
	if !approx(got, want) {
		t.Errorf("ResultRetrievalCost = %v, want %v", got, want)
	}
}

func TestAmortization(t *testing.T) {
	curve := AmortizationCurve(26.64, 7, 6)
	if len(curve) != 7 {
		t.Fatalf("curve length = %d", len(curve))
	}
	if !approx(curve[0], -26.64) {
		t.Errorf("curve[0] = %v", curve[0])
	}
	if curve[3] >= 0 || curve[4] <= 0 {
		t.Errorf("crossing not between runs 3 and 4: %v", curve)
	}
	if got := BreakEvenRuns(26.64, 7); got != 4 {
		t.Errorf("BreakEvenRuns = %d, want 4", got)
	}
	if got := BreakEvenRuns(10, 0); got != -1 {
		t.Errorf("BreakEvenRuns with no benefit = %d, want -1", got)
	}
	if got := BreakEvenRuns(0, 5); got != 0 {
		t.Errorf("BreakEvenRuns(0) = %d, want 0", got)
	}
}

func TestUpdateCostFormula(t *testing.T) {
	p := pricing.Singapore2012()
	m := UpdateMetrics{
		Updates:        1000,
		Removes:        100,
		CompactPuts:    30000,
		CompactDeletes: 4000,
		Hours:          0.4,
		VMType:         "l",
	}
	got := UpdateCost(p, m)
	want := p.STPut*1000 + p.IDXPut*34000 + p.VMHour["l"]*0.4
	if !approx(got, want) {
		t.Errorf("UpdateCost = %v, want %v", got, want)
	}
	// Compaction deletes bill like puts (DynamoDB prices deletes as
	// writes), so shifting volume between them cannot change the bill.
	shifted := m
	shifted.CompactPuts, shifted.CompactDeletes = 4000, 30000
	if other := UpdateCost(p, shifted); !approx(got, other) {
		t.Errorf("puts/deletes not interchangeable: %v vs %v", got, other)
	}
	// A sparser compaction schedule that amortizes superseded versions
	// must come out cheaper.
	sparse := m
	sparse.CompactPuts /= 2
	if c := UpdateCost(p, sparse); c >= got {
		t.Errorf("halving billed re-writes did not reduce cost: %v vs %v", c, got)
	}
}

func TestPerMillionUpdates(t *testing.T) {
	if got := PerMillionUpdates(2, 500_000); !approx(got, 4) {
		t.Errorf("PerMillionUpdates = %v, want 4", got)
	}
	if got := PerMillionUpdates(2, 0); got != 0 {
		t.Errorf("PerMillionUpdates with no mutations = %v, want 0", got)
	}
}

func TestBenefit(t *testing.T) {
	if got := Benefit(10, 3); !approx(got, 7) {
		t.Errorf("Benefit = %v", got)
	}
}

// The paper's headline amortization shape (Figure 13): with the measured
// indexing costs of Table 6 and per-run benefits in the measured range,
// cheap indexes amortize in fewer runs and 2LUPI is last.
func TestAmortizationOrderingMatchesFigure13(t *testing.T) {
	build := map[string]USD{"LU": 26.64, "LUP": 56.75, "LUI": 42.44, "2LUPI": 99.44}
	benefit := map[string]USD{"LU": 6.55, "LUP": 6.57, "LUI": 6.19, "2LUPI": 6.17}
	runs := map[string]int{}
	for s := range build {
		runs[s] = BreakEvenRuns(build[s], benefit[s])
	}
	// Figure 13: LU recovers first (~4 runs), LUP and LUI midway (~8),
	// 2LUPI last (~16).
	if !(runs["LU"] < runs["LUP"] && runs["LU"] < runs["LUI"] &&
		runs["LUP"] < runs["2LUPI"] && runs["LUI"] < runs["2LUPI"]) {
		t.Errorf("amortization ordering = %v", runs)
	}
}
