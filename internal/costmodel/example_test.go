package costmodel_test

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/pricing"
)

// Reproducing the paper's headline arithmetic: on the Table 3 prices, an
// indexed query over a few hundred documents costs a small fraction of
// scanning the whole 20,000-document warehouse.
func ExampleQueryCostIndexed() {
	book := pricing.Singapore2012()
	indexed := costmodel.QueryCostIndexed(book, costmodel.QueryMetrics{
		IndexGetOps:     12,
		DocsRetrieved:   349,
		ProcessingHours: 0.01,
		VMType:          "xl",
	})
	noIndex := costmodel.QueryCostNoIndex(book, costmodel.QueryMetrics{
		DocsRetrieved:   20000,
		ProcessingHours: 0.6,
		VMType:          "xl",
	})
	fmt.Printf("indexed %s, no index %s, saving %.0f%%\n",
		indexed, noIndex, 100*(1-float64(indexed/noIndex)))
	// Output: indexed $0.00720, no index $0.43002, saving 98%
}

func ExampleBreakEvenRuns() {
	// Figure 13: with a $26.64 build cost (Table 6, LU) and a ~$6.5
	// per-run benefit, the LU index pays for itself after a handful of
	// workload runs.
	fmt.Println(costmodel.BreakEvenRuns(26.64, 6.55))
	// Output: 5
}
