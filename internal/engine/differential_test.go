package engine

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

// This file checks the engine against an independently written brute-force
// evaluator: it enumerates *all* embeddings by explicit recursion over
// (pattern node, document node) pairs with none of the engine's plan
// machinery, then projects and deduplicates. Any divergence on the
// generated corpus fails the test.

// bruteRows evaluates one pattern on one document the slow, obvious way.
func bruteRows(t *pattern.Tree, doc *xmltree.Document) [][]string {
	var outs []*pattern.Node
	t.Walk(func(n *pattern.Node) {
		if n.Val || n.Cont {
			outs = append(outs, n)
		}
	})
	colOf := map[*pattern.Node][]int{}
	nCols := 0
	for _, n := range outs {
		if n.Val {
			colOf[n] = append(colOf[n], nCols)
			nCols++
		}
		if n.Cont {
			colOf[n] = append(colOf[n], nCols)
			nCols++
		}
	}

	var rows [][]string
	binding := map[*pattern.Node]*xmltree.Node{}

	matchesHere := func(q *pattern.Node, n *xmltree.Node) bool {
		if q.Label != n.Label || q.IsAttr != (n.Kind == xmltree.Attribute) {
			return false
		}
		return q.Pred.Matches(n.Value())
	}
	var candidates func(q *pattern.Node, under *xmltree.Node) []*xmltree.Node
	candidates = func(q *pattern.Node, under *xmltree.Node) []*xmltree.Node {
		var out []*xmltree.Node
		var walk func(m *xmltree.Node, depth int)
		walk = func(m *xmltree.Node, depth int) {
			for _, c := range m.Children {
				if (q.Axis == pattern.Child && depth == 0) || q.Axis == pattern.Descendant {
					if matchesHere(q, c) {
						out = append(out, c)
					}
				}
				if q.Axis == pattern.Descendant && c.Kind == xmltree.Element {
					walk(c, depth+1)
				}
			}
		}
		walk(under, 0)
		return out
	}

	var enumerate func(nodes []*pattern.Node)
	var expand func(q *pattern.Node, rest []*pattern.Node)
	enumerate = func(nodes []*pattern.Node) {
		if len(nodes) == 0 {
			row := make([]string, nCols)
			for q, n := range binding {
				idx := 0
				if q.Val {
					row[colOf[q][idx]] = n.Value()
					idx++
				}
				if q.Cont {
					row[colOf[q][idx]] = n.Content()
				}
			}
			rows = append(rows, row)
			return
		}
		expand(nodes[0], nodes[1:])
	}
	expand = func(q *pattern.Node, rest []*pattern.Node) {
		var cands []*xmltree.Node
		if q.Parent == nil {
			for _, n := range doc.Nodes() {
				if q.Axis == pattern.Child && n.Parent != nil {
					continue
				}
				if matchesHere(q, n) {
					cands = append(cands, n)
				}
			}
		} else {
			cands = candidates(q, binding[q.Parent])
		}
		for _, c := range cands {
			binding[q] = c
			enumerate(append(append([]*pattern.Node{}, rest...), q.Children...))
			delete(binding, q)
		}
	}
	enumerate([]*pattern.Node{t.Root})

	seen := map[string]bool{}
	var dedup [][]string
	for _, r := range rows {
		k := strings.Join(r, "\x00")
		if !seen[k] {
			seen[k] = true
			dedup = append(dedup, r)
		}
	}
	return dedup
}

func canon(rows [][]string) string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = strings.Join(r, "\x1f")
	}
	sort.Strings(out)
	return strings.Join(out, "\n")
}

func TestEngineAgreesWithBruteForce(t *testing.T) {
	queries := []string{
		`//item[/location{val}, //name{val}]`,
		`//item[/location="Zanzibar", /payment{val}]`,
		`//person[/name{val}, /profile[/education{val}~"Graduate"]]`,
		`//open_auction[/bidder[/increase{val}], /type{val}]`,
		`//closed_auction[/price{val} in ("1000","2000")]`,
		`//mail[/from{val}, /to{val}]`,
		`//site[//incategory]`,
		`//annotation[/description{cont}]`,
		`//person[/@id{val}, /address[/city{val}]]`,
		`//listitem[/text{val}~"Featured"]`,
	}
	cfg := xmark.DefaultConfig(60)
	cfg.TargetDocBytes = 3 << 10
	for i := 0; i < cfg.Docs; i++ {
		gd := xmark.GenerateDoc(cfg, i)
		doc, err := xmltree.Parse(gd.URI, gd.Data)
		if err != nil {
			t.Fatal(err)
		}
		for _, qs := range queries {
			tr := pattern.MustParse(qs).Patterns[0]
			want := bruteRows(tr, doc)
			gotRows := EvalPatternOnDoc(tr, doc)
			got := make([][]string, len(gotRows))
			for j, r := range gotRows {
				got[j] = r.Cols
			}
			if canon(got) != canon(want) {
				t.Fatalf("doc %d query %s:\nengine (%d rows):\n%s\nbrute (%d rows):\n%s",
					i, qs, len(got), canon(got), len(want), canon(want))
			}
		}
	}
}

func TestEngineAgreesWithBruteForceOnPaintings(t *testing.T) {
	queries := []string{
		`//painting[/name{val}, //painter[/name{val}]]`,
		`//painting[/description{cont}, /year="1854"]`,
		`//painting[/name{val}~"Lion"]`,
		`//museum[/name{val}, //painting[/@id{val}]]`,
	}
	for _, gd := range xmark.Paintings() {
		doc, err := xmltree.Parse(gd.URI, gd.Data)
		if err != nil {
			t.Fatal(err)
		}
		for _, qs := range queries {
			tr := pattern.MustParse(qs).Patterns[0]
			want := bruteRows(tr, doc)
			gotRows := EvalPatternOnDoc(tr, doc)
			got := make([][]string, len(gotRows))
			for j, r := range gotRows {
				got[j] = r.Cols
			}
			if canon(got) != canon(want) {
				t.Fatalf("%s query %s:\nengine:\n%s\nbrute:\n%s", gd.URI, qs, canon(got), canon(want))
			}
		}
	}
}
