// Package engine is the single-site XML query processor of the
// architecture (step 11 in Figure 1): once the index look-up has narrowed
// the warehouse to a set of candidate documents, the engine evaluates the
// query on each document — structural matching, value predicates,
// selections and projections — and applies value joins across the
// per-pattern results (Section 5.5). It plays the role of the ViP2P
// processor the paper deploys on its EC2 instances.
//
// Evaluation of one tree pattern on one document enumerates the embeddings
// of the pattern into the document tree and projects, for every embedding,
// the annotated nodes (val and/or cont) and the values of join variables.
// Results have set semantics: duplicate rows are removed.
package engine

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/pattern"
	"repro/internal/xmltree"
)

// Row is one result tuple.
type Row struct {
	// URI is the document (or, after a value join, the list of documents,
	// joined with "+") the row stems from.
	URI string
	// Cols holds one string per output column of the query.
	Cols []string
}

// Bytes returns the payload size of the row, the unit in which the paper
// measures result sizes (|r(q)|, Table 5).
func (r Row) Bytes() int64 {
	n := int64(0)
	for _, c := range r.Cols {
		n += int64(len(c))
	}
	return n
}

// Result is the outcome of evaluating a query.
type Result struct {
	// Columns names the output columns, one per val/cont annotation in
	// pattern order, e.g. "painting/name.val".
	Columns []string
	Rows    []Row
}

// Bytes sums the payload of all rows.
func (r *Result) Bytes() int64 {
	var n int64
	for _, row := range r.Rows {
		n += row.Bytes()
	}
	return n
}

// ColumnNames derives the output column names of a query.
func ColumnNames(q *pattern.Query) []string {
	var cols []string
	for _, t := range q.Patterns {
		t.Walk(func(n *pattern.Node) {
			name := nodePath(n)
			if n.Val {
				cols = append(cols, name+".val")
			}
			if n.Cont {
				cols = append(cols, name+".cont")
			}
		})
	}
	return cols
}

func nodePath(n *pattern.Node) string {
	var parts []string
	for cur := n; cur != nil; cur = cur.Parent {
		l := cur.Label
		if cur.IsAttr {
			l = "@" + l
		}
		parts = append([]string{l}, parts...)
	}
	return strings.Join(parts, "/")
}

// plan is the per-query column/variable layout shared by all documents.
type plan struct {
	q *pattern.Query
	// cols[i] identifies the pattern node and annotation of output column i.
	cols []colRef
	// colOf maps (node, kind) to its column index; join variables get
	// hidden columns appended after the visible ones.
	visible int
	colIdx  map[colKey]int
	// perPattern lists, for each pattern, the column indexes it fills.
	perPattern [][]int
	// varCol maps a join variable to its (possibly hidden) column.
	varCol map[string]int
}

type colKind uint8

const (
	colVal colKind = iota
	colCont
	colVar
)

type colKey struct {
	node *pattern.Node
	kind colKind
}

type colRef struct {
	node *pattern.Node
	kind colKind
}

func newPlan(q *pattern.Query) *plan {
	p := &plan{q: q, colIdx: make(map[colKey]int), varCol: make(map[string]int)}
	add := func(n *pattern.Node, k colKind) int {
		key := colKey{n, k}
		if idx, ok := p.colIdx[key]; ok {
			return idx
		}
		idx := len(p.cols)
		p.cols = append(p.cols, colRef{n, k})
		p.colIdx[key] = idx
		return idx
	}
	for _, t := range q.Patterns {
		t.Walk(func(n *pattern.Node) {
			if n.Val {
				add(n, colVal)
			}
			if n.Cont {
				add(n, colCont)
			}
		})
	}
	p.visible = len(p.cols)
	for _, t := range q.Patterns {
		t.Walk(func(n *pattern.Node) {
			if n.Var != "" {
				// A join variable needs the node's value; reuse the val
				// column when the node is also annotated.
				if idx, ok := p.colIdx[colKey{n, colVal}]; ok {
					p.varCol[n.Var] = idx
				} else {
					p.varCol[n.Var] = add(n, colVar)
				}
			}
		})
	}
	p.perPattern = make([][]int, len(q.Patterns))
	for pi, t := range q.Patterns {
		var idxs []int
		t.Walk(func(n *pattern.Node) {
			for _, k := range []colKind{colVal, colCont, colVar} {
				if idx, ok := p.colIdx[colKey{n, k}]; ok {
					idxs = append(idxs, idx)
				}
			}
		})
		p.perPattern[pi] = idxs
	}
	return p
}

// EvalPatternOnDoc evaluates one tree pattern on one document and returns
// its rows (visible columns only; no value joins are applied). A pattern
// with no annotations yields a single empty row when the document matches.
func EvalPatternOnDoc(t *pattern.Tree, doc *xmltree.Document) []Row {
	q := &pattern.Query{Patterns: []*pattern.Tree{t}}
	p := newPlan(q)
	rows := p.evalPattern(0, doc)
	out := make([]Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Row{URI: doc.URI, Cols: r[:p.visible]})
	}
	return dedup(out)
}

// Matches reports whether the document contains at least one embedding of
// the pattern (the ground truth behind Table 5's "docs with results" for
// single-pattern queries).
func Matches(t *pattern.Tree, doc *xmltree.Document) bool {
	q := &pattern.Query{Patterns: []*pattern.Tree{t}}
	p := newPlan(q)
	return len(p.evalPattern(0, doc)) > 0
}

// EvalQueryOnDocs evaluates a full query — every pattern over every
// document, then the value joins — and returns the result. This is the
// "no index" evaluation; indexed evaluation narrows docs per pattern first
// (package lookup) and calls EvalQueryOnDocSets.
func EvalQueryOnDocs(q *pattern.Query, docs []*xmltree.Document) (*Result, error) {
	sets := make([][]*xmltree.Document, len(q.Patterns))
	for i := range sets {
		sets[i] = docs
	}
	return EvalQueryOnDocSets(q, sets)
}

// EvalQueryOnDocSets evaluates pattern i over docSets[i] and applies the
// query's value joins across the per-pattern results.
//
// The per-(pattern, document) evaluations are independent reads of
// immutable structures, so they run on a bounded worker pool; the optional
// trailing argument caps its size (0 or absent selects GOMAXPROCS, 1 runs
// sequentially). Rows are reassembled in (pattern, document) order, so the
// result is identical at every concurrency level.
func EvalQueryOnDocSets(q *pattern.Query, docSets [][]*xmltree.Document, workers ...int) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(docSets) != len(q.Patterns) {
		return nil, fmt.Errorf("engine: %d document sets for %d patterns", len(docSets), len(q.Patterns))
	}
	p := newPlan(q)

	perPattern := evalDocSets(p, docSets, evalWorkers(workers))

	joined, err := p.joinPatterns(perPattern)
	if err != nil {
		return nil, err
	}
	// Project away hidden join columns.
	out := make([]Row, 0, len(joined))
	for _, r := range joined {
		out = append(out, Row{URI: r.URI, Cols: r.Cols[:p.visible]})
	}
	return &Result{Columns: ColumnNames(q), Rows: dedup(out)}, nil
}

// evalWorkers resolves the optional trailing worker count of
// EvalQueryOnDocSets.
func evalWorkers(workers []int) int {
	if len(workers) > 0 && workers[0] > 0 {
		return workers[0]
	}
	return runtime.GOMAXPROCS(0)
}

// evalDocSets runs every (pattern, document) evaluation, fanning the tasks
// out over at most `workers` goroutines, and returns the deduplicated rows
// of each pattern with documents contributing in docSets order.
func evalDocSets(p *plan, docSets [][]*xmltree.Document, workers int) [][]Row {
	type task struct{ pi, di int }
	var tasks []task
	for pi, docs := range docSets {
		for di := range docs {
			tasks = append(tasks, task{pi, di})
		}
	}
	rowsOf := make([][][]string, len(tasks))
	run := func(ti int) {
		t := tasks[ti]
		rowsOf[ti] = p.evalPattern(t.pi, docSets[t.pi][t.di])
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for ti := range tasks {
			run(ti)
		}
	} else {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ti := range idx {
					run(ti)
				}
			}()
		}
		for ti := range tasks {
			idx <- ti
		}
		close(idx)
		wg.Wait()
	}

	perPattern := make([][]Row, len(docSets))
	for ti, t := range tasks {
		doc := docSets[t.pi][t.di]
		for _, cols := range rowsOf[ti] {
			perPattern[t.pi] = append(perPattern[t.pi], Row{URI: doc.URI, Cols: cols})
		}
	}
	for pi := range perPattern {
		perPattern[pi] = dedup(perPattern[pi])
	}
	return perPattern
}

// evalPattern returns the column tuples of one pattern over one document.
func (p *plan) evalPattern(pi int, doc *xmltree.Document) [][]string {
	t := p.q.Patterns[pi]
	root := t.Root
	var candidates []*xmltree.Node
	for _, n := range doc.NodesByLabel(root.Label) {
		if root.IsAttr != (n.Kind == xmltree.Attribute) {
			continue
		}
		if root.Axis == pattern.Child && n.Parent != nil {
			continue // pattern rooted at the document root
		}
		candidates = append(candidates, n)
	}
	var rows [][]string
	for _, c := range candidates {
		rows = append(rows, p.matchAt(root, c)...)
	}
	return rows
}

// matchAt returns the partial column tuples for embeddings of the pattern
// subtree rooted at q where q maps to doc node n. Label and axis of q
// itself are the caller's responsibility; predicates are checked here.
func (p *plan) matchAt(q *pattern.Node, n *xmltree.Node) [][]string {
	if q.Pred.Kind != pattern.NoPred && !q.Pred.Matches(n.Value()) {
		return nil
	}
	rows := [][]string{make([]string, len(p.cols))}
	for _, qc := range q.Children {
		var childRows [][]string
		for _, m := range childMatches(n, qc) {
			childRows = append(childRows, p.matchAt(qc, m)...)
		}
		if len(childRows) == 0 {
			return nil
		}
		rows = product(rows, childRows)
	}
	// Fill this node's columns in every surviving row.
	for _, k := range []colKind{colVal, colCont, colVar} {
		idx, ok := p.colIdx[colKey{q, k}]
		if !ok {
			continue
		}
		var v string
		if k == colCont {
			v = n.Content()
		} else {
			v = n.Value()
		}
		for _, r := range rows {
			r[idx] = v
		}
	}
	return rows
}

// childMatches lists the document nodes reachable from n along the axis of
// qc that carry qc's label and kind.
func childMatches(n *xmltree.Node, qc *pattern.Node) []*xmltree.Node {
	var out []*xmltree.Node
	var visit func(m *xmltree.Node, depth int)
	visit = func(m *xmltree.Node, depth int) {
		for _, c := range m.Children {
			matchKind := qc.IsAttr == (c.Kind == xmltree.Attribute)
			if c.Label == qc.Label && matchKind {
				out = append(out, c)
			}
			if qc.Axis == pattern.Descendant && c.Kind == xmltree.Element {
				visit(c, depth+1)
			}
		}
	}
	visit(n, 0)
	return out
}

// product merges two sets of partial rows column-wise (disjoint columns).
func product(a, b [][]string) [][]string {
	out := make([][]string, 0, len(a)*len(b))
	for _, ra := range a {
		for _, rb := range b {
			r := make([]string, len(ra))
			copy(r, ra)
			for i, v := range rb {
				if v != "" {
					r[i] = v
				}
			}
			out = append(out, r)
		}
	}
	return out
}

// joinPatterns combines per-pattern rows using the query's value joins.
// Patterns are joined left to right; a join condition is applied as soon as
// both sides are available, with hash joins on the variable columns.
func (p *plan) joinPatterns(perPattern [][]Row) ([]Row, error) {
	q := p.q
	// Which pattern binds each variable.
	varPattern := make(map[string]int)
	for pi, t := range q.Patterns {
		t.Walk(func(n *pattern.Node) {
			if n.Var != "" {
				varPattern[n.Var] = pi
			}
		})
	}
	acc := perPattern[0]
	joinedUpTo := 1
	for pi := 1; pi < len(perPattern); pi++ {
		// Conditions linking the accumulated prefix with pattern pi.
		var conds []pattern.JoinCond
		for _, j := range q.Joins {
			pa, pb := varPattern[j.A], varPattern[j.B]
			if pb < joinedUpTo && pa == pi {
				conds = append(conds, pattern.JoinCond{A: j.B, B: j.A}) // normalize: A in prefix
			} else if pa < joinedUpTo && pb == pi {
				conds = append(conds, j)
			}
		}
		acc = hashJoin(acc, perPattern[pi], conds, p.varCol)
		joinedUpTo = pi + 1
	}
	// Remaining conditions whose two sides live in the same pattern (or
	// were otherwise not consumed) are applied as filters.
	for _, j := range q.Joins {
		pa, pb := varPattern[j.A], varPattern[j.B]
		if pa == pb {
			ca, cb := p.varCol[j.A], p.varCol[j.B]
			var kept []Row
			for _, r := range acc {
				if r.Cols[ca] == r.Cols[cb] {
					kept = append(kept, r)
				}
			}
			acc = kept
		}
	}
	return acc, nil
}

// hashJoin joins two row sets on the given equality conditions (A's column
// from left, B's from right). With no conditions it degrades to a cross
// product.
func hashJoin(left, right []Row, conds []pattern.JoinCond, varCol map[string]int) []Row {
	if len(conds) == 0 {
		var out []Row
		for _, l := range left {
			for _, r := range right {
				out = append(out, mergeRows(l, r))
			}
		}
		return out
	}
	key := func(r Row, vars []string) string {
		parts := make([]string, len(vars))
		for i, v := range vars {
			parts[i] = r.Cols[varCol[v]]
		}
		return strings.Join(parts, "\x00")
	}
	lvars := make([]string, len(conds))
	rvars := make([]string, len(conds))
	for i, c := range conds {
		lvars[i], rvars[i] = c.A, c.B
	}
	byKey := make(map[string][]Row)
	for _, l := range left {
		byKey[key(l, lvars)] = append(byKey[key(l, lvars)], l)
	}
	var out []Row
	for _, r := range right {
		for _, l := range byKey[key(r, rvars)] {
			out = append(out, mergeRows(l, r))
		}
	}
	return out
}

func mergeRows(l, r Row) Row {
	cols := make([]string, len(l.Cols))
	copy(cols, l.Cols)
	for i, v := range r.Cols {
		if v != "" {
			cols[i] = v
		}
	}
	uri := l.URI
	if r.URI != "" && r.URI != l.URI {
		uri = l.URI + "+" + r.URI
	}
	return Row{URI: uri, Cols: cols}
}

func dedup(rows []Row) []Row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		k := r.URI + "\x00" + strings.Join(r.Cols, "\x00")
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}
