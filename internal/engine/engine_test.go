package engine

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/twigjoin"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

func parseCorpus(t *testing.T, docs []xmark.Doc) []*xmltree.Document {
	t.Helper()
	out := make([]*xmltree.Document, len(docs))
	for i, d := range docs {
		var err error
		out[i], err = xmltree.Parse(d.URI, d.Data)
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func paintings(t *testing.T) []*xmltree.Document {
	return parseCorpus(t, xmark.Paintings())
}

func sortedRows(res *Result) []string {
	var out []string
	for _, r := range res.Rows {
		out = append(out, r.URI+" | "+strings.Join(r.Cols, " | "))
	}
	sort.Strings(out)
	return out
}

// Figure 2's q1: (painting name, painter name) pairs.
func TestQ1PaintingAndPainterNames(t *testing.T) {
	docs := paintings(t)
	q := pattern.MustParse(`//painting[/name{val}, //painter[/name{val}]]`)
	res, err := EvalQueryOnDocs(q, docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 {
		t.Fatalf("columns = %v", res.Columns)
	}
	found := false
	for _, r := range res.Rows {
		if r.Cols[0] == "Olympia" && r.Cols[1] == "EdouardManet" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing Olympia row in %v", sortedRows(res))
	}
	// Every painting document contributes exactly one row; museums none.
	if len(res.Rows) != 9 {
		t.Errorf("rows = %d, want 9 (2 Figure 3 + 7 extended)", len(res.Rows))
	}
}

// Figure 2's q2: descriptions of paintings from 1854.
func TestQ2DescriptionsOf1854(t *testing.T) {
	docs := paintings(t)
	q := pattern.MustParse(`//painting[/description{cont}, /year="1854"]`)
	res, err := EvalQueryOnDocs(q, docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", sortedRows(res))
	}
	if !strings.HasPrefix(res.Rows[0].Cols[0], "<description>") {
		t.Errorf("cont must serialize the subtree, got %q", res.Rows[0].Cols[0])
	}
}

// Figure 2's q3: last names of painters of a painting whose name contains
// the word Lion.
func TestQ3ContainsLion(t *testing.T) {
	docs := paintings(t)
	q := pattern.MustParse(`//painting[/name~"Lion", /painter[/name[/last{val}]]]`)
	res, err := EvalQueryOnDocs(q, docs)
	if err != nil {
		t.Fatal(err)
	}
	// "The Lion Hunt" (delacroix.xml) and "The Lion Hunt Fragment".
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", sortedRows(res))
	}
	for _, r := range res.Rows {
		if r.Cols[0] != "Delacroix" {
			t.Errorf("row = %v", r)
		}
	}
}

// Figure 2's q4: Manet paintings created in (1854, 1865].
func TestQ4ManetRange(t *testing.T) {
	docs := paintings(t)
	q := pattern.MustParse(`//painting[/name{val}, /painter[/name[/last="Manet"]], /year in ("1854","1865"]]`)
	res, err := EvalQueryOnDocs(q, docs)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, r := range res.Rows {
		names = append(names, r.Cols[0])
	}
	sort.Strings(names)
	want := []string{"Le dejeuner sur lherbe", "Music in the Tuileries", "The Races at Longchamp"}
	if strings.Join(names, ";") != strings.Join(want, ";") {
		t.Errorf("names = %v, want %v", names, want)
	}
}

// Figure 2's q5 (value join): museums exposing paintings by Delacroix.
func TestQ5ValueJoin(t *testing.T) {
	docs := paintings(t)
	q := pattern.MustParse(`//museum[/name{val}, //painting[/@id $a]], //painting[/@id $b, /painter[/name[/last="Delacroix"]]] where $a = $b`)
	res, err := EvalQueryOnDocs(q, docs)
	if err != nil {
		t.Fatal(err)
	}
	museums := map[string]bool{}
	for _, r := range res.Rows {
		museums[r.Cols[0]] = true
		if !strings.Contains(r.URI, "+") {
			t.Errorf("joined row URI %q lacks both documents", r.URI)
		}
	}
	// Louvre (1830-1, 1854-2), National Gallery (1854-1), Art Institute (1861-1).
	for _, m := range []string{"Louvre", "National Gallery", "Art Institute"} {
		if !museums[m] {
			t.Errorf("missing museum %q in %v", m, museums)
		}
	}
	if museums["Musee dOrsay"] {
		t.Error("Musee dOrsay has no Delacroix but was returned")
	}
}

func TestValAndContTogether(t *testing.T) {
	doc, _ := xmltree.Parse("d.xml", []byte(`<a><b>x<c>y</c></b></a>`))
	q := pattern.MustParse(`//b{val,cont}`)
	res, err := EvalQueryOnDocs(q, []*xmltree.Document{doc})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0].Cols[0] != "xy" {
		t.Errorf("val = %q", res.Rows[0].Cols[0])
	}
	if res.Rows[0].Cols[1] != "<b>x<c>y</c></b>" {
		t.Errorf("cont = %q", res.Rows[0].Cols[1])
	}
}

func TestAttributeValProjection(t *testing.T) {
	doc, _ := xmltree.Parse("d.xml", []byte(`<a id="42"/>`))
	q := pattern.MustParse(`//a[/@id{val}]`)
	res, err := EvalQueryOnDocs(q, []*xmltree.Document{doc})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Cols[0] != "42" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSetSemantics(t *testing.T) {
	// Two embeddings produce the same output values: one row.
	doc, _ := xmltree.Parse("d.xml", []byte(`<a><b>same</b><b>same</b></a>`))
	q := pattern.MustParse(`//a[/b{val}]`)
	res, err := EvalQueryOnDocs(q, []*xmltree.Document{doc})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows = %v, want deduplicated single row", res.Rows)
	}
}

func TestNoAnnotationsMatchYieldsOneEmptyRow(t *testing.T) {
	doc, _ := xmltree.Parse("d.xml", []byte(`<a><b/></a>`))
	q := pattern.MustParse(`//a[/b]`)
	res, err := EvalQueryOnDocs(q, []*xmltree.Document{doc})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0].Cols) != 0 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestPredicateOnElementValueUsesTextConcat(t *testing.T) {
	doc, _ := xmltree.Parse("d.xml", []byte(`<a><b>hello <c>world</c></b></a>`))
	q := pattern.MustParse(`//b="hello world"`)
	res, err := EvalQueryOnDocs(q, []*xmltree.Document{doc})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("value concatenation predicate failed: %v", res.Rows)
	}
}

func TestEvalPatternOnDocSeparatesPatterns(t *testing.T) {
	docs := paintings(t)
	tr := pattern.MustParse(`//painting[/name{val}]`).Patterns[0]
	var total int
	for _, d := range docs {
		total += len(EvalPatternOnDoc(tr, d))
	}
	if total != 9 {
		t.Errorf("pattern rows = %d, want 9", total)
	}
}

func TestMatchesAgreesWithTwigJoinOnXmark(t *testing.T) {
	cfg := xmark.DefaultConfig(40)
	cfg.TargetDocBytes = 3 << 10
	queries := []string{
		`//item[/name, /payment]`,
		`//person[/profile[/education]]`,
		`//open_auction[/bidder[/increase], /type]`,
		`//item[/mailbox[/mail[/text]], /location]`,
		`//site[//incategory]`,
	}
	for i := 0; i < cfg.Docs; i++ {
		gd := xmark.GenerateDoc(cfg, i)
		d, err := xmltree.Parse(gd.URI, gd.Data)
		if err != nil {
			t.Fatal(err)
		}
		for _, qs := range queries {
			tr := pattern.MustParse(qs).Patterns[0]
			// Predicate-free patterns: engine embedding search must agree
			// with the holistic twig join over label streams.
			want := twigjoin.Match(tr, twigjoin.StreamsFromDocument(tr, d))
			if got := Matches(tr, d); got != want {
				t.Errorf("doc %d query %s: engine=%v twig=%v", i, qs, got, want)
			}
		}
	}
}

func TestJoinVariableSharedWithVal(t *testing.T) {
	// A node can be both an output and a join endpoint.
	a, _ := xmltree.Parse("a.xml", []byte(`<x><k>7</k></x>`))
	b, _ := xmltree.Parse("b.xml", []byte(`<y><k>7</k><v>hit</v></y>`))
	q := pattern.MustParse(`//x[/k{val} $p], //y[/k $q, /v{val}] where $p = $q`)
	res, err := EvalQueryOnDocs(q, []*xmltree.Document{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Cols[0] != "7" || res.Rows[0].Cols[1] != "hit" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestThreeWayJoin(t *testing.T) {
	a, _ := xmltree.Parse("a.xml", []byte(`<x><k>1</k></x>`))
	b, _ := xmltree.Parse("b.xml", []byte(`<y><k>1</k><m>2</m></y>`))
	c, _ := xmltree.Parse("c.xml", []byte(`<z><m>2</m><out>deep</out></z>`))
	q := pattern.MustParse(`//x[/k $a], //y[/k $b, /m $c], //z[/m $d, /out{val}] where $a = $b, $c = $d`)
	res, err := EvalQueryOnDocs(q, []*xmltree.Document{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Cols[0] != "deep" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestEvalQueryOnDocSetsRestrictsPerPattern(t *testing.T) {
	docs := paintings(t)
	q := pattern.MustParse(`//museum[/name{val}, //painting[/@id $a]], //painting[/@id $b, /painter[/name[/last="Delacroix"]]] where $a = $b`)
	// Restrict the museum pattern to a single museum document.
	var museumDocs, paintingDocs []*xmltree.Document
	for _, d := range docs {
		if strings.HasPrefix(d.URI, "museum-1") {
			museumDocs = append(museumDocs, d)
		}
		if strings.HasPrefix(d.URI, "painting-") || d.URI == "delacroix.xml" || d.URI == "manet.xml" {
			paintingDocs = append(paintingDocs, d)
		}
	}
	res, err := EvalQueryOnDocSets(q, [][]*xmltree.Document{museumDocs, paintingDocs})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Cols[0] != "Louvre" {
			t.Errorf("unexpected museum %q", r.Cols[0])
		}
	}
	if len(res.Rows) == 0 {
		t.Error("restricted evaluation returned nothing")
	}
}

func TestEvalQueryErrors(t *testing.T) {
	q := pattern.MustParse(`//a, //b`)
	if _, err := EvalQueryOnDocSets(q, [][]*xmltree.Document{nil}); err == nil {
		t.Error("mismatched doc sets accepted")
	}
	bad := &pattern.Query{}
	if _, err := EvalQueryOnDocs(bad, nil); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestResultBytes(t *testing.T) {
	r := &Result{Rows: []Row{{Cols: []string{"abc", "de"}}, {Cols: []string{"f"}}}}
	if got := r.Bytes(); got != 6 {
		t.Errorf("Bytes = %d, want 6", got)
	}
}

func TestColumnNames(t *testing.T) {
	q := pattern.MustParse(`//painting[/name{val}, /description{cont}, /@id{val}]`)
	got := ColumnNames(q)
	want := []string{"painting/name.val", "painting/description.cont", "painting/@id.val"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("ColumnNames = %v, want %v", got, want)
	}
}
