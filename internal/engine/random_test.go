package engine

import (
	"math/rand"
	"testing"

	"repro/internal/pattern"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

// Random-pattern differential test: generate structurally random tree
// patterns over the corpus's actual label alphabet and check the engine
// against the brute-force oracle on every document. This explores corners
// the hand-picked query pool cannot.

var labelAlphabet = []string{
	"site", "regions", "item", "name", "location", "payment", "quantity",
	"description", "parlist", "listitem", "text", "mailbox", "mail",
	"from", "to", "person", "profile", "education", "age", "address",
	"city", "open_auction", "bidder", "increase", "type", "seller",
	"closed_auction", "price", "annotation", "nonexistent",
}

var attrAlphabet = []string{"id", "person", "category", "income"}

func randomPattern(rng *rand.Rand) *pattern.Tree {
	var build func(depth int, axis pattern.Axis, attrAllowed bool) *pattern.Node
	build = func(depth int, axis pattern.Axis, attrAllowed bool) *pattern.Node {
		n := &pattern.Node{Axis: axis}
		if attrAllowed && rng.Intn(6) == 0 {
			n.IsAttr = true
			n.Label = attrAlphabet[rng.Intn(len(attrAlphabet))]
		} else {
			n.Label = labelAlphabet[rng.Intn(len(labelAlphabet))]
		}
		switch rng.Intn(8) {
		case 0:
			n.Val = true
		case 1:
			if !n.IsAttr {
				n.Cont = true
			} else {
				n.Val = true
			}
		case 2:
			n.Pred = pattern.Pred{Kind: pattern.Contains, Const: "Zanzibar"}
		case 3:
			n.Pred = pattern.Pred{Kind: pattern.Eq, Const: "1"}
		case 4:
			n.Pred = pattern.Pred{Kind: pattern.Range, Lo: "1", Hi: "3000"}
		}
		if !n.IsAttr && depth < 3 {
			kids := rng.Intn(3)
			for i := 0; i < kids; i++ {
				axis := pattern.Child
				if rng.Intn(2) == 0 {
					axis = pattern.Descendant
				}
				c := build(depth+1, axis, true)
				c.Parent = n
				n.Children = append(n.Children, c)
			}
		}
		return n
	}
	return &pattern.Tree{Root: build(0, pattern.Descendant, false)}
}

func TestEngineAgreesWithBruteForceOnRandomPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	cfg := xmark.DefaultConfig(20)
	cfg.TargetDocBytes = 3 << 10
	var docs []*xmltree.Document
	for i := 0; i < cfg.Docs; i++ {
		gd := xmark.GenerateDoc(cfg, i)
		d, err := xmltree.Parse(gd.URI, gd.Data)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	matched := 0
	for trial := 0; trial < 150; trial++ {
		tr := randomPattern(rng)
		q := &pattern.Query{Patterns: []*pattern.Tree{tr}}
		if err := q.Validate(); err != nil {
			t.Fatalf("generated invalid pattern: %v", err)
		}
		for _, doc := range docs {
			want := bruteRows(tr, doc)
			gotRows := EvalPatternOnDoc(tr, doc)
			got := make([][]string, len(gotRows))
			for j, r := range gotRows {
				got[j] = r.Cols
			}
			if canon(got) != canon(want) {
				t.Fatalf("trial %d doc %s pattern %s:\nengine:\n%s\nbrute:\n%s",
					trial, doc.URI, q.String(), canon(got), canon(want))
			}
			if len(got) > 0 {
				matched++
			}
		}
	}
	// Sanity: the generator must produce patterns that actually match
	// sometimes, or the test proves nothing.
	if matched < 20 {
		t.Fatalf("only %d (pattern, doc) pairs matched; generator too hostile", matched)
	}
}
