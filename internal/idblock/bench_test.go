package idblock

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/xmltree"
)

// Block-decode microbenchmarks: whole-blob decode through the arena path,
// one payload family per benchmark, same identifier set. The packed/varint
// ratio here is the headline number the bit-packed format was built for.

func benchDecodeBlocks(b *testing.B, enc func([]xmltree.NodeID, int, int) [][]byte) {
	ids := randomSortedIDs(rand.New(rand.NewSource(7)), 1<<16)
	blobs := enc(ids, DefaultBlockSize, 1<<20)
	sets := make([]*Set, 0, len(blobs))
	var bytes int64
	for _, blob := range blobs {
		s, err := Parse(blob)
		if err != nil {
			b.Fatal(err)
		}
		sets = append(sets, s)
		bytes += int64(len(blob))
	}
	arena := &Arena{}
	dst := make([]xmltree.NodeID, 0, len(ids))
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = dst[:0]
		for _, s := range sets {
			for j := 0; j < s.Blocks(); j++ {
				var err error
				dst, err = s.AppendBlockArena(dst, j, arena)
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	if len(dst) != len(ids) {
		b.Fatalf("decoded %d ids, want %d", len(dst), len(ids))
	}
}

func BenchmarkDecodeBlockVarint(b *testing.B) { benchDecodeBlocks(b, Encode) }
func BenchmarkDecodeBlockPacked(b *testing.B) { benchDecodeBlocks(b, EncodePacked) }

// BenchmarkAppendVarintTriples measures the unrolled batch decoder over a
// legacy delta+varint stream (the non-blocked store format).
func BenchmarkAppendVarintTriples(b *testing.B) {
	ids := randomSortedIDs(rand.New(rand.NewSource(8)), 1<<16)
	var stream []byte
	var prevPre int32
	var tmp [3 * binary.MaxVarintLen64]byte
	for _, id := range ids {
		n := binary.PutUvarint(tmp[:], uint64(id.Pre-prevPre))
		n += binary.PutUvarint(tmp[n:], uint64(id.Post))
		n += binary.PutUvarint(tmp[n:], uint64(id.Depth))
		stream = append(stream, tmp[:n]...)
		prevPre = id.Pre
	}
	dst := make([]xmltree.NodeID, 0, len(ids))
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = AppendVarintTriples(dst[:0], stream)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(dst) != len(ids) {
		b.Fatalf("decoded %d ids, want %d", len(dst), len(ids))
	}
}
