package idblock

import (
	"math/rand"
	"reflect"
	"testing"
)

// FuzzParse throws arbitrary bytes at the blocked-blob parser and, when a
// blob parses, at every decode path. Invariants: no panic, no oversized
// allocation (the count guards), decode errors always wrap ErrCorrupt, and
// a re-encode of whatever decoded round-trips to the same identifiers.
func FuzzParse(f *testing.F) {
	r := rand.New(rand.NewSource(99))
	ids := randomSortedIDs(r, 300)
	for _, bs := range []int{1, 3, 128} {
		for _, blob := range Encode(ids, bs, 1<<20) {
			f.Add(blob)
		}
		for _, blob := range EncodePacked(ids, bs, 1<<20) {
			f.Add(blob)
		}
	}
	// A packed blob over a duplicate-heavy set (zero-span columns).
	dup := ids[:0:0]
	for i := 0; i < 40; i++ {
		dup = append(dup, ids[i%4])
	}
	sortByPre(dup)
	for _, blob := range EncodePacked(dup, DefaultBlockSize, 1<<20) {
		f.Add(blob)
	}
	f.Add([]byte{Magic2, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, blob []byte) {
		s, err := Parse(blob)
		if err != nil {
			return
		}
		all, errAll := s.All()
		// Per-block decode must agree with All, errors and contents alike.
		var per []int
		perOK := true
		a := GetArena()
		defer PutArena(a)
		for i := 0; i < s.Blocks(); i++ {
			out, err := s.AppendBlockArena(nil, i, a)
			if err != nil {
				perOK = false
				break
			}
			per = append(per, len(out))
		}
		if (errAll == nil) != perOK {
			t.Fatalf("All err=%v but per-block ok=%v", errAll, perOK)
		}
		if errAll != nil {
			return
		}
		n := 0
		for _, c := range per {
			n += c
		}
		if n != len(all) || s.Len() != len(all) {
			t.Fatalf("decoded %d ids, per-block %d, Len %d", len(all), n, s.Len())
		}
		if !IsSorted(all) {
			t.Fatalf("decode produced unsorted identifiers")
		}
		// Re-encode through both versions and decode back.
		for _, blobs := range [][][]byte{
			Encode(all, DefaultBlockSize, 1<<20),
			EncodePacked(all, DefaultBlockSize, 1<<20),
		} {
			var got []int32
			for _, b := range blobs {
				s2, err := Parse(b)
				if err != nil {
					t.Fatalf("re-encoded blob does not parse: %v", err)
				}
				all2, err := s2.All()
				if err != nil {
					t.Fatalf("re-encoded blob does not decode: %v", err)
				}
				for _, id := range all2 {
					got = append(got, id.Pre)
				}
			}
			want := make([]int32, len(all))
			for i, id := range all {
				want[i] = id.Pre
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("re-encode round trip changed the set")
			}
		}
	})
}
