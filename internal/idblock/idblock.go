// Package idblock implements the blocked structural-identifier codec: a
// self-describing binary format that partitions a sorted (pre, post, depth)
// identifier set into fixed-size blocks, each preceded by a small summary
// header (count, min/max pre, min/max post, min/max depth, payload length).
//
// The headers are what make it possible to *operate on compressed data*:
// the structural joins of the LUI/2LUPI strategies can discard whole blocks
// that cannot contain ancestors or descendants of the other side before any
// varint decoding happens, so hot-path CPU scales with the answer rather
// than with the raw posting size. This is the classic IR skip-pointer
// structure (surveyed in the XML IR literature) applied to the paper's
// identifier sets, and the same compact-summaries-over-blobs idea Airphant
// uses against cloud object stores.
//
// Wire layout of one blob (all integers are varints):
//
//	magic      1 byte, 0xB1 ("blocked, version 1")
//	checksum   4 bytes, little-endian FNV-1a over every following byte
//	nblocks    uvarint, >= 1
//	headers    nblocks times:
//	             count     uvarint (ids in the block, >= 1)
//	             minPre    zigzag varint
//	             preSpan   uvarint (maxPre - minPre)
//	             minPost   zigzag varint
//	             postSpan  uvarint (maxPost - minPost)
//	             minDepth  zigzag varint
//	             depthSpan uvarint (maxDepth - minDepth)
//	             plen      uvarint (payload bytes of the block)
//	payloads   the blocks' triple streams, concatenated in header order
//
// In a version-1 blob (magic 0xB1) each block payload is the legacy
// delta+varint triple stream with the delta base restarted at the block
// boundary, so any block decodes on its own. A version-2 blob (magic 0xB2)
// keeps the identical header layout but prefixes every block payload with
// one format byte: 0x00 for the same delta+varint stream, 0x01 for a
// frame-of-reference bit-packed payload (see packed.go) whose columns
// decode in one batch pass. The encoder negotiates per block, keeping
// whichever encoding is smaller. The format is strictly validated: the
// checksum, the exact payload byte counts and inter-block pre ordering at
// parse time, and the header/content agreement at block-decode time. A
// blob that fails any parse check is not a blocked blob — the index codec
// then falls back to the legacy format, which is how pre-existing dumps
// (whose first payload byte may collide with a magic) keep decoding.
package idblock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/xmltree"
)

// Magic is the first byte of a version-1 blocked blob (bare delta+varint
// block payloads).
const Magic = 0xB1

// Magic2 is the first byte of a version-2 blocked blob, whose block
// payloads carry a leading format byte (varint or frame-of-reference
// bit-packed). Headers, checksum and skip semantics are identical to
// version 1.
const Magic2 = 0xB2

// DefaultBlockSize is the number of identifiers per block used by the
// extraction pipeline: small enough that one block decodes in a short
// burst, large enough that headers stay a few percent of the payload.
const DefaultBlockSize = 128

// ErrNotBlocked reports a blob that does not carry (or fails to validate
// as) the blocked format; callers treat such blobs as legacy.
var ErrNotBlocked = errors.New("idblock: not a blocked blob")

// ErrCorrupt reports a block whose payload disagrees with its header — the
// blob passed the parse-time checks, so this is real corruption, not a
// legacy blob.
var ErrCorrupt = errors.New("idblock: corrupt block payload")

// Header is one block's summary: everything a join needs to decide whether
// the block can matter, without decoding its payload.
type Header struct {
	Count              int
	MinPre, MaxPre     int32
	MinPost, MaxPost   int32
	MinDepth, MaxDepth int32
}

// block pairs a header with its still-encoded payload bytes (nil when the
// block was constructed pre-decoded via FromIDs). plen carries the header's
// payload length between Parse's two passes; v2 marks a payload that
// starts with a format byte.
type block struct {
	Header
	plen int
	v2   bool
	data []byte
}

// Set is a parsed blocked identifier set: headers plus compressed payloads,
// with per-block decoding memoized — a Set cached by the posting cache
// keeps its decoded blocks across look-ups. A Set may span several blobs
// (see Merge); blocks are ordered by pre and their pre ranges do not
// overlap. Safe for concurrent use; decoded slices are shared and must be
// treated as immutable.
type Set struct {
	blocks []block
	total  int

	mu      sync.Mutex
	decoded [][]xmltree.NodeID
}

// Len returns the total identifier count, without decoding anything.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return s.total
}

// Blocks returns the number of blocks (zero on nil).
func (s *Set) Blocks() int {
	if s == nil {
		return 0
	}
	return len(s.blocks)
}

// Header returns the i-th block's summary.
func (s *Set) Header(i int) Header { return s.blocks[i].Header }

// PayloadBytes returns the total compressed payload size, for cache
// accounting.
func (s *Set) PayloadBytes() int64 {
	if s == nil {
		return 0
	}
	var n int64
	for i := range s.blocks {
		n += int64(len(s.blocks[i].data))
	}
	return n
}

// Block decodes (and memoizes) the i-th block. The returned slice is shared
// across callers and must not be mutated.
func (s *Set) Block(i int) ([]xmltree.NodeID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.decoded == nil {
		s.decoded = make([][]xmltree.NodeID, len(s.blocks))
	}
	if s.decoded[i] != nil {
		return s.decoded[i], nil
	}
	ids := make([]xmltree.NodeID, 0, s.blocks[i].Count)
	ids, err := appendBlock(ids, s.blocks[i], nil)
	if err != nil {
		return nil, err
	}
	s.decoded[i] = ids
	return ids, nil
}

// AppendBlock decodes the i-th block into dst without touching the memo —
// the allocation-free path for callers that pool their buffers. Packed
// payloads decode through a pooled arena; callers that loop over blocks
// should hold one arena and use AppendBlockArena instead.
func (s *Set) AppendBlock(dst []xmltree.NodeID, i int) ([]xmltree.NodeID, error) {
	return s.AppendBlockArena(dst, i, nil)
}

// AppendBlockArena is AppendBlock decoding through the caller's arena: a
// packed payload unpacks its columns into it, so a loop over blocks reuses
// one arena and the steady-state decode allocates nothing. A nil arena
// borrows one from the pool for the duration of the call.
func (s *Set) AppendBlockArena(dst []xmltree.NodeID, i int, a *Arena) ([]xmltree.NodeID, error) {
	s.mu.Lock()
	memo := s.decoded
	s.mu.Unlock()
	if memo != nil && memo[i] != nil {
		return append(dst, memo[i]...), nil
	}
	return appendBlock(dst, s.blocks[i], a)
}

// All decodes every block and returns the concatenated identifiers in pre
// order, pre-sized from the headers' counts. It reads through the per-block
// memo but does not populate it: a full decode is typically one-shot, and
// skipping the memo keeps it at a single allocation (plus a pooled arena
// when payloads are packed).
func (s *Set) All() ([]xmltree.NodeID, error) {
	if s == nil {
		return nil, nil
	}
	out := make([]xmltree.NodeID, 0, s.total)
	a := GetArena()
	defer PutArena(a)
	var err error
	for i := range s.blocks {
		if out, err = s.AppendBlockArena(out, i, a); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// appendBlock decodes one payload into dst and verifies it against its
// header: triple count, exact byte length, pre ordering, and the min/max
// summaries must all agree — that is what lets skip logic trust a header
// it never cross-checks against the payload. Version-2 payloads dispatch
// on their format byte; a nil arena borrows a pooled one when the payload
// needs it.
func appendBlock(dst []xmltree.NodeID, b block, a *Arena) ([]xmltree.NodeID, error) {
	if b.data == nil {
		return nil, fmt.Errorf("%w: block without payload", ErrCorrupt)
	}
	data := b.data
	if b.v2 {
		switch data[0] { // Parse guarantees plen >= 1
		case payloadPacked:
			if a == nil {
				a = GetArena()
				defer PutArena(a)
			}
			return appendBlockPacked(dst, b, a)
		case payloadVarint:
			data = data[1:]
		default:
			return nil, fmt.Errorf("%w: unknown payload format %#x", ErrCorrupt, data[0])
		}
	}
	start := len(dst)
	dst, err := AppendVarintTriples(dst, data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	ids := dst[start:]
	if len(ids) != b.Count {
		return nil, fmt.Errorf("%w: %d ids, header says %d", ErrCorrupt, len(ids), b.Count)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i].Pre < ids[i-1].Pre {
			return nil, fmt.Errorf("%w: block not sorted by pre", ErrCorrupt)
		}
	}
	if summarize(ids) != b.Header {
		return nil, fmt.Errorf("%w: block summary disagrees with header", ErrCorrupt)
	}
	return dst, nil
}

// AppendVarintTriples decodes a delta+varint triple stream — the legacy
// wire format and the varint block payload — appending to dst with the
// delta base at zero. The batch fast path peels two whole triples of
// single-byte varints per iteration (one bounds check, one combined
// comparison); longer encodings fall back through an inlined two-byte case
// to binary.Uvarint, so acceptance — including 64-bit sign-extended
// encodings round-tripping through the modular int32 arithmetic the codec
// fuzz targets pin — is bit-for-bit the one-varint-at-a-time behavior.
func AppendVarintTriples(dst []xmltree.NodeID, data []byte) ([]xmltree.NodeID, error) {
	var prevPre int32
	for {
		for len(data) >= 6 {
			if data[0]|data[1]|data[2]|data[3]|data[4]|data[5] >= 0x80 {
				break
			}
			prevPre += int32(data[0])
			dst = append(dst, xmltree.NodeID{Pre: prevPre, Post: int32(data[1]), Depth: int32(data[2])})
			prevPre += int32(data[3])
			dst = append(dst, xmltree.NodeID{Pre: prevPre, Post: int32(data[4]), Depth: int32(data[5])})
			data = data[6:]
		}
		if len(data) == 0 {
			return dst, nil
		}
		dPre, n := uvarint(data)
		if n <= 0 {
			return nil, errBadVarint
		}
		data = data[n:]
		post, n := uvarint(data)
		if n <= 0 {
			return nil, errBadVarint
		}
		data = data[n:]
		depth, n := uvarint(data)
		if n <= 0 {
			return nil, errBadVarint
		}
		data = data[n:]
		prevPre += int32(dPre)
		dst = append(dst, xmltree.NodeID{Pre: prevPre, Post: int32(post), Depth: int32(depth)})
	}
}

var errBadVarint = errors.New("idblock: bad varint triple")

// uvarint is binary.Uvarint with the one- and two-byte encodings inlined;
// everything else (longer, overlong, truncated) delegates so the accept
// and reject behavior stays exactly the standard library's.
func uvarint(b []byte) (uint64, int) {
	if len(b) >= 2 {
		b0 := b[0]
		if b0 < 0x80 {
			return uint64(b0), 1
		}
		if b1 := b[1]; b1 < 0x80 {
			return uint64(b0&0x7f) | uint64(b1)<<7, 2
		}
		return binary.Uvarint(b)
	}
	if len(b) == 1 && b[0] < 0x80 {
		return uint64(b[0]), 1
	}
	return binary.Uvarint(b)
}

// summarize computes the header of a non-empty identifier slice.
func summarize(ids []xmltree.NodeID) Header {
	h := Header{
		Count:  len(ids),
		MinPre: ids[0].Pre, MaxPre: ids[0].Pre,
		MinPost: ids[0].Post, MaxPost: ids[0].Post,
		MinDepth: ids[0].Depth, MaxDepth: ids[0].Depth,
	}
	for _, id := range ids[1:] {
		if id.Pre < h.MinPre {
			h.MinPre = id.Pre
		}
		if id.Pre > h.MaxPre {
			h.MaxPre = id.Pre
		}
		if id.Post < h.MinPost {
			h.MinPost = id.Post
		}
		if id.Post > h.MaxPost {
			h.MaxPost = id.Post
		}
		if id.Depth < h.MinDepth {
			h.MinDepth = id.Depth
		}
		if id.Depth > h.MaxDepth {
			h.MaxDepth = id.Depth
		}
	}
	return h
}

// IsSorted reports whether the ids are non-decreasing in pre — the encoder
// contract for the blocked format.
func IsSorted(ids []xmltree.NodeID) bool {
	for i := 1; i < len(ids); i++ {
		if ids[i].Pre < ids[i-1].Pre {
			return false
		}
	}
	return true
}

// Encode encodes a pre-sorted identifier set into version-1 blocked blobs
// of roughly maxBlob bytes each. A blob always holds at least one whole
// block and a block at least one triple, so hostile caps are exceeded by at
// most one header plus one oversized triple — the same overshoot contract
// as the legacy codec. blockSize <= 0 selects DefaultBlockSize; maxBlob
// <= 0 selects 1 MiB. Encode panics on unsorted input: the headers it
// would write could silently corrupt skip decisions, so callers gate on
// IsSorted and fall back to the legacy codec.
func Encode(ids []xmltree.NodeID, blockSize, maxBlob int) [][]byte {
	return encode(ids, blockSize, maxBlob, false)
}

// EncodePacked encodes a pre-sorted identifier set into version-2 blobs
// with per-block payload negotiation: each block keeps the smaller of its
// frame-of-reference bit-packed payload and its delta+varint payload (the
// format byte makes the choice self-describing, so blocks of one blob may
// mix). Same contracts as Encode otherwise.
func EncodePacked(ids []xmltree.NodeID, blockSize, maxBlob int) [][]byte {
	return encode(ids, blockSize, maxBlob, true)
}

func encode(ids []xmltree.NodeID, blockSize, maxBlob int, v2 bool) [][]byte {
	if len(ids) == 0 {
		return nil
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if maxBlob <= 0 {
		maxBlob = 1 << 20
	}
	if !IsSorted(ids) {
		panic("idblock: Encode on unsorted identifiers")
	}
	var arena *Arena
	if v2 {
		arena = GetArena()
		defer PutArena(arena)
	}

	// Cut the set into blocks: at most blockSize ids each, and a payload
	// that stops growing at the blob cap so single-block blobs stay near it.
	// Cut decisions are made on the varint size for both versions, so the
	// cap overshoot contract is identical; the packed alternative only ever
	// shrinks a block after the cut.
	type cut struct {
		header  Header
		payload []byte
	}
	var cuts []cut
	var tmp [3 * binary.MaxVarintLen64]byte
	for start := 0; start < len(ids); {
		var payload []byte
		var prevPre int32
		end := start
		for end < len(ids) && end-start < blockSize {
			id := ids[end]
			n := binary.PutUvarint(tmp[:], uint64(id.Pre-prevPre))
			n += binary.PutUvarint(tmp[n:], uint64(id.Post))
			n += binary.PutUvarint(tmp[n:], uint64(id.Depth))
			if len(payload) > 0 && len(payload)+n > maxBlob {
				break
			}
			payload = append(payload, tmp[:n]...)
			prevPre = id.Pre
			end++
		}
		h := summarize(ids[start:end])
		if v2 {
			wPre, wPost, wDepth := headerWidths(h)
			packable := wPre|wPost|wDepth != 0 || h.Count <= maxZeroSpanCount
			if ps := packedPayloadSize(h); packable && ps < 1+len(payload) {
				payload = packPayload(make([]byte, 0, ps), ids[start:end], h, arena)
			} else {
				payload = append([]byte{payloadVarint}, payload...)
			}
		}
		cuts = append(cuts, cut{header: h, payload: payload})
		start = end
	}

	// Pack whole blocks into blobs under the cap (6 bytes cover magic,
	// checksum and a small nblocks varint).
	magic := byte(Magic)
	if v2 {
		magic = Magic2
	}
	var blobs [][]byte
	for i := 0; i < len(cuts); {
		var hdrs []byte
		var nblocks, bodyLen int
		for j := i; j < len(cuts); j++ {
			hb := appendHeader(nil, cuts[j].header, len(cuts[j].payload))
			if nblocks > 0 && 6+len(hdrs)+len(hb)+bodyLen+len(cuts[j].payload) > maxBlob {
				break
			}
			hdrs = append(hdrs, hb...)
			bodyLen += len(cuts[j].payload)
			nblocks++
		}
		var nb [binary.MaxVarintLen64]byte
		nbLen := binary.PutUvarint(nb[:], uint64(nblocks))
		body := make([]byte, 0, nbLen+len(hdrs)+bodyLen)
		body = append(body, nb[:nbLen]...)
		body = append(body, hdrs...)
		for j := i; j < i+nblocks; j++ {
			body = append(body, cuts[j].payload...)
		}
		blob := make([]byte, 0, 5+len(body))
		blob = append(blob, magic)
		var ck [4]byte
		binary.LittleEndian.PutUint32(ck[:], fnv1a(body))
		blob = append(blob, ck[:]...)
		blob = append(blob, body...)
		blobs = append(blobs, blob)
		i += nblocks
	}
	return blobs
}

// appendHeader serializes one block header followed by its payload length.
func appendHeader(dst []byte, h Header, plen int) []byte {
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...)
	}
	put(uint64(h.Count))
	put(zigzag32(h.MinPre))
	put(uint64(int64(h.MaxPre) - int64(h.MinPre)))
	put(zigzag32(h.MinPost))
	put(uint64(int64(h.MaxPost) - int64(h.MinPost)))
	put(zigzag32(h.MinDepth))
	put(uint64(int64(h.MaxDepth) - int64(h.MinDepth)))
	put(uint64(plen))
	return dst
}

func zigzag32(v int32) uint64 {
	return uint64(uint32(v<<1) ^ uint32(v>>31))
}

func unzigzag32(u uint64) (int32, bool) {
	if u > 0xffffffff {
		return 0, false
	}
	x := uint32(u)
	return int32(x>>1) ^ -int32(x&1), true
}

// addSpan returns min + span as an int32, reporting overflow.
func addSpan(min int32, span uint64) (int32, bool) {
	if span > 1<<32 {
		return 0, false
	}
	v := int64(min) + int64(span)
	if v > int64(1<<31-1) {
		return 0, false
	}
	return int32(v), true
}

// Looks reports whether the blob starts like a blocked blob (either
// version); only Parse knows for sure.
func Looks(blob []byte) bool {
	return len(blob) > 5 && (blob[0] == Magic || blob[0] == Magic2)
}

// Parse validates a blocked blob and returns its Set without decoding any
// block payload: the checksum is verified (one byte scan, no varint work),
// every header is decoded and range-checked, blocks must be in pre order
// with non-overlapping ranges, and the payload lengths must cover the
// remaining bytes exactly. Any failure returns an error wrapping
// ErrNotBlocked, which callers read as "treat as legacy". The checksum
// makes a false positive on a legacy blob that merely starts with the
// magic byte a 2^-32 event on top of the structural checks.
func Parse(blob []byte) (*Set, error) {
	if !Looks(blob) {
		return nil, ErrNotBlocked
	}
	v2 := blob[0] == Magic2
	want := binary.LittleEndian.Uint32(blob[1:5])
	body := blob[5:]
	if fnv1a(body) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrNotBlocked)
	}
	nblocks, n := binary.Uvarint(body)
	if n <= 0 || nblocks == 0 || nblocks > uint64(len(body)) {
		return nil, fmt.Errorf("%w: bad block count", ErrNotBlocked)
	}
	body = body[n:]

	s := &Set{blocks: make([]block, 0, nblocks)}
	var payloadTotal uint64
	for b := uint64(0); b < nblocks; b++ {
		var raw [8]uint64
		for i := range raw {
			v, n := binary.Uvarint(body)
			if n <= 0 {
				return nil, fmt.Errorf("%w: truncated header", ErrNotBlocked)
			}
			raw[i] = v
			body = body[n:]
		}
		// In version 1 every triple costs at least three payload bytes, so
		// count <= len(blob) bounds decode allocations. Version-2 packed
		// payloads legitimately go far below a byte per id; their counts are
		// bounded against the payload kind by checkPayloadBound below, after
		// the payloads are sliced.
		maxCount := uint64(len(blob))
		if v2 {
			maxCount = 1 << 31
		}
		if raw[0] == 0 || raw[0] > maxCount {
			return nil, fmt.Errorf("%w: bad block id count", ErrNotBlocked)
		}
		h := Header{Count: int(raw[0])}
		var ok bool
		if h.MinPre, ok = unzigzag32(raw[1]); !ok {
			return nil, fmt.Errorf("%w: pre out of range", ErrNotBlocked)
		}
		if h.MaxPre, ok = addSpan(h.MinPre, raw[2]); !ok {
			return nil, fmt.Errorf("%w: pre span out of range", ErrNotBlocked)
		}
		if h.MinPost, ok = unzigzag32(raw[3]); !ok {
			return nil, fmt.Errorf("%w: post out of range", ErrNotBlocked)
		}
		if h.MaxPost, ok = addSpan(h.MinPost, raw[4]); !ok {
			return nil, fmt.Errorf("%w: post span out of range", ErrNotBlocked)
		}
		if h.MinDepth, ok = unzigzag32(raw[5]); !ok {
			return nil, fmt.Errorf("%w: depth out of range", ErrNotBlocked)
		}
		if h.MaxDepth, ok = addSpan(h.MinDepth, raw[6]); !ok {
			return nil, fmt.Errorf("%w: depth span out of range", ErrNotBlocked)
		}
		minPlen := 3 * uint64(h.Count)
		if v2 {
			minPlen = 1
		}
		if raw[7] < minPlen || raw[7] > uint64(len(blob)) {
			return nil, fmt.Errorf("%w: payload length out of range", ErrNotBlocked)
		}
		if len(s.blocks) > 0 && h.MinPre < s.blocks[len(s.blocks)-1].MaxPre {
			return nil, fmt.Errorf("%w: blocks out of pre order", ErrNotBlocked)
		}
		payloadTotal += raw[7]
		s.blocks = append(s.blocks, block{Header: h, plen: int(raw[7]), v2: v2})
		s.total += h.Count
	}
	if payloadTotal != uint64(len(body)) {
		return nil, fmt.Errorf("%w: payload length mismatch", ErrNotBlocked)
	}
	off := 0
	for i := range s.blocks {
		plen := s.blocks[i].plen
		s.blocks[i].data = body[off : off+plen : off+plen]
		off += plen
	}
	if v2 {
		for i := range s.blocks {
			if err := checkPayloadBound(&s.blocks[i]); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// fnv1a is the 32-bit FNV-1a checksum.
func fnv1a(data []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range data {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// FromIDs wraps an already-decoded, pre-sorted identifier slice as a
// single-block Set, so code paths that only have plain slices (the SimpleDB
// text codec, tests) feed the same skip-aware kernels. The slice is
// retained and must not be mutated afterwards; nil is returned for an empty
// slice.
func FromIDs(ids []xmltree.NodeID) *Set {
	if len(ids) == 0 {
		return nil
	}
	if !IsSorted(ids) {
		panic("idblock: FromIDs on unsorted identifiers")
	}
	return &Set{
		blocks:  []block{{Header: summarize(ids)}},
		total:   len(ids),
		decoded: [][]xmltree.NodeID{ids},
	}
}

// Merge combines the Sets parsed from the blobs of one (key, URI) entry
// into a single pre-ordered Set. It succeeds when the segments' pre ranges
// do not overlap — always the case for the write path, which splits one
// sorted list contiguously across items. ok=false means the caller must
// fall back to decode-everything-and-sort.
func Merge(sets []*Set) (merged *Set, ok bool) {
	if len(sets) == 0 {
		return nil, true
	}
	if len(sets) == 1 {
		return sets[0], true
	}
	order := make([]*Set, len(sets))
	copy(order, sets)
	// Insertion sort by first block's MinPre: segment counts are tiny.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].blocks[0].MinPre < order[j-1].blocks[0].MinPre; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	out := &Set{}
	var prevMax int32
	for i, s := range order {
		if i > 0 && s.blocks[0].MinPre < prevMax {
			return nil, false
		}
		out.blocks = append(out.blocks, s.blocks...)
		out.total += s.total
		prevMax = s.blocks[len(s.blocks)-1].MaxPre
	}
	return out, true
}
