package idblock

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/xmltree"
)

func randomSortedIDs(r *rand.Rand, n int) []xmltree.NodeID {
	ids := make([]xmltree.NodeID, n)
	pre := int32(0)
	for i := range ids {
		pre += 1 + r.Int31n(50)
		ids[i] = xmltree.NodeID{
			Pre:   pre,
			Post:  r.Int31n(1 << 20),
			Depth: 1 + r.Int31n(40),
		}
	}
	return ids
}

func parseAll(t *testing.T, blobs [][]byte) []*Set {
	t.Helper()
	sets := make([]*Set, 0, len(blobs))
	for _, b := range blobs {
		s, err := Parse(b)
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		sets = append(sets, s)
	}
	return sets
}

func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for _, n := range []int{1, 2, 100, 128, 129, 1000, 5000} {
		ids := randomSortedIDs(r, n)
		blobs := Encode(ids, DefaultBlockSize, 4096)
		sets := parseAll(t, blobs)
		merged, ok := Merge(sets)
		if !ok {
			t.Fatalf("n=%d: Merge failed on contiguous blobs", n)
		}
		if merged.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, merged.Len())
		}
		got, err := merged.All()
		if err != nil {
			t.Fatalf("All: %v", err)
		}
		if !reflect.DeepEqual(got, ids) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestRoundTripDuplicatePres(t *testing.T) {
	// Equal pre ranks are legal (multiple URIs never share a Set, but one
	// document can repeat pre values only via hostile inputs; the codec must
	// stay well-defined regardless).
	ids := []xmltree.NodeID{
		{Pre: 5, Post: 9, Depth: 2},
		{Pre: 5, Post: 3, Depth: 4},
		{Pre: 7, Post: 1, Depth: 1},
	}
	blobs := Encode(ids, 2, 1<<20)
	sets := parseAll(t, blobs)
	merged, ok := Merge(sets)
	if !ok {
		t.Fatal("Merge failed")
	}
	got, err := merged.All()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids) {
		t.Fatalf("mismatch: %v != %v", got, ids)
	}
}

func TestHeadersSummarizePayloads(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ids := randomSortedIDs(r, 1000)
	blobs := Encode(ids, 64, 2048)
	for _, s := range parseAll(t, blobs) {
		for i := 0; i < s.Blocks(); i++ {
			got, err := s.Block(i)
			if err != nil {
				t.Fatal(err)
			}
			if summarize(got) != s.Header(i) {
				t.Fatalf("block %d: header %+v != summary %+v", i, s.Header(i), summarize(got))
			}
			if len(got) > 64 {
				t.Fatalf("block %d: %d ids > blockSize", i, len(got))
			}
		}
	}
}

func TestEncodeRespectsMaxBlob(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	ids := randomSortedIDs(r, 3000)
	const maxBlob = 512
	blobs := Encode(ids, DefaultBlockSize, maxBlob)
	if len(blobs) < 2 {
		t.Fatalf("expected multiple blobs, got %d", len(blobs))
	}
	// Same overshoot contract as the legacy codec: at most one header plus
	// one triple beyond the cap.
	for i, b := range blobs {
		if len(b) > maxBlob+96 {
			t.Fatalf("blob %d: %d bytes exceeds cap %d by more than slack", i, len(b), maxBlob)
		}
	}
}

func TestEncodePanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unsorted input")
		}
	}()
	Encode([]xmltree.NodeID{{Pre: 9}, {Pre: 1}}, 0, 0)
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     nil,
		"short":     {Magic, 1, 2, 3},
		"not magic": {0x00, 1, 2, 3, 4, 5, 6, 7},
		"bad body":  {Magic, 0, 0, 0, 0, 0xff, 0xff, 0xff},
	}
	for name, blob := range cases {
		if _, err := Parse(blob); err == nil {
			t.Fatalf("%s: Parse accepted garbage", name)
		}
	}
}

func TestParseRejectsFlippedBits(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	ids := randomSortedIDs(r, 300)
	blobs := Encode(ids, 32, 1<<20)
	if len(blobs) != 1 {
		t.Fatalf("want 1 blob, got %d", len(blobs))
	}
	blob := blobs[0]
	for i := 5; i < len(blob); i++ { // keep magic+checksum, flip body bytes
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x40
		if _, err := Parse(mut); err == nil {
			t.Fatalf("byte %d: checksum failed to catch flip", i)
		}
	}
}

func TestLegacyLikeBlobFallsThrough(t *testing.T) {
	// A legacy delta+varint blob whose first byte happens to be the magic
	// (first Pre with low byte 0xB1, e.g. 177). Parse must reject it so the
	// codec falls back to the legacy decoder.
	legacy := []byte{0xB1, 0x01, 0x05, 0x03, 0x02, 0x01, 0x04, 0x02}
	if _, err := Parse(legacy); err == nil {
		t.Fatal("Parse accepted a legacy-shaped blob")
	}
}

func TestFromIDs(t *testing.T) {
	if FromIDs(nil) != nil {
		t.Fatal("FromIDs(nil) != nil")
	}
	ids := []xmltree.NodeID{{Pre: 1, Post: 4, Depth: 1}, {Pre: 2, Post: 3, Depth: 2}}
	s := FromIDs(ids)
	if s.Len() != 2 || s.Blocks() != 1 {
		t.Fatalf("Len=%d Blocks=%d", s.Len(), s.Blocks())
	}
	got, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids) {
		t.Fatal("FromIDs round trip mismatch")
	}
	if s.Header(0) != summarize(ids) {
		t.Fatal("FromIDs header mismatch")
	}
}

func TestMergeOrdersSegments(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	ids := randomSortedIDs(r, 900)
	blobs := Encode(ids, 32, 700)
	if len(blobs) < 3 {
		t.Fatalf("want >=3 blobs, got %d", len(blobs))
	}
	sets := parseAll(t, blobs)
	// Shuffle segment order, as ReadKeys may surface items in any order.
	perm := r.Perm(len(sets))
	shuffled := make([]*Set, len(sets))
	for i, p := range perm {
		shuffled[i] = sets[p]
	}
	merged, ok := Merge(shuffled)
	if !ok {
		t.Fatal("Merge failed on shuffled contiguous segments")
	}
	got, err := merged.All()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids) {
		t.Fatal("merged round trip mismatch")
	}
}

func TestMergeDetectsOverlap(t *testing.T) {
	a := FromIDs([]xmltree.NodeID{{Pre: 1}, {Pre: 10}})
	b := FromIDs([]xmltree.NodeID{{Pre: 5}, {Pre: 20}})
	if _, ok := Merge([]*Set{a, b}); ok {
		t.Fatal("Merge accepted overlapping segments")
	}
}

func TestAppendBlockReusesBuffer(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ids := randomSortedIDs(r, 200)
	blobs := Encode(ids, 64, 1<<20)
	s := parseAll(t, blobs)[0]
	buf := make([]xmltree.NodeID, 0, 256)
	var got []xmltree.NodeID
	for i := 0; i < s.Blocks(); i++ {
		dec, err := s.AppendBlock(buf[:0], i)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, dec...)
	}
	if !reflect.DeepEqual(got, ids) {
		t.Fatal("AppendBlock mismatch")
	}
}

func TestBlockMemoization(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	ids := randomSortedIDs(r, 100)
	s := parseAll(t, Encode(ids, 32, 1<<20))[0]
	a, err := s.Block(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Block(0)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("Block(0) not memoized")
	}
}
