package idblock

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/xmltree"
)

// Frame-of-reference bit-packed block payloads (version-2 blobs, payload
// format byte 0x01). The block header already carries the per-block minima
// and spans, so the payload stores only fixed-width offsets against those
// minima, column by column:
//
//	fmt     1 byte, 0x01
//	wPre    1 byte, bit width of the pre offset column (0..32)
//	wPost   1 byte, likewise for post
//	wDepth  1 byte, likewise for depth
//	columns three byte-aligned LSB-first bit-packed columns of
//	        ceil(count*w/8) bytes each, offsets value[i] - min in block order
//
// Fixed widths are what make the decode a batch operation: a whole column
// unpacks in one pass through a width-specialized kernel (dedicated code for
// the power-of-two widths, a 64-bit-accumulator kernel for the rest) into a
// reusable arena, instead of one branchy varint loop per triple. Widths are
// derived from the header spans, so a column whose values are all equal
// costs zero payload bytes.

// payload format bytes, the first payload byte of every version-2 block.
const (
	payloadVarint = 0x00 // delta+varint triple stream, as in version 1
	payloadPacked = 0x01 // frame-of-reference bit-packed columns
)

// packedBytes returns the byte length of one packed column of n w-bit
// values.
func packedBytes(n, w int) int { return (n*w + 7) / 8 }

// bitsFor returns the minimal width that can hold v.
func bitsFor(v uint32) int { return bits.Len32(v) }

// Arena is reusable scratch for column-at-a-time block decoding: one grown
// uint32 buffer viewed as three columns. Callers that loop over blocks hold
// one arena (their own or a pooled one from GetArena) so steady-state
// decoding allocates nothing. An Arena must not be shared concurrently.
type Arena struct {
	buf []uint32
}

// cols returns three n-wide column views over the arena, growing it as
// needed. The views alias the arena and are invalidated by the next call.
func (a *Arena) cols(n int) (pre, post, depth []uint32) {
	if cap(a.buf) < 3*n {
		a.buf = make([]uint32, 3*n)
	}
	b := a.buf[:3*n]
	return b[0:n:n], b[n : 2*n : 2*n], b[2*n : 3*n : 3*n]
}

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// GetArena returns a pooled decode arena.
func GetArena() *Arena { return arenaPool.Get().(*Arena) }

// PutArena returns an arena to the pool; the caller must not use it after.
func PutArena(a *Arena) { arenaPool.Put(a) }

// maxZeroSpanCount caps the id count of a packed block whose three spans
// are all zero (every triple identical): such a block packs to four bytes
// regardless of count, so without a cap a hostile blob could claim an
// enormous count against a tiny payload. The encoder's negotiation keeps
// the varint payload above the cap, so no legitimate blob ever trips it —
// every production writer cuts blocks at DefaultBlockSize anyway.
const maxZeroSpanCount = 2 * DefaultBlockSize

// headerWidths returns the three column bit widths a packed payload for
// this header must use. The widths are fully determined by the header
// spans, which is what lets Parse bound a hostile count before any decode
// allocation happens.
func headerWidths(h Header) (wPre, wPost, wDepth int) {
	return bitsFor(uint32(int64(h.MaxPre) - int64(h.MinPre))),
		bitsFor(uint32(int64(h.MaxPost) - int64(h.MinPost))),
		bitsFor(uint32(int64(h.MaxDepth) - int64(h.MinDepth)))
}

// packedPayloadSize returns the byte length packPayload would produce for a
// block with this header — the number the encoder compares against the
// varint alternative.
func packedPayloadSize(h Header) int {
	wPre, wPost, wDepth := headerWidths(h)
	return 4 +
		packedBytes(h.Count, wPre) +
		packedBytes(h.Count, wPost) +
		packedBytes(h.Count, wDepth)
}

// checkPayloadBound validates a version-2 block's payload kind against its
// header at parse time, before any decode-time allocation: a varint payload
// needs at least three bytes per triple, and a packed payload must carry
// exactly the column widths the header spans imply — so any block with a
// nonzero span has its count bounded linearly by its payload length, and
// the all-zero-span degenerate case is capped at maxZeroSpanCount.
func checkPayloadBound(b *block) error {
	data := b.data // Parse guarantees plen >= 1
	switch data[0] {
	case payloadVarint:
		if uint64(len(data)) < 1+3*uint64(b.Count) {
			return fmt.Errorf("%w: bad block id count", ErrNotBlocked)
		}
	case payloadPacked:
		if len(data) < 4 {
			return fmt.Errorf("%w: truncated packed payload", ErrNotBlocked)
		}
		wPre, wPost, wDepth := headerWidths(b.Header)
		if int(data[1]) != wPre || int(data[2]) != wPost || int(data[3]) != wDepth {
			return fmt.Errorf("%w: packed widths disagree with header", ErrNotBlocked)
		}
		n := uint64(b.Count)
		want := 4 + (n*uint64(wPre)+7)/8 + (n*uint64(wPost)+7)/8 + (n*uint64(wDepth)+7)/8
		if uint64(len(data)) != want {
			return fmt.Errorf("%w: packed payload length mismatch", ErrNotBlocked)
		}
		if wPre|wPost|wDepth == 0 && b.Count > maxZeroSpanCount {
			return fmt.Errorf("%w: bad block id count", ErrNotBlocked)
		}
	default:
		return fmt.Errorf("%w: unknown payload format %#x", ErrNotBlocked, data[0])
	}
	return nil
}

// packPayload appends the frame-of-reference payload of ids (whose summary
// is h) to dst, building the offset columns in the arena.
func packPayload(dst []byte, ids []xmltree.NodeID, h Header, a *Arena) []byte {
	n := len(ids)
	pre, post, depth := a.cols(n)
	for i, id := range ids {
		pre[i] = uint32(int64(id.Pre) - int64(h.MinPre))
		post[i] = uint32(int64(id.Post) - int64(h.MinPost))
		depth[i] = uint32(int64(id.Depth) - int64(h.MinDepth))
	}
	wPre, wPost, wDepth := headerWidths(h)
	dst = append(dst, payloadPacked, byte(wPre), byte(wPost), byte(wDepth))
	dst = appendPackedCol(dst, pre, wPre)
	dst = appendPackedCol(dst, post, wPost)
	dst = appendPackedCol(dst, depth, wDepth)
	return dst
}

// appendPackedCol appends vals bit-packed at width w, LSB-first: value i
// occupies bits [i*w, (i+1)*w) of the column, low bits in earlier bytes.
func appendPackedCol(dst []byte, vals []uint32, w int) []byte {
	if w == 0 {
		return dst
	}
	var acc uint64
	nbits := 0
	for _, v := range vals {
		acc |= uint64(v) << nbits
		nbits += w
		for nbits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

// unpackCol unpacks len(dst) w-bit values from src, which the caller has
// verified to be exactly packedBytes(len(dst), w) bytes.
func unpackCol(dst []uint32, src []byte, w int) {
	switch w {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
	case 1:
		unpack1(dst, src)
	case 2:
		unpack2(dst, src)
	case 4:
		unpack4(dst, src)
	case 8:
		for i := range dst {
			dst[i] = uint32(src[i])
		}
	case 16:
		for i := range dst {
			dst[i] = uint32(src[2*i]) | uint32(src[2*i+1])<<8
		}
	case 32:
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint32(src[4*i:])
		}
	default:
		unpackAny(dst, src, w)
	}
}

func unpack1(dst []uint32, src []byte) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		b := uint32(src[i>>3])
		dst[i] = b & 1
		dst[i+1] = b >> 1 & 1
		dst[i+2] = b >> 2 & 1
		dst[i+3] = b >> 3 & 1
		dst[i+4] = b >> 4 & 1
		dst[i+5] = b >> 5 & 1
		dst[i+6] = b >> 6 & 1
		dst[i+7] = b >> 7 & 1
	}
	for ; i < len(dst); i++ {
		dst[i] = uint32(src[i>>3]) >> (i & 7) & 1
	}
}

func unpack2(dst []uint32, src []byte) {
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		b := uint32(src[i>>2])
		dst[i] = b & 3
		dst[i+1] = b >> 2 & 3
		dst[i+2] = b >> 4 & 3
		dst[i+3] = b >> 6 & 3
	}
	for ; i < len(dst); i++ {
		dst[i] = uint32(src[i>>2]) >> (2 * (i & 3)) & 3
	}
}

func unpack4(dst []uint32, src []byte) {
	i := 0
	for ; i+2 <= len(dst); i += 2 {
		b := uint32(src[i>>1])
		dst[i] = b & 15
		dst[i+1] = b >> 4
	}
	if i < len(dst) {
		dst[i] = uint32(src[i>>1]) & 15
	}
}

// unpackAny handles the non-power-of-two widths (and 17..31): each value is
// read with one unaligned 64-bit load at its byte offset — the shift is at
// most 7 bits and the width at most 31, so 38 bits always suffice — with a
// byte-assembled fallback once the 8-byte load window would overrun the
// column. The main loop is unrolled four wide to amortize bounds checks.
func unpackAny(dst []uint32, src []byte, w int) {
	mask := uint32(1)<<w - 1
	n := len(dst)
	bitpos := 0
	i := 0
	for ; i+4 <= n && (bitpos+3*w)>>3+8 <= len(src); i += 4 {
		b0, b1, b2, b3 := bitpos, bitpos+w, bitpos+2*w, bitpos+3*w
		dst[i] = uint32(binary.LittleEndian.Uint64(src[b0>>3:])>>(b0&7)) & mask
		dst[i+1] = uint32(binary.LittleEndian.Uint64(src[b1>>3:])>>(b1&7)) & mask
		dst[i+2] = uint32(binary.LittleEndian.Uint64(src[b2>>3:])>>(b2&7)) & mask
		dst[i+3] = uint32(binary.LittleEndian.Uint64(src[b3>>3:])>>(b3&7)) & mask
		bitpos += 4 * w
	}
	for ; i < n && bitpos>>3+8 <= len(src); i++ {
		dst[i] = uint32(binary.LittleEndian.Uint64(src[bitpos>>3:])>>(bitpos&7)) & mask
		bitpos += w
	}
	for ; i < n; i++ {
		off := bitpos >> 3
		v := uint64(0)
		for k := 0; k < 8 && off+k < len(src); k++ {
			v |= uint64(src[off+k]) << (8 * k)
		}
		dst[i] = uint32(v>>(bitpos&7)) & mask
		bitpos += w
	}
}

// appendBlockPacked decodes a frame-of-reference payload into dst through
// the arena and verifies it against the header. The verification is fused
// into the interleave pass — offsets must be non-decreasing in pre with the
// first at zero and the last at the pre span, and the post and depth
// columns must attain both zero and their spans — which is exactly as
// strong as re-summarizing the decoded block, without the second pass.
func appendBlockPacked(dst []xmltree.NodeID, b block, a *Arena) ([]xmltree.NodeID, error) {
	data := b.data
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: truncated packed payload", ErrCorrupt)
	}
	wPre, wPost, wDepth := int(data[1]), int(data[2]), int(data[3])
	if wPre > 32 || wPost > 32 || wDepth > 32 {
		return nil, fmt.Errorf("%w: packed width out of range", ErrCorrupt)
	}
	n := b.Count
	lpre, lpost, ldepth := packedBytes(n, wPre), packedBytes(n, wPost), packedBytes(n, wDepth)
	if len(data) != 4+lpre+lpost+ldepth {
		return nil, fmt.Errorf("%w: packed payload length mismatch", ErrCorrupt)
	}
	spanPre := uint32(int64(b.MaxPre) - int64(b.MinPre))
	spanPost := uint32(int64(b.MaxPost) - int64(b.MinPost))
	spanDepth := uint32(int64(b.MaxDepth) - int64(b.MinDepth))
	pre, post, depth := a.cols(n)
	unpackCol(pre, data[4:4+lpre], wPre)
	unpackCol(post, data[4+lpre:4+lpre+lpost], wPost)
	unpackCol(depth, data[4+lpre+lpost:], wDepth)
	if pre[0] != 0 || pre[n-1] != spanPre {
		return nil, fmt.Errorf("%w: block summary disagrees with header", ErrCorrupt)
	}
	minPost, maxPost := post[0], post[0]
	minDepth, maxDepth := depth[0], depth[0]
	prev := uint32(0)
	for i := 0; i < n; i++ {
		p := pre[i]
		if p < prev {
			return nil, fmt.Errorf("%w: block not sorted by pre", ErrCorrupt)
		}
		prev = p
		q, d := post[i], depth[i]
		if q < minPost {
			minPost = q
		} else if q > maxPost {
			maxPost = q
		}
		if d < minDepth {
			minDepth = d
		} else if d > maxDepth {
			maxDepth = d
		}
		dst = append(dst, xmltree.NodeID{
			Pre:   b.MinPre + int32(p),
			Post:  b.MinPost + int32(q),
			Depth: b.MinDepth + int32(d),
		})
	}
	if minPost != 0 || maxPost != spanPost || minDepth != 0 || maxDepth != spanDepth {
		return nil, fmt.Errorf("%w: block summary disagrees with header", ErrCorrupt)
	}
	return dst, nil
}
