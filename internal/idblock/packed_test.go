package idblock

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/xmltree"
)

// idsWithWidth builds a sorted identifier set whose pre, post and depth
// spans need exactly w bits per offset (w=0 means constant columns).
func idsWithWidth(r *rand.Rand, n, w int) []xmltree.NodeID {
	var span int64
	if w > 0 {
		span = int64(uint64(1)<<w - 1)
	}
	// Wide spans need a base that keeps min+span inside int32: the full
	// 32-bit span only fits anchored at the bottom of the int32 range.
	base := int64(7)
	if base+span > 1<<31-1 {
		base = (1<<31 - 1) - span
	}
	ids := make([]xmltree.NodeID, n)
	for i := range ids {
		var pre, post, depth int64
		if w > 0 && n > 1 {
			pre = r.Int63n(span + 1)
			post = r.Int63n(span + 1)
			depth = r.Int63n(span + 1)
		}
		ids[i] = xmltree.NodeID{Pre: int32(base + pre), Post: int32(base + post), Depth: int32(base + depth)}
	}
	// Force the spans to be attained so the width is exactly w.
	ids[0].Pre, ids[0].Post, ids[0].Depth = int32(base), int32(base), int32(base)
	last := &ids[n-1]
	last.Pre, last.Post, last.Depth = int32(base+span), int32(base+span), int32(base+span)
	sortByPre(ids)
	return ids
}

func sortByPre(ids []xmltree.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j].Pre < ids[j-1].Pre; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// TestPackedRoundTripWidths pins packed-vs-varint decode equality across
// the bit widths and block sizes the issue calls out, plus the
// power-of-two kernel widths.
func TestPackedRoundTripWidths(t *testing.T) {
	r := rand.New(rand.NewSource(811))
	for _, w := range []int{0, 1, 2, 4, 7, 8, 16, 17, 31, 32} {
		for _, bs := range []int{1, 3, 128} {
			for _, n := range []int{1, 3, 129, 1000} {
				ids := idsWithWidth(r, n, w)
				packed := EncodePacked(ids, bs, 1<<20)
				varint := Encode(ids, bs, 1<<20)
				var gotP, gotV []xmltree.NodeID
				for _, blob := range packed {
					s, err := Parse(blob)
					if err != nil {
						t.Fatalf("w=%d bs=%d n=%d: Parse packed: %v", w, bs, n, err)
					}
					all, err := s.All()
					if err != nil {
						t.Fatalf("w=%d bs=%d n=%d: decode packed: %v", w, bs, n, err)
					}
					gotP = append(gotP, all...)
				}
				for _, blob := range varint {
					s, err := Parse(blob)
					if err != nil {
						t.Fatalf("Parse varint: %v", err)
					}
					all, err := s.All()
					if err != nil {
						t.Fatalf("decode varint: %v", err)
					}
					gotV = append(gotV, all...)
				}
				if !reflect.DeepEqual(gotP, ids) {
					t.Fatalf("w=%d bs=%d n=%d: packed round trip mismatch", w, bs, n)
				}
				if !reflect.DeepEqual(gotP, gotV) {
					t.Fatalf("w=%d bs=%d n=%d: packed and varint decodes disagree", w, bs, n)
				}
			}
		}
	}
}

// TestPackedColKernels round-trips every width 0..32 through the raw
// pack/unpack kernels at awkward lengths (tail handling).
func TestPackedColKernels(t *testing.T) {
	r := rand.New(rand.NewSource(812))
	for w := 0; w <= 32; w++ {
		for _, n := range []int{1, 2, 7, 8, 9, 63, 64, 65, 128} {
			vals := make([]uint32, n)
			var max uint64 = 1
			if w > 0 {
				max = 1 << w
			}
			for i := range vals {
				vals[i] = uint32(r.Int63n(int64(max)))
			}
			col := appendPackedCol(nil, vals, w)
			if len(col) != packedBytes(n, w) {
				t.Fatalf("w=%d n=%d: col is %d bytes, want %d", w, n, len(col), packedBytes(n, w))
			}
			got := make([]uint32, n)
			unpackCol(got, col, w)
			if !reflect.DeepEqual(got, vals) {
				t.Fatalf("w=%d n=%d: kernel round trip mismatch", w, n)
			}
		}
	}
}

// TestEncodePackedNegotiation checks the per-block size negotiation: a
// packed blob is never larger than its varint twin on wide random sets,
// and a tiny set whose varint stream is cheaper keeps the varint payload.
func TestEncodePackedNegotiation(t *testing.T) {
	r := rand.New(rand.NewSource(813))
	ids := randomSortedIDs(r, 1000)
	sizeOf := func(blobs [][]byte) int {
		n := 0
		for _, b := range blobs {
			n += len(b)
		}
		return n
	}
	packed := sizeOf(EncodePacked(ids, DefaultBlockSize, 1<<20))
	varint := sizeOf(Encode(ids, DefaultBlockSize, 1<<20))
	// The packed side pays one format byte per block; beyond that it only
	// ever replaces a payload with a smaller one.
	blocks := (len(ids) + DefaultBlockSize - 1) / DefaultBlockSize
	if packed > varint+blocks {
		t.Fatalf("packed %d bytes > varint %d + %d format bytes", packed, varint, blocks)
	}

	// One triple with zero spans: 4 packed bytes lose to 3 varint bytes
	// plus the format byte, so negotiation must keep varint.
	one := []xmltree.NodeID{{Pre: 1, Post: 1, Depth: 1}}
	blob := EncodePacked(one, 1, 1<<20)[0]
	s, err := Parse(blob)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	got, err := s.All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if !reflect.DeepEqual(got, one) {
		t.Fatalf("single-triple round trip mismatch")
	}
}

// TestPackedParseRejectsFlippedBits flips every byte of packed blobs at
// several block sizes: no flip may panic, be silently accepted with
// different contents, or decode to anything but the original set.
func TestPackedParseRejectsFlippedBits(t *testing.T) {
	r := rand.New(rand.NewSource(814))
	for _, bs := range []int{1, 3, 128} {
		ids := randomSortedIDs(r, 300)
		for _, blob := range EncodePacked(ids, bs, 1<<20) {
			for i := range blob {
				mut := append([]byte(nil), blob...)
				mut[i] ^= 0x40
				s, err := Parse(mut)
				if err != nil {
					continue // rejected at parse: fine
				}
				// The checksum makes parse-time acceptance of a flip next to
				// impossible; if it ever happens the decode must still fail
				// or produce the exact original ids.
				got, err := s.All()
				if err != nil {
					continue
				}
				if !reflect.DeepEqual(got, ids[:len(got)]) {
					t.Fatalf("bs=%d: flipped byte %d accepted with wrong contents", bs, i)
				}
			}
		}
	}
}

// TestPackedCorruptPayloads hand-corrupts packed payloads behind a fixed
// checksum — the cases a bit flip cannot reach because the checksum guards
// them — and asserts block decode reports corruption.
func TestPackedCorruptPayloads(t *testing.T) {
	ids := idsWithWidth(rand.New(rand.NewSource(815)), 64, 7)
	blob := EncodePacked(ids, DefaultBlockSize, 1<<20)
	if len(blob) != 1 {
		t.Fatalf("want one blob, got %d", len(blob))
	}
	corrupt := func(name string, mutate func(payload []byte)) {
		s, err := Parse(blob[0])
		if err != nil {
			t.Fatalf("%s: Parse: %v", name, err)
		}
		// Reach into the parsed block and mutate a copy of its payload.
		b := s.blocks[0]
		data := append([]byte(nil), b.data...)
		mutate(data)
		b.data = data
		if _, err := appendBlock(nil, b, nil); err == nil {
			t.Errorf("%s: corrupt payload decoded without error", name)
		}
	}
	corrupt("width out of range", func(p []byte) { p[1] = 33 })
	corrupt("offset above span", func(p []byte) {
		// Max out the first post offset: with width 7 and a smaller true
		// span this pushes max above the header span.
		p[4+packedBytes(64, int(p[1]))] = 0x7f
	})
	corrupt("unknown format", func(p []byte) { p[0] = 0x7e })
}

// TestAppendBlockArenaZeroAllocs pins the steady-state decode of both
// payload kinds at zero allocations: a warmed arena plus a pre-sized
// destination buffer decode whole blocks with no per-op garbage.
func TestAppendBlockArenaZeroAllocs(t *testing.T) {
	ids := randomSortedIDs(rand.New(rand.NewSource(816)), 1024)
	for _, enc := range []struct {
		name  string
		blobs [][]byte
	}{
		{"packed", EncodePacked(ids, DefaultBlockSize, 1<<20)},
		{"varint-v1", Encode(ids, DefaultBlockSize, 1<<20)},
	} {
		sets := parseAll(t, enc.blobs)
		arena := &Arena{}
		dst := make([]xmltree.NodeID, 0, len(ids))
		allocs := testing.AllocsPerRun(100, func() {
			dst = dst[:0]
			for _, s := range sets {
				for i := 0; i < s.Blocks(); i++ {
					var err error
					dst, err = s.AppendBlockArena(dst, i, arena)
					if err != nil {
						t.Fatal(err)
					}
				}
			}
		})
		if allocs != 0 {
			t.Errorf("%s: steady-state block decode allocates %.1f/op, want 0", enc.name, allocs)
		}
		if !reflect.DeepEqual(dst, ids) {
			t.Errorf("%s: arena decode mismatch", enc.name)
		}
	}
}

// TestAppendVarintTriplesEquivalence checks the unrolled batch decoder
// against a reference one-varint-at-a-time decode on random and hostile
// streams (sign-extended 64-bit encodings, truncated tails).
func TestAppendVarintTriplesEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(817))
	ref := func(data []byte) ([]xmltree.NodeID, bool) {
		var out []xmltree.NodeID
		var prevPre int32
		for len(data) > 0 {
			var vals [3]uint64
			for i := range vals {
				v, n := uvarintRef(data)
				if n <= 0 {
					return nil, false
				}
				vals[i] = v
				data = data[n:]
			}
			prevPre += int32(vals[0])
			out = append(out, xmltree.NodeID{Pre: prevPre, Post: int32(vals[1]), Depth: int32(vals[2])})
		}
		return out, true
	}
	for trial := 0; trial < 500; trial++ {
		n := r.Intn(64)
		data := make([]byte, n)
		r.Read(data)
		want, okWant := ref(data)
		got, err := AppendVarintTriples(nil, data)
		if okWant != (err == nil) {
			t.Fatalf("trial %d: acceptance mismatch: ref ok=%v err=%v", trial, okWant, err)
		}
		if okWant && !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: decode mismatch", trial)
		}
	}
	// A sign-extended negative component: ten 0xFF-ish bytes.
	hostile := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 3, 4}
	want, okWant := ref(hostile)
	got, err := AppendVarintTriples(nil, hostile)
	if !okWant || err != nil {
		t.Fatalf("hostile stream: ref ok=%v err=%v", okWant, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hostile stream decode mismatch: got %v want %v", got, want)
	}
}

// uvarintRef is the stdlib decode the fast path must agree with.
func uvarintRef(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, c := range b {
		if i == 10 {
			return 0, -(i + 1)
		}
		if c < 0x80 {
			if i == 9 && c > 1 {
				return 0, -(i + 1)
			}
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0
}
