package idblock

import (
	"sort"

	"repro/internal/xmltree"
)

// MergeTombstones merges the segments of one (key, URI) entry like Merge
// while subtracting every identifier whose Pre appears in dead — the
// posting-decode-time delete visibility for the mutable warehouse: dead is
// the removed document version's contribution to this key, so after the
// subtraction the merged set reads as if that version had never been
// indexed. Pre numbers are unique within a document, so Pre alone
// identifies a node.
//
// Blocks whose pre span contains no dead identifier pass through with their
// payloads still encoded (and decode lazily, exactly as after Merge); only
// blocks that intersect the tombstone set are decoded, filtered, and
// re-summarized. ok=false mirrors Merge: the segments' pre ranges overlap
// and the caller must fall back to decode-everything-and-subtract.
func MergeTombstones(sets []*Set, dead *Set) (merged *Set, ok bool) {
	merged, ok = Merge(sets)
	if !ok || merged.Len() == 0 || dead.Len() == 0 {
		return merged, ok
	}
	deadAll, err := dead.All()
	if err != nil {
		// A corrupt tombstone set cannot be applied lazily; make the
		// caller take the eager path, which surfaces the decode error.
		return nil, false
	}
	pres := make([]int32, len(deadAll))
	for i, id := range deadAll {
		pres[i] = id.Pre
	}
	// dead's blocks are pre-ordered with non-overlapping ranges, so pres is
	// sorted; guard anyway so a hand-built Set cannot break the searches.
	if !sort.SliceIsSorted(pres, func(i, j int) bool { return pres[i] < pres[j] }) {
		sort.Slice(pres, func(i, j int) bool { return pres[i] < pres[j] })
	}
	out := &Set{}
	var decoded [][]xmltree.NodeID
	anyDecoded := false
	for i := range merged.blocks {
		b := merged.blocks[i]
		// First dead pre that could fall inside this block's span.
		lo := sort.Search(len(pres), func(j int) bool { return pres[j] >= b.MinPre })
		if lo == len(pres) || pres[lo] > b.MaxPre {
			out.blocks = append(out.blocks, b)
			out.total += b.Count
			decoded = append(decoded, nil)
			continue
		}
		ids, err := merged.AppendBlockArena(nil, i, nil)
		if err != nil {
			return nil, false
		}
		kept := ids[:0]
		j := lo
		for _, id := range ids {
			for j < len(pres) && pres[j] < id.Pre {
				j++
			}
			if j < len(pres) && pres[j] == id.Pre {
				continue
			}
			kept = append(kept, id)
		}
		if len(kept) == 0 {
			continue
		}
		if len(kept) == len(ids) {
			// Span intersected but no identifier matched: keep encoded.
			out.blocks = append(out.blocks, b)
			out.total += b.Count
			decoded = append(decoded, nil)
			continue
		}
		out.blocks = append(out.blocks, block{Header: summarize(kept)})
		out.total += len(kept)
		decoded = append(decoded, kept)
		anyDecoded = true
	}
	if out.total == 0 {
		return nil, true
	}
	if anyDecoded {
		out.decoded = decoded
	}
	return out, true
}
