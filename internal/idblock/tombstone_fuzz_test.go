package idblock

import (
	"math/rand"
	"testing"

	"repro/internal/xmltree"
)

// FuzzMergeTombstones feeds arbitrary segment and tombstone blobs to the
// tombstone-aware merge. Invariants: no panic, and whenever both blobs
// parse and the merge reports ok, the result is exactly the reference
// decode-everything-and-subtract answer (sorted, with a consistent Len and
// per-block decode).
func FuzzMergeTombstones(f *testing.F) {
	r := rand.New(rand.NewSource(7))
	ids := randomSortedIDs(r, 240)
	var dead []xmltree.NodeID
	for i, id := range ids {
		if i%5 == 0 {
			dead = append(dead, id)
		}
	}
	for _, bs := range []int{1, 16, 128} {
		segs := Encode(ids, bs, 1<<20)
		deads := Encode(dead, bs, 1<<20)
		f.Add(segs[0], deads[0])
		if p := EncodePacked(ids, bs, 1<<20); len(p) > 0 {
			f.Add(p[0], deads[0])
		}
	}
	f.Add([]byte{Magic, 0}, []byte{Magic2, 1})
	f.Fuzz(func(t *testing.T, segBlob, deadBlob []byte) {
		seg, err := Parse(segBlob)
		if err != nil {
			return
		}
		var deadSet *Set
		if d, err := Parse(deadBlob); err == nil {
			deadSet = d
		}
		merged, ok := MergeTombstones([]*Set{seg}, deadSet)
		if !ok {
			return
		}
		segAll, errSeg := seg.All()
		var deadAll []xmltree.NodeID
		var errDead error
		if deadSet != nil {
			deadAll, errDead = deadSet.All()
		}
		if errSeg != nil || errDead != nil {
			// Corrupt payloads surface on decode; the merge itself must
			// only fail the same way, never panic or invent identifiers.
			if merged != nil {
				if _, err := merged.All(); err == nil && errSeg != nil {
					t.Fatalf("merged decodes but source segment is corrupt")
				}
			}
			return
		}
		deadPres := map[int32]bool{}
		for _, id := range deadAll {
			deadPres[id.Pre] = true
		}
		var want []xmltree.NodeID
		for _, id := range segAll {
			if !deadPres[id.Pre] {
				want = append(want, id)
			}
		}
		var got []xmltree.NodeID
		if merged != nil {
			got, err = merged.All()
			if err != nil {
				t.Fatalf("merged.All: %v", err)
			}
			if merged.Len() != len(got) {
				t.Fatalf("Len=%d but decoded %d", merged.Len(), len(got))
			}
			if !IsSorted(got) {
				t.Fatalf("merged set not sorted")
			}
		}
		if len(got) != len(want) {
			t.Fatalf("subtracted %d ids, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("id %d: got %v want %v", i, got[i], want[i])
			}
		}
	})
}
