package idblock

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/xmltree"
)

// refSubtract is the reference semantics: decode every segment, drop every
// identifier whose Pre appears in dead, return the survivors in pre order.
func refSubtract(t *testing.T, sets []*Set, dead *Set) []xmltree.NodeID {
	t.Helper()
	deadPres := map[int32]bool{}
	if dead != nil {
		all, err := dead.All()
		if err != nil {
			t.Fatalf("dead.All: %v", err)
		}
		for _, id := range all {
			deadPres[id.Pre] = true
		}
	}
	var out []xmltree.NodeID
	for _, s := range sets {
		all, err := s.All()
		if err != nil {
			t.Fatalf("seg.All: %v", err)
		}
		for _, id := range all {
			if !deadPres[id.Pre] {
				out = append(out, id)
			}
		}
	}
	sortByPre(out)
	return out
}

func TestMergeTombstonesSubtracts(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	ids := randomSortedIDs(r, 500)
	sets := parseAll(t, Encode(ids, 64, 1<<20))
	// Tombstone every third identifier, plus some pres not in the set.
	var deadIDs []xmltree.NodeID
	for i, id := range ids {
		if i%3 == 0 {
			deadIDs = append(deadIDs, id)
		}
	}
	deadIDs = append(deadIDs, xmltree.NodeID{Pre: 1 << 29, Post: 1, Depth: 1})
	sortByPre(deadIDs)
	dead := parseAll(t, Encode(deadIDs, 64, 1<<20))[0]

	merged, ok := MergeTombstones(sets, dead)
	if !ok {
		t.Fatalf("MergeTombstones returned ok=false on non-overlapping segments")
	}
	got, err := merged.All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	want := refSubtract(t, sets, dead)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("subtract mismatch: got %d ids, want %d", len(got), len(want))
	}
	if merged.Len() != len(want) {
		t.Fatalf("Len=%d, want %d", merged.Len(), len(want))
	}
	// Per-block decode agrees with All on the mixed encoded/pre-decoded set.
	var per []xmltree.NodeID
	for i := 0; i < merged.Blocks(); i++ {
		var err error
		per, err = merged.AppendBlock(per, i)
		if err != nil {
			t.Fatalf("AppendBlock(%d): %v", i, err)
		}
	}
	if !reflect.DeepEqual(per, want) {
		t.Fatalf("per-block decode disagrees with All")
	}
}

func TestMergeTombstonesNilAndEmpty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	ids := randomSortedIDs(r, 100)
	sets := parseAll(t, Encode(ids, 32, 1<<20))

	merged, ok := MergeTombstones(sets, nil)
	if !ok || merged.Len() != len(ids) {
		t.Fatalf("nil dead must be a plain merge: ok=%v len=%d", ok, merged.Len())
	}
	// Pass-through must keep payloads encoded (lazy), not decode eagerly.
	if merged.decoded != nil {
		t.Fatalf("nil dead decoded blocks eagerly")
	}

	dead := parseAll(t, Encode(ids, 32, 1<<20))[0]
	merged, ok = MergeTombstones(sets, dead)
	if !ok {
		t.Fatalf("full subtraction returned ok=false")
	}
	if merged != nil {
		t.Fatalf("subtracting everything must yield nil, got %d ids", merged.Len())
	}

	if m, ok := MergeTombstones(nil, dead); !ok || m != nil {
		t.Fatalf("no segments: got %v ok=%v", m, ok)
	}
}

func TestMergeTombstonesOverlapFallsBack(t *testing.T) {
	a := FromIDs([]xmltree.NodeID{{Pre: 1, Post: 1, Depth: 1}, {Pre: 9, Post: 9, Depth: 1}})
	b := FromIDs([]xmltree.NodeID{{Pre: 5, Post: 5, Depth: 1}})
	dead := FromIDs([]xmltree.NodeID{{Pre: 9, Post: 9, Depth: 1}})
	if _, ok := MergeTombstones([]*Set{a, b}, dead); ok {
		t.Fatalf("overlapping pre ranges must report ok=false")
	}
}

func TestMergeTombstonesLazyPassThrough(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	ids := randomSortedIDs(r, 256)
	sets := parseAll(t, EncodePacked(ids, 64, 1<<20))
	// Kill only the very last identifier: every earlier block must pass
	// through with its payload bytes intact.
	dead := FromIDs([]xmltree.NodeID{ids[len(ids)-1]})
	merged, ok := MergeTombstones(sets, dead)
	if !ok {
		t.Fatalf("ok=false")
	}
	if merged.Len() != len(ids)-1 {
		t.Fatalf("Len=%d want %d", merged.Len(), len(ids)-1)
	}
	encodedBlocks := 0
	for i := range merged.blocks {
		if merged.blocks[i].data != nil {
			encodedBlocks++
		}
	}
	if encodedBlocks == 0 {
		t.Fatalf("expected untouched blocks to stay encoded")
	}
	if got := refSubtract(t, sets, dead); got[0] != ids[0] || len(got) != merged.Len() {
		t.Fatalf("reference disagrees")
	}
}

// TestMergeTombstonesProperty drives random segment splits and random
// tombstone subsets against the reference subtraction.
func TestMergeTombstonesProperty(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(400)
		ids := randomSortedIDs(r, n)
		blockSize := 1 + r.Intn(96)
		var blobs [][]byte
		if r.Intn(2) == 0 {
			blobs = Encode(ids, blockSize, 1+r.Intn(4096))
		} else {
			blobs = EncodePacked(ids, blockSize, 1+r.Intn(4096))
		}
		sets := parseAll(t, blobs)
		var deadIDs []xmltree.NodeID
		for _, id := range ids {
			if r.Intn(3) == 0 {
				deadIDs = append(deadIDs, id)
			}
		}
		// Mix in pres outside the set.
		for i := 0; i < r.Intn(5); i++ {
			deadIDs = append(deadIDs, xmltree.NodeID{Pre: int32(1<<28 + i), Post: 1, Depth: 1})
		}
		sortByPre(deadIDs)
		var dead *Set
		if len(deadIDs) > 0 {
			dead = parseAll(t, Encode(deadIDs, 16, 1<<20))[0]
		}
		merged, ok := MergeTombstones(sets, dead)
		if !ok {
			t.Fatalf("trial %d: ok=false on contiguous segments", trial)
		}
		var got []xmltree.NodeID
		if merged != nil {
			var err error
			got, err = merged.All()
			if err != nil {
				t.Fatalf("trial %d: All: %v", trial, err)
			}
		}
		want := refSubtract(t, sets, dead)
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), len(want))
		}
	}
}
