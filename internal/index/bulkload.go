package index

import (
	"errors"
	"sort"
	"time"

	"repro/internal/cloud/kv"
	"repro/internal/obs"
)

// This file implements the cross-document bulk loader. WriteExtraction
// flushes a batch per document and per table, so small documents ship
// mostly-empty batches — the "per-document round trips do not amortize"
// artifact Section 8.2 / Table 4 of the paper is about. The BulkLoader is a
// per-table group-commit buffer: items from many documents' extractions
// accumulate until a batch reaches the provider limit, so nearly every
// request carries a full batch and the billed request count drops to the
// floor of ceil(items/limit) per table.
//
// Items are built by the same entryItems helper as WriteExtraction, so the
// store contents are byte-identical to the per-document path; content-derived
// range keys (ItemRangeKey) keep coalesced retries idempotent exactly as
// they do per-document writes.

// ErrLoaderClosed is returned by Add after Close.
var ErrLoaderClosed = errors.New("index: bulk loader closed")

// BulkOptions tunes a BulkLoader.
type BulkOptions struct {
	// FlushItems is the per-table buffered-item count that triggers a
	// flush. Zero selects the store's Limits().BatchPutItems; values above
	// that limit are clamped to it (a single request cannot carry more).
	FlushItems int
	// Obs, when non-nil, receives the loader's flush metrics
	// (index.bulk.flushes / items / bytes counters and the index.bulk.flush
	// modeled-latency histogram). Nil disables them at zero cost.
	Obs *obs.Registry
}

// DocLoad is the completed outcome of one document's bulk load, released by
// Add, Flush or Close once every item of the document has been flushed.
type DocLoad struct {
	URI string
	// Upload is the document's pro-rata share of the modeled latency of
	// the batches its items rode in, apportioned by payload bytes. Shares
	// of one batch sum exactly to the batch's duration, so summing Upload
	// over documents reproduces the total modeled upload time.
	Upload time.Duration
	// Stats attributes load statistics to the document: Entries, Items and
	// Bytes are exact; each flushed batch's single Request is charged to
	// its first contributing document, so Requests also sums exactly to
	// the number of API calls issued.
	Stats LoadStats
}

// bulkDoc tracks one added extraction until all its items are flushed.
type bulkDoc struct {
	uri     string
	pending int  // items buffered but not yet flushed
	added   bool // Add finished appending the document's items
	upload  time.Duration
	stats   LoadStats
}

type pendingItem struct {
	item kv.Item
	size int64
	doc  *bulkDoc
}

// BulkLoader coalesces index items from many documents into full store
// batches. It is not safe for concurrent use; the indexing pipeline owns
// one loader per writer thread.
type BulkLoader struct {
	store      kv.Store
	caches     []*PostingCache
	flushItems int
	itemBudget int64

	buffers map[string][]pendingItem // per table, FIFO in Add order
	fifo    []*bulkDoc               // docs in Add order, not yet released
	total   LoadStats
	closed  bool

	// Flush instruments, resolved once at construction (nil-safe no-ops
	// when BulkOptions.Obs is nil).
	metFlushes *obs.Counter
	metItems   *obs.Counter
	metBytes   *obs.Counter
	metFlush   *obs.Histogram
}

// NewBulkLoader returns a loader writing to store. Caches fronting the
// store must be passed so flushed (and failed) batches invalidate them.
func NewBulkLoader(store kv.Store, opts BulkOptions, caches ...*PostingCache) *BulkLoader {
	lim := store.Limits()
	batchLimit := lim.BatchPutItems
	if batchLimit <= 0 {
		batchLimit = 1
	}
	flush := opts.FlushItems
	if flush <= 0 || flush > batchLimit {
		flush = batchLimit
	}
	live := caches[:0:0]
	for _, c := range caches {
		if c != nil {
			live = append(live, c)
		}
	}
	return &BulkLoader{
		store:      store,
		caches:     live,
		flushItems: flush,
		itemBudget: itemBudgetFor(lim),
		buffers:    make(map[string][]pendingItem),
		metFlushes: opts.Obs.Counter("index.bulk.flushes"),
		metItems:   opts.Obs.Counter("index.bulk.items"),
		metBytes:   opts.Obs.Counter("index.bulk.bytes"),
		metFlush:   opts.Obs.Histogram("index.bulk.flush"),
	}
}

// Add buffers the extraction's items and flushes any table whose buffer
// reached the flush threshold. It returns the documents completed by those
// flushes, in Add order. On error the failed batch's documents remain
// pending (their items may have partially landed; the idempotent range keys
// make a retry of the whole document converge).
func (b *BulkLoader) Add(ex *Extraction) ([]DocLoad, error) {
	if b.closed {
		return nil, ErrLoaderClosed
	}
	d := &bulkDoc{uri: ex.URI}
	b.fifo = append(b.fifo, d)
	for _, table := range sortedTables(ex) {
		for _, e := range ex.Tables[table] {
			d.stats.Entries++
			b.total.Entries++
			for _, item := range entryItems(ex.URI, table, e, b.itemBudget) {
				b.buffers[table] = append(b.buffers[table], pendingItem{item: item, size: item.Size(), doc: d})
				d.pending++
			}
		}
		for len(b.buffers[table]) >= b.flushItems {
			if err := b.flushTable(table); err != nil {
				return b.release(), err
			}
		}
	}
	d.added = true
	return b.release(), nil
}

// Flush drains every partially-filled buffer (tables in sorted order) and
// returns the documents completed, in Add order.
func (b *BulkLoader) Flush() ([]DocLoad, error) {
	tables := make([]string, 0, len(b.buffers))
	for t := range b.buffers {
		if len(b.buffers[t]) > 0 {
			tables = append(tables, t)
		}
	}
	sort.Strings(tables)
	for _, t := range tables {
		for len(b.buffers[t]) > 0 {
			if err := b.flushTable(t); err != nil {
				return b.release(), err
			}
		}
	}
	return b.release(), nil
}

// Close flushes all buffers and marks the loader closed. Every added
// document is released by a successful Close.
func (b *BulkLoader) Close() ([]DocLoad, error) {
	done, err := b.Flush()
	if err == nil {
		b.closed = true
	}
	return done, err
}

// Total reports the aggregate statistics of everything flushed so far. It
// equals the sum of the released DocLoads' Stats once all documents are
// released.
func (b *BulkLoader) Total() LoadStats { return b.total }

// Pending reports how many added documents have not been fully flushed yet.
func (b *BulkLoader) Pending() int { return len(b.fifo) }

// flushTable ships one batch — the oldest buffered items of the table, up
// to the flush threshold — and attributes its cost to the contributing
// documents. The posting caches are invalidated for every item in the
// attempted batch even when the put fails: a partial batch may have landed,
// and a stale cached posting is the one failure mode invalidation exists to
// prevent.
func (b *BulkLoader) flushTable(table string) error {
	buf := b.buffers[table]
	n := b.flushItems
	if n > len(buf) {
		n = len(buf)
	}
	if n == 0 {
		return nil
	}
	batch := make([]kv.Item, n)
	var bytes int64
	for i := 0; i < n; i++ {
		batch[i] = buf[i].item
		bytes += buf[i].size
	}
	defer func() {
		for _, c := range b.caches {
			for i := 0; i < n; i++ {
				c.Invalidate(table, buf[i].item.HashKey)
			}
		}
	}()
	d, err := b.store.BatchPut(table, batch)
	if err != nil {
		return err
	}
	b.total.Requests++
	b.total.Items += n
	b.total.Bytes += bytes
	b.metFlushes.Inc()
	b.metItems.Add(int64(n))
	b.metBytes.Add(bytes)
	b.metFlush.ObserveModeled(d)
	// The batch's one API call is charged to the first contributor; its
	// duration is split pro-rata by payload bytes. The telescoping-sum form
	// (share_i = d·cum_i/bytes − d·cum_{i−1}/bytes) makes integer-duration
	// shares sum exactly to d, so per-document upload times add up to the
	// total without rounding drift.
	buf[0].doc.stats.Requests++
	var cum int64
	var prev time.Duration
	for i := 0; i < n; i++ {
		it := buf[i]
		cum += it.size
		share := time.Duration(int64(d) * cum / bytes)
		it.doc.upload += share - prev
		prev = share
		it.doc.stats.Items++
		it.doc.stats.Bytes += it.size
		it.doc.pending--
	}
	b.buffers[table] = buf[n:]
	return nil
}

// release pops fully-flushed documents off the head of the FIFO, stopping
// at the first incomplete one. Releasing head-first (rather than any
// complete document) pins the release order to the Add order, which is what
// lets the indexing pipeline match DocLoads to its own in-flight queue
// positionally; a later document whose tables happen to have flushed simply
// waits for the head's partial batch, which Close always drains.
func (b *BulkLoader) release() []DocLoad {
	var done []DocLoad
	for len(b.fifo) > 0 {
		d := b.fifo[0]
		if !d.added || d.pending > 0 {
			break
		}
		done = append(done, DocLoad{URI: d.uri, Upload: d.upload, Stats: d.stats})
		b.fifo = b.fifo[1:]
	}
	return done
}
