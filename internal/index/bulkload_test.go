package index

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/kv"
	"repro/internal/meter"
	"repro/internal/xmark"
)

// extractCorpus parses and extracts a slice of generated documents.
func extractCorpus(t *testing.T, s Strategy, store kv.Store, docs []xmark.Doc) []*Extraction {
	t.Helper()
	opts := OptionsFor(store)
	exs := make([]*Extraction, len(docs))
	for i, gd := range docs {
		d := parseDoc(t, gd.URI, string(gd.Data))
		exs[i] = Extract(s, d, opts)
	}
	return exs
}

func testCorpus() []xmark.Doc {
	return xmark.Generate(xmark.Config{Docs: 24, TargetDocBytes: 2 << 10, Seed: 7})
}

// recordingStore sums the modeled durations of the BatchPuts that pass
// through it, so tests can check pro-rata attribution against the truth.
type recordingStore struct {
	kv.Store
	putTime  time.Duration
	putCalls int
}

func (r *recordingStore) BatchPut(table string, items []kv.Item) (time.Duration, error) {
	d, err := r.Store.BatchPut(table, items)
	if err == nil {
		r.putTime += d
		r.putCalls++
	}
	return d, err
}

// TestBulkLoaderMatchesWriteExtraction is the core equivalence property:
// for every strategy, bulk loading a corpus leaves the store byte-identical
// to per-document WriteExtraction, with identical aggregate entries, items
// and bytes, and with per-document attribution that sums exactly to the
// totals (requests to the call count, upload shares to the modeled time).
func TestBulkLoaderMatchesWriteExtraction(t *testing.T) {
	docs := testCorpus()
	for _, s := range All() {
		t.Run(s.Name(), func(t *testing.T) {
			perDoc := newStore(t, s)
			exs := extractCorpus(t, s, perDoc, docs)
			var want LoadStats
			for _, ex := range exs {
				_, st, err := WriteExtraction(perDoc, ex)
				if err != nil {
					t.Fatal(err)
				}
				want.Entries += st.Entries
				want.Items += st.Items
				want.Requests += st.Requests
				want.Bytes += st.Bytes
			}

			bulkBase := newStore(t, s)
			bulk := &recordingStore{Store: bulkBase}
			loader := NewBulkLoader(bulk, BulkOptions{})
			var done []DocLoad
			for _, ex := range exs {
				dls, err := loader.Add(ex)
				if err != nil {
					t.Fatal(err)
				}
				done = append(done, dls...)
			}
			dls, err := loader.Close()
			if err != nil {
				t.Fatal(err)
			}
			done = append(done, dls...)

			if len(done) != len(exs) {
				t.Fatalf("released %d docs, want %d", len(done), len(exs))
			}
			var got LoadStats
			var upload time.Duration
			for i, dl := range done {
				if dl.URI != exs[i].URI {
					t.Fatalf("doc %d released as %q, want %q (FIFO order)", i, dl.URI, exs[i].URI)
				}
				got.Entries += dl.Stats.Entries
				got.Items += dl.Stats.Items
				got.Requests += dl.Stats.Requests
				got.Bytes += dl.Stats.Bytes
				upload += dl.Upload
			}
			if got.Entries != want.Entries || got.Items != want.Items || got.Bytes != want.Bytes {
				t.Errorf("bulk stats %+v, per-doc %+v", got, want)
			}
			if got != loader.Total() {
				t.Errorf("summed doc stats %+v != loader total %+v", got, loader.Total())
			}
			if got.Requests != bulk.putCalls {
				t.Errorf("attributed requests %d, issued %d", got.Requests, bulk.putCalls)
			}
			if got.Requests >= want.Requests {
				t.Errorf("bulk requests %d not below per-doc %d", got.Requests, want.Requests)
			}
			if upload != bulk.putTime {
				t.Errorf("summed upload shares %v != modeled put time %v", upload, bulk.putTime)
			}

			for _, tbl := range s.Tables() {
				a := perDoc.(*kv.MemStore).DumpTable(tbl)
				b := bulkBase.(*kv.MemStore).DumpTable(tbl)
				if !reflect.DeepEqual(a, b) {
					t.Errorf("table %s differs between per-doc and bulk load", tbl)
				}
			}
		})
	}
}

// TestBulkLoaderRequestFloor checks that bulk loading packs every batch
// full: the request count hits the per-table floor of ceil(items/limit).
func TestBulkLoaderRequestFloor(t *testing.T) {
	docs := testCorpus()
	for _, s := range All() {
		store := newStore(t, s)
		exs := extractCorpus(t, s, store, docs)
		loader := NewBulkLoader(store, BulkOptions{})
		perTable := make(map[string]int)
		for _, ex := range exs {
			if _, err := loader.Add(ex); err != nil {
				t.Fatal(err)
			}
			budget := itemBudgetFor(store.Limits())
			for _, tbl := range sortedTables(ex) {
				for _, e := range ex.Tables[tbl] {
					perTable[tbl] += len(entryItems(ex.URI, tbl, e, budget))
				}
			}
		}
		if _, err := loader.Close(); err != nil {
			t.Fatal(err)
		}
		limit := store.Limits().BatchPutItems
		floor := 0
		for _, n := range perTable {
			floor += (n + limit - 1) / limit
		}
		if got := loader.Total().Requests; got != floor {
			t.Errorf("%s: requests %d, want packing floor %d", s.Name(), got, floor)
		}
	}
}

// TestBulkLoaderSmallFlushAndPending exercises a sub-limit flush threshold
// and the Pending/release bookkeeping.
func TestBulkLoaderSmallFlushAndPending(t *testing.T) {
	docs := testCorpus()[:6]
	store := newStore(t, LU)
	exs := extractCorpus(t, LU, store, docs)
	loader := NewBulkLoader(store, BulkOptions{FlushItems: 3})
	released := 0
	for _, ex := range exs {
		dls, err := loader.Add(ex)
		if err != nil {
			t.Fatal(err)
		}
		released += len(dls)
		if released+loader.Pending() != 0 && released+loader.Pending() > len(exs) {
			t.Fatalf("released %d + pending %d exceeds added docs", released, loader.Pending())
		}
	}
	dls, err := loader.Close()
	if err != nil {
		t.Fatal(err)
	}
	released += len(dls)
	if released != len(exs) || loader.Pending() != 0 {
		t.Fatalf("released %d (pending %d), want all %d", released, loader.Pending(), len(exs))
	}
	if _, err := loader.Add(exs[0]); !errors.Is(err, ErrLoaderClosed) {
		t.Errorf("Add after Close = %v, want ErrLoaderClosed", err)
	}
}

// failingStore fails every BatchPut after the first n.
type failingStore struct {
	kv.Store
	allow int
}

func (f *failingStore) BatchPut(table string, items []kv.Item) (time.Duration, error) {
	if f.allow <= 0 {
		return 0, fmt.Errorf("injected put failure")
	}
	f.allow--
	return f.Store.BatchPut(table, items)
}

// TestBulkLoaderInvalidatesCacheOnFailedFlush: even when a flush fails
// mid-way, every key of the attempted batch must be invalidated in the
// posting caches — a partially landed batch with a stale cached posting is
// the §5d failure mode cache invalidation exists to prevent.
func TestBulkLoaderInvalidatesCacheOnFailedFlush(t *testing.T) {
	docs := testCorpus()[:4]
	base := newStore(t, LU)
	exs := extractCorpus(t, LU, base, docs)
	store := &failingStore{Store: base, allow: 0}
	cache := NewPostingCache(1 << 20)
	table := LU.Tables()[0]

	// Warm the cache with every key the corpus touches.
	keys := make(map[string]bool)
	for _, ex := range exs {
		for _, e := range ex.Tables[table] {
			keys[e.Key] = true
		}
	}
	for k := range keys {
		cache.put(cacheKey{table: table, key: k, kind: URIPosting}, map[string]*Posting{"x": {URI: "x"}})
	}

	loader := NewBulkLoader(store, BulkOptions{}, cache)
	var flushErr error
	for _, ex := range exs {
		if _, err := loader.Add(ex); err != nil {
			flushErr = err
			break
		}
	}
	if flushErr == nil {
		if _, err := loader.Flush(); err != nil {
			flushErr = err
		}
	}
	if flushErr == nil {
		t.Fatal("expected an injected flush failure")
	}
	// Every key of the first (failed) batch must be gone from the cache.
	// The failed batch is a prefix of the corpus' items in Add order.
	limit := base.Limits().BatchPutItems
	budget := itemBudgetFor(base.Limits())
	checked := 0
	for _, ex := range exs {
		for _, e := range ex.Tables[table] {
			for range entryItems(ex.URI, table, e, budget) {
				if checked < limit {
					if _, ok := cache.get(cacheKey{table: table, key: e.Key, kind: URIPosting}); ok {
						t.Fatalf("key %q still cached after failed flush", e.Key)
					}
				}
				checked++
			}
		}
	}
	if checked < limit {
		t.Fatalf("corpus too small to fill a batch (%d items)", checked)
	}
}

// TestBulkLoaderRetryIdempotent re-adds the same documents after a failed
// flush (the redelivery path) and checks the store converges to the clean
// result — the composition with PR 2's exactly-once guarantees.
func TestBulkLoaderRetryIdempotent(t *testing.T) {
	docs := testCorpus()[:8]
	clean := newStore(t, LUI)
	exs := extractCorpus(t, LUI, clean, docs)
	for _, ex := range exs {
		if _, _, err := WriteExtraction(clean, ex); err != nil {
			t.Fatal(err)
		}
	}

	base := newStore(t, LUI)
	flaky := &failingStore{Store: base, allow: 2} // fail after two batches land
	loader := NewBulkLoader(flaky, BulkOptions{})
	failed := false
	for _, ex := range exs {
		if _, err := loader.Add(ex); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		if _, err := loader.Close(); err != nil {
			failed = true
		}
	}
	if !failed {
		t.Fatal("expected the flaky store to fail a flush")
	}
	// "Redeliver" the whole corpus to a fresh loader on the now-healthy
	// store: idempotent range keys make the rewrite converge.
	flaky.allow = 1 << 30
	retry := NewBulkLoader(flaky, BulkOptions{})
	for _, ex := range exs {
		if _, err := retry.Add(ex); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := retry.Close(); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range LUI.Tables() {
		a := clean.(*kv.MemStore).DumpTable(tbl)
		b := base.(*kv.MemStore).DumpTable(tbl)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("table %s did not converge after retry", tbl)
		}
	}
}

// TestBulkLoaderMeteredRequests confirms the ledger sees exactly the bulk
// request count (the quantity the cost model bills).
func TestBulkLoaderMeteredRequests(t *testing.T) {
	docs := testCorpus()
	ledger := meter.NewLedger()
	store := dynamodb.New(ledger)
	if err := CreateTables(store, LU); err != nil {
		t.Fatal(err)
	}
	exs := extractCorpus(t, LU, store, docs)
	loader := NewBulkLoader(store, BulkOptions{})
	for _, ex := range exs {
		if _, err := loader.Add(ex); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := loader.Close(); err != nil {
		t.Fatal(err)
	}
	billed := ledger.Snapshot().Get(dynamodb.Backend, "put").Calls
	if billed != int64(loader.Total().Requests) {
		t.Errorf("ledger billed %d put calls, loader reports %d", billed, loader.Total().Requests)
	}
}
