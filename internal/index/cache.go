package index

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/cloud/kv"
)

// This file implements the hot-key posting cache. The paper's look-up cost
// is dominated by index-store round trips (the "DynamoDB get" bar of
// Figure 9b/c), and real workloads hit a small set of keys — element labels
// and frequent words — over and over. Caching the *decoded* postings of a
// (table, key, kind) triple removes both the store round trip and the
// decode work for repeated look-ups.
//
// Coherence with the cost model: a cache hit issues no store request, so it
// must contribute nothing to GetOps, GetTime or BytesFetched — the billed
// quantities of Section 7. Hits, misses and evictions are reported
// separately through LookupStats so experiments can tell the two apart.
//
// Coherence with writers: WriteExtraction and DeleteDocument invalidate
// every (table, key) they touch after mutating the store, so a subsequent
// look-up refetches fresh postings. Cached postings are shared read-only
// between look-ups and must not be mutated by readers.

// cacheKey identifies one cached read: a hash key of a table, decoded under
// one posting kind. When the cache fronts a sharded store (SetStoreShards),
// the store shard the key routes to becomes part of the identity, so an
// entry cached for shard k can only ever be hit or invalidated through
// shard k — a write routed to one partition cannot leave a stale entry
// attributed to another.
type cacheKey struct {
	table string
	key   string
	kind  PostingKind
	shard int
	// ver is the key's write-buffer overlay stamp when the cache fronts a
	// mutable corpus (0 otherwise, and for keys no mutation ever touched).
	// A replace entry or a compaction fold advances the stamp, so reads
	// pinned after the mutation key a fresh entry while reads pinned
	// before keep hitting the old one — version coherence without
	// explicit invalidation. Live tombstones deliberately do not advance
	// the stamp: deletions are subtracted from the shared carrier entry
	// at posting-decode time.
	ver uint64
}

// cacheEntry is one resident posting set with its approximate byte cost.
type cacheEntry struct {
	key      cacheKey
	postings map[string]*Posting
	bytes    int64
}

// cacheShard is an independently locked LRU over a slice of the key space.
type cacheShard struct {
	mu      sync.Mutex
	entries map[cacheKey]*list.Element
	lru     *list.List // front = most recently used
	bytes   int64
	budget  int64
}

// cacheShards is fixed so that the shard of a key is a pure function of the
// key; 16 spreads contention well past the worker-pool sizes used here.
const cacheShards = 16

// DefaultCacheBytes is the capacity used when NewPostingCache is given a
// non-positive budget.
const DefaultCacheBytes = 64 << 20

// PostingCache is a size-bounded, sharded LRU cache of decoded index
// postings, keyed by (table, key, kind). It is safe for concurrent use.
// A single cache must only ever front a single store: keys do not embed a
// store identity.
type PostingCache struct {
	shards    [cacheShards]cacheShard
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	// storeShards is the shard count of the fronted store (0 or 1 when
	// unsharded); see SetStoreShards.
	storeShards atomic.Int32
}

// SetStoreShards tells the cache how many partitions the fronted store
// hashes its keys across. Every get, put and invalidation then derives the
// key's store shard with the same routing hash the store uses
// (kv.ShardIndex) and folds it into the cache identity. Call it once at
// wiring time, before the cache serves traffic.
func (c *PostingCache) SetStoreShards(n int) {
	if n < 0 {
		n = 0
	}
	c.storeShards.Store(int32(n))
}

// keyShard resolves the store shard a hash key routes to (0 when the
// fronted store is unsharded).
func (c *PostingCache) keyShard(key string) int {
	return kv.ShardIndex(key, int(c.storeShards.Load()))
}

// NewPostingCache returns a cache bounded to roughly maxBytes of decoded
// postings (<=0 selects DefaultCacheBytes). The bound is split evenly
// across shards, so a single entry larger than maxBytes/16 is never
// retained.
func NewPostingCache(maxBytes int64) *PostingCache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	c := &PostingCache{}
	per := maxBytes / cacheShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = cacheShard{entries: make(map[cacheKey]*list.Element), lru: list.New(), budget: per}
	}
	return c
}

// shardOf hashes the key to its shard (FNV-1a over the fields).
func (c *PostingCache) shardOf(k cacheKey) *cacheShard {
	h := uint32(2166136261)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint32(s[i])
			h *= 16777619
		}
	}
	mix(k.table)
	h ^= uint32(k.kind)
	h *= 16777619
	mix(k.key)
	return &c.shards[h%cacheShards]
}

// get returns the cached postings for the key, or (nil, false). The
// returned map is shared: callers must treat it as immutable.
func (c *PostingCache) get(k cacheKey) (map[string]*Posting, bool) {
	k.shard = c.keyShard(k.key)
	sh := c.shardOf(k)
	sh.mu.Lock()
	el, ok := sh.entries[k]
	if ok {
		sh.lru.MoveToFront(el)
	}
	sh.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*cacheEntry).postings, true
}

// put inserts (or replaces) the postings of a key and returns how many
// entries were evicted to make room.
func (c *PostingCache) put(k cacheKey, postings map[string]*Posting) int64 {
	k.shard = c.keyShard(k.key)
	e := &cacheEntry{key: k, postings: postings, bytes: postingsBytes(k, postings)}
	sh := c.shardOf(k)
	sh.mu.Lock()
	if old, ok := sh.entries[k]; ok {
		sh.bytes -= old.Value.(*cacheEntry).bytes
		sh.lru.Remove(old)
		delete(sh.entries, k)
	}
	var evicted int64
	if e.bytes <= sh.budget {
		sh.entries[k] = sh.lru.PushFront(e)
		sh.bytes += e.bytes
		for sh.bytes > sh.budget {
			back := sh.lru.Back()
			if back == nil || back.Value.(*cacheEntry) == e {
				break
			}
			v := back.Value.(*cacheEntry)
			sh.lru.Remove(back)
			delete(sh.entries, v.key)
			sh.bytes -= v.bytes
			evicted++
		}
	}
	sh.mu.Unlock()
	c.evictions.Add(evicted)
	return evicted
}

// Invalidate drops every cached kind of one (table, key) pair — at every
// overlay stamp, since a direct store write invalidates all versioned
// carriers of the key. Writers call it after mutating the store so readers
// refetch fresh postings.
func (c *PostingCache) Invalidate(table, key string) {
	shard := c.keyShard(key)
	for _, kind := range []PostingKind{URIPosting, PathPosting, IDPosting} {
		k := cacheKey{table: table, key: key, kind: kind, shard: shard}
		sh := c.shardOf(k)
		sh.mu.Lock()
		if el, ok := sh.entries[k]; ok {
			sh.bytes -= el.Value.(*cacheEntry).bytes
			sh.lru.Remove(el)
			delete(sh.entries, k)
		}
		// Versioned entries (mutable corpora) share the shard with the
		// unversioned one; sweep any stamp of this (table, key, kind).
		for vk, el := range sh.entries {
			if vk.table == k.table && vk.key == k.key && vk.kind == k.kind {
				sh.bytes -= el.Value.(*cacheEntry).bytes
				sh.lru.Remove(el)
				delete(sh.entries, vk)
			}
		}
		sh.mu.Unlock()
	}
}

// InvalidateExtraction drops every (table, key) an extraction touches; it
// is the invalidation hook WriteExtraction and DeleteDocument call.
func (c *PostingCache) InvalidateExtraction(ex *Extraction) {
	if c == nil || ex == nil {
		return
	}
	for table, entries := range ex.Tables {
		for _, e := range entries {
			c.Invalidate(table, e.Key)
		}
	}
}

// Len returns the number of resident entries.
func (c *PostingCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Bytes returns the approximate resident posting bytes.
func (c *PostingCache) Bytes() int64 {
	var n int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}

// Counters returns the lifetime hit / miss / eviction totals.
func (c *PostingCache) Counters() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// postingsBytes approximates the resident size of a decoded posting set:
// key bytes, URI bytes, path bytes, and the identifiers. A blocked posting
// is charged its compressed payload, its headers, and the decoded width of
// every identifier — blocks decode lazily but the memo retains them, so
// the eventual resident size is what the budget must account for (and the
// charge stays a pure function of the content, keeping eviction, and the
// LookupStats that report it, deterministic).
func postingsBytes(k cacheKey, postings map[string]*Posting) int64 {
	n := int64(len(k.table) + len(k.key) + 1)
	for uri, p := range postings {
		n += int64(len(uri) + len(p.URI))
		for _, v := range p.PathVals {
			n += int64(len(v))
		}
		n += int64(p.IDCount()) * 12 // pre, post, depth int32
		if p.IDs == nil && p.blocked != nil {
			n += p.blocked.PayloadBytes() + int64(p.blocked.Blocks())*48
		}
		n += 48 // map slot and struct overhead
	}
	return n
}
