package index

import (
	"testing"

	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/kv"
	"repro/internal/meter"
	"repro/internal/xmark"
)

// These tests pin the (table, shard) keying of the posting cache: once the
// cache fronts a hash-partitioned store, the store shard a key routes to is
// part of the cache identity, so a stale entry attributed to shard k cannot
// survive a write routed to shard k — whether the write goes through
// WriteExtraction or the bulk loader.

// shardedCacheSetup indexes one document into a 4-way sharded store with a
// shard-aware cache and picks a key that more documents will touch.
func shardedCacheSetup(t *testing.T, s Strategy) (kv.Store, *PostingCache, []*Extraction, string, string) {
	t.Helper()
	docs := xmark.Generate(xmark.Config{Docs: 4, TargetDocBytes: 2 << 10, Seed: 11})
	store := kv.NewSharded(dynamodb.New(meter.NewLedger()), 4)
	if err := CreateTables(store, s); err != nil {
		t.Fatal(err)
	}
	cache := NewPostingCache(1 << 20)
	cache.SetStoreShards(4)
	opts := OptionsFor(store)
	exs := make([]*Extraction, len(docs))
	for i, gd := range docs {
		exs[i] = Extract(s, parseDoc(t, gd.URI, string(gd.Data)), opts)
	}
	table := s.Tables()[0]
	// A key both doc 0 and doc 1 contribute to, preferring one that routes
	// to a non-zero shard so the test exercises a partition an unsharded
	// cache key could never name.
	keys := func(ex *Extraction) map[string]bool {
		m := make(map[string]bool)
		for _, e := range ex.Tables[table] {
			m[e.Key] = true
		}
		return m
	}
	k0, k1 := keys(exs[0]), keys(exs[1])
	var key string
	for k := range k0 {
		if !k1[k] {
			continue
		}
		if key == "" || (kv.ShardIndex(key, 4) == 0 && kv.ShardIndex(k, 4) != 0) {
			key = k
		}
	}
	if key == "" {
		t.Fatal("no shared key between the first two documents")
	}
	if _, _, err := WriteExtraction(store, exs[0], cache); err != nil {
		t.Fatal(err)
	}
	return store, cache, exs, table, key
}

// readThrough fetches one key's postings through the cache.
func readThrough(t *testing.T, store kv.Store, cache *PostingCache, table, key string) map[string]*Posting {
	t.Helper()
	out, _, err := ReadKeys(store, table, []string{key}, URIPosting, false, LookupOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	return out[key]
}

func TestShardedCacheInvalidationOnWrite(t *testing.T) {
	store, cache, exs, table, key := shardedCacheSetup(t, LU)

	first := readThrough(t, store, cache, table, key)
	if first[exs[0].URI] == nil {
		t.Fatalf("first read missing %s", exs[0].URI)
	}
	hitsBefore, _, _ := cache.Counters()
	readThrough(t, store, cache, table, key)
	hitsAfter, _, _ := cache.Counters()
	if hitsAfter != hitsBefore+1 {
		t.Fatalf("second read should hit the cache (hits %d -> %d)", hitsBefore, hitsAfter)
	}

	// A write routed through the sharded store must invalidate the entry on
	// the shard the key lives on; the next read sees the new document.
	if _, _, err := WriteExtraction(store, exs[1], cache); err != nil {
		t.Fatal(err)
	}
	third := readThrough(t, store, cache, table, key)
	if third[exs[1].URI] == nil {
		t.Errorf("stale cache entry on shard %d survived a write routed to it", kv.ShardIndex(key, 4))
	}
	if third[exs[0].URI] == nil {
		t.Errorf("read after invalidation lost the earlier document")
	}
}

func TestShardedCacheInvalidationViaBulkLoader(t *testing.T) {
	store, cache, exs, table, key := shardedCacheSetup(t, LU)

	readThrough(t, store, cache, table, key) // warm the entry

	loader := NewBulkLoader(store, BulkOptions{}, cache)
	if _, err := loader.Add(exs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Close(); err != nil {
		t.Fatal(err)
	}
	got := readThrough(t, store, cache, table, key)
	if got[exs[1].URI] == nil {
		t.Errorf("bulk-loaded write did not invalidate the cached entry on shard %d", kv.ShardIndex(key, 4))
	}
}

// TestCacheShardIsPartOfIdentity checks the keying directly: an entry
// cached while the store was unsharded (shard 0) must not be served for the
// same (table, key, kind) once the key routes to a different shard.
func TestCacheShardIsPartOfIdentity(t *testing.T) {
	// Find a key that routes off shard 0 under 4-way sharding.
	key := ""
	for _, k := range []string{"site", "item", "person", "mailbox", "region"} {
		if kv.ShardIndex(k, 4) != 0 {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no sample key routes off shard 0")
	}
	c := NewPostingCache(1 << 20)
	c.SetStoreShards(1)
	ck := cacheKey{table: "t", key: key, kind: URIPosting}
	c.put(ck, map[string]*Posting{"doc" + string(URIPosting): {URI: "doc"}})
	if _, ok := c.get(ck); !ok {
		t.Fatal("entry not resident under the shard it was cached for")
	}
	c.SetStoreShards(4)
	if _, ok := c.get(ck); ok {
		t.Errorf("entry cached for shard 0 served for shard %d", kv.ShardIndex(key, 4))
	}
	// Invalidation through the new shard count must clear a fresh entry.
	c.put(ck, map[string]*Posting{"doc": {URI: "doc"}})
	c.Invalidate("t", key)
	if _, ok := c.get(ck); ok {
		t.Error("Invalidate missed the entry on the key's shard")
	}
}
