package index

import (
	"time"

	"repro/internal/cloud/kv"
	"repro/internal/xmltree"
)

// Document removal — an extension beyond the paper, whose warehouse is
// append-only. The mapping of Section 6 makes removal possible without any
// auxiliary structure: every index item stores its document's URI as the
// attribute name, so the items of a document d under key k are exactly the
// items with hash key k whose attribute is URI(d). Removal re-extracts
// I(d) from the document (the caller fetches it from the file store before
// dropping it there), then deletes those items by full primary key.

// DeleteStats summarizes one document's index removal.
type DeleteStats struct {
	Keys         int // index keys visited
	ItemsDeleted int
}

// DeleteDocument removes every index item of the document under the
// strategy. It is idempotent: deleting an unindexed document is a no-op.
// Any posting caches fronting the store must be passed so their entries for
// the touched keys are invalidated (even on error, since some items may
// already be gone).
func DeleteDocument(store kv.Store, s Strategy, doc *xmltree.Document, opts Options, caches ...*PostingCache) (time.Duration, DeleteStats, error) {
	ex := Extract(s, doc, opts)
	defer func() {
		for _, c := range caches {
			c.InvalidateExtraction(ex)
		}
	}()
	var (
		total time.Duration
		st    DeleteStats
	)
	for _, table := range sortedTables(ex) {
		for _, e := range ex.Tables[table] {
			st.Keys++
			items, d, err := store.Get(table, e.Key)
			if err != nil {
				return total, st, err
			}
			total += d
			for _, it := range items {
				if len(it.Attrs) != 1 || it.Attrs[0].Name != doc.URI {
					continue
				}
				d, err := store.DeleteItem(table, it.HashKey, it.RangeKey)
				if err != nil {
					return total, st, err
				}
				total += d
				st.ItemsDeleted++
			}
		}
	}
	return total, st, nil
}
