package index

import (
	"reflect"
	"testing"

	"repro/internal/cloud/dynamodb"
	"repro/internal/meter"
	"repro/internal/pattern"
	"repro/internal/xmark"
)

func TestDeleteDocumentRemovesOnlyItsItems(t *testing.T) {
	for _, s := range All() {
		store := dynamodb.New(meter.NewLedger())
		if err := CreateTables(store, s); err != nil {
			t.Fatal(err)
		}
		opts := OptionsFor(store)
		docs := xmark.Paintings()
		for _, gd := range docs {
			d := parseDoc(t, gd.URI, string(gd.Data))
			if _, _, err := LoadDocument(store, s, d, opts); err != nil {
				t.Fatal(err)
			}
		}
		itemsBefore := int64(0)
		for _, tbl := range s.Tables() {
			itemsBefore += store.ItemCount(tbl)
		}

		// Remove delacroix.xml; "The Lion Hunt Fragment" remains.
		victim := parseDoc(t, "delacroix.xml", xmark.DelacroixXML)
		_, st, err := DeleteDocument(store, s, victim, opts)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if st.ItemsDeleted == 0 {
			t.Fatalf("%s: nothing deleted", s.Name())
		}
		itemsAfter := int64(0)
		for _, tbl := range s.Tables() {
			itemsAfter += store.ItemCount(tbl)
		}
		if itemsAfter != itemsBefore-int64(st.ItemsDeleted) {
			t.Errorf("%s: items %d -> %d but deleted %d", s.Name(), itemsBefore, itemsAfter, st.ItemsDeleted)
		}

		q := pattern.MustParse(`//painting[/name~"Lion"]`).Patterns[0]
		uris, _, err := LookupPattern(store, s, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(uris, []string{"painting-1861-1.xml"}) {
			t.Errorf("%s: lookup after delete = %v", s.Name(), uris)
		}

		// Idempotent: deleting again removes nothing.
		_, st2, err := DeleteDocument(store, s, victim, opts)
		if err != nil {
			t.Fatal(err)
		}
		if st2.ItemsDeleted != 0 {
			t.Errorf("%s: second delete removed %d items", s.Name(), st2.ItemsDeleted)
		}
	}
}

func TestDeleteItemAccounting(t *testing.T) {
	store := dynamodb.New(meter.NewLedger())
	store.CreateTable("t")
	d := parseDoc(t, "manet.xml", xmark.ManetXML)
	if err := CreateTables(store, LU); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadDocument(store, LU, d, OptionsFor(store)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DeleteDocument(store, LU, d, OptionsFor(store)); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range LU.Tables() {
		if got := store.ItemCount(tbl); got != 0 {
			t.Errorf("%s: %d items left", tbl, got)
		}
		if got := store.TableBytes(tbl); got != 0 {
			t.Errorf("%s: %d bytes left", tbl, got)
		}
		if got := store.OverheadBytes(tbl); got != 0 {
			t.Errorf("%s: %d overhead bytes left", tbl, got)
		}
	}
}
