package index_test

import (
	"fmt"

	"repro/internal/cloud/dynamodb"
	"repro/internal/index"
	"repro/internal/meter"
	"repro/internal/pattern"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

// Extracting the Figure 3 document under LUP produces exactly the Figure 4
// entries: every key maps to the document's label paths.
func ExampleExtract() {
	doc, _ := xmltree.Parse("manet.xml", []byte(xmark.ManetXML))
	ex := index.Extract(index.LUP, doc, index.DefaultOptions())
	for _, e := range ex.Tables[index.LUP.Tables()[0]] {
		if e.Key == "wOlympia" || e.Key == "aid 1863-1" {
			fmt.Printf("%s -> %s\n", e.Key, e.Values[0])
		}
	}
	// Output:
	// aid 1863-1 -> /epainting/aid 1863-1
	// wOlympia -> /epainting/ename/wOlympia
}

// The full index-side round trip: load documents into the key-value store,
// then look a query up under each strategy.
func ExampleLookupPattern() {
	store := dynamodb.New(meter.NewLedger())
	for _, s := range index.All() {
		index.CreateTables(store, s)
	}
	for _, gd := range xmark.Paintings() {
		doc, _ := xmltree.Parse(gd.URI, gd.Data)
		for _, s := range index.All() {
			index.LoadDocument(store, s, doc, index.OptionsFor(store))
		}
	}
	q := pattern.MustParse(`//painting[/name~"Lion", /painter[/name[/last]]]`).Patterns[0]
	for _, s := range index.All() {
		uris, stats, _ := index.LookupPattern(store, s, q)
		fmt.Printf("%-5s -> %d documents (%d index gets)\n", s.Name(), len(uris), stats.GetOps)
	}
	// Output:
	// LU    -> 2 documents (5 index gets)
	// LUP   -> 2 documents (2 index gets)
	// LUI   -> 2 documents (5 index gets)
	// 2LUPI -> 2 documents (7 index gets)
}
