package index

import (
	"fmt"
	"strings"

	"repro/internal/pattern"
)

// ExplainLookup renders the physical look-up plan of a query under a
// strategy, pattern by pattern — the textual counterpart of Figure 5's
// plan outline. It shows exactly which index keys are fetched, which query
// paths are matched, and where intersections, semijoin reductions and the
// holistic twig join happen.
func ExplainLookup(s Strategy, q *pattern.Query) string {
	var b strings.Builder
	fmt.Fprintf(&b, "look-up plan, strategy %s\n", s.Name())
	for i, t := range q.Patterns {
		if len(q.Patterns) > 1 {
			fmt.Fprintf(&b, "pattern %d: %s\n", i+1, renderTree(t))
		}
		explainPattern(&b, s, t)
	}
	if len(q.Joins) > 0 {
		b.WriteString("then: evaluate each tree pattern on its document set and apply the value joins (Section 5.5):\n")
		for _, j := range q.Joins {
			fmt.Fprintf(&b, "  $%s = $%s\n", j.A, j.B)
		}
	}
	return b.String()
}

func renderTree(t *pattern.Tree) string {
	q := &pattern.Query{Patterns: []*pattern.Tree{t}}
	return q.String()
}

func explainPattern(b *strings.Builder, s Strategy, t *pattern.Tree) {
	aug := augment(t)
	hasRange := false
	t.Walk(func(n *pattern.Node) {
		if n.Pred.Kind == pattern.Range {
			hasRange = true
		}
	})
	if hasRange {
		b.WriteString("  note: range predicates are ignored at look-up and applied by the engine\n")
	}
	switch s {
	case LU:
		fmt.Fprintf(b, "  get(%s, k) for k in {%s}\n", s.TableName(flatTable), strings.Join(aug.distinctKeys(), ", "))
		b.WriteString("  intersect the URI sets\n")
	case LUP:
		explainPaths(b, s.pathTableName(), aug)
		b.WriteString("  intersect the per-path URI sets\n")
	case LUI:
		explainTwig(b, s.idTableName(), aug)
	case TwoLUPI:
		b.WriteString("  phase 1 (LUP):\n")
		explainPaths(b, s.pathTableName(), aug)
		b.WriteString("  intersect -> R1(URI)\n")
		b.WriteString("  phase 2 (LUI):\n")
		explainTwig(b, s.idTableName(), aug)
		b.WriteString("  semijoin each identifier relation with R1 before the twig join (Figure 5)\n")
	}
}

func explainPaths(b *strings.Builder, table string, aug *augmented) {
	for _, qp := range aug.queryPaths() {
		var path strings.Builder
		for _, st := range qp {
			path.WriteString(st.Axis.String())
			path.WriteString(st.Key)
		}
		fmt.Fprintf(b, "  get(%s, %q) -> keep URIs with a data path matching %s\n",
			table, qp[len(qp)-1].Key, path.String())
	}
}

func explainTwig(b *strings.Builder, table string, aug *augmented) {
	fmt.Fprintf(b, "  get(%s, k) for k in {%s} -> per-URI identifier streams (sorted by pre)\n",
		table, strings.Join(aug.distinctKeys(), ", "))
	b.WriteString("  holistic twig join per candidate URI\n")
}
