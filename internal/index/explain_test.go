package index

import (
	"strings"
	"testing"

	"repro/internal/pattern"
)

func TestExplainLookupCoversAllStrategies(t *testing.T) {
	q := pattern.MustParse(`//painting[/name~"Lion", /year{val} in ("1854","1865"]]`)
	for _, s := range All() {
		out := ExplainLookup(s, q)
		if !strings.Contains(out, s.Name()) {
			t.Errorf("%s: plan missing strategy name:\n%s", s.Name(), out)
		}
		if !strings.Contains(out, "range predicates are ignored") {
			t.Errorf("%s: plan missing the Section 5.5 range note:\n%s", s.Name(), out)
		}
		if !strings.Contains(out, "wLion") {
			t.Errorf("%s: plan missing the word key:\n%s", s.Name(), out)
		}
	}
	lu := ExplainLookup(LU, q)
	if !strings.Contains(lu, "intersect") {
		t.Errorf("LU plan missing intersection:\n%s", lu)
	}
	lup := ExplainLookup(LUP, q)
	// The word step descends from the element (its text may be nested).
	if !strings.Contains(lup, "//epainting/ename//wLion") {
		t.Errorf("LUP plan missing the query path:\n%s", lup)
	}
	lui := ExplainLookup(LUI, q)
	if !strings.Contains(lui, "holistic twig join") {
		t.Errorf("LUI plan missing the twig join:\n%s", lui)
	}
	two := ExplainLookup(TwoLUPI, q)
	for _, want := range []string{"phase 1", "phase 2", "R1", "semijoin", "Figure 5"} {
		if !strings.Contains(two, want) {
			t.Errorf("2LUPI plan missing %q:\n%s", want, two)
		}
	}
}

func TestExplainLookupJoins(t *testing.T) {
	q := pattern.MustParse(`//a[/@id $x], //b[/@id $y] where $x = $y`)
	out := ExplainLookup(LUP, q)
	if !strings.Contains(out, "pattern 1") || !strings.Contains(out, "pattern 2") {
		t.Errorf("multi-pattern plan missing pattern sections:\n%s", out)
	}
	if !strings.Contains(out, "$x = $y") {
		t.Errorf("plan missing the join condition:\n%s", out)
	}
}
