package index

import (
	"fmt"
	"sort"

	"repro/internal/xmltree"
)

// Strategy enumerates the paper's indexing strategies (Table 2).
type Strategy uint8

const (
	// LU associates key(n) -> (URI(d), ε).
	LU Strategy = iota
	// LUP associates key(n) -> (URI(d), {inPath_1(n) ... inPath_y(n)}).
	LUP
	// LUI associates key(n) -> (URI(d), id_1(n)‖...‖id_z(n)), identifiers
	// sorted by pre.
	LUI
	// TwoLUPI ("2LUPI") materializes both the LUP and the LUI indexes.
	TwoLUPI
)

// All returns the strategies in the order the paper's tables list them.
func All() []Strategy { return []Strategy{LU, LUP, LUI, TwoLUPI} }

// Name returns the paper's name for the strategy.
func (s Strategy) Name() string {
	switch s {
	case LU:
		return "LU"
	case LUP:
		return "LUP"
	case LUI:
		return "LUI"
	case TwoLUPI:
		return "2LUPI"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// ByName resolves a strategy name ("LU", "LUP", "LUI", "2LUPI").
func ByName(name string) (Strategy, error) {
	for _, s := range All() {
		if s.Name() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("index: unknown strategy %q", name)
}

// Sub-index table roles.
const (
	pathTable = "paths"
	idTable   = "ids"
	flatTable = "entries"
)

// Tables lists the store tables the strategy maintains. LU, LUP and LUI use
// a single table; 2LUPI uses one per sub-index (Section 6).
func (s Strategy) Tables() []string {
	switch s {
	case TwoLUPI:
		return []string{s.TableName(pathTable), s.TableName(idTable)}
	default:
		return []string{s.TableName(flatTable)}
	}
}

// TableName forms the table name of a sub-index.
func (s Strategy) TableName(role string) string {
	return "idx_" + s.Name() + "_" + role
}

// pathTableName returns the table holding path entries, or "" if the
// strategy stores none.
func (s Strategy) pathTableName() string {
	switch s {
	case LUP:
		return s.TableName(flatTable)
	case TwoLUPI:
		return s.TableName(pathTable)
	}
	return ""
}

// idTableName returns the table holding identifier entries, or "".
func (s Strategy) idTableName() string {
	switch s {
	case LUI:
		return s.TableName(flatTable)
	case TwoLUPI:
		return s.TableName(idTable)
	}
	return ""
}

// luTableName returns the table holding bare URI entries, or "".
func (s Strategy) luTableName() string {
	if s == LU {
		return s.TableName(flatTable)
	}
	return ""
}

// Entry is one index entry for one document: the key plus the values to be
// stored under the attribute named URI(d).
type Entry struct {
	Key    string
	Values [][]byte
}

// Extraction is the result of Extract: entries grouped by store table, in
// deterministic (sorted-key) order, plus summary metrics.
type Extraction struct {
	URI     string
	Tables  map[string][]Entry
	Entries int   // total entries across tables
	Bytes   int64 // total key+value payload (the raw index size sr(D,I))
}

// Options tunes extraction for the target store.
type Options struct {
	// BinaryIDs selects the compressed binary identifier codec (DynamoDB);
	// text otherwise (SimpleDB).
	BinaryIDs bool
	// MaxValueBytes caps a single stored value; identifier sets and path
	// lists split across several values/items beyond it.
	MaxValueBytes int
	// SkipWords disables full-text (w‖word) keys, the "without keywords"
	// index variant of Figure 8.
	SkipWords bool
	// CompressPaths front-codes LUP/2LUPI path lists (the improvement the
	// paper's conclusion suggests). Compressed and plain entries can
	// coexist; readers decode transparently.
	CompressPaths bool
	// IDPayload selects the blocked-blob payload family for binary
	// identifier sets. The zero value emits bit-packed frame-of-reference
	// payloads; PayloadVarint pins the version-1 delta+varint blobs.
	// Readers decode every format regardless.
	IDPayload IDPayload
}

// DefaultOptions returns extraction options for a DynamoDB-backed index.
func DefaultOptions() Options {
	return Options{BinaryIDs: true, MaxValueBytes: 48 << 10}
}

// keyInfo accumulates everything indexable about one key of one document.
type keyInfo struct {
	paths map[string]bool
	ids   []xmltree.NodeID
}

// Extract computes I(d) for the strategy (Table 2).
func Extract(s Strategy, doc *xmltree.Document, opts Options) *Extraction {
	if opts.MaxValueBytes == 0 {
		opts.MaxValueBytes = DefaultOptions().MaxValueBytes
	}
	infos := collect(doc, opts.SkipWords)
	keys := make([]string, 0, len(infos))
	for k := range infos {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	ex := &Extraction{URI: doc.URI, Tables: make(map[string][]Entry)}
	add := func(table string, e Entry) {
		if table == "" {
			return
		}
		ex.Tables[table] = append(ex.Tables[table], e)
		ex.Entries++
		ex.Bytes += int64(len(e.Key))
		for _, v := range e.Values {
			ex.Bytes += int64(len(v))
		}
	}
	for _, k := range keys {
		info := infos[k]
		add(s.luTableName(), Entry{Key: k, Values: [][]byte{nil}})
		if t := s.pathTableName(); t != "" {
			paths := make([]string, 0, len(info.paths))
			for p := range info.paths {
				paths = append(paths, p)
			}
			sort.Strings(paths)
			values := make([][]byte, len(paths))
			var plainBytes int64
			for i, p := range paths {
				values[i] = []byte(p)
				plainBytes += int64(len(p))
			}
			if opts.CompressPaths {
				// Adaptive: front-coding pays a header per path, so short
				// single-path lists can come out larger — keep whichever
				// encoding is smaller (readers handle both).
				comp := EncodePathsCompressed(paths, opts.MaxValueBytes)
				var compBytes int64
				for _, v := range comp {
					compBytes += int64(len(v))
				}
				if compBytes < plainBytes {
					values = comp
				}
			}
			add(t, Entry{Key: k, Values: values})
		}
		if t := s.idTableName(); t != "" {
			add(t, Entry{Key: k, Values: EncodeIDsPayload(info.ids, opts.BinaryIDs, opts.MaxValueBytes, opts.IDPayload)})
		}
	}
	return ex
}

// collect gathers, in one pass over the document, the paths and sorted
// identifier lists of every key. Nodes are visited in pre order, so each
// key's identifier list is already sorted by pre — the property the LUI
// look-up relies on to avoid sort operators (Section 5.3).
func collect(doc *xmltree.Document, skipWords bool) map[string]*keyInfo {
	infos := make(map[string]*keyInfo)
	get := func(k string) *keyInfo {
		info, ok := infos[k]
		if !ok {
			info = &keyInfo{paths: make(map[string]bool)}
			infos[k] = info
		}
		return info
	}
	for _, n := range doc.Nodes() {
		if skipWords && n.Kind == xmltree.Text {
			continue
		}
		for _, k := range NodeKeys(n) {
			info := get(k)
			info.paths[PathOf(n, k)] = true
			info.ids = append(info.ids, n.ID)
		}
	}
	return infos
}
