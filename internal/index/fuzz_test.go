package index

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/xmltree"
)

// Native fuzz targets for the two value codecs of the index store. The
// invariants they pin:
//
//   - decoders never panic on arbitrary bytes — a corrupt store item must
//     surface as an error, not crash a query worker;
//   - decode(encode(x)) == x for every encodable input, across every blob
//     and block split (delta restarts, oversized values);
//   - whatever a decoder accepts, re-encoding and re-decoding it is stable
//     (the store can be rewritten from its own decoded contents).
//
// Seed corpora live under testdata/fuzz/<Target>/; `make fuzzsmoke` runs
// each target for a bounded wall-clock slice in CI.

// canonicalIDs turns arbitrary bytes into a valid EncodeIDsBinary input:
// identifiers with non-negative components, sorted by pre — the contract
// the extraction pipeline guarantees.
func canonicalIDs(data []byte) []xmltree.NodeID {
	var ids []xmltree.NodeID
	for i := 0; i+6 <= len(data); i += 6 {
		word := func(off int) int32 {
			return int32(uint16(data[i+off]) | uint16(data[i+off+1])<<8)
		}
		ids = append(ids, xmltree.NodeID{Pre: word(0), Post: word(2), Depth: word(4)})
	}
	sort.Slice(ids, func(a, b int) bool {
		if ids[a].Pre != ids[b].Pre {
			return ids[a].Pre < ids[b].Pre
		}
		if ids[a].Post != ids[b].Post {
			return ids[a].Post < ids[b].Post
		}
		return ids[a].Depth < ids[b].Depth
	})
	return ids
}

func idsEqual(a, b []xmltree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func decodeAllBinary(t *testing.T, blobs [][]byte) []xmltree.NodeID {
	t.Helper()
	var out []xmltree.NodeID
	for _, b := range blobs {
		ids, err := DecodeIDsBinary(b)
		if err != nil {
			t.Fatalf("decoding just-encoded blob %x: %v", b, err)
		}
		out = append(out, ids...)
	}
	return out
}

// FuzzIDCodecRoundTrip: for any identifier set and any blob cap,
// encode-then-decode restores the set exactly, through every delta-restart
// split the cap forces.
func FuzzIDCodecRoundTrip(f *testing.F) {
	f.Add([]byte{}, 64)
	f.Add([]byte{1, 0, 1, 0, 1, 0}, 64)
	f.Add([]byte{1, 0, 2, 0, 1, 0, 3, 0, 4, 0, 2, 0, 5, 0, 6, 0, 2, 0}, 4)
	f.Add(bytes.Repeat([]byte{0xff}, 96), 7)
	f.Add(bytes.Repeat([]byte{9, 1, 7, 3, 5, 2}, 40), 1)
	f.Fuzz(func(t *testing.T, data []byte, maxBlob int) {
		ids := canonicalIDs(data)

		blobs := EncodeIDsBinary(ids, maxBlob)
		if got := decodeAllBinary(t, blobs); !idsEqual(got, ids) {
			t.Fatalf("binary round trip (maxBlob %d): got %v, want %v", maxBlob, got, ids)
		}
		if maxBlob > 0 {
			budget := maxBlob
			if budget < 3*10 { // one id can need three 10-byte uvarints
				budget = 3 * 10
			}
			for _, b := range blobs {
				if len(b) > budget {
					t.Fatalf("blob of %d bytes exceeds cap %d", len(b), budget)
				}
			}
		}

		values := EncodeIDsText(ids, maxBlob)
		var got []xmltree.NodeID
		for _, v := range values {
			part, err := DecodeIDsText(v)
			if err != nil {
				t.Fatalf("decoding just-encoded text %q: %v", v, err)
			}
			got = append(got, part...)
		}
		if !idsEqual(got, ids) {
			t.Fatalf("text round trip (maxValue %d): got %v, want %v", maxBlob, got, ids)
		}
	})
}

// FuzzDecodeIDsBinary: the binary decoder never panics, and anything it
// accepts survives re-encoding — including hostile blobs whose uvarints
// overflow int32, which round-trip through modular arithmetic.
func FuzzDecodeIDsBinary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 1, 1})
	f.Add([]byte{0x80})                                                             // truncated uvarint
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 1, 1}) // > int32
	f.Add(EncodeIDsBinary([]xmltree.NodeID{{Pre: 3, Post: 3, Depth: 2}, {Pre: 6, Post: 8, Depth: 3}}, 0)[0])
	// Blocked-format seeds in both payload families: a valid blob, a
	// bit-flipped copy (the checksum must bounce it to the legacy path
	// without a panic), a truncated prefix, and a bare magic byte.
	// EncodeIDsBlocked emits version-2 packed payloads; the varint twin
	// pins the version-1 wire format.
	for _, blocked := range [][]byte{
		EncodeIDsBlocked(genSortedIDs(64, 42), 0)[0],
		EncodeIDsBlockedVarint(genSortedIDs(64, 42), 0)[0],
	} {
		f.Add(blocked)
		flipped := append([]byte(nil), blocked...)
		flipped[len(flipped)/2] ^= 0x20
		f.Add(flipped)
		f.Add(blocked[:len(blocked)/2])
	}
	f.Add([]byte{0xB1})
	f.Add([]byte{0xB2})
	f.Fuzz(func(t *testing.T, blob []byte) {
		ids, err := DecodeIDsBinary(blob)
		if err != nil {
			return
		}
		// Whatever decoded must survive every writer the store can use:
		// the legacy stream and both blocked payload families (the latter
		// fall back to the legacy stream on unsorted hostile decodes).
		for _, blobs := range [][][]byte{
			EncodeIDsBinary(ids, 0),
			EncodeIDsBlocked(ids, 0),
			EncodeIDsBlockedVarint(ids, 0),
		} {
			if got := decodeAllBinary(t, blobs); !idsEqual(got, ids) {
				t.Fatalf("re-encode of accepted blob %x: got %v, want %v", blob, got, ids)
			}
		}
	})
}

// FuzzDecodeIDsText: the text decoder never panics and is stable under
// re-encoding of whatever it accepts.
func FuzzDecodeIDsText(f *testing.F) {
	f.Add("")
	f.Add("(3,3,2)(6,8,3)")
	f.Add("(3,3")
	f.Add("(-1,-2,-3)")
	f.Add("(99999999999,0,0)")
	f.Fuzz(func(t *testing.T, v string) {
		ids, err := DecodeIDsText([]byte(v))
		if err != nil {
			return
		}
		var got []xmltree.NodeID
		for _, ev := range EncodeIDsText(ids, 0) {
			part, err := DecodeIDsText(ev)
			if err != nil {
				t.Fatalf("decoding just-encoded text %q: %v", ev, err)
			}
			got = append(got, part...)
		}
		if !idsEqual(got, ids) {
			t.Fatalf("re-encode of accepted text %q: got %v, want %v", v, got, ids)
		}
	})
}

// fuzzPaths splits fuzz bytes into a path list (newline-separated).
func fuzzPaths(data []byte) []string {
	if len(data) == 0 {
		return nil
	}
	return strings.Split(string(data), "\n")
}

func sortedPaths(paths []string) []string {
	out := append([]string(nil), paths...)
	sort.Strings(out)
	return out
}

func decodeAllPaths(t *testing.T, blocks [][]byte) []string {
	t.Helper()
	var out []string
	for _, b := range blocks {
		part, err := DecodePathValue(b)
		if err != nil {
			t.Fatalf("decoding just-encoded block %x: %v", b, err)
		}
		out = append(out, part...)
	}
	return out
}

// FuzzPathCodecRoundTrip: front-coding any path list at any block cap
// restores the same multiset (the encoder sorts, so compare sorted).
func FuzzPathCodecRoundTrip(f *testing.F) {
	f.Add([]byte(""), 64)
	f.Add([]byte("/site/regions/item\n/site/regions/item/name\n/site/people"), 16)
	f.Add([]byte("/a\n/a\n/a"), 4) // duplicates must survive
	f.Add([]byte("\n\n"), 1)       // empty paths, hostile cap
	f.Add([]byte("/long/shared/prefix/x\n/long/shared/prefix/y"), 1<<20)
	f.Fuzz(func(t *testing.T, data []byte, maxValue int) {
		paths := fuzzPaths(data)
		blocks := EncodePathsCompressed(paths, maxValue)
		got := decodeAllPaths(t, blocks)
		want := sortedPaths(paths)
		if len(got) != len(want) {
			t.Fatalf("round trip (maxValue %d): %d paths in, %d out", maxValue, len(want), len(got))
		}
		// Blocks decode in sorted order block by block; the concatenation
		// is the sorted list itself.
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round trip (maxValue %d) path %d: got %q, want %q", maxValue, i, got[i], want[i])
			}
		}
	})
}

// FuzzDecodePathValue: the path decoder never panics, whatever it accepts
// survives re-encoding as a multiset, the allocation-free structural
// validator agrees with it exactly, and the prefix-skip matcher agrees
// with decode-then-MatchPath on every accepted value.
func FuzzDecodePathValue(f *testing.F) {
	f.Add([]byte("/plain/path"))
	f.Add([]byte{0x01})
	f.Add([]byte{0x01, 0x00, 0x02, '/', 'a'})
	f.Add([]byte{0x01, 0x05, 0x01, 'x'}) // shared > len(prev)
	f.Add([]byte{0x01, 0x00, 0xff, 'x'}) // suffix > rest
	// A front-coded block with deep shared prefixes — the shape the
	// prefix-skip matcher resumes from checkpoints on — plus one whose
	// shared run dies early for every extension.
	f.Add(EncodePathsCompressed([]string{
		"/ea/eb/ec/ename", "/ea/eb/ec/eprice", "/ea/eb/ed", "/ea/eb/ed/ename",
	}, 0)[0])
	f.Add(EncodePathsCompressed([]string{"/zz/ea", "/zz/eb", "/zz/ec/ed"}, 0)[0])
	// Fixed query paths for the matcher differential: child chain,
	// descendant skip, and a key whose escaping matters.
	matchers := [][]QueryStep{
		{{Axis: pattern.Child, Key: "ea"}, {Axis: pattern.Child, Key: "eb"}},
		{{Axis: pattern.Descendant, Key: "eb"}, {Axis: pattern.Descendant, Key: "ename"}},
		{{Axis: pattern.Descendant, Key: "a 07/04"}},
	}
	f.Fuzz(func(t *testing.T, v []byte) {
		paths, err := DecodePathValue(v)
		if validErr := ValidatePathValue(v); (err == nil) != (validErr == nil) {
			t.Fatalf("value %x: DecodePathValue err=%v but ValidatePathValue err=%v", v, err, validErr)
		}
		if err != nil {
			return
		}
		for _, steps := range matchers {
			got, merr := NewPathMatcher(steps).MatchValue(v)
			if merr != nil {
				t.Fatalf("accepted value %x: MatchValue: %v", v, merr)
			}
			want := false
			for _, p := range paths {
				if MatchPath(steps, p) {
					want = true
					break
				}
			}
			if got != want {
				t.Fatalf("value %x steps %v: MatchValue=%v, MatchPath over decode=%v", v, steps, got, want)
			}
		}
		got := decodeAllPaths(t, EncodePathsCompressed(paths, 0))
		want := sortedPaths(paths)
		if len(got) != len(want) {
			t.Fatalf("re-encode of accepted value %x: %d paths, want %d", v, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("re-encode of accepted value %x path %d: got %q, want %q", v, i, got[i], want[i])
			}
		}
	})
}
