package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/xmltree"
)

// Structural-ID set codecs. The LUI strategy concatenates a node's sorted
// identifiers into attribute values (Section 5.3). On DynamoDB the paper
// exploits binary values to store the set "compressed (encoded)"
// (Section 8.2); we use varint deltas on the pre components. SimpleDB
// forbids binary values, so its codec is plain text — one of the reasons
// the predecessor system [8] needed many more, larger items (Tables 7-8).

// ErrCorruptIDSet reports an undecodable identifier blob.
var ErrCorruptIDSet = errors.New("index: corrupt identifier set")

// EncodeIDsBinary encodes identifiers (sorted by pre) into blobs of at most
// maxBlob bytes. Each blob is independently decodable: the delta base
// restarts per blob, so a large set can split across store items.
func EncodeIDsBinary(ids []xmltree.NodeID, maxBlob int) [][]byte {
	if maxBlob <= 0 {
		maxBlob = 1 << 20
	}
	var blobs [][]byte
	var buf []byte
	var prevPre int32
	flush := func() {
		if len(buf) > 0 {
			blobs = append(blobs, buf)
			buf = nil
			prevPre = 0
		}
	}
	// MaxVarintLen64, not 32: a negative component sign-extends to a full
	// 64-bit uvarint (10 bytes), and the encoder must not panic on such
	// inputs — it round-trips them through the decoder's modular int32
	// arithmetic instead (the codec fuzz targets exercise this).
	var tmp [3 * binary.MaxVarintLen64]byte
	for _, id := range ids {
		n := binary.PutUvarint(tmp[:], uint64(id.Pre-prevPre))
		n += binary.PutUvarint(tmp[n:], uint64(id.Post))
		n += binary.PutUvarint(tmp[n:], uint64(id.Depth))
		if len(buf)+n > maxBlob {
			flush()
			// Re-encode with a fresh delta base.
			n = binary.PutUvarint(tmp[:], uint64(id.Pre))
			n += binary.PutUvarint(tmp[n:], uint64(id.Post))
			n += binary.PutUvarint(tmp[n:], uint64(id.Depth))
		}
		buf = append(buf, tmp[:n]...)
		prevPre = id.Pre
	}
	flush()
	return blobs
}

// DecodeIDsBinary decodes one binary blob.
func DecodeIDsBinary(blob []byte) ([]xmltree.NodeID, error) {
	var ids []xmltree.NodeID
	var prevPre int32
	for len(blob) > 0 {
		dPre, n := binary.Uvarint(blob)
		if n <= 0 {
			return nil, ErrCorruptIDSet
		}
		blob = blob[n:]
		post, n := binary.Uvarint(blob)
		if n <= 0 {
			return nil, ErrCorruptIDSet
		}
		blob = blob[n:]
		depth, n := binary.Uvarint(blob)
		if n <= 0 {
			return nil, ErrCorruptIDSet
		}
		blob = blob[n:]
		prevPre += int32(dPre)
		ids = append(ids, xmltree.NodeID{Pre: prevPre, Post: int32(post), Depth: int32(depth)})
	}
	return ids, nil
}

// EncodeIDsText encodes identifiers into text values of at most maxValue
// bytes each, e.g. "(3,3,2)(6,8,3)", the format SimpleDB can hold.
func EncodeIDsText(ids []xmltree.NodeID, maxValue int) [][]byte {
	if maxValue <= 0 {
		maxValue = 1 << 10
	}
	var values [][]byte
	var b strings.Builder
	for _, id := range ids {
		s := fmt.Sprintf("(%d,%d,%d)", id.Pre, id.Post, id.Depth)
		if b.Len()+len(s) > maxValue && b.Len() > 0 {
			values = append(values, []byte(b.String()))
			b.Reset()
		}
		b.WriteString(s)
	}
	if b.Len() > 0 {
		values = append(values, []byte(b.String()))
	}
	return values
}

// DecodeIDsText decodes one text value.
func DecodeIDsText(v []byte) ([]xmltree.NodeID, error) {
	s := string(v)
	var ids []xmltree.NodeID
	for len(s) > 0 {
		if s[0] != '(' {
			return nil, ErrCorruptIDSet
		}
		end := strings.IndexByte(s, ')')
		if end < 0 {
			return nil, ErrCorruptIDSet
		}
		parts := strings.Split(s[1:end], ",")
		if len(parts) != 3 {
			return nil, ErrCorruptIDSet
		}
		var vals [3]int64
		for i, p := range parts {
			x, err := strconv.ParseInt(p, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorruptIDSet, err)
			}
			vals[i] = x
		}
		ids = append(ids, xmltree.NodeID{Pre: int32(vals[0]), Post: int32(vals[1]), Depth: int32(vals[2])})
		s = s[end+1:]
	}
	return ids, nil
}

// DecodeIDs decodes a value in either codec, chosen by binaryIDs.
func DecodeIDs(v []byte, binaryIDs bool) ([]xmltree.NodeID, error) {
	if binaryIDs {
		return DecodeIDsBinary(v)
	}
	return DecodeIDsText(v)
}

// EncodeIDs encodes a sorted identifier set in the codec chosen by
// binaryIDs, splitting values at maxValue bytes.
func EncodeIDs(ids []xmltree.NodeID, binaryIDs bool, maxValue int) [][]byte {
	if binaryIDs {
		return EncodeIDsBinary(ids, maxValue)
	}
	return EncodeIDsText(ids, maxValue)
}
