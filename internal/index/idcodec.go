package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/idblock"
	"repro/internal/xmltree"
)

// Structural-ID set codecs. The LUI strategy concatenates a node's sorted
// identifiers into attribute values (Section 5.3). On DynamoDB the paper
// exploits binary values to store the set "compressed (encoded)"
// (Section 8.2); we use varint deltas on the pre components. SimpleDB
// forbids binary values, so its codec is plain text — one of the reasons
// the predecessor system [8] needed many more, larger items (Tables 7-8).
//
// Two binary formats coexist. The legacy format is a bare delta+varint
// triple stream (EncodeIDsBinary). The blocked format (package idblock)
// prefixes per-block summary headers so the join kernels can skip whole
// blocks without decoding; it is what the write path emits today. The
// decoder accepts both — existing dumps keep working — distinguishing them
// by the blocked magic byte plus a checksum and strict structural
// validation, so a legacy blob whose first byte collides with the magic
// still falls through to the legacy decoder.

// ErrCorruptIDSet reports an undecodable identifier blob.
var ErrCorruptIDSet = errors.New("index: corrupt identifier set")

// EncodeIDsBinary encodes identifiers (sorted by pre) into blobs of at most
// maxBlob bytes. Each blob is independently decodable: the delta base
// restarts per blob, so a large set can split across store items.
func EncodeIDsBinary(ids []xmltree.NodeID, maxBlob int) [][]byte {
	if maxBlob <= 0 {
		maxBlob = 1 << 20
	}
	var blobs [][]byte
	var buf []byte
	var prevPre int32
	flush := func() {
		if len(buf) > 0 {
			blobs = append(blobs, buf)
			buf = nil
			prevPre = 0
		}
	}
	// MaxVarintLen64, not 32: a negative component sign-extends to a full
	// 64-bit uvarint (10 bytes), and the encoder must not panic on such
	// inputs — it round-trips them through the decoder's modular int32
	// arithmetic instead (the codec fuzz targets exercise this).
	var tmp [3 * binary.MaxVarintLen64]byte
	for _, id := range ids {
		n := binary.PutUvarint(tmp[:], uint64(id.Pre-prevPre))
		n += binary.PutUvarint(tmp[n:], uint64(id.Post))
		n += binary.PutUvarint(tmp[n:], uint64(id.Depth))
		if len(buf)+n > maxBlob {
			flush()
			// Re-encode with a fresh delta base.
			n = binary.PutUvarint(tmp[:], uint64(id.Pre))
			n += binary.PutUvarint(tmp[n:], uint64(id.Post))
			n += binary.PutUvarint(tmp[n:], uint64(id.Depth))
		}
		buf = append(buf, tmp[:n]...)
		prevPre = id.Pre
	}
	flush()
	return blobs
}

// blockedMinIDs is the set size below which the blocked format is not
// worth its framing: magic, checksum and one header cost ~20 bytes, which
// dwarfs a handful of delta-varint triples (and a set that small decodes in
// nanoseconds anyway). Small sets — the long tail of per-document postings
// — keep the legacy encoding; the decoder accepts both, so the cut-off is
// a pure encoding choice.
const blockedMinIDs = 32

// IDPayload selects the per-block payload family the blocked writer emits.
// The zero value is the frame-of-reference bit-packed format (with per-block
// negotiation falling back to varint where varint is smaller); PayloadVarint
// pins the pure delta+varint version-1 blobs, kept as an operational escape
// hatch and for byte-compatibility tests against pre-packed dumps. Readers
// accept every format regardless of this knob.
type IDPayload int

const (
	// PayloadPacked emits version-2 blobs: per block, the smaller of a
	// bit-packed frame-of-reference payload and a delta+varint payload.
	PayloadPacked IDPayload = iota
	// PayloadVarint emits version-1 blobs with delta+varint payloads only.
	PayloadVarint
)

// EncodeIDsBlocked encodes a pre-sorted identifier set into blocked blobs
// (package idblock) of at most maxBlob bytes: summary headers over
// bit-packed or delta+varint block payloads, so that look-ups can skip
// blocks without decoding them. Sets too small to amortize the framing, and
// unsorted inputs (which only hostile re-encodes of corrupt blobs produce,
// never the extraction pipeline), fall back to the legacy stream format.
func EncodeIDsBlocked(ids []xmltree.NodeID, maxBlob int) [][]byte {
	return encodeIDsBlocked(ids, maxBlob, PayloadPacked)
}

// EncodeIDsBlockedVarint is EncodeIDsBlocked pinned to version-1
// delta+varint payloads.
func EncodeIDsBlockedVarint(ids []xmltree.NodeID, maxBlob int) [][]byte {
	return encodeIDsBlocked(ids, maxBlob, PayloadVarint)
}

func encodeIDsBlocked(ids []xmltree.NodeID, maxBlob int, payload IDPayload) [][]byte {
	if len(ids) < blockedMinIDs || !idblock.IsSorted(ids) {
		return EncodeIDsBinary(ids, maxBlob)
	}
	if payload == PayloadVarint {
		return idblock.Encode(ids, idblock.DefaultBlockSize, maxBlob)
	}
	return idblock.EncodePacked(ids, idblock.DefaultBlockSize, maxBlob)
}

// DecodeIDsBinary decodes one binary blob in either binary format: blocked
// blobs are parsed, fully decoded and pre-sized from their block-header
// counts; anything else takes the legacy path.
func DecodeIDsBinary(blob []byte) ([]xmltree.NodeID, error) {
	if idblock.Looks(blob) {
		if s, err := idblock.Parse(blob); err == nil {
			ids, err := s.All()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorruptIDSet, err)
			}
			return ids, nil
		}
		// Parse failures mean "not the blocked format": a legacy payload
		// whose first delta byte happens to equal the magic.
	}
	return decodeIDsLegacy(blob)
}

// decodeIDsLegacy decodes a legacy delta+varint stream through the unrolled
// batch decoder. The output is pre-sized from the byte length — a triple is
// at least three bytes, so len/3 bounds the count — which keeps the decode
// at one allocation (the codec benchmarks assert this).
func decodeIDsLegacy(blob []byte) ([]xmltree.NodeID, error) {
	if len(blob) == 0 {
		return nil, nil
	}
	ids, err := idblock.AppendVarintTriples(make([]xmltree.NodeID, 0, len(blob)/3), blob)
	if err != nil {
		return nil, ErrCorruptIDSet
	}
	return ids, nil
}

// EncodeIDsText encodes identifiers into text values of at most maxValue
// bytes each, e.g. "(3,3,2)(6,8,3)", the format SimpleDB can hold.
func EncodeIDsText(ids []xmltree.NodeID, maxValue int) [][]byte {
	if maxValue <= 0 {
		maxValue = 1 << 10
	}
	var values [][]byte
	var b strings.Builder
	for _, id := range ids {
		s := fmt.Sprintf("(%d,%d,%d)", id.Pre, id.Post, id.Depth)
		if b.Len()+len(s) > maxValue && b.Len() > 0 {
			values = append(values, []byte(b.String()))
			b.Reset()
		}
		b.WriteString(s)
	}
	if b.Len() > 0 {
		values = append(values, []byte(b.String()))
	}
	return values
}

// DecodeIDsText decodes one text value.
func DecodeIDsText(v []byte) ([]xmltree.NodeID, error) {
	s := string(v)
	var ids []xmltree.NodeID
	for len(s) > 0 {
		if s[0] != '(' {
			return nil, ErrCorruptIDSet
		}
		end := strings.IndexByte(s, ')')
		if end < 0 {
			return nil, ErrCorruptIDSet
		}
		parts := strings.Split(s[1:end], ",")
		if len(parts) != 3 {
			return nil, ErrCorruptIDSet
		}
		var vals [3]int64
		for i, p := range parts {
			x, err := strconv.ParseInt(p, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorruptIDSet, err)
			}
			vals[i] = x
		}
		ids = append(ids, xmltree.NodeID{Pre: int32(vals[0]), Post: int32(vals[1]), Depth: int32(vals[2])})
		s = s[end+1:]
	}
	return ids, nil
}

// DecodeIDs decodes a value in either codec, chosen by binaryIDs.
func DecodeIDs(v []byte, binaryIDs bool) ([]xmltree.NodeID, error) {
	if binaryIDs {
		return DecodeIDsBinary(v)
	}
	return DecodeIDsText(v)
}

// DecodeIDSet decodes one stored identifier value into its lazy blocked
// form when possible: a valid blocked blob returns its parsed Set — headers
// only, no payload decoded. Legacy and text values decode eagerly and are
// returned as a plain slice with a nil Set.
func DecodeIDSet(v []byte, binaryIDs bool) (*idblock.Set, []xmltree.NodeID, error) {
	if binaryIDs && idblock.Looks(v) {
		if s, err := idblock.Parse(v); err == nil {
			return s, nil, nil
		}
	}
	ids, err := DecodeIDs(v, binaryIDs)
	return nil, ids, err
}

// EncodeIDs encodes a sorted identifier set in the codec chosen by
// binaryIDs, splitting values at maxValue bytes. Binary stores get the
// blocked format (packed payloads); DecodeIDs accepts it along with the
// version-1 blocked and legacy stream formats.
func EncodeIDs(ids []xmltree.NodeID, binaryIDs bool, maxValue int) [][]byte {
	return EncodeIDsPayload(ids, binaryIDs, maxValue, PayloadPacked)
}

// EncodeIDsPayload is EncodeIDs with an explicit blocked-payload choice;
// text stores ignore the payload knob.
func EncodeIDsPayload(ids []xmltree.NodeID, binaryIDs bool, maxValue int, payload IDPayload) [][]byte {
	if binaryIDs {
		return encodeIDsBlocked(ids, maxValue, payload)
	}
	return EncodeIDsText(ids, maxValue)
}
