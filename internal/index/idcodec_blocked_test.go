package index

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/idblock"
	"repro/internal/xmltree"
)

// genSortedIDs builds a deterministic sorted identifier set of n elements
// with strictly increasing pre and varied post/depth.
func genSortedIDs(n int, seed int64) []xmltree.NodeID {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]xmltree.NodeID, n)
	pre := int32(1)
	for i := range ids {
		pre += int32(rng.Intn(7) + 1)
		ids[i] = xmltree.NodeID{
			Pre:   pre,
			Post:  int32(rng.Intn(4 * n)),
			Depth: int32(rng.Intn(12) + 1),
		}
	}
	return ids
}

// TestEncodeIDsBlockedRoundTrip: for set sizes straddling the blockedMinIDs
// cut-off and several blob caps, every emitted blob decodes back through
// DecodeIDsBinary, and the concatenation restores the input exactly.
func TestEncodeIDsBlockedRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, blockedMinIDs - 1, blockedMinIDs, 100, 1000} {
		for _, maxBlob := range []int{0, 64, 1 << 20} {
			ids := genSortedIDs(n, int64(n)*31+int64(maxBlob))
			blobs := EncodeIDsBlocked(ids, maxBlob)
			got := decodeAllBlobs(t, blobs)
			if n == 0 {
				if len(got) != 0 {
					t.Fatalf("n=0: decoded %v", got)
				}
				continue
			}
			if !reflect.DeepEqual(got, ids) {
				t.Fatalf("n=%d maxBlob=%d: round trip mismatch", n, maxBlob)
			}
		}
	}
}

// TestEncodeIDsBlockedFormatSelection: sets below the cut-off (and unsorted
// inputs) take the legacy stream; sets at or above it produce parseable
// blocked blobs.
func TestEncodeIDsBlockedFormatSelection(t *testing.T) {
	small := genSortedIDs(blockedMinIDs-1, 1)
	for i, b := range EncodeIDsBlocked(small, 0) {
		if _, err := idblock.Parse(b); err == nil {
			t.Errorf("small-set blob %d parsed as blocked, want legacy", i)
		}
	}
	large := genSortedIDs(4*blockedMinIDs, 2)
	for i, b := range EncodeIDsBlocked(large, 0) {
		if !idblock.Looks(b) {
			t.Fatalf("large-set blob %d lacks the blocked magic", i)
		}
		if _, err := idblock.Parse(b); err != nil {
			t.Errorf("large-set blob %d: %v", i, err)
		}
	}
	unsorted := append([]xmltree.NodeID(nil), large...)
	unsorted[0], unsorted[1] = unsorted[1], unsorted[0]
	for i, b := range EncodeIDsBlocked(unsorted, 0) {
		if _, err := idblock.Parse(b); err == nil {
			t.Errorf("unsorted-input blob %d parsed as blocked, want legacy fallback", i)
		}
	}
}

// TestBlockedLegacyInterop: the two binary formats decode identically
// through the shared entry points, and DecodeIDSet returns the lazy form
// exactly when the blob is blocked.
func TestBlockedLegacyInterop(t *testing.T) {
	ids := genSortedIDs(300, 7)
	legacy := EncodeIDsBinary(ids, 0)
	blocked := EncodeIDsBlocked(ids, 0)
	if got := decodeAllBlobs(t, legacy); !reflect.DeepEqual(got, ids) {
		t.Fatal("legacy decode mismatch")
	}
	if got := decodeAllBlobs(t, blocked); !reflect.DeepEqual(got, ids) {
		t.Fatal("blocked decode mismatch")
	}

	for _, b := range blocked {
		set, eager, err := DecodeIDSet(b, true)
		if err != nil {
			t.Fatal(err)
		}
		if set == nil || eager != nil {
			t.Fatalf("DecodeIDSet(blocked) = (%v, %v), want lazy set only", set, eager)
		}
	}
	var viaSet []xmltree.NodeID
	for _, b := range blocked {
		set, _, _ := DecodeIDSet(b, true)
		all, err := set.All()
		if err != nil {
			t.Fatal(err)
		}
		viaSet = append(viaSet, all...)
	}
	if !reflect.DeepEqual(viaSet, ids) {
		t.Fatal("lazy Set decode differs from input")
	}
	for _, b := range legacy {
		set, eager, err := DecodeIDSet(b, true)
		if err != nil {
			t.Fatal(err)
		}
		if set != nil || len(eager) == 0 {
			t.Fatalf("DecodeIDSet(legacy) = (%v, %d ids), want eager ids only", set, len(eager))
		}
	}
}

// TestDecodeIDsBinaryCorruptBlocked: flipping any byte of a blocked blob
// must never crash — the checksum (or strict parse) rejects it into the
// legacy path, which either errors or returns some decodable set.
func TestDecodeIDsBinaryCorruptBlocked(t *testing.T) {
	ids := genSortedIDs(200, 11)
	blob := EncodeIDsBlocked(ids, 0)[0]
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x40
		got, err := DecodeIDsBinary(mut)
		if err == nil && i > 0 && reflect.DeepEqual(got, ids) {
			// A body flip that still decodes to the exact input would mean
			// the checksum let a corruption through.
			t.Fatalf("flipped byte %d decoded to the original set", i)
		}
	}
}

// TestDecodeIDsBinaryAllocs pins the allocation behaviour the benchmarks
// depend on: a legacy decode costs exactly one allocation (the pre-sized
// output slice), and a blocked full decode stays within a small constant
// regardless of set size.
func TestDecodeIDsBinaryAllocs(t *testing.T) {
	ids := genSortedIDs(2048, 3)
	legacy := EncodeIDsBinary(ids, 1<<20)[0]
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := DecodeIDsBinary(legacy); err != nil {
			t.Fatal(err)
		}
	}); allocs != 1 {
		t.Errorf("legacy decode allocs = %v, want 1", allocs)
	}

	blocked := EncodeIDsBlocked(ids, 1<<20)[0]
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := DecodeIDsBinary(blocked); err != nil {
			t.Fatal(err)
		}
	}); allocs > 8 {
		t.Errorf("blocked decode allocs = %v, want <= 8", allocs)
	}
}
