package index

import (
	"reflect"
	"testing"

	"repro/internal/xmltree"
)

// decodeAllBlobs decodes each blob independently and concatenates.
func decodeAllBlobs(t *testing.T, blobs [][]byte) []xmltree.NodeID {
	t.Helper()
	var ids []xmltree.NodeID
	for i, b := range blobs {
		got, err := DecodeIDsBinary(b)
		if err != nil {
			t.Fatalf("blob %d: %v", i, err)
		}
		ids = append(ids, got...)
	}
	return ids
}

// TestEncodeIDsBinaryOversizedTriple: a single triple whose varint encoding
// exceeds maxBlob must still be emitted as one (oversized but decodable)
// blob — not dropped, and not spun on forever trying to fit it.
func TestEncodeIDsBinaryOversizedTriple(t *testing.T) {
	// Pre 1<<28 takes 5 uvarint bytes (its delta from 0 likewise), Post
	// and Depth one byte each: 7 bytes total against a 2-byte budget.
	big := xmltree.NodeID{Pre: 1 << 28, Post: 1, Depth: 1}
	blobs := EncodeIDsBinary([]xmltree.NodeID{big}, 2)
	if len(blobs) != 1 {
		t.Fatalf("blobs = %d, want 1", len(blobs))
	}
	if len(blobs[0]) <= 2 {
		t.Fatalf("blob len = %d, expected the oversized encoding", len(blobs[0]))
	}
	if got := decodeAllBlobs(t, blobs); !reflect.DeepEqual(got, []xmltree.NodeID{big}) {
		t.Fatalf("round trip = %v, want %v", got, []xmltree.NodeID{big})
	}

	// Several oversized triples in a row: one blob each, all decodable.
	ids := []xmltree.NodeID{
		{Pre: 1 << 28, Post: 1, Depth: 1},
		{Pre: 1<<28 + (1 << 27), Post: 2, Depth: 2},
		{Pre: 1 << 30, Post: 3, Depth: 3},
	}
	blobs = EncodeIDsBinary(ids, 2)
	if len(blobs) != len(ids) {
		t.Fatalf("blobs = %d, want one per oversized triple (%d)", len(blobs), len(ids))
	}
	if got := decodeAllBlobs(t, blobs); !reflect.DeepEqual(got, ids) {
		t.Fatalf("round trip = %v, want %v", got, ids)
	}
}

// TestEncodeIDsBinaryDeltaBaseRestart: when a set splits across blobs, the
// first triple of each follow-on blob must be encoded against a fresh delta
// base (absolute pre), so every blob decodes independently — the property
// the store relies on when an entry's values split across items.
func TestEncodeIDsBinaryDeltaBaseRestart(t *testing.T) {
	// Large pre values (5-byte deltas) force a split with a small budget.
	ids := make([]xmltree.NodeID, 6)
	for i := range ids {
		ids[i] = xmltree.NodeID{Pre: 1<<28 + int32(i)*(1<<20), Post: int32(i), Depth: int32(i % 4)}
	}
	blobs := EncodeIDsBinary(ids, 16) // 2 triples (~12-14 bytes) per blob
	if len(blobs) < 2 {
		t.Fatalf("blobs = %d, want a multi-blob split", len(blobs))
	}
	// Each blob decodes on its own, and its first pre is absolute.
	seen := 0
	for i, b := range blobs {
		got, err := DecodeIDsBinary(b)
		if err != nil {
			t.Fatalf("blob %d: %v", i, err)
		}
		if len(got) == 0 {
			t.Fatalf("blob %d is empty", i)
		}
		if got[0] != ids[seen] {
			t.Fatalf("blob %d first id = %v, want absolute %v (delta base must restart)", i, got[0], ids[seen])
		}
		seen += len(got)
	}
	if got := decodeAllBlobs(t, blobs); !reflect.DeepEqual(got, ids) {
		t.Fatalf("round trip = %v, want %v", got, ids)
	}
}
