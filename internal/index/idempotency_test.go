package index

import (
	"fmt"
	"testing"

	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/simpledb"
	"repro/internal/meter"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

func TestItemRangeKeyDeterministicAndDistinct(t *testing.T) {
	a := ItemRangeKey("u1", "t", "k", 0)
	if a != ItemRangeKey("u1", "t", "k", 0) {
		t.Error("same identity, different keys")
	}
	if len(a) != 32 {
		t.Errorf("key %q has length %d, want 32 (UUID-width hex)", a, len(a))
	}
	seen := map[string]string{}
	for _, id := range [][4]string{
		{"u1", "t", "k", "0"},
		{"u2", "t", "k", "0"},
		{"u1", "t2", "k", "0"},
		{"u1", "t", "k2", "0"},
		{"u1", "t", "k", "1"},
		// Length prefixing keeps concatenation ambiguity out: ("ab","c")
		// and ("a","bc") must not collide.
		{"ab", "c", "k", "0"},
		{"a", "bc", "k", "0"},
	} {
		ord := 0
		fmt.Sscan(id[3], &ord)
		k := ItemRangeKey(id[0], id[1], id[2], ord)
		if prev, dup := seen[k]; dup {
			t.Errorf("identities %v and %s collide on %s", id, prev, k)
		}
		seen[k] = fmt.Sprint(id)
	}
}

// Reloading a document — what a crashed worker's redelivered task does —
// must leave the store byte-identical to a single load: deterministic range
// keys turn the re-put into an overwrite.
func TestReloadIsIdempotent(t *testing.T) {
	docs := xmark.Paintings()
	for _, s := range []Strategy{LU, LUP, LUI, TwoLUPI} {
		store := dynamodb.New(meter.NewLedger())
		if err := CreateTables(store, s); err != nil {
			t.Fatal(err)
		}
		opts := OptionsFor(store)
		var parsed []*xmltree.Document
		for _, gd := range docs {
			d, err := xmltree.Parse(gd.URI, gd.Data)
			if err != nil {
				t.Fatal(err)
			}
			parsed = append(parsed, d)
			if _, _, err := LoadDocument(store, s, d, opts); err != nil {
				t.Fatal(err)
			}
		}
		counts := map[string]int64{}
		for _, tbl := range s.Tables() {
			counts[tbl] = store.ItemCount(tbl)
		}
		// Load every document again, twice.
		for i := 0; i < 2; i++ {
			for _, d := range parsed {
				if _, _, err := LoadDocument(store, s, d, opts); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, tbl := range s.Tables() {
			if got := store.ItemCount(tbl); got != counts[tbl] {
				t.Errorf("%s/%s: %d items after reload, want %d (duplicates)", s.Name(), tbl, got, counts[tbl])
			}
			for _, it := range store.DumpTable(tbl) {
				if len(it.Attrs) != 1 {
					t.Errorf("%s/%s item %s/%s has %d attrs, want 1", s.Name(), tbl, it.HashKey, it.RangeKey, len(it.Attrs))
				}
			}
		}
	}
}

// The text-only SimpleDB path must stay idempotent too.
func TestReloadIsIdempotentOnSimpleDB(t *testing.T) {
	store := simpledb.New(meter.NewLedger())
	if err := CreateTables(store, LUP); err != nil {
		t.Fatal(err)
	}
	opts := OptionsFor(store)
	gd := xmark.Paintings()[0]
	d, err := xmltree.Parse(gd.URI, gd.Data)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadDocument(store, LUP, d, opts); err != nil {
		t.Fatal(err)
	}
	before := store.ItemCount(LUP.Tables()[0])
	if _, _, err := LoadDocument(store, LUP, d, opts); err != nil {
		t.Fatal(err)
	}
	if got := store.ItemCount(LUP.Tables()[0]); got != before {
		t.Errorf("items after reload = %d, want %d", got, before)
	}
}
