package index

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/kv"
	"repro/internal/cloud/simpledb"
	"repro/internal/meter"
	"repro/internal/pattern"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

func parseDoc(t *testing.T, uri, src string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.Parse(uri, []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestKeyEncoding(t *testing.T) {
	if ElementKey("name") != "ename" {
		t.Error("element key")
	}
	if AttrNameKey("id") != "aid" {
		t.Error("attr name key")
	}
	if AttrValueKey("id", "1863-1") != "aid 1863-1" {
		t.Error("attr value key")
	}
	if WordKey("Olympia") != "wOlympia" {
		t.Error("word key")
	}
}

func TestNodeKeysFigure3(t *testing.T) {
	d := parseDoc(t, "manet.xml", xmark.ManetXML)
	keys := map[string]bool{}
	for _, n := range d.Nodes() {
		for _, k := range NodeKeys(n) {
			keys[k] = true
		}
	}
	for _, want := range []string{"ename", "aid", "aid 1863-1", "wOlympia", "epainting", "wManet"} {
		if !keys[want] {
			t.Errorf("missing key %q", want)
		}
	}
}

func TestPathOfFigure4(t *testing.T) {
	d := parseDoc(t, "manet.xml", xmark.ManetXML)
	// The Olympia text node's word path.
	name := d.NodesByLabel("name")[0]
	olympia := name.Children[0]
	if got := PathOf(olympia, WordKey("Olympia")); got != "/epainting/ename/wOlympia" {
		t.Errorf("word path = %q", got)
	}
	id := d.NodesByLabel("id")[0]
	if got := PathOf(id, AttrValueKey("id", "1863-1")); got != "/epainting/aid 1863-1" {
		t.Errorf("attr value path = %q", got)
	}
	painterName := d.NodesByLabel("name")[1]
	if got := PathOf(painterName, ElementKey("name")); got != "/epainting/epainter/ename" {
		t.Errorf("element path = %q", got)
	}
}

func TestMatchPath(t *testing.T) {
	steps := func(s string) []QueryStep {
		var out []QueryStep
		for s != "" {
			axis := pattern.Child
			if strings.HasPrefix(s, "//") {
				axis = pattern.Descendant
				s = s[2:]
			} else {
				s = s[1:]
			}
			end := len(s)
			if i := strings.IndexAny(s, "/"); i >= 0 {
				end = i
			}
			out = append(out, QueryStep{Axis: axis, Key: s[:end]})
			s = s[end:]
		}
		return out
	}
	cases := []struct {
		query  string
		stored string
		want   bool
	}{
		{"//epainting/ename", "/epainting/ename", true},
		{"//epainting/ename", "/epainting/epainter/ename", false},
		{"//epainting//ename", "/epainting/epainter/ename", true},
		{"/epainting/ename", "/epainting/ename", true},
		{"/ename", "/epainting/ename", false},
		{"//ename", "/epainting/ename", true},
		{"//ename", "/epainting/ename/wOlympia", false}, // must end at key
		{"//epainting//ename/wOlympia", "/epainting/ename/wOlympia", true},
		{"//esite//ename", "/esite/eregions/eitem/ename", true},
		{"//esite/ename", "/esite/eregions/eitem/ename", false},
	}
	for _, c := range cases {
		if got := MatchPath(steps(c.query), c.stored); got != c.want {
			t.Errorf("MatchPath(%q, %q) = %v, want %v", c.query, c.stored, got, c.want)
		}
	}
}

func TestEscapedPathComponents(t *testing.T) {
	d := parseDoc(t, "d.xml", `<a date="07/04/2026"/>`)
	attr := d.NodesByLabel("date")[0]
	key := AttrValueKey("date", "07/04/2026")
	stored := PathOf(attr, key)
	if strings.Count(stored, "/") != 2 {
		t.Errorf("slash in key not escaped: %q", stored)
	}
	if !MatchPath([]QueryStep{
		{Axis: pattern.Descendant, Key: "ea"},
		{Axis: pattern.Child, Key: key},
	}, stored) {
		t.Errorf("escaped path %q does not match its own query path", stored)
	}
}

func TestIDCodecsRoundTrip(t *testing.T) {
	ids := []xmltree.NodeID{{Pre: 1, Post: 10, Depth: 1}, {Pre: 3, Post: 3, Depth: 2}, {Pre: 6, Post: 8, Depth: 3}, {Pre: 100000, Post: 99999, Depth: 15}}
	for _, binary := range []bool{true, false} {
		blobs := EncodeIDs(ids, binary, 0)
		var got []xmltree.NodeID
		for _, b := range blobs {
			part, err := DecodeIDs(b, binary)
			if err != nil {
				t.Fatalf("binary=%v: %v", binary, err)
			}
			got = append(got, part...)
		}
		if !reflect.DeepEqual(got, ids) {
			t.Errorf("binary=%v round trip = %v", binary, got)
		}
	}
}

func TestIDCodecSplitsAtBudget(t *testing.T) {
	var ids []xmltree.NodeID
	for i := int32(1); i <= 1000; i++ {
		ids = append(ids, xmltree.NodeID{Pre: i * 2, Post: i, Depth: 3})
	}
	blobs := EncodeIDsBinary(ids, 64)
	if len(blobs) < 2 {
		t.Fatalf("expected splitting, got %d blobs", len(blobs))
	}
	var got []xmltree.NodeID
	for _, b := range blobs {
		if len(b) > 64 {
			t.Errorf("blob of %d bytes exceeds budget", len(b))
		}
		part, err := DecodeIDsBinary(b)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, part...)
	}
	if !reflect.DeepEqual(got, ids) {
		t.Error("split blobs do not reassemble")
	}
	texts := EncodeIDsText(ids, 64)
	for _, v := range texts {
		if len(v) > 64 {
			t.Errorf("text value of %d bytes exceeds budget", len(v))
		}
	}
}

func TestIDCodecProperty(t *testing.T) {
	f := func(raw []uint16, budgetSeed uint8) bool {
		ids := make([]xmltree.NodeID, len(raw))
		pre := int32(0)
		for i, r := range raw {
			pre += int32(r%100) + 1
			ids[i] = xmltree.NodeID{Pre: pre, Post: int32(r), Depth: int32(r%20) + 1}
		}
		budget := int(budgetSeed)%200 + 16
		for _, binary := range []bool{true, false} {
			var got []xmltree.NodeID
			for _, b := range EncodeIDs(ids, binary, budget) {
				part, err := DecodeIDs(b, binary)
				if err != nil {
					return false
				}
				got = append(got, part...)
			}
			if len(got) != len(ids) {
				return false
			}
			for i := range ids {
				if got[i] != ids[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCorruptIDBlobs(t *testing.T) {
	if _, err := DecodeIDsBinary([]byte{0xff}); err == nil {
		t.Error("truncated varint accepted")
	}
	for _, bad := range []string{"3,3,2", "(3,3)", "(a,b,c)", "(1,2,3"} {
		if _, err := DecodeIDsText([]byte(bad)); err == nil {
			t.Errorf("bad text %q accepted", bad)
		}
	}
}

func TestExtractLU(t *testing.T) {
	d := parseDoc(t, "manet.xml", xmark.ManetXML)
	ex := Extract(LU, d, DefaultOptions())
	entries := ex.Tables[LU.TableName(flatTable)]
	if len(entries) == 0 {
		t.Fatal("no LU entries")
	}
	byKey := map[string][][]byte{}
	for _, e := range entries {
		byKey[e.Key] = e.Values
	}
	for _, k := range []string{"ename", "aid", "aid 1863-1", "wOlympia"} {
		vs, ok := byKey[k]
		if !ok {
			t.Errorf("missing entry %q", k)
			continue
		}
		if len(vs) != 1 || len(vs[0]) != 0 {
			t.Errorf("LU entry %q has values %v, want single ε", k, vs)
		}
	}
}

func TestExtractLUPMatchesFigure4(t *testing.T) {
	d := parseDoc(t, "manet.xml", xmark.ManetXML)
	ex := Extract(LUP, d, DefaultOptions())
	entries := ex.Tables[LUP.TableName(flatTable)]
	byKey := map[string][]string{}
	for _, e := range entries {
		for _, v := range e.Values {
			byKey[e.Key] = append(byKey[e.Key], string(v))
		}
	}
	wantName := []string{"/epainting/ename", "/epainting/epainter/ename"}
	if !reflect.DeepEqual(byKey["ename"], wantName) {
		t.Errorf("ename paths = %v, want %v", byKey["ename"], wantName)
	}
	if !reflect.DeepEqual(byKey["aid 1863-1"], []string{"/epainting/aid 1863-1"}) {
		t.Errorf("aid value paths = %v", byKey["aid 1863-1"])
	}
	if !reflect.DeepEqual(byKey["wOlympia"], []string{"/epainting/ename/wOlympia"}) {
		t.Errorf("wOlympia paths = %v", byKey["wOlympia"])
	}
}

func TestExtractLUIMatchesFigure4(t *testing.T) {
	d := parseDoc(t, "manet.xml", xmark.ManetXML)
	ex := Extract(LUI, d, DefaultOptions())
	entries := ex.Tables[LUI.TableName(flatTable)]
	byKey := map[string][]xmltree.NodeID{}
	for _, e := range entries {
		for _, v := range e.Values {
			ids, err := DecodeIDsBinary(v)
			if err != nil {
				t.Fatal(err)
			}
			byKey[e.Key] = append(byKey[e.Key], ids...)
		}
	}
	wantName := []xmltree.NodeID{{Pre: 3, Post: 3, Depth: 2}, {Pre: 6, Post: 8, Depth: 3}}
	if !reflect.DeepEqual(byKey["ename"], wantName) {
		t.Errorf("ename IDs = %v, want %v", byKey["ename"], wantName)
	}
	if !reflect.DeepEqual(byKey["aid"], []xmltree.NodeID{{Pre: 2, Post: 1, Depth: 2}}) {
		t.Errorf("aid IDs = %v", byKey["aid"])
	}
	if !reflect.DeepEqual(byKey["wOlympia"], []xmltree.NodeID{{Pre: 4, Post: 2, Depth: 3}}) {
		t.Errorf("wOlympia IDs = %v", byKey["wOlympia"])
	}
}

func TestExtract2LUPIHasBothTables(t *testing.T) {
	d := parseDoc(t, "manet.xml", xmark.ManetXML)
	ex := Extract(TwoLUPI, d, DefaultOptions())
	if len(ex.Tables[TwoLUPI.TableName(pathTable)]) == 0 {
		t.Error("2LUPI missing path entries")
	}
	if len(ex.Tables[TwoLUPI.TableName(idTable)]) == 0 {
		t.Error("2LUPI missing id entries")
	}
	lup := Extract(LUP, d, DefaultOptions())
	if ex.Entries != 2*lup.Entries {
		t.Errorf("2LUPI entries = %d, want twice LUP's %d", ex.Entries, lup.Entries)
	}
}

func TestExtractSkipWords(t *testing.T) {
	d := parseDoc(t, "manet.xml", xmark.ManetXML)
	full := Extract(LUP, d, DefaultOptions())
	opts := DefaultOptions()
	opts.SkipWords = true
	slim := Extract(LUP, d, opts)
	if slim.Bytes >= full.Bytes {
		t.Errorf("keyword-free index (%d B) not smaller than full-text (%d B)", slim.Bytes, full.Bytes)
	}
	for _, e := range slim.Tables[LUP.TableName(flatTable)] {
		if strings.HasPrefix(e.Key, "w") && !strings.HasPrefix(e.Key, "e") {
			t.Errorf("word key %q present despite SkipWords", e.Key)
		}
	}
}

func TestIndexSizeOrderingLU_LUI_LUP_2LUPI(t *testing.T) {
	// Figure 8's shape: LU < LUI < LUP < 2LUPI (IDs are more compact than
	// paths; 2LUPI stores both).
	cfg := xmark.DefaultConfig(20)
	cfg.TargetDocBytes = 8 << 10
	sizes := map[Strategy]int64{}
	for i := 0; i < cfg.Docs; i++ {
		gd := xmark.GenerateDoc(cfg, i)
		d := parseDoc(t, gd.URI, string(gd.Data))
		for _, s := range All() {
			sizes[s] += Extract(s, d, DefaultOptions()).Bytes
		}
	}
	if !(sizes[LU] < sizes[LUI] && sizes[LUI] < sizes[LUP] && sizes[LUP] < sizes[TwoLUPI]) {
		t.Errorf("size ordering violated: LU=%d LUI=%d LUP=%d 2LUPI=%d",
			sizes[LU], sizes[LUI], sizes[LUP], sizes[TwoLUPI])
	}
}

func newStore(t *testing.T, s Strategy) kv.Store {
	t.Helper()
	store := dynamodb.New(meter.NewLedger())
	if err := CreateTables(store, s); err != nil {
		t.Fatal(err)
	}
	return store
}

func loadCorpus(t *testing.T, store kv.Store, s Strategy, docs []xmark.Doc) {
	t.Helper()
	opts := OptionsFor(store)
	for _, gd := range docs {
		d := parseDoc(t, gd.URI, string(gd.Data))
		if _, _, err := LoadDocument(store, s, d, opts); err != nil {
			t.Fatalf("loading %s: %v", gd.URI, err)
		}
	}
}

func TestStorageRoundTrip(t *testing.T) {
	store := newStore(t, LUI)
	loadCorpus(t, store, LUI, xmark.Paintings()[:2])
	postings, _, err := ReadKey(store, LUI.TableName(flatTable), "ename", IDPosting, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(postings) != 2 {
		t.Fatalf("postings for ename = %v", postings)
	}
	manet := postings["manet.xml"]
	want := []xmltree.NodeID{{Pre: 3, Post: 3, Depth: 2}, {Pre: 6, Post: 8, Depth: 3}}
	if !reflect.DeepEqual(manet.IDs, want) {
		t.Errorf("manet ename IDs = %v, want %v", manet.IDs, want)
	}
}

func TestStorageSplitsOversizedEntries(t *testing.T) {
	// A document with one huge text node forces the word-key entry values
	// over the item budget on SimpleDB (1 KB values).
	var b strings.Builder
	b.WriteString("<a><t>")
	for i := 0; i < 500; i++ {
		b.WriteString(" common")
	}
	b.WriteString("</t>")
	for i := 0; i < 400; i++ {
		b.WriteString("<x>common</x>")
	}
	b.WriteString("</a>")
	d := parseDoc(t, "big.xml", b.String())

	sdb := simpledb.New(meter.NewLedger())
	if err := CreateTables(sdb, LUI); err != nil {
		t.Fatal(err)
	}
	dur, stats, err := LoadDocument(sdb, LUI, d, OptionsFor(sdb))
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Error("no modeled latency")
	}
	if stats.Items <= stats.Entries {
		t.Skipf("no splitting occurred (items=%d entries=%d)", stats.Items, stats.Entries)
	}
	postings, _, err := ReadKey(sdb, LUI.TableName(flatTable), "wcommon", IDPosting, false)
	if err != nil {
		t.Fatal(err)
	}
	ids := postings["big.xml"].IDs
	if len(ids) != 401 { // 1 text node in <t> + 400 in <x>
		t.Errorf("wcommon IDs = %d, want 401", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i].Pre <= ids[i-1].Pre {
			t.Fatal("merged IDs not sorted by pre")
		}
	}
}

func TestSimpleDBIndexLargerThanDynamo(t *testing.T) {
	// SimpleDB cannot hold binary values, so identifier sets are stored as
	// text — the LUI index occupies more bytes (and at least as many
	// items) than on DynamoDB, one of the measured gaps of Table 7.
	docs := xmark.Generate(func() xmark.Config {
		c := xmark.DefaultConfig(6)
		c.TargetDocBytes = 8 << 10
		return c
	}())
	measure := func(store kv.Store) (bytes, items int64) {
		loadCorpus(t, store, LUI, docs)
		for _, tbl := range LUI.Tables() {
			bytes += store.TableBytes(tbl)
			items += store.ItemCount(tbl)
		}
		return bytes, items
	}
	dyn := dynamodb.New(meter.NewLedger())
	if err := CreateTables(dyn, LUI); err != nil {
		t.Fatal(err)
	}
	sdb := simpledb.New(meter.NewLedger())
	if err := CreateTables(sdb, LUI); err != nil {
		t.Fatal(err)
	}
	db, di := measure(dyn)
	sb, si := measure(sdb)
	if sb <= db {
		t.Errorf("simpledb bytes = %d, dynamodb bytes = %d: text encoding must be larger", sb, db)
	}
	if si < di {
		t.Errorf("simpledb items = %d < dynamodb items = %d", si, di)
	}
}

func TestUUIDGen(t *testing.T) {
	g := NewUUIDGen(7)
	a, b := g.Next(), g.Next()
	if a == b {
		t.Error("consecutive UUIDs equal")
	}
	if len(a) != 36 || a[14] != '4' {
		t.Errorf("malformed UUID %q", a)
	}
	if NewUUIDGen(7).Next() != a {
		t.Error("UUIDGen not deterministic per seed")
	}
}

func TestStrategyNames(t *testing.T) {
	for _, s := range All() {
		got, err := ByName(s.Name())
		if err != nil || got != s {
			t.Errorf("ByName(%s) = %v, %v", s.Name(), got, err)
		}
	}
	if _, err := ByName("LUX"); err == nil {
		t.Error("unknown name accepted")
	}
}
