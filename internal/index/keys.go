// Package index implements the paper's four cloud indexing strategies
// (Section 5, Table 2) — LU, LUP, LUI and 2LUPI — together with their
// key-value store mapping (Section 6) and the strategy-specific look-up
// algorithms (Sections 5.1-5.5).
//
// For a document d and strategy I, Extract computes I(d): the set of index
// entries (k, (a, v+)+) to add to the index store, where the attribute name
// a is URI(d) and the values depend on the strategy — nothing (LU), the
// label paths inPath(n) (LUP), or the concatenated sorted structural
// identifiers (LUI). 2LUPI materializes both LUP and LUI in two tables.
//
// LoadDocument maps entries onto key-value items exactly as Section 6
// describes: composite primary keys made of the entry key (hash) and a
// UUID (range), so concurrent loaders never overwrite each other; large
// entries split across several items to respect the 64 KB DynamoDB item
// cap; identifier sets stored as compressed binary values on DynamoDB and
// as text on SimpleDB (whose limits forbid binary values).
package index

import (
	"strings"

	"repro/internal/pattern"
	"repro/internal/xmltree"
)

// Key construction (Section 5, "Notations"): e, a and w are constant
// prefixes and ‖ is concatenation; an attribute yields both a name key and
// a name-value key.
const (
	elementPrefix = "e"
	attrPrefix    = "a"
	wordPrefix    = "w"
)

// ElementKey returns key(n) for an element node: e‖label.
func ElementKey(label string) string { return elementPrefix + label }

// AttrNameKey returns the first key of an attribute node: a‖name.
func AttrNameKey(name string) string { return attrPrefix + name }

// AttrValueKey returns the second key of an attribute node, reflecting its
// value: a‖name⎵value.
func AttrValueKey(name, value string) string { return attrPrefix + name + " " + value }

// WordKey returns key(n) for a word: w‖word.
func WordKey(word string) string { return wordPrefix + word }

// NodeKeys returns the index keys of one document node (two for an
// attribute, one per distinct word for a text node).
func NodeKeys(n *xmltree.Node) []string {
	switch n.Kind {
	case xmltree.Element:
		return []string{ElementKey(n.Label)}
	case xmltree.Attribute:
		return []string{AttrNameKey(n.Label), AttrValueKey(n.Label, n.Text)}
	case xmltree.Text:
		words := xmltree.Words(n.Text)
		keys := make([]string, 0, len(words))
		seen := make(map[string]bool, len(words))
		for _, w := range words {
			k := WordKey(w)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		return keys
	default:
		return nil
	}
}

// Label paths (inPath(n), Sections 5.2/5.4) are stored as strings of
// "/"-separated key components, e.g. "/epainting/ename/wOlympia". Key
// components may themselves contain "/" (an attribute value key such as
// "adate 07/04/2026"), so components are escaped before joining.

// escapeComponent makes a key safe to embed as one path component.
func escapeComponent(key string) string {
	key = strings.ReplaceAll(key, "%", "%25")
	return strings.ReplaceAll(key, "/", "%2F")
}

// PathOf returns the stored label path of a node, using the given key for
// the node's own (final) component.
func PathOf(n *xmltree.Node, finalKey string) string {
	var parts []string
	for cur := n.Parent; cur != nil; cur = cur.Parent {
		parts = append(parts, escapeComponent(ElementKey(cur.Label)))
	}
	// parts is leaf-to-root; reverse while building.
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	b.WriteByte('/')
	b.WriteString(escapeComponent(finalKey))
	return b.String()
}

// QueryStep is one step of an encoded query path: the axis from the
// previous step and the exact key component to match.
type QueryStep struct {
	Axis pattern.Axis
	Key  string
}

// MatchPath reports whether a stored label path matches a query path
// (Section 5.2): components must appear in order, with '/' steps adjacent
// and '//' steps at any distance, and the last step must be the path's
// final component.
func MatchPath(steps []QueryStep, stored string) bool {
	if len(steps) == 0 || !strings.HasPrefix(stored, "/") {
		return false
	}
	comps := strings.Split(stored[1:], "/")
	return matchFrom(steps, comps)
}

// matchFrom matches steps against path components: a Child step consumes
// the immediately next component; a Descendant step may skip any number of
// components first. The full component list must be consumed, since query
// paths are root-to-leaf and the looked-up key is the stored path's final
// component.
func matchFrom(steps []QueryStep, comps []string) bool {
	if len(steps) == 0 {
		return len(comps) == 0 // query paths are root-to-leaf: must consume all
	}
	s := steps[0]
	want := escapeComponent(s.Key)
	if s.Axis == pattern.Child {
		if len(comps) == 0 || comps[0] != want {
			return false
		}
		return matchFrom(steps[1:], comps[1:])
	}
	for i := 0; i < len(comps); i++ {
		if comps[i] == want && matchFrom(steps[1:], comps[i+1:]) {
			return true
		}
	}
	return false
}
