package index

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/cloud/kv"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/resilience"
	"repro/internal/twigjoin"
	"repro/internal/xmltree"
)

// This file implements the look-up side of the strategies (Sections
// 5.1-5.5): given a query, consult the index as precisely as possible to
// find the documents that may hold answers.
//
// All strategies ignore range predicates during look-up (a range scan over
// a key-value store would require a full scan, Section 5.5); the engine
// applies them when evaluating the query on the retrieved documents.
// Queries made of several tree patterns connected by value joins are looked
// up one pattern at a time.

// LookupStats aggregates the cost-relevant facts of one look-up.
type LookupStats struct {
	// GetOps is |op(q,D,I)|: the number of index keys looked up against
	// the store. Keys served from a posting cache do not count — a cache
	// hit issues no billed request (Section 7's cost model).
	GetOps int64
	// GetTime is the modeled index-store latency (the "DynamoDB get" bar
	// of Figure 9b/c).
	GetTime time.Duration
	// BytesFetched is the index payload retrieved; the physical plan that
	// post-processes it (intersections, path filtering, twig joins — the
	// "plan execution" bar) is CPU work proportional to it.
	BytesFetched int64
	// TwigCandidates counts the documents whose identifier streams entered
	// the holistic twig join (LUI and 2LUPI only). It quantifies the
	// effect of 2LUPI's semijoin reduction (Figure 5): the reduction
	// shrinks this number relative to plain LUI.
	TwigCandidates int
	// CacheHits, CacheMisses and CacheEvictions report the posting-cache
	// traffic of the look-up (all zero when no cache is configured).
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	// StoreRetries counts store-level retry attempts absorbed while serving
	// this look-up, when the store is wrapped in kv.Retry. It surfaces
	// degradation (throttling, injected chaos) that the result itself hides;
	// exact for a single-reader store, advisory under concurrent readers.
	StoreRetries int64
	// CoalescedKeys counts index keys served by joining another in-flight
	// identical fetch instead of issuing a billed request (single-flight
	// coalescing; zero unless LookupOptions.Flight is set).
	CoalescedKeys int64
	// DegradedKeys counts index keys skipped because their shards were shed
	// by an open circuit breaker, and Incomplete marks the look-up's URI
	// list as a lower bound: documents whose postings lived on shed shards
	// may be missing. Complete look-ups always have Incomplete false, so
	// callers can serve degraded answers explicitly instead of failing.
	DegradedKeys int64
	Incomplete   bool
}

func (s *LookupStats) add(o LookupStats) {
	s.GetOps += o.GetOps
	s.GetTime += o.GetTime
	s.BytesFetched += o.BytesFetched
	s.TwigCandidates += o.TwigCandidates
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheEvictions += o.CacheEvictions
	s.StoreRetries += o.StoreRetries
	s.CoalescedKeys += o.CoalescedKeys
	s.DegradedKeys += o.DegradedKeys
	s.Incomplete = s.Incomplete || o.Incomplete
}

// statsFromRead folds a ReadKeys summary into look-up statistics.
func statsFromRead(rs ReadStats) LookupStats {
	return LookupStats{
		GetOps:         rs.GetOps,
		GetTime:        rs.GetTime,
		BytesFetched:   rs.Bytes,
		CacheHits:      rs.CacheHits,
		CacheMisses:    rs.CacheMisses,
		CacheEvictions: rs.CacheEvictions,
		StoreRetries:   rs.StoreRetries,
		CoalescedKeys:  rs.CoalescedKeys,
		DegradedKeys:   rs.DegradedKeys,
		Incomplete:     rs.Incomplete,
	}
}

// LookupOptions tunes the execution of a look-up without changing its
// result: any concurrency level and any cache state return byte-identical
// URI lists.
type LookupOptions struct {
	// Concurrency bounds the worker pool that fans out index batch-gets
	// and per-candidate twig joins. 0 selects GOMAXPROCS; 1 runs the
	// sequential path.
	Concurrency int
	// Cache, when non-nil, is consulted before the store and filled with
	// fetched postings. The same cache must not front two different
	// stores.
	Cache *PostingCache
	// Span, when non-nil, is the parent under which the look-up emits its
	// pipeline spans (index.get, semijoin, twigjoin). A nil Span — the
	// default, and always the case when tracing is off — makes every span
	// operation a no-op.
	Span *obs.Span
	// Joins, when non-nil, receives the block-level counters of the
	// operate-on-compressed kernels (blocks read / blocks skipped /
	// containers intersected). A nil Joins makes every update a no-op.
	Joins *JoinCounters
	// Ctx, when non-nil, carries cancellation — and, via
	// resilience.NewContext, the query's modeled-time/retry budget —
	// through every store read and join kernel. A look-up stops with
	// context.Canceled/DeadlineExceeded or resilience.ErrDeadline as soon
	// as the context is done or the budget's modeled deadline is spent; the
	// store latencies it accumulates are charged to the budget. A nil Ctx
	// (the default) never cancels and charges nothing.
	Ctx context.Context
	// Flight, when non-nil, coalesces concurrent identical index fetches
	// across look-ups (single-flight): a cache-fill stampede on a hot key
	// collapses to one billed store read whose decoded postings every
	// waiter shares. Like Cache, the same group must not front two
	// different stores.
	Flight *resilience.Group
	// View, when non-nil, pins the look-up to a snapshot of a mutable
	// corpus: each key's write-buffer overlay is captured before the store
	// fetch, replacement contributions supersede the key's main-store
	// items, and tombstones are subtracted at posting-decode time. Cache
	// and Flight identities fold in the overlay stamp, so look-ups pinned
	// across a mutation boundary never share a stale entry.
	View ReadView
}

// resolveLookup flattens the optional trailing options of the exported
// look-up entry points.
func resolveLookup(opts []LookupOptions) LookupOptions {
	if len(opts) == 0 {
		return LookupOptions{}
	}
	return opts[0]
}

// workers returns the effective worker-pool size.
func (o LookupOptions) workers() int {
	if o.Concurrency > 0 {
		return o.Concurrency
	}
	return runtime.GOMAXPROCS(0)
}

// LookupQuery looks up each tree pattern of the query and returns one URI
// list per pattern, sorted, plus combined statistics.
func LookupQuery(store kv.Store, s Strategy, q *pattern.Query, opts ...LookupOptions) ([][]string, LookupStats, error) {
	opt := resolveLookup(opts)
	var stats LookupStats
	out := make([][]string, len(q.Patterns))
	for i, t := range q.Patterns {
		uris, st, err := LookupPattern(store, s, t, opt)
		if err != nil {
			return nil, stats, fmt.Errorf("pattern %d: %w", i, err)
		}
		stats.add(st)
		out[i] = uris
	}
	return out, stats, nil
}

// LookupPattern returns the sorted URIs of the documents that may embed the
// tree pattern, according to the strategy.
func LookupPattern(store kv.Store, s Strategy, t *pattern.Tree, opts ...LookupOptions) ([]string, LookupStats, error) {
	opt := resolveLookup(opts)
	aug := augment(t)
	switch s {
	case LU:
		return lookupLU(store, s.luTableName(), aug, opt)
	case LUP:
		return lookupLUP(store, s.pathTableName(), aug, opt)
	case LUI:
		return lookupLUI(store, s.idTableName(), aug, nil, opt)
	case TwoLUPI:
		// The LUP phase computes R1, the reduction set of Figure 5's
		// LUP⋉LUI semijoin; its index reads nest under the semijoin span.
		sj := opt.Span.Child(obs.SpanSemijoin)
		lupOpt := opt
		lupOpt.Span = sj
		uris, st1, err := lookupLUP(store, s.pathTableName(), aug, lupOpt)
		sj.SetModeled(st1.GetTime)
		sj.SetAttrInt("reduce_uris", int64(len(uris)))
		sj.SetError(err)
		sj.End()
		if err != nil {
			return nil, st1, err
		}
		reduce := make(map[string]bool, len(uris))
		for _, u := range uris {
			reduce[u] = true
		}
		out, st2, err := lookupLUI(store, s.idTableName(), aug, reduce, opt)
		st2.add(st1)
		return out, st2, err
	default:
		return nil, LookupStats{}, fmt.Errorf("index: unknown strategy %v", s)
	}
}

// augmented is a copy of the pattern with look-up keys resolved and value
// predicates turned into structure: an equality or containment predicate on
// an element adds one virtual descendant node per constant word, carrying
// the corresponding w‖word key (the words of the value are text descendants
// of the element).
type augmented struct {
	tree *pattern.Tree
	keys map[*pattern.Node]string
}

func augment(t *pattern.Tree) *augmented {
	a := &augmented{keys: make(map[*pattern.Node]string)}
	var clone func(n *pattern.Node) *pattern.Node
	clone = func(n *pattern.Node) *pattern.Node {
		c := &pattern.Node{Label: n.Label, IsAttr: n.IsAttr, Axis: n.Axis}
		switch {
		case n.IsAttr && n.Pred.Kind == pattern.Eq:
			// The attribute name-value key serves exactly this case
			// (Section 5, "these help speed up specific kinds of
			// queries").
			a.keys[c] = AttrValueKey(n.Label, n.Pred.Const)
		case n.IsAttr:
			a.keys[c] = AttrNameKey(n.Label)
		default:
			a.keys[c] = ElementKey(n.Label)
		}
		if !n.IsAttr {
			var words []string
			switch n.Pred.Kind {
			case pattern.Eq, pattern.Contains:
				// Both predicates index on the words of the constant: an
				// equality match trivially contains every word of its
				// constant, so look-up treats them alike and the engine
				// tells them apart on the fetched documents.
				words = xmltree.Words(n.Pred.Const)
			}
			for _, w := range words {
				v := &pattern.Node{Label: "#word:" + w, Axis: pattern.Descendant, Parent: c}
				a.keys[v] = WordKey(w)
				c.Children = append(c.Children, v)
			}
		}
		for _, ch := range n.Children {
			cc := clone(ch)
			cc.Parent = c
			c.Children = append(c.Children, cc)
		}
		return c
	}
	a.tree = &pattern.Tree{Root: clone(t.Root)}
	return a
}

// distinctKeys lists the look-up keys of the augmented pattern, sorted.
func (a *augmented) distinctKeys() []string {
	set := make(map[string]bool)
	a.tree.Walk(func(n *pattern.Node) { set[a.keys[n]] = true })
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// queryPaths derives the root-to-leaf key paths of the augmented pattern
// (Section 5.2).
func (a *augmented) queryPaths() [][]QueryStep {
	var out [][]QueryStep
	var rec func(n *pattern.Node, prefix []QueryStep)
	rec = func(n *pattern.Node, prefix []QueryStep) {
		path := append(append([]QueryStep{}, prefix...), QueryStep{Axis: n.Axis, Key: a.keys[n]})
		if len(n.Children) == 0 {
			out = append(out, path)
			return
		}
		for _, c := range n.Children {
			rec(c, path)
		}
	}
	rec(a.tree.Root, nil)
	return out
}

// readKeysSpanned is ReadKeys wrapped in an index.get span (a no-op chain
// when opt.Span is nil): the raw store reads of one look-up phase, with the
// billed get count, bytes and modeled store latency annotated.
func readKeysSpanned(store kv.Store, table string, keys []string, kind PostingKind, binaryIDs bool, opt LookupOptions) (map[string]map[string]*Posting, ReadStats, error) {
	get := opt.Span.Child(obs.SpanIndexGet)
	get.SetAttr("table", table)
	get.SetAttrInt("keys", int64(len(keys)))
	hsrc := kv.AsHedgeStatsSource(store)
	var hs0 resilience.HedgeStats
	if hsrc != nil {
		hs0 = hsrc.HedgeStats()
	}
	postings, rs, err := ReadKeys(store, table, keys, kind, binaryIDs, opt)
	get.SetModeled(rs.GetTime)
	get.SetAttrInt("get_ops", rs.GetOps)
	get.SetAttrInt("bytes", rs.Bytes)
	if rs.CoalescedKeys > 0 {
		get.SetAttrInt("coalesced_keys", rs.CoalescedKeys)
	}
	if rs.Incomplete {
		get.SetAttrInt("degraded_keys", rs.DegradedKeys)
	}
	if rt := kv.AsShardRouter(store); rt != nil && rt.ShardCount() > 1 {
		// Annotate the scatter-gather fan-out: how the fetched keys spread
		// over the store's partitions. The child span carries the same
		// modeled time as the read — sharded batches are billed as one
		// request — so per-stage tables show the scatter without double
		// counting.
		sc := get.Child(obs.SpanScatter)
		sc.SetAttrInt("shards", int64(rt.ShardCount()))
		perShard := make([]int64, rt.ShardCount())
		for _, k := range keys {
			perShard[rt.ShardOf(k)]++
		}
		touched := 0
		maxKeys := int64(0)
		for _, n := range perShard {
			if n > 0 {
				touched++
			}
			if n > maxKeys {
				maxKeys = n
			}
		}
		sc.SetAttrInt("shards_touched", int64(touched))
		sc.SetAttrInt("max_shard_keys", maxKeys)
		if hsrc != nil {
			// The hedges fired while serving this read (delta against the
			// store-lifetime counters; approximate under concurrent reads,
			// whose hedges land in whichever read is in flight).
			hs := hsrc.HedgeStats()
			sc.SetAttrInt("hedge_fired", hs.Fired-hs0.Fired)
			sc.SetAttrInt("hedge_won", hs.Won-hs0.Won)
		}
		sc.SetModeled(rs.GetTime)
		sc.SetError(err)
		sc.End()
	}
	get.SetError(err)
	get.End()
	return postings, rs, err
}

// lookupLU implements Section 5.1: look up every key extracted from the
// query and intersect the URI sets.
func lookupLU(store kv.Store, table string, aug *augmented, opt LookupOptions) ([]string, LookupStats, error) {
	keys := aug.distinctKeys()
	postings, rs, err := readKeysSpanned(store, table, keys, URIPosting, false, opt)
	if err != nil {
		return nil, LookupStats{}, err
	}
	stats := statsFromRead(rs)
	var uriSets []map[string]*Posting
	for _, k := range keys {
		uriSets = append(uriSets, postings[k])
	}
	return intersectURIs(uriSets, opt.Joins), stats, nil
}

// lookupLUP implements Section 5.2: for each root-to-leaf query path, look
// up the key of its last step and keep the URIs having a stored data path
// that matches the query path; intersect across query paths.
func lookupLUP(store kv.Store, table string, aug *augmented, opt LookupOptions) ([]string, LookupStats, error) {
	paths := aug.queryPaths()
	keySet := make(map[string]bool)
	for _, p := range paths {
		keySet[p[len(p)-1].Key] = true
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	postings, rs, err := readKeysSpanned(store, table, keys, PathPosting, false, opt)
	if err != nil {
		return nil, LookupStats{}, err
	}
	stats := statsFromRead(rs)

	var uriSets []map[string]*Posting
	for _, qp := range paths {
		last := qp[len(qp)-1].Key
		matcher := NewPathMatcher(qp)
		matched := make(map[string]*Posting)
		for uri, post := range postings[last] {
			for _, v := range post.PathVals {
				ok, err := matcher.MatchValue(v)
				if err != nil {
					return nil, LookupStats{}, err
				}
				if ok {
					matched[uri] = post
					break
				}
			}
		}
		uriSets = append(uriSets, matched)
	}
	return intersectURIs(uriSets, opt.Joins), stats, nil
}

// lookupLUI implements Sections 5.3-5.4: fetch the identifier streams of
// every query key and run the holistic twig join per candidate document.
// When reduce is non-nil (the 2LUPI plan of Figure 5), only URIs in it are
// considered — the semijoin with the LUP result R1.
func lookupLUI(store kv.Store, table string, aug *augmented, reduce map[string]bool, opt LookupOptions) ([]string, LookupStats, error) {
	keys := aug.distinctKeys()
	postings, rs, err := readKeysSpanned(store, table, keys, IDPosting, store.Limits().SupportsBinary, opt)
	if err != nil {
		return nil, LookupStats{}, err
	}
	stats := statsFromRead(rs)

	// Candidate URIs must appear under every key (and pass the reduction).
	// The bitmap intersector returns them already sorted, which fixes the
	// fan-out order below without a separate sort.
	uriSets := make([]map[string]*Posting, len(keys))
	for i, k := range keys {
		uriSets[i] = postings[k]
	}
	ordered := intersectURIs(uriSets, opt.Joins)
	if reduce != nil {
		kept := ordered[:0]
		for _, uri := range ordered {
			if reduce[uri] {
				kept = append(kept, uri)
			}
		}
		ordered = kept
	}
	stats.TwigCandidates = len(ordered)
	// The reads above charged their modeled latency to the query budget;
	// stop before the CPU-side joins if it is now spent.
	if err := kv.CheckContext(opt.Ctx); err != nil {
		return nil, stats, err
	}
	tj := opt.Span.Child(obs.SpanTwigJoin)
	tj.SetAttrInt("candidates", int64(len(ordered)))

	// The per-candidate holistic twig joins are independent CPU work over
	// read-only postings; fan them out across the worker pool. Candidates
	// are in sorted order so the output (and any future tie-breaking) never
	// depends on scheduling; per-candidate join stats are summed in that
	// same order, keeping the obs counters deterministic too.
	matched := make([]bool, len(ordered))
	joinStats := make([]twigjoin.JoinStats, len(ordered))
	errs := make([]error, len(ordered))
	matchOne := func(ci int) {
		uri := ordered[ci]
		streams := make(twigjoin.IndexedStreams)
		ok := true
		aug.tree.Walk(func(n *pattern.Node) {
			p := postings[aug.keys[n]][uri]
			if p == nil || p.IDCount() == 0 {
				ok = false
				return
			}
			streams[n] = p.IDSet()
		})
		if !ok {
			return
		}
		matched[ci], errs[ci] = twigjoin.MatchIndexedCtx(opt.Ctx, aug.tree, streams, &joinStats[ci])
	}
	if workers := min(opt.workers(), len(ordered)); workers <= 1 {
		for ci := range ordered {
			matchOne(ci)
		}
	} else {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ci := range idx {
					matchOne(ci)
				}
			}()
		}
		for ci := range ordered {
			idx <- ci
		}
		close(idx)
		wg.Wait()
	}
	var total twigjoin.JoinStats
	for _, js := range joinStats {
		total.Add(js)
	}
	opt.Joins.addJoin(total)
	tj.SetAttrInt("blocks_read", total.BlocksRead)
	tj.SetAttrInt("blocks_skipped", total.BlocksSkipped)
	for _, err := range errs {
		if err != nil {
			tj.SetError(err)
			tj.End()
			return nil, stats, err
		}
	}
	var out []string
	for ci, uri := range ordered {
		if matched[ci] {
			out = append(out, uri)
		}
	}
	tj.SetAttrInt("matched", int64(len(out)))
	tj.End()
	return out, stats, nil
}
