package index

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cloud/kv"
	"repro/internal/pattern"
	"repro/internal/twigjoin"
	"repro/internal/xmltree"
)

// This file implements the look-up side of the strategies (Sections
// 5.1-5.5): given a query, consult the index as precisely as possible to
// find the documents that may hold answers.
//
// All strategies ignore range predicates during look-up (a range scan over
// a key-value store would require a full scan, Section 5.5); the engine
// applies them when evaluating the query on the retrieved documents.
// Queries made of several tree patterns connected by value joins are looked
// up one pattern at a time.

// LookupStats aggregates the cost-relevant facts of one look-up.
type LookupStats struct {
	// GetOps is |op(q,D,I)|: the number of index keys looked up.
	GetOps int64
	// GetTime is the modeled index-store latency (the "DynamoDB get" bar
	// of Figure 9b/c).
	GetTime time.Duration
	// BytesFetched is the index payload retrieved; the physical plan that
	// post-processes it (intersections, path filtering, twig joins — the
	// "plan execution" bar) is CPU work proportional to it.
	BytesFetched int64
	// TwigCandidates counts the documents whose identifier streams entered
	// the holistic twig join (LUI and 2LUPI only). It quantifies the
	// effect of 2LUPI's semijoin reduction (Figure 5): the reduction
	// shrinks this number relative to plain LUI.
	TwigCandidates int
}

func (s *LookupStats) add(o LookupStats) {
	s.GetOps += o.GetOps
	s.GetTime += o.GetTime
	s.BytesFetched += o.BytesFetched
	s.TwigCandidates += o.TwigCandidates
}

// LookupQuery looks up each tree pattern of the query and returns one URI
// list per pattern, sorted, plus combined statistics.
func LookupQuery(store kv.Store, s Strategy, q *pattern.Query) ([][]string, LookupStats, error) {
	var stats LookupStats
	out := make([][]string, len(q.Patterns))
	for i, t := range q.Patterns {
		uris, st, err := LookupPattern(store, s, t)
		if err != nil {
			return nil, stats, fmt.Errorf("pattern %d: %w", i, err)
		}
		stats.add(st)
		out[i] = uris
	}
	return out, stats, nil
}

// LookupPattern returns the sorted URIs of the documents that may embed the
// tree pattern, according to the strategy.
func LookupPattern(store kv.Store, s Strategy, t *pattern.Tree) ([]string, LookupStats, error) {
	aug := augment(t)
	switch s {
	case LU:
		return lookupLU(store, s.luTableName(), aug)
	case LUP:
		return lookupLUP(store, s.pathTableName(), aug)
	case LUI:
		return lookupLUI(store, s.idTableName(), aug, nil)
	case TwoLUPI:
		uris, st1, err := lookupLUP(store, s.pathTableName(), aug)
		if err != nil {
			return nil, st1, err
		}
		reduce := make(map[string]bool, len(uris))
		for _, u := range uris {
			reduce[u] = true
		}
		out, st2, err := lookupLUI(store, s.idTableName(), aug, reduce)
		st2.add(st1)
		return out, st2, err
	default:
		return nil, LookupStats{}, fmt.Errorf("index: unknown strategy %v", s)
	}
}

// augmented is a copy of the pattern with look-up keys resolved and value
// predicates turned into structure: an equality or containment predicate on
// an element adds one virtual descendant node per constant word, carrying
// the corresponding w‖word key (the words of the value are text descendants
// of the element).
type augmented struct {
	tree *pattern.Tree
	keys map[*pattern.Node]string
}

func augment(t *pattern.Tree) *augmented {
	a := &augmented{keys: make(map[*pattern.Node]string)}
	var clone func(n *pattern.Node) *pattern.Node
	clone = func(n *pattern.Node) *pattern.Node {
		c := &pattern.Node{Label: n.Label, IsAttr: n.IsAttr, Axis: n.Axis}
		switch {
		case n.IsAttr && n.Pred.Kind == pattern.Eq:
			// The attribute name-value key serves exactly this case
			// (Section 5, "these help speed up specific kinds of
			// queries").
			a.keys[c] = AttrValueKey(n.Label, n.Pred.Const)
		case n.IsAttr:
			a.keys[c] = AttrNameKey(n.Label)
		default:
			a.keys[c] = ElementKey(n.Label)
		}
		if !n.IsAttr {
			var words []string
			switch n.Pred.Kind {
			case pattern.Eq:
				words = xmltree.Words(n.Pred.Const)
			case pattern.Contains:
				words = xmltree.Words(n.Pred.Const)
			}
			for _, w := range words {
				v := &pattern.Node{Label: "#word:" + w, Axis: pattern.Descendant, Parent: c}
				a.keys[v] = WordKey(w)
				c.Children = append(c.Children, v)
			}
		}
		for _, ch := range n.Children {
			cc := clone(ch)
			cc.Parent = c
			c.Children = append(c.Children, cc)
		}
		return c
	}
	a.tree = &pattern.Tree{Root: clone(t.Root)}
	return a
}

// distinctKeys lists the look-up keys of the augmented pattern, sorted.
func (a *augmented) distinctKeys() []string {
	set := make(map[string]bool)
	a.tree.Walk(func(n *pattern.Node) { set[a.keys[n]] = true })
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// queryPaths derives the root-to-leaf key paths of the augmented pattern
// (Section 5.2).
func (a *augmented) queryPaths() [][]QueryStep {
	var out [][]QueryStep
	var rec func(n *pattern.Node, prefix []QueryStep)
	rec = func(n *pattern.Node, prefix []QueryStep) {
		path := append(append([]QueryStep{}, prefix...), QueryStep{Axis: n.Axis, Key: a.keys[n]})
		if len(n.Children) == 0 {
			out = append(out, path)
			return
		}
		for _, c := range n.Children {
			rec(c, path)
		}
	}
	rec(a.tree.Root, nil)
	return out
}

// lookupLU implements Section 5.1: look up every key extracted from the
// query and intersect the URI sets.
func lookupLU(store kv.Store, table string, aug *augmented) ([]string, LookupStats, error) {
	keys := aug.distinctKeys()
	postings, d, bytes, err := ReadKeys(store, table, keys, URIPosting, false)
	if err != nil {
		return nil, LookupStats{}, err
	}
	stats := LookupStats{GetOps: int64(len(keys)), GetTime: d, BytesFetched: bytes}
	var uriSets []map[string]*Posting
	for _, k := range keys {
		uriSets = append(uriSets, postings[k])
	}
	return intersectURIs(uriSets), stats, nil
}

// lookupLUP implements Section 5.2: for each root-to-leaf query path, look
// up the key of its last step and keep the URIs having a stored data path
// that matches the query path; intersect across query paths.
func lookupLUP(store kv.Store, table string, aug *augmented) ([]string, LookupStats, error) {
	paths := aug.queryPaths()
	keySet := make(map[string]bool)
	for _, p := range paths {
		keySet[p[len(p)-1].Key] = true
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	postings, d, bytes, err := ReadKeys(store, table, keys, PathPosting, false)
	if err != nil {
		return nil, LookupStats{}, err
	}
	stats := LookupStats{GetOps: int64(len(keys)), GetTime: d, BytesFetched: bytes}

	var uriSets []map[string]*Posting
	for _, qp := range paths {
		last := qp[len(qp)-1].Key
		matched := make(map[string]*Posting)
		for uri, post := range postings[last] {
			for _, stored := range post.Paths {
				if MatchPath(qp, stored) {
					matched[uri] = post
					break
				}
			}
		}
		uriSets = append(uriSets, matched)
	}
	return intersectURIs(uriSets), stats, nil
}

// lookupLUI implements Sections 5.3-5.4: fetch the identifier streams of
// every query key and run the holistic twig join per candidate document.
// When reduce is non-nil (the 2LUPI plan of Figure 5), only URIs in it are
// considered — the semijoin with the LUP result R1.
func lookupLUI(store kv.Store, table string, aug *augmented, reduce map[string]bool) ([]string, LookupStats, error) {
	keys := aug.distinctKeys()
	postings, d, bytes, err := ReadKeys(store, table, keys, IDPosting, store.Limits().SupportsBinary)
	if err != nil {
		return nil, LookupStats{}, err
	}
	stats := LookupStats{GetOps: int64(len(keys)), GetTime: d, BytesFetched: bytes}

	// Candidate URIs must appear under every key (and pass the reduction).
	candidates := make(map[string]bool)
	for uri := range postings[keys[0]] {
		candidates[uri] = true
	}
	for _, k := range keys[1:] {
		for uri := range candidates {
			if _, ok := postings[k][uri]; !ok {
				delete(candidates, uri)
			}
		}
	}
	if reduce != nil {
		for uri := range candidates {
			if !reduce[uri] {
				delete(candidates, uri)
			}
		}
	}
	stats.TwigCandidates = len(candidates)

	var out []string
	for uri := range candidates {
		streams := make(twigjoin.Streams)
		ok := true
		aug.tree.Walk(func(n *pattern.Node) {
			p := postings[aug.keys[n]][uri]
			if p == nil || len(p.IDs) == 0 {
				ok = false
				return
			}
			streams[n] = twigjoin.Stream(p.IDs)
		})
		if ok && twigjoin.Match(aug.tree, streams) {
			out = append(out, uri)
		}
	}
	sort.Strings(out)
	return out, stats, nil
}

// intersectURIs returns the sorted intersection of the URI sets.
func intersectURIs(sets []map[string]*Posting) []string {
	if len(sets) == 0 {
		return nil
	}
	var out []string
	for uri := range sets[0] {
		in := true
		for _, s := range sets[1:] {
			if _, ok := s[uri]; !ok {
				in = false
				break
			}
		}
		if in {
			out = append(out, uri)
		}
	}
	sort.Strings(out)
	return out
}
