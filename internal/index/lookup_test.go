package index

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/kv"
	"repro/internal/cloud/simpledb"
	"repro/internal/engine"
	"repro/internal/meter"
	"repro/internal/pattern"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

// corpus loads generated docs into a store under every strategy and keeps
// the parsed trees for ground truth.
type corpus struct {
	store kv.Store
	docs  []*xmltree.Document
}

func buildCorpus(t *testing.T, store kv.Store, docs []xmark.Doc) *corpus {
	t.Helper()
	c := &corpus{store: store}
	opts := OptionsFor(store)
	for _, s := range All() {
		if err := CreateTables(store, s); err != nil {
			t.Fatal(err)
		}
	}
	for _, gd := range docs {
		d, err := xmltree.Parse(gd.URI, gd.Data)
		if err != nil {
			t.Fatal(err)
		}
		c.docs = append(c.docs, d)
		for _, s := range All() {
			if _, _, err := LoadDocument(store, s, d, opts); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

// truth returns the URIs of documents actually embedding the pattern
// (with all predicates, including ranges, applied).
func (c *corpus) truth(t *pattern.Tree) []string {
	var out []string
	for _, d := range c.docs {
		if engine.Matches(t, d) {
			out = append(out, d.URI)
		}
	}
	sort.Strings(out)
	return out
}

func isSubset(sub, super []string) bool {
	set := make(map[string]bool, len(super))
	for _, s := range super {
		set[s] = true
	}
	for _, s := range sub {
		if !set[s] {
			return false
		}
	}
	return true
}

var lookupQueries = []string{
	// Point query on the planted rare marker.
	`//item[//name~"Obsidian", /location{val}]`,
	// Two-branch twig with value predicates (the LUP false-positive case).
	`//item[/location="Zanzibar", /payment~"Creditcard"]`,
	// Pure structure.
	`//item[/name, /payment]`,
	`//person[/profile[/education~"Graduate"], /name{val}]`,
	`//open_auction[/type="Featured", /annotation[/description]]`,
	// Attribute equality: served by the a‖name⎵value key.
	`//person[/@id="person3"]`,
	// Range predicate: ignored at look-up, applied by the engine.
	`//closed_auction[/price{val} in ("1000","1100")]`,
	// Deep paths.
	`//site[//mail[/text~"Zanzibar"]]`,
	`//item[/description[/parlist[/listitem[/text~"Featured"]]]]`,
}

func TestLookupCompletenessAndPrecision(t *testing.T) {
	cfg := xmark.DefaultConfig(120)
	cfg.TargetDocBytes = 4 << 10
	c := buildCorpus(t, dynamodb.New(meter.NewLedger()), xmark.Generate(cfg))

	for _, qs := range lookupQueries {
		q := pattern.MustParse(qs)
		tr := q.Patterns[0]
		truth := c.truth(tr)
		results := map[Strategy][]string{}
		for _, s := range All() {
			uris, stats, err := LookupPattern(c.store, s, tr)
			if err != nil {
				t.Fatalf("%s on %s: %v", s.Name(), qs, err)
			}
			if stats.GetOps == 0 {
				t.Errorf("%s on %s: no get ops recorded", s.Name(), qs)
			}
			results[s] = uris
			// Completeness: the index may overestimate but never miss a
			// document with results (no false negatives).
			if !isSubset(truth, uris) {
				t.Errorf("%s on %s: false negatives\n truth=%v\n got=%v", s.Name(), qs, truth, uris)
			}
		}
		// Precision ordering: LUP ⊆ LU, LUI ⊆ LUP, 2LUPI = LUI.
		if !isSubset(results[LUP], results[LU]) {
			t.Errorf("%s: LUP ⊄ LU", qs)
		}
		if !isSubset(results[LUI], results[LUP]) {
			t.Errorf("%s: LUI ⊄ LUP", qs)
		}
		if !reflect.DeepEqual(results[LUI], results[TwoLUPI]) {
			t.Errorf("%s: 2LUPI %v != LUI %v", qs, results[TwoLUPI], results[LUI])
		}
	}
}

// Table 5's headline property: LUI and 2LUPI are exact for tree pattern
// queries without range predicates — no false positives.
func TestLUIExactOnTreePatterns(t *testing.T) {
	cfg := xmark.DefaultConfig(120)
	cfg.TargetDocBytes = 4 << 10
	c := buildCorpus(t, dynamodb.New(meter.NewLedger()), xmark.Generate(cfg))
	for _, qs := range lookupQueries {
		q := pattern.MustParse(qs)
		tr := q.Patterns[0]
		hasRange := false
		tr.Walk(func(n *pattern.Node) {
			if n.Pred.Kind == pattern.Range {
				hasRange = true
			}
		})
		if hasRange {
			continue
		}
		truth := c.truth(tr)
		got, _, err := LookupPattern(c.store, LUI, tr)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, truth) {
			t.Errorf("LUI not exact on %s:\n got   %v\n truth %v", qs, got, truth)
		}
	}
}

// The corpus modifications must actually create the Table 5 shape: strictly
// fewer docs as strategies refine, for at least one query.
func TestStrategiesDiscriminate(t *testing.T) {
	cfg := xmark.DefaultConfig(240)
	cfg.TargetDocBytes = 4 << 10
	c := buildCorpus(t, dynamodb.New(meter.NewLedger()), xmark.Generate(cfg))

	// LU > LUP: the rare-name noise docs carry the word in mail text, so
	// only path filtering excludes them.
	q1 := pattern.MustParse(`//item[//name~"Obsidian", /location{val}]`).Patterns[0]
	lu, _, _ := LookupPattern(c.store, LU, q1)
	lup, _, _ := LookupPattern(c.store, LUP, q1)
	if len(lu) <= len(lup) {
		t.Errorf("rare-name query: LU=%d LUP=%d, want LU > LUP", len(lu), len(lup))
	}
	if len(lup) != 1 {
		t.Errorf("rare-name query: LUP=%v, want exactly the planted doc", lup)
	}

	// LUP > LUI: heterogeneous docs split location and payment across
	// sibling items.
	q2 := pattern.MustParse(`//item[/location="Zanzibar", /payment~"Creditcard"]`).Patterns[0]
	lup2, _, _ := LookupPattern(c.store, LUP, q2)
	lui2, _, _ := LookupPattern(c.store, LUI, q2)
	if len(lup2) <= len(lui2) {
		t.Errorf("split-feature query: LUP=%d LUI=%d, want LUP > LUI", len(lup2), len(lui2))
	}
	if len(lui2) == 0 {
		t.Error("split-feature query has no true matches; corpus markers broken")
	}
}

func TestLookupQueryPerPattern(t *testing.T) {
	c := buildCorpus(t, dynamodb.New(meter.NewLedger()), xmark.Paintings())
	q := pattern.MustParse(`//museum[/name{val}, //painting[/@id $a]], //painting[/@id $b, /painter[/name[/last="Delacroix"]]] where $a = $b`)
	per, stats, err := LookupQuery(c.store, LUP, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 2 {
		t.Fatalf("per-pattern sets = %d", len(per))
	}
	// Pattern 0 (museums): all four museum docs; pattern 1: painting docs
	// whose painter last name contains the word Delacroix.
	if len(per[0]) != 4 {
		t.Errorf("museum candidates = %v", per[0])
	}
	for _, u := range per[1] {
		if u == "manet.xml" {
			t.Errorf("manet.xml among Delacroix candidates: %v", per[1])
		}
	}
	if len(per[1]) == 0 || stats.GetOps == 0 {
		t.Errorf("per[1]=%v stats=%+v", per[1], stats)
	}
}

func TestLookupOnSimpleDB(t *testing.T) {
	// The same look-ups work against the SimpleDB backend (text IDs, no
	// batch get), with identical results.
	dyn := buildCorpus(t, dynamodb.New(meter.NewLedger()), xmark.Paintings())
	sdb := buildCorpus(t, simpledb.New(meter.NewLedger()), xmark.Paintings())
	q := pattern.MustParse(`//painting[/name~"Lion", /painter[/name[/last{val}]]]`).Patterns[0]
	for _, s := range All() {
		a, _, err := LookupPattern(dyn.store, s, q)
		if err != nil {
			t.Fatal(err)
		}
		b, stats, err := LookupPattern(sdb.store, s, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: dynamodb=%v simpledb=%v", s.Name(), a, b)
		}
		if stats.GetTime <= 0 {
			t.Errorf("%s: no modeled latency on simpledb", s.Name())
		}
	}
}

func TestLookupAttributeValueKeySelectivity(t *testing.T) {
	// An equality on an attribute must use the a‖name⎵value key: fewer
	// URIs than the bare attribute name key would produce.
	cfg := xmark.DefaultConfig(100)
	cfg.TargetDocBytes = 4 << 10
	c := buildCorpus(t, dynamodb.New(meter.NewLedger()), xmark.Generate(cfg))
	withVal := pattern.MustParse(`//person[/@id="person3"]`).Patterns[0]
	bare := pattern.MustParse(`//person[/@id]`).Patterns[0]
	a, _, _ := LookupPattern(c.store, LU, withVal)
	b, _, _ := LookupPattern(c.store, LU, bare)
	if len(a) >= len(b) {
		t.Errorf("attr value key not selective: with=%d bare=%d", len(a), len(b))
	}
	if !isSubset(a, b) {
		t.Error("value-key result not a subset of name-key result")
	}
}

func TestLookupMissingKeyYieldsEmpty(t *testing.T) {
	c := buildCorpus(t, dynamodb.New(meter.NewLedger()), xmark.Paintings())
	q := pattern.MustParse(`//nonexistent[/alsonot]`).Patterns[0]
	for _, s := range All() {
		uris, _, err := LookupPattern(c.store, s, q)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(uris) != 0 {
			t.Errorf("%s returned %v for a label absent from the corpus", s.Name(), uris)
		}
	}
}

func TestIndexedEvaluationMatchesNoIndex(t *testing.T) {
	// End to end: evaluating on the looked-up subset must produce exactly
	// the same rows as evaluating on the whole corpus, for every strategy
	// (the whole point of Section 5's look-up correctness).
	cfg := xmark.DefaultConfig(80)
	cfg.TargetDocBytes = 4 << 10
	c := buildCorpus(t, dynamodb.New(meter.NewLedger()), xmark.Generate(cfg))
	byURI := map[string]*xmltree.Document{}
	for _, d := range c.docs {
		byURI[d.URI] = d
	}
	queries := []string{
		`//item[//name~"Obsidian", /location{val}]`,
		`//item[/location="Zanzibar", /payment{val}~"Creditcard"]`,
		`//closed_auction[/price{val} in ("1000","1100")]`,
		`//person[/name{val}, /profile[/education="Graduate School"]]`,
	}
	for _, qs := range queries {
		q := pattern.MustParse(qs)
		want, err := engine.EvalQueryOnDocs(q, c.docs)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range All() {
			per, _, err := LookupQuery(c.store, s, q)
			if err != nil {
				t.Fatal(err)
			}
			sets := make([][]*xmltree.Document, len(per))
			for i, uris := range per {
				for _, u := range uris {
					sets[i] = append(sets[i], byURI[u])
				}
			}
			got, err := engine.EvalQueryOnDocSets(q, sets)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Rows) != len(want.Rows) {
				t.Errorf("%s on %s: %d rows via index, %d without",
					s.Name(), qs, len(got.Rows), len(want.Rows))
			}
		}
	}
}
