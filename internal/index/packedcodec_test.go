package index

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/xmltree"
)

// decodeViaSet decodes one blob through DecodeIDSet, forcing the lazy
// blocked route when the blob supports it.
func decodeViaSet(t *testing.T, blob []byte) []xmltree.NodeID {
	t.Helper()
	set, ids, err := DecodeIDSet(blob, true)
	if err != nil {
		t.Fatalf("DecodeIDSet: %v", err)
	}
	if set == nil {
		return ids
	}
	all, err := set.All()
	if err != nil {
		t.Fatalf("Set.All: %v", err)
	}
	return all
}

// TestIDPayloadDifferential pins decode equality across the three binary
// encodings of the same identifier set — packed-blocked, varint-blocked and
// the legacy stream — through both the eager and the lazy decode routes,
// across the widths and set sizes the block kernels specialize on.
func TestIDPayloadDifferential(t *testing.T) {
	for _, n := range []int{1, 31, 32, 129, 1000} {
		for seed := int64(1); seed <= 3; seed++ {
			ids := genSortedIDs(n, seed)
			encodings := map[string][][]byte{
				"packed": EncodeIDsPayload(ids, true, 0, PayloadPacked),
				"varint": EncodeIDsBlockedVarint(ids, 0),
				"legacy": EncodeIDsBinary(ids, 0),
			}
			for name, blobs := range encodings {
				var eager, lazy []xmltree.NodeID
				for _, b := range blobs {
					eager = append(eager, decodeAllBinary(t, [][]byte{b})...)
					lazy = append(lazy, decodeViaSet(t, b)...)
				}
				if !idsEqual(eager, ids) {
					t.Fatalf("n=%d seed=%d %s: eager decode mismatch", n, seed, name)
				}
				if !idsEqual(lazy, ids) {
					t.Fatalf("n=%d seed=%d %s: lazy decode mismatch", n, seed, name)
				}
			}
			// Above the blocked cut-off the packed encoding must not be
			// larger than its varint twin by more than the per-block format
			// byte (the negotiation guarantee).
			if n >= blockedMinIDs {
				size := func(blobs [][]byte) int {
					total := 0
					for _, b := range blobs {
						total += len(b)
					}
					return total
				}
				p, v := size(encodings["packed"]), size(encodings["varint"])
				if p > v {
					t.Errorf("n=%d seed=%d: packed %d bytes > varint %d", n, seed, p, v)
				}
			}
		}
	}
}

// TestPostingsBytesPackedCharge is the cache-accounting regression: a
// blocked posting is charged its actual payload bytes, so a packed posting
// must charge less than a varint posting over the same identifier set, and
// both charges must equal the documented formula exactly.
func TestPostingsBytesPackedCharge(t *testing.T) {
	ids := genSortedIDs(512, 9)
	k := cacheKey{table: "tbl", key: "eitem"}
	charge := func(blob []byte) int64 {
		set, rest, err := DecodeIDSet(blob, true)
		if err != nil || set == nil {
			t.Fatalf("DecodeIDSet: set=%v rest=%d err=%v", set, len(rest), err)
		}
		p := &Posting{URI: "doc-1", blocked: set}
		p.PathVals = append(p.PathVals, []byte("/ea/eb"))
		got := postingsBytes(k, map[string]*Posting{"doc-1": p})
		want := int64(len(k.table)+len(k.key)+1) +
			int64(len("doc-1")*2) +
			int64(len("/ea/eb")) +
			int64(len(ids))*12 +
			set.PayloadBytes() + int64(set.Blocks())*48 +
			48 // per-posting map slot overhead
		if got != want {
			t.Fatalf("postingsBytes = %d, want %d", got, want)
		}
		return got
	}
	packed := charge(EncodeIDsBlocked(ids, 0)[0])
	varint := charge(EncodeIDsBlockedVarint(ids, 0)[0])
	if packed >= varint {
		t.Errorf("packed posting charged %d bytes, varint %d; packed should be cheaper", packed, varint)
	}
}

// pathVocab are raw step keys for the matcher differential, including keys
// whose escaped forms differ (embedded '/' and '%').
var pathVocab = []string{"ea", "eb", "ec", "ename", "adate 07/04", "w50%off", "w%2F"}

func randomSteps(r *rand.Rand, n int) []QueryStep {
	steps := make([]QueryStep, n)
	for i := range steps {
		axis := pattern.Child
		if r.Intn(2) == 0 {
			axis = pattern.Descendant
		}
		steps[i] = QueryStep{Axis: axis, Key: pathVocab[r.Intn(len(pathVocab))]}
	}
	return steps
}

func randomStoredPath(r *rand.Rand) string {
	var b strings.Builder
	depth := 1 + r.Intn(6)
	for i := 0; i < depth; i++ {
		b.WriteByte('/')
		b.WriteString(escapeComponent(pathVocab[r.Intn(len(pathVocab))]))
	}
	return b.String()
}

// TestPathMatcherAgreesWithMatchPath is the prefix-skip matcher
// differential: over random query paths and random stored path sets —
// plain values and front-coded blocks alike — PathMatcher.MatchValue must
// agree exactly with decoding and running MatchPath per path.
func TestPathMatcherAgreesWithMatchPath(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	hostile := []string{"", "/", "//", "/ea/", "ea/eb", "/ea//eb", "/%2F"}
	for trial := 0; trial < 400; trial++ {
		steps := randomSteps(r, 1+r.Intn(4))
		m := NewPathMatcher(steps)

		paths := make([]string, 0, 8)
		for i := 1 + r.Intn(7); i > 0; i-- {
			paths = append(paths, randomStoredPath(r))
		}
		if r.Intn(3) == 0 {
			paths = append(paths, hostile[r.Intn(len(hostile))])
		}

		for _, p := range paths {
			got, err := m.MatchValue([]byte(p))
			if err != nil {
				t.Fatalf("trial %d: MatchValue(%q): %v", trial, p, err)
			}
			if want := MatchPath(steps, p); got != want {
				t.Fatalf("trial %d: MatchValue(%q) = %v, MatchPath = %v (steps %v)",
					trial, p, got, want, steps)
			}
		}

		// Small caps force multi-block values, exercising the checkpoint
		// reset between blocks.
		maxValue := 1 << 20
		if r.Intn(2) == 0 {
			maxValue = 16 + r.Intn(64)
		}
		for _, block := range EncodePathsCompressed(paths, maxValue) {
			got, err := m.MatchValue(block)
			if err != nil {
				t.Fatalf("trial %d: MatchValue(block): %v", trial, err)
			}
			decoded, err := DecodePathValue(block)
			if err != nil {
				t.Fatalf("trial %d: DecodePathValue: %v", trial, err)
			}
			want := false
			for _, p := range decoded {
				if MatchPath(steps, p) {
					want = true
					break
				}
			}
			if got != want {
				t.Fatalf("trial %d: block MatchValue = %v, per-path MatchPath = %v (steps %v, paths %q)",
					trial, got, want, steps, decoded)
			}
		}
	}
}

// TestPathMatcherFallback covers the two NFA escape hatches: the empty
// query path and one too deep for the 63-step state mask both take the
// decode-and-MatchPath route and still agree with it.
func TestPathMatcherFallback(t *testing.T) {
	deep := make([]QueryStep, 70)
	for i := range deep {
		deep[i] = QueryStep{Axis: pattern.Child, Key: "ea"}
	}
	var deepPath strings.Builder
	for i := 0; i < 70; i++ {
		deepPath.WriteString("/ea")
	}
	for _, tc := range []struct {
		steps []QueryStep
		path  string
		want  bool
	}{
		{nil, "/ea", false},
		{deep, deepPath.String(), true},
		{deep, "/ea/eb", false},
	} {
		m := NewPathMatcher(tc.steps)
		for _, v := range [][]byte{
			[]byte(tc.path),
			EncodePathsCompressed([]string{tc.path}, 0)[0],
		} {
			got, err := m.MatchValue(v)
			if err != nil {
				t.Fatalf("MatchValue: %v", err)
			}
			if got != tc.want {
				t.Errorf("MatchValue(%d steps, %q) = %v, want %v", len(tc.steps), tc.path, got, tc.want)
			}
		}
	}
}

// TestDecodedPathsHelper: the Posting accessor materializes exactly what
// DecodePathValue yields over each raw value, in order.
func TestDecodedPathsHelper(t *testing.T) {
	paths := []string{"/ea/eb", "/ea/ec", "/ename"}
	p := &Posting{URI: "u"}
	p.PathVals = append(p.PathVals, []byte("/plain"))
	p.PathVals = append(p.PathVals, EncodePathsCompressed(paths, 0)[0])
	got, err := p.DecodedPaths()
	if err != nil {
		t.Fatal(err)
	}
	want := append([]string{"/plain"}, sortedPaths(paths)...)
	if len(got) != len(want) {
		t.Fatalf("DecodedPaths = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DecodedPaths[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if !bytes.Equal(p.PathVals[0], []byte("/plain")) {
		t.Fatal("DecodedPaths mutated the raw values")
	}
}
