package index

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cloud/dynamodb"
	"repro/internal/meter"
	"repro/internal/pattern"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

// Differential tests of the concurrent query pipeline: at every concurrency
// level, and with or without the posting cache, a look-up must return the
// same URI lists and — without a cache — the same billed statistics as the
// sequential baseline.

var parallelQueries = []string{
	`//item[//name~"Obsidian", /location{val}]`,
	`//item[/location="Zanzibar", /payment~"Creditcard"]`,
	`//item[/name, /payment]`,
	`//person[/profile[/education~"Graduate"], /name{val}]`,
	`//open_auction[/type="Featured", /annotation[/description]]`,
	`//person[/@id="person3"]`,
	`//site[//mail[/text~"Zanzibar"]]`,
}

func TestParallelLookupMatchesSequential(t *testing.T) {
	// Randomized corpora: several seeds and sizes, so batch-get chunking
	// and twig-join fan-out see different shapes.
	for _, seed := range []int64{42, 7, 1234} {
		cfg := xmark.DefaultConfig(90)
		cfg.Seed = seed
		cfg.TargetDocBytes = 3 << 10
		c := buildCorpus(t, dynamodb.New(meter.NewLedger()), xmark.Generate(cfg))

		for _, s := range All() {
			for _, qs := range parallelQueries {
				q := pattern.MustParse(qs).Patterns[0]
				base, baseStats, err := LookupPattern(c.store, s, q, LookupOptions{Concurrency: 1})
				if err != nil {
					t.Fatalf("seed %d %s %q sequential: %v", seed, s.Name(), qs, err)
				}
				for _, conc := range []int{2, 8} {
					got, stats, err := LookupPattern(c.store, s, q, LookupOptions{Concurrency: conc})
					if err != nil {
						t.Fatalf("seed %d %s %q conc=%d: %v", seed, s.Name(), qs, conc, err)
					}
					if !reflect.DeepEqual(got, base) {
						t.Errorf("seed %d %s %q conc=%d: URIs %v != sequential %v",
							seed, s.Name(), qs, conc, got, base)
					}
					if stats.GetOps != baseStats.GetOps || stats.BytesFetched != baseStats.BytesFetched {
						t.Errorf("seed %d %s %q conc=%d: stats (GetOps %d, bytes %d) != sequential (GetOps %d, bytes %d)",
							seed, s.Name(), qs, conc,
							stats.GetOps, stats.BytesFetched, baseStats.GetOps, baseStats.BytesFetched)
					}
					if stats.GetTime != baseStats.GetTime {
						t.Errorf("seed %d %s %q conc=%d: modeled GetTime %v != sequential %v",
							seed, s.Name(), qs, conc, stats.GetTime, baseStats.GetTime)
					}
				}
			}
		}
	}
}

// TestCachedLookupCoherence interleaves loads, cached look-ups and deletes,
// checking after every mutation that a cached look-up matches an uncached
// one at every concurrency level.
func TestCachedLookupCoherence(t *testing.T) {
	cfg := xmark.DefaultConfig(40)
	cfg.TargetDocBytes = 3 << 10
	gen := xmark.Generate(cfg)

	store := dynamodb.New(meter.NewLedger())
	for _, s := range All() {
		if err := CreateTables(store, s); err != nil {
			t.Fatal(err)
		}
	}
	cache := NewPostingCache(32 << 20)
	opts := OptionsFor(store)

	var docs []*xmltree.Document
	load := func(from, to int) {
		for _, gd := range gen[from:to] {
			d, err := xmltree.Parse(gd.URI, gd.Data)
			if err != nil {
				t.Fatal(err)
			}
			docs = append(docs, d)
			for _, s := range All() {
				if _, _, err := LoadDocument(store, s, d, opts, cache); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	remove := func(n int) {
		for i := 0; i < n && len(docs) > 0; i++ {
			d := docs[0]
			docs = docs[1:]
			for _, s := range All() {
				if _, _, err := DeleteDocument(store, s, d, opts, cache); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	check := func(stage string) {
		for _, s := range All() {
			for _, qs := range parallelQueries {
				q := pattern.MustParse(qs).Patterns[0]
				fresh, _, err := LookupPattern(store, s, q)
				if err != nil {
					t.Fatalf("%s %s %q uncached: %v", stage, s.Name(), qs, err)
				}
				for _, conc := range []int{1, 2, 8} {
					cached, _, err := LookupPattern(store, s, q, LookupOptions{Concurrency: conc, Cache: cache})
					if err != nil {
						t.Fatalf("%s %s %q cached conc=%d: %v", stage, s.Name(), qs, conc, err)
					}
					if !reflect.DeepEqual(cached, fresh) {
						t.Errorf("%s %s %q cached conc=%d: URIs %v != uncached %v",
							stage, s.Name(), qs, conc, cached, fresh)
					}
				}
			}
		}
	}

	load(0, 25)
	check("after initial load")
	remove(8)
	check("after deletes")
	load(25, len(gen))
	check("after reload")
	remove(5)
	check("after final deletes")
}

// TestCacheHitsNotBilled checks the cost-model contract: a fully cached
// repeat of a look-up issues no billed index request at all.
func TestCacheHitsNotBilled(t *testing.T) {
	cfg := xmark.DefaultConfig(30)
	cfg.TargetDocBytes = 2 << 10
	c := buildCorpus(t, dynamodb.New(meter.NewLedger()), xmark.Generate(cfg))
	cache := NewPostingCache(32 << 20)

	q := pattern.MustParse(`//item[/name, /payment]`).Patterns[0]
	for _, s := range All() {
		cold, coldStats, err := LookupPattern(c.store, s, q, LookupOptions{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if coldStats.CacheHits != 0 || coldStats.CacheMisses == 0 {
			t.Errorf("%s cold: hits %d misses %d, want 0 hits and >0 misses",
				s.Name(), coldStats.CacheHits, coldStats.CacheMisses)
		}
		warm, warmStats, err := LookupPattern(c.store, s, q, LookupOptions{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(warm, cold) {
			t.Errorf("%s warm URIs %v != cold %v", s.Name(), warm, cold)
		}
		if warmStats.GetOps != 0 || warmStats.BytesFetched != 0 || warmStats.GetTime != 0 {
			t.Errorf("%s warm look-up billed GetOps=%d bytes=%d time=%v, want all zero",
				s.Name(), warmStats.GetOps, warmStats.BytesFetched, warmStats.GetTime)
		}
		if warmStats.CacheMisses != 0 || warmStats.CacheHits == 0 {
			t.Errorf("%s warm: hits %d misses %d, want >0 hits and 0 misses",
				s.Name(), warmStats.CacheHits, warmStats.CacheMisses)
		}
	}
}

// TestPostingCacheEviction fills a tiny cache past its budget and checks
// that it stays bounded and counts evictions.
func TestPostingCacheEviction(t *testing.T) {
	cache := NewPostingCache(16 << 10) // 1 KiB per shard
	for i := 0; i < 512; i++ {
		postings := map[string]*Posting{
			fmt.Sprintf("doc-%03d.xml", i): {URI: "u", PathVals: [][]byte{[]byte("/ea/eb/ec")}},
		}
		cache.put(cacheKey{table: "t", key: fmt.Sprintf("k%03d", i), kind: PathPosting}, postings)
	}
	if got, budget := cache.Bytes(), int64(16<<10); got > budget {
		t.Errorf("cache holds %d bytes, budget %d", got, budget)
	}
	_, _, evictions := cache.Counters()
	if evictions == 0 {
		t.Error("no evictions recorded after overfilling the cache")
	}
	if cache.Len() == 0 {
		t.Error("cache empty after inserts")
	}
}

// TestPostingCacheConcurrent hammers one cache from many goroutines mixing
// gets, puts and invalidations; the race detector does the real checking.
func TestPostingCacheConcurrent(t *testing.T) {
	cache := NewPostingCache(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := cacheKey{table: "t", key: fmt.Sprintf("k%d", (g+i)%37), kind: URIPosting}
				switch i % 3 {
				case 0:
					cache.put(k, map[string]*Posting{"d.xml": {URI: "d.xml"}})
				case 1:
					cache.get(k)
				default:
					cache.Invalidate(k.table, k.key)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestAugmentEqContainsIdentical is the regression test for the merged
// Eq/Contains arms: both predicate kinds must index the constant's words
// identically.
func TestAugmentEqContainsIdentical(t *testing.T) {
	for _, constant := range []string{"Zanzibar", "Graduate degree", "one two three"} {
		eq := pattern.MustParse(fmt.Sprintf(`//item[/location=%q]`, constant)).Patterns[0]
		contains := pattern.MustParse(fmt.Sprintf(`//item[/location~%q]`, constant)).Patterns[0]
		ae, ac := augment(eq), augment(contains)
		var se, sc []string
		collect := func(a *augmented, out *[]string) {
			a.tree.Walk(func(n *pattern.Node) {
				*out = append(*out, fmt.Sprintf("%s|%v|%s", n.Label, n.Axis, a.keys[n]))
			})
		}
		collect(ae, &se)
		collect(ac, &sc)
		if !reflect.DeepEqual(se, sc) {
			t.Errorf("constant %q: augmented trees differ\neq:       %v\ncontains: %v", constant, se, sc)
		}
		if len(ae.distinctKeys()) != len(ac.distinctKeys()) ||
			!reflect.DeepEqual(ae.distinctKeys(), ac.distinctKeys()) {
			t.Errorf("constant %q: distinct keys differ: %v vs %v",
				constant, ae.distinctKeys(), ac.distinctKeys())
		}
	}
}

// TestUUIDGenFork checks reproducibility and independence of forked
// generators.
func TestUUIDGenFork(t *testing.T) {
	parent := NewUUIDGen(7)
	a1 := parent.Fork(1).Next()
	a2 := parent.Fork(2).Next()
	if a1 == a2 {
		t.Error("sibling forks produced the same identifier")
	}
	if NewUUIDGen(7).Fork(1).Next() != a1 {
		t.Error("fork not reproducible for the same seed and index")
	}
	if parent.Next() == a1 {
		t.Error("parent stream collides with child stream")
	}

	// Concurrent children never collide (and the race detector sees no
	// shared state between them).
	const workers, per = 8, 200
	ids := make([][]string, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := parent.Fork(100 + i)
			for j := 0; j < per; j++ {
				ids[i] = append(ids[i], g.Next())
			}
		}(i)
	}
	wg.Wait()
	seen := make(map[string]bool, workers*per)
	for _, list := range ids {
		for _, id := range list {
			if seen[id] {
				t.Fatalf("duplicate identifier %s across forks", id)
			}
			seen[id] = true
		}
	}
}
