package index

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Path-list compression, the improvement the paper's conclusion suggests:
// "Further compression of the paths in the LUP index could probably make
// it even more competitive."
//
// A key's paths share long prefixes (they all descend from the same
// document root), so a sorted path list front-codes well: each path is
// stored as the length of the prefix it shares with its predecessor plus
// the remaining suffix. Compressed blocks are self-describing — they start
// with a marker byte that no plain path can start with (paths always start
// with '/') — so readers decode transparently and compressed and plain
// entries can coexist in one table.

// pathBlockMarker distinguishes front-coded blocks from plain path values.
const pathBlockMarker = 0x01

// EncodePathsCompressed front-codes a path list into blocks of at most
// maxValue bytes. Paths are sorted first (the order is irrelevant to the
// LUP look-up, which treats the list as a set).
func EncodePathsCompressed(paths []string, maxValue int) [][]byte {
	if maxValue <= 0 {
		maxValue = 1 << 20
	}
	sorted := append([]string(nil), paths...)
	sort.Strings(sorted)
	var blocks [][]byte
	var buf []byte
	prev := ""
	var tmp [2 * binary.MaxVarintLen32]byte
	flush := func() {
		if len(buf) > 1 {
			blocks = append(blocks, buf)
		}
		buf = nil
		prev = ""
	}
	for _, p := range sorted {
		if buf == nil {
			buf = []byte{pathBlockMarker}
		}
		shared := commonPrefix(prev, p)
		n := binary.PutUvarint(tmp[:], uint64(shared))
		n += binary.PutUvarint(tmp[n:], uint64(len(p)-shared))
		entry := len(tmp[:n]) + len(p) - shared
		if len(buf)+entry > maxValue && len(buf) > 1 {
			flush()
			buf = []byte{pathBlockMarker}
			shared = 0
			n = binary.PutUvarint(tmp[:], 0)
			n += binary.PutUvarint(tmp[n:], uint64(len(p)))
		}
		buf = append(buf, tmp[:n]...)
		buf = append(buf, p[shared:]...)
		prev = p
	}
	flush()
	if len(blocks) == 0 {
		blocks = [][]byte{{pathBlockMarker}}
	}
	return blocks
}

func commonPrefix(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// DecodePathValue decodes one stored path value: either a plain path
// string or a front-coded block. Each decoded path is assembled in one
// reused byte buffer and converted to a string once, so the decode costs a
// single allocation per path rather than the two a prefix+suffix string
// concatenation would.
func DecodePathValue(v []byte) ([]string, error) {
	if len(v) == 0 || v[0] != pathBlockMarker {
		return []string{string(v)}, nil
	}
	var out []string
	var buf []byte // previous path's bytes, truncated and extended in place
	rest := v[1:]
	for len(rest) > 0 {
		shared, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("index: corrupt path block (prefix length)")
		}
		rest = rest[n:]
		suffix, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("index: corrupt path block (suffix length)")
		}
		rest = rest[n:]
		// Compare in uint64: a hostile length like 1<<63 would wrap negative
		// under int() and slip past an int comparison, then panic in the
		// slice expression below (found by FuzzDecodePathValue).
		if shared > uint64(len(buf)) || suffix > uint64(len(rest)) {
			return nil, fmt.Errorf("index: corrupt path block (lengths out of range)")
		}
		buf = append(buf[:shared], rest[:suffix]...)
		rest = rest[suffix:]
		out = append(out, string(buf))
	}
	return out, nil
}

// ValidatePathValue structurally checks a stored path value without
// materializing any path string: plain values are always valid, and a
// front-coded block must walk cleanly with the same length guards as
// DecodePathValue. Read paths that retain raw values call this once at
// decode time, so corrupt blocks fail there — exactly where an eager
// decode would have failed — rather than surfacing later during matching.
func ValidatePathValue(v []byte) error {
	if len(v) == 0 || v[0] != pathBlockMarker {
		return nil
	}
	rest := v[1:]
	prevLen := uint64(0)
	for len(rest) > 0 {
		shared, n := binary.Uvarint(rest)
		if n <= 0 {
			return fmt.Errorf("index: corrupt path block (prefix length)")
		}
		rest = rest[n:]
		suffix, n := binary.Uvarint(rest)
		if n <= 0 {
			return fmt.Errorf("index: corrupt path block (suffix length)")
		}
		rest = rest[n:]
		if shared > prevLen || suffix > uint64(len(rest)) {
			return fmt.Errorf("index: corrupt path block (lengths out of range)")
		}
		prevLen = shared + suffix
		rest = rest[suffix:]
	}
	return nil
}
