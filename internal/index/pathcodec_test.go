package index

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/kv"
	"repro/internal/meter"
	"repro/internal/pattern"
	"repro/internal/xmark"
)

func decodeAll(t *testing.T, blocks [][]byte) []string {
	t.Helper()
	var out []string
	for _, b := range blocks {
		ps, err := DecodePathValue(b)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ps...)
	}
	return out
}

func TestPathCompressionRoundTrip(t *testing.T) {
	paths := []string{
		"/esite/eregions/eafrica/eitem/ename",
		"/esite/eregions/eafrica/eitem/elocation",
		"/esite/eregions/easia/eitem/ename",
		"/epainting/ename",
	}
	blocks := EncodePathsCompressed(paths, 1<<20)
	got := decodeAll(t, blocks)
	want := append([]string(nil), paths...)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip = %v, want %v", got, want)
	}
	// Compression must actually shrink shared-prefix lists.
	var plain, comp int
	for _, p := range paths {
		plain += len(p)
	}
	for _, b := range blocks {
		comp += len(b)
	}
	if comp >= plain {
		t.Errorf("compressed %d bytes >= plain %d", comp, plain)
	}
}

func TestPathCompressionSplitsAtBudget(t *testing.T) {
	var paths []string
	for i := 0; i < 200; i++ {
		paths = append(paths, "/esite/eregions/eitem/ename/wword"+string(rune('a'+i%26))+string(rune('a'+i/26)))
	}
	blocks := EncodePathsCompressed(paths, 64)
	if len(blocks) < 2 {
		t.Fatalf("no splitting: %d blocks", len(blocks))
	}
	for _, b := range blocks {
		if len(b) > 64 {
			t.Errorf("block of %d bytes over budget", len(b))
		}
	}
	got := decodeAll(t, blocks)
	want := append([]string(nil), paths...)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Error("split blocks do not reassemble")
	}
}

func TestPlainValuesStillDecode(t *testing.T) {
	ps, err := DecodePathValue([]byte("/epainting/ename"))
	if err != nil || len(ps) != 1 || ps[0] != "/epainting/ename" {
		t.Errorf("plain decode = %v, %v", ps, err)
	}
}

func TestCorruptPathBlocks(t *testing.T) {
	bad := [][]byte{
		{pathBlockMarker, 0xff},            // truncated varint
		{pathBlockMarker, 0x05, 0x00},      // prefix beyond previous path
		{pathBlockMarker, 0x00, 0x10, 'a'}, // suffix longer than data
	}
	for _, b := range bad {
		if _, err := DecodePathValue(b); err == nil {
			t.Errorf("corrupt block %v accepted", b)
		}
	}
}

func TestPathCompressionProperty(t *testing.T) {
	f := func(raw []string, budgetSeed uint8) bool {
		paths := make([]string, 0, len(raw))
		for _, r := range raw {
			paths = append(paths, "/"+r)
		}
		budget := int(budgetSeed)%256 + 24
		var got []string
		for _, b := range EncodePathsCompressed(paths, budget) {
			ps, err := DecodePathValue(b)
			if err != nil {
				return false
			}
			got = append(got, ps...)
		}
		want := append([]string(nil), paths...)
		sort.Strings(want)
		if len(want) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Compressed and plain LUP indexes must answer every look-up identically.
func TestCompressedLookupEquivalence(t *testing.T) {
	docs := xmark.Generate(func() xmark.Config {
		c := xmark.DefaultConfig(60)
		c.TargetDocBytes = 4 << 10
		return c
	}())
	build := func(compress bool) kv.Store {
		store := dynamodb.New(meter.NewLedger())
		for _, s := range []Strategy{LUP, TwoLUPI} {
			if err := CreateTables(store, s); err != nil {
				t.Fatal(err)
			}
		}
		opts := OptionsFor(store)
		opts.CompressPaths = compress
		for _, gd := range docs {
			d := parseDoc(t, gd.URI, string(gd.Data))
			for _, s := range []Strategy{LUP, TwoLUPI} {
				if _, _, err := LoadDocument(store, s, d, opts); err != nil {
					t.Fatal(err)
				}
			}
		}
		return store
	}
	plain := build(false)
	comp := build(true)

	// The compressed index must be smaller.
	pb := plain.TableBytes(LUP.TableName(flatTable))
	cb := comp.TableBytes(LUP.TableName(flatTable))
	if cb >= pb {
		t.Errorf("compressed LUP bytes %d >= plain %d", cb, pb)
	}

	for _, qs := range lookupQueries {
		tr := pattern.MustParse(qs).Patterns[0]
		for _, s := range []Strategy{LUP, TwoLUPI} {
			a, _, err := LookupPattern(plain, s, tr)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := LookupPattern(comp, s, tr)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s on %s: plain %v, compressed %v", s.Name(), qs, a, b)
			}
		}
	}
}
