package index

import (
	"encoding/binary"
	"fmt"

	"repro/internal/pattern"
)

// PathMatcher matches one compiled query path against stored path values —
// plain strings or front-coded blocks — without materializing path strings.
//
// The query path is run as a tiny NFA over path components: bit j of the
// state mask means "the first j steps have matched some prefix of the
// components consumed so far". Stepping a component keeps bit j alive when
// step j is a '//' (Descendant) step — it may skip the component — and
// sets bit j+1 when the component equals step j's key. The stored path
// matches when, after its final component, the all-steps bit is set: the
// exact semantics of MatchPath's recursive walk, one pass, no splitting.
//
// On a front-coded block the matcher exploits the shared prefixes the
// encoding hands it. It keeps, per '/' terminator of the current path, the
// NFA state right after that component (a checkpoint), and resumes the
// next entry from the deepest checkpoint that terminates inside the shared
// prefix — components inside the shared run are stepped once per run, not
// once per path. When the state dies at a terminator, every following
// entry whose shared prefix extends past that point is rejected without
// scanning a byte (a dead prefix stays dead under extension).
//
// A PathMatcher carries reusable scratch and must not be used concurrently.
type PathMatcher struct {
	steps    []QueryStep
	wants    []string // escaped step keys, index-aligned with steps
	skipMask uint64   // bit j set when steps[j] is a Descendant step
	full     uint64   // the accept bit: 1 << len(steps)
	fallback bool     // empty or >63-step paths use MatchPath directly

	buf   []byte // current decoded path bytes
	ends  []int  // checkpoint: index of each component's '/' terminator
	masks []uint64
}

// NewPathMatcher compiles a query path. Paths longer than the 63 steps the
// state mask can hold (never produced by real queries — document depth
// bounds query paths) fall back to the decode-and-MatchPath route.
func NewPathMatcher(steps []QueryStep) *PathMatcher {
	m := &PathMatcher{steps: steps, full: 1 << uint(len(steps))}
	if len(steps) == 0 || len(steps) > 63 {
		m.fallback = true
		return m
	}
	m.wants = make([]string, len(steps))
	for j, s := range steps {
		m.wants[j] = escapeComponent(s.Key)
		if s.Axis == pattern.Descendant {
			m.skipMask |= 1 << uint(j)
		}
	}
	return m
}

// step consumes one path component.
func (m *PathMatcher) step(mask uint64, comp []byte) uint64 {
	next := mask & m.skipMask
	for j, w := range m.wants {
		if mask&(1<<uint(j)) != 0 && string(comp) == w {
			next |= 1 << uint(j+1)
		}
	}
	return next
}

// MatchValue reports whether any path held by one stored value matches the
// query path. Values are assumed structurally valid (ValidatePathValue ran
// at decode time); the length guards still hold, so a corrupt value
// surfaces as an error, never a panic.
func (m *PathMatcher) MatchValue(v []byte) (bool, error) {
	if len(v) > 0 && v[0] == pathBlockMarker {
		if m.fallback {
			paths, err := DecodePathValue(v)
			if err != nil {
				return false, err
			}
			for _, p := range paths {
				if MatchPath(m.steps, p) {
					return true, nil
				}
			}
			return false, nil
		}
		return m.matchBlock(v)
	}
	if m.fallback {
		return MatchPath(m.steps, string(v)), nil
	}
	return m.matchPlain(v), nil
}

// matchPlain runs the NFA over a plain path value, splitting on '/' bytes
// exactly as MatchPath's strings.Split does (a trailing slash yields an
// empty final component, "/" alone yields one empty component).
func (m *PathMatcher) matchPlain(v []byte) bool {
	if len(v) == 0 || v[0] != '/' {
		return false
	}
	mask := uint64(1)
	start := 1
	for i := 1; i <= len(v); i++ {
		if i == len(v) || v[i] == '/' {
			if mask = m.step(mask, v[start:i]); mask == 0 {
				return false
			}
			start = i + 1
		}
	}
	return mask&m.full != 0
}

// matchBlock walks a front-coded block with prefix-skipping, returning true
// as soon as one entry matches.
func (m *PathMatcher) matchBlock(v []byte) (bool, error) {
	buf := m.buf[:0]
	ends := m.ends[:0]
	masks := m.masks[:0]
	deadEnd := -1 // '/'-terminator index where the state died; -1 = alive
	rest := v[1:]
	for len(rest) > 0 {
		shared, n := binary.Uvarint(rest)
		if n <= 0 {
			return false, fmt.Errorf("index: corrupt path block (prefix length)")
		}
		rest = rest[n:]
		suffix, n := binary.Uvarint(rest)
		if n <= 0 {
			return false, fmt.Errorf("index: corrupt path block (suffix length)")
		}
		rest = rest[n:]
		if shared > uint64(len(buf)) || suffix > uint64(len(rest)) {
			return false, fmt.Errorf("index: corrupt path block (lengths out of range)")
		}
		buf = append(buf[:shared], rest[:suffix]...)
		rest = rest[suffix:]

		// Checkpoints whose terminator falls outside the shared prefix
		// belong to the previous entry's bytes. Strictly inside: a shared
		// run that ends mid-component shares bytes but not the component.
		for len(ends) > 0 && ends[len(ends)-1] >= int(shared) {
			ends = ends[:len(ends)-1]
			masks = masks[:len(masks)-1]
		}
		if deadEnd >= 0 && int(shared) > deadEnd {
			continue // extends a prefix that already killed the state
		}
		deadEnd = -1

		var mask uint64
		var start int
		if k := len(ends); k > 0 {
			mask, start = masks[k-1], ends[k-1]+1
		} else {
			if len(buf) == 0 || buf[0] != '/' {
				deadEnd = 0 // a bad head is dead for every extension
				continue
			}
			mask, start = 1, 1
		}
		alive := true
		for i := start; i < len(buf); i++ {
			if buf[i] != '/' {
				continue
			}
			if mask = m.step(mask, buf[start:i]); mask == 0 {
				alive, deadEnd = false, i
				break
			}
			ends = append(ends, i)
			masks = append(masks, mask)
			start = i + 1
		}
		if alive && m.step(mask, buf[start:])&m.full != 0 {
			m.buf, m.ends, m.masks = buf, ends, masks
			return true, nil
		}
	}
	m.buf, m.ends, m.masks = buf, ends, masks
	return false, nil
}
