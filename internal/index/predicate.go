package index

import (
	"repro/internal/pattern"
	"repro/internal/twigjoin"
	"repro/internal/xmltree"
)

// DocPredicate returns a function deciding, from a parsed document alone,
// whether the look-up of the tree pattern under the strategy would return
// that document — i.e. the per-document semantics of Sections 5.1-5.4
// without a key-value store in the loop.
//
// It serves two purposes: differential testing (filtering a corpus with
// the predicate must agree exactly with LookupPattern against a loaded
// index, which the test suite asserts), and the statistics-driven index
// advisor of package advisor (the paper's Sections 8.5/9 future work),
// which evaluates the predicate on a corpus sample to estimate look-up
// selectivity per strategy without building any index.
func DocPredicate(s Strategy, t *pattern.Tree) func(*xmltree.Document) bool {
	aug := augment(t)
	switch s {
	case LU:
		keys := aug.distinctKeys()
		return func(d *xmltree.Document) bool { return docHasKeys(d, keys) }
	case LUP:
		paths := aug.queryPaths()
		return func(d *xmltree.Document) bool { return docMatchesPaths(d, paths) }
	case LUI, TwoLUPI:
		// 2LUPI returns the same documents as LUI (Section 5.4).
		return func(d *xmltree.Document) bool { return docMatchesTwig(d, aug) }
	default:
		return func(*xmltree.Document) bool { return false }
	}
}

// docKeySet collects the index keys present in a document.
func docKeySet(d *xmltree.Document) map[string]bool {
	set := make(map[string]bool, d.NodeCount())
	for _, n := range d.Nodes() {
		for _, k := range NodeKeys(n) {
			set[k] = true
		}
	}
	return set
}

func docHasKeys(d *xmltree.Document, keys []string) bool {
	set := docKeySet(d)
	for _, k := range keys {
		if !set[k] {
			return false
		}
	}
	return true
}

// docMatchesPaths mirrors the LUP look-up: every root-to-leaf query path
// must match one of the document's data paths.
func docMatchesPaths(d *xmltree.Document, queryPaths [][]QueryStep) bool {
	for _, qp := range queryPaths {
		last := qp[len(qp)-1].Key
		matched := false
		for _, n := range d.Nodes() {
			for _, k := range NodeKeys(n) {
				if k != last {
					continue
				}
				if MatchPath(qp, PathOf(n, k)) {
					matched = true
					break
				}
			}
			if matched {
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// docMatchesTwig mirrors the LUI look-up: the holistic twig join over the
// document's per-key identifier streams (including virtual word nodes)
// must find an embedding.
func docMatchesTwig(d *xmltree.Document, aug *augmented) bool {
	// Streams per key, as the index would store them.
	streams := make(map[string]twigjoin.Stream)
	wanted := make(map[string]bool)
	aug.tree.Walk(func(n *pattern.Node) { wanted[aug.keys[n]] = true })
	for _, n := range d.Nodes() {
		for _, k := range NodeKeys(n) {
			if wanted[k] {
				streams[k] = append(streams[k], n.ID)
			}
		}
	}
	in := make(twigjoin.Streams)
	ok := true
	aug.tree.Walk(func(n *pattern.Node) {
		s := streams[aug.keys[n]]
		if len(s) == 0 {
			ok = false
			return
		}
		in[n] = s
	})
	return ok && twigjoin.Match(aug.tree, in)
}
