package index

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/cloud/dynamodb"
	"repro/internal/meter"
	"repro/internal/pattern"
	"repro/internal/xmark"
)

// Differential property: filtering the corpus with DocPredicate must agree
// exactly with LookupPattern against a loaded index, for every strategy
// and a diverse query pool.
func TestDocPredicateAgreesWithStoreLookup(t *testing.T) {
	cfg := xmark.DefaultConfig(120)
	cfg.TargetDocBytes = 4 << 10
	c := buildCorpus(t, dynamodb.New(meter.NewLedger()), xmark.Generate(cfg))

	for _, qs := range lookupQueries {
		tr := pattern.MustParse(qs).Patterns[0]
		for _, s := range All() {
			viaStore, _, err := LookupPattern(c.store, s, tr)
			if err != nil {
				t.Fatal(err)
			}
			pred := DocPredicate(s, tr)
			var viaPred []string
			for _, d := range c.docs {
				if pred(d) {
					viaPred = append(viaPred, d.URI)
				}
			}
			sort.Strings(viaPred)
			if !reflect.DeepEqual(viaStore, viaPred) {
				t.Errorf("%s on %s:\n store %v\n pred  %v", s.Name(), qs, viaStore, viaPred)
			}
		}
	}
}

func TestDocPredicateOnPaintings(t *testing.T) {
	d := parseDoc(t, "manet.xml", xmark.ManetXML)
	lion := pattern.MustParse(`//painting[/name~"Lion"]`).Patterns[0]
	if DocPredicate(LU, lion)(d) {
		t.Error("LU predicate matched manet.xml for the Lion query (no wLion key)")
	}
	olympia := pattern.MustParse(`//painting[/name~"Olympia"]`).Patterns[0]
	for _, s := range All() {
		if !DocPredicate(s, olympia)(d) {
			t.Errorf("%s predicate missed manet.xml for the Olympia query", s.Name())
		}
	}
	// Structure that exists label-wise but not as a twig.
	twisted := pattern.MustParse(`//painter[/painting]`).Patterns[0]
	if DocPredicate(LUI, twisted)(d) {
		t.Error("LUI predicate accepted an impossible twig")
	}
	if !DocPredicate(LU, twisted)(d) {
		t.Error("LU predicate must accept on labels alone")
	}
}
