package index

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cloud/chaos"
	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/kv"
	"repro/internal/meter"
	"repro/internal/pattern"
	"repro/internal/resilience"
	"repro/internal/xmark"
)

// gatedStore blocks BatchGet between entry and release, so a test can hold
// the single-flight leader in flight while followers attach.
type gatedStore struct {
	kv.Store
	entered chan struct{}
	release chan struct{}
	calls   int
}

func (g *gatedStore) BatchGet(table string, keys []string) (map[string][]kv.Item, time.Duration, error) {
	g.calls++
	g.entered <- struct{}{}
	<-g.release
	return g.Store.BatchGet(table, keys)
}

// A cache-fill stampede on one hot key coalesces to a single billed store
// read whose decoded postings — including the lazily-blocked identifier
// structure — every waiter shares by pointer; only the leader fills the
// cache.
func TestReadKeysCoalescesCacheFill(t *testing.T) {
	base := newStore(t, LUI)
	loadCorpus(t, base, LUI, xmark.Paintings()[:2])
	table := LUI.TableName(flatTable)
	keys := []string{"ename"}

	gs := &gatedStore{Store: base, entered: make(chan struct{}, 1), release: make(chan struct{})}
	flight := resilience.NewGroup()
	cache := NewPostingCache(1 << 20)
	opt := LookupOptions{Flight: flight, Cache: cache}

	type result struct {
		out map[string]map[string]*Posting
		rs  ReadStats
		err error
	}
	read := func(ch chan result) {
		out, rs, err := ReadKeys(gs, table, keys, IDPosting, true, opt)
		ch <- result{out, rs, err}
	}
	chA := make(chan result, 1)
	go read(chA)
	<-gs.entered // the leader is inside the store now

	chB := make(chan result, 1)
	go read(chB)
	// Release the leader only once the follower has attached to its flight.
	fkey := flightKey(table, IDPosting, true, keys, func(string) uint64 { return 0 })
	deadline := time.Now().Add(5 * time.Second)
	for flight.Waiting(fkey) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never attached to the in-flight read")
		}
		time.Sleep(time.Millisecond)
	}
	close(gs.release)

	a, b := <-chA, <-chB
	if a.err != nil || b.err != nil {
		t.Fatalf("errs = %v / %v", a.err, b.err)
	}
	if gs.calls != 1 {
		t.Fatalf("store saw %d batch gets, want 1 — the stampede must coalesce", gs.calls)
	}
	if a.rs.GetOps != 1 || a.rs.Bytes == 0 || a.rs.CoalescedKeys != 0 {
		t.Fatalf("leader stats = %+v, want 1 billed get", a.rs)
	}
	if b.rs.GetOps != 0 || b.rs.Bytes != 0 || b.rs.CoalescedKeys != 1 {
		t.Fatalf("follower stats = %+v, want 0 billed gets and 1 coalesced key", b.rs)
	}
	if b.rs.GetTime != a.rs.GetTime {
		t.Fatalf("follower waited %v, want the leader's %v", b.rs.GetTime, a.rs.GetTime)
	}
	pa, pb := a.out["ename"]["manet.xml"], b.out["ename"]["manet.xml"]
	if pa == nil || pa != pb {
		t.Fatalf("follower posting %p is not the leader's parsed structure %p", pb, pa)
	}
	if st := flight.Stats(); st.Hits != 1 || st.Leaders != 1 {
		t.Fatalf("flight stats = %+v, want {Hits:1 Leaders:1}", st)
	}

	// The leader filled the cache: a later read is served without the store.
	out, rs, err := ReadKeys(base, table, keys, IDPosting, true, LookupOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if rs.CacheHits != 1 || rs.GetOps != 0 {
		t.Fatalf("cached read stats = %+v, want a pure cache hit", rs)
	}
	if out["ename"]["manet.xml"] != pa {
		t.Fatal("cache does not hold the leader's parsed posting")
	}
}

// A scatter read whose shard is shed by an open circuit breaker degrades to
// a partial posting map with the Incomplete marker set, instead of failing
// the look-up.
func TestReadKeysDegradedScatterMarksIncomplete(t *testing.T) {
	base0 := dynamodb.New(meter.NewLedger())
	base1 := dynamodb.New(meter.NewLedger())
	for _, b := range []kv.Store{base0, base1} {
		if err := b.CreateTable("t"); err != nil {
			t.Fatal(err)
		}
	}
	// Two keys per shard, with URI-posting items on the healthy shard.
	groups := make([][]string, 2)
	for i := 0; len(groups[0]) < 2 || len(groups[1]) < 2; i++ {
		key := fmt.Sprintf("key%04d", i)
		k := kv.ShardIndex(key, 2)
		if len(groups[k]) < 2 {
			groups[k] = append(groups[k], key)
		}
	}
	for k, base := range []kv.Store{base0, base1} {
		for _, key := range groups[k] {
			it := kv.Item{HashKey: key, RangeKey: "r", Attrs: []kv.Attr{{Name: "doc.xml", Values: []kv.Value{[]byte("x")}}}}
			if _, err := base.Put("t", it); err != nil {
				t.Fatal(err)
			}
		}
	}
	failing := &chaos.EveryNth{Store: base1, FailEvery: 1, Err: kv.ErrInternal}
	sh := kv.NewShardedStores([]kv.Store{base0, failing})
	br := resilience.NewBreakerSet(2)
	br.FailThreshold = 1
	br.OpenOps = 100
	sh.Breakers = br
	keys := append(append([]string(nil), groups[0]...), groups[1]...)

	// First read trips shard 1's breaker and fails whole.
	if _, _, err := ReadKeys(sh, "t", keys, URIPosting, false); !errors.Is(err, kv.ErrInternal) {
		t.Fatalf("first read err = %v, want internal", err)
	}
	// With the breaker open the shard is shed: partial result, no error.
	out, rs, err := ReadKeys(sh, "t", keys, URIPosting, false)
	if err != nil {
		t.Fatalf("degraded read err = %v, want partial success", err)
	}
	if !rs.Incomplete || rs.DegradedKeys != int64(len(groups[1])) {
		t.Fatalf("stats = %+v, want Incomplete with %d degraded keys", rs, len(groups[1]))
	}
	if rs.GetOps != int64(len(groups[0])) {
		t.Fatalf("GetOps = %d, want only the %d healthy-shard keys billed", rs.GetOps, len(groups[0]))
	}
	for _, key := range groups[0] {
		if out[key]["doc.xml"] == nil {
			t.Fatalf("healthy shard key %q missing from partial result", key)
		}
	}
	for _, key := range groups[1] {
		if out[key] != nil {
			t.Fatalf("shed shard key %q present in partial result", key)
		}
	}
	// The marker flows into look-up statistics.
	ls := statsFromRead(rs)
	if !ls.Incomplete || ls.DegradedKeys != rs.DegradedKeys {
		t.Fatalf("LookupStats = %+v, want Incomplete carried over", ls)
	}
}

// Reads charge their modeled latency to the query budget, and a look-up
// whose budget is spent stops with ErrDeadline before touching the store.
func TestLookupStopsOnSpentBudget(t *testing.T) {
	store := newStore(t, LUI)
	loadCorpus(t, store, LUI, xmark.Paintings()[:2])
	table := LUI.TableName(flatTable)

	budget := resilience.NewBudget(time.Hour, -1)
	ctx := resilience.NewContext(context.Background(), budget)
	_, rs, err := ReadKeys(store, table, []string{"ename"}, IDPosting, true, LookupOptions{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if rs.GetTime == 0 || budget.Spent() != rs.GetTime {
		t.Fatalf("budget spent = %v, want the read's %v charged", budget.Spent(), rs.GetTime)
	}

	// Exhaust the budget; the next look-up must stop immediately.
	budget.Charge(time.Hour)
	q := pattern.MustParse(`//painting[/name]`).Patterns[0]
	_, _, err = LookupPattern(store, LUI, q, LookupOptions{Ctx: ctx})
	if !errors.Is(err, resilience.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline error must match context.DeadlineExceeded, got %v", err)
	}

	// A cancelled context stops the CPU-side twig join as well.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = LookupPattern(store, LUI, q, LookupOptions{Ctx: cctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
