package index

import (
	"bytes"
	"testing"
)

// splitValues assigns each value group an ordinal, and ItemRangeKey derives
// item identity from that ordinal — so the grouping must be a pure function
// of the input (ordinal stability) or re-written documents would leave
// orphaned items behind. These tests pin the edge cases down.

func collectGroups(t *testing.T, values [][]byte, budget, fixed int64) [][][]byte {
	t.Helper()
	groups := splitValues(values, budget, fixed)
	out := make([][][]byte, len(groups))
	for i, g := range groups {
		for _, v := range g {
			out[i] = append(out[i], []byte(v))
		}
	}
	return out
}

func TestSplitValuesExactBudget(t *testing.T) {
	// One value exactly at the available budget (budget - fixed) must fill
	// a single group, and a follow-up value must start group 1.
	const budget, fixed = 100, 20
	exact := bytes.Repeat([]byte("a"), budget-fixed)
	groups := collectGroups(t, [][]byte{exact}, budget, fixed)
	if len(groups) != 1 || len(groups[0]) != 1 {
		t.Fatalf("exact-fit value: groups = %d, want 1 group of 1 value", len(groups))
	}

	groups = collectGroups(t, [][]byte{exact, []byte("b")}, budget, fixed)
	if len(groups) != 2 {
		t.Fatalf("exact fit + one byte: groups = %d, want 2", len(groups))
	}
	if !bytes.Equal(groups[0][0], exact) || string(groups[1][0]) != "b" {
		t.Fatal("values assigned to wrong ordinals")
	}
}

func TestSplitValuesOversizedSingleValue(t *testing.T) {
	// A single value above the budget is never split or dropped: it rides
	// alone in its group (the store models oversized items; correctness
	// beats the simulated limit here, mirroring EncodeIDsBinary's oversized
	// blob behavior).
	const budget, fixed = 100, 20
	huge := bytes.Repeat([]byte("x"), 10*budget)
	groups := collectGroups(t, [][]byte{huge}, budget, fixed)
	if len(groups) != 1 || len(groups[0]) != 1 || !bytes.Equal(groups[0][0], huge) {
		t.Fatalf("oversized value: groups = %v-shaped, want [[huge]]", len(groups))
	}

	// Sandwiched between small values, the oversized value still occupies
	// its own ordinal once a split is forced.
	groups = collectGroups(t, [][]byte{[]byte("s"), huge, []byte("t")}, budget, fixed)
	if len(groups) != 3 {
		t.Fatalf("small+huge+small: groups = %d, want 3", len(groups))
	}
	if string(groups[0][0]) != "s" || !bytes.Equal(groups[1][0], huge) || string(groups[2][0]) != "t" {
		t.Fatal("small+huge+small assigned to wrong ordinals")
	}
}

func TestSplitValuesEmptyList(t *testing.T) {
	// An empty value list still yields exactly one (empty) group: ordinal 0
	// must exist so the entry materializes as an item (LU stores bare
	// presence this way) and so ItemRangeKey(…, 0) is stable.
	groups := splitValues(nil, 100, 20)
	if len(groups) != 1 || len(groups[0]) != 0 {
		t.Fatalf("empty list: groups = %d (len0=%v), want one empty group", len(groups), groups)
	}
}

func TestSplitValuesOrdinalStability(t *testing.T) {
	// Same input, same grouping — across repeated calls and regardless of
	// what was split before. ItemRangeKey depends on it.
	values := [][]byte{
		bytes.Repeat([]byte("a"), 30),
		bytes.Repeat([]byte("b"), 40),
		bytes.Repeat([]byte("c"), 30), // 30+40 fits 80-avail? see budget below
		bytes.Repeat([]byte("d"), 100),
		{},
		bytes.Repeat([]byte("e"), 10),
	}
	const budget, fixed = 100, 20
	first := collectGroups(t, values, budget, fixed)
	for i := 0; i < 5; i++ {
		again := collectGroups(t, values, budget, fixed)
		if len(again) != len(first) {
			t.Fatalf("run %d: group count %d != %d", i, len(again), len(first))
		}
		for g := range again {
			if len(again[g]) != len(first[g]) {
				t.Fatalf("run %d: group %d size changed", i, g)
			}
			for v := range again[g] {
				if !bytes.Equal(again[g][v], first[g][v]) {
					t.Fatalf("run %d: group %d value %d changed", i, g, v)
				}
			}
		}
	}
	// And the grouping feeds distinct, stable range keys per ordinal.
	keys := make(map[string]bool)
	for ordinal := range first {
		k := ItemRangeKey("doc.xml", "tbl", "key", ordinal)
		if keys[k] {
			t.Fatalf("duplicate range key for ordinal %d", ordinal)
		}
		keys[k] = true
		if k != ItemRangeKey("doc.xml", "tbl", "key", ordinal) {
			t.Fatal("ItemRangeKey not deterministic")
		}
	}
}
