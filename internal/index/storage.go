package index

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/cloud/kv"
	"repro/internal/xmltree"
)

// UUIDGen produces RFC 4122-shaped version-4 identifiers from a seeded
// PRNG. The paper uses UUIDs as DynamoDB range keys so that items can be
// inserted concurrently from multiple virtual machines without overwrites
// (Section 6); a seeded generator keeps the simulation reproducible. It is
// safe for concurrent use.
type UUIDGen struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewUUIDGen returns a generator; distinct loader instances should use
// distinct seeds.
func NewUUIDGen(seed int64) *UUIDGen {
	return &UUIDGen{rng: rand.New(rand.NewSource(seed))}
}

// Next returns a fresh identifier.
func (g *UUIDGen) Next() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	var b [16]byte
	g.rng.Read(b[:])
	b[6] = (b[6] & 0x0f) | 0x40 // version 4
	b[8] = (b[8] & 0x3f) | 0x80 // variant 10
	return fmt.Sprintf("%x-%x-%x-%x-%x", b[0:4], b[4:6], b[6:8], b[8:10], b[10:16])
}

// CreateTables creates the strategy's tables on the store. It is a no-op
// for tables that already exist.
func CreateTables(store kv.Store, s Strategy) error {
	for _, t := range s.Tables() {
		if err := store.CreateTable(t); err != nil && !errors.Is(err, kv.ErrTableExists) {
			return err
		}
	}
	return nil
}

// DropTables deletes the strategy's tables, ignoring missing ones.
func DropTables(store kv.Store, s Strategy) error {
	for _, t := range s.Tables() {
		if err := store.DeleteTable(t); err != nil && !errors.Is(err, kv.ErrNoSuchTable) {
			return err
		}
	}
	return nil
}

// LoadStats summarizes one document's index load.
type LoadStats struct {
	Entries  int
	Items    int   // store items written (|op(D,I)| contribution)
	Requests int   // batch API calls issued
	Bytes    int64 // payload bytes written
}

// OptionsFor returns extraction options suited to the store: binary
// compressed identifiers when the store accepts them, text otherwise, with
// value splitting under the store's item and value caps.
func OptionsFor(store kv.Store) Options {
	lim := store.Limits()
	opts := Options{BinaryIDs: lim.SupportsBinary}
	max := lim.MaxValueBytes
	if lim.MaxItemBytes > 0 && (max == 0 || lim.MaxItemBytes < max) {
		max = lim.MaxItemBytes
	}
	if max == 0 {
		max = 1 << 20
	}
	// Leave room for key, range key and attribute name in the item.
	opts.MaxValueBytes = int(max) - 512
	if opts.MaxValueBytes < 256 {
		opts.MaxValueBytes = int(max) * 3 / 4
	}
	return opts
}

// LoadDocument extracts the document's entries under the strategy and
// writes them to the store in batch puts, returning the modeled store
// latency and load statistics. Entries whose values exceed the store's item
// budget are split across several UUID-ranged items.
func LoadDocument(store kv.Store, s Strategy, doc *xmltree.Document, uuids *UUIDGen, opts Options) (time.Duration, LoadStats, error) {
	ex := Extract(s, doc, opts)
	return WriteExtraction(store, ex, uuids)
}

// WriteExtraction writes a precomputed extraction to the store.
func WriteExtraction(store kv.Store, ex *Extraction, uuids *UUIDGen) (time.Duration, LoadStats, error) {
	var (
		total time.Duration
		stats LoadStats
	)
	lim := store.Limits()
	batchLimit := lim.BatchPutItems
	if batchLimit <= 0 {
		batchLimit = 1
	}
	itemBudget := int64(48 << 10)
	if lim.MaxItemBytes > 0 && lim.MaxItemBytes-512 < itemBudget {
		itemBudget = lim.MaxItemBytes - 512
	}

	var batch []kv.Item
	flush := func(table string) error {
		if len(batch) == 0 {
			return nil
		}
		d, err := store.BatchPut(table, batch)
		if err != nil {
			return err
		}
		total += d
		stats.Requests++
		stats.Items += len(batch)
		for _, it := range batch {
			stats.Bytes += it.Size()
		}
		batch = batch[:0]
		return nil
	}

	for _, table := range sortedTables(ex) {
		for _, e := range ex.Tables[table] {
			stats.Entries++
			for _, values := range splitValues(e.Values, itemBudget, int64(len(e.Key)+len(ex.URI))) {
				item := kv.Item{
					HashKey:  e.Key,
					RangeKey: uuids.Next(),
					Attrs:    []kv.Attr{{Name: ex.URI, Values: values}},
				}
				batch = append(batch, item)
				if len(batch) == batchLimit {
					if err := flush(table); err != nil {
						return total, stats, err
					}
				}
			}
		}
		if err := flush(table); err != nil {
			return total, stats, err
		}
	}
	return total, stats, nil
}

func sortedTables(ex *Extraction) []string {
	tables := make([]string, 0, len(ex.Tables))
	for t := range ex.Tables {
		tables = append(tables, t)
	}
	// Map order is random; entries were appended per table in sorted key
	// order, and table count is at most two, so a simple sort suffices.
	if len(tables) == 2 && tables[0] > tables[1] {
		tables[0], tables[1] = tables[1], tables[0]
	}
	return tables
}

// splitValues packs values into groups whose total size fits the item
// budget (minus fixed overhead), preserving order.
func splitValues(values [][]byte, budget, fixed int64) [][]kv.Value {
	avail := budget - fixed
	if avail < 1 {
		avail = 1
	}
	var groups [][]kv.Value
	var cur []kv.Value
	var size int64
	for _, v := range values {
		vs := int64(len(v))
		if len(cur) > 0 && size+vs > avail {
			groups = append(groups, cur)
			cur, size = nil, 0
		}
		cur = append(cur, kv.Value(v))
		size += vs
	}
	if len(cur) > 0 || len(groups) == 0 {
		groups = append(groups, cur)
	}
	return groups
}

// PostingKind selects which sub-index a read targets.
type PostingKind uint8

const (
	// URIPosting reads bare URI entries (LU).
	URIPosting PostingKind = iota
	// PathPosting reads label-path entries (LUP / 2LUPI's first table).
	PathPosting
	// IDPosting reads identifier entries (LUI / 2LUPI's second table).
	IDPosting
)

// Posting is the merged index content of one key for one document.
type Posting struct {
	URI   string
	Paths []string
	IDs   []xmltree.NodeID
}

// ReadKey fetches and decodes every item under one hash key of a table,
// merging items by URI. Identifier lists are merged in pre order.
func ReadKey(store kv.Store, table, key string, kind PostingKind, binaryIDs bool) (map[string]*Posting, time.Duration, error) {
	items, d, err := store.Get(table, key)
	if err != nil {
		return nil, 0, err
	}
	postings, err := decodeItems(items, kind, binaryIDs)
	return postings, d, err
}

// ReadKeys batch-fetches several hash keys, respecting the store's batch
// limit, and returns per-key postings.
func ReadKeys(store kv.Store, table string, keys []string, kind PostingKind, binaryIDs bool) (map[string]map[string]*Posting, time.Duration, int64, error) {
	lim := store.Limits().BatchGetKeys
	if lim <= 0 {
		lim = 1
	}
	out := make(map[string]map[string]*Posting, len(keys))
	var total time.Duration
	var bytes int64
	for start := 0; start < len(keys); start += lim {
		end := start + lim
		if end > len(keys) {
			end = len(keys)
		}
		got, d, err := store.BatchGet(table, keys[start:end])
		if err != nil {
			return nil, 0, 0, err
		}
		total += d
		for k, items := range got {
			for _, it := range items {
				bytes += it.Size()
			}
			postings, err := decodeItems(items, kind, binaryIDs)
			if err != nil {
				return nil, 0, 0, fmt.Errorf("key %q: %w", k, err)
			}
			out[k] = postings
		}
	}
	return out, total, bytes, nil
}

func decodeItems(items []kv.Item, kind PostingKind, binaryIDs bool) (map[string]*Posting, error) {
	postings := make(map[string]*Posting)
	for _, it := range items {
		for _, a := range it.Attrs {
			p, ok := postings[a.Name]
			if !ok {
				p = &Posting{URI: a.Name}
				postings[a.Name] = p
			}
			switch kind {
			case URIPosting:
				// Presence is all that matters.
			case PathPosting:
				for _, v := range a.Values {
					paths, err := DecodePathValue(v)
					if err != nil {
						return nil, err
					}
					p.Paths = append(p.Paths, paths...)
				}
			case IDPosting:
				for _, v := range a.Values {
					ids, err := DecodeIDs(v, binaryIDs)
					if err != nil {
						return nil, err
					}
					p.IDs = append(p.IDs, ids...)
				}
			}
		}
	}
	if kind == IDPosting {
		for _, p := range postings {
			sortIDs(p.IDs)
		}
	}
	return postings, nil
}

func sortIDs(ids []xmltree.NodeID) {
	// Items arrive ordered by UUID range key, not by content; restore the
	// pre order the twig join requires.
	sort.Slice(ids, func(i, j int) bool { return ids[i].Pre < ids[j].Pre })
}
