package index

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cloud/kv"
	"repro/internal/idblock"
	"repro/internal/resilience"
	"repro/internal/xmltree"
)

// ItemRangeKey derives the range key of an index item deterministically
// from its identity: the document it came from, the table and hash key it
// lives under, and the ordinal of the value chunk when an entry is split
// across several items. The paper uses random UUIDs here (Section 6) so
// that concurrent virtual machines never overwrite each other; content
// derivation keeps that property — distinct documents and distinct chunks
// hash to distinct keys — while additionally making writes idempotent:
// when a crashed or redelivered indexing task re-extracts the same
// document, it produces byte-identical items under identical keys, so a
// re-put overwrites instead of duplicating. That turns SQS's at-least-once
// delivery into exactly-once index contents with no coordination.
//
// The key is the first 16 bytes of a domain-separated SHA-256, hex encoded
// — the same width as the UUIDs it replaces.
func ItemRangeKey(uri, table, key string, ordinal int) string {
	h := sha256.New()
	var len4 [4]byte
	for _, part := range []string{uri, table, key} {
		binary.BigEndian.PutUint32(len4[:], uint32(len(part)))
		h.Write(len4[:])
		h.Write([]byte(part))
	}
	binary.BigEndian.PutUint32(len4[:], uint32(ordinal))
	h.Write(len4[:])
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// UUIDGen produces RFC 4122-shaped version-4 identifiers from a seeded
// PRNG. The paper uses UUIDs as DynamoDB range keys so that items can be
// inserted concurrently from multiple virtual machines without overwrites
// (Section 6); the index layer has since moved to deterministic
// content-derived range keys (ItemRangeKey) for idempotency, and the
// generator remains for code that needs reproducible identifiers. It is
// safe for concurrent use, but the single lock serializes all callers;
// concurrent users should each Fork their own generator instead of
// sharing one.
type UUIDGen struct {
	seed int64
	mu   sync.Mutex
	rng  *rand.Rand
}

// NewUUIDGen returns a generator; distinct loader instances should use
// distinct seeds.
func NewUUIDGen(seed int64) *UUIDGen {
	return &UUIDGen{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Fork derives the i-th child generator from the parent's seed. Children
// are lock-independent of the parent and of each other, so a pool of i
// workers each holding Fork(i) generates identifiers with no contention;
// for a fixed worker count the identifier streams are reproducible. The
// child seed mixes seed and i through splitmix64 so that sibling streams do
// not overlap in practice.
func (g *UUIDGen) Fork(i int) *UUIDGen {
	z := uint64(g.seed) + (uint64(i)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return NewUUIDGen(int64(z ^ (z >> 31)))
}

// Next returns a fresh identifier.
func (g *UUIDGen) Next() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	var b [16]byte
	g.rng.Read(b[:])
	b[6] = (b[6] & 0x0f) | 0x40 // version 4
	b[8] = (b[8] & 0x3f) | 0x80 // variant 10
	return fmt.Sprintf("%x-%x-%x-%x-%x", b[0:4], b[4:6], b[6:8], b[8:10], b[10:16])
}

// CreateTables creates the strategy's tables on the store. It is a no-op
// for tables that already exist.
func CreateTables(store kv.Store, s Strategy) error {
	for _, t := range s.Tables() {
		if err := store.CreateTable(t); err != nil && !errors.Is(err, kv.ErrTableExists) {
			return err
		}
	}
	return nil
}

// DropTables deletes the strategy's tables, ignoring missing ones.
func DropTables(store kv.Store, s Strategy) error {
	for _, t := range s.Tables() {
		if err := store.DeleteTable(t); err != nil && !errors.Is(err, kv.ErrNoSuchTable) {
			return err
		}
	}
	return nil
}

// LoadStats summarizes one document's index load.
type LoadStats struct {
	Entries  int
	Items    int   // store items written (|op(D,I)| contribution)
	Requests int   // batch API calls issued
	Bytes    int64 // payload bytes written
}

// OptionsFor returns extraction options suited to the store: binary
// compressed identifiers when the store accepts them, text otherwise, with
// value splitting under the store's item and value caps.
func OptionsFor(store kv.Store) Options {
	lim := store.Limits()
	opts := Options{BinaryIDs: lim.SupportsBinary}
	max := lim.MaxValueBytes
	if lim.MaxItemBytes > 0 && (max == 0 || lim.MaxItemBytes < max) {
		max = lim.MaxItemBytes
	}
	if max == 0 {
		max = 1 << 20
	}
	// Leave room for key, range key and attribute name in the item.
	opts.MaxValueBytes = int(max) - 512
	if opts.MaxValueBytes < 256 {
		opts.MaxValueBytes = int(max) * 3 / 4
	}
	return opts
}

// LoadDocument extracts the document's entries under the strategy and
// writes them to the store in batch puts, returning the modeled store
// latency and load statistics. Entries whose values exceed the store's item
// budget are split across several items whose range keys are derived
// deterministically from (document, table, key, chunk ordinal), so
// reloading the same document overwrites its items instead of duplicating
// them. Any caches fronting the store must be passed so their entries for
// the touched keys are invalidated.
func LoadDocument(store kv.Store, s Strategy, doc *xmltree.Document, opts Options, caches ...*PostingCache) (time.Duration, LoadStats, error) {
	ex := Extract(s, doc, opts)
	return WriteExtraction(store, ex, caches...)
}

// WriteExtraction writes a precomputed extraction to the store and
// invalidates the touched keys in the given posting caches (even on error,
// since a failed batch may have partially landed). Item range keys come
// from ItemRangeKey, making the write idempotent: repeating it — after a
// worker crash, a duplicated queue delivery, or a partially applied batch
// — converges to the same store contents.
func WriteExtraction(store kv.Store, ex *Extraction, caches ...*PostingCache) (time.Duration, LoadStats, error) {
	defer func() {
		for _, c := range caches {
			c.InvalidateExtraction(ex)
		}
	}()
	var (
		total time.Duration
		stats LoadStats
	)
	lim := store.Limits()
	batchLimit := lim.BatchPutItems
	if batchLimit <= 0 {
		batchLimit = 1
	}
	itemBudget := itemBudgetFor(lim)

	var batch []kv.Item
	flush := func(table string) error {
		if len(batch) == 0 {
			return nil
		}
		d, err := store.BatchPut(table, batch)
		if err != nil {
			return err
		}
		total += d
		stats.Requests++
		stats.Items += len(batch)
		for _, it := range batch {
			stats.Bytes += it.Size()
		}
		batch = batch[:0]
		return nil
	}

	for _, table := range sortedTables(ex) {
		for _, e := range ex.Tables[table] {
			stats.Entries++
			for _, item := range entryItems(ex.URI, table, e, itemBudget) {
				batch = append(batch, item)
				if len(batch) == batchLimit {
					if err := flush(table); err != nil {
						return total, stats, err
					}
				}
			}
		}
		if err := flush(table); err != nil {
			return total, stats, err
		}
	}
	return total, stats, nil
}

// itemBudgetFor returns the per-item payload budget under which entry
// values are split into items, leaving headroom for keys and the attribute
// name. WriteExtraction and the BulkLoader share it so that both write
// paths generate byte-identical items under identical range keys.
func itemBudgetFor(lim kv.Limits) int64 {
	budget := int64(48 << 10)
	if lim.MaxItemBytes > 0 && lim.MaxItemBytes-512 < budget {
		budget = lim.MaxItemBytes - 512
	}
	return budget
}

// entryItems builds the store items of one extraction entry: values are
// packed under the item budget, and each chunk's range key is derived from
// (document, table, key, ordinal). The same entry always yields the same
// items, which is what makes every write path — per-document, bulk-loaded,
// or a retry of either — idempotent and mutually byte-identical.
func entryItems(uri, table string, e Entry, itemBudget int64) []kv.Item {
	groups := splitValues(e.Values, itemBudget, int64(len(e.Key)+len(uri)))
	items := make([]kv.Item, len(groups))
	for ordinal, values := range groups {
		items[ordinal] = kv.Item{
			HashKey:  e.Key,
			RangeKey: ItemRangeKey(uri, table, e.Key, ordinal),
			Attrs:    []kv.Attr{{Name: uri, Values: values}},
		}
	}
	return items
}

// ExtractionItems returns the store items every write path would generate
// for the extraction, grouped by table and keyed by hash key — the exact
// items WriteExtraction and the BulkLoader ship, byte for byte, range keys
// included. The mutable warehouse records them in its per-document
// manifest: the write buffer serves them to snapshot reads, and the
// compactor later folds them into the main store, so a folded store is
// indistinguishable from a direct-write one.
func ExtractionItems(lim kv.Limits, ex *Extraction) map[string]map[string][]kv.Item {
	itemBudget := itemBudgetFor(lim)
	out := make(map[string]map[string][]kv.Item, len(ex.Tables))
	for _, table := range sortedTables(ex) {
		byKey := make(map[string][]kv.Item)
		for _, e := range ex.Tables[table] {
			byKey[e.Key] = append(byKey[e.Key], entryItems(ex.URI, table, e, itemBudget)...)
		}
		out[table] = byKey
	}
	return out
}

func sortedTables(ex *Extraction) []string {
	tables := make([]string, 0, len(ex.Tables))
	for t := range ex.Tables {
		tables = append(tables, t)
	}
	// Map order is random; entries were appended per table in sorted key
	// order, and table count is at most two, so a simple sort suffices.
	if len(tables) == 2 && tables[0] > tables[1] {
		tables[0], tables[1] = tables[1], tables[0]
	}
	return tables
}

// splitValues packs values into groups whose total size fits the item
// budget (minus fixed overhead), preserving order.
func splitValues(values [][]byte, budget, fixed int64) [][]kv.Value {
	avail := budget - fixed
	if avail < 1 {
		avail = 1
	}
	var groups [][]kv.Value
	var cur []kv.Value
	var size int64
	for _, v := range values {
		vs := int64(len(v))
		if len(cur) > 0 && size+vs > avail {
			groups = append(groups, cur)
			cur, size = nil, 0
		}
		cur = append(cur, kv.Value(v))
		size += vs
	}
	if len(cur) > 0 || len(groups) == 0 {
		groups = append(groups, cur)
	}
	return groups
}

// PostingKind selects which sub-index a read targets.
type PostingKind uint8

const (
	// URIPosting reads bare URI entries (LU).
	URIPosting PostingKind = iota
	// PathPosting reads label-path entries (LUP / 2LUPI's first table).
	PathPosting
	// IDPosting reads identifier entries (LUI / 2LUPI's second table).
	IDPosting
)

// Posting is the merged index content of one key for one document.
//
// Identifier postings come in one of two interchangeable shapes. When every
// stored value of the (key, URI) pair decoded as a blocked blob whose
// segments tile the pre axis without overlap — the invariant of every write
// path — blocked holds the lazy set and IDs stays nil: only block headers
// were decoded, and payloads decode on demand (memoized inside the Set, so
// a cached Posting keeps its decoded blocks across look-ups). Otherwise —
// legacy blobs, text values, mixed segments — IDs is materialized eagerly
// in pre order, and IDSet wraps it as a single pre-decoded block on first
// use, so join kernels see one interface either way. The wrap is deferred
// and memoized because most decoded postings never reach a join: their
// URIs fall out of the candidate intersection first.
type Posting struct {
	URI string
	// PathVals holds the raw stored path values — plain path strings or
	// front-coded blocks, validated at decode time — so the LUP matcher
	// can run over the compressed form without materializing every path.
	// The slices alias the decoded store values and must not be mutated.
	PathVals [][]byte
	IDs      []xmltree.NodeID

	blocked *idblock.Set                // lazy set decoded from blocked blobs
	wrapped atomic.Pointer[idblock.Set] // memoized single-block wrap of IDs
}

// IDCount returns the identifier count without decoding any payload.
func (p *Posting) IDCount() int {
	if p.IDs != nil {
		return len(p.IDs)
	}
	return p.blocked.Len()
}

// IDSet returns the blocked view of the posting's identifiers (nil when
// the posting has none). Postings are shared between concurrent look-ups
// and with the cache, so the eager-side wrap is memoized through an atomic
// — racing callers may build it twice but all end up with one winner.
func (p *Posting) IDSet() *idblock.Set {
	if p.blocked != nil {
		return p.blocked
	}
	if len(p.IDs) == 0 {
		return nil
	}
	if s := p.wrapped.Load(); s != nil {
		return s
	}
	p.wrapped.CompareAndSwap(nil, idblock.FromIDs(p.IDs))
	return p.wrapped.Load()
}

// DecodedIDs materializes the posting's identifiers in pre order. The
// returned slice is shared — with the cache, and with other look-ups — and
// must not be mutated.
func (p *Posting) DecodedIDs() ([]xmltree.NodeID, error) {
	if p.IDs != nil {
		return p.IDs, nil
	}
	return p.blocked.All()
}

// DecodedPaths materializes the posting's path list as strings. The
// matcher path (lookupLUP) never needs this; it exists for callers that
// want the expanded list — tests, debugging, differentials.
func (p *Posting) DecodedPaths() ([]string, error) {
	var out []string
	for _, v := range p.PathVals {
		paths, err := DecodePathValue(v)
		if err != nil {
			return nil, err
		}
		out = append(out, paths...)
	}
	return out, nil
}

// ReadKey fetches and decodes every item under one hash key of a table,
// merging items by URI. Identifier lists are merged in pre order.
func ReadKey(store kv.Store, table, key string, kind PostingKind, binaryIDs bool) (map[string]*Posting, time.Duration, error) {
	items, d, err := store.Get(table, key)
	if err != nil {
		return nil, 0, err
	}
	postings, err := decodeItems(items, kind, binaryIDs)
	return postings, d, err
}

// ReadStats summarizes one ReadKeys call for LookupStats accounting. Only
// keys actually fetched from the store count toward the billed quantities
// (GetOps, GetTime, Bytes); cache hits are reported separately.
type ReadStats struct {
	GetOps         int64         // index keys fetched from the store
	GetTime        time.Duration // summed modeled store latency
	Bytes          int64         // payload bytes fetched from the store
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	// StoreRetries counts store-level retry attempts absorbed during this
	// read, when the store is a kv.Retry (or any kv.RetryStatsSource). The
	// number is exact for a store serving one reader and advisory under
	// concurrent readers, whose retries land in whichever read is in flight.
	StoreRetries int64
	// CoalescedKeys counts keys served by joining another in-flight
	// identical fetch (single-flight coalescing, LookupOptions.Flight): the
	// waiters share the leader's decoded postings and modeled latency but
	// bill no request and fetch no bytes.
	CoalescedKeys int64
	// DegradedKeys counts keys that were not read because their shards were
	// shed by an open circuit breaker; Incomplete marks the result as a
	// lower bound — the missing keys simply have no postings in it.
	DegradedKeys int64
	Incomplete   bool
}

// ReadKeys batch-fetches several hash keys and returns per-key postings.
// Keys resident in opts' cache are served from it without touching the
// store; the misses are split into store-batch-limit chunks fanned out over
// a bounded worker pool (opts' Concurrency), with items decoded on the
// fetch goroutines. The result and the billed statistics are identical to
// a sequential read: per-chunk latencies and byte counts are summed in
// chunk order, and key sets of distinct chunks are disjoint.
func ReadKeys(store kv.Store, table string, keys []string, kind PostingKind, binaryIDs bool, opts ...LookupOptions) (out map[string]map[string]*Posting, rs ReadStats, err error) {
	opt := resolveLookup(opts)
	if err := kv.CheckContext(opt.Ctx); err != nil {
		return nil, rs, err
	}
	// The query's modeled-time budget is charged once, on exit, with the
	// summed store latency: chunks never observe each other's charges, so
	// the read's outcome is identical at any Concurrency level.
	defer func() {
		resilience.FromContext(opt.Ctx).Charge(rs.GetTime)
	}()
	retrySrc, _ := store.(kv.RetryStatsSource)
	var retriesBefore int64
	if retrySrc != nil {
		retriesBefore = retrySrc.RetryStats().Retries
	}
	defer func() {
		if retrySrc != nil {
			rs.StoreRetries = retrySrc.RetryStats().Retries - retriesBefore
		}
	}()
	out = make(map[string]map[string]*Posting, len(keys))

	// Snapshot reads: capture the write-buffer overlay BEFORE touching the
	// cache or the store. A concurrent compaction fold that lands after
	// this point is harmless — the captured overlay still wins wholesale
	// for its owners, and a fold that landed before left the main store
	// (and a monotonically advanced stamp) already carrying its state.
	var overlays map[string]kv.Overlay
	if opt.View != nil {
		overlays = opt.View.Capture(table, keys)
	}
	stampOf := func(k string) uint64 { return overlays[k].Stamp }

	fetch := keys
	if opt.Cache != nil {
		fetch = make([]string, 0, len(keys))
		for _, k := range keys {
			if p, ok := opt.Cache.get(cacheKey{table: table, key: k, kind: kind, ver: stampOf(k)}); ok {
				out[k] = p
				rs.CacheHits++
			} else {
				rs.CacheMisses++
				fetch = append(fetch, k)
			}
		}
	}
	if len(fetch) == 0 {
		return applyViewTombstones(out, overlays, kind, binaryIDs, rs)
	}

	lim := store.Limits().BatchGetKeys
	if lim <= 0 {
		lim = 1
	}
	chunks := (len(fetch) + lim - 1) / lim
	type chunkResult struct {
		postings  map[string]map[string]*Posting
		d         time.Duration
		bytes     int64
		gets      int64    // keys billed against the store
		coalesced int64    // keys served by an in-flight twin fetch
		degraded  []string // keys shed by open circuit breakers
		fill      bool     // whether this call fills the cache (leader side)
		err       error
	}
	results := make([]chunkResult, chunks)
	fetchChunk := func(ci int) chunkResult {
		start := ci * lim
		end := start + lim
		if end > len(fetch) {
			end = len(fetch)
		}
		chunk := fetch[start:end]
		run := func() (any, time.Duration, error) {
			got, d, err := kv.BatchGetContext(opt.Ctx, store, table, chunk)
			var degraded []string
			if err != nil {
				de := kv.AsDegraded(err)
				if de == nil {
					return nil, d, err
				}
				// Partial scatter read: the shed shards' keys are absent
				// from got. Serve what arrived and mark the read degraded
				// rather than fail the whole look-up on one bad shard.
				degraded = de.Keys
			}
			fc := &flightChunk{
				postings: make(map[string]map[string]*Posting, len(got)),
				degraded: degraded,
			}
			for _, k := range chunk {
				items := got[k]
				for _, it := range items {
					fc.bytes += it.Size()
				}
				// Replacement contributions from the write buffer supersede
				// the owner's main-store items; they come from memory and
				// bill nothing.
				items = applyReplaces(items, overlays[k])
				if len(items) == 0 {
					continue
				}
				postings, err := decodeItems(items, kind, binaryIDs)
				if err != nil {
					return nil, d, fmt.Errorf("key %q: %w", k, err)
				}
				fc.postings[k] = postings
			}
			return fc, d, nil
		}
		var (
			v      any
			d      time.Duration
			leader = true
			err    error
		)
		if opt.Flight == nil {
			v, d, err = run()
		} else {
			v, d, leader, err = opt.Flight.Do(flightKey(table, kind, binaryIDs, chunk, stampOf), run)
		}
		if err != nil {
			return chunkResult{err: err}
		}
		fc := v.(*flightChunk)
		cr := chunkResult{postings: fc.postings, d: d, degraded: fc.degraded, fill: leader}
		if leader {
			cr.bytes = fc.bytes
			cr.gets = int64(len(chunk)) - int64(len(fc.degraded))
		} else {
			// A coalesced chunk shares the leader's postings and waits out
			// the leader's modeled latency, but bills nothing.
			cr.coalesced = int64(len(chunk))
		}
		return cr
	}

	if workers := min(opt.workers(), chunks); workers <= 1 {
		for ci := range results {
			results[ci] = fetchChunk(ci)
		}
	} else {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ci := range idx {
					results[ci] = fetchChunk(ci)
				}
			}()
		}
		for ci := 0; ci < chunks; ci++ {
			idx <- ci
		}
		close(idx)
		wg.Wait()
	}

	for _, cr := range results {
		if cr.err != nil {
			return nil, rs, cr.err
		}
		rs.GetTime += cr.d
		rs.Bytes += cr.bytes
		rs.GetOps += cr.gets
		rs.CoalescedKeys += cr.coalesced
		if len(cr.degraded) > 0 {
			rs.Incomplete = true
			rs.DegradedKeys += int64(len(cr.degraded))
		}
		for k, postings := range cr.postings {
			out[k] = postings
			if cr.fill && opt.Cache != nil {
				rs.CacheEvictions += opt.Cache.put(cacheKey{table: table, key: k, kind: kind, ver: stampOf(k)}, postings)
			}
		}
	}
	return applyViewTombstones(out, overlays, kind, binaryIDs, rs)
}

// applyViewTombstones subtracts the captured tombstones from the assembled
// postings on the way out — after cache fills, so the cache keeps the
// version-agnostic carrier and each pinned view applies its own deletes at
// decode time.
func applyViewTombstones(out map[string]map[string]*Posting, overlays map[string]kv.Overlay, kind PostingKind, binaryIDs bool, rs ReadStats) (map[string]map[string]*Posting, ReadStats, error) {
	for k, ov := range overlays {
		postings, ok := out[k]
		if !ok || len(ov.Tombstones) == 0 {
			continue
		}
		filtered, err := applyTombstones(postings, ov, kind, binaryIDs)
		if err != nil {
			return nil, rs, err
		}
		out[k] = filtered
	}
	return out, rs, nil
}

// flightChunk is the unit shared through a single-flight group: the decoded
// postings of one store chunk, with its billed payload size and the keys
// its circuit breakers shed. Waiters receive the leader's pointer, so a
// coalesced cache fill hands every caller the same parsed structures.
type flightChunk struct {
	postings map[string]map[string]*Posting
	bytes    int64
	degraded []string
}

// flightKey identifies one chunk fetch for coalescing. Two concurrent
// fetches coalesce only when they would issue byte-identical requests and
// decode them identically; like a PostingCache, one Flight group must not
// front two different stores. Each key's overlay stamp is part of the
// identity, so look-ups pinned on either side of a mutation never share a
// leader's postings.
func flightKey(table string, kind PostingKind, binaryIDs bool, chunk []string, stampOf func(string) uint64) string {
	var b strings.Builder
	b.WriteString(table)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(int(kind)))
	b.WriteByte('|')
	b.WriteString(strconv.FormatBool(binaryIDs))
	for _, k := range chunk {
		b.WriteByte(0)
		b.WriteString(k)
		if s := stampOf(k); s != 0 {
			b.WriteByte('@')
			b.WriteString(strconv.FormatUint(s, 10))
		}
	}
	return b.String()
}

func decodeItems(items []kv.Item, kind PostingKind, binaryIDs bool) (map[string]*Posting, error) {
	// Most items carry one URI attribute, so the item count is a good size
	// hint for the posting map.
	postings := make(map[string]*Posting, len(items))
	// Identifier values stay lazy when they can: blocked blobs contribute
	// parsed Sets (headers only), everything else decodes eagerly.
	var segs map[string][]*idblock.Set
	for _, it := range items {
		for _, a := range it.Attrs {
			p, ok := postings[a.Name]
			if !ok {
				p = &Posting{URI: a.Name}
				postings[a.Name] = p
			}
			switch kind {
			case URIPosting:
				// Presence is all that matters.
			case PathPosting:
				for _, v := range a.Values {
					// Validate now, retain raw: corrupt values fail here —
					// where the old eager decode failed — and matching
					// later runs on the compressed form.
					if err := ValidatePathValue(v); err != nil {
						return nil, err
					}
					p.PathVals = append(p.PathVals, v)
				}
			case IDPosting:
				for _, v := range a.Values {
					set, ids, err := DecodeIDSet(v, binaryIDs)
					if err != nil {
						return nil, err
					}
					switch {
					case set != nil:
						if segs == nil {
							segs = make(map[string][]*idblock.Set)
						}
						segs[a.Name] = append(segs[a.Name], set)
					case p.IDs == nil:
						// The decode owns the slice; single-value entries —
						// the common case — adopt it without a copy.
						p.IDs = ids
					default:
						p.IDs = append(p.IDs, ids...)
					}
				}
			}
		}
	}
	if kind == IDPosting {
		for uri, p := range postings {
			if err := finishIDPosting(p, segs[uri]); err != nil {
				return nil, err
			}
		}
	}
	return postings, nil
}

// finishIDPosting fixes a decoded identifier posting into its final shape.
// All-blocked segments that tile the pre axis merge into one lazy Set —
// items arrive ordered by range key, not content, and Merge restores pre
// order from the headers alone. Anything else (legacy values, overlapping
// segments) materializes: decode everything, restore pre order, and wrap
// the result as a single-block Set so the join kernels are format-blind.
func finishIDPosting(p *Posting, segs []*idblock.Set) error {
	if p.IDs == nil {
		if merged, ok := idblock.Merge(segs); ok {
			p.blocked = merged
			return nil
		}
	}
	for _, s := range segs {
		ids, err := s.All()
		if err != nil {
			return err
		}
		p.IDs = append(p.IDs, ids...)
	}
	if !idblock.IsSorted(p.IDs) {
		sortIDs(p.IDs)
	}
	return nil
}

func sortIDs(ids []xmltree.NodeID) {
	// Items arrive ordered by UUID range key, not by content; restore the
	// pre order the twig join requires.
	sort.Slice(ids, func(i, j int) bool { return ids[i].Pre < ids[j].Pre })
}
