package index

import (
	"math/bits"
	"sort"

	"repro/internal/obs"
	"repro/internal/twigjoin"
)

// URI-set intersection for the LU/LUP look-ups and the candidate step of
// LUI/2LUPI. The previous implementation iterated one map and probed the
// others per URI, then sorted the survivors; this one builds an interned
// URI dictionary per look-up — the sorted URIs of the smallest set, which
// bounds the intersection — and represents every other set as a bitmap
// over that dictionary, roaring-style: 64-URI containers combined with
// word-parallel ANDs, with already-empty containers skipped entirely. The
// output is sorted by construction, and the result is byte-identical to
// the map version (the strategy property differential asserts this).

// JoinCounters are the obs counters the look-up kernels feed, resolved
// once at wiring time (see core's metrics resolution) and nil-safe
// throughout — an uninstrumented run pays one nil check per update.
type JoinCounters struct {
	// BlocksRead counts posting blocks whose payload was consulted by a
	// block-skipping join; BlocksSkipped counts blocks and probes resolved
	// on their summary headers alone.
	BlocksRead    *obs.Counter
	BlocksSkipped *obs.Counter
	// ContainersIntersected counts the 64-URI bitmap containers combined
	// across all set intersections.
	ContainersIntersected *obs.Counter
}

// addJoin folds one join's block-level work into the counters.
func (j *JoinCounters) addJoin(js twigjoin.JoinStats) {
	if j == nil {
		return
	}
	j.BlocksRead.Add(js.BlocksRead)
	j.BlocksSkipped.Add(js.BlocksSkipped)
}

// addContainers records n intersected bitmap containers.
func (j *JoinCounters) addContainers(n int64) {
	if j == nil {
		return
	}
	j.ContainersIntersected.Add(n)
}

// intersectURIs returns the sorted intersection of the URI sets.
func intersectURIs(sets []map[string]*Posting, jc *JoinCounters) []string {
	if len(sets) == 0 {
		return nil
	}
	si := 0
	for i, s := range sets {
		if len(s) < len(sets[si]) {
			si = i
		}
	}
	if len(sets[si]) == 0 {
		return nil
	}

	// The dictionary: sorted URIs of the smallest set, interning every URI
	// the intersection could contain as its dictionary index.
	dict := make([]string, 0, len(sets[si]))
	for uri := range sets[si] {
		dict = append(dict, uri)
	}
	sort.Strings(dict)
	if len(sets) == 1 {
		return dict
	}

	// acc starts all-ones over the dictionary; each remaining set is turned
	// into a bitmap over the same dictionary and ANDed in, one 64-URI
	// container word at a time. A container that has gone empty skips both
	// the membership probes and the AND of every later set.
	acc := make([]uint64, (len(dict)+63)/64)
	for w := range acc {
		acc[w] = ^uint64(0)
	}
	if r := len(dict) % 64; r != 0 {
		acc[len(acc)-1] = 1<<r - 1
	}
	other := make([]uint64, len(acc))
	var containers int64
	for i, s := range sets {
		if i == si {
			continue
		}
		live := false
		for w, accw := range acc {
			if accw == 0 {
				other[w] = 0
				continue
			}
			containers++
			base := w << 6
			end := min(base+64, len(dict))
			var word uint64
			for j := base; j < end; j++ {
				if accw&(1<<uint(j-base)) == 0 {
					continue
				}
				if _, ok := s[dict[j]]; ok {
					word |= 1 << uint(j-base)
				}
			}
			other[w] = word
		}
		for w := range acc {
			acc[w] &= other[w]
			if acc[w] != 0 {
				live = true
			}
		}
		if !live {
			jc.addContainers(containers)
			return nil
		}
	}
	jc.addContainers(containers)

	n := 0
	for _, w := range acc {
		n += bits.OnesCount64(w)
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for j, uri := range dict {
		if acc[j>>6]&(1<<uint(j&63)) != 0 {
			out = append(out, uri)
		}
	}
	return out
}
