package index

import (
	"sort"

	"repro/internal/cloud/kv"
	"repro/internal/idblock"
	"repro/internal/xmltree"
)

// ReadView is a pinned snapshot of a mutable corpus, threaded through
// look-ups via LookupOptions.View. It overlays the versioned write buffer
// (kv.Delta) on the main store: a look-up captures each key's overlay
// BEFORE fetching from the store, so a background compaction fold landing
// mid-read is invisible — either the overlay entry is still live and wins
// wholesale, or it was committed and the main store already carries the
// folded state.
type ReadView interface {
	// Version is the pinned corpus version.
	Version() uint64
	// Capture returns the overlays of the requested hash keys visible at
	// the pinned version; keys absent from the result read the main store
	// unmodified.
	Capture(table string, keys []string) map[string]kv.Overlay
}

// applyReplaces merges one key's fetched main-store items with the
// overlay's replacement contributions: every item belonging to a replaced
// owner is dropped (the overlay holds that owner's full contribution) and
// the replacement items are appended. The merged slice is re-sorted by
// range key so decoding sees the same deterministic order a store fetch of
// the folded state would produce. Item-count accounting of the fetched
// items is the caller's: replacements come from the warehouse's memory and
// bill nothing.
func applyReplaces(items []kv.Item, ov kv.Overlay) []kv.Item {
	if len(ov.Replaces) == 0 {
		return items
	}
	merged := make([]kv.Item, 0, len(items)+len(ov.Replaces))
	for _, it := range items {
		if len(it.Attrs) == 1 {
			if _, replaced := ov.Replaces[it.Attrs[0].Name]; replaced {
				continue
			}
		}
		merged = append(merged, it)
	}
	owners := make([]string, 0, len(ov.Replaces))
	for owner := range ov.Replaces {
		owners = append(owners, owner)
	}
	sort.Strings(owners)
	for _, owner := range owners {
		merged = append(merged, ov.Replaces[owner]...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].HashKey != merged[j].HashKey {
			return merged[i].HashKey < merged[j].HashKey
		}
		return merged[i].RangeKey < merged[j].RangeKey
	})
	return merged
}

// deadSetFor parses the identifier contribution retained by a tombstone
// into one merged Set — the per-version tombstone consulted at
// posting-decode time.
func deadSetFor(items []kv.Item, binaryIDs bool) (*idblock.Set, error) {
	var segs []*idblock.Set
	var eager []xmltree.NodeID
	for _, it := range items {
		for _, a := range it.Attrs {
			for _, v := range a.Values {
				set, ids, err := DecodeIDSet(v, binaryIDs)
				if err != nil {
					return nil, err
				}
				if set != nil {
					segs = append(segs, set)
				} else {
					eager = append(eager, ids...)
				}
			}
		}
	}
	if len(eager) == 0 {
		if merged, ok := idblock.Merge(segs); ok {
			return merged, nil
		}
	}
	for _, s := range segs {
		ids, err := s.All()
		if err != nil {
			return nil, err
		}
		eager = append(eager, ids...)
	}
	if len(eager) == 0 {
		return nil, nil
	}
	if !idblock.IsSorted(eager) {
		sortIDs(eager)
	}
	return idblock.FromIDs(eager), nil
}

// applyTombstones filters one key's assembled postings through the
// overlay's tombstones. Postings are shared with the cache and with
// concurrent look-ups pinned at other versions, so the map and any
// modified posting are copied, never mutated: the tombstone is applied at
// decode time, on the way out. For identifier postings the subtraction
// goes through idblock.MergeTombstones, which keeps unaffected blocks
// encoded; other kinds drop the owner's posting wholesale (the retained
// contribution is, by construction, the owner's entire posting).
func applyTombstones(postings map[string]*Posting, ov kv.Overlay, kind PostingKind, binaryIDs bool) (map[string]*Posting, error) {
	if len(ov.Tombstones) == 0 {
		return postings, nil
	}
	touched := false
	for owner := range ov.Tombstones {
		if _, ok := postings[owner]; ok {
			touched = true
			break
		}
	}
	if !touched {
		return postings, nil
	}
	out := make(map[string]*Posting, len(postings))
	for owner, p := range postings {
		tomb, dead := ov.Tombstones[owner]
		if !dead {
			out[owner] = p
			continue
		}
		if kind != IDPosting {
			continue
		}
		deadSet, err := deadSetFor(tomb, binaryIDs)
		if err != nil {
			return nil, err
		}
		kept, err := subtractPosting(p, deadSet)
		if err != nil {
			return nil, err
		}
		if kept != nil {
			out[owner] = kept
		}
	}
	return out, nil
}

// subtractPosting returns a copy of p with the dead identifiers removed,
// or nil when nothing survives. The lazy path hands the posting's blocked
// set to MergeTombstones so blocks outside the dead pre span stay encoded;
// postings that only exist eagerly (or whose segments cannot merge
// lazily) filter the decoded identifiers directly.
func subtractPosting(p *Posting, dead *idblock.Set) (*Posting, error) {
	if dead.Len() == 0 {
		return p, nil
	}
	if p.blocked != nil {
		if merged, ok := idblock.MergeTombstones([]*idblock.Set{p.blocked}, dead); ok {
			if merged == nil {
				return nil, nil
			}
			return &Posting{URI: p.URI, PathVals: p.PathVals, blocked: merged}, nil
		}
	}
	ids, err := p.DecodedIDs()
	if err != nil {
		return nil, err
	}
	deadAll, err := dead.All()
	if err != nil {
		return nil, err
	}
	deadPres := make(map[int32]bool, len(deadAll))
	for _, id := range deadAll {
		deadPres[id.Pre] = true
	}
	var kept []xmltree.NodeID
	for _, id := range ids {
		if !deadPres[id.Pre] {
			kept = append(kept, id)
		}
	}
	if len(kept) == 0 {
		return nil, nil
	}
	return &Posting{URI: p.URI, PathVals: p.PathVals, IDs: kept}, nil
}
