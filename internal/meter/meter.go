// Package meter records the consumption of simulated cloud resources.
//
// The paper's cost study (Sections 7-8) bills an application for every API
// request issued against a cloud service, for the bytes it stores, for the
// hours its virtual machines run, and for the bytes it transfers out of the
// cloud. The Ledger type accumulates exactly those quantities; the pricing
// package turns a Usage snapshot into dollars.
//
// Every simulated service (s3, dynamodb, simpledb, sqs) records into the
// ledger it was constructed with. Callers measure a phase (for example "the
// evaluation of query q3 under strategy LUP") by snapshotting the ledger
// before and after and subtracting.
package meter

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Op identifies a metered operation, e.g. {Service: "dynamodb", Name: "get"}.
type Op struct {
	Service string
	Name    string
}

func (o Op) String() string { return o.Service + "." + o.Name }

// Counts aggregates the activity recorded for one operation.
type Counts struct {
	// Calls is the number of API requests issued (a batch call counts as
	// one request).
	Calls int64
	// Units is the number of logical work units consumed, e.g. items
	// written by a batch put, or key-value capacity units. Services for
	// which the distinction is meaningless record Units == Calls.
	Units int64
	// Bytes is the payload volume moved by the operation.
	Bytes int64
}

func (c Counts) add(d Counts) Counts {
	return Counts{c.Calls + d.Calls, c.Units + d.Units, c.Bytes + d.Bytes}
}

func (c Counts) sub(d Counts) Counts {
	return Counts{c.Calls - d.Calls, c.Units - d.Units, c.Bytes - d.Bytes}
}

// Usage is an immutable snapshot of a Ledger.
type Usage struct {
	ops             map[Op]Counts
	instanceSeconds map[string]float64 // by instance type name
	egressBytes     int64
}

// Ledger accumulates resource consumption. It is safe for concurrent use.
// The zero value is not usable; use NewLedger.
//
// Internally the ledger keeps dense parallel tables (an op registry plus a
// counts slice) rather than maps: the set of distinct operations is tiny
// and append-only, and the dense layout lets Compact produce a
// point-in-time reading with two slice copies — cheap enough to take twice
// per tracing span on the query hot path.
type Ledger struct {
	mu        sync.Mutex
	opIdx     map[Op]int
	ops       []Op
	counts    []Counts
	instIdx   map[string]int
	instTypes []string
	instSecs  []float64
	egress    int64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		opIdx:   make(map[Op]int),
		instIdx: make(map[string]int),
	}
}

// Record adds one metered operation to the ledger.
func (l *Ledger) Record(service, op string, calls, units, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	k := Op{service, op}
	i, ok := l.opIdx[k]
	if !ok {
		i = len(l.ops)
		l.opIdx[k] = i
		l.ops = append(l.ops, k)
		l.counts = append(l.counts, Counts{})
	}
	l.counts[i] = l.counts[i].add(Counts{calls, units, bytes})
}

// AddInstanceSeconds bills modeled busy time of a virtual machine of the
// given type (e.g. "l", "xl").
func (l *Ledger) AddInstanceSeconds(instanceType string, seconds float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	i, ok := l.instIdx[instanceType]
	if !ok {
		i = len(l.instTypes)
		l.instIdx[instanceType] = i
		l.instTypes = append(l.instTypes, instanceType)
		l.instSecs = append(l.instSecs, 0)
	}
	l.instSecs[i] += seconds
}

// AddEgress records bytes transferred out of the cloud.
func (l *Ledger) AddEgress(bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.egress += bytes
}

// Snapshot returns a copy of the current usage.
func (l *Ledger) Snapshot() Usage {
	l.mu.Lock()
	defer l.mu.Unlock()
	u := Usage{
		ops:             make(map[Op]Counts, len(l.ops)),
		instanceSeconds: make(map[string]float64, len(l.instTypes)),
		egressBytes:     l.egress,
	}
	for i, k := range l.ops {
		u.ops[k] = l.counts[i]
	}
	for i, t := range l.instTypes {
		u.instanceSeconds[t] = l.instSecs[i]
	}
	return u
}

// Reset clears the ledger.
func (l *Ledger) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.opIdx = make(map[Op]int)
	l.ops, l.counts = nil, nil
	l.instIdx = make(map[string]int)
	l.instTypes, l.instSecs = nil, nil
	l.egress = 0
}

// Compact is a cheap point-in-time reading of a Ledger, made for
// high-frequency before/after diffs (the obs tracer takes two per span).
// It copies the small dense tables instead of building maps; the op and
// instance-type name slices are shared immutable prefixes of the ledger's
// internal registries (the first n entries never change once written, so
// sharing them is safe even as the ledger keeps appending).
type Compact struct {
	ops       []Op
	counts    []Counts
	instTypes []string
	instSecs  []float64
	egress    int64
}

// Compact returns the current reading.
func (l *Ledger) Compact() Compact {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Compact{
		ops:       l.ops[:len(l.ops):len(l.ops)],
		counts:    append([]Counts(nil), l.counts...),
		instTypes: l.instTypes[:len(l.instTypes):len(l.instTypes)],
		instSecs:  append([]float64(nil), l.instSecs...),
		egress:    l.egress,
	}
}

// CompactInto is Compact reusing prev's backing arrays when they are large
// enough, for callers that take readings in a loop (the obs tracer recycles
// them through a pool).
func (l *Ledger) CompactInto(prev Compact) Compact {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Compact{
		ops:       l.ops[:len(l.ops):len(l.ops)],
		counts:    append(prev.counts[:0], l.counts...),
		instTypes: l.instTypes[:len(l.instTypes):len(l.instTypes)],
		instSecs:  append(prev.instSecs[:0], l.instSecs...),
		egress:    l.egress,
	}
}

// SubSince diffs the ledger's live state against an earlier compact
// reading, like Compact().Sub(prev) without materialising the second
// reading.
func (l *Ledger) SubSince(prev Compact) (ops []OpDelta, inst []TypeSeconds, egress int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, ct := range l.counts {
		var p Counts
		if i < len(prev.counts) {
			p = prev.counts[i]
		}
		if d := ct.sub(p); d != (Counts{}) {
			if ops == nil {
				ops = make([]OpDelta, 0, len(l.counts)-i)
			}
			ops = append(ops, OpDelta{l.ops[i], d})
		}
	}
	for i, s := range l.instSecs {
		var p float64
		if i < len(prev.instSecs) {
			p = prev.instSecs[i]
		}
		if d := s - p; d != 0 {
			if inst == nil {
				inst = make([]TypeSeconds, 0, len(l.instSecs)-i)
			}
			inst = append(inst, TypeSeconds{l.instTypes[i], d})
		}
	}
	return ops, inst, l.egress - prev.egress
}

// OpDelta is one operation's activity between two compact readings.
type OpDelta struct {
	Op     Op
	Counts Counts
}

// TypeSeconds is one instance type's billed busy time between two compact
// readings.
type TypeSeconds struct {
	Type    string
	Seconds float64
}

// Sub returns the activity between prev (the earlier reading, possibly of
// a shorter table) and c: the non-zero op deltas in first-recorded order,
// the non-zero per-type instance seconds, and the egress delta. Both
// readings must come from the same ledger.
func (c Compact) Sub(prev Compact) (ops []OpDelta, inst []TypeSeconds, egress int64) {
	for i, ct := range c.counts {
		var p Counts
		if i < len(prev.counts) {
			p = prev.counts[i]
		}
		if d := ct.sub(p); d != (Counts{}) {
			if ops == nil {
				ops = make([]OpDelta, 0, len(c.counts)-i)
			}
			ops = append(ops, OpDelta{c.ops[i], d})
		}
	}
	for i, s := range c.instSecs {
		var p float64
		if i < len(prev.instSecs) {
			p = prev.instSecs[i]
		}
		if d := s - p; d != 0 {
			if inst == nil {
				inst = make([]TypeSeconds, 0, len(c.instSecs)-i)
			}
			inst = append(inst, TypeSeconds{c.instTypes[i], d})
		}
	}
	return ops, inst, c.egress - prev.egress
}

// NewUsage assembles a Usage from explicit components — the inverse of a
// recorded diff (the obs span journal rehydrates billed usage this way,
// e.g. to price a span with pricing.PriceBook.Bill).
func NewUsage(ops map[Op]Counts, instanceSeconds map[string]float64, egressBytes int64) Usage {
	u := Usage{
		ops:             make(map[Op]Counts, len(ops)),
		instanceSeconds: make(map[string]float64, len(instanceSeconds)),
		egressBytes:     egressBytes,
	}
	for k, v := range ops {
		u.ops[k] = v
	}
	for k, v := range instanceSeconds {
		u.instanceSeconds[k] = v
	}
	return u
}

func (u Usage) clone() Usage {
	c := Usage{
		ops:             make(map[Op]Counts, len(u.ops)),
		instanceSeconds: make(map[string]float64, len(u.instanceSeconds)),
		egressBytes:     u.egressBytes,
	}
	for k, v := range u.ops {
		c.ops[k] = v
	}
	for k, v := range u.instanceSeconds {
		c.instanceSeconds[k] = v
	}
	return c
}

// Sub returns the usage delta u - prev. It is the usual way to isolate the
// consumption of one phase.
func (u Usage) Sub(prev Usage) Usage {
	d := Usage{
		ops:             make(map[Op]Counts),
		instanceSeconds: make(map[string]float64),
		egressBytes:     u.egressBytes - prev.egressBytes,
	}
	for k, v := range u.ops {
		if w, ok := prev.ops[k]; ok {
			v = v.sub(w)
		}
		if v != (Counts{}) {
			d.ops[k] = v
		}
	}
	for k, v := range prev.ops {
		if _, ok := u.ops[k]; !ok {
			d.ops[k] = Counts{}.sub(v)
		}
	}
	for k, v := range u.instanceSeconds {
		d.instanceSeconds[k] = v - prev.instanceSeconds[k]
	}
	for k, v := range prev.instanceSeconds {
		if _, ok := u.instanceSeconds[k]; !ok {
			d.instanceSeconds[k] = -v
		}
	}
	return d
}

// Add returns the combined usage u + other.
func (u Usage) Add(other Usage) Usage {
	s := u.clone()
	for k, v := range other.ops {
		s.ops[k] = s.ops[k].add(v)
	}
	for k, v := range other.instanceSeconds {
		s.instanceSeconds[k] += v
	}
	s.egressBytes += other.egressBytes
	return s
}

// Get returns the counts recorded for one operation.
func (u Usage) Get(service, op string) Counts {
	return u.ops[Op{service, op}]
}

// ServiceCalls sums the Calls of every operation of the given service.
func (u Usage) ServiceCalls(service string) int64 {
	var n int64
	for k, v := range u.ops {
		if k.Service == service {
			n += v.Calls
		}
	}
	return n
}

// ServiceUnits sums the Units of every operation of the given service.
func (u Usage) ServiceUnits(service string) int64 {
	var n int64
	for k, v := range u.ops {
		if k.Service == service {
			n += v.Units
		}
	}
	return n
}

// ServiceBytes sums the Bytes of every operation of the given service.
func (u Usage) ServiceBytes(service string) int64 {
	var n int64
	for k, v := range u.ops {
		if k.Service == service {
			n += v.Bytes
		}
	}
	return n
}

// Ops returns the recorded operations in deterministic order.
func (u Usage) Ops() []Op {
	ops := make([]Op, 0, len(u.ops))
	for k := range u.ops {
		ops = append(ops, k)
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Service != ops[j].Service {
			return ops[i].Service < ops[j].Service
		}
		return ops[i].Name < ops[j].Name
	})
	return ops
}

// InstanceSeconds reports the billed busy seconds for an instance type.
func (u Usage) InstanceSeconds(instanceType string) float64 {
	return u.instanceSeconds[instanceType]
}

// InstanceTypes returns the instance types with billed time, sorted.
func (u Usage) InstanceTypes() []string {
	ts := make([]string, 0, len(u.instanceSeconds))
	for k := range u.instanceSeconds {
		ts = append(ts, k)
	}
	sort.Strings(ts)
	return ts
}

// EgressBytes reports bytes transferred out of the cloud.
func (u Usage) EgressBytes() int64 { return u.egressBytes }

// String renders the usage as a human-readable multi-line report.
func (u Usage) String() string {
	var b strings.Builder
	for _, op := range u.Ops() {
		c := u.ops[op]
		fmt.Fprintf(&b, "%-24s calls=%-8d units=%-8d bytes=%d\n", op, c.Calls, c.Units, c.Bytes)
	}
	for _, t := range u.InstanceTypes() {
		fmt.Fprintf(&b, "ec2.%-20s seconds=%.1f\n", t, u.instanceSeconds[t])
	}
	if u.egressBytes != 0 {
		fmt.Fprintf(&b, "%-24s bytes=%d\n", "net.egress", u.egressBytes)
	}
	return b.String()
}
